// Benchmarks regenerating the paper's tables and figures in miniature.
// Each benchmark runs a shortened version of the corresponding experiment
// and attaches the headline shape metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as a quick reproduction check.
// The full-length experiments live in cmd/experiments.
package tdmnoc_test

import (
	"testing"

	"tdmnoc/hsnoc"
)

const (
	benchWarm    = 3000
	benchMeasure = 12000
)

func synth(b *testing.B, cfg hsnoc.Config, p hsnoc.Pattern, rate float64) hsnoc.Results {
	b.Helper()
	s := hsnoc.NewSynthetic(cfg, p, rate)
	defer s.Close()
	s.Warmup(benchWarm)
	res := s.Run(benchMeasure)
	if d := s.Diagnose(); d.MisroutedCS != 0 || d.DroppedCS != 0 {
		b.Fatalf("invariant violations: %+v", d)
	}
	return res
}

func baseCfg() hsnoc.Config { return hsnoc.DefaultConfig(6, 6) }

func tdmCfg() hsnoc.Config {
	c := baseCfg()
	c.Mode = hsnoc.HybridTDM
	return c
}

func sdmCfg() hsnoc.Config {
	c := baseCfg()
	c.Mode = hsnoc.HybridSDM
	return c
}

// BenchmarkFig4LoadLatency regenerates one point of each Fig. 4 curve
// (tornado at moderate load) and reports the latency of the three
// architectures.
func BenchmarkFig4LoadLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps := synth(b, baseCfg(), hsnoc.Tornado, 0.20)
		sdm := synth(b, sdmCfg(), hsnoc.Tornado, 0.20)
		tdm := synth(b, tdmCfg(), hsnoc.Tornado, 0.20)
		b.ReportMetric(ps.AvgNetLatency, "ps-latency")
		b.ReportMetric(sdm.AvgNetLatency, "sdm-latency")
		b.ReportMetric(tdm.AvgNetLatency, "tdm-latency")
	}
}

// BenchmarkFig4Saturation reports the accepted throughput of the three
// architectures past the SDM saturation point (tornado at 0.45): the
// paper's headline TDM-vs-SDM scaling comparison.
func BenchmarkFig4Saturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps := synth(b, baseCfg(), hsnoc.Tornado, 0.45)
		sdm := synth(b, sdmCfg(), hsnoc.Tornado, 0.45)
		tdm := synth(b, tdmCfg(), hsnoc.Tornado, 0.45)
		b.ReportMetric(ps.PayloadThroughput, "ps-accepted")
		b.ReportMetric(sdm.PayloadThroughput, "sdm-accepted")
		b.ReportMetric(tdm.PayloadThroughput, "tdm-accepted")
	}
}

// BenchmarkFig5EnergySaving regenerates one point of Fig. 5: hybrid
// energy saving versus the packet-switched baseline under tornado.
func BenchmarkFig5EnergySaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := synth(b, baseCfg(), hsnoc.Tornado, 0.15)
		tdm := synth(b, tdmCfg(), hsnoc.Tornado, 0.15)
		vct := tdmCfg()
		vct.VCPowerGating = true
		gated := synth(b, vct, hsnoc.Tornado, 0.15)
		b.ReportMetric(100*tdm.EnergySavingVs(base), "tdm-saving-%")
		b.ReportMetric(100*gated.EnergySavingVs(base), "vct-saving-%")
	}
}

// BenchmarkFig6Scalability runs the 8x8 scalability point: throughput
// improvement and energy saving of Hybrid-TDM-VCt on the larger mesh.
func BenchmarkFig6Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pc := hsnoc.DefaultConfig(8, 8)
		tc := hsnoc.DefaultConfig(8, 8)
		tc.Mode = hsnoc.HybridTDM
		tc.VCPowerGating = true
		base := synth(b, pc, hsnoc.Transpose, 0.20)
		vct := synth(b, tc, hsnoc.Transpose, 0.20)
		b.ReportMetric(100*(vct.PayloadThroughput-base.PayloadThroughput)/base.PayloadThroughput, "thruput-gain-%")
		b.ReportMetric(100*vct.EnergySavingVs(base), "energy-saving-%")
	}
}

func heteroRun(b *testing.B, cfg hsnoc.Config, cpu, gpu string) hsnoc.HeteroResults {
	b.Helper()
	h, err := hsnoc.NewHeterogeneous(cfg, cpu, gpu)
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	h.Warmup(benchWarm)
	res := h.Run(benchMeasure)
	if d := h.Diagnose(); d.MisroutedCS != 0 || d.DroppedCS != 0 {
		b.Fatalf("invariant violations: %+v", d)
	}
	return res
}

// BenchmarkFig8Heterogeneous runs one workload mix over the baseline and
// the full hybrid configuration, reporting the Fig. 8 metrics.
func BenchmarkFig8Heterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hop := tdmCfg()
		hop.PathSharing = true
		hop.VCPowerGating = true
		base := heteroRun(b, baseCfg(), "EQUAKE", "BLACKSCHOLES")
		full := heteroRun(b, hop, "EQUAKE", "BLACKSCHOLES")
		b.ReportMetric(100*(1-full.Energy.TotalPJ/base.Energy.TotalPJ), "energy-saving-%")
		b.ReportMetric(float64(full.CPUInstructions)/float64(base.CPUInstructions), "cpu-speedup")
		b.ReportMetric(float64(full.GPUIterations)/float64(base.GPUIterations), "gpu-speedup")
	}
}

// BenchmarkFig9EnergyBreakdown reports the buffer-energy reduction that
// dominates Fig. 9(a) and the circuit-switching overhead share.
func BenchmarkFig9EnergyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hop := tdmCfg()
		hop.PathSharing = true
		hop.VCPowerGating = true
		base := heteroRun(b, baseCfg(), "ART", "LPS")
		full := heteroRun(b, hop, "ART", "LPS")
		bufSave := 1 - full.Energy.DynamicPJ["buffer"]/base.Energy.DynamicPJ["buffer"]
		var baseDyn float64
		for _, v := range base.Energy.DynamicPJ {
			baseDyn += v
		}
		b.ReportMetric(100*bufSave, "buffer-dyn-saving-%")
		b.ReportMetric(100*full.Energy.DynamicPJ["cs-component"]/baseDyn, "cs-overhead-%")
	}
}

// BenchmarkTable3CircuitSwitchedPercent reports the measured GPU
// injection rate and circuit-switched flit share for one Table III row.
func BenchmarkTable3CircuitSwitchedPercent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := heteroRun(b, tdmCfg(), "EQUAKE", "BLACKSCHOLES")
		b.ReportMetric(res.GPUInjectionRate, "gpu-inj-rate")
		b.ReportMetric(100*res.GPUCSFraction, "gpu-cs-%")
	}
}

// BenchmarkAblationTimeSlotStealing compares hybrid throughput with and
// without time-slot stealing (Section II-D).
func BenchmarkAblationTimeSlotStealing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := synth(b, tdmCfg(), hsnoc.Tornado, 0.30)
		cfg := tdmCfg()
		cfg.DisableTimeSlotStealing = true
		without := synth(b, cfg, hsnoc.Tornado, 0.30)
		b.ReportMetric(with.AvgTotalLatency, "steal-latency")
		b.ReportMetric(without.AvgTotalLatency, "nosteal-latency")
	}
}

// BenchmarkAblationPathSharing compares hotspot traffic with and without
// path sharing (Section III-A).
func BenchmarkAblationPathSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := tdmCfg()
		plain := synth(b, cfg, hsnoc.Hotspot, 0.12)
		cfg.PathSharing = true
		shared := synth(b, cfg, hsnoc.Hotspot, 0.12)
		b.ReportMetric(float64(shared.Hitchhikes+shared.VicinityRides), "rides")
		b.ReportMetric(100*shared.EnergySavingVs(plain), "extra-saving-%")
	}
}

// BenchmarkAblationDynamicSlots compares dynamic slot-table sizing
// against statically full tables (Section II-C).
func BenchmarkAblationDynamicSlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dyn := synth(b, tdmCfg(), hsnoc.Tornado, 0.15)
		cfg := tdmCfg()
		cfg.DisableDynamicSlotSizing = true
		stat := synth(b, cfg, hsnoc.Tornado, 0.15)
		b.ReportMetric(float64(dyn.ActiveSlotEntries), "dyn-active-slots")
		b.ReportMetric(dyn.AvgTotalLatency, "dyn-latency")
		b.ReportMetric(stat.AvgTotalLatency, "static-latency")
	}
}

// BenchmarkAblationVCGating compares VC power gating's static energy
// saving against the ungated hybrid (Section III-B).
func BenchmarkAblationVCGating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := synth(b, tdmCfg(), hsnoc.Tornado, 0.10)
		cfg := tdmCfg()
		cfg.VCPowerGating = true
		gated := synth(b, cfg, hsnoc.Tornado, 0.10)
		var ps, gs float64
		for _, v := range plain.Energy.StaticPJ {
			ps += v
		}
		for _, v := range gated.Energy.StaticPJ {
			gs += v
		}
		b.ReportMetric(100*(1-gs/ps), "static-saving-%")
	}
}

// BenchmarkEngine measures raw simulation speed: router-cycles per second
// of the 6x6 hybrid network under load.
func BenchmarkEngine(b *testing.B) {
	cfg := tdmCfg()
	s := hsnoc.NewSynthetic(cfg, hsnoc.UniformRandom, 0.2)
	defer s.Close()
	s.Warmup(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Warmup(1000) // 1000 cycles x 36 routers per iteration
	}
	b.ReportMetric(float64(36*1000), "router-cycles/op")
}

// BenchmarkHotPathSteadyState is the tentpole regression benchmark: one
// op is one cycle of a warmed 6x6 hybrid-TDM network (the Fig. 4
// configuration cmd/bench gates on). The long warmup steps past the
// allocator transient — pool stocking, circuit establishment — so
// -benchmem reports the steady state, which must stay at 0 allocs/op.
func BenchmarkHotPathSteadyState(b *testing.B) {
	cfg := tdmCfg()
	cfg.PathSharing = true
	cfg.VCPowerGating = true
	s := hsnoc.NewSynthetic(cfg, hsnoc.Tornado, 0.20)
	defer s.Close()
	s.Warmup(40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Warmup(1)
	}
}

// BenchmarkAblationLatencyVCGating compares the paper's suggested
// latency-driven gating refinement (Section V-B4) against the
// utilisation-driven policy.
func BenchmarkAblationLatencyVCGating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		util := tdmCfg()
		util.VCPowerGating = true
		lat := tdmCfg()
		lat.LatencyBasedVCGating = true
		u := synth(b, util, hsnoc.Tornado, 0.20)
		l := synth(b, lat, hsnoc.Tornado, 0.20)
		b.ReportMetric(u.AvgTotalLatency, "util-gate-latency")
		b.ReportMetric(l.AvgTotalLatency, "lat-gate-latency")
		var us, ls float64
		for _, v := range u.Energy.StaticPJ {
			us += v
		}
		for _, v := range l.Energy.StaticPJ {
			ls += v
		}
		b.ReportMetric(ls/us, "static-energy-ratio")
	}
}

// BenchmarkAblationSAIterations compares the single-pass separable switch
// allocator with a 2-iteration iSLIP matching under saturating load.
func BenchmarkAblationSAIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		one := tdmCfg()
		two := tdmCfg()
		two.SAIterations = 2
		r1 := synth(b, one, hsnoc.UniformRandom, 0.45)
		r2 := synth(b, two, hsnoc.UniformRandom, 0.45)
		b.ReportMetric(r1.AvgTotalLatency, "islip1-latency")
		b.ReportMetric(r2.AvgTotalLatency, "islip2-latency")
		b.ReportMetric(r2.PayloadThroughput-r1.PayloadThroughput, "accepted-delta")
	}
}
