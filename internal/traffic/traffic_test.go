package traffic

import (
	"testing"
	"testing/quick"

	"tdmnoc/internal/network"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

func TestPatternStrings(t *testing.T) {
	want := map[Pattern]string{
		UniformRandom: "UR", Tornado: "TOR", Transpose: "TR",
		BitComplement: "BC", Neighbor: "NBR",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if Pattern(42).String() == "" {
		t.Error("unknown pattern empty string")
	}
}

func TestUniformRandomNeverSelf(t *testing.T) {
	m := topology.NewMesh(6, 6)
	rng := sim.NewRNG(1)
	for i := 0; i < 2000; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst, ok := Destination(UniformRandom, m, src, rng)
		if !ok {
			t.Fatal("UR produced no destination")
		}
		if dst == src {
			t.Fatal("UR selected self")
		}
	}
}

func TestUniformRandomCoversAll(t *testing.T) {
	m := topology.NewMesh(4, 4)
	rng := sim.NewRNG(2)
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 5000; i++ {
		dst, _ := Destination(UniformRandom, m, 0, rng)
		seen[dst] = true
	}
	if len(seen) != m.Nodes()-1 {
		t.Fatalf("UR covered %d destinations, want %d", len(seen), m.Nodes()-1)
	}
}

func TestTornadoFormula(t *testing.T) {
	m := topology.NewMesh(6, 6)
	// (x, y) -> (x + k/2 - 1 mod k, y): from (0, 2) -> (2, 2).
	src := m.ID(topology.Coord{X: 0, Y: 2})
	dst, ok := Destination(Tornado, m, src, nil)
	if !ok || dst != m.ID(topology.Coord{X: 2, Y: 2}) {
		t.Fatalf("tornado from (0,2) = %v (%v)", m.Coord(dst), ok)
	}
	// Row preserved for every source.
	for id := topology.NodeID(0); id < topology.NodeID(m.Nodes()); id++ {
		if d, ok2 := Destination(Tornado, m, id, nil); ok2 {
			if m.Coord(d).Y != m.Coord(id).Y {
				t.Fatalf("tornado changed row: %d -> %d", id, d)
			}
		}
	}
}

func TestTransposeFormulaAndDiagonal(t *testing.T) {
	m := topology.NewMesh(6, 6)
	src := m.ID(topology.Coord{X: 1, Y: 4})
	dst, ok := Destination(Transpose, m, src, nil)
	if !ok || dst != m.ID(topology.Coord{X: 4, Y: 1}) {
		t.Fatalf("transpose of (1,4) = %v", m.Coord(dst))
	}
	diag := m.ID(topology.Coord{X: 3, Y: 3})
	if _, ok := Destination(Transpose, m, diag, nil); ok {
		t.Fatal("diagonal node generated transpose traffic")
	}
}

func TestBitComplementAndNeighbor(t *testing.T) {
	m := topology.NewMesh(4, 4)
	if d, ok := Destination(BitComplement, m, 0, nil); !ok || d != 15 {
		t.Fatalf("BC of 0 = %d (%v)", d, ok)
	}
	if d, ok := Destination(Neighbor, m, 0, nil); !ok || d != 1 {
		t.Fatalf("NBR of 0 = %d (%v)", d, ok)
	}
	// Neighbor wraps within the row.
	if d, ok := Destination(Neighbor, m, 3, nil); !ok || d != 0 {
		t.Fatalf("NBR of 3 = %d (%v)", d, ok)
	}
}

func TestDestinationsStayInMesh(t *testing.T) {
	m := topology.NewMesh(8, 8)
	rng := sim.NewRNG(3)
	f := func(p8, s8 uint8) bool {
		p := Pattern(int(p8) % 5)
		src := topology.NodeID(int(s8) % m.Nodes())
		dst, ok := Destination(p, m, src, rng)
		if !ok {
			return true
		}
		return m.Contains(m.Coord(dst)) && dst != src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSyntheticEndpointInjects(t *testing.T) {
	cfg := network.DefaultConfig(4, 4)
	gens := map[topology.NodeID]*Synthetic{}
	net := network.New(cfg, func(id topology.NodeID) network.Endpoint {
		g := NewSynthetic(UniformRandom, 0.2, cfg.PSDataFlits, false)
		gens[id] = g
		return g
	})
	defer net.Close()
	net.EnableStats()
	net.Run(2000)
	total := int64(0)
	for _, g := range gens {
		total += g.Sent()
	}
	if total == 0 {
		t.Fatal("synthetic endpoints generated nothing")
	}
	// Offered 0.2 flits/node/cycle over 16 nodes and 2000 cycles: about
	// 1280 packets; allow generous tolerance.
	if total < 800 || total > 1800 {
		t.Fatalf("generated %d packets, expected about 1280", total)
	}
	// Stop halts generation.
	for _, g := range gens {
		g.Stop()
	}
	before := total
	net.Run(500)
	after := int64(0)
	for _, g := range gens {
		after += g.Sent()
	}
	if after != before {
		t.Fatal("Stop did not halt generation")
	}
}

func TestSyntheticZeroRate(t *testing.T) {
	cfg := network.DefaultConfig(4, 4)
	g := NewSynthetic(UniformRandom, 0, cfg.PSDataFlits, false)
	net := network.New(cfg, func(id topology.NodeID) network.Endpoint { return g })
	defer net.Close()
	net.Run(500)
	if g.Sent() != 0 {
		t.Fatal("zero-rate generator sent packets")
	}
}
