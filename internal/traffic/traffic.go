// Package traffic provides the synthetic workloads of Section IV:
// uniform random, tornado, and transpose patterns driven by a Bernoulli
// injection process, plus a few extra canonical patterns used by the
// ablation studies.
package traffic

import (
	"fmt"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/network"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// Pattern selects the destination distribution.
type Pattern int

const (
	// UniformRandom sends each packet to a uniformly random other node.
	UniformRandom Pattern = iota
	// Tornado sends from (x, y) to (x + k/2 - 1 mod k, y).
	Tornado
	// Transpose sends from (x, y) to (y, x).
	Transpose
	// BitComplement sends from (x, y) to (k-1-x, k-1-y).
	BitComplement
	// Neighbor sends to the east neighbour (wrapping), a best-case
	// pattern used by ablations.
	Neighbor
	// Hotspot sends most packets to a small set of central nodes — the
	// many-to-few pattern of accelerator traffic, and the natural
	// showcase for circuit-switched path sharing.
	Hotspot
)

// String names the pattern as the paper abbreviates it.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "UR"
	case Tornado:
		return "TOR"
	case Transpose:
		return "TR"
	case BitComplement:
		return "BC"
	case Neighbor:
		return "NBR"
	case Hotspot:
		return "HOT"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Destination returns the target node for a packet from src, and whether
// the pattern produces any traffic from this source (transpose diagonal
// nodes, for example, send nothing).
func Destination(p Pattern, m topology.Mesh, src topology.NodeID, rng *sim.RNG) (topology.NodeID, bool) {
	c := m.Coord(src)
	switch p {
	case UniformRandom:
		if m.Nodes() < 2 {
			return 0, false
		}
		for {
			d := topology.NodeID(rng.Intn(m.Nodes()))
			if d != src {
				return d, true
			}
		}
	case Tornado:
		k := m.Width
		dx := (c.X + k/2 - 1) % k
		if dx == c.X {
			return 0, false
		}
		return m.ID(topology.Coord{X: dx, Y: c.Y}), true
	case Transpose:
		if c.X == c.Y {
			return 0, false
		}
		d := topology.Coord{X: c.Y, Y: c.X}
		if !m.Contains(d) {
			return 0, false
		}
		return m.ID(d), true
	case BitComplement:
		d := topology.Coord{X: m.Width - 1 - c.X, Y: m.Height - 1 - c.Y}
		dst := m.ID(d)
		if dst == src {
			return 0, false
		}
		return dst, true
	case Neighbor:
		d := topology.Coord{X: (c.X + 1) % m.Width, Y: c.Y}
		dst := m.ID(d)
		if dst == src {
			return 0, false
		}
		return dst, true
	case Hotspot:
		if rng.Bernoulli(0.8) {
			hot := hotNodes(m)
			d := hot[rng.Intn(len(hot))]
			if d != src {
				return d, true
			}
		}
		for {
			d := topology.NodeID(rng.Intn(m.Nodes()))
			if d != src {
				return d, true
			}
		}
	}
	return 0, false
}

// hotNodes returns the hotspot destinations: the four tiles around the
// mesh centre.
func hotNodes(m topology.Mesh) []topology.NodeID {
	cx, cy := m.Width/2, m.Height/2
	pick := func(x, y int) topology.NodeID {
		if x >= m.Width {
			x = m.Width - 1
		}
		if y >= m.Height {
			y = m.Height - 1
		}
		return m.ID(topology.Coord{X: x, Y: y})
	}
	return []topology.NodeID{
		pick(cx-1, cy-1), pick(cx, cy-1), pick(cx-1, cy), pick(cx, cy),
	}
}

// Synthetic is a network.Endpoint generating Bernoulli traffic under one
// of the canonical patterns.
type Synthetic struct {
	Pattern Pattern
	// Rate is the offered load in flits/node/cycle (Fig. 4/5's x-axis),
	// converted to packets using the packet-switched packet length.
	Rate float64
	// FlitsPerPacket normalises the offered load (Table I: 5).
	FlitsPerPacket int
	// AllowCS marks generated messages as eligible for circuit switching.
	AllowCS bool
	// Slack passed to the switching decision (-1 = network default).
	Slack int

	stopped bool
	sent    int64
}

// NewSynthetic builds a generator for the given pattern and offered load.
func NewSynthetic(p Pattern, rate float64, flitsPerPacket int, allowCS bool) *Synthetic {
	return &Synthetic{Pattern: p, Rate: rate, FlitsPerPacket: flitsPerPacket, AllowCS: allowCS, Slack: -1}
}

// Stop halts generation (used to drain the network at the end of a run).
func (s *Synthetic) Stop() { s.stopped = true }

// Sent reports how many packets this endpoint generated.
func (s *Synthetic) Sent() int64 { return s.sent }

// Tick implements network.Endpoint.
func (s *Synthetic) Tick(now sim.Cycle, ni *network.NI) {
	if s.stopped || s.Rate <= 0 {
		return
	}
	if !ni.RNG().Bernoulli(s.Rate / float64(s.FlitsPerPacket)) {
		return
	}
	dst, ok := Destination(s.Pattern, ni.Mesh(), ni.ID(), ni.RNG())
	if !ok {
		return
	}
	ni.Send(now, dst, network.SendOptions{
		Class:   flit.ClassOther,
		AllowCS: s.AllowCS,
		Slack:   s.Slack,
	})
	s.sent++
}

// OnDeliver implements network.Endpoint (synthetic traffic sinks silently).
func (s *Synthetic) OnDeliver(now sim.Cycle, ni *network.NI, pkt *flit.Packet) {}
