package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// cacheLinePad separates hot atomics so that the arrival counter (written
// by every participant once per phase) and the generation word (spun on by
// every participant) never share a cache line with each other or with
// neighboring executor state.
const cacheLinePad = 64

// barrierSpinBudget is how many generation-word loads a waiter performs
// before parking on the condition variable. Phases on the meshes this
// simulator targets take a handful of microseconds, so the common case is
// that the spin succeeds; parking only kicks in when workers outnumber
// CPUs or a phase is unusually long, where burning cycles would slow the
// straggler down further.
const barrierSpinBudget = 8192

// spinBudget is the per-barrier effective spin budget: on a single-CPU
// machine no other participant can make progress while this one spins, so
// waiters go straight to the yield/park path instead of burning the only
// core's quantum on loads that cannot succeed.
func spinBudget() int {
	if runtime.GOMAXPROCS(0) > 1 {
		return barrierSpinBudget
	}
	return 0
}

// barrierSpinYield is how often a spinning waiter offers its P to the
// scheduler, so oversubscribed worker counts (tests request more workers
// than CPUs) still make progress through the spin window.
const barrierSpinYield = 256

// phaseBarrier is a sense-reversing barrier for a fixed set of
// participants. Arrival is one atomic add; the last arriver publishes a
// new generation and wakes any parked waiters. Waiters spin on the
// generation word for barrierSpinBudget loads, then park on a condition
// variable. There are no per-phase channel sends or sync.WaitGroup
// re-arms: the same barrier object is reused every phase of every cycle.
type phaseBarrier struct {
	parties int32
	spin    int

	_       [cacheLinePad]byte
	arrived atomic.Int32
	_       [cacheLinePad]byte
	gen     atomic.Uint32
	_       [cacheLinePad]byte

	mu   sync.Mutex
	cond *sync.Cond
}

func newPhaseBarrier(parties int) *phaseBarrier {
	b := &phaseBarrier{parties: int32(parties), spin: spinBudget()}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties have called await for the current
// generation. The generation is read before arrival: a party arrives
// exactly once per generation, so the generation cannot advance between
// the load and the add (the advance requires this party's own arrival).
func (b *phaseBarrier) await() {
	gen := b.gen.Load()
	if b.arrived.Add(1) == b.parties {
		// Last arriver: reset the count for the next generation before
		// publishing the new generation, so released waiters arriving at
		// the next phase barrier see a zero count. The generation store
		// happens under the mutex so a waiter cannot check the
		// generation, decide to park, and miss the broadcast.
		b.arrived.Store(0)
		b.mu.Lock()
		b.gen.Store(gen + 1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for i := 0; i < b.spin; i++ {
		if b.gen.Load() != gen {
			return
		}
		if i%barrierSpinYield == barrierSpinYield-1 {
			runtime.Gosched()
		}
	}
	// One free yield before paying for the mutex/cond park: on a
	// single-CPU machine this is usually all it takes for the remaining
	// parties to arrive.
	runtime.Gosched()
	if b.gen.Load() != gen {
		return
	}
	b.mu.Lock()
	for b.gen.Load() == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
