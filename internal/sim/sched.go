package sim

import "sync/atomic"

// NodeState is the executor-side scheduling word for one ActiveTicker.
// It records, per phase parity, the latest phase counter the node is
// armed for; the executor skips a node whose slot is older than the
// phase being run.
//
// The phase counter for (cycle now, phase p) is pc = now*NumPhases + p.
// Slot pc&1 answers "is the node armed for phase pc?"; the other slot is
// the write side: every arm performed DURING phase pc targets the
// successor phase and stores the single value pc+1 into slot (pc+1)&1.
// Within one phase the read slot is never written and the write slot is
// written only with that one value, so concurrent arms from any number
// of neighbors are race-free and order-independent — exactly what the
// determinism contract needs. Values in a slot are monotonically
// increasing, so a node that went quiescent at phase pc simply stops
// comparing >= current and is skipped until someone arms it again.
// NodeState carries no cache-line padding: states are embedded in the
// routers and NIs they schedule — large, separately heap-allocated
// structs — so two nodes' words never share a line anyway, and padding
// would only bloat every node's working set.
type NodeState struct {
	armed [2]atomic.Uint64
}

// phaseCounter maps (cycle, phase) onto the monotonically increasing
// per-phase counter the armed slots are compared against.
func phaseCounter(now Cycle, phase Phase) uint64 {
	return uint64(now)*uint64(NumPhases) + uint64(phase)
}

// runnable reports whether the node is armed for phase pc.
func (s *NodeState) runnable(pc uint64) bool {
	return s.armed[pc&1].Load() >= pc
}

// armNext arms the node for the phase following pc. Safe to call from
// any worker while phase pc is running: the target slot is the current
// phase's write slot and every concurrent caller stores the same value.
func (s *NodeState) armNext(pc uint64) {
	s.armed[(pc+1)&1].Store(pc + 1)
}

// ArmNext arms the node for the phase immediately following
// (now, phase). Components call this while phase (now, phase) is being
// executed, at the moment they hand the node work: a router writing its
// output latch arms the downstream node for the same cycle's transfer
// phase; an NI staging an injection during transfer arms its router for
// the next cycle's compute phase.
func (s *NodeState) ArmNext(now Cycle, phase Phase) {
	s.armNext(phaseCounter(now, phase))
}

// Wake arms the node for both phases of cycle now. It must only be
// called between cycles (no Step in flight) — from external entry points
// such as an NI accepting a Send between Run calls, or management code
// that mutates node state outside the tick loop. The max-guard keeps the
// slots monotone if the node is already armed further ahead.
func (s *NodeState) Wake(now Cycle) {
	for p := Phase(0); p < Phase(NumPhases); p++ {
		pc := phaseCounter(now, p)
		if s.armed[pc&1].Load() < pc {
			s.armed[pc&1].Store(pc)
		}
	}
}

// ActiveTicker is a Ticker that participates in active-node scheduling.
// The executor skips a quiescent node's ticks entirely, so Quiescent
// must only report true when both phases would be exact state no-ops:
// ticking a quiescent node any number of times must leave every bit of
// simulation-visible state (everything the invariant digest hashes)
// unchanged, and any external event that ends the quiescence must arm
// the node via SchedState before the phase in which the node must act.
type ActiveTicker interface {
	Ticker
	// SchedState returns the node's scheduling word. The returned
	// pointer must be stable for the ticker's lifetime. Returning nil
	// opts the ticker out of scheduling (it then ticks every phase).
	SchedState() *NodeState
	// Quiescent reports whether the node can skip ticks until re-armed.
	// The executor calls it on the ticking goroutine immediately after a
	// PhaseCompute tick only — the phase in which every write is
	// node-local — so it may read the node's own state without
	// synchronization. Nodes ticked in other phases are re-armed
	// unconditionally.
	Quiescent() bool
}
