// Package sim provides the deterministic cycle-driven simulation kernel
// shared by every model in this repository: a clock, a seedable random
// number generator, and a phase-barriered parallel executor.
//
// Determinism is a hard requirement — every experiment in the paper
// reproduction must be bit-identical across runs and across serial/parallel
// execution — so all randomness flows through RNG instances owned by a
// single simulation entity, never through shared global state.
package sim

// RNG is a small, fast xorshift128+ pseudo-random number generator.
// It is deliberately not cryptographically secure; it exists to make
// simulations deterministic, portable, and allocation-free.
//
// The zero value is not valid; construct with NewRNG.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed using SplitMix64, so that
// nearby seeds produce decorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed reinitialises the generator state from seed.
func (r *RNG) Reseed(seed uint64) {
	// SplitMix64 to expand the seed into two nonzero words.
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Fork derives a new independent generator from this one, suitable for
// handing to a child entity so the parent and child streams stay decoupled.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}
