package sim

import (
	"reflect"
	"testing"
)

var partitionCases = []struct{ w, h, workers int }{
	{1, 1, 1}, {2, 2, 1}, {2, 2, 3}, {2, 2, 8},
	{6, 6, 1}, {6, 6, 2}, {6, 6, 4}, {6, 6, 5},
	{10, 6, 1}, {10, 6, 2}, {10, 6, 3}, {10, 6, 7}, {10, 6, 8}, {10, 6, 16},
	{32, 32, 1}, {32, 32, 2}, {32, 32, 4}, {32, 32, 8}, {32, 32, 16},
	{2, 4, 7}, {3, 1, 2}, {1, 9, 4},
}

// Every partitioner must cover each tile exactly once, with deterministic
// output.
func TestPartitionCoversEveryTileOnce(t *testing.T) {
	for _, p := range []Partitioner{StridePartitioner{}, BlockPartitioner{}} {
		for _, c := range partitionCases {
			parts := p.Partition(c.w, c.h, c.workers)
			seen := make([]int, c.w*c.h)
			for _, ids := range parts {
				for _, id := range ids {
					if id < 0 || id >= len(seen) {
						t.Fatalf("%s %dx%d w=%d: tile id %d out of range", p.Name(), c.w, c.h, c.workers, id)
					}
					seen[id]++
				}
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("%s %dx%d w=%d: tile %d assigned %d times", p.Name(), c.w, c.h, c.workers, id, n)
				}
			}
			if again := p.Partition(c.w, c.h, c.workers); !reflect.DeepEqual(parts, again) {
				t.Fatalf("%s %dx%d w=%d: Partition is not deterministic", p.Name(), c.w, c.h, c.workers)
			}
		}
	}
}

// StridePartitioner must reproduce exactly the spans the executor's
// historical inline chunking computed over an interleaved two-ticker-per-
// tile slice with align=2, so "stride" is a faithful A/B control for the
// pre-partitioner worker assignment.
func TestStrideMatchesLegacyAlignedChunking(t *testing.T) {
	for _, c := range partitionCases {
		n := c.w * c.h
		_, spans := PartitionSpans(StridePartitioner{}.Partition(c.w, c.h, c.workers), 2)

		// Legacy arithmetic from NewExecutorAligned: chunk over 2n tickers,
		// rounded up to align 2, workers clamped to the ticker count.
		tickers := 2 * n
		workers := c.workers
		if workers > tickers {
			workers = max(1, tickers)
		}
		legacy := make([]Span, 0, workers)
		if workers == 1 {
			legacy = append(legacy, Span{0, tickers})
		} else {
			chunk := (tickers + workers - 1) / workers
			chunk = (chunk + 1) / 2 * 2
			for i := 0; i < workers; i++ {
				lo := min(i*chunk, tickers)
				legacy = append(legacy, Span{lo, min(lo+chunk, tickers)})
			}
		}

		// The partitioner clamps workers to the tile count (not the ticker
		// count), so it may emit fewer spans; every span it does emit must
		// match, and any extra legacy spans must be empty.
		for i, s := range spans {
			if i >= len(legacy) {
				t.Fatalf("%dx%d w=%d: stride emitted %d spans, legacy %d", c.w, c.h, c.workers, len(spans), len(legacy))
			}
			if s != legacy[i] {
				t.Fatalf("%dx%d w=%d: span %d = %+v, legacy %+v", c.w, c.h, c.workers, i, s, legacy[i])
			}
		}
		for _, s := range legacy[len(spans):] {
			if s.Lo != s.Hi {
				t.Fatalf("%dx%d w=%d: legacy had extra non-empty span %+v", c.w, c.h, c.workers, s)
			}
		}
	}
}

// Each block partition must be an exact rectangle, listed row-major.
func TestBlockPartitionsAreRectangles(t *testing.T) {
	for _, c := range partitionCases {
		parts := BlockPartitioner{}.Partition(c.w, c.h, c.workers)
		for wi, ids := range parts {
			if len(ids) == 0 {
				continue
			}
			minX, minY := c.w, c.h
			maxX, maxY := -1, -1
			for _, id := range ids {
				x, y := id%c.w, id/c.w
				minX, minY = min(minX, x), min(minY, y)
				maxX, maxY = max(maxX, x), max(maxY, y)
			}
			bw, bh := maxX-minX+1, maxY-minY+1
			if len(ids) != bw*bh {
				t.Fatalf("%dx%d w=%d: worker %d has %d tiles in a %dx%d bounding box", c.w, c.h, c.workers, wi, len(ids), bw, bh)
			}
			for i, id := range ids {
				wantX, wantY := minX+i%bw, minY+i/bw
				if id != wantY*c.w+wantX {
					t.Fatalf("%dx%d w=%d: worker %d tile %d is id %d, want row-major %d", c.w, c.h, c.workers, wi, i, id, wantY*c.w+wantX)
				}
			}
		}
	}
}

// PartitionSpans must produce contiguous ascending spans that line up
// with the flattened order, and NewExecutorSpans must accept them and
// report matching owners.
func TestPartitionSpansAndExecutorOwners(t *testing.T) {
	parts := BlockPartitioner{}.Partition(10, 6, 4)
	order, spans := PartitionSpans(parts, 2)
	if len(order) != 60 {
		t.Fatalf("order has %d tiles, want 60", len(order))
	}

	tickers := make([]Ticker, 2*len(order))
	for i := range tickers {
		tickers[i] = tickFn(func(Cycle, Phase) {})
	}
	var clock Clock
	e := NewExecutorSpans(&clock, tickers, spans)
	defer e.Close()
	if e.Workers() != len(spans) {
		t.Fatalf("Workers() = %d, want %d", e.Workers(), len(spans))
	}
	for wi, s := range spans {
		for i := s.Lo; i < s.Hi; i++ {
			if got := e.Owner(i); got != wi {
				t.Fatalf("Owner(%d) = %d, want %d", i, got, wi)
			}
		}
	}
	e.Run(3)
	if clock.Now() != 3 {
		t.Fatalf("clock at %d after Run(3)", clock.Now())
	}
}

// Malformed spans are construction-time bugs and must panic.
func TestNewExecutorSpansRejectsBadSpans(t *testing.T) {
	tickers := []Ticker{tickFn(func(Cycle, Phase) {}), tickFn(func(Cycle, Phase) {})}
	var clock Clock
	for _, bad := range [][]Span{
		{{0, 1}},         // does not cover the slice
		{{0, 1}, {0, 2}}, // overlapping
		{{1, 2}},         // does not start at 0
		{{0, 3}},         // past the end
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("spans %+v did not panic", bad)
				}
			}()
			NewExecutorSpans(&clock, tickers, bad)
		}()
	}
}

type tickFn func(Cycle, Phase)

func (f tickFn) Tick(now Cycle, p Phase) { f(now, p) }
