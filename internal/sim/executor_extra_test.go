package sim

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Close / lifecycle contracts -----------------------------------------

func TestExecutorStepAfterClosePanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		clock := &Clock{}
		ts := make([]Ticker, 8)
		for i := range ts {
			ts[i] = &countingTicker{}
		}
		e := NewExecutor(clock, ts, workers)
		e.Run(2)
		e.Close()
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("workers=%d: Step after Close did not panic (the old executor silently fell back to serial)", workers)
				}
				if s, ok := p.(string); !ok || !strings.Contains(s, "closed") {
					t.Errorf("workers=%d: panic %v does not name the closed executor", workers, p)
				}
			}()
			e.Step()
		}()
	}
}

func TestExecutorCloseIdempotent(t *testing.T) {
	e := NewExecutor(&Clock{}, []Ticker{&countingTicker{}, &countingTicker{}}, 2)
	e.Run(3)
	e.Close()
	e.Close() // second Close must be a no-op, not a barrier deadlock
}

// TestExecutorCloseReleasesGoroutines pins the leak contract: Close joins
// every worker goroutine. Campaigns construct thousands of executors;
// leaking workers+barrier state per simulation would be fatal there.
func TestExecutorCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for rep := 0; rep < 10; rep++ {
		clock := &Clock{}
		ts := make([]Ticker, 32)
		for i := range ts {
			ts[i] = &countingTicker{}
		}
		e := NewExecutor(clock, ts, 8)
		e.Run(5)
		e.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 10 create/close rounds",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExecutorDoublePanicSameCycle: when two partitions panic in the same
// phase, exactly the first latched value must surface and the executor
// must still release every barrier participant (no deadlock).
func TestExecutorDoublePanicSameCycle(t *testing.T) {
	clock := &Clock{}
	ts := []Ticker{
		&panicTicker{at: 2}, &countingTicker{},
		&panicTicker{at: 2}, &countingTicker{},
	}
	e := NewExecutor(clock, ts, 4)
	func() {
		defer e.Close()
		defer func() {
			if p := recover(); p == nil {
				t.Fatal("neither panic reached the caller")
			}
		}()
		e.Run(10)
	}()
	if clock.Now() != 2 {
		t.Errorf("clock at %d, want the panicking cycle 2", clock.Now())
	}
}

// --- Active-node scheduling ----------------------------------------------

// sleeperTicker is an ActiveTicker that reports quiescent once it has
// run computeBudget compute ticks, then stays asleep until re-armed.
type sleeperTicker struct {
	node      NodeState
	computes  int
	transfers int
	budget    int
}

func (s *sleeperTicker) Tick(now Cycle, phase Phase) {
	if phase == PhaseCompute {
		s.computes++
	} else {
		s.transfers++
	}
}
func (s *sleeperTicker) SchedState() *NodeState { return &s.node }
func (s *sleeperTicker) Quiescent() bool        { return s.computes >= s.budget }

func TestExecutorSkipsQuiescentNodes(t *testing.T) {
	clock := &Clock{}
	sl := &sleeperTicker{budget: 3}
	always := &countingTicker{} // not an ActiveTicker: must tick every phase
	e := NewExecutor(clock, []Ticker{sl, always}, 1)
	defer e.Close()

	e.Run(10)
	// Cycles 0 and 1 tick fully; cycle 2's compute probe sees
	// computes==3, stops re-arming, and the un-armed cycle-2 transfer is
	// skipped along with everything after it.
	if sl.computes != 3 {
		t.Errorf("sleeper computes = %d, want 3 (skipped after quiescence)", sl.computes)
	}
	if sl.transfers != 2 {
		t.Errorf("sleeper transfers = %d, want 2", sl.transfers)
	}
	if always.computes != 10 || always.transfers != 10 {
		t.Errorf("non-scheduled ticker ran %d/%d, want 10/10", always.computes, always.transfers)
	}

	// An external wake re-arms both phases of the current cycle: the
	// node runs one compute (whose probe sees it is still quiescent),
	// the woken transfer, and the transfer's unconditionally re-armed
	// follow-up compute — then sleeps again.
	sl.budget = sl.computes + 1
	sl.node.Wake(clock.Now())
	e.Run(5)
	if sl.computes != 5 || sl.transfers != 3 {
		t.Errorf("woken sleeper ran %d/%d, want 5/3", sl.computes, sl.transfers)
	}
}

func TestExecutorAlwaysTickDisablesSkipping(t *testing.T) {
	clock := &Clock{}
	sl := &sleeperTicker{budget: 0} // quiescent from the start
	e := NewExecutor(clock, []Ticker{sl}, 1)
	defer e.Close()
	e.SetAlwaysTick(true)
	e.Run(6)
	if sl.computes != 6 || sl.transfers != 6 {
		t.Fatalf("AlwaysTick ran %d/%d, want 6/6", sl.computes, sl.transfers)
	}
	// Re-enabling scheduling re-arms everything; the node then runs one
	// probe compute, the armed transfer, and its follow-up compute
	// before going to sleep (see TestExecutorSkipsQuiescentNodes).
	e.SetAlwaysTick(false)
	e.Run(6)
	if sl.computes != 8 || sl.transfers != 7 {
		t.Fatalf("after re-enabling scheduling ran %d/%d, want 8/7", sl.computes, sl.transfers)
	}
}

// TestExecutorSchedulingParallelMatchesSerial runs the same sleeper mix
// under several worker counts, including counts that do not divide the
// ticker count, and requires identical per-ticker tick totals.
func TestExecutorSchedulingParallelMatchesSerial(t *testing.T) {
	const n = 37 // prime: never divisible by the worker counts below
	run := func(workers int) []int {
		clock := &Clock{}
		ts := make([]Ticker, n)
		sleepers := make([]*sleeperTicker, n)
		for i := range ts {
			sleepers[i] = &sleeperTicker{budget: i % 5}
			ts[i] = sleepers[i]
		}
		e := NewExecutor(clock, ts, workers)
		defer e.Close()
		e.Run(20)
		out := make([]int, n)
		for i, s := range sleepers {
			out[i] = s.computes*1000 + s.transfers
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 3, 8} {
		got := run(workers)
		for i := range serial {
			if serial[i] != got[i] {
				t.Fatalf("workers=%d: ticker %d ticks %d, serial %d", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestNodeStateParityProtocol(t *testing.T) {
	var st NodeState
	// Wake(5) arms both phases of cycle 5.
	st.Wake(5)
	if !st.runnable(phaseCounter(5, PhaseCompute)) || !st.runnable(phaseCounter(5, PhaseTransfer)) {
		t.Fatal("Wake(5) did not arm both phases of cycle 5")
	}
	if st.runnable(phaseCounter(6, PhaseCompute)) {
		t.Fatal("Wake(5) armed cycle 6")
	}
	// Arming during (5, compute) targets (5, transfer); arming during
	// (5, transfer) targets (6, compute).
	st.ArmNext(5, PhaseCompute)
	if !st.runnable(phaseCounter(5, PhaseTransfer)) {
		t.Fatal("ArmNext(5, compute) did not arm the same cycle's transfer")
	}
	st.ArmNext(5, PhaseTransfer)
	if !st.runnable(phaseCounter(6, PhaseCompute)) {
		t.Fatal("ArmNext(5, transfer) did not arm the next cycle's compute")
	}
	// Wake never regresses a slot that is already armed further ahead.
	st.Wake(3)
	if !st.runnable(phaseCounter(6, PhaseCompute)) {
		t.Fatal("Wake(3) regressed the armed-ahead slot")
	}
}

// --- Old channel-dispatch executor, kept as a benchmark yardstick --------

// channelExecutor replicates the pre-barrier executor design: a work
// channel, one send per partition per phase, and a WaitGroup re-armed
// every phase. It exists only so the benchmarks below can quantify what
// the sense-reversing barrier executor saves per cycle.
type channelExecutor struct {
	clock   *Clock
	tickers []Ticker
	chunks  []chanWork
	work    chan chanWork
	wg      sync.WaitGroup
}

type chanWork struct {
	lo, hi int
	now    Cycle
	phase  Phase
}

func newChannelExecutor(clock *Clock, tickers []Ticker, workers, align int) *channelExecutor {
	e := &channelExecutor{clock: clock, tickers: tickers}
	n := len(tickers)
	chunk := (n + workers - 1) / workers
	chunk = (chunk + align - 1) / align * align
	for lo := 0; lo < n; lo += chunk {
		e.chunks = append(e.chunks, chanWork{lo: lo, hi: min(lo+chunk, n)})
	}
	e.work = make(chan chanWork, len(e.chunks))
	for i := 0; i < workers; i++ {
		go func() {
			for item := range e.work {
				e.tickRange(item)
				e.wg.Done()
			}
		}()
	}
	return e
}

func (e *channelExecutor) tickRange(item chanWork) {
	defer func() { recover() }() // the old executor latched panics; cost parity
	for i := item.lo; i < item.hi; i++ {
		e.tickers[i].Tick(item.now, item.phase)
	}
}

func (e *channelExecutor) Step() {
	now := e.clock.Now()
	for p := Phase(0); p < Phase(NumPhases); p++ {
		e.wg.Add(len(e.chunks))
		for _, c := range e.chunks {
			c.now, c.phase = now, p
			e.work <- c
		}
		e.wg.Wait()
	}
	e.clock.Advance()
}

func (e *channelExecutor) Close() { close(e.work) }

// workTicker burns a deterministic amount of CPU per tick, approximating
// a router's per-phase cost so the executor benchmarks measure dispatch
// overhead against a realistic grain of work.
type workTicker struct{ state uint64 }

func (w *workTicker) Tick(now Cycle, phase Phase) {
	x := w.state + uint64(now)
	for i := 0; i < 48; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	w.state = x
}

func benchTickers(n int) []Ticker {
	ts := make([]Ticker, n)
	for i := range ts {
		ts[i] = &workTicker{state: uint64(i + 1)}
	}
	return ts
}

// The pair below is the acceptance yardstick: the barrier executor's
// Step at 4 workers over a 16x16-sized ticker set (512 tickers) versus
// the old channel-dispatch design on the identical workload.
func BenchmarkStepBarrier4x512(b *testing.B) {
	clock := &Clock{}
	e := NewExecutorAligned(clock, benchTickers(512), 4, 2)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkStepChannel4x512(b *testing.B) {
	clock := &Clock{}
	e := newChannelExecutor(clock, benchTickers(512), 4, 2)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkStepBarrier2x512(b *testing.B) {
	clock := &Clock{}
	e := NewExecutorAligned(clock, benchTickers(512), 2, 2)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkStepChannel2x512(b *testing.B) {
	clock := &Clock{}
	e := newChannelExecutor(clock, benchTickers(512), 2, 2)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// The Dispatch pair isolates pure dispatch overhead (no-op tickers):
// what one cycle costs in barrier rendezvous versus channel sends and
// WaitGroup re-arms, with zero simulation work to hide behind.
type noopTicker struct{}

func (noopTicker) Tick(now Cycle, phase Phase) {}

func noopTickers(n int) []Ticker {
	ts := make([]Ticker, n)
	for i := range ts {
		ts[i] = noopTicker{}
	}
	return ts
}

func BenchmarkDispatchBarrier4x512(b *testing.B) {
	e := NewExecutorAligned(&Clock{}, noopTickers(512), 4, 2)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkDispatchChannel4x512(b *testing.B) {
	e := newChannelExecutor(&Clock{}, noopTickers(512), 4, 2)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
