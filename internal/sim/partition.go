package sim

import "fmt"

// Partitioner is a named, deterministic strategy for assigning the tiles
// of a width×height mesh to workers. The executor itself only sees flat
// ticker spans; a Partitioner decides which tiles land in which span and
// in what order, which in turn decides both worker ownership (trace
// shard binding via Executor.Owner) and the memory order of per-tile
// state when the network lays tickers out partition-contiguously.
//
// Determinism contract: Partition must be a pure function of
// (width, height, workers). The concatenation of the returned lists is a
// permutation of the row-major tile ids 0..width*height-1, every tile
// appears exactly once, and the same inputs always produce the same
// lists in the same order. Simulation results never depend on the
// choice of partitioner — the two-phase barrier contract makes tick
// order within a phase unobservable — but traces, profiles and memory
// layout do, so the function must not consult anything but its
// arguments.
type Partitioner interface {
	// Name identifies the strategy in configs, bench reports and traces.
	Name() string
	// Partition returns one tile-id list per worker (some possibly
	// empty). Tile ids are row-major: id = y*width + x.
	Partition(width, height, workers int) [][]int
}

// StridePartitioner reproduces the executor's historical inline
// assignment: tiles in row-major id order, split into contiguous chunks
// of ceil(n/workers). Over a ticker slice interleaving two tickers per
// tile this yields exactly the spans NewExecutorAligned(…, align=2)
// computed, so "stride" is the A/B control for the block layout.
type StridePartitioner struct{}

// Name implements Partitioner.
func (StridePartitioner) Name() string { return "stride" }

// Partition implements Partitioner.
func (StridePartitioner) Partition(width, height, workers int) [][]int {
	n := width * height
	workers = clampWorkers(workers, n)
	chunk := (n + workers - 1) / workers
	parts := make([][]int, workers)
	for wi := range parts {
		lo := min(wi*chunk, n)
		hi := min(lo+chunk, n)
		ids := make([]int, hi-lo)
		for i := range ids {
			ids[i] = lo + i
		}
		parts[wi] = ids
	}
	return parts
}

// BlockPartitioner assigns each worker a rectangular block of tiles.
// Workers are arranged in a wx×wy grid chosen to minimize the block
// semi-perimeter (the cross-worker link surface); width and height are
// split into balanced contiguous bands. Blocks are numbered row-major
// over the grid, and each worker's tiles are listed row-major within its
// block, so a partition-contiguous memory layout keeps every worker's
// working set spatially compact and confines cross-worker traffic to
// block perimeters.
type BlockPartitioner struct{}

// Name implements Partitioner.
func (BlockPartitioner) Name() string { return "block" }

// Partition implements Partitioner.
func (BlockPartitioner) Partition(width, height, workers int) [][]int {
	n := width * height
	workers = clampWorkers(workers, n)
	wx, wy := blockGrid(width, height, workers)
	parts := make([][]int, 0, workers)
	for by := 0; by < wy; by++ {
		y0, y1 := bandSplit(height, wy, by)
		for bx := 0; bx < wx; bx++ {
			x0, x1 := bandSplit(width, wx, bx)
			ids := make([]int, 0, (x1-x0)*(y1-y0))
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					ids = append(ids, y*width+x)
				}
			}
			parts = append(parts, ids)
		}
	}
	return parts
}

// blockGrid factorizes workers into a wx×wy grid. Among all divisor
// pairs it picks the one minimizing the block semi-perimeter
// ceil(width/wx)+ceil(height/wy); pairs whose grid physically fits
// (wx <= width, wy <= height) always beat pairs that would leave empty
// bands. Ties resolve to the smallest wx, so the choice is a pure
// function of the arguments.
func blockGrid(width, height, workers int) (wx, wy int) {
	wx, wy = 1, workers
	best := 1 << 60
	for cx := 1; cx <= workers; cx++ {
		if workers%cx != 0 {
			continue
		}
		cy := workers / cx
		cost := (width+cx-1)/cx + (height+cy-1)/cy
		if cx > width || cy > height {
			cost += 1 << 30
		}
		if cost < best {
			best = cost
			wx, wy = cx, cy
		}
	}
	return wx, wy
}

// bandSplit returns the half-open range [lo, hi) of band b when total is
// divided into bands balanced contiguous pieces (sizes differ by at most
// one, larger pieces last).
func bandSplit(total, bands, b int) (lo, hi int) {
	return b * total / bands, (b + 1) * total / bands
}

// clampWorkers caps workers at the tile count (beyond it some workers
// could never receive a tile) and floors it at 1.
func clampWorkers(workers, tiles int) int {
	if workers < 1 {
		return 1
	}
	if workers > tiles {
		return max(1, tiles)
	}
	return workers
}

// PartitionerByName resolves a config string to a strategy. The empty
// string selects the default (block — the cache-local layout).
func PartitionerByName(name string) (Partitioner, error) {
	switch name {
	case "", "block":
		return BlockPartitioner{}, nil
	case "stride":
		return StridePartitioner{}, nil
	default:
		return nil, fmt.Errorf("sim: unknown partitioner %q (want \"stride\" or \"block\")", name)
	}
}

// PartitionSpans flattens a Partition result into the tile permutation
// (the order tiles should be laid out and ticked) and the per-worker
// ticker spans for a slice holding perTile tickers per tile in that
// order.
func PartitionSpans(parts [][]int, perTile int) (order []int, spans []Span) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	order = make([]int, 0, total)
	spans = make([]Span, len(parts))
	for i, p := range parts {
		lo := len(order) * perTile
		order = append(order, p...)
		spans[i] = Span{Lo: lo, Hi: len(order) * perTile}
	}
	return order, spans
}
