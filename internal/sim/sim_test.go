package sim

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent seeds produced %d identical draws out of 1000", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGIntnUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want approximately %.0f", i, c, want)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestRNGBernoulliExtremes(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1.0) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Fork()
	// Parent's subsequent stream must be reproducible: a twin parent that
	// forks identically continues identically.
	twin := NewRNG(5)
	twinChild := twin.Fork()
	for i := 0; i < 100; i++ {
		if parent.Uint64() != twin.Uint64() {
			t.Fatal("parent stream not reproducible after fork")
		}
		if child.Uint64() != twinChild.Uint64() {
			t.Fatal("forked child stream not reproducible")
		}
	}
}

func TestRNGIntnUnbiasedProperty(t *testing.T) {
	// Property: for any seed and bound, Intn stays within [0, n).
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %d", c.Now())
	}
	for i := 1; i <= 10; i++ {
		c.Advance()
		if c.Now() != Cycle(i) {
			t.Fatalf("after %d advances clock reads %d", i, c.Now())
		}
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset did not rewind clock")
	}
}

// countingTicker records the order and phases of its invocations.
type countingTicker struct {
	computes, transfers int64
	lastCycle           Cycle
}

func (ct *countingTicker) Tick(now Cycle, phase Phase) {
	switch phase {
	case PhaseCompute:
		atomic.AddInt64(&ct.computes, 1)
	case PhaseTransfer:
		atomic.AddInt64(&ct.transfers, 1)
	}
	ct.lastCycle = now
}

func TestExecutorSerial(t *testing.T) {
	clock := &Clock{}
	ts := make([]Ticker, 5)
	cts := make([]*countingTicker, 5)
	for i := range ts {
		cts[i] = &countingTicker{}
		ts[i] = cts[i]
	}
	e := NewExecutor(clock, ts, 1)
	defer e.Close()
	e.Run(10)
	if clock.Now() != 10 {
		t.Fatalf("clock at %d after 10 cycles", clock.Now())
	}
	for i, ct := range cts {
		if ct.computes != 10 || ct.transfers != 10 {
			t.Errorf("ticker %d: computes=%d transfers=%d, want 10/10", i, ct.computes, ct.transfers)
		}
	}
}

func TestExecutorParallelMatchesSerial(t *testing.T) {
	run := func(workers int) []int64 {
		clock := &Clock{}
		ts := make([]Ticker, 37)
		cts := make([]*countingTicker, len(ts))
		for i := range ts {
			cts[i] = &countingTicker{}
			ts[i] = cts[i]
		}
		e := NewExecutor(clock, ts, workers)
		defer e.Close()
		e.Run(25)
		out := make([]int64, len(ts))
		for i, ct := range cts {
			out[i] = ct.computes*1000 + ct.transfers
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("ticker %d differs: serial=%d parallel=%d", i, serial[i], parallel[i])
		}
	}
}

// panicTicker panics during the compute phase of a chosen cycle.
type panicTicker struct{ at Cycle }

func (p *panicTicker) Tick(now Cycle, phase Phase) {
	if now == p.at && phase == PhaseCompute {
		panic("boom")
	}
}

// TestExecutorPanicReachesCaller checks panic containment: a Ticker
// panic on a pooled worker goroutine must not kill the process (which
// would bypass any recover installed by the caller, e.g. a campaign
// job) but re-raise from Step on the caller's goroutine.
func TestExecutorPanicReachesCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		clock := &Clock{}
		ts := []Ticker{&countingTicker{}, &panicTicker{at: 3}, &countingTicker{}, &countingTicker{}}
		e := NewExecutor(clock, ts, workers)
		func() {
			defer e.Close()
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("workers=%d: Ticker panic did not reach the caller", workers)
				}
				if s := fmt.Sprint(p); !strings.Contains(s, "boom") {
					t.Errorf("workers=%d: panic %q does not carry the original value", workers, s)
				}
			}()
			e.Run(10)
		}()
		if clock.Now() != 3 {
			t.Errorf("workers=%d: clock at %d, want the panicking cycle 3", workers, clock.Now())
		}
	}
}

func TestExecutorRunUntil(t *testing.T) {
	clock := &Clock{}
	ct := &countingTicker{}
	e := NewExecutor(clock, []Ticker{ct}, 1)
	defer e.Close()
	n, ok := e.RunUntil(func() bool { return ct.computes >= 7 }, 100)
	if !ok || n != 7 {
		t.Fatalf("RunUntil returned (%d,%v), want (7,true)", n, ok)
	}
	n, ok = e.RunUntil(func() bool { return false }, 5)
	if ok || n != 5 {
		t.Fatalf("RunUntil limit returned (%d,%v), want (5,false)", n, ok)
	}
}

// TestExecutorRunUntilAlreadyDone pins the contract that a condition
// already satisfied at entry returns (0, true) without running a cycle:
// RunUntil("drain") on an already-drained network must not advance time.
func TestExecutorRunUntilAlreadyDone(t *testing.T) {
	clock := &Clock{}
	ct := &countingTicker{}
	e := NewExecutor(clock, []Ticker{ct}, 1)
	defer e.Close()
	n, ok := e.RunUntil(func() bool { return true }, 100)
	if !ok || n != 0 {
		t.Fatalf("RunUntil on satisfied condition returned (%d,%v), want (0,true)", n, ok)
	}
	if clock.Now() != 0 || ct.computes != 0 {
		t.Fatalf("RunUntil ran a cycle anyway: clock=%d computes=%d", clock.Now(), ct.computes)
	}
}

// TestExecutorHonorsWorkerCount checks that the requested parallelism is
// used as given (clamped only to [1, len(tickers)]), not silently capped
// at runtime.NumCPU(): determinism regressions that only reproduce at
// high worker counts must be reproducible on small CI machines.
func TestExecutorHonorsWorkerCount(t *testing.T) {
	clock := &Clock{}
	ts := make([]Ticker, 64)
	for i := range ts {
		ts[i] = &countingTicker{}
	}
	e := NewExecutor(clock, ts, 48) // far above any CI runner's NumCPU
	defer e.Close()
	if got := e.Workers(); got != 48 {
		t.Fatalf("Workers() = %d, want the requested 48", got)
	}
	e.Run(5)
	for i, tk := range ts {
		if c := tk.(*countingTicker).computes; c != 5 {
			t.Fatalf("ticker %d ran %d computes, want 5", i, c)
		}
	}

	// Out-of-range requests clamp to something sane rather than panic.
	e2 := NewExecutor(&Clock{}, []Ticker{&countingTicker{}}, 0)
	defer e2.Close()
	if got := e2.Workers(); got != 1 {
		t.Fatalf("Workers() for request 0 = %d, want 1", got)
	}
	e3 := NewExecutor(&Clock{}, []Ticker{&countingTicker{}, &countingTicker{}}, 99)
	defer e3.Close()
	if got := e3.Workers(); got != 2 {
		t.Fatalf("Workers() above len(tickers) = %d, want 2", got)
	}
}

func TestExecutorEmptyTickers(t *testing.T) {
	clock := &Clock{}
	e := NewExecutor(clock, nil, 8)
	defer e.Close()
	e.Run(3)
	if clock.Now() != 3 {
		t.Fatalf("clock at %d, want 3", clock.Now())
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGIntn(b *testing.B) {
	r := NewRNG(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(36)
	}
	_ = sink
}

func BenchmarkExecutorSerial(b *testing.B) {
	clock := &Clock{}
	ts := make([]Ticker, 256)
	for i := range ts {
		ts[i] = &countingTicker{}
	}
	e := NewExecutor(clock, ts, 1)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkExecutorParallel(b *testing.B) {
	clock := &Clock{}
	ts := make([]Ticker, 256)
	for i := range ts {
		ts[i] = &countingTicker{}
	}
	e := NewExecutor(clock, ts, 4)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
