package sim

// Cycle is a simulation timestamp measured in router clock cycles.
// The evaluated system runs at 1.5 GHz (Table I), so wall-clock time is
// Cycle / 1.5e9 seconds; the power model performs that conversion.
type Cycle int64

// Clock is the global cycle counter for one simulation instance.
// All components of a network share a single Clock and observe the same
// value within a cycle; only the simulation driver advances it.
type Clock struct {
	now Cycle
}

// Now returns the current cycle.
func (c *Clock) Now() Cycle { return c.now }

// Advance moves the clock forward by one cycle.
func (c *Clock) Advance() { c.now++ }

// Reset rewinds the clock to cycle zero.
func (c *Clock) Reset() { c.now = 0 }

// Ticker is anything driven by the simulation loop. Tick is invoked once
// per cycle per phase; see Executor for the phase contract.
type Ticker interface {
	// Tick runs one phase of one cycle. Phase semantics are owned by the
	// caller: the network steps routers in PhaseCompute and transfers
	// flits/credits between routers in PhaseTransfer.
	Tick(now Cycle, phase Phase)
}

// Phase identifies one of the two barrier-separated sub-steps of a cycle.
//
// The two-phase split is what makes parallel execution deterministic:
// during PhaseCompute every component reads only state written in previous
// phases and writes only its own private state (pipeline registers, output
// latches); during PhaseTransfer all cross-component movement (link
// traversal, credit return) happens, again touching disjoint state per
// link. A barrier between the phases therefore yields results identical to
// serial execution regardless of scheduling.
type Phase uint8

const (
	// PhaseCompute is the intra-component phase: pipeline advance,
	// allocation, switch traversal into output latches.
	PhaseCompute Phase = iota
	// PhaseTransfer is the inter-component phase: latches move across
	// links into downstream input latches, credits propagate upstream.
	PhaseTransfer
	numPhases
)

// NumPhases is the count of phases executed each cycle.
const NumPhases = int(numPhases)
