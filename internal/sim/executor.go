package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// The armed-slot parity scheme in NodeState assumes exactly two phases
// per cycle; this fails to compile if NumPhases ever changes.
var _ = [1]struct{}{}[NumPhases-2]

// Executor drives a set of Tickers through cycles, either serially or
// with a fixed worker pool. Both modes produce bit-identical simulation
// results because each phase is barrier-separated and Tickers only touch
// disjoint state within a phase (see Phase).
//
// Parallel stepping uses one reusable sense-reversing barrier and static
// per-worker partitions: the caller's goroutine executes partition 0 and
// workers execute the rest, rendezvousing NumPhases+1 times per cycle
// (a start gate plus one barrier after each phase). There are no
// per-phase channel sends or WaitGroup re-arms on the hot path.
//
// Tickers implementing ActiveTicker additionally participate in
// active-node scheduling: a node whose Quiescent() held after its last
// tick is skipped until an external event re-arms it (see NodeState).
// Skipping never changes results because Quiescent is only allowed to
// hold when both phases would be exact state no-ops.
type Executor struct {
	clock   *Clock
	tickers []Ticker
	// sched and active run parallel to tickers: sched[i] is the
	// scheduling word of tickers[i] (nil = always tick), active[i] the
	// ActiveTicker view for the post-tick Quiescent probe. Both are nil
	// slices when no ticker opted into scheduling.
	sched  []*NodeState
	active []ActiveTicker
	// alwaysTick disables skipping (every node ticks every phase); used
	// by equivalence tests to pin the skipping path against the
	// exhaustive one.
	alwaysTick bool

	workers int
	parts   []partition
	barrier *phaseBarrier
	// curNow carries the cycle being executed from the caller to the
	// workers; it is written before the start-gate arrival and read
	// after the release, so the barrier's atomics order it.
	curNow   Cycle
	shutdown atomic.Bool
	closed   bool
	wg       sync.WaitGroup

	// A panic inside any participant would otherwise either kill the
	// process (worker goroutine) or abandon the other participants at a
	// phase barrier (caller goroutine). Every participant latches the
	// first panic here, keeps arriving at the cycle's remaining
	// barriers, and the caller re-raises it after the last barrier.
	hasPanic   atomic.Bool
	panicMu    sync.Mutex
	panicked   any
	panicStack []byte
}

// partition is one worker's static [lo, hi) span of the ticker slice,
// padded so adjacent partitions never share a cache line.
type partition struct {
	lo, hi int
	_      [cacheLinePad - 16]byte
}

// NewExecutor creates an executor over tickers. workers <= 1 selects the
// serial path; workers > 1 spawns workers-1 goroutines which persist for
// the executor's lifetime (the caller's goroutine executes the first
// partition itself).
//
// The requested worker count is honored even beyond the machine's CPU
// count (the goroutines just time-share): results are bit-identical for
// any worker count, and tests that compare serial against parallel
// executions rely on actually getting a parallel partition — a silent
// clamp to NumCPU() on a single-CPU CI runner would turn those into
// vacuous serial-vs-serial comparisons. The only cap is the ticker
// count, below which extra workers could never receive work.
func NewExecutor(clock *Clock, tickers []Ticker, workers int) *Executor {
	return NewExecutorAligned(clock, tickers, workers, 1)
}

// NewExecutorAligned is NewExecutor with partition boundaries rounded up
// to a multiple of align. Callers whose ticker slice interleaves
// entities of one tile (router then NI) pass the interleaving factor so
// a tile never straddles two workers, keeping each worker's working set
// local.
func NewExecutorAligned(clock *Clock, tickers []Ticker, workers, align int) *Executor {
	if workers < 1 {
		workers = 1
	}
	if workers > len(tickers) {
		workers = max(1, len(tickers))
	}
	if align < 1 {
		align = 1
	}
	n := len(tickers)
	spans := make([]Span, workers)
	if workers == 1 {
		spans[0] = Span{Lo: 0, Hi: n}
	} else {
		chunk := (n + workers - 1) / workers
		chunk = (chunk + align - 1) / align * align
		for i := range spans {
			lo := min(i*chunk, n)
			spans[i] = Span{Lo: lo, Hi: min(lo+chunk, n)}
		}
	}
	return NewExecutorSpans(clock, tickers, spans)
}

// Span is one worker's half-open range [Lo, Hi) over the ticker slice.
type Span struct{ Lo, Hi int }

// NewExecutorSpans creates an executor whose per-worker partitions are
// given explicitly — one span per worker, worker 0 first. Spans must be
// ascending, contiguous, and cover the ticker slice exactly; anything
// else is a construction-time bug and panics. Callers that lay tickers
// out partition-contiguously (see sim.Partitioner) use this to hand the
// executor the matching spans instead of having it re-derive chunks.
func NewExecutorSpans(clock *Clock, tickers []Ticker, spans []Span) *Executor {
	if len(spans) == 0 {
		spans = []Span{{Lo: 0, Hi: len(tickers)}}
	}
	at := 0
	for i, s := range spans {
		if s.Lo != at || s.Hi < s.Lo {
			panic(fmt.Sprintf("sim: span %d is [%d,%d), want to start at %d", i, s.Lo, s.Hi, at))
		}
		at = s.Hi
	}
	if at != len(tickers) {
		panic(fmt.Sprintf("sim: spans cover [0,%d), want [0,%d)", at, len(tickers)))
	}
	workers := len(spans)
	e := &Executor{clock: clock, tickers: tickers, workers: workers}
	for i, t := range tickers {
		at, ok := t.(ActiveTicker)
		if !ok {
			continue
		}
		st := at.SchedState()
		if st == nil {
			continue
		}
		if e.sched == nil {
			e.sched = make([]*NodeState, len(tickers))
			e.active = make([]ActiveTicker, len(tickers))
		}
		e.sched[i] = st
		e.active[i] = at
	}
	e.WakeAll()
	if workers > 1 {
		e.parts = make([]partition, workers)
		for i, s := range spans {
			e.parts[i] = partition{lo: s.Lo, hi: s.Hi}
		}
		e.barrier = newPhaseBarrier(workers)
		e.wg.Add(workers - 1)
		for i := 1; i < workers; i++ {
			go e.workerLoop(i)
		}
	}
	return e
}

// Workers returns the effective worker count (>= 1).
func (e *Executor) Workers() int { return e.workers }

// Owner returns the index of the worker whose static partition executes
// ticker i (worker 0 is the caller goroutine). Serial executors own
// everything on worker 0. Observability attach code uses this to bind
// each ticker's emit handle to its worker's private shard.
func (e *Executor) Owner(i int) int {
	for w, pt := range e.parts {
		if i >= pt.lo && i < pt.hi {
			return w
		}
	}
	return 0
}

// WakeAll re-arms every scheduled node for the clock's current cycle.
// Management code that mutates node state outside the tick loop (e.g. a
// network-wide slot-table reset) calls this so no node sleeps through
// the change. Must not be called while a Step is in flight.
func (e *Executor) WakeAll() {
	now := e.clock.Now()
	for _, st := range e.sched {
		if st != nil {
			st.Wake(now)
		}
	}
}

// SetAlwaysTick disables (true) or re-enables (false) active-node
// scheduling. With scheduling re-enabled, every node is re-armed so
// nothing sleeps through states reached while skipping was off. Test
// hook; must not be called while a Step is in flight.
func (e *Executor) SetAlwaysTick(v bool) {
	e.alwaysTick = v
	if !v {
		e.WakeAll()
	}
}

func (e *Executor) workerLoop(part int) {
	defer e.wg.Done()
	for {
		e.barrier.await() // start gate
		if e.shutdown.Load() {
			return
		}
		now := e.curNow
		for p := Phase(0); p < Phase(NumPhases); p++ {
			e.runPart(part, now, p)
			e.barrier.await()
		}
	}
}

// runPart executes one partition of one phase, converting a Ticker panic
// into a latched value instead of a process crash or a barrier deadlock.
// Only the first panic is kept; once a panic is latched the tickers'
// state is inconsistent and the executor must not be reused, so later
// panics add no information and remaining partitions stop ticking.
func (e *Executor) runPart(part int, now Cycle, phase Phase) {
	if e.hasPanic.Load() {
		return
	}
	defer func() {
		if p := recover(); p != nil {
			stack := debug.Stack()
			e.panicMu.Lock()
			if e.panicked == nil {
				e.panicked = p
				e.panicStack = stack
			}
			e.panicMu.Unlock()
			e.hasPanic.Store(true)
		}
	}()
	pt := e.parts[part]
	e.tickSpan(pt.lo, pt.hi, now, phase)
}

// tickSpan is the scheduling hot loop: tick every armed node in
// [lo, hi) for the given phase, then re-arm it for the next phase.
//
// The Quiescent probe (which decides NOT to re-arm) runs only after
// PhaseCompute ticks: during compute every write is node-local, so the
// probe can read the node's state race-free. During transfer, neighbors
// legitimately write into a node (latch pulls, credit returns, local
// staging), so a post-transfer probe would race; instead a ticked node
// is unconditionally re-armed for the next compute, whose probe then
// puts it to sleep if it is truly idle — one extra no-op tick per sleep
// transition.
func (e *Executor) tickSpan(lo, hi int, now Cycle, phase Phase) {
	tickers := e.tickers
	if e.sched == nil || e.alwaysTick {
		for i := lo; i < hi; i++ {
			tickers[i].Tick(now, phase)
		}
		return
	}
	pc := phaseCounter(now, phase)
	sched := e.sched
	if phase == PhaseCompute {
		active := e.active
		for i := lo; i < hi; i++ {
			st := sched[i]
			if st == nil {
				tickers[i].Tick(now, phase)
				continue
			}
			if !st.runnable(pc) {
				continue
			}
			tickers[i].Tick(now, phase)
			if !active[i].Quiescent() {
				st.armNext(pc)
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		st := sched[i]
		if st == nil {
			tickers[i].Tick(now, phase)
			continue
		}
		if !st.runnable(pc) {
			continue
		}
		tickers[i].Tick(now, phase)
		st.armNext(pc)
	}
}

// Step executes one full cycle (all phases) and advances the clock.
func (e *Executor) Step() {
	if e.closed {
		panic("sim: Step on closed Executor")
	}
	now := e.clock.Now()
	if e.workers <= 1 {
		for p := Phase(0); p < Phase(NumPhases); p++ {
			e.tickSpan(0, len(e.tickers), now, p)
		}
		e.clock.Advance()
		return
	}
	e.curNow = now
	e.barrier.await() // start gate: release workers into this cycle
	for p := Phase(0); p < Phase(NumPhases); p++ {
		e.runPart(0, now, p)
		e.barrier.await()
	}
	// Re-raise a participant panic on the caller's goroutine so per-job
	// containment (campaign's recover) sees it. This happens after the
	// cycle's final barrier — the workers are already parked at the next
	// start gate, so a deferred Close still shuts them down cleanly —
	// and before the clock advances, pinning the panicking cycle. The
	// latched value stays set: the executor's state is inconsistent
	// after a panic and it must not be stepped again.
	if e.hasPanic.Load() {
		e.panicMu.Lock()
		p, stack := e.panicked, e.panicStack
		e.panicMu.Unlock()
		panic(fmt.Sprintf("sim: worker panic: %v\n%s", p, stack))
	}
	e.clock.Advance()
}

// Run executes n cycles.
func (e *Executor) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// RunUntil executes cycles until done reports true, checking before the
// first cycle and after every cycle, or until limit cycles have elapsed.
// It returns the number of cycles executed and whether done was
// satisfied. A condition that already holds at entry returns (0, true)
// without stepping — running a gratuitous cycle would skew
// packet-target-driven campaign measurements by one cycle.
func (e *Executor) RunUntil(done func() bool, limit int) (cycles int, ok bool) {
	if done() {
		return 0, true
	}
	for i := 0; i < limit; i++ {
		e.Step()
		if done() {
			return i + 1, true
		}
	}
	return limit, false
}

// Close shuts down the worker pool and waits for every worker goroutine
// to exit, so no goroutines leak. Close is idempotent; any Step after
// Close panics (before this contract the executor silently fell back to
// the serial path, masking use-after-close bugs).
func (e *Executor) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.workers > 1 {
		e.shutdown.Store(true)
		e.barrier.await() // trip the start gate so parked workers observe shutdown
		e.wg.Wait()
	}
}
