package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Executor drives a set of Tickers through cycles, either serially or with
// a fixed worker pool. Both modes produce bit-identical simulation results
// because each phase is barrier-separated and Tickers only touch disjoint
// state within a phase (see Phase).
type Executor struct {
	clock   *Clock
	tickers []Ticker

	workers int
	// chunks holds the precomputed [lo, hi) ticker ranges dispatched each
	// phase, so the per-phase loop only stamps (now, phase) onto ready
	// items instead of re-deriving the partition every cycle.
	chunks []workItem
	// wg and work are reused across cycles to avoid per-cycle allocation.
	work chan workItem
	wg   sync.WaitGroup

	// A panic inside a worker goroutine would otherwise kill the whole
	// process, bypassing any recover the caller (e.g. a campaign job)
	// has installed on its own goroutine. Workers latch the first panic
	// here and runPhase re-raises it on the caller's goroutine.
	panicMu    sync.Mutex
	panicked   any
	panicStack []byte
}

type workItem struct {
	lo, hi int
	now    Cycle
	phase  Phase
}

// NewExecutor creates an executor over tickers. workers <= 1 selects the
// serial path; workers > 1 spawns that many goroutines which persist for
// the executor's lifetime. Parallelism only pays off for large meshes
// (>= 16x16); small networks should use workers == 1.
//
// The requested worker count is honored even beyond the machine's CPU
// count (the goroutines just time-share): results are bit-identical for
// any worker count, and tests that compare serial against parallel
// executions rely on actually getting a parallel partition — a silent
// clamp to NumCPU() on a single-CPU CI runner would turn those into
// vacuous serial-vs-serial comparisons. The only cap is the ticker
// count, below which extra workers could never receive work.
func NewExecutor(clock *Clock, tickers []Ticker, workers int) *Executor {
	return NewExecutorAligned(clock, tickers, workers, 1)
}

// NewExecutorAligned is NewExecutor with chunk boundaries rounded up to a
// multiple of align. Callers whose ticker slice interleaves entities of
// one tile (router then NI) pass the interleaving factor so a tile never
// straddles two workers, keeping each worker's working set local.
func NewExecutorAligned(clock *Clock, tickers []Ticker, workers, align int) *Executor {
	if workers < 1 {
		workers = 1
	}
	if workers > len(tickers) {
		workers = max(1, len(tickers))
	}
	if align < 1 {
		align = 1
	}
	e := &Executor{clock: clock, tickers: tickers, workers: workers}
	if workers > 1 {
		n := len(tickers)
		chunk := (n + workers - 1) / workers
		chunk = (chunk + align - 1) / align * align
		for lo := 0; lo < n; lo += chunk {
			e.chunks = append(e.chunks, workItem{lo: lo, hi: min(lo+chunk, n)})
		}
		e.work = make(chan workItem, len(e.chunks))
		for i := 0; i < workers; i++ {
			// The channel is passed as an argument: workers must not read
			// the e.work field, which Close nils on the caller's goroutine.
			go e.worker(e.work)
		}
	}
	return e
}

// Workers returns the effective worker count (>= 1).
func (e *Executor) Workers() int { return e.workers }

func (e *Executor) worker(work chan workItem) {
	for item := range work {
		e.tickRange(item)
		e.wg.Done()
	}
}

// tickRange runs one work item, converting a Ticker panic into a latched
// value instead of a process crash. Only the first panic is kept; once a
// panic is latched the tickers' state is inconsistent and the executor
// must not be reused, so later panics add no information.
func (e *Executor) tickRange(item workItem) {
	defer func() {
		if p := recover(); p != nil {
			stack := debug.Stack()
			e.panicMu.Lock()
			if e.panicked == nil {
				e.panicked = p
				e.panicStack = stack
			}
			e.panicMu.Unlock()
		}
	}()
	for i := item.lo; i < item.hi; i++ {
		e.tickers[i].Tick(item.now, item.phase)
	}
}

// Step executes one full cycle (all phases) and advances the clock.
func (e *Executor) Step() {
	now := e.clock.Now()
	for p := Phase(0); p < Phase(NumPhases); p++ {
		e.runPhase(now, p)
	}
	e.clock.Advance()
}

// Run executes n cycles.
func (e *Executor) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// RunUntil executes cycles until done reports true, checking before the
// first cycle and after every cycle, or until limit cycles have elapsed.
// It returns the number of cycles executed and whether done was
// satisfied. A condition that already holds at entry returns (0, true)
// without stepping — running a gratuitous cycle would skew
// packet-target-driven campaign measurements by one cycle.
func (e *Executor) RunUntil(done func() bool, limit int) (cycles int, ok bool) {
	if done() {
		return 0, true
	}
	for i := 0; i < limit; i++ {
		e.Step()
		if done() {
			return i + 1, true
		}
	}
	return limit, false
}

// Close releases the worker pool. The executor must not be used afterwards.
func (e *Executor) Close() {
	if e.work != nil {
		close(e.work)
		e.work = nil
	}
}

func (e *Executor) runPhase(now Cycle, phase Phase) {
	if e.workers <= 1 || e.work == nil {
		for i := range e.tickers {
			e.tickers[i].Tick(now, phase)
		}
		return
	}
	e.wg.Add(len(e.chunks))
	for _, c := range e.chunks {
		c.now, c.phase = now, phase
		e.work <- c
	}
	e.wg.Wait()
	// Re-raise a worker panic on the caller's goroutine so per-job
	// containment (campaign's recover) sees it. The latched value stays
	// set: the executor's state is inconsistent after a panic and it
	// must not be stepped again.
	e.panicMu.Lock()
	p, stack := e.panicked, e.panicStack
	e.panicMu.Unlock()
	if p != nil {
		panic(fmt.Sprintf("sim: worker panic: %v\n%s", p, stack))
	}
}
