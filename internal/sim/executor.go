package sim

import (
	"runtime"
	"sync"
)

// Executor drives a set of Tickers through cycles, either serially or with
// a fixed worker pool. Both modes produce bit-identical simulation results
// because each phase is barrier-separated and Tickers only touch disjoint
// state within a phase (see Phase).
type Executor struct {
	clock   *Clock
	tickers []Ticker

	workers int
	// wg and work are reused across cycles to avoid per-cycle allocation.
	work chan workItem
	wg   sync.WaitGroup
}

type workItem struct {
	lo, hi int
	now    Cycle
	phase  Phase
}

// NewExecutor creates an executor over tickers. workers <= 1 selects the
// serial path; workers > 1 spawns that many goroutines which persist for
// the executor's lifetime. Parallelism only pays off for large meshes
// (>= 16x16); small networks should use workers == 1.
func NewExecutor(clock *Clock, tickers []Ticker, workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	if workers > len(tickers) {
		workers = max(1, len(tickers))
	}
	e := &Executor{clock: clock, tickers: tickers, workers: workers}
	if workers > 1 {
		e.work = make(chan workItem, workers)
		for i := 0; i < workers; i++ {
			go e.worker()
		}
	}
	return e
}

func (e *Executor) worker() {
	for item := range e.work {
		for i := item.lo; i < item.hi; i++ {
			e.tickers[i].Tick(item.now, item.phase)
		}
		e.wg.Done()
	}
}

// Step executes one full cycle (all phases) and advances the clock.
func (e *Executor) Step() {
	now := e.clock.Now()
	for p := Phase(0); p < Phase(NumPhases); p++ {
		e.runPhase(now, p)
	}
	e.clock.Advance()
}

// Run executes n cycles.
func (e *Executor) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// RunUntil executes cycles until done reports true, checking after every
// cycle, or until limit cycles have elapsed. It returns the number of
// cycles executed and whether done was satisfied.
func (e *Executor) RunUntil(done func() bool, limit int) (cycles int, ok bool) {
	for i := 0; i < limit; i++ {
		e.Step()
		if done() {
			return i + 1, true
		}
	}
	return limit, false
}

// Close releases the worker pool. The executor must not be used afterwards.
func (e *Executor) Close() {
	if e.work != nil {
		close(e.work)
		e.work = nil
	}
}

func (e *Executor) runPhase(now Cycle, phase Phase) {
	n := len(e.tickers)
	if e.workers <= 1 || e.work == nil {
		for i := 0; i < n; i++ {
			e.tickers[i].Tick(now, phase)
		}
		return
	}
	chunk := (n + e.workers - 1) / e.workers
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		e.wg.Add(1)
		e.work <- workItem{lo: lo, hi: hi, now: now, phase: phase}
	}
	e.wg.Wait()
}
