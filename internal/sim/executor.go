package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Executor drives a set of Tickers through cycles, either serially or with
// a fixed worker pool. Both modes produce bit-identical simulation results
// because each phase is barrier-separated and Tickers only touch disjoint
// state within a phase (see Phase).
type Executor struct {
	clock   *Clock
	tickers []Ticker

	workers int
	// wg and work are reused across cycles to avoid per-cycle allocation.
	work chan workItem
	wg   sync.WaitGroup

	// A panic inside a worker goroutine would otherwise kill the whole
	// process, bypassing any recover the caller (e.g. a campaign job)
	// has installed on its own goroutine. Workers latch the first panic
	// here and runPhase re-raises it on the caller's goroutine.
	panicMu    sync.Mutex
	panicked   any
	panicStack []byte
}

type workItem struct {
	lo, hi int
	now    Cycle
	phase  Phase
}

// NewExecutor creates an executor over tickers. workers <= 1 selects the
// serial path; workers > 1 spawns that many goroutines which persist for
// the executor's lifetime. Parallelism only pays off for large meshes
// (>= 16x16); small networks should use workers == 1.
func NewExecutor(clock *Clock, tickers []Ticker, workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	if workers > len(tickers) {
		workers = max(1, len(tickers))
	}
	e := &Executor{clock: clock, tickers: tickers, workers: workers}
	if workers > 1 {
		e.work = make(chan workItem, workers)
		for i := 0; i < workers; i++ {
			go e.worker()
		}
	}
	return e
}

func (e *Executor) worker() {
	for item := range e.work {
		e.tickRange(item)
		e.wg.Done()
	}
}

// tickRange runs one work item, converting a Ticker panic into a latched
// value instead of a process crash. Only the first panic is kept; once a
// panic is latched the tickers' state is inconsistent and the executor
// must not be reused, so later panics add no information.
func (e *Executor) tickRange(item workItem) {
	defer func() {
		if p := recover(); p != nil {
			stack := debug.Stack()
			e.panicMu.Lock()
			if e.panicked == nil {
				e.panicked = p
				e.panicStack = stack
			}
			e.panicMu.Unlock()
		}
	}()
	for i := item.lo; i < item.hi; i++ {
		e.tickers[i].Tick(item.now, item.phase)
	}
}

// Step executes one full cycle (all phases) and advances the clock.
func (e *Executor) Step() {
	now := e.clock.Now()
	for p := Phase(0); p < Phase(NumPhases); p++ {
		e.runPhase(now, p)
	}
	e.clock.Advance()
}

// Run executes n cycles.
func (e *Executor) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// RunUntil executes cycles until done reports true, checking after every
// cycle, or until limit cycles have elapsed. It returns the number of
// cycles executed and whether done was satisfied.
func (e *Executor) RunUntil(done func() bool, limit int) (cycles int, ok bool) {
	for i := 0; i < limit; i++ {
		e.Step()
		if done() {
			return i + 1, true
		}
	}
	return limit, false
}

// Close releases the worker pool. The executor must not be used afterwards.
func (e *Executor) Close() {
	if e.work != nil {
		close(e.work)
		e.work = nil
	}
}

func (e *Executor) runPhase(now Cycle, phase Phase) {
	n := len(e.tickers)
	if e.workers <= 1 || e.work == nil {
		for i := 0; i < n; i++ {
			e.tickers[i].Tick(now, phase)
		}
		return
	}
	chunk := (n + e.workers - 1) / e.workers
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		e.wg.Add(1)
		e.work <- workItem{lo: lo, hi: hi, now: now, phase: phase}
	}
	e.wg.Wait()
	// Re-raise a worker panic on the caller's goroutine so per-job
	// containment (campaign's recover) sees it. The latched value stays
	// set: the executor's state is inconsistent after a panic and it
	// must not be stepped again.
	e.panicMu.Lock()
	p, stack := e.panicked, e.panicStack
	e.panicMu.Unlock()
	if p != nil {
		panic(fmt.Sprintf("sim: worker panic: %v\n%s", p, stack))
	}
}
