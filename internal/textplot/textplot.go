// Package textplot renders small ASCII line charts for terminal output —
// enough to see a load-latency knee or an energy curve without leaving
// the shell. cmd/sweep and the examples use it to visualise Fig. 4/5
// style results.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (X, Y) points.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// Plot is a fixed-size character canvas with axes.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	// YMax caps the y-axis (0 = auto). Useful for latency curves whose
	// saturated points would flatten everything else.
	YMax float64

	series []Series
}

// DefaultMarkers are assigned to series without an explicit marker.
var DefaultMarkers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Add appends a series. X and Y must have equal length.
func (p *Plot) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("textplot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
	}
	if s.Marker == 0 {
		s.Marker = DefaultMarkers[len(p.series)%len(DefaultMarkers)]
	}
	p.series = append(p.series, s)
	return nil
}

// Render draws the chart.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1)
	for _, s := range p.series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			y := s.Y[i]
			if p.YMax > 0 && y > p.YMax {
				y = p.YMax
			}
			ymax = math.Max(ymax, y)
		}
	}
	if len(p.series) == 0 || math.IsInf(xmin, 1) {
		return "(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = bytes(' ', w)
	}
	for _, s := range p.series {
		for i := range s.X {
			y := s.Y[i]
			if p.YMax > 0 && y > p.YMax {
				y = p.YMax
			}
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(w-1)))
			row := int(math.Round((y - ymin) / (ymax - ymin) * float64(h-1)))
			r := h - 1 - row
			if r >= 0 && r < h && col >= 0 && col < w {
				grid[r][col] = s.Marker
			}
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yTop := fmt.Sprintf("%.3g", ymax)
	yBot := fmt.Sprintf("%.3g", ymin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", pad), w-len(fmt.Sprintf("%.3g", xmax)), fmt.Sprintf("%.3g", xmin), fmt.Sprintf("%.3g", xmax))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", pad), p.XLabel, p.YLabel)
	}
	for _, s := range p.series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", pad), s.Marker, s.Name)
	}
	return b.String()
}

func bytes(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// Heatmap renders a 2D grid of values in [0, inf) as shaded ASCII cells,
// normalised to the maximum — used for per-router utilisation maps.
func Heatmap(title string, grid [][]float64) string {
	shades := []byte(" .:-=+*#%@")
	maxV := 0.0
	for _, row := range grid {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s (max %.3f)\n", title, maxV)
	}
	for _, row := range grid {
		b.WriteByte('|')
		for _, v := range row {
			idx := 0
			if maxV > 0 {
				idx = int(v / maxV * float64(len(shades)-1))
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	return b.String()
}
