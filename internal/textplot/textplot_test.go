package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	var p Plot
	p.Title = "load-latency"
	p.XLabel = "offered"
	p.YLabel = "latency"
	err := p.Add(Series{Name: "packet", X: []float64{0.1, 0.2, 0.3}, Y: []float64{20, 25, 60}})
	if err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if !strings.Contains(out, "load-latency") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "packet") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("marker missing")
	}
	if !strings.Contains(out, "x: offered") {
		t.Error("axis labels missing")
	}
}

func TestRenderEmpty(t *testing.T) {
	var p Plot
	if out := p.Render(); out != "(no data)\n" {
		t.Errorf("empty plot rendered %q", out)
	}
}

func TestAddRejectsMismatchedLengths(t *testing.T) {
	var p Plot
	if err := p.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestMarkersAssignedPerSeries(t *testing.T) {
	var p Plot
	p.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}})
	p.Add(Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}})
	out := p.Render()
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("legend markers wrong:\n%s", out)
	}
}

func TestYMaxClamps(t *testing.T) {
	var p Plot
	p.Height = 8
	p.YMax = 100
	p.Add(Series{Name: "sat", X: []float64{0, 1, 2}, Y: []float64{10, 50, 1e6}})
	out := p.Render()
	if !strings.Contains(out, "100") {
		t.Errorf("clamped axis missing:\n%s", out)
	}
	if strings.Contains(out, "1e+06") {
		t.Error("unclamped value leaked into axis")
	}
}

func TestSinglePointAndFlatSeries(t *testing.T) {
	var p Plot
	p.Add(Series{Name: "dot", X: []float64{5}, Y: []float64{5}})
	if out := p.Render(); !strings.Contains(out, "*") {
		t.Errorf("single point not rendered:\n%s", out)
	}
	var q Plot
	q.Add(Series{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{3, 3, 3}})
	if out := q.Render(); !strings.Contains(out, "*") {
		t.Errorf("flat series not rendered:\n%s", out)
	}
}

func TestCustomSize(t *testing.T) {
	var p Plot
	p.Width = 20
	p.Height = 5
	p.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	out := p.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 5 plot rows + axis + x labels + legend = 8 lines.
	if len(lines) != 8 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestHeatmap(t *testing.T) {
	grid := [][]float64{{0, 0.5}, {1.0, 0.25}}
	out := Heatmap("util", grid)
	if !strings.Contains(out, "util (max 1.000)") {
		t.Errorf("missing title/max: %q", out)
	}
	if !strings.Contains(out, "@@") {
		t.Error("max cell not darkest shade")
	}
	if !strings.Contains(out, "  ") {
		t.Error("zero cell not blank")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("expected 3 lines, got %d", len(lines))
	}
}

func TestHeatmapAllZero(t *testing.T) {
	out := Heatmap("", [][]float64{{0, 0}})
	if !strings.Contains(out, "  ") {
		t.Errorf("all-zero heatmap rendered %q", out)
	}
}
