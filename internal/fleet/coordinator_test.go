package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tdmnoc/internal/campaign"
	"tdmnoc/internal/stats"
)

// fakeClock drives lease expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testSpec is a tiny 4-job grid (2 rates x 2 seeds).
func testSpec(rates ...float64) campaign.Spec {
	if len(rates) == 0 {
		rates = []float64{0.05, 0.10}
	}
	return campaign.Spec{
		Modes:         []string{"tdm"},
		Patterns:      []string{"transpose"},
		Meshes:        []campaign.MeshSize{{Width: 4, Height: 4}},
		Rates:         rates,
		Seeds:         []uint64{1, 2},
		WarmupCycles:  100,
		MeasureCycles: 200,
	}
}

// stubRecords fabricates completion records for a shard without
// simulating anything.
func stubRecords(t *testing.T, spec campaign.Spec, shard campaign.Shard) []campaign.Record {
	t.Helper()
	jobs, err := spec.ShardJobs(shard.Index, shard.Size)
	if err != nil {
		t.Fatalf("ShardJobs: %v", err)
	}
	recs := make([]campaign.Record, len(jobs))
	for i, j := range jobs {
		recs[i] = campaign.Record{Key: j.Key, Label: j.Label, Rate: j.Rate, Result: stats.RunRecord{Runs: 1}}
	}
	return recs
}

func newTestCoordinator(t *testing.T, clock *fakeClock, opt Options) *Coordinator {
	t.Helper()
	if opt.Store == nil {
		ss, err := campaign.OpenShardedStore(t.TempDir())
		if err != nil {
			t.Fatalf("OpenShardedStore: %v", err)
		}
		t.Cleanup(func() { ss.Close() })
		opt.Store = ss
	}
	if opt.ShardSize == 0 {
		opt.ShardSize = 2
	}
	if opt.LeaseTTL == 0 {
		opt.LeaseTTL = 30 * time.Second
	}
	if clock != nil {
		opt.Now = clock.Now
	}
	c, err := NewCoordinator(opt)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

func TestSubmitExpandAndShard(t *testing.T) {
	c := newTestCoordinator(t, nil, Options{})
	resp, err := c.Submit(SubmitRequest{Spec: testSpec()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Jobs != 4 || resp.Shards != 2 || resp.CachedShards != 0 {
		t.Fatalf("got jobs=%d shards=%d cached=%d, want 4/2/0", resp.Jobs, resp.Shards, resp.CachedShards)
	}
	st, ok := c.Status(resp.ID)
	if !ok || st.State != "running" || st.Jobs != 4 {
		t.Fatalf("status = %+v, ok=%v", st, ok)
	}
	if m := c.Metrics(); m.QueueDepth != 2 || m.TenantQueued["default"] != 4 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestLeaseCompleteLifecycle(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, Options{})
	spec := testSpec()
	resp, err := c.Submit(SubmitRequest{Tenant: "alice", Spec: spec})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i := 0; i < resp.Shards; i++ {
		l, ok := c.Lease("w1")
		if !ok {
			t.Fatalf("lease %d: no work", i)
		}
		if l.Tenant != "alice" || l.Jobs != 2 {
			t.Fatalf("lease = %+v", l)
		}
		cr, err := c.Complete(l.LeaseID, stubRecords(t, spec, l.Shard))
		if err != nil {
			t.Fatalf("Complete: %v", err)
		}
		if cr.Persisted != 2 || cr.Duplicates != 0 || cr.Failed != 0 {
			t.Fatalf("complete = %+v", cr)
		}
	}
	if _, ok := c.Lease("w1"); ok {
		t.Fatal("lease after completion: expected no work")
	}
	st, _ := c.Status(resp.ID)
	if st.State != "done" || st.ShardsDone != 2 {
		t.Fatalf("status = %+v", st)
	}
	m := c.Metrics()
	if m.JobsCompleted != 4 || m.RecordsPersisted != 4 || m.LeasesActive != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if len(m.TenantInflight) != 0 || len(m.TenantQueued) != 0 {
		t.Fatalf("tenant accounting not drained: %+v", m)
	}
}

func TestLeaseExpiryRequeuesAndLateCompletionWins(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, Options{})
	spec := testSpec()
	if _, err := c.Submit(SubmitRequest{Spec: spec}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	dead, ok := c.Lease("doomed")
	if !ok {
		t.Fatal("no lease")
	}
	clock.Advance(31 * time.Second)

	// The next lease call sweeps; the doomed shard comes back first.
	stolen, ok := c.Lease("thief")
	if !ok {
		t.Fatal("no re-lease after expiry")
	}
	if stolen.Shard.Index != dead.Shard.Index {
		t.Fatalf("re-lease got shard %d, want expired shard %d", stolen.Shard.Index, dead.Shard.Index)
	}
	if m := c.Metrics(); m.LeasesExpired != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", m.LeasesExpired)
	}

	// The doomed worker was only slow, not dead: its late completion is
	// accepted and the thief's racing lease is retired.
	if _, err := c.Complete(dead.LeaseID, stubRecords(t, spec, dead.Shard)); err != nil {
		t.Fatalf("late Complete: %v", err)
	}
	if m := c.Metrics(); m.LeasesActive != 0 {
		t.Fatalf("racing lease not retired: %+v", m)
	}
	// The thief finishes anyway; its records dedup to zero writes.
	cr, err := c.Complete(stolen.LeaseID, stubRecords(t, spec, stolen.Shard))
	if err != nil {
		t.Fatalf("thief Complete: %v", err)
	}
	if cr.Persisted != 0 || cr.Duplicates != 2 {
		t.Fatalf("thief complete = %+v, want all duplicates", cr)
	}
	if d := c.opt.Store.Dead(); d != 0 {
		t.Fatalf("store has %d dead lines; duplicate completions must not persist", d)
	}
}

func TestCompleteUnknownLease(t *testing.T) {
	c := newTestCoordinator(t, nil, Options{})
	if _, err := c.Complete("l999999", nil); err == nil {
		t.Fatal("expected error for unknown lease")
	}
}

func TestTenantQuotaRejectsAndFrees(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, Options{TenantQuota: 6})
	spec := testSpec() // 4 jobs
	if _, err := c.Submit(SubmitRequest{Tenant: "bob", Spec: spec}); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	// 4 outstanding + 4 requested > 6: rejected with the typed error.
	other := testSpec(0.15, 0.20)
	_, err := c.Submit(SubmitRequest{Tenant: "bob", Spec: other})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("expected QuotaError, got %v", err)
	}
	if qe.Outstanding != 4 || qe.Requested != 4 || qe.Quota != 6 {
		t.Fatalf("QuotaError = %+v", qe)
	}
	// Other tenants are unaffected.
	if _, err := c.Submit(SubmitRequest{Tenant: "carol", Spec: other}); err != nil {
		t.Fatalf("carol Submit: %v", err)
	}
	// Finish bob's campaign; the quota frees.
	for {
		l, ok := c.Lease("w")
		if !ok {
			break
		}
		if _, err := c.Complete(l.LeaseID, stubRecords(t, l.Spec, l.Shard)); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	if _, err := c.Submit(SubmitRequest{Tenant: "bob", Spec: testSpec(0.25, 0.30)}); err != nil {
		t.Fatalf("Submit after quota freed: %v", err)
	}
	if m := c.Metrics(); m.SubmitsRejected != 1 {
		t.Fatalf("SubmitsRejected = %d, want 1", m.SubmitsRejected)
	}
}

func TestWeightedFairDispatch(t *testing.T) {
	q := newWFQ()
	pend := func(n int) []int {
		s := make([]int, n)
		for i := range s {
			s[i] = i
		}
		return s
	}
	q.add("heavy", "t", 3, pend(100))
	q.add("light", "t", 1, pend(100))
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		id, _, ok := q.pick()
		if !ok {
			t.Fatal("queue ran dry")
		}
		counts[id]++
	}
	if counts["heavy"] != 30 || counts["light"] != 10 {
		t.Fatalf("dispatch counts = %v, want heavy=30 light=10 (3:1 weights)", counts)
	}
}

func TestFastCompleteFromStore(t *testing.T) {
	c := newTestCoordinator(t, nil, Options{})
	spec := testSpec()
	first, err := c.Submit(SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for {
		l, ok := c.Lease("w")
		if !ok {
			break
		}
		if _, err := c.Complete(l.LeaseID, stubRecords(t, spec, l.Shard)); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	// Resubmitting the same spec finds every record in the store: the
	// campaign is born done and never queues a shard.
	again, err := c.Submit(SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if again.CachedShards != first.Shards {
		t.Fatalf("CachedShards = %d, want %d", again.CachedShards, first.Shards)
	}
	st, _ := c.Status(again.ID)
	if st.State != "done" {
		t.Fatalf("resubmitted campaign state = %q, want done", st.State)
	}
	if _, ok := c.Lease("w"); ok {
		t.Fatal("cached campaign should queue no shards")
	}
}

func TestDrainRejectsSubmitsAndStopsLeasing(t *testing.T) {
	c := newTestCoordinator(t, nil, Options{})
	spec := testSpec()
	if _, err := c.Submit(SubmitRequest{Spec: spec}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	l, ok := c.Lease("w")
	if !ok {
		t.Fatal("no lease")
	}
	c.Drain()
	if _, err := c.Submit(SubmitRequest{Spec: testSpec(0.15)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining: %v, want ErrDraining", err)
	}
	if _, ok := c.Lease("w2"); ok {
		t.Fatal("lease granted while draining")
	}
	// In-flight work still lands.
	if !c.Renew(l.LeaseID) {
		t.Fatal("renew refused while draining")
	}
	if _, err := c.Complete(l.LeaseID, stubRecords(t, spec, l.Shard)); err != nil {
		t.Fatalf("Complete while draining: %v", err)
	}
}

func TestCompactionAfterReleasedShardDuplicates(t *testing.T) {
	// Force duplicate *writes* (not just deduped completions) by
	// appending through two stores over the same directory — the
	// concurrent-writer shape — then verify the coordinator's background
	// sweep compacts once dead weight crosses the threshold.
	dir := t.TempDir()
	a, err := campaign.OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := campaign.OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := func(i int) campaign.Record {
		return campaign.Record{Key: fmt.Sprintf("%064x", i), Result: stats.RunRecord{Runs: 1}}
	}
	// Every key lands in shard 0 (leading zeros), written by all three
	// handles: stores b and c never see a's cache, so their appends are
	// real duplicate lines — dead weight strictly exceeding live.
	const n = 400
	for i := 0; i < n; i++ {
		for _, ss := range []*campaign.ShardedStore{a, b, c} {
			if _, err := ss.Append(rec(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	a.Close()
	b.Close()
	c.Close()
	reopened, err := campaign.OpenShardedStore(dir)
	if err != nil {
		t.Fatalf("reload after duplicate writers: %v", err)
	}
	defer reopened.Close()
	if reopened.Len() != n {
		t.Fatalf("Len = %d, want %d (duplicates must collapse)", reopened.Len(), n)
	}
	if reopened.Dead() != 2*n {
		t.Fatalf("Dead = %d, want %d", reopened.Dead(), 2*n)
	}
	compacted, err := reopened.MaybeCompact()
	if err != nil {
		t.Fatalf("MaybeCompact: %v", err)
	}
	if compacted == 0 {
		t.Fatal("expected at least one shard compacted")
	}
	if reopened.Dead() != 0 {
		t.Fatalf("Dead after compaction = %d, want 0", reopened.Dead())
	}
	final, err := campaign.OpenShardedStore(dir)
	if err != nil {
		t.Fatalf("reload after compaction: %v", err)
	}
	defer final.Close()
	if final.Len() != n || final.Dead() != 0 {
		t.Fatalf("after compaction reload: live=%d dead=%d, want %d/0", final.Len(), final.Dead(), n)
	}
}
