package fleet

import (
	"fmt"
	"sort"
	"time"
)

// lease is one granted shard: the coordinator's record of who is
// computing what and until when.
type lease struct {
	id       string
	campaign string
	shard    int
	jobs     int
	worker   string
	deadline time.Time
}

// leaseTable tracks active leases and remembers every grant it ever
// made (tombstones), so a completion arriving after expiry — the dead
// worker that wasn't dead, the network partition that healed — can
// still be resolved to its campaign and shard. Tombstones are two
// strings and two ints per grant; a coordinator would need billions of
// leases before this matters, and forgetting them would instead turn
// late completions into discarded work.
//
// leaseTable is not self-locking: the Coordinator serialises access
// under its own mutex, which also orders lease state against campaign
// and quota state.
type leaseTable struct {
	seq     int
	active  map[string]*lease
	history map[string]lease // every grant, by id (including active)
	expired int64
}

func newLeaseTable() *leaseTable {
	return &leaseTable{active: map[string]*lease{}, history: map[string]lease{}}
}

// grant creates a lease for (campaign, shard).
func (t *leaseTable) grant(campaignID string, shard, jobs int, worker string, deadline time.Time) *lease {
	t.seq++
	l := &lease{
		id:       fmt.Sprintf("l%06d", t.seq),
		campaign: campaignID,
		shard:    shard,
		jobs:     jobs,
		worker:   worker,
		deadline: deadline,
	}
	t.active[l.id] = l
	t.history[l.id] = *l
	return l
}

// renew extends an active lease, reporting whether it still existed.
func (t *leaseTable) renew(id string, deadline time.Time) bool {
	l, ok := t.active[id]
	if !ok {
		return false
	}
	l.deadline = deadline
	return true
}

// resolve maps any lease id ever granted to its (campaign, shard),
// active or not.
func (t *leaseTable) resolve(id string) (lease, bool) {
	l, ok := t.history[id]
	return l, ok
}

// drop removes an active lease (completion or supersession). Reports
// whether it was active.
func (t *leaseTable) drop(id string) (*lease, bool) {
	l, ok := t.active[id]
	if ok {
		delete(t.active, id)
	}
	return l, ok
}

// sweep removes every lease past its deadline and returns them sorted
// by lease id — the caller re-queues their shards. Sorting matters:
// map iteration order is random, so several leases expiring in the same
// sweep would otherwise re-queue their shards in a different order on
// every run, and two coordinators applying the same request sequence
// (journal replay included) would make divergent WFQ decisions.
func (t *leaseTable) sweep(now time.Time) []*lease {
	var out []*lease
	for id, l := range t.active {
		if now.After(l.deadline) {
			delete(t.active, id)
			t.expired++
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// restore reinstates a lease as active (journal replay), recording its
// tombstone as grant would.
func (t *leaseTable) restore(l lease) {
	cp := l
	t.active[l.id] = &cp
	t.history[l.id] = l
}

// remember records only the tombstone of a grant whose shard has since
// completed, so a late completion against it still resolves.
func (t *leaseTable) remember(l lease) {
	t.history[l.id] = l
}
