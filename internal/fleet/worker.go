package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"tdmnoc/internal/campaign"
)

// WorkerOptions configures a fleet worker.
type WorkerOptions struct {
	// Coordinator is the base URL of the coordinator, e.g.
	// "http://localhost:8080" (required).
	Coordinator string
	// Name identifies this worker in coordinator logs and lease
	// listings (default: "worker-<pid>").
	Name string
	// Workers bounds concurrent jobs within a shard (0 = NumCPU).
	Workers int
	// JobTimeout caps one simulation (0 = none).
	JobTimeout time.Duration
	// PollInterval is the idle backoff base when the coordinator has no
	// work (0 = 500ms); errors back off exponentially from here up to
	// MaxBackoff (0 = 15s). Both are jittered so a fleet restarted
	// together does not poll in lockstep.
	PollInterval time.Duration
	MaxBackoff   time.Duration
	// Client is the HTTP client (nil = a 30s-timeout client).
	Client *http.Client
	// Runner substitutes the job runner (nil = campaign.Simulate);
	// tests use it to make shards slow or instant.
	Runner campaign.Runner
	// Seed seeds the jitter source (0 = from the worker name) so tests
	// can pin backoff sequences.
	Seed int64
}

// Worker is the pull side of the fabric: it leases shards from the
// coordinator, re-derives their jobs from the spec, simulates them on
// a local campaign engine, and posts the records back, renewing the
// lease while it works. All failure handling is retry-with-jitter
// against an idempotent protocol — the worker never needs to know
// whether a previous attempt half-landed.
type Worker struct {
	opt      WorkerOptions
	client   *http.Client
	rng      *rand.Rand
	draining atomic.Bool

	// Counters for the worker-mode /metrics endpoint.
	ShardsDone   atomic.Int64
	ShardsFailed atomic.Int64
	JobsRun      atomic.Int64
	LeaseErrors  atomic.Int64
}

// NewWorker builds a worker.
func NewWorker(opt WorkerOptions) (*Worker, error) {
	if opt.Coordinator == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if opt.Name == "" {
		opt.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if opt.PollInterval <= 0 {
		opt.PollInterval = 500 * time.Millisecond
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 15 * time.Second
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	seed := opt.Seed
	if seed == 0 {
		for _, b := range []byte(opt.Name) {
			seed = seed*131 + int64(b)
		}
	}
	return &Worker{opt: opt, client: client, rng: rand.New(rand.NewSource(seed))}, nil
}

// Drain makes the worker exit after its current shard completes
// instead of leasing another — the graceful half of worker shutdown.
// Cancelling the Run context is the abrupt half (the lease expires and
// the shard is re-issued elsewhere).
func (w *Worker) Drain() { w.draining.Store(true) }

// Draining reports whether Drain was called.
func (w *Worker) Draining() bool { return w.draining.Load() }

// jitter spreads d over [d/2, d) so retries desynchronise. rand.Rand
// is not goroutine-safe, but jitter is only called from the Run loop.
// The window clamps to >= 1ns: a caller configuring PollInterval <= 1ns
// leaves no room to jitter over, and Int63n panics on a non-positive
// bound.
func (w *Worker) jitter(d time.Duration) time.Duration {
	half := d / 2
	if half < 1 {
		half = 1
	}
	return half + time.Duration(w.rng.Int63n(int64(half)))
}

// sleep waits the jittered duration or until ctx cancels.
func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(w.jitter(d))
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Run pulls and executes shards until ctx is cancelled or Drain is
// called. It returns nil on a clean exit; coordinator unreachability
// is retried forever (work-stealing fleets outlive coordinator
// restarts), never returned.
func (w *Worker) Run(ctx context.Context) error {
	backoff := w.opt.PollInterval
	for {
		if ctx.Err() != nil || w.draining.Load() {
			return nil
		}
		lease, ok, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			w.LeaseErrors.Add(1)
			w.sleep(ctx, backoff)
			if backoff *= 2; backoff > w.opt.MaxBackoff {
				backoff = w.opt.MaxBackoff
			}
			continue
		}
		backoff = w.opt.PollInterval
		if !ok {
			// No work right now; idle-poll. The coordinator answers 204
			// both when queues are empty and when it drains, so workers
			// need no special shutdown signal.
			w.sleep(ctx, w.opt.PollInterval)
			continue
		}
		if err := w.runShard(ctx, lease); err != nil {
			w.ShardsFailed.Add(1)
			fmt.Fprintf(os.Stderr, "fleet: %s: shard %d of %s: %v\n", w.opt.Name, lease.Shard.Index, lease.Campaign, err)
			continue
		}
		w.ShardsDone.Add(1)
	}
}

// runShard executes one leased shard end to end: derive jobs, simulate
// with background renewal, post the records back.
func (w *Worker) runShard(ctx context.Context, lease LeaseResponse) error {
	jobs, err := lease.Spec.ShardJobs(lease.Shard.Index, lease.Shard.Size)
	if err != nil {
		// Coordinator and worker disagree on the job grid — a version
		// skew, not a transient. Abandon the lease; it will expire.
		return fmt.Errorf("derive jobs: %w", err)
	}

	// Renew at TTL/3 until the shard finishes. A renewal returning
	// "gone" means the coordinator already re-queued the shard (e.g. a
	// long GC pause); the records remain valid, so finish and complete
	// anyway — the store dedups whatever the other worker also lands.
	renewCtx, stopRenew := context.WithCancel(ctx)
	defer stopRenew()
	interval := lease.TTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-renewCtx.Done():
				return
			case <-t.C:
				if gone := w.renew(renewCtx, lease.LeaseID); gone {
					return
				}
			}
		}
	}()

	eng := campaign.New(campaign.Options{
		Workers:    w.opt.Workers,
		JobTimeout: w.opt.JobTimeout,
		Runner:     w.opt.Runner,
	})
	recs := eng.Run(ctx, jobs)
	stopRenew()
	if ctx.Err() != nil {
		// Abrupt shutdown: don't post skipped-job records as failures;
		// the lease expires and the shard re-runs elsewhere.
		return ctx.Err()
	}
	w.JobsRun.Add(int64(len(recs)))
	return w.complete(ctx, lease.LeaseID, recs)
}

// lease asks the coordinator for a shard. ok is false on 204 (no
// work); err covers transport failures and unexpected statuses.
func (w *Worker) lease(ctx context.Context) (LeaseResponse, bool, error) {
	var resp LeaseResponse
	body, _ := json.Marshal(LeaseRequest{Worker: w.opt.Name})
	status, err := w.post(ctx, "/fleet/lease", body, &resp)
	if err != nil {
		return resp, false, err
	}
	switch status {
	case http.StatusOK:
		return resp, true, nil
	case http.StatusNoContent:
		return resp, false, nil
	default:
		return resp, false, fmt.Errorf("lease: unexpected status %d", status)
	}
}

// renew extends the lease; it reports true when the lease is gone for
// good (410) so the renewal loop can stop.
func (w *Worker) renew(ctx context.Context, id string) (gone bool) {
	status, err := w.post(ctx, "/fleet/leases/"+id+"/renew", nil, nil)
	if err != nil {
		// Transient; the next tick retries well within the TTL.
		return false
	}
	return status == http.StatusGone
}

// complete posts the shard's records, retrying with jittered
// exponential backoff. Completion is idempotent on the coordinator
// side, so retrying after an ambiguous failure (timeout after the
// server processed the request) is safe.
func (w *Worker) complete(ctx context.Context, id string, recs []campaign.Record) error {
	body, err := json.Marshal(CompleteRequest{Worker: w.opt.Name, Records: recs})
	if err != nil {
		return fmt.Errorf("encode complete: %w", err)
	}
	backoff := w.opt.PollInterval
	var lastErr error
	for attempt := 0; attempt < 6; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var resp CompleteResponse
		status, err := w.post(ctx, "/fleet/leases/"+id+"/complete", body, &resp)
		switch {
		case err != nil:
			lastErr = err
		case status == http.StatusOK:
			return nil
		case status == http.StatusNotFound:
			// Coordinator restarted without a journal (or the journal
			// rotated the tombstone of a finished campaign away); the
			// shard will be re-run from a fresh lease if it still
			// matters. Nothing to retry.
			return fmt.Errorf("complete: lease %s unknown to coordinator", id)
		default:
			lastErr = fmt.Errorf("complete: unexpected status %d", status)
		}
		w.sleep(ctx, backoff)
		if backoff *= 2; backoff > w.opt.MaxBackoff {
			backoff = w.opt.MaxBackoff
		}
	}
	return fmt.Errorf("complete: giving up after retries: %w", lastErr)
}

// post sends a JSON POST and decodes the response body into out (when
// non-nil and the status carries a body).
func (w *Worker) post(ctx context.Context, path string, body []byte, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
