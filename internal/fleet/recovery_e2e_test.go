package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"tdmnoc/internal/campaign"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/stats"
)

// TestFleetDeterminismAcrossCoordinatorRestart is the tentpole's
// acceptance test: a campaign is killed with its coordinator mid-sweep
// — workers holding leases, shards queued, completes already landed —
// and a new coordinator replaying the journal over the same store must
// finish the campaign with merged aggregates byte-identical to a
// single-process engine run, with zero duplicate lines in the store and
// zero lost work. The workers never stop: they retry through the outage
// exactly as a real fleet rides out a coordinator restart.
func TestFleetDeterminismAcrossCoordinatorRestart(t *testing.T) {
	spec := campaign.Spec{
		Modes:         []string{"tdm"},
		Patterns:      []string{"transpose"},
		Meshes:        []campaign.MeshSize{{Width: 4, Height: 4}},
		Rates:         []float64{0.05, 0.10},
		Seeds:         []uint64{1, 2, 3},
		WarmupCycles:  200,
		MeasureCycles: 400,
	}

	// Reference: single-process engine run, aggregated across seeds.
	refSpec := spec
	jobs, err := refSpec.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	eng := campaign.New(campaign.Options{Workers: 2})
	refRecs := eng.Run(context.Background(), jobs)
	for _, r := range refRecs {
		if r.Err != "" {
			t.Fatalf("reference job %s failed: %s", r.Label, r.Err)
		}
	}
	refJSON, err := json.Marshal(campaign.Aggregate(refRecs, campaign.GroupWithoutSeed))
	if err != nil {
		t.Fatal(err)
	}

	// The "process boundary": workers talk to a fixed URL whose handler
	// forwards to whichever coordinator mux is live. Storing nil is the
	// kill — requests get 502 (a transport-layer-equivalent failure the
	// workers retry) until the restarted coordinator's mux is stored.
	var target atomic.Pointer[http.ServeMux]
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := target.Load()
		if m == nil {
			http.Error(w, "coordinator down", http.StatusBadGateway)
			return
		}
		m.ServeHTTP(w, r)
	}))
	defer srv.Close()

	dir := t.TempDir()
	journal := filepath.Join(dir, "fleet.journal")
	storeDir := filepath.Join(dir, "store")
	newCoord := func(ss *campaign.ShardedStore) *Coordinator {
		t.Helper()
		c, err := NewCoordinator(Options{
			Store:     ss,
			ShardSize: 2, // 6 jobs -> 3 shards
			LeaseTTL:  30 * time.Second,
			Journal:   journal,
		})
		if err != nil {
			t.Fatalf("NewCoordinator: %v", err)
		}
		return c
	}
	store1, err := campaign.OpenShardedStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	coord1 := newCoord(store1)
	mux1 := http.NewServeMux()
	coord1.Register(mux1)
	target.Store(mux1)

	sub, err := coord1.Submit(SubmitRequest{Tenant: "e2e", Spec: spec})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Gate the workers' runner so the kill provably lands mid-sweep:
	// jobs block at the gate until released, which freezes the fleet
	// with leases granted and shards in flight.
	gate := make(chan struct{})
	running := make(chan string, 16)
	gatedRunner := func(ctx context.Context, j campaign.Job) (stats.RunRecord, *obs.Summary, error) {
		select {
		case running <- j.Key:
		default:
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return stats.RunRecord{}, nil, ctx.Err()
		}
		return campaign.Simulate(ctx, j)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	for _, name := range []string{"w1", "w2"} {
		w, err := NewWorker(WorkerOptions{
			Coordinator:  srv.URL,
			Name:         name,
			Workers:      1,
			PollInterval: 10 * time.Millisecond,
			Runner:       gatedRunner,
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(wctx)
	}

	// Wait until both workers hold leases and sit at the gate.
	for i := 0; i < 2; i++ {
		select {
		case <-running:
		case <-time.After(10 * time.Second):
			t.Fatal("workers never started jobs")
		}
	}
	if m := coord1.Metrics(); m.LeasesActive != 2 {
		t.Fatalf("LeasesActive = %d before kill, want 2", m.LeasesActive)
	}

	// Kill: unpublish the mux, let in-flight handlers on the old
	// coordinator finish, and abandon it without any shutdown — the
	// journal must already hold everything. Only then open a second
	// store handle over the same files (so the old handle's appends are
	// all visible and no concurrent-writer duplicates arise) and replay.
	target.Store(nil)
	time.Sleep(300 * time.Millisecond)
	coord1.WaitCompactions()
	store1.Close()

	close(gate) // workers resume; their renews/completes hit 502 and retry

	store2, err := campaign.OpenShardedStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	coord2 := newCoord(store2)
	if coord2.Recovered() == 0 {
		t.Fatal("restarted coordinator replayed no journal records")
	}
	if st, ok := coord2.Status(sub.ID); !ok {
		t.Fatal("campaign lost across restart")
	} else if st.Jobs != len(jobs) {
		t.Fatalf("recovered campaign has %d jobs, want %d", st.Jobs, len(jobs))
	}
	mux2 := http.NewServeMux()
	coord2.Register(mux2)
	target.Store(mux2)

	deadline := time.Now().Add(120 * time.Second)
	for {
		st, ok := coord2.Status(sub.ID)
		if !ok {
			t.Fatal("campaign vanished")
		}
		if st.State == "done" {
			if st.JobsFailed != 0 {
				t.Fatalf("campaign done with %d failed jobs", st.JobsFailed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish after restart: %+v (metrics %+v)", st, coord2.Metrics())
		}
		time.Sleep(20 * time.Millisecond)
	}
	wcancel()
	coord2.WaitCompactions()

	// Zero lost and zero duplicated work.
	if store2.Len() != len(jobs) {
		t.Errorf("store holds %d records, want %d", store2.Len(), len(jobs))
	}
	if d := store2.Dead(); d != 0 {
		t.Errorf("store has %d dead (duplicate) lines, want 0", d)
	}

	// The determinism contract holds across the kill-restart: merged
	// aggregates byte-identical to the single-process run.
	agg, ok := coord2.Summary(sub.ID)
	if !ok {
		t.Fatal("no summary")
	}
	gotJSON, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, refJSON) {
		t.Fatalf("post-restart aggregates differ from single-process engine:\nfleet:  %s\nserial: %s", gotJSON, refJSON)
	}
	if err := coord2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
