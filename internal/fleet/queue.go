package fleet

// Weighted-fair shard dispatch via stride scheduling. Each campaign
// carries a virtual-time pass; every grant advances the campaign's
// pass by strideUnit/weight, and the dispatcher always serves the
// runnable campaign with the smallest pass (ties broken by campaign id
// so two coordinators replaying the same request sequence make the
// same choices). Over time each campaign's grant share converges to
// weight/Σweights regardless of campaign size — a million-job sweep
// cannot starve a ten-job probe, it just advances its own pass a
// million times.
//
// Tenant quotas bound admission, not dispatch: a submit is rejected
// when the tenant's outstanding jobs (queued + leased) plus the new
// campaign would exceed its quota. Quotas protect coordinator memory
// and store churn; fairness between admitted campaigns is the stride
// scheduler's job.

const strideUnit = 1 << 20

// queueEntry is the per-campaign scheduling state.
type queueEntry struct {
	id      string
	tenant  string
	pass    float64
	stride  float64
	pending []int // shard indices awaiting lease, FIFO
}

// wfq is the stride scheduler across campaigns with pending shards.
// Not self-locking; the Coordinator serialises access.
type wfq struct {
	entries map[string]*queueEntry
	// vtime tracks the pass of the most recent grant, so a campaign
	// admitted mid-run starts at the current virtual time instead of
	// monopolising the fleet while it catches up from zero.
	vtime float64
}

func newWFQ() *wfq { return &wfq{entries: map[string]*queueEntry{}} }

// add registers a campaign with the given weight (clamped to ≥ a
// minimum so a zero or negative weight cannot produce an infinite
// stride) and its initial pending shard list.
func (q *wfq) add(id, tenant string, weight float64, pending []int) {
	if weight < 1.0/64 {
		weight = 1.0 / 64
	}
	q.entries[id] = &queueEntry{
		id:      id,
		tenant:  tenant,
		pass:    q.vtime,
		stride:  strideUnit / weight,
		pending: pending,
	}
}

// push re-queues a shard (lease expiry). Expired shards go to the
// front: they have already waited a full lease TTL, and re-running
// them promptly keeps campaign tail latency bounded by one death, not
// one death per queue drain.
func (q *wfq) push(id string, shard int) {
	e, ok := q.entries[id]
	if !ok {
		return
	}
	e.pending = append([]int{shard}, e.pending...)
}

// pick returns the campaign to serve next — smallest pass among those
// with pending work, ties by id — and pops its head shard, advancing
// its pass. ok is false when no campaign has pending shards.
func (q *wfq) pick() (id string, shard int, ok bool) {
	var best *queueEntry
	for _, e := range q.entries {
		if len(e.pending) == 0 {
			continue
		}
		if best == nil || e.pass < best.pass || (e.pass == best.pass && e.id < best.id) {
			best = e
		}
	}
	if best == nil {
		return "", 0, false
	}
	shard = best.pending[0]
	best.pending = best.pending[1:]
	best.pass += best.stride
	q.vtime = best.pass
	return best.id, shard, true
}

// grant removes a specific shard from a campaign's pending list and
// advances the campaign's pass exactly as pick would — the journal-
// replay analogue of a grant, which must reproduce pick's scheduling
// side effects without re-running its selection (the journal already
// recorded which shard won). Reports whether the shard was pending;
// a false return means the shard fast-completed from the store during
// replay and the grant collapses to a tombstone.
func (q *wfq) grant(id string, shard int) bool {
	e, ok := q.entries[id]
	if !ok {
		return false
	}
	for i, s := range e.pending {
		if s == shard {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			e.pass += e.stride
			q.vtime = e.pass
			return true
		}
	}
	return false
}

// take removes a specific shard from a campaign's pending list (a
// late completion landed while the shard sat re-queued), reporting
// whether it was there.
func (q *wfq) take(id string, shard int) bool {
	e, ok := q.entries[id]
	if !ok {
		return false
	}
	for i, s := range e.pending {
		if s == shard {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			return true
		}
	}
	return false
}

// depth is the total count of shards awaiting lease.
func (q *wfq) depth() int {
	n := 0
	for _, e := range q.entries {
		n += len(e.pending)
	}
	return n
}

// remove drops a campaign from scheduling (all shards done).
func (q *wfq) remove(id string) { delete(q.entries, id) }

// tenantUsage tracks per-tenant outstanding job counts for quota
// admission and metrics. Not self-locking. Counts clamp at zero: a
// negative count can only come from an accounting bug (a transition
// applied twice, a settle against the wrong tenant), and silently
// deleting the entry — the old behavior — would mask it. Each clamp
// increments underflow, surfaced as fleet_accounting_underflow_total,
// so double-settles show up on a dashboard instead of as quota drift.
type tenantUsage struct {
	queued    map[string]int // jobs in un-leased shards
	inflight  map[string]int // jobs in active leases
	underflow int64          // times a count would have gone negative
}

func newTenantUsage() *tenantUsage {
	return &tenantUsage{queued: map[string]int{}, inflight: map[string]int{}}
}

// outstanding is the tenant's total admitted-but-unfinished job count.
func (u *tenantUsage) outstanding(tenant string) int {
	return u.queued[tenant] + u.inflight[tenant]
}

// set installs a clamped count, dropping zero entries so the metrics
// maps only carry tenants with outstanding work.
func (u *tenantUsage) set(m map[string]int, tenant string, n int) {
	if n < 0 {
		u.underflow++
		n = 0
	}
	if n == 0 {
		delete(m, tenant)
		return
	}
	m[tenant] = n
}

func (u *tenantUsage) addQueued(tenant string, jobs int) {
	u.set(u.queued, tenant, u.queued[tenant]+jobs)
}

// addInflight restores leased jobs directly (snapshot replay, where the
// jobs were never in the rebuilt queue to move from).
func (u *tenantUsage) addInflight(tenant string, jobs int) {
	u.set(u.inflight, tenant, u.inflight[tenant]+jobs)
}

// lease moves jobs from queued to inflight.
func (u *tenantUsage) lease(tenant string, jobs int) {
	u.addQueued(tenant, -jobs)
	u.addInflight(tenant, jobs)
}

// requeue moves jobs back from inflight to queued (lease expiry).
func (u *tenantUsage) requeue(tenant string, jobs int) {
	u.set(u.inflight, tenant, u.inflight[tenant]-jobs)
	u.addQueued(tenant, jobs)
}

// complete retires inflight jobs.
func (u *tenantUsage) complete(tenant string, jobs int) {
	u.set(u.inflight, tenant, u.inflight[tenant]-jobs)
}

func copyCounts(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
