package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tdmnoc/internal/campaign"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/stats"
)

// TestFleetDeterminismAcrossWorkerDeath is the fabric's acceptance
// test: a spec distributed across a coordinator and multiple workers —
// one of which is killed mid-shard so its lease expires and the shard
// is re-issued — must produce merged per-group aggregates that are
// byte-identical to a single-process campaign.Engine run of the same
// spec, with zero duplicate records in the sharded store.
func TestFleetDeterminismAcrossWorkerDeath(t *testing.T) {
	spec := campaign.Spec{
		Modes:         []string{"tdm"},
		Patterns:      []string{"transpose"},
		Meshes:        []campaign.MeshSize{{Width: 4, Height: 4}},
		Rates:         []float64{0.05, 0.10},
		Seeds:         []uint64{1, 2, 3},
		WarmupCycles:  200,
		MeasureCycles: 400,
	}

	// Reference: single-process engine run, aggregated across seeds.
	refSpec := spec
	jobs, err := refSpec.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	eng := campaign.New(campaign.Options{Workers: 2})
	refRecs := eng.Run(context.Background(), jobs)
	for _, r := range refRecs {
		if r.Err != "" {
			t.Fatalf("reference job %s failed: %s", r.Label, r.Err)
		}
	}
	refJSON, err := json.Marshal(campaign.Aggregate(refRecs, campaign.GroupWithoutSeed))
	if err != nil {
		t.Fatal(err)
	}

	// Fleet: coordinator over a fresh sharded store, behind real HTTP.
	clock := newFakeClock()
	store, err := campaign.OpenShardedStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(Options{
		Store:     store,
		ShardSize: 2, // 6 jobs -> 3 shards: enough to spread and steal
		LeaseTTL:  30 * time.Second,
		Now:       clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	coord.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	sub, err := coord.Submit(SubmitRequest{Tenant: "e2e", Spec: spec})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if sub.Jobs != len(jobs) || sub.Shards != 3 {
		t.Fatalf("submit = %+v, want %d jobs in 3 shards", sub, len(jobs))
	}

	// The victim worker leases a shard, "computes" (blocks), and is
	// killed before completing — the crash-mid-shard case.
	leased := make(chan struct{}, 1)
	blockingRunner := func(ctx context.Context, j campaign.Job) (stats.RunRecord, *obs.Summary, error) {
		select {
		case leased <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return stats.RunRecord{}, nil, ctx.Err()
	}
	victim, err := NewWorker(WorkerOptions{
		Coordinator:  srv.URL,
		Name:         "victim",
		PollInterval: 10 * time.Millisecond,
		Runner:       blockingRunner,
	})
	if err != nil {
		t.Fatal(err)
	}
	vctx, vcancel := context.WithCancel(context.Background())
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		victim.Run(vctx)
	}()
	select {
	case <-leased:
	case <-time.After(10 * time.Second):
		t.Fatal("victim never leased a shard")
	}
	vcancel()
	<-victimDone
	if m := coord.Metrics(); m.LeasesActive != 1 {
		t.Fatalf("after victim death: LeasesActive = %d, want 1 (orphaned lease)", m.LeasesActive)
	}

	// Let the orphaned lease expire, then let two honest workers drain
	// the campaign — including the re-issued shard.
	clock.Advance(31 * time.Second)
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	for _, name := range []string{"w1", "w2"} {
		w, err := NewWorker(WorkerOptions{
			Coordinator:  srv.URL,
			Name:         name,
			Workers:      2,
			PollInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(wctx)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, ok := coord.Status(sub.ID)
		if !ok {
			t.Fatal("campaign vanished")
		}
		if st.State == "done" {
			if st.JobsFailed != 0 {
				t.Fatalf("campaign done with %d failed jobs", st.JobsFailed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish: %+v (metrics %+v)", st, coord.Metrics())
		}
		time.Sleep(20 * time.Millisecond)
	}
	wcancel()
	coord.WaitCompactions()

	m := coord.Metrics()
	if m.LeasesExpired == 0 {
		t.Error("expected the victim's lease to expire and be re-issued")
	}
	// Zero duplicates in the store: every record landed exactly once.
	if store.Len() != len(jobs) {
		t.Errorf("store holds %d records, want %d", store.Len(), len(jobs))
	}
	if d := store.Dead(); d != 0 {
		t.Errorf("store has %d dead (duplicate) lines, want 0", d)
	}

	// The core contract: merged aggregates byte-identical to the
	// single-process run.
	agg, ok := coord.Summary(sub.ID)
	if !ok {
		t.Fatal("no summary")
	}
	gotJSON, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, refJSON) {
		t.Fatalf("fleet aggregates differ from single-process engine:\nfleet:  %s\nserial: %s", gotJSON, refJSON)
	}

	// And the store round-trips: a fresh process reloading the shard
	// files reconstructs the identical merged aggregates.
	reloaded, err := campaign.OpenShardedStore(store.Dir())
	if err != nil {
		t.Fatalf("reload store: %v", err)
	}
	defer reloaded.Close()
	found, missing := reloaded.LookupAll(recordKeys(jobs))
	if missing != 0 {
		t.Fatalf("reloaded store missing %d records", missing)
	}
	reloadJSON, err := json.Marshal(campaign.Aggregate(found, campaign.GroupWithoutSeed))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reloadJSON, refJSON) {
		t.Fatalf("reloaded aggregates differ from single-process engine:\nreload: %s\nserial: %s", reloadJSON, refJSON)
	}
}

func recordKeys(jobs []campaign.Job) []string {
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = j.Key
	}
	return keys
}

// TestWorkerDrainFinishesCurrentShard verifies the graceful half of
// worker shutdown: Drain lets the in-flight shard complete and post
// before the run loop exits.
func TestWorkerDrainFinishesCurrentShard(t *testing.T) {
	store, err := campaign.OpenShardedStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(Options{Store: store, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	coord.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	spec := testSpec() // 4 jobs -> one shard of 4
	sub, err := coord.Submit(SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{}, 1)
	var w *Worker
	slowRunner := func(ctx context.Context, j campaign.Job) (stats.RunRecord, *obs.Summary, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		return stats.RunRecord{Runs: 1}, nil, nil
	}
	w, err = NewWorker(WorkerOptions{
		Coordinator:  srv.URL,
		Name:         "drainer",
		Workers:      1,
		PollInterval: 10 * time.Millisecond,
		Runner:       slowRunner,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(context.Background())
	}()
	<-started
	w.Drain()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not exit after Drain")
	}
	st, _ := coord.Status(sub.ID)
	if st.State != "done" {
		t.Fatalf("campaign state after drained worker = %q, want done (in-flight shard must land)", st.State)
	}
	if w.ShardsDone.Load() != 1 {
		t.Fatalf("ShardsDone = %d, want 1", w.ShardsDone.Load())
	}
}
