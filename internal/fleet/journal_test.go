package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tdmnoc/internal/campaign"
)

// journaledOptions returns options for a coordinator whose journal and
// store live in the given directory, so a second coordinator built from
// the same options is a restart of the first.
func journaledOptions(t *testing.T, dir string, clock *fakeClock) Options {
	t.Helper()
	ss, err := campaign.OpenShardedStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatalf("OpenShardedStore: %v", err)
	}
	t.Cleanup(func() { ss.Close() })
	opt := Options{
		Store:     ss,
		ShardSize: 2,
		LeaseTTL:  30 * time.Second,
		Journal:   filepath.Join(dir, "fleet.journal"),
	}
	if clock != nil {
		opt.Now = clock.Now
	}
	return opt
}

// TestJournalRecoversQueuedCampaignsAndLeases is the tentpole's core
// check at the API level: a coordinator killed (dropped without
// shutdown) after submits, grants, completes and renews comes back with
// the same campaigns, queue depth, tenant accounting and campaign-id
// sequence — and the in-flight lease is restored with a fresh TTL so
// the worker holding it renews and completes instead of getting an
// unknown-lease error.
func TestJournalRecoversQueuedCampaignsAndLeases(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	spec := testSpec()

	c1, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	sub, err := c1.Submit(SubmitRequest{Tenant: "alice", Weight: 2, Spec: spec})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c1.Submit(SubmitRequest{Tenant: "bob", Spec: testSpec(0.15, 0.20)}); err != nil {
		t.Fatalf("Submit bob: %v", err)
	}
	// Grant two leases; complete one, leave the other in flight.
	l1, ok := c1.Lease("w1")
	if !ok {
		t.Fatal("no lease for w1")
	}
	l2, ok := c1.Lease("w2")
	if !ok {
		t.Fatal("no lease for w2")
	}
	if _, err := c1.Complete(l1.LeaseID, stubRecords(t, l1.Spec, l1.Shard)); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if !c1.Renew(l2.LeaseID) {
		t.Fatal("renew before crash")
	}
	c1.WaitCompactions()
	before := c1.Metrics()
	stBefore := c1.Statuses()
	// No Close: the crash leaves the journal exactly as the last append
	// synced it.

	// Burn most of the in-flight lease's TTL before the restart, so the
	// fresh-TTL guarantee below is actually load-bearing: a restored
	// deadline copied from grant time would already be near expiry.
	clock.Advance(25 * time.Second)

	c2, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if c2.Recovered() == 0 {
		t.Fatal("restarted coordinator replayed no records")
	}
	after := c2.Metrics()
	if after.CampaignsTotal != before.CampaignsTotal ||
		after.CampaignsRunning != before.CampaignsRunning ||
		after.QueueDepth != before.QueueDepth ||
		after.LeasesActive != before.LeasesActive {
		t.Fatalf("state diverged across restart:\nbefore %+v\nafter  %+v", before, after)
	}
	for tenant, n := range before.TenantQueued {
		if after.TenantQueued[tenant] != n {
			t.Fatalf("tenant %s queued = %d, want %d", tenant, after.TenantQueued[tenant], n)
		}
	}
	for tenant, n := range before.TenantInflight {
		if after.TenantInflight[tenant] != n {
			t.Fatalf("tenant %s inflight = %d, want %d", tenant, after.TenantInflight[tenant], n)
		}
	}
	stAfter := c2.Statuses()
	if len(stAfter) != len(stBefore) {
		t.Fatalf("campaign count = %d, want %d", len(stAfter), len(stBefore))
	}
	for i := range stBefore {
		b, a := stBefore[i], stAfter[i]
		if a.ID != b.ID || a.Tenant != b.Tenant || a.SpecHash != b.SpecHash ||
			a.Jobs != b.Jobs || a.ShardsDone != b.ShardsDone || a.State != b.State {
			t.Fatalf("campaign %d diverged:\nbefore %+v\nafter  %+v", i, b, a)
		}
	}

	// Fresh TTL: 25s burned before restart, now burn 20 more — past the
	// original deadline, inside the restored one.
	clock.Advance(20 * time.Second)
	if !c2.Renew(l2.LeaseID) {
		t.Fatal("restored lease did not renew (TTL not refreshed at recovery?)")
	}
	if _, err := c2.Complete(l2.LeaseID, stubRecords(t, l2.Spec, l2.Shard)); err != nil {
		t.Fatalf("complete restored lease: %v", err)
	}

	// The campaign-id sequence continues where it left off.
	next, err := c2.Submit(SubmitRequest{Tenant: "carol", Spec: testSpec(0.25, 0.30)})
	if err != nil {
		t.Fatalf("post-restart submit: %v", err)
	}
	if next.ID != "c0003" {
		t.Fatalf("post-restart campaign id = %s, want c0003", next.ID)
	}

	// Drain everything and check the recovered run converges: the first
	// campaign's summary must match a fresh single-process aggregation
	// of its records.
	for {
		l, ok := c2.Lease("w")
		if !ok {
			break
		}
		if _, err := c2.Complete(l.LeaseID, stubRecords(t, l.Spec, l.Shard)); err != nil {
			t.Fatalf("drain Complete: %v", err)
		}
	}
	st, _ := c2.Status(sub.ID)
	if st.State != "done" {
		t.Fatalf("campaign after drain = %+v, want done", st)
	}
	c2.WaitCompactions()
	if err := c2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestJournalSurvivesCrashBetweenGrantAndComplete pins the narrowest
// crash window: a shard granted but never completed recovers as an
// active lease, and the worker that held it — which never heard about
// the crash — completes against the restarted coordinator.
func TestJournalSurvivesCrashBetweenGrantAndComplete(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	c1, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Submit(SubmitRequest{Spec: testSpec()}); err != nil {
		t.Fatal(err)
	}
	l, ok := c1.Lease("w1")
	if !ok {
		t.Fatal("no lease")
	}

	c2, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if m := c2.Metrics(); m.LeasesActive != 1 || m.QueueDepth != 1 {
		t.Fatalf("after restart: %+v, want 1 active lease + 1 queued shard", m)
	}
	// The worker never heard about the crash; its completion resolves.
	if _, err := c2.Complete(l.LeaseID, stubRecords(t, l.Spec, l.Shard)); err != nil {
		t.Fatalf("complete across restart: %v", err)
	}
	c2.WaitCompactions()
	c2.Close()
}

// TestJournalTornTrailerTolerated mirrors the store's crash contract: a
// final line cut short by a crash (no terminating newline) is dropped
// and truncated away at open, and subsequent appends extend a clean
// file instead of the torn fragment.
func TestJournalTornTrailerTolerated(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	c1, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Submit(SubmitRequest{Spec: testSpec()}); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	path := filepath.Join(dir, "fleet.journal")
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, intact...), []byte(`{"op":"grant","campaign":"c0001","lea`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatalf("open over torn trailer: %v", err)
	}
	if got := c2.Recovered(); got != 1 {
		t.Fatalf("Recovered = %d, want 1 (the submit; the torn grant dropped)", got)
	}
	// The torn bytes must be gone from disk, not just skipped: an
	// O_APPEND write after a skipped-but-present fragment would fuse two
	// records into permanent mid-file corruption.
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, intact) {
		t.Fatalf("torn trailer not truncated:\ngot  %q\nwant %q", onDisk, intact)
	}
	// And appends after recovery produce a journal a third open parses
	// in full.
	l, ok := c2.Lease("w1")
	if !ok {
		t.Fatal("no lease")
	}
	if _, err := c2.Complete(l.LeaseID, stubRecords(t, l.Spec, l.Shard)); err != nil {
		t.Fatal(err)
	}
	c2.WaitCompactions()
	c2.Close()
	c3, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if m := c3.Metrics(); m.CampaignsTotal != 1 || m.LeasesActive != 0 {
		t.Fatalf("third open state: %+v", m)
	}
	c3.Close()
}

// TestJournalMidFileCorruptionFailsOpen: an unparseable
// newline-terminated line is not a torn write — something rewrote the
// file. Recovering around it would silently drop transitions, so the
// open must fail loudly instead.
func TestJournalMidFileCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	c1, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Submit(SubmitRequest{Spec: testSpec()}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c1.Lease("w1"); !ok {
		t.Fatal("no lease")
	}
	c1.Close()

	path := filepath.Join(dir, "fleet.journal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal too short to corrupt: %d lines", len(lines))
	}
	lines[0] = "{this is not JSON}\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(journaledOptions(t, dir, clock)); err == nil {
		t.Fatal("open over mid-file corruption succeeded; want loud failure")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %q does not mention corruption", err)
	}
}

// TestJournalRotationSnapshotRoundTrip forces a rotation on every
// transition (threshold 1 byte) and checks that (a) the journal stays
// one snapshot plus at most the tail since the last rotation, and (b) a
// restart from a rotated journal reconstructs the same state a restart
// from the full log would — including expiry history and the WFQ pass,
// exercised by finishing the campaign identically.
func TestJournalRotationSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	opt := journaledOptions(t, dir, clock)
	opt.JournalRotateBytes = 1 // rotate on every append
	c1, err := NewCoordinator(opt)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	sub, err := c1.Submit(SubmitRequest{Tenant: "alice", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	// One shard completes; one lease expires (giving the snapshot an
	// expiry count and a re-queued shard); one lease stays active.
	l1, _ := c1.Lease("w1")
	if _, err := c1.Complete(l1.LeaseID, stubRecords(t, spec, l1.Shard)); err != nil {
		t.Fatal(err)
	}
	l2, ok := c1.Lease("doomed")
	if !ok {
		t.Fatal("no second lease")
	}
	clock.Advance(31 * time.Second)
	l3, ok := c1.Lease("w2") // sweeps l2, re-grants its shard
	if !ok {
		t.Fatal("no re-lease after expiry")
	}
	if l3.Shard.Index != l2.Shard.Index {
		t.Fatalf("re-lease shard = %d, want expired %d", l3.Shard.Index, l2.Shard.Index)
	}
	c1.WaitCompactions()
	m1 := c1.Metrics()
	if m1.JournalRotations == 0 {
		t.Fatalf("no rotations with 1-byte threshold: %+v", m1)
	}

	// The rotated journal is compact: a snapshot line plus at most the
	// few records appended since the last rotation.
	data, err := os.ReadFile(filepath.Join(dir, "fleet.journal"))
	if err != nil {
		t.Fatal(err)
	}
	var sawSnapshot bool
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("rotated journal line unparseable: %v", err)
		}
		if rec.Op == opSnapshot {
			sawSnapshot = true
		}
	}
	if !sawSnapshot {
		t.Fatal("rotated journal has no snapshot record")
	}

	c2, err := NewCoordinator(opt)
	if err != nil {
		t.Fatalf("restart from rotated journal: %v", err)
	}
	m2 := c2.Metrics()
	if m2.CampaignsTotal != m1.CampaignsTotal || m2.QueueDepth != m1.QueueDepth ||
		m2.LeasesActive != m1.LeasesActive || m2.LeasesExpired != m1.LeasesExpired {
		t.Fatalf("rotated-journal restart diverged:\nbefore %+v\nafter  %+v", m1, m2)
	}
	// The restored active lease still resolves, and the campaign
	// finishes.
	if _, err := c2.Complete(l3.LeaseID, stubRecords(t, spec, l3.Shard)); err != nil {
		t.Fatalf("complete restored lease: %v", err)
	}
	st, _ := c2.Status(sub.ID)
	if st.State != "done" || st.ShardsDone != 2 {
		t.Fatalf("campaign after rotated recovery = %+v", st)
	}
	c2.WaitCompactions()
	c2.Close()
}

// TestJournalDrainStateSurvivesRestart: a coordinator killed mid-drain
// comes back draining (so the restart finishes the shutdown), and
// Resume — what cmd/nocsimd calls after a deliberate restart — reopens
// it for business, journaled so the next restart stays open too.
func TestJournalDrainStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	c1, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatal(err)
	}
	c1.Drain()

	c2, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Draining() {
		t.Fatal("drain state lost across restart")
	}
	c2.Resume()
	c2.Close()

	c3, err := NewCoordinator(journaledOptions(t, dir, clock))
	if err != nil {
		t.Fatal(err)
	}
	if c3.Draining() {
		t.Fatal("resume not journaled: third open is draining again")
	}
	c3.Close()
}

// TestJournalDisabledKeepsOldBehavior: without Options.Journal nothing
// touches disk beyond the store and a restart starts empty — the
// documented in-memory mode.
func TestJournalDisabledKeepsOldBehavior(t *testing.T) {
	dir := t.TempDir()
	ss, err := campaign.OpenShardedStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	c1, err := NewCoordinator(Options{Store: ss, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Submit(SubmitRequest{Spec: testSpec()}); err != nil {
		t.Fatal(err)
	}
	if m := c1.Metrics(); m.JournalEnabled || m.JournalRecords != 0 {
		t.Fatalf("journal metrics nonzero without a journal: %+v", m)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "store" {
		t.Fatalf("unexpected files without journal: %v", entries)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close without journal: %v", err)
	}
	c2, err := NewCoordinator(Options{Store: ss, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m := c2.Metrics(); m.CampaignsTotal != 0 || c2.Recovered() != 0 {
		t.Fatalf("journal-less restart recovered state: %+v", m)
	}
}

// TestSweepReturnsLeasesSorted pins the determinism fix in
// leaseTable.sweep: several leases expiring in one sweep come back in
// lease-id order regardless of map iteration order, so their shards
// re-queue identically on every run and on journal replay.
func TestSweepReturnsLeasesSorted(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	for trial := 0; trial < 20; trial++ {
		lt := newLeaseTable()
		for i := 0; i < 8; i++ {
			lt.grant("c0001", i, 1, "w", base.Add(time.Second))
		}
		swept := lt.sweep(base.Add(time.Minute))
		if len(swept) != 8 {
			t.Fatalf("swept %d leases, want 8", len(swept))
		}
		for i := 1; i < len(swept); i++ {
			if swept[i-1].id >= swept[i].id {
				t.Fatalf("sweep order not sorted: %s before %s", swept[i-1].id, swept[i].id)
			}
		}
	}
}

// TestTenantUsageUnderflowClamps: double-settling a tenant clamps at
// zero and bumps the underflow counter instead of silently deleting the
// evidence.
func TestTenantUsageUnderflowClamps(t *testing.T) {
	u := newTenantUsage()
	u.addQueued("alice", 4)
	u.lease("alice", 4)
	u.complete("alice", 4)
	u.complete("alice", 4) // the bug: settled twice
	if got := u.outstanding("alice"); got != 0 {
		t.Fatalf("outstanding after double-complete = %d, want 0 (clamped)", got)
	}
	if u.underflow != 1 {
		t.Fatalf("underflow = %d, want 1", u.underflow)
	}
	// Quota admission still works after the clamp.
	u.addQueued("alice", 2)
	if got := u.outstanding("alice"); got != 2 {
		t.Fatalf("outstanding after clamp + re-queue = %d, want 2", got)
	}
}

// TestWorkerJitterTinyPollInterval: PollInterval at or below 1ns used
// to panic in rand.Int63n (non-positive bound). The jitter window now
// clamps to >= 1ns.
func TestWorkerJitterTinyPollInterval(t *testing.T) {
	w, err := NewWorker(WorkerOptions{Coordinator: "http://localhost:0", Name: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []time.Duration{0, 1, 2, 3} {
		if got := w.jitter(d); got < 1 {
			t.Fatalf("jitter(%d) = %d, want >= 1", d, got)
		}
	}
}
