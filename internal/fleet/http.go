package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// Register mounts the coordinator's wire protocol on mux under
// /fleet/. The handlers are a thin JSON skin over the Coordinator
// methods; all policy (quotas, fairness, lease expiry) lives there.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /fleet/campaigns", c.handleSubmit)
	mux.HandleFunc("GET /fleet/campaigns", c.handleList)
	mux.HandleFunc("GET /fleet/campaigns/{id}", c.handleStatus)
	mux.HandleFunc("GET /fleet/campaigns/{id}/summary", c.handleSummary)
	mux.HandleFunc("GET /fleet/campaigns/{id}/results", c.handleResults)
	mux.HandleFunc("POST /fleet/lease", c.handleLease)
	mux.HandleFunc("POST /fleet/leases/{id}/renew", c.handleRenew)
	mux.HandleFunc("POST /fleet/leases/{id}/complete", c.handleComplete)
	mux.HandleFunc("GET /fleet/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c.WriteMetrics(w)
	})
}

func fleetJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func fleetError(w http.ResponseWriter, code int, format string, args ...any) {
	fleetJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retryAfter attaches the standard backoff hint header (whole seconds,
// rounded up so "0" never tells a client to hammer immediately).
func (c *Coordinator) retryAfter(w http.ResponseWriter) {
	secs := int(c.opt.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fleetError(w, http.StatusBadRequest, "decode submit: %v", err)
		return
	}
	resp, err := c.Submit(req)
	switch {
	case errors.Is(err, ErrDraining):
		c.retryAfter(w)
		fleetError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrJournal):
		// The campaign was refused because its write-ahead record could
		// not be made durable — a server-side storage fault, not a bad
		// request. Retryable once the disk recovers.
		c.retryAfter(w)
		fleetError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		var qe *QuotaError
		if errors.As(err, &qe) {
			c.retryAfter(w)
			fleetError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		fleetError(w, http.StatusBadRequest, "%v", err)
	default:
		fleetJSON(w, http.StatusAccepted, resp)
	}
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	fleetJSON(w, http.StatusOK, c.Statuses())
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := c.Status(r.PathValue("id"))
	if !ok {
		fleetError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	fleetJSON(w, http.StatusOK, st)
}

// handleSummary serves the campaign's per-group merged aggregates in
// sorted group order — the byte-stable shape the determinism contract
// is checked against.
func (c *Coordinator) handleSummary(w http.ResponseWriter, r *http.Request) {
	agg, ok := c.Summary(r.PathValue("id"))
	if !ok {
		fleetError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	keys, _ := SummaryGroups(agg)
	type row struct {
		Group  string          `json:"group"`
		Result json.RawMessage `json:"result"`
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		b, err := json.Marshal(agg[k])
		if err != nil {
			fleetError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		rows = append(rows, row{Group: k, Result: b})
	}
	fleetJSON(w, http.StatusOK, rows)
}

// handleResults streams the campaign's records in job order (JSONL
// with ?format=jsonl), plus an X-Fleet-Missing header with the count
// of jobs not yet in the store.
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	recs, missing, ok := c.Records(r.PathValue("id"))
	if !ok {
		fleetError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	w.Header().Set("X-Fleet-Missing", strconv.Itoa(missing))
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/jsonl")
		enc := json.NewEncoder(w)
		for _, rec := range recs {
			enc.Encode(rec)
		}
		return
	}
	fleetJSON(w, http.StatusOK, recs)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		fleetError(w, http.StatusBadRequest, "decode lease: %v", err)
		return
	}
	resp, ok := c.Lease(req.Worker)
	if !ok {
		// No work (or draining): 204 tells the worker to idle-poll, not
		// to treat it as an error.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	fleetJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	if c.Renew(r.PathValue("id")) {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	fleetError(w, http.StatusGone, "lease %q expired or unknown", r.PathValue("id"))
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fleetError(w, http.StatusBadRequest, "decode complete: %v", err)
		return
	}
	resp, err := c.Complete(r.PathValue("id"), req.Records)
	if err != nil {
		fleetError(w, http.StatusNotFound, "%v", err)
		return
	}
	fleetJSON(w, http.StatusOK, resp)
}

// WriteMetrics emits the coordinator counters in Prometheus text
// exposition format. cmd/nocsimd folds this into its /metrics when
// running as a coordinator.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	m := c.Metrics()
	fmt.Fprintf(w, "# HELP fleet_campaigns_total Campaigns admitted since start.\n# TYPE fleet_campaigns_total counter\nfleet_campaigns_total %d\n", m.CampaignsTotal)
	fmt.Fprintf(w, "# HELP fleet_campaigns_running Campaigns with unfinished shards.\n# TYPE fleet_campaigns_running gauge\nfleet_campaigns_running %d\n", m.CampaignsRunning)
	fmt.Fprintf(w, "# HELP fleet_queue_depth Shards awaiting lease.\n# TYPE fleet_queue_depth gauge\nfleet_queue_depth %d\n", m.QueueDepth)
	fmt.Fprintf(w, "# HELP fleet_leases_active Shards currently leased to workers.\n# TYPE fleet_leases_active gauge\nfleet_leases_active %d\n", m.LeasesActive)
	fmt.Fprintf(w, "# HELP fleet_leases_expired_total Leases expired and re-queued.\n# TYPE fleet_leases_expired_total counter\nfleet_leases_expired_total %d\n", m.LeasesExpired)
	fmt.Fprintf(w, "# HELP fleet_submits_rejected_total Submits rejected by quota or drain.\n# TYPE fleet_submits_rejected_total counter\nfleet_submits_rejected_total %d\n", m.SubmitsRejected)
	fmt.Fprintf(w, "# HELP fleet_jobs_completed_total Jobs whose records landed.\n# TYPE fleet_jobs_completed_total counter\nfleet_jobs_completed_total %d\n", m.JobsCompleted)
	fmt.Fprintf(w, "# HELP fleet_jobs_failed_total Job failures reported by workers.\n# TYPE fleet_jobs_failed_total counter\nfleet_jobs_failed_total %d\n", m.JobsFailed)
	fmt.Fprintf(w, "# HELP fleet_records_persisted_total Records written to the sharded store.\n# TYPE fleet_records_persisted_total counter\nfleet_records_persisted_total %d\n", m.RecordsPersisted)
	fmt.Fprintf(w, "# HELP fleet_records_duplicate_total Completion records deduped by the store.\n# TYPE fleet_records_duplicate_total counter\nfleet_records_duplicate_total %d\n", m.RecordsDuplicate)
	fmt.Fprintf(w, "# HELP fleet_store_shards_compacted_total Store shard files rewritten by compaction.\n# TYPE fleet_store_shards_compacted_total counter\nfleet_store_shards_compacted_total %d\n", m.ShardsCompacted)
	fmt.Fprintf(w, "# HELP fleet_store_live_records Live records across store shards.\n# TYPE fleet_store_live_records gauge\nfleet_store_live_records %d\n", m.StoreLive)
	fmt.Fprintf(w, "# HELP fleet_store_dead_lines Dead lines awaiting compaction.\n# TYPE fleet_store_dead_lines gauge\nfleet_store_dead_lines %d\n", m.StoreDead)
	writeTenantGauge(w, "fleet_tenant_inflight_jobs", "Leased jobs per tenant.", m.TenantInflight)
	writeTenantGauge(w, "fleet_tenant_queued_jobs", "Queued jobs per tenant.", m.TenantQueued)
	fmt.Fprintf(w, "# HELP fleet_accounting_underflow_total Tenant usage updates clamped at zero (accounting bug indicator).\n# TYPE fleet_accounting_underflow_total counter\nfleet_accounting_underflow_total %d\n", m.AccountingUnderflow)
	enabled := 0
	if m.JournalEnabled {
		enabled = 1
	}
	fmt.Fprintf(w, "# HELP fleet_journal_enabled Whether a write-ahead journal is configured.\n# TYPE fleet_journal_enabled gauge\nfleet_journal_enabled %d\n", enabled)
	fmt.Fprintf(w, "# HELP fleet_journal_records_total Journal records appended since start.\n# TYPE fleet_journal_records_total counter\nfleet_journal_records_total %d\n", m.JournalRecords)
	fmt.Fprintf(w, "# HELP fleet_journal_syncs_total Journal fsyncs.\n# TYPE fleet_journal_syncs_total counter\nfleet_journal_syncs_total %d\n", m.JournalSyncs)
	fmt.Fprintf(w, "# HELP fleet_journal_rotations_total Journal snapshot rotations.\n# TYPE fleet_journal_rotations_total counter\nfleet_journal_rotations_total %d\n", m.JournalRotations)
	fmt.Fprintf(w, "# HELP fleet_journal_errors_total Journal append or rotation failures.\n# TYPE fleet_journal_errors_total counter\nfleet_journal_errors_total %d\n", m.JournalErrors)
	fmt.Fprintf(w, "# HELP fleet_journal_size_bytes Current journal file size.\n# TYPE fleet_journal_size_bytes gauge\nfleet_journal_size_bytes %d\n", m.JournalSizeBytes)
	fmt.Fprintf(w, "# HELP fleet_journal_replayed_records Journal records replayed at startup.\n# TYPE fleet_journal_replayed_records gauge\nfleet_journal_replayed_records %d\n", m.JournalReplayed)
}

func writeTenantGauge(w io.Writer, name, help string, counts map[string]int) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	tenants := make([]string, 0, len(counts))
	for t := range counts {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, t, counts[t])
	}
}
