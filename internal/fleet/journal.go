package fleet

// The write-ahead journal makes the coordinator's control plane
// crash-recoverable. Every state transition — submit, grant, renew,
// complete, expire, drain, resume — appends one JSONL record to the
// journal file before the transition is acknowledged to the caller, and
// NewCoordinator replays the file on startup to reconstruct campaigns,
// the WFQ queue, tenant usage and the lease table. The journal holds
// only control-plane bookkeeping: record *data* lives in the
// ShardedStore, which is why replay of a submit consults the store and
// fast-completes shards whose every record already landed — including
// shards completed after the submit was journaled. Active leases are
// restored with fresh TTLs so workers that kept computing across the
// restart renew and complete instead of being 410'd.
//
// Durability discipline mirrors campaign.Store: appends go straight to
// the fd, one write per record. Fsync is batch-wise: transitions that
// must not be lost (submit, grant, complete, expire, drain, resume)
// sync immediately, while renew records — harmless to lose, since
// recovery refreshes every active lease's TTL anyway — ride along until
// the next synced record or a 64-record backlog. On open, a torn
// trailing line (a write cut short by a crash) is truncated away so the
// next append starts on a clean line boundary; an unparseable
// newline-terminated line mid-file means real corruption and fails the
// open loudly rather than silently dropping transitions.
//
// Rotation bounds the file: once the journal outgrows rotateBytes, the
// coordinator snapshots its live state into a fresh file (the snapshot
// is the first record) and atomically renames it over the old journal,
// so replay cost is proportional to live state plus the tail since the
// last rotation, not to coordinator lifetime.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"tdmnoc/internal/campaign"
)

// Journal op codes, one per coordinator state transition.
const (
	opSubmit   = "submit"
	opGrant    = "grant"
	opRenew    = "renew"
	opComplete = "complete"
	opExpire   = "expire"
	opDrain    = "drain"
	opResume   = "resume"
	opSnapshot = "snapshot"
)

// journalRecord is one JSONL line of the journal. Fields are shared
// across ops; unused ones are omitted.
type journalRecord struct {
	Op string `json:"op"`

	// submit: the admitted campaign's identity and normalized spec.
	// grant/complete also name the campaign for readability and replay
	// sanity checks.
	Campaign  string         `json:"campaign,omitempty"`
	Tenant    string         `json:"tenant,omitempty"`
	Weight    float64        `json:"weight,omitempty"`
	ShardSize int            `json:"shard_size,omitempty"`
	SpecHash  string         `json:"spec_hash,omitempty"`
	Spec      *campaign.Spec `json:"spec,omitempty"`

	// grant/renew/complete: the lease and its shard.
	Lease  string `json:"lease,omitempty"`
	Shard  int    `json:"shard,omitempty"`
	Jobs   int    `json:"jobs,omitempty"`
	Worker string `json:"worker,omitempty"`

	// complete: job failures reported by the completion (failed records
	// are never persisted to the store, so the count must ride here).
	Failed int `json:"failed,omitempty"`

	// expire: the swept lease ids, in sorted order so replay re-queues
	// shards exactly as the live sweep did.
	Leases []string `json:"leases,omitempty"`

	// snapshot: the full live state written at rotation.
	Snapshot *journalSnapshot `json:"snapshot,omitempty"`
}

// journalSnapshot is the rotation checkpoint: everything needed to
// rebuild the control plane without the preceding log.
type journalSnapshot struct {
	Seq      int     `json:"seq"`       // campaign id counter
	LeaseSeq int     `json:"lease_seq"` // lease id counter
	Expired  int64   `json:"expired"`   // leases expired so far
	Draining bool    `json:"draining"`
	VTime    float64 `json:"vtime"` // WFQ virtual time

	Campaigns []snapCampaign `json:"campaigns"` // admission order
	Leases    []snapLease    `json:"leases,omitempty"`
	// History carries tombstones of non-active grants for unfinished
	// campaigns, so late completions still resolve after rotation.
	// Tombstones of finished campaigns are pruned: a straggler
	// completion for one gets an unknown-lease error, but its work is
	// already in the store.
	History []snapLease `json:"history,omitempty"`
}

type snapCampaign struct {
	ID        string        `json:"id"`
	Tenant    string        `json:"tenant"`
	SpecHash  string        `json:"spec_hash"`
	ShardSize int           `json:"shard_size"`
	Spec      campaign.Spec `json:"spec"`
	Done      []int         `json:"done,omitempty"` // done shard indices, ascending
	Failed    int           `json:"failed,omitempty"`

	// Scheduling state, valid while the campaign is unfinished.
	Queued []int   `json:"queued,omitempty"` // pending shards, queue order
	Pass   float64 `json:"pass,omitempty"`
	Stride float64 `json:"stride,omitempty"`
}

type snapLease struct {
	ID       string `json:"id"`
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Jobs     int    `json:"jobs"`
	Worker   string `json:"worker,omitempty"`
}

// journal is the append side of the write-ahead log. It is not
// self-locking for ordering purposes — the Coordinator serialises
// appends under its own mutex so journal order equals transition order
// — but keeps an internal mutex so metrics reads don't race the fd.
type journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	size     int64
	rotateAt int64
	unsynced int

	appends   int64
	syncs     int64
	rotations int64
	errors    int64
	truncated int64 // torn-trailer bytes dropped at open
}

// journalSyncBacklog bounds how many unsynced renew records may
// accumulate before an fsync is forced anyway.
const journalSyncBacklog = 64

// openJournal opens (creating if needed) the journal at path, replays
// its records into memory, truncates a torn trailing line, and returns
// the append handle plus the parsed records. Mirroring the store's
// contract, only a genuinely torn final line — unterminated, from a
// write cut short by a crash — is dropped; an unparseable
// newline-terminated line fails the open loudly.
func openJournal(path string, rotateAt int64) (*journal, []journalRecord, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("fleet: journal dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: open journal: %w", err)
	}
	j := &journal{f: f, path: path, rotateAt: rotateAt}
	var recs []journalRecord
	br := bufio.NewReader(f)
	var offset, goodEnd int64
	for {
		line, rerr := br.ReadBytes('\n')
		offset += int64(len(line))
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var rec journalRecord
			switch jerr := json.Unmarshal(trimmed, &rec); {
			case jerr != nil && rerr == nil:
				f.Close()
				return nil, nil, fmt.Errorf("fleet: journal %s: corrupt record: %w", path, jerr)
			case jerr != nil:
				// Torn trailing line: the transition was never
				// acknowledged, so dropping it is safe. Truncate below so
				// the next append starts on a line boundary instead of
				// extending the torn fragment into permanent corruption.
			default:
				recs = append(recs, rec)
				goodEnd = offset
			}
		} else if rerr == nil {
			goodEnd = offset
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			f.Close()
			return nil, nil, fmt.Errorf("fleet: read journal %s: %w", path, rerr)
		}
	}
	if goodEnd < offset {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("fleet: truncate torn journal trailer: %w", err)
		}
		j.truncated = offset - goodEnd
	}
	j.size = goodEnd
	return j, recs, nil
}

// append writes one record. sync forces an fsync; without it the record
// rides until the next synced append or a journalSyncBacklog backlog.
func (j *journal) append(rec journalRecord, sync bool) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: encode journal record: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("fleet: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("fleet: append journal record: %w", err)
	}
	j.size += int64(len(b))
	j.appends++
	j.unsynced++
	if sync || j.unsynced >= journalSyncBacklog {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("fleet: sync journal: %w", err)
		}
		j.syncs++
		j.unsynced = 0
	}
	return nil
}

// shouldRotate reports whether the journal has outgrown its threshold.
func (j *journal) shouldRotate() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rotateAt > 0 && j.size > j.rotateAt
}

// rotate compacts the log: the snapshot becomes the sole record of a
// fresh file that atomically replaces the journal. A crash mid-rotation
// leaves either the old journal or the new one — never a mix.
func (j *journal) rotate(snap *journalSnapshot) error {
	b, err := json.Marshal(journalRecord{Op: opSnapshot, Snapshot: snap})
	if err != nil {
		return fmt.Errorf("fleet: encode snapshot: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("fleet: journal %s is closed", j.path)
	}
	tmp := j.path + ".rotate"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: rotate journal: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fleet: rotate journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fleet: rotate journal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: rotate journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: rotate journal: %w", err)
	}
	nf, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The rotated file is in place but we lost the append handle;
		// surface it — subsequent appends would fail anyway.
		return fmt.Errorf("fleet: reopen rotated journal: %w", err)
	}
	j.f.Close()
	j.f = nf
	j.size = int64(len(b))
	j.unsynced = 0
	j.appends++
	j.syncs++
	j.rotations++
	return nil
}

// close syncs and releases the journal file. Idempotent.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	j.f.Sync()
	err := j.f.Close()
	j.f = nil
	return err
}

// stats snapshots the journal counters for Metrics.
func (j *journal) stats() (appends, syncs, rotations, errs, size int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends, j.syncs, j.rotations, j.errors, j.size
}

// countError bumps the append-failure counter (the coordinator logs the
// error itself; the counter makes it visible on /metrics).
func (j *journal) countError() {
	j.mu.Lock()
	j.errors++
	j.mu.Unlock()
}

// ---------------------------------------------------------------------
// Replay: journal records -> coordinator state. All replay methods run
// before the coordinator is published (no locking needed) and with
// c.journal still nil, so replaying never re-journals.

// replay applies the journal's records in order. Any structural
// inconsistency — an out-of-sequence campaign id, a spec that no longer
// hashes to its recorded fingerprint, a grant naming an unknown
// campaign — fails loudly: recovering wrong state would silently break
// the determinism contract, while refusing to start is visible and
// actionable.
func (c *Coordinator) replay(recs []journalRecord) error {
	for i, rec := range recs {
		var err error
		switch rec.Op {
		case opSnapshot:
			err = c.replaySnapshot(rec.Snapshot)
		case opSubmit:
			err = c.replaySubmit(rec)
		case opGrant:
			err = c.replayGrant(rec)
		case opRenew:
			c.leases.renew(rec.Lease, c.opt.Now().Add(c.opt.LeaseTTL))
		case opComplete:
			err = c.replayComplete(rec)
		case opExpire:
			c.replayExpire(rec)
		case opDrain:
			c.draining = true
		case opResume:
			c.draining = false
		default:
			err = fmt.Errorf("unknown op %q", rec.Op)
		}
		if err != nil {
			return fmt.Errorf("fleet: journal record %d (%s): %w", i+1, rec.Op, err)
		}
	}
	return nil
}

// replaySubmit re-admits a journaled campaign. The spec is re-hydrated
// (re-normalized and checked against its recorded hash, so version skew
// in spec semantics fails loudly instead of silently re-sharding), and
// shards whose every record is already in the store fast-complete
// exactly as they would on resubmit — which covers shards completed
// after this submit was journaled.
func (c *Coordinator) replaySubmit(rec journalRecord) error {
	if rec.Spec == nil {
		return errors.New("submit record without spec")
	}
	want := fmt.Sprintf("c%04d", c.seq+1)
	if rec.Campaign != want {
		return fmt.Errorf("campaign id %s out of sequence (want %s)", rec.Campaign, want)
	}
	spec, err := rec.Spec.Rehydrate(rec.SpecHash)
	if err != nil {
		return err
	}
	jobs, err := spec.Expand()
	if err != nil {
		return err
	}
	shardSize := rec.ShardSize
	if shardSize <= 0 {
		shardSize = c.opt.ShardSize
	}
	c.seq++
	c.admitLocked(rec.Campaign, rec.Tenant, rec.Weight, shardSize, spec, jobs)
	return nil
}

// replayGrant re-creates an active lease with a fresh TTL, so a worker
// that held it across the restart renews and completes normally. A
// grant whose shard has since fast-completed from the store leaves only
// a tombstone: the shard is done, but the worker's eventual completion
// must still resolve.
func (c *Coordinator) replayGrant(rec journalRecord) error {
	fc := c.campaigns[rec.Campaign]
	if fc == nil {
		return fmt.Errorf("grant %s names unknown campaign %s", rec.Lease, rec.Campaign)
	}
	if rec.Shard < 0 || rec.Shard >= len(fc.shardKeys) {
		return fmt.Errorf("grant %s shard %d out of range", rec.Lease, rec.Shard)
	}
	var n int
	if _, err := fmt.Sscanf(rec.Lease, "l%d", &n); err != nil {
		return fmt.Errorf("grant lease id %q unparseable", rec.Lease)
	}
	if n > c.leases.seq {
		c.leases.seq = n
	}
	l := lease{
		id:       rec.Lease,
		campaign: rec.Campaign,
		shard:    rec.Shard,
		jobs:     rec.Jobs,
		worker:   rec.Worker,
		deadline: c.opt.Now().Add(c.opt.LeaseTTL),
	}
	if fc.done[rec.Shard] {
		c.leases.remember(l)
		return nil
	}
	c.queue.grant(rec.Campaign, rec.Shard)
	c.leases.restore(l)
	fc.leased[rec.Shard] = rec.Lease
	c.usage.lease(fc.tenant, rec.Jobs)
	return nil
}

// replayComplete re-runs the control-plane half of Complete. The
// records themselves are already in the store (Complete persists before
// journaling), so only bookkeeping is reconstructed here.
func (c *Coordinator) replayComplete(rec journalRecord) error {
	l, known := c.leases.resolve(rec.Lease)
	if !known {
		// A duplicate completion against a tombstone pruned at rotation
		// (its campaign had finished). The original call changed no
		// shard state; skip.
		return nil
	}
	_, wasActive := c.leases.drop(rec.Lease)
	fc := c.campaigns[l.campaign]
	if fc == nil {
		return fmt.Errorf("complete %s names unknown campaign %s", rec.Lease, l.campaign)
	}
	if wasActive {
		c.usage.complete(fc.tenant, l.jobs)
	}
	if fc.leased[l.shard] == rec.Lease {
		delete(fc.leased, l.shard)
	}
	if !fc.done[l.shard] {
		fc.done[l.shard] = true
		fc.doneCount++
		fc.failed += rec.Failed
		if other, ok := fc.leased[l.shard]; ok {
			if ol, active := c.leases.drop(other); active {
				c.usage.complete(fc.tenant, ol.jobs)
			}
			delete(fc.leased, l.shard)
		}
		if c.queue.take(fc.id, l.shard) {
			c.usage.addQueued(fc.tenant, -l.jobs)
		}
		if fc.finished() {
			c.queue.remove(fc.id)
		}
	}
	return nil
}

// replayExpire re-runs a sweep's re-queueing, in the journaled (sorted)
// order so the rebuilt WFQ queue matches the live coordinator's.
func (c *Coordinator) replayExpire(rec journalRecord) {
	for _, id := range rec.Leases {
		l, ok := c.leases.drop(id)
		if !ok {
			continue
		}
		c.leases.expired++
		fc := c.campaigns[l.campaign]
		if fc == nil {
			continue
		}
		if fc.leased[l.shard] == l.id {
			delete(fc.leased, l.shard)
		}
		if fc.done[l.shard] {
			continue
		}
		c.queue.push(l.campaign, l.shard)
		c.usage.requeue(fc.tenant, l.jobs)
	}
}

// replaySnapshot rebuilds the full control plane from a rotation
// checkpoint, replacing whatever was accumulated so far (a snapshot is
// always the first record of a rotated journal).
func (c *Coordinator) replaySnapshot(s *journalSnapshot) error {
	if s == nil {
		return errors.New("snapshot record without snapshot")
	}
	c.campaigns = map[string]*fleetCampaign{}
	c.order = nil
	c.leases = newLeaseTable()
	c.queue = newWFQ()
	c.usage = newTenantUsage()
	c.seq = s.Seq
	c.draining = s.Draining
	c.leases.seq = s.LeaseSeq
	c.leases.expired = s.Expired
	c.queue.vtime = s.VTime

	for _, sc := range s.Campaigns {
		spec, err := sc.Spec.Rehydrate(sc.SpecHash)
		if err != nil {
			return fmt.Errorf("campaign %s: %w", sc.ID, err)
		}
		jobs, err := spec.Expand()
		if err != nil {
			return fmt.Errorf("campaign %s: %w", sc.ID, err)
		}
		fc := &fleetCampaign{
			id:        sc.ID,
			tenant:    sc.Tenant,
			specHash:  sc.SpecHash,
			spec:      spec,
			jobs:      len(jobs),
			shardSize: sc.ShardSize,
			leased:    map[int]string{},
			failed:    sc.Failed,
		}
		nShards := spec.NumShards(fc.shardSize)
		fc.shardKeys = make([][]string, nShards)
		fc.done = make([]bool, nShards)
		for i := 0; i < nShards; i++ {
			lo := i * fc.shardSize
			hi := lo + fc.shardSize
			if hi > len(jobs) {
				hi = len(jobs)
			}
			keys := make([]string, 0, hi-lo)
			for _, j := range jobs[lo:hi] {
				keys = append(keys, j.Key)
			}
			fc.shardKeys[i] = keys
		}
		for _, d := range sc.Done {
			if d < 0 || d >= nShards {
				return fmt.Errorf("campaign %s: done shard %d out of range", sc.ID, d)
			}
			if !fc.done[d] {
				fc.done[d] = true
				fc.doneCount++
			}
		}
		c.campaigns[fc.id] = fc
		c.order = append(c.order, fc.id)
		if !fc.finished() {
			c.queue.entries[fc.id] = &queueEntry{
				id:      fc.id,
				tenant:  fc.tenant,
				pass:    sc.Pass,
				stride:  sc.Stride,
				pending: append([]int(nil), sc.Queued...),
			}
			for _, sh := range sc.Queued {
				if sh < 0 || sh >= nShards {
					return fmt.Errorf("campaign %s: queued shard %d out of range", sc.ID, sh)
				}
				c.usage.addQueued(fc.tenant, len(fc.shardKeys[sh]))
			}
		}
	}
	for _, sl := range s.History {
		c.leases.remember(lease{id: sl.ID, campaign: sl.Campaign, shard: sl.Shard, jobs: sl.Jobs, worker: sl.Worker})
	}
	for _, sl := range s.Leases {
		fc := c.campaigns[sl.Campaign]
		if fc == nil {
			return fmt.Errorf("active lease %s names unknown campaign %s", sl.ID, sl.Campaign)
		}
		c.leases.restore(lease{
			id:       sl.ID,
			campaign: sl.Campaign,
			shard:    sl.Shard,
			jobs:     sl.Jobs,
			worker:   sl.Worker,
			deadline: c.opt.Now().Add(c.opt.LeaseTTL),
		})
		fc.leased[sl.Shard] = sl.ID
		c.usage.addInflight(fc.tenant, sl.Jobs)
	}
	return nil
}

// snapshotLocked captures the live control plane for rotation. Caller
// holds c.mu.
func (c *Coordinator) snapshotLocked() *journalSnapshot {
	s := &journalSnapshot{
		Seq:      c.seq,
		LeaseSeq: c.leases.seq,
		Expired:  c.leases.expired,
		Draining: c.draining,
		VTime:    c.queue.vtime,
	}
	for _, id := range c.order {
		fc := c.campaigns[id]
		sc := snapCampaign{
			ID:        fc.id,
			Tenant:    fc.tenant,
			SpecHash:  fc.specHash,
			ShardSize: fc.shardSize,
			Spec:      fc.spec,
			Failed:    fc.failed,
		}
		for i, d := range fc.done {
			if d {
				sc.Done = append(sc.Done, i)
			}
		}
		if e := c.queue.entries[id]; e != nil {
			sc.Queued = append([]int(nil), e.pending...)
			sc.Pass = e.pass
			sc.Stride = e.stride
		}
		s.Campaigns = append(s.Campaigns, sc)
	}
	active := make([]string, 0, len(c.leases.active))
	for id := range c.leases.active {
		active = append(active, id)
	}
	sort.Strings(active)
	for _, id := range active {
		l := c.leases.active[id]
		s.Leases = append(s.Leases, snapLease{ID: l.id, Campaign: l.campaign, Shard: l.shard, Jobs: l.jobs, Worker: l.worker})
	}
	hist := make([]string, 0, len(c.leases.history))
	for id, l := range c.leases.history {
		if _, isActive := c.leases.active[id]; isActive {
			continue
		}
		fc := c.campaigns[l.campaign]
		if fc == nil || fc.finished() {
			continue
		}
		hist = append(hist, id)
	}
	sort.Strings(hist)
	for _, id := range hist {
		l := c.leases.history[id]
		s.History = append(s.History, snapLease{ID: l.id, Campaign: l.campaign, Shard: l.shard, Jobs: l.jobs, Worker: l.worker})
	}
	return s
}
