// Package fleet is the distributed campaign fabric: a coordinator
// that expands campaign specs into job shards and serves them to a
// fleet of nocsimd workers over a work-stealing pull protocol, backed
// by a content-addressed sharded result store.
//
// The design leans entirely on two properties the campaign layer
// already guarantees:
//
//   - The job list of a spec is a pure function of the normalized
//     spec, expanded in a fixed order. A lease therefore names a shard
//     as (spec, index, size) and every worker re-derives exactly the
//     same jobs — no job payloads cross the wire.
//   - Records are pure functions of their jobs, keyed by the canonical
//     config hash. Any worker's record for a key equals any other's,
//     so results merge idempotently: duplicate completions (a shard
//     re-leased after a worker death, then both finishing) collapse in
//     the content-addressed store instead of corrupting aggregates.
//
// Together these make the fabric deterministic end to end: the merged
// aggregates of a spec run across any fleet — including one that lost
// workers mid-run — are byte-identical to a single-process
// campaign.Engine run of the same spec.
//
// Failure handling is lease-based. A worker pulls a shard lease with a
// deadline, renews it while simulating, and completes it with the
// records. A worker that dies simply stops renewing; the coordinator
// re-queues the shard at the next expiry sweep and another worker
// picks it up. Completions against expired or re-issued leases are
// still accepted (the records are correct by determinism) — the store
// dedups, the shard is marked done, and the racing lease is dropped.
//
// Admission is multi-tenant: per-tenant job quotas bound how much work
// one tenant may have outstanding (submits past the quota get 429 +
// Retry-After so clients back off instead of the coordinator OOMing),
// and shard dispatch runs weighted-fair queueing across campaigns via
// stride scheduling, so a million-job sweep shares the fleet with an
// interactive ten-job probe instead of starving it.
package fleet

import (
	"time"

	"tdmnoc/internal/campaign"
)

// Wire protocol. All endpoints speak JSON over the coordinator's HTTP
// surface under /fleet/.

// SubmitRequest posts a campaign to the coordinator.
type SubmitRequest struct {
	// Tenant names the submitting tenant (empty = "default"); quotas
	// and fair-queueing weights apply per tenant.
	Tenant string `json:"tenant,omitempty"`
	// Weight overrides the tenant's fair-share weight for this
	// campaign (0 = tenant default). Higher weight = more shards per
	// scheduling round.
	Weight float64 `json:"weight,omitempty"`
	// Spec is the campaign grid, exactly as for single-process runs.
	Spec campaign.Spec `json:"spec"`
}

// SubmitResponse acknowledges an admitted campaign.
type SubmitResponse struct {
	ID       string `json:"id"`
	SpecHash string `json:"spec_hash"`
	Jobs     int    `json:"jobs"`
	Shards   int    `json:"shards"`
	// CachedShards counts shards completed at admission because every
	// job key was already in the store (the distributed resume path).
	CachedShards int    `json:"cached_shards"`
	StatusURL    string `json:"status_url"`
}

// LeaseRequest is a worker's pull for work.
type LeaseRequest struct {
	// Worker identifies the puller in lease listings and logs.
	Worker string `json:"worker"`
}

// LeaseResponse grants one shard. The worker re-derives the jobs from
// (Spec, Shard) and must renew before Deadline or the shard is
// re-queued.
type LeaseResponse struct {
	LeaseID  string         `json:"lease_id"`
	Campaign string         `json:"campaign"`
	Tenant   string         `json:"tenant"`
	Spec     campaign.Spec  `json:"spec"`
	Shard    campaign.Shard `json:"shard"`
	Jobs     int            `json:"jobs"`
	// TTL is the renewal interval: the lease expires TTL after grant
	// or last renewal.
	TTL time.Duration `json:"ttl_ns"`
}

// CompleteRequest returns a finished shard's records. Records with Err
// set ride along for accounting but are never persisted.
type CompleteRequest struct {
	Worker  string            `json:"worker"`
	Records []campaign.Record `json:"records"`
}

// CompleteResponse reports what the store did with the records.
type CompleteResponse struct {
	Persisted  int `json:"persisted"`
	Duplicates int `json:"duplicates"`
	Failed     int `json:"failed"`
}

// CampaignStatus is the coordinator's view of one campaign.
type CampaignStatus struct {
	ID           string        `json:"id"`
	Tenant       string        `json:"tenant"`
	SpecHash     string        `json:"spec_hash"`
	State        string        `json:"state"` // running | done
	Jobs         int           `json:"jobs"`
	Shards       int           `json:"shards"`
	ShardsDone   int           `json:"shards_done"`
	ShardsLeased int           `json:"shards_leased"`
	JobsFailed   int           `json:"jobs_failed"`
	Spec         campaign.Spec `json:"spec"`
}

// Metrics is the coordinator counter snapshot backing the Prometheus
// endpoint.
type Metrics struct {
	CampaignsTotal   int            `json:"campaigns_total"`
	CampaignsRunning int            `json:"campaigns_running"`
	QueueDepth       int            `json:"queue_depth"` // shards awaiting lease
	LeasesActive     int            `json:"leases_active"`
	LeasesExpired    int64          `json:"leases_expired_total"`
	SubmitsRejected  int64          `json:"submits_rejected_total"`
	JobsCompleted    int64          `json:"jobs_completed_total"`
	JobsFailed       int64          `json:"jobs_failed_total"`
	RecordsPersisted int64          `json:"records_persisted_total"`
	RecordsDuplicate int64          `json:"records_duplicate_total"`
	ShardsCompacted  int64          `json:"shards_compacted_total"`
	StoreLive        int            `json:"store_live_records"`
	StoreDead        int            `json:"store_dead_lines"`
	TenantInflight   map[string]int `json:"tenant_inflight_jobs"`
	TenantQueued     map[string]int `json:"tenant_queued_jobs"`

	// AccountingUnderflow counts tenant-usage updates that would have
	// driven a count negative (clamped to zero) — always an accounting
	// bug somewhere, surfaced instead of masked.
	AccountingUnderflow int64 `json:"accounting_underflow_total"`

	// Write-ahead journal counters; all zero when running without one.
	JournalEnabled   bool  `json:"journal_enabled"`
	JournalRecords   int64 `json:"journal_records_total"`
	JournalSyncs     int64 `json:"journal_syncs_total"`
	JournalRotations int64 `json:"journal_rotations_total"`
	JournalErrors    int64 `json:"journal_errors_total"`
	JournalSizeBytes int64 `json:"journal_size_bytes"`
	// JournalReplayed is the record count recovered at startup.
	JournalReplayed int64 `json:"journal_replayed_records"`
}
