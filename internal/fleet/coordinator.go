package fleet

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tdmnoc/internal/campaign"
	"tdmnoc/internal/stats"
)

// Options configures a Coordinator.
type Options struct {
	// Store is the content-addressed sharded result store (required).
	Store *campaign.ShardedStore
	// ShardSize is the number of jobs per lease (0 = 16). Smaller
	// shards steal better; larger shards amortise lease traffic.
	ShardSize int
	// LeaseTTL is how long a worker may go without renewing before its
	// shard is re-queued (0 = 45s).
	LeaseTTL time.Duration
	// TenantQuota bounds a tenant's outstanding (queued + leased) jobs;
	// submits past it are rejected with a QuotaError (0 = 100_000).
	TenantQuota int
	// TenantWeights sets default fair-share weights per tenant
	// (unlisted tenants weigh 1; a submit's Weight field overrides).
	TenantWeights map[string]float64
	// RetryAfter is the backoff hint attached to quota and drain
	// rejections (0 = 15s).
	RetryAfter time.Duration
	// Journal is the path of the write-ahead journal (empty = no
	// journal: coordinator state is in-memory only and a restart loses
	// queued campaigns, the pre-journal behavior). With a journal,
	// NewCoordinator replays it to reconstruct campaigns, the queue,
	// tenant usage and the lease table; active leases come back with
	// fresh TTLs so in-flight workers renew and complete normally.
	Journal string
	// JournalRotateBytes is the journal size past which the coordinator
	// rotates: live state is snapshotted into a fresh file that replaces
	// the log (0 = 4 MiB).
	JournalRotateBytes int64
	// Now is the clock (nil = time.Now). Tests inject a fake to drive
	// lease expiry deterministically.
	Now func() time.Time
}

// ErrDraining rejects submits while the coordinator drains.
var ErrDraining = errors.New("fleet: coordinator is draining")

// ErrJournal rejects a submit whose write-ahead record could not be
// made durable: admitting a campaign the journal does not know about
// would silently revive the restart-loses-campaigns bug the journal
// exists to fix.
var ErrJournal = errors.New("fleet: journal append failed")

// QuotaError rejects a submit that would exceed the tenant's quota.
type QuotaError struct {
	Tenant      string
	Outstanding int
	Requested   int
	Quota       int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("fleet: tenant %q quota exceeded: %d outstanding + %d requested > %d",
		e.Tenant, e.Outstanding, e.Requested, e.Quota)
}

// fleetCampaign is the coordinator's state for one admitted campaign.
type fleetCampaign struct {
	id       string
	tenant   string
	specHash string
	spec     campaign.Spec
	jobs     int

	shardSize int
	shardKeys [][]string // job cache keys, per shard, in expansion order
	done      []bool
	doneCount int
	leased    map[int]string // shard -> active lease id
	failed    int            // job failures reported by completions
}

func (fc *fleetCampaign) finished() bool { return fc.doneCount == len(fc.shardKeys) }

// allKeys flattens the per-shard key lists back into job order.
func (fc *fleetCampaign) allKeys() []string {
	keys := make([]string, 0, fc.jobs)
	for _, sk := range fc.shardKeys {
		keys = append(keys, sk...)
	}
	return keys
}

// Coordinator is the fleet's control plane: it admits campaigns,
// serves shard leases to pulling workers, persists completions into
// the sharded store, and re-queues the shards of workers that stop
// renewing. All state mutations run under one mutex — the work is
// bookkeeping; the heavy lifting (simulation) is the workers' problem
// and storage I/O is the store's.
type Coordinator struct {
	opt Options

	mu        sync.Mutex
	campaigns map[string]*fleetCampaign
	order     []string // campaign ids in admission order
	leases    *leaseTable
	queue     *wfq
	usage     *tenantUsage
	seq       int
	draining  bool

	// journal is the write-ahead log (nil without Options.Journal).
	// Appends happen under mu so journal order equals transition order;
	// it stays nil during replay so recovery never re-journals.
	journal         *journal
	journalReplayed int64

	submitsRejected  atomic.Int64
	jobsCompleted    atomic.Int64
	jobsFailed       atomic.Int64
	recordsPersisted atomic.Int64
	recordsDuplicate atomic.Int64
	shardsCompacted  atomic.Int64

	compactions sync.WaitGroup
}

// NewCoordinator builds a coordinator over the given store.
func NewCoordinator(opt Options) (*Coordinator, error) {
	if opt.Store == nil {
		return nil, errors.New("fleet: coordinator needs a store")
	}
	if opt.ShardSize <= 0 {
		opt.ShardSize = 16
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 45 * time.Second
	}
	if opt.TenantQuota <= 0 {
		opt.TenantQuota = 100_000
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = 15 * time.Second
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	if opt.JournalRotateBytes <= 0 {
		opt.JournalRotateBytes = 4 << 20
	}
	c := &Coordinator{
		opt:       opt,
		campaigns: map[string]*fleetCampaign{},
		leases:    newLeaseTable(),
		queue:     newWFQ(),
		usage:     newTenantUsage(),
	}
	if opt.Journal != "" {
		j, recs, err := openJournal(opt.Journal, opt.JournalRotateBytes)
		if err != nil {
			return nil, err
		}
		if err := c.replay(recs); err != nil {
			j.close()
			return nil, err
		}
		// Publish the journal only after replay: the replay helpers
		// mutate state through the same code shapes as live transitions,
		// and must not append what they are reading back.
		c.journal = j
		c.journalReplayed = int64(len(recs))
	}
	return c, nil
}

// Recovered reports how many journal records NewCoordinator replayed
// (0 without a journal or on a fresh one).
func (c *Coordinator) Recovered() int64 { return c.journalReplayed }

// Close syncs and releases the journal (if any). Background
// compactions should be waited out separately (WaitCompactions).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	return c.journal.close()
}

// logLocked appends a journal record under c.mu. Append failures on
// non-admission transitions are logged and counted rather than
// propagated: the in-memory transition has already happened and the
// worker's work is real — refusing it would discard results to protect
// bookkeeping. The counter (fleet_journal_errors_total) makes a sick
// disk visible; Submit is the one path that fails hard (ErrJournal),
// because rejecting a new campaign is cheap and admitting an
// unjournaled one is exactly the durability hole this log closes.
func (c *Coordinator) logLocked(rec journalRecord, sync bool) {
	if c.journal == nil {
		return
	}
	if err := c.journal.append(rec, sync); err != nil {
		c.journal.countError()
		fmt.Fprintf(os.Stderr, "fleet: journal: %v\n", err)
	}
}

// maybeRotateLocked snapshots and rotates the journal once it outgrows
// its threshold. Caller holds c.mu.
func (c *Coordinator) maybeRotateLocked() {
	if c.journal == nil || !c.journal.shouldRotate() {
		return
	}
	if err := c.journal.rotate(c.snapshotLocked()); err != nil {
		c.journal.countError()
		fmt.Fprintf(os.Stderr, "fleet: journal: %v\n", err)
	}
}

// RetryAfter is the backoff hint for rejected requests.
func (c *Coordinator) RetryAfter() time.Duration { return c.opt.RetryAfter }

// Drain stops the coordinator from admitting campaigns or granting
// leases. Renewals and completions keep working so in-flight shards
// land before shutdown. Drain is journaled: a coordinator killed
// mid-drain comes back draining, so the restart finishes the shutdown
// it was performing instead of silently reopening for business.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	if !c.draining {
		c.draining = true
		c.logLocked(journalRecord{Op: opDrain}, true)
	}
	c.mu.Unlock()
}

// Resume reverses Drain: the coordinator admits and grants again. The
// operator-facing use is a journaled restart — replaying a drain record
// leaves the coordinator draining, and a deliberately restarted service
// should serve, so cmd/nocsimd calls Resume after recovery.
func (c *Coordinator) Resume() {
	c.mu.Lock()
	if c.draining {
		c.draining = false
		c.logLocked(journalRecord{Op: opResume}, true)
	}
	c.mu.Unlock()
}

// Draining reports whether Drain was called.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Idle reports whether no leases are active and no shards are queued —
// the drain-complete condition.
func (c *Coordinator) Idle() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases.active) == 0 && c.queue.depth() == 0
}

// Submit admits a campaign: normalizes and expands the spec, fast-
// completes shards whose every record is already in the store, and
// queues the rest for lease. Errors: ErrDraining, *QuotaError, or a
// spec validation error.
func (c *Coordinator) Submit(req SubmitRequest) (SubmitResponse, error) {
	spec := req.Spec
	if err := spec.Normalize(); err != nil {
		return SubmitResponse{}, err
	}
	jobs, err := spec.Expand()
	if err != nil {
		return SubmitResponse{}, err
	}
	if len(jobs) == 0 {
		return SubmitResponse{}, errors.New("fleet: spec expands to zero jobs")
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	weight := req.Weight
	if weight <= 0 {
		weight = c.opt.TenantWeights[tenant]
	}
	if weight <= 0 {
		weight = 1
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		c.submitsRejected.Add(1)
		return SubmitResponse{}, ErrDraining
	}
	if out := c.usage.outstanding(tenant); out+len(jobs) > c.opt.TenantQuota {
		c.submitsRejected.Add(1)
		return SubmitResponse{}, &QuotaError{Tenant: tenant, Outstanding: out, Requested: len(jobs), Quota: c.opt.TenantQuota}
	}

	// Write-ahead: the admission is journaled (and fsync'd) before any
	// state changes, so every campaign the coordinator ever
	// acknowledged is recoverable. A failed append rejects the submit —
	// the one transition where refusing is cheap and admitting
	// unjournaled would reopen the restart-loses-campaigns hole.
	id := fmt.Sprintf("c%04d", c.seq+1)
	if c.journal != nil {
		rec := journalRecord{
			Op: opSubmit, Campaign: id, Tenant: tenant, Weight: weight,
			ShardSize: c.opt.ShardSize, SpecHash: spec.Hash(), Spec: &spec,
		}
		if err := c.journal.append(rec, true); err != nil {
			c.journal.countError()
			return SubmitResponse{}, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	c.seq++
	fc := c.admitLocked(id, tenant, weight, c.opt.ShardSize, spec, jobs)
	c.maybeRotateLocked()
	return SubmitResponse{
		ID:           fc.id,
		SpecHash:     fc.specHash,
		Jobs:         fc.jobs,
		Shards:       len(fc.shardKeys),
		CachedShards: fc.doneCount,
		StatusURL:    "/fleet/campaigns/" + fc.id,
	}, nil
}

// admitLocked installs an admitted campaign: builds its shard key
// lists, fast-completes shards whose every record is already in the
// store, and queues the rest. Shared by Submit and journal replay —
// which is what makes replay honor store contents newer than the
// submit record: a shard completed after admission fast-completes when
// the submit replays, exactly as it would on resubmit. Caller holds
// c.mu and has already advanced c.seq.
func (c *Coordinator) admitLocked(id, tenant string, weight float64, shardSize int, spec campaign.Spec, jobs []campaign.Job) *fleetCampaign {
	fc := &fleetCampaign{
		id:        id,
		tenant:    tenant,
		specHash:  spec.Hash(),
		spec:      spec,
		jobs:      len(jobs),
		shardSize: shardSize,
		leased:    map[int]string{},
	}
	nShards := spec.NumShards(fc.shardSize)
	fc.shardKeys = make([][]string, nShards)
	fc.done = make([]bool, nShards)
	var pending []int
	for i := 0; i < nShards; i++ {
		lo := i * fc.shardSize
		hi := lo + fc.shardSize
		if hi > len(jobs) {
			hi = len(jobs)
		}
		keys := make([]string, 0, hi-lo)
		for _, j := range jobs[lo:hi] {
			keys = append(keys, j.Key)
		}
		fc.shardKeys[i] = keys
		if _, missing := c.opt.Store.LookupAll(keys); missing == 0 {
			// Every record already exists — a prior campaign (or an
			// interrupted run of this one) computed this shard. Complete
			// it at admission: the distributed analogue of store resume.
			fc.done[i] = true
			fc.doneCount++
			continue
		}
		pending = append(pending, i)
		c.usage.addQueued(tenant, len(keys))
	}
	c.campaigns[fc.id] = fc
	c.order = append(c.order, fc.id)
	if !fc.finished() {
		c.queue.add(fc.id, tenant, weight, pending)
	}
	return fc
}

// Lease grants the next shard under weighted-fair order, or reports
// no work (also the draining response — workers see an idle
// coordinator and back off).
func (c *Coordinator) Lease(worker string) (LeaseResponse, bool) {
	now := c.opt.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)
	if c.draining {
		return LeaseResponse{}, false
	}
	id, shard, ok := c.queue.pick()
	if !ok {
		return LeaseResponse{}, false
	}
	fc := c.campaigns[id]
	jobs := len(fc.shardKeys[shard])
	l := c.leases.grant(id, shard, jobs, worker, now.Add(c.opt.LeaseTTL))
	fc.leased[shard] = l.id
	c.usage.lease(fc.tenant, jobs)
	// Journal before the response leaves the lock: once a worker holds
	// the lease id, a restart must be able to resolve it.
	c.logLocked(journalRecord{
		Op: opGrant, Campaign: id, Lease: l.id, Shard: shard, Jobs: jobs, Worker: worker,
	}, true)
	c.maybeRotateLocked()
	return LeaseResponse{
		LeaseID:  l.id,
		Campaign: id,
		Tenant:   fc.tenant,
		Spec:     fc.spec,
		Shard:    campaign.Shard{Index: shard, Size: fc.shardSize},
		Jobs:     jobs,
		TTL:      c.opt.LeaseTTL,
	}, true
}

// Renew extends a lease, reporting whether it was still active. A
// false return tells the worker its shard has been re-queued (it may
// keep computing — the completion will still be accepted and deduped —
// but should not count on exclusivity).
func (c *Coordinator) Renew(id string) bool {
	now := c.opt.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)
	ok := c.leases.renew(id, now.Add(c.opt.LeaseTTL))
	if ok {
		// Unsynced: losing a renew record is harmless (recovery refreshes
		// every restored lease's TTL anyway), so renews ride until the
		// next synced append instead of paying an fsync per heartbeat.
		c.logLocked(journalRecord{Op: opRenew, Lease: id}, false)
	}
	return ok
}

// Complete lands a shard's records. The lease may be expired or even
// superseded by a re-grant — determinism makes the records equally
// valid, so they are persisted (deduped by the store), the shard is
// marked done, and any racing lease or queue entry for it is retired.
// Unknown lease ids return an error.
func (c *Coordinator) Complete(id string, recs []campaign.Record) (CompleteResponse, error) {
	now := c.opt.Now()
	c.mu.Lock()
	c.sweepLocked(now)
	l, known := c.leases.resolve(id)
	if !known {
		c.mu.Unlock()
		return CompleteResponse{}, fmt.Errorf("fleet: unknown lease %s", id)
	}
	_, wasActive := c.leases.drop(id)
	fc := c.campaigns[l.campaign]
	c.mu.Unlock()

	// Persist outside the coordinator lock: the store has its own
	// locking, and a slow disk must not stall lease traffic.
	var resp CompleteResponse
	for _, r := range recs {
		if r.Err != "" {
			resp.Failed++
			continue
		}
		wrote, err := c.opt.Store.Append(r)
		if err != nil {
			return resp, fmt.Errorf("fleet: persist record %s: %w", r.Key, err)
		}
		if wrote {
			resp.Persisted++
		} else {
			resp.Duplicates++
		}
	}
	c.recordsPersisted.Add(int64(resp.Persisted))
	c.recordsDuplicate.Add(int64(resp.Duplicates))
	c.jobsFailed.Add(int64(resp.Failed))

	c.mu.Lock()
	if wasActive {
		c.usage.complete(fc.tenant, l.jobs)
	}
	if fc.leased[l.shard] == id {
		delete(fc.leased, l.shard)
	}
	if !fc.done[l.shard] {
		fc.done[l.shard] = true
		fc.doneCount++
		fc.failed += resp.Failed
		c.jobsCompleted.Add(int64(l.jobs - resp.Failed))
		// Retire whatever else claims this shard: a racing re-grant's
		// lease, or the shard sitting back in the queue after expiry.
		if other, ok := fc.leased[l.shard]; ok {
			if ol, active := c.leases.drop(other); active {
				c.usage.complete(fc.tenant, ol.jobs)
			}
			delete(fc.leased, l.shard)
		}
		if c.queue.take(fc.id, l.shard) {
			c.usage.addQueued(fc.tenant, -l.jobs)
		}
		if fc.finished() {
			c.queue.remove(fc.id)
		}
	}
	// Journaled after the store append above: a journaled completion
	// implies its records are durable, so replay only reconstructs
	// bookkeeping and never needs the records themselves.
	c.logLocked(journalRecord{
		Op: opComplete, Campaign: l.campaign, Lease: id, Shard: l.shard, Failed: resp.Failed,
	}, true)
	c.maybeRotateLocked()
	c.mu.Unlock()

	// Completions are when dead weight accrues (duplicate records from
	// re-leased shards); give the store a chance to reclaim it.
	c.compactions.Add(1)
	go func() {
		defer c.compactions.Done()
		n, err := c.opt.Store.MaybeCompact()
		if n > 0 {
			c.shardsCompacted.Add(int64(n))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: compaction: %v\n", err)
		}
	}()
	return resp, nil
}

// WaitCompactions blocks until background compactions kicked by
// completions have finished (tests and shutdown).
func (c *Coordinator) WaitCompactions() { c.compactions.Wait() }

// sweepLocked expires overdue leases and re-queues their shards. The
// sweep journals one expire record carrying the swept lease ids in
// sorted order, so replay re-queues shards exactly as the live sweep
// did and the rebuilt WFQ queue matches.
func (c *Coordinator) sweepLocked(now time.Time) {
	swept := c.leases.sweep(now)
	if len(swept) == 0 {
		return
	}
	ids := make([]string, 0, len(swept))
	for _, l := range swept {
		ids = append(ids, l.id)
		fc := c.campaigns[l.campaign]
		if fc == nil {
			continue
		}
		if fc.leased[l.shard] == l.id {
			delete(fc.leased, l.shard)
		}
		if fc.done[l.shard] {
			// Completed by another lease while this one idled; nothing
			// to re-queue. Accounting was settled by that completion.
			continue
		}
		c.queue.push(l.campaign, l.shard)
		c.usage.requeue(fc.tenant, l.jobs)
	}
	c.logLocked(journalRecord{Op: opExpire, Leases: ids}, true)
}

// statusLocked builds a CampaignStatus snapshot.
func (fc *fleetCampaign) statusLocked() CampaignStatus {
	state := "running"
	if fc.finished() {
		state = "done"
	}
	return CampaignStatus{
		ID:           fc.id,
		Tenant:       fc.tenant,
		SpecHash:     fc.specHash,
		State:        state,
		Jobs:         fc.jobs,
		Shards:       len(fc.shardKeys),
		ShardsDone:   fc.doneCount,
		ShardsLeased: len(fc.leased),
		JobsFailed:   fc.failed,
		Spec:         fc.spec,
	}
}

// Status returns one campaign's state.
func (c *Coordinator) Status(id string) (CampaignStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fc, ok := c.campaigns[id]
	if !ok {
		return CampaignStatus{}, false
	}
	return fc.statusLocked(), true
}

// Statuses returns every campaign in admission order.
func (c *Coordinator) Statuses() []CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CampaignStatus, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.campaigns[id].statusLocked())
	}
	return out
}

// Records resolves a campaign's job keys against the store, in job
// order, reporting how many are still missing. With missing == 0 the
// slice is exactly what a single-process Engine run would return
// (records marked Cached, as store hits are).
func (c *Coordinator) Records(id string) (found []campaign.Record, missing int, ok bool) {
	c.mu.Lock()
	fc, exists := c.campaigns[id]
	if !exists {
		c.mu.Unlock()
		return nil, 0, false
	}
	keys := fc.allKeys()
	c.mu.Unlock()
	found, missing = c.opt.Store.LookupAll(keys)
	return found, missing, true
}

// Summary merges a campaign's records into per-group (seed-folded)
// aggregates. Records are merged in job order, so the floating-point
// sums — and therefore the marshalled bytes — are identical to
// aggregating a single-process Engine run of the same spec.
func (c *Coordinator) Summary(id string) (map[string]stats.RunRecord, bool) {
	recs, _, ok := c.Records(id)
	if !ok {
		return nil, false
	}
	return campaign.Aggregate(recs, campaign.GroupWithoutSeed), true
}

// SummaryGroups returns a campaign's group keys in sorted order with
// their aggregates, the deterministic shape handlers marshal.
func SummaryGroups(m map[string]stats.RunRecord) ([]string, map[string]stats.RunRecord) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, m
}

// Metrics snapshots the coordinator counters.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	running := 0
	for _, fc := range c.campaigns {
		if !fc.finished() {
			running++
		}
	}
	m := Metrics{
		CampaignsTotal:      len(c.campaigns),
		CampaignsRunning:    running,
		QueueDepth:          c.queue.depth(),
		LeasesActive:        len(c.leases.active),
		LeasesExpired:       c.leases.expired,
		TenantInflight:      copyCounts(c.usage.inflight),
		TenantQueued:        copyCounts(c.usage.queued),
		AccountingUnderflow: c.usage.underflow,
	}
	if c.journal != nil {
		m.JournalEnabled = true
		m.JournalReplayed = c.journalReplayed
		m.JournalRecords, m.JournalSyncs, m.JournalRotations, m.JournalErrors, m.JournalSizeBytes = c.journal.stats()
	}
	c.mu.Unlock()
	m.SubmitsRejected = c.submitsRejected.Load()
	m.JobsCompleted = c.jobsCompleted.Load()
	m.JobsFailed = c.jobsFailed.Load()
	m.RecordsPersisted = c.recordsPersisted.Load()
	m.RecordsDuplicate = c.recordsDuplicate.Load()
	m.ShardsCompacted = c.shardsCompacted.Load()
	m.StoreLive = c.opt.Store.Len()
	m.StoreDead = c.opt.Store.Dead()
	return m
}
