package network

import (
	"testing"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// oneShot sends a single packet from a fixed source at cycle 1.
type oneShot struct {
	src, dst topology.NodeID
	opt      SendOptions
	sent     *flit.Packet
	got      *flit.Packet
	gotAt    sim.Cycle
}

func (o *oneShot) Tick(now sim.Cycle, ni *NI) {
	if now == 1 && ni.ID() == o.src && o.sent == nil {
		o.sent = ni.Send(now, o.dst, o.opt)
	}
}

func (o *oneShot) OnDeliver(now sim.Cycle, ni *NI, pkt *flit.Packet) {
	if ni.ID() == o.dst {
		o.got = pkt
		o.gotAt = now
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	shot := &oneShot{src: 0, dst: 35}
	net := New(cfg, func(id topology.NodeID) Endpoint { return shot })
	defer net.Close()
	net.EnableStats()
	net.Run(200)
	if shot.got == nil {
		t.Fatal("packet never delivered")
	}
	if shot.got.ID != shot.sent.ID {
		t.Fatal("delivered a different packet")
	}
	// Zero-load latency for a 10-hop 5-flit packet: 5 cycles per hop for
	// the head plus dest-router pipeline and 4 trailing flits.
	lat := shot.got.NetworkLatency()
	want := int64(5*10 + 3 + 4)
	if lat != want {
		t.Errorf("zero-load latency %d, want %d", lat, want)
	}
	d := net.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 || d.LatchConflicts != 0 {
		t.Errorf("diagnostics dirty: %+v", d)
	}
	s := net.Stats()
	if s.EjectedPackets != 1 || s.InjectedPackets != 1 {
		t.Errorf("stats: injected=%d ejected=%d", s.InjectedPackets, s.EjectedPackets)
	}
}

func TestSinglePacketShortHop(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	shot := &oneShot{src: 0, dst: 1}
	net := New(cfg, func(id topology.NodeID) Endpoint { return shot })
	defer net.Close()
	net.Run(100)
	if shot.got == nil {
		t.Fatal("packet never delivered")
	}
	if lat := shot.got.NetworkLatency(); lat != 5*1+3+4 {
		t.Errorf("1-hop latency %d, want 12", lat)
	}
}

// burst sends many packets from every node to a fixed pattern then stops.
type burst struct {
	count   int
	dstOf   func(src topology.NodeID, m topology.Mesh) (topology.NodeID, bool)
	allowCS bool
	sent    int
	period  sim.Cycle
}

func (b *burst) Tick(now sim.Cycle, ni *NI) {
	if b.sent >= b.count || now%b.period != 1 {
		return
	}
	dst, ok := b.dstOf(ni.ID(), ni.Mesh())
	if !ok {
		b.sent = b.count
		return
	}
	ni.Send(now, dst, SendOptions{Class: flit.ClassOther, AllowCS: b.allowCS, Slack: -1})
	b.sent++
}

func (b *burst) OnDeliver(now sim.Cycle, ni *NI, pkt *flit.Packet) {}

func reversePattern(src topology.NodeID, m topology.Mesh) (topology.NodeID, bool) {
	d := topology.NodeID(m.Nodes() - 1 - int(src))
	return d, d != src
}

func TestConservationPacketSwitched(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	eps := map[topology.NodeID]*burst{}
	net := New(cfg, func(id topology.NodeID) Endpoint {
		b := &burst{count: 20, dstOf: reversePattern, period: 7}
		eps[id] = b
		return b
	})
	defer net.Close()
	net.EnableStats()
	net.Run(7 * 25)
	if !net.Drain(5000) {
		t.Fatalf("network failed to drain; in flight: %d", net.InFlight())
	}
	s := net.Stats()
	if s.InjectedPackets != s.EjectedPackets {
		t.Fatalf("conservation violated: injected=%d ejected=%d", s.InjectedPackets, s.EjectedPackets)
	}
	if s.InjectedPackets == 0 {
		t.Fatal("no traffic generated")
	}
	d := net.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 || d.LatchConflicts != 0 {
		t.Errorf("diagnostics dirty: %+v", d)
	}
}

func TestHybridCircuitEstablishmentAndUse(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	net := New(cfg, func(id topology.NodeID) Endpoint {
		return &burst{count: 200, dstOf: reversePattern, allowCS: true, period: 11}
	})
	defer net.Close()
	net.EnableStats()
	net.Run(11 * 220)
	if !net.Drain(20000) {
		t.Fatalf("network failed to drain; in flight: %d", net.InFlight())
	}
	s := net.Stats()
	if s.InjectedPackets != s.EjectedPackets {
		t.Fatalf("conservation violated: injected=%d ejected=%d", s.InjectedPackets, s.EjectedPackets)
	}
	if s.SetupsOK == 0 {
		t.Error("no circuits were established")
	}
	if s.CSFlits == 0 {
		t.Error("no flits travelled circuit-switched")
	}
	d := net.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 || d.LatchConflicts != 0 {
		t.Errorf("diagnostics dirty: %+v", d)
	}
	if f := s.ConfigTrafficFraction(); f > 0.05 {
		t.Errorf("config traffic fraction %.3f too high", f)
	}
}

func TestCircuitSwitchedLatencyBeatsPS(t *testing.T) {
	// Same workload on PS-only and hybrid networks; with an established
	// circuit the CS path must cut average latency for long-haul pairs.
	run := func(cfg Config) float64 {
		net := New(cfg, func(id topology.NodeID) Endpoint {
			return &burst{count: 300, dstOf: reversePattern, allowCS: true, period: 20}
		})
		defer net.Close()
		net.Run(2000) // warm up: let circuits establish
		net.EnableStats()
		net.Run(20 * 300)
		net.Drain(20000)
		st := net.Stats()
		avg, ok := st.AvgNetLatency()
		if !ok {
			t.Fatal("no latency samples")
		}
		return avg
	}
	ps := run(DefaultConfig(6, 6))
	hy := run(HybridTDMConfig(6, 6))
	if hy >= ps {
		t.Errorf("hybrid avg latency %.1f not better than packet-switched %.1f", hy, ps)
	}
}

func TestParallelExecutionMatchesSerial(t *testing.T) {
	run := func(workers int) (int64, int64, int64, int64) {
		cfg := HybridTDMConfig(6, 6)
		cfg.Workers = workers
		net := New(cfg, func(id topology.NodeID) Endpoint {
			return &burst{count: 100, dstOf: reversePattern, allowCS: true, period: 5}
		})
		defer net.Close()
		net.EnableStats()
		net.Run(3000)
		s := net.Stats()
		e := net.Energy()
		return s.InjectedPackets, s.EjectedPackets, s.NetLatencySum, int64(e.TotalPJ())
	}
	i1, e1, l1, p1 := run(1)
	i4, e4, l4, p4 := run(4)
	if i1 != i4 || e1 != e4 || l1 != l4 || p1 != p4 {
		t.Fatalf("parallel run diverged: serial=(%d,%d,%d,%d) parallel=(%d,%d,%d,%d)",
			i1, e1, l1, p1, i4, e4, l4, p4)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		cfg := HybridTDMConfig(4, 4)
		cfg.Seed = 77
		net := New(cfg, func(id topology.NodeID) Endpoint {
			return &burst{count: 50, dstOf: reversePattern, allowCS: true, period: 3}
		})
		defer net.Close()
		net.EnableStats()
		net.Run(1500)
		s := net.Stats()
		return s.EjectedPackets, s.NetLatencySum
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("same seed produced different results: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestTeardownReleasesSlots(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	cfg.IdleTeardown = 100
	cfg.MaxCircuits = 1
	net := New(cfg, func(id topology.NodeID) Endpoint { return nil })
	defer net.Close()
	ni := net.NI(0)

	// Manually drive two setups from node 0 to different destinations;
	// with MaxCircuits=1 the second must tear the first down once idle.
	for i := 0; i < 10; i++ {
		ni.Send(net.Now(), 35, SendOptions{AllowCS: true, Slack: -1})
		net.Run(5)
	}
	net.RunUntil(func() bool { return ni.Circuits() == 1 }, 3000)
	if ni.Circuits() != 1 {
		t.Fatal("first circuit not established")
	}
	net.Run(200) // exceed IdleTeardown
	for i := 0; i < 10; i++ {
		ni.Send(net.Now(), 30, SendOptions{AllowCS: true, Slack: -1})
		net.Run(5)
	}
	net.RunUntil(func() bool {
		_, has30 := niCircuit(ni, 30)
		return has30
	}, 5000)
	if _, ok := niCircuit(ni, 30); !ok {
		t.Fatal("second circuit did not replace the idle first")
	}
	if _, ok := niCircuit(ni, 35); ok {
		t.Fatal("idle circuit was not torn down")
	}
	// Eventually every slot of the torn circuit must be free again at the
	// source router's local table beyond those held by the new circuit.
	net.Run(500)
	tbl := net.Router(0).Tables()
	if got := tbl.ReservedEntries(); got != cfg.ReserveDuration() {
		t.Errorf("source router holds %d reserved entries, want %d", got, cfg.ReserveDuration())
	}
}

func niCircuit(ni *NI, dst topology.NodeID) (*circuit, bool) {
	c, ok := ni.circuits[dst]
	return c, ok
}

func TestVCGatingReducesActiveVCs(t *testing.T) {
	cfg := HybridTDMConfig(6, 6).WithVCGating()
	net := New(cfg, func(id topology.NodeID) Endpoint { return nil })
	defer net.Close()
	net.Run(5000) // idle network: utilisation 0, VCs gate down
	gated := 0
	for i := 0; i < net.Mesh().Nodes(); i++ {
		if net.Router(topology.NodeID(i)).ActiveVCs() < cfg.Router.VCs {
			gated++
		}
	}
	if gated != net.Mesh().Nodes() {
		t.Errorf("only %d/%d routers gated VCs on an idle network", gated, net.Mesh().Nodes())
	}
}

func TestVCGatingKeepsTrafficFlowing(t *testing.T) {
	cfg := HybridTDMConfig(6, 6).WithVCGating()
	net := New(cfg, func(id topology.NodeID) Endpoint {
		return &burst{count: 150, dstOf: reversePattern, allowCS: true, period: 6}
	})
	defer net.Close()
	net.EnableStats()
	net.Run(6 * 170)
	if !net.Drain(30000) {
		t.Fatalf("gated network failed to drain; in flight %d", net.InFlight())
	}
	s := net.Stats()
	if s.InjectedPackets != s.EjectedPackets {
		t.Fatalf("conservation violated under gating: %d vs %d", s.InjectedPackets, s.EjectedPackets)
	}
}

func TestPathSharingHitchhike(t *testing.T) {
	// Node 0 builds a circuit 0 -> 5 along the top row; node 2 (on the
	// path) should then hitchhike to destination 5 instead of packet
	// switching everything.
	cfg := HybridTDMConfig(6, 6).WithSharing()
	cfg.SetupThreshold = 2
	type sender struct{ burst }
	net := New(cfg, func(id topology.NodeID) Endpoint { return nil })
	defer net.Close()

	owner := net.NI(0)
	rider := net.NI(2)
	// Drive the owner until its circuit exists.
	for i := 0; i < 12; i++ {
		owner.Send(net.Now(), 5, SendOptions{AllowCS: true, Slack: -1})
		net.Run(4)
	}
	net.RunUntil(func() bool { return owner.Circuits() == 1 }, 3000)
	if owner.Circuits() != 1 {
		t.Fatal("owner circuit not established")
	}
	net.EnableStats()
	// The owner keeps using its circuit (whose flits advertise it in the
	// DLTs of on-path nodes); the rider sends to the same destination and
	// should hitchhike.
	for i := 0; i < 40; i++ {
		owner.Send(net.Now(), 5, SendOptions{AllowCS: true, Slack: 400})
		net.Run(13)
		rider.Send(net.Now(), 5, SendOptions{AllowCS: true, Slack: 400})
		net.Run(17)
	}
	if !net.Drain(20000) {
		t.Fatalf("failed to drain; in flight %d", net.InFlight())
	}
	s := net.Stats()
	if s.Hitchhikes == 0 {
		t.Errorf("no hitchhike rides (contentions=%d)", s.ShareContentions)
	}
	d := net.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 {
		t.Errorf("CS invariants violated: %+v", d)
	}
	_ = sender{}
}

func TestDynamicSlotResize(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	cfg.SetupThreshold = 1
	cfg.MaxCircuits = 16
	cfg.RetrySetups = 8
	net := New(cfg, func(id topology.NodeID) Endpoint {
		// Uniform-random-ish spread: many (src,dst) pairs to overflow the
		// small initial active slot region.
		return &burst{count: 400, allowCS: true, period: 3,
			dstOf: func(src topology.NodeID, m topology.Mesh) (topology.NodeID, bool) {
				d := topology.NodeID((int(src)*7 + 11) % m.Nodes())
				return d, d != src
			}}
	})
	defer net.Close()
	initial := net.ActiveSlots()
	net.Run(20000)
	if net.ActiveSlots() <= initial && net.ResizeEvents() == 0 {
		t.Skip("no resize triggered under this workload (acceptable but unexpected)")
	}
	if net.ActiveSlots() <= initial {
		t.Errorf("resize events %d but active slots did not grow (%d)", net.ResizeEvents(), net.ActiveSlots())
	}
	d := net.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 {
		t.Errorf("resize broke CS invariants: %+v", d)
	}
}

func TestEnergyAccountingBasics(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	net := New(cfg, func(id topology.NodeID) Endpoint {
		return &burst{count: 50, dstOf: reversePattern, period: 4}
	})
	defer net.Close()
	net.EnableStats()
	net.Run(1000)
	e := net.Energy()
	if e.TotalDynamicPJ() <= 0 {
		t.Error("no dynamic energy recorded")
	}
	if e.TotalStaticPJ() <= 0 {
		t.Error("no static energy recorded")
	}
	if e.DynamicPJ[2] < 0 { // crossbar index sanity
		t.Error("negative component energy")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(6, 6)
	bad.HybridSwitching = true // without Router.Hybrid
	func() {
		defer func() {
			if recover() == nil {
				t.Error("HybridSwitching without Router.Hybrid did not panic")
			}
		}()
		New(bad, nil)
	}()
}
