package network

import (
	"fmt"

	"tdmnoc/internal/hybrid"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/power"
)

// AttachProbe installs per-tile observability handles on every router
// and NI, gives the slot-table resizer the recorder's control handle,
// and enables the network's periodic telemetry pass: every sampleEvery
// cycles (0 disables sampling) the network emits per-router VC
// occupancy, slot-table occupancy and cumulative energy gauges plus
// per-NI queue depths, then calls rec.Sync — in that order, so a
// window-closing Sync always sees the gauges of its own boundary cycle.
//
// Parallel executors are fully supported: each tile's handle is bound to
// the shard of the worker that owns the tile (the executor aligns
// partitions to whole tiles), so a worker only ever writes its own
// shard during a cycle and the phase barriers order those writes before
// the between-cycle Sync. The recorder must therefore carry at least
// Workers() shards. Between-cycle emissions (gauges, resizes) go through
// the control handle on the caller goroutine.
func (n *Network) AttachProbe(rec *obs.Recorder, sampleEvery int) {
	if rec == nil {
		panic("network: AttachProbe requires a non-nil recorder")
	}
	if rec.Shards() < n.exec.Workers() {
		panic(fmt.Sprintf("network: recorder has %d shards for %d workers",
			rec.Shards(), n.exec.Workers()))
	}
	// The online controller ranks flows from the recorder at every epoch
	// boundary; a recorder without flow tracking would silently pin
	// nothing, so fail loudly instead.
	if n.cfg.AdaptiveEpoch > 0 && !rec.FlowTracking() {
		panic("network: AdaptiveEpoch requires a recorder with flow tracking")
	}
	n.rec = rec
	n.control = rec.ControlHandle()
	n.probeEvery = int64(sampleEvery)
	for id, r := range n.routers {
		// tileOwner records which worker's partition ticks each tile; the
		// router and NI of a tile share that worker but get separate
		// handles (ring-sampling counters are per-emitter).
		r.SetProbe(rec.Handle(n.tileOwner[id]))
	}
	for id, ni := range n.nis {
		ni.probe = rec.Handle(n.tileOwner[id])
	}
	n.resizer.SetProbe(n.control)
}

// sampleTelemetry emits the periodic gauge events (see AttachProbe).
// It runs between cycles on the caller goroutine via the control handle.
func (n *Network) sampleTelemetry(now int64) {
	n.SyncMeters() // energy gauges must include skipped-cycle leakage
	for id, r := range n.routers {
		if n.control.Wants(obs.KindVCOccupancy) {
			n.control.Emit(obs.Event{Cycle: now, Kind: obs.KindVCOccupancy,
				Node: int32(id), Val: int64(r.BufferedFlits())})
		}
		hybrid.SampleTables(n.control, now, id, r.Tables())
		power.SampleEnergy(n.control, now, id, r.Meter(), n.cfg.Power)
	}
	for id, ni := range n.nis {
		if n.control.Wants(obs.KindQueueDepth) {
			n.control.Emit(obs.Event{Cycle: now, Kind: obs.KindQueueDepth,
				Node: int32(id), Val: int64(ni.QueuedPackets())})
		}
	}
}
