package network

import (
	"tdmnoc/internal/hybrid"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/power"
)

// AttachProbe installs an observability probe on every router, every NI
// and the slot-table resizer, and enables the network's periodic
// telemetry pass: every sampleEvery cycles (0 disables sampling) the
// network emits per-router VC occupancy, slot-table occupancy and
// cumulative energy gauges plus per-NI queue depths, then calls
// p.Sync — in that order, so a window-closing Sync always sees the
// gauges of its own boundary cycle.
//
// Only supported with a serial executor: the probe runs inside router
// and NI ticks, which execute concurrently when Workers > 1. p must be
// a non-nil interface (see the obs package comment on typed nils).
func (n *Network) AttachProbe(p obs.Probe, sampleEvery int) {
	if n.cfg.Workers > 1 {
		panic("network: observability probes require Workers == 1")
	}
	if p == nil {
		panic("network: AttachProbe requires a non-nil probe")
	}
	n.probe = p
	n.probeEvery = int64(sampleEvery)
	for _, r := range n.routers {
		r.SetProbe(p)
	}
	for _, ni := range n.nis {
		ni.probe = p
	}
	n.resizer.SetProbe(p)
}

// sampleTelemetry emits the periodic gauge events (see AttachProbe).
func (n *Network) sampleTelemetry(now int64) {
	n.SyncMeters() // energy gauges must include skipped-cycle leakage
	for id, r := range n.routers {
		n.probe.Emit(obs.Event{Cycle: now, Kind: obs.KindVCOccupancy,
			Node: int32(id), Val: int64(r.BufferedFlits())})
		hybrid.SampleTables(n.probe, now, id, r.Tables())
		power.SampleEnergy(n.probe, now, id, r.Meter(), n.cfg.Power)
	}
	for id, ni := range n.nis {
		n.probe.Emit(obs.Event{Cycle: now, Kind: obs.KindQueueDepth,
			Node: int32(id), Val: int64(ni.QueuedPackets())})
	}
}
