package network

import (
	"tdmnoc/internal/flit"
	"tdmnoc/internal/hybrid"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/router"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/stats"
	"tdmnoc/internal/topology"
)

// Endpoint is the traffic logic attached to one tile: a synthetic
// generator, or a CPU / accelerator / L2 bank / memory controller model.
// Both methods run inside the NI's compute tick, so they may freely call
// ni.Send without any cross-goroutine coordination.
type Endpoint interface {
	// Tick runs once per cycle and may inject traffic via ni.Send.
	Tick(now sim.Cycle, ni *NI)
	// OnDeliver is invoked when a data packet addressed to this tile has
	// fully arrived.
	OnDeliver(now sim.Cycle, ni *NI, pkt *flit.Packet)
}

// QuiescentEndpoint is an optional Endpoint extension for active-node
// scheduling. An endpoint whose Tick is an exact state no-op while idle
// (no RNG draws, no counters, no time-dependent behaviour) may report
// Quiescent()==true, letting the executor skip its NI's ticks until
// traffic re-arms the node. Endpoints that draw randomness or otherwise
// mutate state every cycle must not implement this (or must return
// false), because skipping their ticks would change results. NIs whose
// endpoint does not implement the interface are simply never skipped.
type QuiescentEndpoint interface {
	Quiescent() bool
}

// SendOptions qualifies one message handed to NI.Send.
type SendOptions struct {
	// Class labels the traffic (CPU / GPU / other).
	Class flit.TrafficClass
	// AllowCS permits the circuit-switched path for this message. The
	// heterogeneous evaluation sets it only for GPU traffic (Section V-A2).
	AllowCS bool
	// Slack is the extra latency in cycles, relative to the estimated
	// packet-switched latency, the message can tolerate in exchange for
	// riding a circuit. Negative means "use the network default". For GPU
	// messages the hetero model derives it from available warps.
	Slack int
	// ReplyFlits, if non-zero, asks the receiving endpoint to respond
	// with a packet of that many flits (request/reply protocols).
	ReplyFlits int
	// ReqID correlates a reply with its request.
	ReqID uint64
	// SizeFlits overrides the packet-switched packet length (0 = the
	// network's data packet size). The heterogeneous model uses 1-flit
	// read requests with full-size data replies.
	SizeFlits int
}

// circuit is a source-registered circuit-switched connection.
// circuitBlock is one consecutive-slot reservation of a connection. A
// connection may hold several blocks: each block carries one message per
// slot-table frame, so extra blocks scale a hot connection's bandwidth
// (the time-division granularity knob of Section II-C).
type circuitBlock struct {
	baseSlot int
	pending  int // queued CS packets aligned to this block
}

type circuit struct {
	dst      topology.NodeID
	blocks   []circuitBlock
	dur      int
	epoch    int
	hops     int
	lastUsed sim.Cycle
	// overflow counts messages that wanted this circuit but could not
	// afford the slot wait; persistent overflow requests an extra block.
	overflow int
}

// pendingJobs sums queued packets across blocks.
func (c *circuit) pendingJobs() int {
	n := 0
	for i := range c.blocks {
		n += c.blocks[i].pending
	}
	return n
}

// bestBlock returns the index of the block with the smallest estimated
// wait, along with that wait.
func (c *circuit) bestBlock(ni *NI, now sim.Cycle, active int) (int, int) {
	best, bw := -1, 0
	for i := range c.blocks {
		w := ni.slotWait(now, c.blocks[i].baseSlot, active) + c.blocks[i].pending*active
		if best < 0 || w < bw {
			best, bw = i, w
		}
	}
	return best, bw
}

// blockBySlot finds the block with the given base slot.
func (c *circuit) blockBySlot(slot int) *circuitBlock {
	for i := range c.blocks {
		if c.blocks[i].baseSlot == slot {
			return &c.blocks[i]
		}
	}
	return nil
}

// setupState tracks one in-flight path setup. It is stored by value in
// ni.pending: setups are frequent enough under all-to-all traffic that
// a per-attempt pointer allocation would dominate the steady-state
// allocation profile.
type setupState struct {
	dst      topology.NodeID
	attempts int
	// sentAt is the cycle the latest setup message was queued, so the ack
	// handler can report the round-trip latency to an attached probe.
	sentAt sim.Cycle
}

// setupPending reports whether a path setup toward dst is in flight.
func (ni *NI) setupPending(dst topology.NodeID) bool {
	_, ok := ni.pending[dst]
	return ok
}

// csJob is a circuit-switched packet waiting for its time slot.
type csJob struct {
	pkt        *flit.Packet
	slot       int // head-flit arrival phase at this node's router
	shareIn    topology.Port
	hitchhike  bool
	circuitDst topology.NodeID
}

type rxFlit struct {
	f  *flit.Flit
	at sim.Cycle
}

// NI is the per-tile network interface: it owns injection (including the
// switching decision and slot-aligned circuit-switched streaming),
// ejection and reassembly, the source connection registry, the DLT, and
// the setup/teardown client side of the path configuration protocol.
type NI struct {
	id  topology.NodeID
	net *Network
	r   *router.Router
	rng *sim.RNG
	ep  Endpoint
	// epQ is ep's QuiescentEndpoint view, cached at construction (nil
	// when the endpoint cannot be skipped). canSleep is false when the
	// endpoint must tick every cycle, in which case the NI opts out of
	// scheduling entirely (SchedState returns nil) — paying per-tick
	// scheduling overhead on a node that can never skip buys nothing.
	epQ      QuiescentEndpoint
	canSleep bool

	// node is this NI's scheduling word; rnode is the co-located
	// router's, armed when the NI stages an injection onto the local
	// link during its transfer phase.
	node  sim.NodeState
	rnode *sim.NodeState

	Stats stats.Collector

	// pool recycles packet objects (nil = recycling disabled; all of
	// its methods are nil-safe). See flit.Pool for the ownership rules.
	pool *flit.Pool

	// Packet-switched injection.
	psQ     pktQueue
	cur     []*flit.Flit
	curIdx  int
	curVC   int
	credits []int
	vcBusy  []bool
	staged  *flit.Flit

	// Circuit-switched injection.
	circuits    map[topology.NodeID]*circuit
	circuitList []*circuit
	// circuitFree recycles torn-down circuit records (and their blocks
	// capacity): steady-state idle-teardown/re-setup churn must not
	// allocate, for the same reason the packet pools exist.
	circuitFree []*circuit
	csJobs      []csJob
	csCur       []*flit.Flit
	csIdx       int
	pending     map[topology.NodeID]setupState
	hitchQueued map[topology.NodeID]int // queued hitchhike jobs per circuit destination
	backoff     map[topology.NodeID]sim.Cycle
	freq        map[topology.NodeID]int
	freqResetAt sim.Cycle
	// pins is the circuit-pinning policy state: nil means no policy is
	// active (every flow rides the frequency filter); non-nil means
	// pinned destinations set up eagerly on first send and — when
	// Config.RestrictSetups — everything else never sets up. Installed
	// from Config.PinnedFlows at construction or replaced between
	// cycles by the online controller.
	pins        map[topology.NodeID]bool
	dlt         *hybrid.DLT
	dltAccesses int64
	dltEventBuf []router.DLTEvent

	// Ejection.
	rx      []rxFlit
	rxCount map[uint64]int

	// Manager mailbox: setup outcomes observed this cycle, drained by the
	// network's resize manager between cycles.
	setupResults []bool

	// Conservation counters (not gated by warm-up).
	TotalSent    int64
	TotalEjected int64

	// probe, when non-nil, receives observability events (installed by
	// Network.AttachProbe; bound to the owning worker's shard).
	probe *obs.Handle

	seq uint64
}

// niArena block-allocates the NIs of one executor partition and their
// per-VC injection state (credit counters, VC-busy bitmaps) out of
// contiguous slabs, mirroring router.Arena: one partition's NI values
// live adjacent to each other, and separate per-partition arenas keep
// two workers' hot state off shared cache lines. Map-backed protocol
// state (circuits, pending setups, frequency counters) stays per-NI —
// maps cannot be carved from a slab — but those are touched on setup
// events, not every cycle.
type niArena struct {
	nis     []NI
	credits []int
	vcBusy  []bool
	rings   []*flit.Packet
	vcs     int
	ringCap int
	used    int
}

func newNIArena(count, vcs, ringCap int) *niArena {
	a := &niArena{
		nis:     make([]NI, count),
		credits: make([]int, count*vcs),
		vcBusy:  make([]bool, count*vcs),
		vcs:     vcs,
		ringCap: ringCap,
	}
	if ringCap > 0 {
		a.rings = make([]*flit.Packet, count*ringCap)
	}
	return a
}

// newNI carves the next NI from the arena and initialises it. The
// returned pointer is stable for the arena's lifetime.
func (a *niArena) newNI(id topology.NodeID, net *Network, r *router.Router, rng *sim.RNG, ep Endpoint) *NI {
	ni := &a.nis[a.used]
	off := a.used * a.vcs
	a.used++
	ni.id, ni.net, ni.r, ni.rng, ni.ep = id, net, r, rng, ep
	ni.credits = a.credits[off : off+a.vcs : off+a.vcs]
	ni.vcBusy = a.vcBusy[off : off+a.vcs : off+a.vcs]
	if a.ringCap > 0 {
		// Pre-sized injection ring from the arena slab. The ring indexes
		// modulo len(buf), so the carved slice keeps its full length; if
		// the backlog ever outgrows it, grow() reallocates away from the
		// slab without disturbing the neighbours.
		ro := (a.used - 1) * a.ringCap
		ni.psQ.buf = a.rings[ro : ro+a.ringCap : ro+a.ringCap]
	}
	ni.circuits = make(map[topology.NodeID]*circuit)
	ni.pending = make(map[topology.NodeID]setupState)
	ni.hitchQueued = make(map[topology.NodeID]int)
	ni.backoff = make(map[topology.NodeID]sim.Cycle)
	ni.freq = make(map[topology.NodeID]int)
	ni.rxCount = make(map[uint64]int)
	if net.cfg.PoolMessages {
		ni.pool = flit.NewPool(net.sharedPool, net.mesh.Nodes())
	}
	for v := range ni.credits {
		ni.credits[v] = net.cfg.Router.BufDepth
	}
	if net.cfg.Sharing {
		ni.dlt = hybrid.NewDLT(net.cfg.Router.DLTEntries)
	}
	if len(net.cfg.PinnedFlows) > 0 {
		// Every NI gets a (possibly empty) pin map so RestrictSetups
		// applies uniformly: an empty non-nil map means "policy active,
		// nothing pinned here".
		ni.pins = make(map[topology.NodeID]bool)
		for _, p := range net.cfg.PinnedFlows {
			if topology.NodeID(p.Src) == id {
				ni.pins[topology.NodeID(p.Dst)] = true
			}
		}
	}
	ni.epQ, _ = ep.(QuiescentEndpoint)
	ni.canSleep = ep == nil || ni.epQ != nil
	ni.rnode = r.SchedState()
	r.AttachLocal(ni)
	r.AttachLocalSched(ni.SchedState())
	return ni
}

// SchedState implements sim.ActiveTicker. An NI whose endpoint must tick
// every cycle returns nil, opting out of scheduling: the executor then
// ticks it unconditionally with zero scheduling overhead.
func (ni *NI) SchedState() *sim.NodeState {
	if !ni.canSleep {
		return nil
	}
	return &ni.node
}

// Quiescent implements sim.ActiveTicker: both NI phases are exact state
// no-ops when nothing is staged, queued, streaming or awaiting
// reassembly — and the endpoint itself is skippable. External events
// that end the quiescence arm the node at their source: the router arms
// it when writing the local ejection latch or a DLT event, and Send
// wakes it directly.
func (ni *NI) Quiescent() bool {
	if ni.ep != nil && (ni.epQ == nil || !ni.epQ.Quiescent()) {
		return false
	}
	if ni.staged != nil || ni.cur != nil || ni.csCur != nil {
		return false
	}
	return ni.psQ.len() == 0 && len(ni.csJobs) == 0 &&
		len(ni.rx) == 0 && len(ni.dltEventBuf) == 0
}

// ID returns the tile this NI serves.
func (ni *NI) ID() topology.NodeID { return ni.id }

// Endpoint returns the attached traffic endpoint.
func (ni *NI) Endpoint() Endpoint { return ni.ep }

// RNG exposes the NI's private random stream for its endpoint.
func (ni *NI) RNG() *sim.RNG { return ni.rng }

// Mesh returns the network topology.
func (ni *NI) Mesh() topology.Mesh { return ni.net.mesh }

// Now returns the network's current cycle.
func (ni *NI) Now() sim.Cycle { return ni.net.clock.Now() }

// PSDataFlits is the network's packet-switched data packet length.
func (ni *NI) PSDataFlits() int { return ni.net.cfg.PSDataFlits }

// ReturnCredit implements router.CreditSink; called by the router's
// transfer phase when a local-input flit is drained.
func (ni *NI) ReturnCredit(vc int) { ni.credits[vc]++ }

// QueuedPackets reports the injection backlog (both PS and CS).
func (ni *NI) QueuedPackets() int {
	n := ni.psQ.len() + len(ni.csJobs)
	if ni.cur != nil {
		n++
	}
	if ni.csCur != nil {
		n++
	}
	return n
}

// Circuits returns the number of registered circuits at this source.
func (ni *NI) Circuits() int { return len(ni.circuits) }

// Tick implements sim.Ticker.
func (ni *NI) Tick(now sim.Cycle, phase sim.Phase) {
	if phase == sim.PhaseTransfer {
		if f := ni.r.TakeLocalEject(); f != nil {
			if ni.probe.Wants(obs.KindLinkTraverse) {
				// The ejection link is the router's Local output; counting it
				// here keeps the per-link heatmap's local cells meaningful.
				var cs uint8
				if f.CS {
					cs = 1
				}
				ni.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindLinkTraverse,
					Node: int32(ni.id), A: uint8(topology.Local), B: cs, Pkt: f.Pkt.ID, Seq: int32(f.Seq)})
			}
			ni.rx = append(ni.rx, rxFlit{f: f, at: now})
		}
		if ni.staged != nil {
			ni.r.StageLocalInject(ni.staged)
			ni.staged = nil
			// The router must run next cycle's compute to accept the
			// staged flit; it may be asleep.
			ni.rnode.ArmNext(now, sim.PhaseTransfer)
		}
		if ni.dlt != nil {
			ni.dltEventBuf = ni.r.DrainDLTEvents(ni.dltEventBuf[:0])
		}
		return
	}
	ni.applyDLTEvents(now)
	ni.processRX(now)
	if ni.ep != nil {
		ni.ep.Tick(now, ni)
	}
	ni.chooseStaged(now)
}

func (ni *NI) applyDLTEvents(now sim.Cycle) {
	if ni.dlt == nil {
		return
	}
	for _, e := range ni.dltEventBuf {
		if e.Add {
			ni.dlt.Update(e.Dst, e.Slot, e.Dur, e.In)
			if ni.probe.Wants(obs.KindDLTAdd) {
				ni.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindDLTAdd,
					Node: int32(ni.id), A: uint8(e.In), Slot: int32(e.Slot), Val: int64(e.Dur)})
			}
		} else {
			ni.dlt.Remove(e.Dst)
			if ni.probe.Wants(obs.KindDLTRemove) {
				ni.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindDLTRemove,
					Node: int32(ni.id)})
			}
		}
	}
	ni.dltEventBuf = ni.dltEventBuf[:0]
}

// processRX reassembles received flits into packets and dispatches them.
func (ni *NI) processRX(now sim.Cycle) {
	for _, rf := range ni.rx {
		pkt := rf.f.Pkt
		cnt := ni.rxCount[pkt.ID] + 1
		if cnt < pkt.Flits {
			ni.rxCount[pkt.ID] = cnt
			continue
		}
		delete(ni.rxCount, pkt.ID)
		// Tail consumption is the only point where a packet is provably
		// unreachable by the rest of the simulation, and therefore the
		// only safe recycle point: the source stream finished before the
		// tail could arrive, every earlier flit of the packet was ejected
		// before it (in-order, single path), and the rx bookkeeping for
		// it was just cleared. Hop-off packets are not dead yet — they
		// re-enter the injection queue below.
		switch pkt.Kind {
		case flit.DataPacket:
			if pkt.HopOff && pkt.HopOffDst != ni.id {
				ni.reinjectHopOff(pkt)
				continue
			}
			pkt.EjectedAt = int64(rf.at)
			ni.TotalEjected++
			if ni.probe.Wants(obs.KindEject) {
				ni.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindEject,
					Node: int32(ni.id), Pkt: pkt.ID, Val: pkt.EjectedAt - pkt.InjectedAt})
			}
			ni.Stats.RecordEjection(pkt)
			if ni.ep != nil {
				ni.ep.OnDeliver(now, ni, pkt)
			}
			ni.pool.Put(pkt)
		case flit.AckMsg:
			ni.Stats.ConfigEjected++
			ni.handleAck(now, pkt)
			ni.pool.Put(pkt)
		default: // teardown (or a stray setup) consumed here
			ni.Stats.ConfigEjected++
			ni.pool.Put(pkt)
		}
	}
	ni.rx = ni.rx[:0]
}

// reinjectHopOff continues a vicinity-shared packet from the circuit's
// endpoint to its true destination through the packet-switched network
// (Section III-A2).
func (ni *NI) reinjectHopOff(pkt *flit.Packet) {
	// Src is deliberately preserved: replies and statistics must still
	// refer to the original sender, not the hop-off tile.
	pkt.Kind = flit.DataPacket
	pkt.Dst = pkt.HopOffDst
	pkt.HopOff = false
	pkt.Switching = flit.PacketSwitched
	pkt.Flits = pkt.PSFlits
	ni.psQ.pushBack(pkt)
}

// handleAck processes a setup acknowledgement (Section II-B).
func (ni *NI) handleAck(now sim.Cycle, pkt *flit.Packet) {
	cfg := &ni.net.cfg
	dst := pkt.Config.CircuitDst
	if ni.probe.Wants(obs.KindSetupLatency) {
		// One ack = one observed setup round trip. Measured against the
		// pending record (if the setup is still wanted) so retries each
		// report their own latency.
		if st, ok := ni.pending[dst]; ok {
			var okb uint8
			if pkt.Config.OK {
				okb = 1
			}
			// Slot carries the circuit destination so flow tracking can
			// attribute the round trip (Event must not grow a Dst field).
			ni.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindSetupLatency,
				Node: int32(ni.id), B: okb, Pkt: pkt.ID, Val: int64(now - st.sentAt),
				Slot: int32(dst)})
		}
	}
	stale := pkt.Config.Epoch != ni.net.epoch
	if stale {
		// Reservations from an older sizing epoch are (or will be) wiped
		// by the network-wide reset; sending a teardown here could
		// release slots a new-epoch circuit now owns.
		delete(ni.pending, dst)
		return
	}
	if pkt.Config.OK {
		if existing := ni.circuits[dst]; existing != nil {
			// An additional slot block for an oversubscribed connection.
			if !ni.setupPending(dst) || len(existing.blocks) >= cfg.MaxBlocksPerCircuit {
				ni.sendTeardown(dst, pkt.Config.BaseSlot, pkt.Config.Duration, pkt.Config.Epoch)
				delete(ni.pending, dst)
				return
			}
			delete(ni.pending, dst)
			existing.blocks = append(existing.blocks, circuitBlock{baseSlot: pkt.Config.BaseSlot})
			ni.Stats.SetupsOK++
			ni.setupResults = append(ni.setupResults, true)
			return
		}
		if !ni.setupPending(dst) || len(ni.circuits) >= cfg.MaxCircuits {
			// Unwanted reservation: release the whole path.
			ni.sendTeardown(dst, pkt.Config.BaseSlot, pkt.Config.Duration, pkt.Config.Epoch)
			delete(ni.pending, dst)
			return
		}
		delete(ni.pending, dst)
		c := ni.newCircuit()
		c.dst = dst
		c.blocks = append(c.blocks, circuitBlock{baseSlot: pkt.Config.BaseSlot})
		c.dur = pkt.Config.Duration
		c.epoch = pkt.Config.Epoch
		c.hops = ni.net.mesh.HopDistance(ni.id, dst)
		c.lastUsed = now
		ni.circuits[dst] = c
		ni.circuitList = append(ni.circuitList, c)
		ni.Stats.SetupsOK++
		ni.Stats.CircuitsRegistered++
		ni.setupResults = append(ni.setupResults, true)
		return
	}
	// Failure: release the reserved prefix, then maybe retry with a
	// different slot id.
	ni.Stats.SetupsFailed++
	ni.setupResults = append(ni.setupResults, false)
	if pkt.Config.FailHop > 0 {
		ni.sendTeardownLimited(dst, pkt.Config.BaseSlot, pkt.Config.Duration, pkt.Config.Epoch, pkt.Config.FailHop)
	}
	st, ok := ni.pending[dst]
	if !ok {
		return
	}
	st.attempts++
	if !ni.net.csFrozen && st.attempts < cfg.RetrySetups {
		ni.pending[dst] = st
		ni.sendSetup(now, dst)
		return
	}
	// Give up for a while: without a backoff the frequency counter would
	// immediately re-trigger the setup and configuration traffic would
	// swamp the network (the paper keeps it below 1 % of flits).
	ni.backoff[dst] = now + 4*sim.Cycle(cfg.FreqWindow)
	delete(ni.pending, dst)
}

// Send queues one message for transmission, making the paper's switching
// decision: ride an own circuit, hitchhike a passing circuit, hop off near
// the destination via vicinity sharing, or fall back to packet switching.
func (ni *NI) Send(now sim.Cycle, dst topology.NodeID, opt SendOptions) *flit.Packet {
	// Send may be called from outside the tick loop (tests and protocol
	// drivers inject between Run calls); a sleeping NI must wake to
	// carry the message. Calls from the NI's own endpoint tick are
	// covered too: the wake is monotone and the post-tick quiescence
	// probe re-checks the queues it fills.
	if ni.canSleep {
		ni.node.Wake(ni.net.clock.Now())
	}
	cfg := &ni.net.cfg
	size := cfg.PSDataFlits
	if opt.SizeFlits > 0 {
		size = opt.SizeFlits
	}
	if dst == ni.id {
		// Loopback: deliver immediately without touching the network.
		// Deliberately not pool-allocated — the caller keeps the returned
		// pointer to annotate it (e.g. SlackHint), so the packet must not
		// be handed out again by a reentrant Send from OnDeliver.
		pkt := &flit.Packet{
			ID: ni.nextID(), Kind: flit.DataPacket, Src: ni.id, Dst: dst,
			Class: opt.Class, Switching: flit.PacketSwitched,
			Flits: size, PSFlits: size,
			CreatedAt: int64(now), InjectedAt: int64(now), EjectedAt: int64(now),
			ReplyFlits: opt.ReplyFlits, ReqID: opt.ReqID,
		}
		if ni.ep != nil {
			ni.ep.OnDeliver(now, ni, pkt)
		}
		return pkt
	}
	pkt := ni.pool.Get()
	pkt.ID = ni.nextID()
	pkt.Kind = flit.DataPacket
	pkt.Src = ni.id
	pkt.Dst = dst
	pkt.Class = opt.Class
	pkt.Switching = flit.PacketSwitched
	pkt.Flits = size
	pkt.PSFlits = size
	pkt.CreatedAt = int64(now)
	pkt.ReplyFlits = opt.ReplyFlits
	pkt.ReqID = opt.ReqID
	ni.TotalSent++
	if job, ok := ni.decide(now, pkt, opt); ok {
		ni.csJobs = append(ni.csJobs, job)
	} else {
		ni.psQ.pushBack(pkt)
	}
	if opt.AllowCS {
		ni.noteFrequency(now, dst)
	}
	return pkt
}

// decide implements Sections II-A and V-A2: a message rides the
// circuit-switched path only when the estimated circuit latency (slot
// wait + two cycles per hop) does not exceed the estimated
// packet-switched latency plus the message's slack.
func (ni *NI) decide(now sim.Cycle, pkt *flit.Packet, opt SendOptions) (csJob, bool) {
	cfg := &ni.net.cfg
	if !cfg.HybridSwitching || !opt.AllowCS || ni.net.csFrozen {
		return csJob{}, false
	}
	slack := opt.Slack
	if slack < 0 {
		slack = cfg.DefaultSlack
	}
	A := ni.net.ActiveSlots()
	hops := ni.net.mesh.HopDistance(ni.id, pkt.Dst)
	// The packet-switched estimate deliberately ignores the local queue
	// depth: at saturation a growing backlog would otherwise talk every
	// message into waiting for scarce circuit slots, collapsing accepted
	// throughput to the circuits' aggregate slot bandwidth.
	psLat := 5*(hops+1) + pkt.PSFlits - 1
	// Section V-A2: deliver circuit-switched when the message's slack
	// covers the whole circuit-switched latency; messages with little
	// slack still ride when the circuit is simply faster than packet
	// switching.
	budget := max(psLat, slack)

	csSize := min(cfg.CSDataFlits, pkt.PSFlits)

	// 1. Own circuit, exact destination: pick the soonest-aligning block.
	if c := ni.circuits[pkt.Dst]; c != nil {
		bi, wait := c.bestBlock(ni, now, A)
		if bi >= 0 && wait+2*(hops+1)+csSize-1 <= budget {
			pkt.Switching = flit.CircuitSwitched
			pkt.Flits = csSize
			c.blocks[bi].pending++
			c.lastUsed = now
			ni.Stats.OwnCircuitSends++
			return csJob{pkt: pkt, slot: c.blocks[bi].baseSlot, circuitDst: c.dst}, true
		}
		// The connection exists but cannot carry this message in time:
		// persistent overflow asks for another slot block.
		c.overflow++
		if c.overflow >= cfg.OverflowForExtraBlock && len(c.blocks) < cfg.MaxBlocksPerCircuit {
			c.overflow = 0
			ni.requestExtraBlock(now, pkt.Dst)
		}
		return csJob{}, false
	}
	if !cfg.Sharing || ni.dlt == nil {
		return csJob{}, false
	}
	// Sharing rides detour through hop-off re-injection and composite
	// queueing that the estimates below cannot see, so they are only
	// taken when they beat the packet-switched path outright rather than
	// on slack subsidy (the paper reports sharing has negligible
	// performance impact precisely because contention falls back to
	// packet switching).
	shareBudget := psLat
	// 2. Hitchhike a circuit passing through this node toward the same
	// destination.
	if e, ok := ni.dlt.Find(pkt.Dst); ok {
		ni.dltAccesses++
		// Hitchhikers of one circuit share its frame slot: queued jobs
		// ahead of this one each consume a whole frame.
		wait := ni.slotWait(now, e.Slot, A) + ni.hitchQueued[e.Dest]*A
		if wait+2*(hops+1)+csSize-1 <= budget {
			pkt.Switching = flit.CircuitSwitched
			pkt.Flits = csSize
			ni.hitchQueued[e.Dest]++
			return csJob{pkt: pkt, slot: e.Slot, shareIn: e.In, hitchhike: true, circuitDst: e.Dest}, true
		}
		return csJob{}, false
	}
	// 3. Vicinity: an own circuit ending next to the destination.
	for _, c := range ni.circuitList {
		if c == nil || !ni.net.mesh.Adjacent(c.dst, pkt.Dst) {
			continue
		}
		bi, wait := c.bestBlock(ni, now, A)
		if bi < 0 {
			continue
		}
		// Ride to c.dst (header flit included), then one PS hop.
		csLat := wait + 2*(c.hops+1) + csSize + 5*2 + pkt.PSFlits - 1
		if csLat <= shareBudget {
			pkt.Switching = flit.CircuitSwitched
			pkt.Flits = csSize + 1 // vicinity header flit
			pkt.HopOff = true
			pkt.HopOffDst = pkt.Dst
			pkt.Dst = c.dst
			c.blocks[bi].pending++
			c.lastUsed = now
			ni.Stats.VicinityRides++
			return csJob{pkt: pkt, slot: c.blocks[bi].baseSlot, circuitDst: c.dst}, true
		}
	}
	// 4. Hitchhike + vicinity: a passing circuit ending next to the
	// destination.
	if e, ok := ni.dlt.FindAdjacent(ni.net.mesh, pkt.Dst); ok {
		ni.dltAccesses++
		eHops := ni.net.mesh.HopDistance(ni.id, e.Dest)
		wait := ni.slotWait(now, e.Slot, A) + ni.hitchQueued[e.Dest]*A
		csLat := wait + 2*(eHops+1) + csSize + 5*2 + pkt.PSFlits - 1
		if csLat <= shareBudget && e.Dur >= csSize+1 {
			pkt.Switching = flit.CircuitSwitched
			pkt.Flits = csSize + 1
			pkt.HopOff = true
			pkt.HopOffDst = pkt.Dst
			pkt.Dst = e.Dest
			ni.Stats.VicinityRides++
			ni.hitchQueued[e.Dest]++
			return csJob{pkt: pkt, slot: e.Slot, shareIn: e.In, hitchhike: true, circuitDst: e.Dest}, true
		}
	}
	return csJob{}, false
}

// slotWait is the number of cycles until a head flit injected now can
// arrive at the router aligned with slot.
func (ni *NI) slotWait(now sim.Cycle, slot, active int) int {
	phase := int(int64(now+1) % int64(active))
	return (slot - phase + active) % active
}

// noteFrequency counts messages per destination inside a sliding window
// and triggers a path setup for frequently used pairs (Section II-A: "a
// circuit-switched path is only reserved for source-destination pairs
// that communicate frequently").
func (ni *NI) noteFrequency(now sim.Cycle, dst topology.NodeID) {
	cfg := &ni.net.cfg
	if ni.pins != nil {
		// Circuit pinning overrides the frequency filter: pinned flows
		// set up on first use (the profile already proved them
		// persistent), and under RestrictSetups nothing else may claim
		// slot-table space.
		if ni.pins[dst] {
			ni.maybeSetup(now, dst)
			return
		}
		if cfg.RestrictSetups {
			return
		}
	}
	if now >= ni.freqResetAt {
		clear(ni.freq)
		ni.freqResetAt = now + sim.Cycle(cfg.FreqWindow)
	}
	ni.freq[dst]++
	if ni.freq[dst] < cfg.SetupThreshold {
		return
	}
	ni.maybeSetup(now, dst)
}

// maybeSetup starts a path setup toward dst if none exists, tearing down
// an idle circuit first when the registry is full.
func (ni *NI) maybeSetup(now sim.Cycle, dst topology.NodeID) {
	cfg := &ni.net.cfg
	if !cfg.HybridSwitching || ni.net.csFrozen {
		return
	}
	if ni.circuits[dst] != nil || ni.setupPending(dst) {
		return
	}
	if until, ok := ni.backoff[dst]; ok {
		if now < until {
			return
		}
		delete(ni.backoff, dst)
	}
	if len(ni.circuits) >= cfg.MaxCircuits {
		if !ni.teardownIdlest(now) {
			ni.backoff[dst] = now + sim.Cycle(cfg.FreqWindow)
			return
		}
	}
	ni.pending[dst] = setupState{dst: dst}
	ni.sendSetup(now, dst)
}

// teardownIdlest destroys the least recently used idle circuit, returning
// false when every circuit is busy or too recently used.
func (ni *NI) teardownIdlest(now sim.Cycle) bool {
	cfg := &ni.net.cfg
	var victim *circuit
	vi := -1
	for i, c := range ni.circuitList {
		if c == nil || c.pendingJobs() > 0 {
			continue
		}
		if int64(now)-int64(c.lastUsed) < cfg.IdleTeardown {
			continue
		}
		if victim == nil || c.lastUsed < victim.lastUsed {
			victim, vi = c, i
		}
	}
	if victim == nil {
		return false
	}
	ni.removeCircuit(vi)
	for _, b := range victim.blocks {
		ni.sendTeardown(victim.dst, b.baseSlot, victim.dur, victim.epoch)
	}
	ni.circuitFree = append(ni.circuitFree, victim)
	ni.Stats.CircuitsTorndown++
	return true
}

// requestExtraBlock starts a setup for an additional slot block of an
// existing connection.
func (ni *NI) requestExtraBlock(now sim.Cycle, dst topology.NodeID) {
	cfg := &ni.net.cfg
	if !cfg.HybridSwitching || ni.net.csFrozen || ni.setupPending(dst) {
		return
	}
	if until, ok := ni.backoff[dst]; ok && now < until {
		return
	}
	ni.pending[dst] = setupState{dst: dst}
	ni.sendSetup(now, dst)
}

func (ni *NI) removeCircuit(listIdx int) {
	c := ni.circuitList[listIdx]
	delete(ni.circuits, c.dst)
	ni.circuitList = append(ni.circuitList[:listIdx], ni.circuitList[listIdx+1:]...)
}

// newCircuit returns a reset circuit record, recycled from circuitFree
// when possible so the record and its blocks backing array are reused.
func (ni *NI) newCircuit() *circuit {
	if n := len(ni.circuitFree); n > 0 {
		c := ni.circuitFree[n-1]
		ni.circuitFree[n-1] = nil
		ni.circuitFree = ni.circuitFree[:n-1]
		*c = circuit{blocks: c.blocks[:0]}
		return c
	}
	// Full blocks capacity up front: handleAck never grows past
	// MaxBlocksPerCircuit, so the record's appends stay growth-free for
	// the rest of its (recycled) life.
	return &circuit{blocks: make([]circuitBlock, 0, ni.net.cfg.MaxBlocksPerCircuit)}
}

// sendSetup emits a setup message toward dst with a fresh random slot id.
func (ni *NI) sendSetup(now sim.Cycle, dst topology.NodeID) {
	cfg := &ni.net.cfg
	if st, ok := ni.pending[dst]; ok {
		st.sentAt = now
		ni.pending[dst] = st
	}
	A := ni.net.ActiveSlots()
	slot := ni.rng.Intn(A)
	pkt := ni.pool.Get()
	pkt.ID = ni.nextID()
	pkt.Kind = flit.SetupMsg
	pkt.Src = ni.id
	pkt.Dst = dst
	pkt.Class = flit.ClassConfig
	pkt.Flits = 1
	pkt.Config = flit.ConfigPayload{
		Slot: slot, BaseSlot: slot,
		Duration: cfg.ReserveDuration(),
		Epoch:    ni.net.epoch,
	}
	// Configuration messages jump the data queue.
	ni.psQ.pushFront(pkt)
	ni.Stats.SetupsSent++
	ni.Stats.ConfigFlitsSent++
}

// sendTeardown emits a teardown that walks the reserved path from this
// node's router, releasing every slot it finds (Section II-B).
func (ni *NI) sendTeardown(dst topology.NodeID, baseSlot, dur, epoch int) {
	ni.sendTeardownLimited(dst, baseSlot, dur, epoch, 0)
}

// sendTeardownLimited bounds the walk to limit routers — used to clean the
// reserved prefix of a failed setup without touching the slots that made
// it fail (which belong to other circuits).
func (ni *NI) sendTeardownLimited(dst topology.NodeID, baseSlot, dur, epoch, limit int) {
	pkt := ni.pool.Get()
	pkt.ID = ni.nextID()
	pkt.Kind = flit.TeardownMsg
	pkt.Src = ni.id
	pkt.Dst = dst
	pkt.Class = flit.ClassConfig
	pkt.Flits = 1
	pkt.Config = flit.ConfigPayload{
		Slot: baseSlot, BaseSlot: baseSlot, Duration: dur, Epoch: epoch,
		FailHop: limit,
	}
	ni.psQ.pushFront(pkt)
	ni.Stats.TeardownsSent++
	ni.Stats.ConfigFlitsSent++
}

// chooseStaged picks the flit to put on the local link this cycle:
// circuit-switched streams are slot-aligned and take priority; otherwise
// the packet-switched stream continues or a new packet starts.
func (ni *NI) chooseStaged(now sim.Cycle) {
	// 1. Continue an in-progress circuit-switched stream (consecutive
	// slots, no credits needed).
	if ni.csCur != nil {
		ni.stageCS(now)
		return
	}
	// 2. Start a circuit-switched job whose slot aligns at arrival.
	if ni.net.cfg.HybridSwitching && len(ni.csJobs) > 0 {
		if ni.tryStartCS(now) {
			return
		}
	}
	// 3. Continue the packet-switched stream.
	if ni.cur != nil {
		ni.stagePS(now)
		return
	}
	// 4. Start a new packet-switched packet.
	ni.tryStartPS(now)
}

// tryStartCS scans pending CS jobs for one whose head flit would arrive
// exactly at its reserved slot and starts streaming it. Hitchhikers check
// the advance signal for owner contention and fall back to packet
// switching when the slot is taken (Section III-A1).
func (ni *NI) tryStartCS(now sim.Cycle) bool {
	if ni.net.csFrozen {
		// A slot-table reset is pending; new streams launched now could
		// still be in flight when the tables are wiped. Jobs wait here
		// and are flushed to packet switching at the reset.
		return false
	}
	A := ni.net.ActiveSlots()
	arrivalPhase := int(int64(now+1) % int64(A))
	for i := range ni.csJobs {
		job := ni.csJobs[i]
		if job.slot != arrivalPhase {
			continue
		}
		if !ni.validateJob(&job) {
			ni.removeJob(i)
			ni.fallbackToPS(&job)
			return false
		}
		if job.hitchhike && ni.r.IncomingCS(job.shareIn) {
			// The circuit owner is using this slot: sharing contention.
			ni.Stats.ShareContentions++
			ni.removeJob(i)
			if ni.dlt.RecordFailure(job.circuitDst) {
				// 2-bit counter saturated: request a dedicated circuit.
				target := job.pkt.Dst
				if job.pkt.HopOff {
					target = job.pkt.HopOffDst
				}
				ni.maybeSetup(now, target)
			}
			ni.fallbackToPS(&job)
			return false
		}
		// Stream it.
		ni.removeJob(i)
		if !job.hitchhike {
			if c := ni.circuits[job.circuitDst]; c != nil {
				if b := c.blockBySlot(job.slot); b != nil && b.pending > 0 {
					b.pending--
				}
				c.lastUsed = now
			}
		} else {
			ni.Stats.Hitchhikes++
			ni.dlt.RecordSuccess(job.circuitDst)
			ni.decHitchQueued(job.circuitDst)
		}
		fls := job.pkt.ExplodeInto()
		if job.hitchhike {
			for _, f := range fls {
				f.Hitchhike = true
				f.ShareIn = job.shareIn
			}
		}
		ni.csCur = fls
		ni.csIdx = 0
		ni.stageCS(now)
		return true
	}
	return false
}

func (ni *NI) stageCS(now sim.Cycle) {
	f := ni.csCur[ni.csIdx]
	if ni.csIdx == 0 {
		pkt := f.Pkt
		if pkt.InjectedAt == 0 {
			pkt.InjectedAt = int64(now + 1)
			ni.Stats.RecordInjection(pkt)
			if ni.probe.Wants(obs.KindInject) {
				// Slot carries the flow's true destination — the hop-off
				// endpoint for vicinity-shared packets, not the circuit's.
				dst := pkt.Dst
				if pkt.HopOff {
					dst = pkt.HopOffDst
				}
				ni.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindInject,
					Node: int32(ni.id), B: 1, Pkt: pkt.ID, Val: int64(pkt.Flits),
					Slot: int32(dst)})
			}
		}
	}
	ni.staged = f
	ni.csIdx++
	if ni.csIdx >= len(ni.csCur) {
		ni.csCur = nil
	}
}

// validateJob re-checks that the circuit or DLT entry a job was planned
// against still exists with the same slot (it may have been torn down or
// evicted while the job waited).
func (ni *NI) validateJob(job *csJob) bool {
	if job.hitchhike {
		e, ok := ni.dlt.Find(job.circuitDst)
		return ok && e.Slot == job.slot && e.In == job.shareIn
	}
	c := ni.circuits[job.circuitDst]
	return c != nil && c.blockBySlot(job.slot) != nil
}

// fallbackToPS converts a failed CS job back into an ordinary
// packet-switched packet.
func (ni *NI) fallbackToPS(job *csJob) {
	pkt := job.pkt
	if job.hitchhike {
		ni.decHitchQueued(job.circuitDst)
	} else if c := ni.circuits[job.circuitDst]; c != nil {
		if b := c.blockBySlot(job.slot); b != nil && b.pending > 0 {
			b.pending--
		}
	}
	if pkt.HopOff {
		pkt.Dst = pkt.HopOffDst
		pkt.HopOff = false
	}
	pkt.Switching = flit.PacketSwitched
	pkt.Flits = pkt.PSFlits
	ni.psQ.pushBack(pkt)
}

func (ni *NI) decHitchQueued(dst topology.NodeID) {
	if ni.hitchQueued[dst] > 0 {
		ni.hitchQueued[dst]--
	}
}

func (ni *NI) removeJob(i int) {
	copy(ni.csJobs[i:], ni.csJobs[i+1:])
	ni.csJobs[len(ni.csJobs)-1] = csJob{}
	ni.csJobs = ni.csJobs[:len(ni.csJobs)-1]
}

func (ni *NI) stagePS(now sim.Cycle) {
	if ni.credits[ni.curVC] <= 0 {
		return // wait for credits
	}
	f := ni.cur[ni.curIdx]
	ni.credits[ni.curVC]--
	ni.staged = f
	ni.curIdx++
	if f.IsTail() {
		ni.vcBusy[ni.curVC] = false
		ni.cur = nil
	}
}

func (ni *NI) tryStartPS(now sim.Cycle) {
	if ni.psQ.len() == 0 {
		return
	}
	limit := ni.r.LocalVCLimit()
	best, bestCred := -1, 0
	for v := 0; v < limit; v++ {
		if !ni.vcBusy[v] && ni.credits[v] > bestCred {
			best, bestCred = v, ni.credits[v]
		}
	}
	if best < 0 {
		return
	}
	pkt := ni.psQ.popFront()
	fls := pkt.ExplodeInto()
	for _, f := range fls {
		f.VC = best
	}
	ni.cur = fls
	ni.curIdx = 0
	ni.curVC = best
	ni.vcBusy[best] = true
	if pkt.InjectedAt == 0 {
		pkt.InjectedAt = int64(now + 1)
		if pkt.Kind == flit.DataPacket {
			ni.Stats.RecordInjection(pkt)
			if ni.probe.Wants(obs.KindInject) {
				ni.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindInject,
					Node: int32(ni.id), Pkt: pkt.ID, Val: int64(pkt.Flits),
					Slot: int32(pkt.Dst)})
			}
		}
	}
	ni.stagePS(now)
}

// onResize flushes all circuit-switched state after a network-wide
// slot-table reset: queued CS jobs become packet-switched, circuits and
// pending setups are dropped. Called by the resize manager between
// cycles, after the drain window has let in-flight CS flits land.
func (ni *NI) onResize() {
	for i := range ni.csJobs {
		pkt := ni.csJobs[i].pkt
		if pkt.HopOff {
			pkt.Dst = pkt.HopOffDst
			pkt.HopOff = false
		}
		pkt.Switching = flit.PacketSwitched
		pkt.Flits = pkt.PSFlits
		ni.psQ.pushBack(pkt)
	}
	clear(ni.csJobs)
	ni.csJobs = ni.csJobs[:0]
	clear(ni.circuits)
	for _, c := range ni.circuitList {
		if c != nil {
			ni.circuitFree = append(ni.circuitFree, c)
		}
	}
	ni.circuitList = ni.circuitList[:0]
	clear(ni.pending)
	clear(ni.hitchQueued)
	clear(ni.backoff)
	if ni.dlt != nil {
		ni.dlt.Reset()
	}
}

func (ni *NI) nextID() uint64 {
	ni.seq++
	return uint64(ni.id)<<40 | ni.seq
}
