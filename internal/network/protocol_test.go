package network

import (
	"testing"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// driver is a programmable endpoint: the test scripts sends and observes
// deliveries.
type driver struct {
	delivered []*flit.Packet
}

func (d *driver) Tick(now sim.Cycle, ni *NI) {}
func (d *driver) OnDeliver(now sim.Cycle, ni *NI, pkt *flit.Packet) {
	d.delivered = append(d.delivered, pkt)
}

func driverNet(t *testing.T, cfg Config) (*Network, map[topology.NodeID]*driver) {
	t.Helper()
	drivers := map[topology.NodeID]*driver{}
	net := New(cfg, func(id topology.NodeID) Endpoint {
		d := &driver{}
		drivers[id] = d
		return d
	})
	return net, drivers
}

// establishCircuit drives sends from src to dst until a circuit exists.
func establishCircuit(t *testing.T, net *Network, src, dst topology.NodeID) {
	t.Helper()
	ni := net.NI(src)
	for i := 0; i < 20 && ni.circuits[dst] == nil; i++ {
		ni.Send(net.Now(), dst, SendOptions{AllowCS: true, Slack: -1})
		net.Run(50)
	}
	net.RunUntil(func() bool { return ni.circuits[dst] != nil }, 3000)
	if ni.circuits[dst] == nil {
		t.Fatal("circuit did not establish")
	}
}

func TestVicinityHopOffEndToEnd(t *testing.T) {
	cfg := HybridTDMConfig(6, 6).WithSharing()
	cfg.SetupThreshold = 2
	net, drivers := driverNet(t, cfg)
	defer net.Close()

	src := topology.NodeID(0)
	circuitDst := topology.NodeID(35) // (5,5)
	vicinity := topology.NodeID(34)   // (4,5), adjacent
	establishCircuit(t, net, src, circuitDst)

	ni := net.NI(src)
	// Send to the adjacent node with generous slack: should take the
	// circuit and hop off.
	var sent []*flit.Packet
	for i := 0; i < 30; i++ {
		p := ni.Send(net.Now(), vicinity, SendOptions{AllowCS: true, Slack: 500})
		sent = append(sent, p)
		net.Run(40)
	}
	if !net.Drain(20000) {
		t.Fatalf("drain failed, in flight %d", net.InFlight())
	}
	st := net.Stats()
	if st.VicinityRides == 0 {
		t.Fatal("no vicinity rides occurred")
	}
	// Every packet must arrive at the true destination with Src intact.
	got := drivers[vicinity].delivered
	if len(got) != len(sent) {
		t.Fatalf("delivered %d of %d packets", len(got), len(sent))
	}
	for _, p := range got {
		if p.Src != src {
			t.Fatalf("delivered packet has Src %d, want %d (hop-off must preserve Src)", p.Src, src)
		}
		if p.HopOff {
			t.Fatal("delivered packet still flagged HopOff")
		}
	}
	d := net.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 {
		t.Fatalf("CS invariants: %+v", d)
	}
}

func TestMultiBlockCircuitScalesBandwidth(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	cfg.OverflowForExtraBlock = 2
	net, _ := driverNet(t, cfg)
	defer net.Close()

	src, dst := topology.NodeID(0), topology.NodeID(35)
	establishCircuit(t, net, src, dst)
	ni := net.NI(src)
	if len(ni.circuits[dst].blocks) != 1 {
		t.Fatalf("fresh circuit has %d blocks", len(ni.circuits[dst].blocks))
	}
	// Saturate the single block: sends denser than one packet per frame.
	for i := 0; i < 400; i++ {
		ni.Send(net.Now(), dst, SendOptions{AllowCS: true, Slack: 40})
		net.Run(3)
	}
	net.RunUntil(func() bool { return len(ni.circuits[dst].blocks) > 1 }, 8000)
	if got := len(ni.circuits[dst].blocks); got < 2 {
		t.Fatalf("overflowing circuit still has %d block(s)", got)
	}
	if !net.Drain(30000) {
		t.Fatalf("drain failed, in flight %d", net.InFlight())
	}
	d := net.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 {
		t.Fatalf("CS invariants: %+v", d)
	}
}

func TestSetupBackoffLimitsConfigTraffic(t *testing.T) {
	// A source that cannot ever establish a circuit (tables full via an
	// artificially tiny occupancy cap) must stop hammering setups.
	cfg := HybridTDMConfig(6, 6)
	cfg.RetrySetups = 2
	net, _ := driverNet(t, cfg)
	defer net.Close()
	// Fill node 0's local table so every setup fails at hop 0.
	tbl := net.Router(0).Tables()
	tbl.ReserveCap = 0.01
	ni := net.NI(0)
	for i := 0; i < 100; i++ {
		ni.Send(net.Now(), 35, SendOptions{AllowCS: true, Slack: -1})
		net.Run(20)
	}
	net.Drain(10000)
	st := net.Stats()
	if st.SetupsOK != 0 {
		t.Fatalf("setups succeeded despite cap: %d", st.SetupsOK)
	}
	// Without backoff this would be ~100/SetupThreshold * retries; with
	// backoff it must stay small.
	if st.SetupsSent > 12 {
		t.Fatalf("%d setups sent; backoff not effective", st.SetupsSent)
	}
}

func TestCPUClassNeverCircuitSwitched(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	net, _ := driverNet(t, cfg)
	defer net.Close()
	net.EnableStats()
	ni := net.NI(0)
	for i := 0; i < 200; i++ {
		ni.Send(net.Now(), 35, SendOptions{Class: flit.ClassCPU, AllowCS: false})
		net.Run(10)
	}
	net.Drain(20000)
	st := net.Stats()
	if st.ClassCSFlits[int(flit.ClassCPU)] != 0 {
		t.Fatal("CPU-class flits were circuit-switched")
	}
	if st.SetupsSent != 0 {
		t.Fatal("CPU traffic triggered circuit setups")
	}
}

func TestSlackGovernsDecision(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	net, _ := driverNet(t, cfg)
	defer net.Close()
	src, dst := topology.NodeID(0), topology.NodeID(35)
	establishCircuit(t, net, src, dst)
	ni := net.NI(src)
	net.EnableStats()

	// Zero slack: only rides whose latency beats packet switching count;
	// a huge slack rides almost always.
	for i := 0; i < 60; i++ {
		ni.Send(net.Now(), dst, SendOptions{AllowCS: true, Slack: 100000})
		net.Run(30)
	}
	net.Drain(20000)
	st := net.Stats()
	if st.OwnCircuitSends < 50 {
		t.Fatalf("with unlimited slack only %d of 60 rode the circuit", st.OwnCircuitSends)
	}
}

func TestTotalLatencyIncludesSlotWait(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	net, drivers := driverNet(t, cfg)
	defer net.Close()
	src, dst := topology.NodeID(0), topology.NodeID(35)
	establishCircuit(t, net, src, dst)
	ni := net.NI(src)
	net.EnableStats()
	ni.Send(net.Now(), dst, SendOptions{AllowCS: true, Slack: 100000})
	net.Drain(5000)
	got := drivers[dst].delivered
	if len(got) == 0 {
		t.Fatal("nothing delivered")
	}
	p := got[len(got)-1]
	if p.Switching != flit.CircuitSwitched {
		t.Skip("packet went packet-switched; nothing to check")
	}
	if p.TotalLatency() < p.NetworkLatency() {
		t.Fatalf("total latency %d below network latency %d", p.TotalLatency(), p.NetworkLatency())
	}
}

func TestNoPSStarvationUnderHeavyReservation(t *testing.T) {
	// The anti-starvation pair: the 90 % reservation cap plus time-slot
	// stealing must keep packet-switched tail latency bounded even when
	// circuits occupy most slots. Drive heavy CS traffic and a trickle of
	// PS packets along the same row.
	cfg := HybridTDMConfig(6, 6)
	cfg.SetupThreshold = 1
	net, _ := driverNet(t, cfg)
	defer net.Close()
	csSrc, psSrc, dst := topology.NodeID(0), topology.NodeID(1), topology.NodeID(5)
	establishCircuit(t, net, csSrc, dst)
	net.EnableStats()
	for i := 0; i < 150; i++ {
		net.NI(csSrc).Send(net.Now(), dst, SendOptions{AllowCS: true, Slack: 100000})
		if i%3 == 0 {
			net.NI(psSrc).Send(net.Now(), dst, SendOptions{AllowCS: false})
		}
		net.Run(8)
	}
	if !net.Drain(30000) {
		t.Fatalf("drain failed: %d in flight", net.InFlight())
	}
	st := net.Stats()
	if st.PSLatencyHist.Count() == 0 {
		t.Fatal("no packet-switched samples")
	}
	if p99 := st.PSLatencyHist.Percentile(0.99); p99 > 512 {
		t.Fatalf("packet-switched p99 latency %d cycles — starvation", p99)
	}
}
