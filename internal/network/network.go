package network

import (
	"tdmnoc/internal/flit"
	"tdmnoc/internal/hybrid"
	"tdmnoc/internal/invariant"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/policy"
	"tdmnoc/internal/power"
	"tdmnoc/internal/router"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/stats"
	"tdmnoc/internal/topology"
)

// Network is one simulated NoC: the mesh of routers, the per-tile NIs,
// the executor that drives them, and the network-wide managers (dynamic
// slot-table sizing).
type Network struct {
	cfg   Config
	mesh  topology.Mesh
	clock sim.Clock
	exec  *sim.Executor

	routers []*router.Router
	nis     []*NI
	// tileOwner[id] is the worker whose partition ticks tile id (always
	// 0 when serial); observability handles bind to the owner's shard.
	tileOwner []int

	// checker is the optional runtime invariant layer (nil unless
	// cfg.CheckInvariants).
	checker *invariant.Checker

	// sharedPool is the overflow tier behind every NI's packet free list
	// (nil unless cfg.PoolMessages).
	sharedPool *flit.SharedPool

	// rec is the attached observability recorder (nil = tracing off);
	// control is its between-cycle control handle, used for the sampled
	// gauges; probeEvery is the telemetry sampling interval in cycles.
	rec        *obs.Recorder
	control    *obs.Handle
	probeEvery int64

	resizer *hybrid.Resizer
	// slotActive is the slot count the routers are actually using; it
	// lags the resizer's decision by the drain window so NIs and routers
	// always agree on the slot modulus.
	slotActive int
	epoch      int
	csFrozen   bool
	resizeAt   sim.Cycle // non-zero while a reset is scheduled
	resizeTo   int

	// Online adaptive controller state (cfg.AdaptiveEpoch > 0): the
	// cumulative per-flow flit totals at the last epoch boundary (so
	// each epoch ranks the *window's* traffic, not the run's), the pin
	// set currently installed at the NIs, and how many epoch
	// re-allocations have fired. All touched only between cycles on the
	// caller goroutine.
	adaptPrev   map[uint64]int64
	adaptPins   []policy.FlowPin
	adaptRepins int
}

// EndpointFactory builds the traffic endpoint for each tile; it may
// return nil for tiles that only sink traffic.
type EndpointFactory func(id topology.NodeID) Endpoint

// New builds a network from cfg, attaching endpoints from mk.
func New(cfg Config, mk EndpointFactory) *Network {
	cfg.validate()
	n := &Network{cfg: cfg, mesh: topology.NewMesh(cfg.Width, cfg.Height)}
	if cfg.PoolMessages {
		n.sharedPool = flit.NewSharedPool(n.mesh.Nodes())
	}

	if cfg.Router.Hybrid && cfg.DynamicSlots {
		if cfg.SlotInit > 0 {
			n.resizer = hybrid.ResizerWithInitial(cfg.Router.SlotCapacity, cfg.SlotInit)
		} else {
			n.resizer = hybrid.DefaultResizer(cfg.Router.SlotCapacity)
		}
	} else {
		n.resizer = hybrid.FixedResizer(max(1, cfg.Router.SlotCapacity))
	}
	n.slotActive = n.resizer.Active()
	if cfg.Router.Hybrid {
		n.cfg.Router.SlotActive = n.resizer.Active()
	}

	nodes := n.mesh.Nodes()

	// Partition-contiguous construction: the configured sim.Partitioner
	// decides which tiles each worker owns, and each partition's routers
	// and NIs are carved from that partition's own arenas — a worker's
	// per-cycle working set is contiguous in memory, and two partitions
	// never share a cache line because they never share an allocation.
	// The partition choice can never change results: the phase contract
	// (see sim.Phase) makes tick order within a phase unobservable, and
	// everything order-sensitive at construction (RNG forking, endpoint
	// factory calls) runs in node-id order below regardless of layout.
	partitioner, err := sim.PartitionerByName(cfg.Partition)
	if err != nil {
		panic(err.Error()) // unreachable: validate() checked the name
	}
	parts := partitioner.Partition(cfg.Width, cfg.Height, cfg.Workers)
	order, spans := sim.PartitionSpans(parts, 2)

	n.routers = make([]*router.Router, nodes)
	n.tileOwner = make([]int, nodes)
	for wi, ids := range parts {
		if len(ids) == 0 {
			continue
		}
		arena := router.NewArena(len(ids), n.cfg.Router)
		for _, id := range ids {
			n.routers[id] = arena.New(topology.NodeID(id), n.mesh)
			n.tileOwner[id] = wi
		}
	}
	for id := 0; id < nodes; id++ {
		for _, p := range []topology.Port{topology.North, topology.East, topology.South, topology.West} {
			if nb, ok := n.mesh.Neighbor(topology.NodeID(id), p); ok {
				n.routers[id].Connect(p, n.routers[nb])
			}
		}
	}

	// RNG streams and endpoints are created in node-id order regardless
	// of the partition layout, so no layout or worker count can change
	// the stream any tile sees.
	master := sim.NewRNG(cfg.Seed)
	rngs := make([]*sim.RNG, nodes)
	eps := make([]Endpoint, nodes)
	for id := 0; id < nodes; id++ {
		rngs[id] = master.Fork()
		if mk != nil {
			eps[id] = mk(topology.NodeID(id))
		}
	}

	n.nis = make([]*NI, nodes)
	for _, ids := range parts {
		if len(ids) == 0 {
			continue
		}
		arena := newNIArena(len(ids), cfg.Router.VCs, cfg.InjectRingCap)
		for _, id := range ids {
			n.nis[id] = arena.newNI(topology.NodeID(id), n, n.routers[id], rngs[id], eps[id])
		}
	}

	// Tickers are interleaved per tile (router_i, NI_i) in partition
	// order — matching the slab layout, so a worker walks its span of
	// the ticker slice in the same order its state sits in memory — and
	// the executor receives the partitioner's exact per-worker spans.
	tickers := make([]sim.Ticker, 0, 2*nodes)
	for _, id := range order {
		tickers = append(tickers, n.routers[id], n.nis[id])
	}
	n.exec = sim.NewExecutorSpans(&n.clock, tickers, spans)
	if cfg.AlwaysTick {
		n.exec.SetAlwaysTick(true)
	}
	if cfg.CheckInvariants {
		n.checker = invariant.NewChecker(cfg.CheckInterval)
	}
	return n
}

// Close releases the executor's worker pool.
func (n *Network) Close() { n.exec.Close() }

// Mesh returns the network topology.
func (n *Network) Mesh() topology.Mesh { return n.mesh }

// Workers returns the executor's effective worker count (>= 1). A
// recorder attached via AttachProbe needs at least this many shards.
func (n *Network) Workers() int { return n.exec.Workers() }

// Now returns the current simulation cycle.
func (n *Network) Now() sim.Cycle { return n.clock.Now() }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// NI returns the network interface of tile id.
func (n *Network) NI(id topology.NodeID) *NI { return n.nis[id] }

// Router returns the router of tile id.
func (n *Network) Router(id topology.NodeID) *router.Router { return n.routers[id] }

// ActiveSlots is the network-wide active slot-table size currently in
// force at the routers (a pending resize only takes effect after the
// drain window).
func (n *Network) ActiveSlots() int { return n.slotActive }

// ResizeEvents reports how many dynamic slot-table doublings occurred.
func (n *Network) ResizeEvents() int { return n.resizer.ResizeEvents() }

// Step advances the simulation one cycle, then runs the between-cycle
// manager (dynamic slot-table sizing) and, when enabled and due, the
// runtime invariant checks.
func (n *Network) Step() {
	n.exec.Step()
	n.manage()
	if n.rec != nil {
		now := int64(n.clock.Now())
		if n.probeEvery > 0 && now%n.probeEvery == 0 {
			n.sampleTelemetry(now)
		}
		n.rec.Sync(now)
	}
	if n.checker != nil {
		if now := int64(n.clock.Now()); n.checker.Due(now) {
			n.checkInvariants(now)
		}
	}
}

// Run advances the simulation by the given number of cycles.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.Step()
	}
}

// RunUntil steps until done reports true or limit cycles elapse. Like
// sim.Executor.RunUntil, a condition already satisfied at entry returns
// (0, true) without running a cycle.
func (n *Network) RunUntil(done func() bool, limit int) (int, bool) {
	if done() {
		return 0, true
	}
	for i := 0; i < limit; i++ {
		n.Step()
		if done() {
			return i + 1, true
		}
	}
	return limit, false
}

// manage is the serial between-cycle management step: it feeds setup
// outcomes to the resizing policy, runs the online adaptive controller
// at epoch boundaries, and orchestrates the freeze → drain → reset
// sequence of Section II-C (shared by resizer doublings and adaptive
// re-pins).
func (n *Network) manage() {
	now := n.clock.Now()
	if n.cfg.DynamicSlots {
		for _, ni := range n.nis {
			for _, ok := range ni.setupResults {
				if newActive, resized := n.resizer.RecordSetupResultAt(ok, int64(now)); resized && n.resizeAt == 0 {
					n.resizeTo = newActive
					n.resizeAt = now + sim.Cycle(n.cfg.DrainWindow)
					n.csFrozen = true
					n.epoch++
				}
			}
			ni.setupResults = ni.setupResults[:0]
		}
	} else {
		for _, ni := range n.nis {
			ni.setupResults = ni.setupResults[:0]
		}
	}
	if n.cfg.AdaptiveEpoch > 0 {
		n.adaptStep(now)
	}
	if n.resizeAt != 0 && now >= n.resizeAt {
		for _, r := range n.routers {
			// The reset changes the powered slot-entry count the static
			// leakage integral depends on; flush the lazily-accrued
			// cycles at the old size first.
			r.SyncStatics(now)
			r.ResetCircuits(n.resizeTo, n.epoch)
		}
		for _, ni := range n.nis {
			ni.onResize()
		}
		n.slotActive = n.resizeTo
		n.resizeAt = 0
		n.csFrozen = false
		// The reset mutated every router and NI outside the tick loop;
		// re-arm them all so no node sleeps through it.
		n.exec.WakeAll()
	}
}

// adaptStep is the online controller: at each AdaptiveEpoch boundary it
// ranks the epoch's flow deltas by the greedy bytes×distance metric,
// re-pins the top AdaptiveTopK flows, and — only when the pin set
// actually changed — re-allocates every slot table through the same
// freeze → drain → reset path the dynamic resizer uses, under the
// invariant checker's slot-table ownership rules. It runs serially
// between cycles from recorder state that is itself worker-invariant,
// so digests stay identical at any worker count.
func (n *Network) adaptStep(now sim.Cycle) {
	if n.rec == nil || int64(now)%n.cfg.AdaptiveEpoch != 0 {
		return
	}
	if n.resizeAt != 0 {
		return // a drain is already in progress; skip this boundary
	}
	flows := n.rec.FlowStats()
	scored := policy.ScoreFlows(flows, n.adaptPrev, n.cfg.Width)
	if n.adaptPrev == nil {
		n.adaptPrev = make(map[uint64]int64, len(flows))
	}
	for _, f := range flows {
		n.adaptPrev[policy.FlowKey(f.Src, f.Dst)] = f.Flits
	}
	k := n.cfg.AdaptiveTopK
	if k <= 0 {
		k = 8
	}
	pins := policy.PinsOf(policy.SelectTopK(scored, k))
	if policy.PinsEqual(pins, n.adaptPins) {
		return
	}
	n.adaptPins = pins
	n.adaptRepins++
	for _, ni := range n.nis {
		// A fresh (possibly empty) map on every NI: "policy active".
		ni.pins = make(map[topology.NodeID]bool)
	}
	for _, p := range pins {
		n.nis[p.Src].pins[topology.NodeID(p.Dst)] = true
	}
	// Old circuits may belong to flows that just lost their pin; rather
	// than tearing them down piecemeal, reuse the proven reset protocol
	// at the current active size: freeze CS injection, drain in-flight
	// circuit flits, wipe every table, bump the epoch so stale acks and
	// teardowns are discarded.
	n.resizeTo = n.slotActive
	n.resizeAt = now + sim.Cycle(n.cfg.DrainWindow)
	n.csFrozen = true
	n.epoch++
}

// AdaptiveRepins reports how many epoch re-allocations the online
// controller performed.
func (n *Network) AdaptiveRepins() int { return n.adaptRepins }

// AttachEventSink installs a router-event trace sink on every router.
// Only supported with a serial executor: the sink runs inside router
// compute ticks, which execute concurrently when Workers > 1.
func (n *Network) AttachEventSink(s router.EventSink) {
	if n.cfg.Workers > 1 {
		panic("network: event tracing requires Workers == 1")
	}
	for _, r := range n.routers {
		r.SetEventSink(s)
	}
}

// EnableStats starts statistics collection (call after warm-up) and
// resets the energy meters so energy covers the measured region only.
func (n *Network) EnableStats() {
	for _, ni := range n.nis {
		ni.Stats.Enabled = true
	}
	now := n.clock.Now()
	for _, r := range n.routers {
		// Flush lazily-accrued pre-measurement cycles into the meter
		// being discarded, so they cannot leak into the fresh one.
		r.SyncStatics(now)
		r.Meter().Reset()
		// Re-count the static link channels lost in the reset.
		lc := int64(1)
		for _, p := range []topology.Port{topology.North, topology.East, topology.South, topology.West} {
			if _, ok := n.mesh.Neighbor(r.ID(), p); ok {
				lc++
			}
		}
		r.Meter().LinkChannels = lc
	}
}

// Stats merges every NI's collector.
func (n *Network) Stats() stats.Collector {
	var out stats.Collector
	for _, ni := range n.nis {
		out.Merge(&ni.Stats)
	}
	return out
}

// SyncMeters brings every router's lazily-accrued static energy up to
// the current cycle. Callers reading meters directly (rather than via
// Energy, which syncs itself) must call this first, or skipped-cycle
// leakage since the router's last tick is missing from the numbers.
func (n *Network) SyncMeters() {
	now := n.clock.Now()
	for _, r := range n.routers {
		r.SyncStatics(now)
	}
}

// Energy merges every router's meter into one breakdown and adds the
// NI-side DLT access energy to the circuit-switching component.
func (n *Network) Energy() power.Breakdown {
	n.SyncMeters()
	var out power.Breakdown
	for _, r := range n.routers {
		out = out.Add(r.Meter().Report(n.cfg.Power))
	}
	dlt := int64(0)
	for _, ni := range n.nis {
		dlt += ni.dltAccesses
	}
	out.DynamicPJ[power.CompCS] += float64(dlt) * n.cfg.Power.DLTPJ
	return out
}

// Diagnostics sums the protocol-invariant counters across routers; every
// field should be zero except StolenSlots.
type Diagnostics struct {
	MisroutedCS    int64
	DroppedCS      int64
	LatchConflicts int64
	StolenSlots    int64
}

// Diagnose aggregates router diagnostics.
func (n *Network) Diagnose() Diagnostics {
	var d Diagnostics
	for _, r := range n.routers {
		d.MisroutedCS += r.MisroutedCS
		d.DroppedCS += r.DroppedCS
		d.LatchConflicts += r.LatchConflicts
		d.StolenSlots += r.StolenSlots
	}
	return d
}

// InFlight reports packets sent but not yet finally ejected.
func (n *Network) InFlight() int64 {
	var sent, ejected int64
	for _, ni := range n.nis {
		sent += ni.TotalSent
		ejected += ni.TotalEjected
	}
	return sent - ejected
}

// Drain runs until every sent packet has been ejected or limit cycles
// pass; endpoints should have stopped generating first.
func (n *Network) Drain(limit int) bool {
	_, ok := n.RunUntil(func() bool { return n.InFlight() == 0 }, limit)
	return ok
}
