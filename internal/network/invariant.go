package network

import (
	"fmt"
	"sort"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/invariant"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// This file is the network's contribution to the runtime invariant
// layer: the network-wide flit-conservation check, the NI-side half of
// the local-port credit check, the full-state determinism digest, and
// the per-NI state hash. All of it runs serially between cycles (after
// the executor's transfer phase and the manage step), when the
// two-phase contract guarantees in-flight credits are delivered, output
// latches toward connected ports are drained, and ni.staged is empty.

// InvariantViolations returns the stored violations (nil when checking
// is disabled or clean).
func (n *Network) InvariantViolations() []invariant.Violation {
	if n.checker == nil {
		return nil
	}
	return n.checker.Violations()
}

// InvariantCount returns the total violations detected, including ones
// beyond the storage cap.
func (n *Network) InvariantCount() int64 {
	if n.checker == nil {
		return 0
	}
	return n.checker.Count()
}

// RollingDigest returns the FNV-1a digest folded over every checked
// cycle's state digest (0 when checking is disabled). Identical seeded
// runs must produce identical rolling digests regardless of Workers.
func (n *Network) RollingDigest() uint64 {
	if n.checker == nil {
		return 0
	}
	return n.checker.Digest()
}

// StateDigest hashes the complete mutable simulation state — clock,
// resize manager, every router pipeline and every NI — into one 64-bit
// FNV-1a value. Two runs of the same seeded config diverge at the first
// cycle whose digests differ. Works with or without checking enabled.
func (n *Network) StateDigest() uint64 {
	h := invariant.NewHasher()
	h.Int64(int64(n.clock.Now()))
	h.Int(n.slotActive)
	h.Int(n.epoch)
	h.Bool(n.csFrozen)
	h.Int64(int64(n.resizeAt))
	h.Int(n.resizeTo)
	for _, r := range n.routers {
		r.HashState(h)
	}
	for _, ni := range n.nis {
		ni.hashState(h)
	}
	return h.Sum()
}

// checkInvariants runs all enabled checks for cycle now and folds the
// state digest into the rolling digest.
func (n *Network) checkInvariants(now int64) {
	// Per-router checks: credit consistency toward neighbours, slot-table
	// ownership and counter consistency.
	for _, r := range n.routers {
		id := int(r.ID())
		r.CheckInvariants(func(kind, detail string) {
			n.checker.Report(now, id, kind, detail)
		})
	}
	// NI-side credit check for the local input port: injection credits
	// plus the local input's packet-switched occupancy must equal the
	// buffer depth (ni.staged is always drained between cycles).
	depth := n.cfg.Router.BufDepth
	for _, ni := range n.nis {
		id := int(ni.id)
		for v := range ni.credits {
			occ := ni.r.LocalInputPS(v)
			if ni.credits[v]+occ != depth {
				n.checker.Report(now, id, "credit",
					fmt.Sprintf("local vc %d: NI credits %d + occupancy %d != depth %d", v, ni.credits[v], occ, depth))
			}
		}
	}
	// Network-wide flit conservation: the set of distinct data packets
	// with at least one flit somewhere in the network must exactly match
	// the sent-but-not-ejected count. A partially reassembled packet
	// always still has >= 1 flit in flight, so counting distinct IDs is
	// exact.
	seen := make(map[uint64]struct{})
	add := func(id uint64) { seen[id] = struct{}{} }
	for _, r := range n.routers {
		r.CollectDataPackets(add)
	}
	for _, ni := range n.nis {
		ni.collectDataPackets(add)
	}
	if got, want := int64(len(seen)), n.InFlight(); got != want {
		n.checker.Report(now, -1, "conservation",
			fmt.Sprintf("%d distinct data packets in flight but sent-ejected = %d", got, want))
	}
	n.checker.Roll(n.StateDigest())
}

// hashState folds the NI's complete mutable state into h. Map contents
// are folded in sorted-key order so the hash is independent of Go's
// randomized map iteration.
func (ni *NI) hashState(h *invariant.Hasher) {
	h.Int(ni.psQ.len())
	for i := 0; i < ni.psQ.len(); i++ {
		flit.HashPacket(h, ni.psQ.at(i))
	}
	h.Int(len(ni.cur))
	for _, f := range ni.cur {
		flit.HashFlit(h, f)
	}
	h.Int(ni.curIdx)
	h.Int(ni.curVC)
	for _, c := range ni.credits {
		h.Int(c)
	}
	for _, b := range ni.vcBusy {
		h.Bool(b)
	}
	flit.HashFlit(h, ni.staged)

	h.Int(len(ni.circuitList))
	for _, c := range ni.circuitList {
		h.Int(int(c.dst))
		h.Int(c.dur)
		h.Int(c.epoch)
		h.Int(c.hops)
		h.Int64(int64(c.lastUsed))
		h.Int(c.overflow)
		h.Int(len(c.blocks))
		for _, b := range c.blocks {
			h.Int(b.baseSlot)
			h.Int(b.pending)
		}
	}
	h.Int(len(ni.csJobs))
	for _, j := range ni.csJobs {
		flit.HashPacket(h, j.pkt)
		h.Int(j.slot)
		h.Byte(byte(j.shareIn))
		h.Bool(j.hitchhike)
		h.Int(int(j.circuitDst))
	}
	h.Int(len(ni.csCur))
	for _, f := range ni.csCur {
		flit.HashFlit(h, f)
	}
	h.Int(ni.csIdx)

	hashNodeKeys(h, ni.pending, func(st setupState) {
		h.Int(int(st.dst))
		h.Int(st.attempts)
	})
	hashNodeKeys(h, ni.hitchQueued, func(v int) { h.Int(v) })
	hashNodeKeys(h, ni.backoff, func(c sim.Cycle) { h.Int64(int64(c)) })
	hashNodeKeys(h, ni.freq, func(v int) { h.Int(v) })
	h.Int64(int64(ni.freqResetAt))
	if ni.dlt != nil {
		ni.dlt.HashState(h)
	}
	h.Int64(ni.dltAccesses)
	h.Int(len(ni.dltEventBuf))
	for _, e := range ni.dltEventBuf {
		h.Bool(e.Add)
		h.Int(int(e.Dst))
		h.Int(e.Slot)
		h.Int(e.Dur)
		h.Byte(byte(e.In))
	}

	h.Int(len(ni.rx))
	for _, rf := range ni.rx {
		flit.HashFlit(h, rf.f)
		h.Int64(int64(rf.at))
	}
	keys := make([]uint64, 0, len(ni.rxCount))
	for k := range ni.rxCount {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h.Int(len(keys))
	for _, k := range keys {
		h.Uint64(k)
		h.Int(ni.rxCount[k])
	}

	h.Int(len(ni.setupResults))
	for _, ok := range ni.setupResults {
		h.Bool(ok)
	}
	h.Int64(ni.TotalSent)
	h.Int64(ni.TotalEjected)
	h.Uint64(ni.seq)
}

// hashNodeKeys folds a NodeID-keyed map in sorted-key order.
func hashNodeKeys[V any](h *invariant.Hasher, m map[topology.NodeID]V, hashVal func(V)) {
	keys := make([]topology.NodeID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h.Int(len(keys))
	for _, k := range keys {
		h.Int(int(k))
		hashVal(m[k])
	}
}

// collectDataPackets calls add with the ID of every data packet that has
// a flit (or the whole packet) queued in this NI: the packet-switched
// queue, the in-progress injection streams, the staged flit, waiting
// circuit-switched jobs, and the receive buffer. Configuration packets
// are excluded to match the conservation counters.
func (ni *NI) collectDataPackets(add func(id uint64)) {
	for i := 0; i < ni.psQ.len(); i++ {
		if p := ni.psQ.at(i); p.Kind == flit.DataPacket {
			add(p.ID)
		}
	}
	for _, f := range ni.cur {
		if f.Pkt.Kind == flit.DataPacket {
			add(f.Pkt.ID)
		}
	}
	if ni.staged != nil && ni.staged.Pkt.Kind == flit.DataPacket {
		add(ni.staged.Pkt.ID)
	}
	for _, j := range ni.csJobs {
		if j.pkt.Kind == flit.DataPacket {
			add(j.pkt.ID)
		}
	}
	for _, f := range ni.csCur {
		if f.Pkt.Kind == flit.DataPacket {
			add(f.Pkt.ID)
		}
	}
	for _, rf := range ni.rx {
		if rf.f.Pkt.Kind == flit.DataPacket {
			add(rf.f.Pkt.ID)
		}
	}
}
