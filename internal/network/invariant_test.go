package network

import (
	"reflect"
	"testing"

	"tdmnoc/internal/hybrid"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// TestInvariantCheckerCleanRuns drives real traffic through checked
// networks and requires zero violations: the checker must not
// false-positive on any legitimate state the protocols produce.
func TestInvariantCheckerCleanRuns(t *testing.T) {
	cases := map[string]Config{
		"packet": DefaultConfig(6, 6),
		"hybrid": HybridTDMConfig(6, 6),
		"shared": HybridTDMConfig(6, 6).WithSharing().WithVCGating(),
	}
	for name, cfg := range cases {
		cfg.CheckInvariants = true
		if name == "shared" {
			cfg.CheckInterval = 4 // also cover the every-N-cycles path
		}
		net := New(cfg, func(id topology.NodeID) Endpoint {
			return &burst{count: 100, dstOf: reversePattern, allowCS: true, period: 5}
		})
		net.Run(1500)
		net.Drain(10000)
		if n := net.InvariantCount(); n != 0 {
			t.Errorf("%s: %d invariant violations; first: %s", name, n, net.InvariantViolations()[0])
		}
		if net.RollingDigest() == 0 {
			t.Errorf("%s: rolling digest never accumulated", name)
		}
		net.Close()
	}
}

// TestSerialParallelDigestEquivalence locksteps a serial and a parallel
// run of the same seeded config, comparing full-state digests after
// every cycle: a determinism bug fails at the first diverging cycle
// instead of as an end-of-run aggregate mismatch.
func TestSerialParallelDigestEquivalence(t *testing.T) {
	build := func(workers int) *Network {
		cfg := HybridTDMConfig(6, 6)
		cfg.Workers = workers
		cfg.CheckInvariants = true
		return New(cfg, func(id topology.NodeID) Endpoint {
			return &burst{count: 100, dstOf: reversePattern, allowCS: true, period: 5}
		})
	}
	serial, parallel := build(1), build(4)
	defer serial.Close()
	defer parallel.Close()
	for c := 0; c < 1000; c++ {
		serial.Step()
		parallel.Step()
		if ds, dp := serial.StateDigest(), parallel.StateDigest(); ds != dp {
			t.Fatalf("state diverged at cycle %d: serial %016x, parallel %016x", c, ds, dp)
		}
	}
	if ds, dp := serial.RollingDigest(), parallel.RollingDigest(); ds != dp {
		t.Fatalf("rolling digests differ: serial %016x, parallel %016x", ds, dp)
	}
	if n := serial.InvariantCount() + parallel.InvariantCount(); n != 0 {
		t.Fatalf("%d invariant violations during equivalence run", n)
	}
}

// TestInvariantCheckerCatchesDroppedCredit seeds the one fault class
// the credit invariant exists for — a credit lost in flight — and
// requires the checker to localise it to the right router, kind and
// cycle.
func TestInvariantCheckerCatchesDroppedCredit(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	cfg.CheckInvariants = true
	net := New(cfg, func(id topology.NodeID) Endpoint {
		return &burst{count: 50, dstOf: reversePattern, allowCS: true, period: 5}
	})
	defer net.Close()
	net.Run(50)
	if n := net.InvariantCount(); n != 0 {
		t.Fatalf("%d violations before the fault was injected", n)
	}
	net.Router(14).FaultDropCredit(topology.East, 0)
	net.Step()
	want := int64(net.Now())
	if net.InvariantCount() == 0 {
		t.Fatal("dropped credit went undetected")
	}
	v := net.InvariantViolations()[0]
	if v.Kind != "credit" || v.Router != 14 || v.Cycle != want {
		t.Fatalf("violation %s: want kind credit, router 14, cycle %d", v, want)
	}
	if v.Detail == "" {
		t.Fatal("violation carries no reproduction detail")
	}
}

// slotOwner is one valid slot-table reservation, for snapshotting.
type slotOwner struct {
	in   topology.Port
	slot int
	out  topology.Port
}

func validEntries(rt *hybrid.RouterTables) []slotOwner {
	var out []slotOwner
	rt.VisitEntries(func(in topology.Port, slot int, e hybrid.SlotEntry) {
		if e.Valid {
			out = append(out, slotOwner{in, slot, e.Out})
		}
	})
	return out
}

// TestFailedSetupReleasesReservedPrefix exercises the bounded-teardown
// path at protocol level: a setup that reserved slots at hops 0..k-1
// and was refused at hop k must release exactly its own reserved
// prefix — every router it touched returns to its pre-setup table
// state, and an unrelated live circuit keeps every one of its slots.
func TestFailedSetupReleasesReservedPrefix(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	cfg.DynamicSlots = false // keep tables stable so snapshots compare exactly
	cfg.CheckInvariants = true
	net, _ := driverNet(t, cfg)
	defer net.Close()
	net.EnableStats()

	// Live circuit A along row 0 (routers 0..5).
	establishCircuit(t, net, 0, 5)

	// Make every reservation at router 9 fail: setups from node 6 to 11
	// along row 1 (routers 6..11) reserve at hops 0..2 and are refused
	// at hop 3.
	net.Router(9).Tables().ReserveCap = 0.01

	before := make(map[int][]slotOwner)
	for r := 0; r < 12; r++ {
		before[r] = validEntries(net.Router(topology.NodeID(r)).Tables())
	}

	ni := net.NI(6)
	for i := 0; i < 30; i++ {
		ni.Send(net.Now(), 11, SendOptions{AllowCS: true, Slack: -1})
		net.Run(20)
	}
	net.RunUntil(func() bool { return net.Stats().SetupsFailed > 0 }, 5000)
	if net.Stats().SetupsFailed == 0 {
		t.Fatal("no setup failed despite the reservation cap")
	}
	if !net.Drain(20000) {
		t.Fatalf("drain failed, in flight %d", net.InFlight())
	}
	if _, ok := niCircuit(ni, 11); ok {
		t.Fatal("circuit established despite the reservation cap")
	}

	for r := 0; r < 12; r++ {
		after := validEntries(net.Router(topology.NodeID(r)).Tables())
		if !reflect.DeepEqual(before[r], after) {
			t.Errorf("router %d slot table changed by the failed setup:\n before %v\n after  %v", r, before[r], after)
		}
	}
	if n := net.InvariantCount(); n != 0 {
		t.Errorf("%d invariant violations; first: %s", n, net.InvariantViolations()[0])
	}
}

// TestDigestEquivalenceWorkerMatrix widens the serial-vs-parallel check
// across worker counts and mesh sizes, including a 5x5 mesh whose 50
// tickers do not divide evenly into the partitions (the last worker gets
// a short span): any partitioning bug that only bites on ragged chunks
// or high worker counts fails here.
func TestDigestEquivalenceWorkerMatrix(t *testing.T) {
	cases := []struct {
		w, h    int
		workers []int
	}{
		{6, 6, []int{2, 3, 8}},
		{5, 5, []int{3, 8}},
	}
	for _, tc := range cases {
		run := func(workers int) (uint64, int64) {
			cfg := HybridTDMConfig(tc.w, tc.h).WithSharing()
			cfg.Workers = workers
			cfg.CheckInvariants = true
			net := New(cfg, func(id topology.NodeID) Endpoint {
				return &burst{count: 80, dstOf: reversePattern, allowCS: true, period: 5}
			})
			defer net.Close()
			net.Run(900)
			if n := net.InvariantCount(); n != 0 {
				t.Fatalf("%dx%d workers=%d: %d invariant violations", tc.w, tc.h, workers, n)
			}
			return net.StateDigest(), net.InFlight()
		}
		serialDigest, serialInFlight := run(1)
		for _, w := range tc.workers {
			d, inf := run(w)
			if d != serialDigest || inf != serialInFlight {
				t.Errorf("%dx%d: workers=%d digest %016x (in-flight %d) != serial %016x (%d)",
					tc.w, tc.h, w, d, inf, serialDigest, serialInFlight)
			}
		}
	}
}

// TestAlwaysTickDigestEquivalence locksteps a normally scheduled run
// against an AlwaysTick run of the same seeded config. The endpoints
// send finite bursts, so the network goes almost fully idle during the
// run — deep-sleep territory where a broken re-arm would diverge. Every
// cycle's full-state digest must agree anyway: skipped ticks are
// supposed to be exact no-ops.
func TestAlwaysTickDigestEquivalence(t *testing.T) {
	build := func(alwaysTick bool) *Network {
		cfg := HybridTDMConfig(6, 6).WithSharing()
		cfg.AlwaysTick = alwaysTick
		cfg.CheckInvariants = true
		return New(cfg, func(id topology.NodeID) Endpoint {
			if int(id)%3 == 0 {
				return &burst{count: 40, dstOf: reversePattern, allowCS: true, period: 9}
			}
			return nil // sink tiles: their NIs sleep between deliveries
		})
	}
	sched, exhaustive := build(false), build(true)
	defer sched.Close()
	defer exhaustive.Close()
	for c := 0; c < 1200; c++ {
		sched.Step()
		exhaustive.Step()
		if ds, de := sched.StateDigest(), exhaustive.StateDigest(); ds != de {
			t.Fatalf("state diverged at cycle %d: scheduled %016x, always-tick %016x", c, ds, de)
		}
	}
	if n := sched.InvariantCount() + exhaustive.InvariantCount(); n != 0 {
		t.Fatalf("%d invariant violations during equivalence run", n)
	}
}

// TestQuiescentTickIsNoOp is the quiescence soundness check: force-tick
// every node that reports Quiescent() and require the full-state digest
// to be bit-identical afterwards. If any Quiescent implementation
// over-reports (a node with hidden pending work claims to be idle), the
// forced tick performs that work early and the digest moves.
func TestQuiescentTickIsNoOp(t *testing.T) {
	cfg := HybridTDMConfig(6, 6).WithSharing()
	cfg.CheckInvariants = true
	net := New(cfg, func(id topology.NodeID) Endpoint {
		if int(id)%2 == 0 {
			return &burst{count: 60, dstOf: reversePattern, allowCS: true, period: 7}
		}
		return nil
	})
	defer net.Close()
	forced := 0
	for step := 0; step < 800; step++ {
		net.Step()
		if step%20 != 0 {
			continue
		}
		now := net.Now()
		before := net.StateDigest()
		for id := 0; id < net.Mesh().Nodes(); id++ {
			nid := topology.NodeID(id)
			if r := net.Router(nid); r.Quiescent() {
				r.Tick(now, sim.PhaseCompute)
				r.Tick(now, sim.PhaseTransfer)
				forced++
			}
			if ni := net.NI(nid); ni.SchedState() != nil && ni.Quiescent() {
				ni.Tick(now, sim.PhaseCompute)
				ni.Tick(now, sim.PhaseTransfer)
				forced++
			}
		}
		if after := net.StateDigest(); after != before {
			t.Fatalf("cycle %d: forced ticks of quiescent nodes changed state: %016x -> %016x",
				int64(now), before, after)
		}
	}
	if forced == 0 {
		t.Fatal("no node ever reported quiescent; the soundness check never ran")
	}
}
