package network

import (
	"reflect"
	"testing"

	"tdmnoc/internal/hybrid"
	"tdmnoc/internal/topology"
)

// TestInvariantCheckerCleanRuns drives real traffic through checked
// networks and requires zero violations: the checker must not
// false-positive on any legitimate state the protocols produce.
func TestInvariantCheckerCleanRuns(t *testing.T) {
	cases := map[string]Config{
		"packet": DefaultConfig(6, 6),
		"hybrid": HybridTDMConfig(6, 6),
		"shared": HybridTDMConfig(6, 6).WithSharing().WithVCGating(),
	}
	for name, cfg := range cases {
		cfg.CheckInvariants = true
		if name == "shared" {
			cfg.CheckInterval = 4 // also cover the every-N-cycles path
		}
		net := New(cfg, func(id topology.NodeID) Endpoint {
			return &burst{count: 100, dstOf: reversePattern, allowCS: true, period: 5}
		})
		net.Run(1500)
		net.Drain(10000)
		if n := net.InvariantCount(); n != 0 {
			t.Errorf("%s: %d invariant violations; first: %s", name, n, net.InvariantViolations()[0])
		}
		if net.RollingDigest() == 0 {
			t.Errorf("%s: rolling digest never accumulated", name)
		}
		net.Close()
	}
}

// TestSerialParallelDigestEquivalence locksteps a serial and a parallel
// run of the same seeded config, comparing full-state digests after
// every cycle: a determinism bug fails at the first diverging cycle
// instead of as an end-of-run aggregate mismatch.
func TestSerialParallelDigestEquivalence(t *testing.T) {
	build := func(workers int) *Network {
		cfg := HybridTDMConfig(6, 6)
		cfg.Workers = workers
		cfg.CheckInvariants = true
		return New(cfg, func(id topology.NodeID) Endpoint {
			return &burst{count: 100, dstOf: reversePattern, allowCS: true, period: 5}
		})
	}
	serial, parallel := build(1), build(4)
	defer serial.Close()
	defer parallel.Close()
	for c := 0; c < 1000; c++ {
		serial.Step()
		parallel.Step()
		if ds, dp := serial.StateDigest(), parallel.StateDigest(); ds != dp {
			t.Fatalf("state diverged at cycle %d: serial %016x, parallel %016x", c, ds, dp)
		}
	}
	if ds, dp := serial.RollingDigest(), parallel.RollingDigest(); ds != dp {
		t.Fatalf("rolling digests differ: serial %016x, parallel %016x", ds, dp)
	}
	if n := serial.InvariantCount() + parallel.InvariantCount(); n != 0 {
		t.Fatalf("%d invariant violations during equivalence run", n)
	}
}

// TestInvariantCheckerCatchesDroppedCredit seeds the one fault class
// the credit invariant exists for — a credit lost in flight — and
// requires the checker to localise it to the right router, kind and
// cycle.
func TestInvariantCheckerCatchesDroppedCredit(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	cfg.CheckInvariants = true
	net := New(cfg, func(id topology.NodeID) Endpoint {
		return &burst{count: 50, dstOf: reversePattern, allowCS: true, period: 5}
	})
	defer net.Close()
	net.Run(50)
	if n := net.InvariantCount(); n != 0 {
		t.Fatalf("%d violations before the fault was injected", n)
	}
	net.Router(14).FaultDropCredit(topology.East, 0)
	net.Step()
	want := int64(net.Now())
	if net.InvariantCount() == 0 {
		t.Fatal("dropped credit went undetected")
	}
	v := net.InvariantViolations()[0]
	if v.Kind != "credit" || v.Router != 14 || v.Cycle != want {
		t.Fatalf("violation %s: want kind credit, router 14, cycle %d", v, want)
	}
	if v.Detail == "" {
		t.Fatal("violation carries no reproduction detail")
	}
}

// slotOwner is one valid slot-table reservation, for snapshotting.
type slotOwner struct {
	in   topology.Port
	slot int
	out  topology.Port
}

func validEntries(rt *hybrid.RouterTables) []slotOwner {
	var out []slotOwner
	rt.VisitEntries(func(in topology.Port, slot int, e hybrid.SlotEntry) {
		if e.Valid {
			out = append(out, slotOwner{in, slot, e.Out})
		}
	})
	return out
}

// TestFailedSetupReleasesReservedPrefix exercises the bounded-teardown
// path at protocol level: a setup that reserved slots at hops 0..k-1
// and was refused at hop k must release exactly its own reserved
// prefix — every router it touched returns to its pre-setup table
// state, and an unrelated live circuit keeps every one of its slots.
func TestFailedSetupReleasesReservedPrefix(t *testing.T) {
	cfg := HybridTDMConfig(6, 6)
	cfg.DynamicSlots = false // keep tables stable so snapshots compare exactly
	cfg.CheckInvariants = true
	net, _ := driverNet(t, cfg)
	defer net.Close()
	net.EnableStats()

	// Live circuit A along row 0 (routers 0..5).
	establishCircuit(t, net, 0, 5)

	// Make every reservation at router 9 fail: setups from node 6 to 11
	// along row 1 (routers 6..11) reserve at hops 0..2 and are refused
	// at hop 3.
	net.Router(9).Tables().ReserveCap = 0.01

	before := make(map[int][]slotOwner)
	for r := 0; r < 12; r++ {
		before[r] = validEntries(net.Router(topology.NodeID(r)).Tables())
	}

	ni := net.NI(6)
	for i := 0; i < 30; i++ {
		ni.Send(net.Now(), 11, SendOptions{AllowCS: true, Slack: -1})
		net.Run(20)
	}
	net.RunUntil(func() bool { return net.Stats().SetupsFailed > 0 }, 5000)
	if net.Stats().SetupsFailed == 0 {
		t.Fatal("no setup failed despite the reservation cap")
	}
	if !net.Drain(20000) {
		t.Fatalf("drain failed, in flight %d", net.InFlight())
	}
	if _, ok := niCircuit(ni, 11); ok {
		t.Fatal("circuit established despite the reservation cap")
	}

	for r := 0; r < 12; r++ {
		after := validEntries(net.Router(topology.NodeID(r)).Tables())
		if !reflect.DeepEqual(before[r], after) {
			t.Errorf("router %d slot table changed by the failed setup:\n before %v\n after  %v", r, before[r], after)
		}
	}
	if n := net.InvariantCount(); n != 0 {
		t.Errorf("%d invariant violations; first: %s", n, net.InvariantViolations()[0])
	}
}
