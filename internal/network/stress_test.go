package network

import (
	"testing"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// chaos is an endpoint that exercises every protocol path at once:
// random destinations, random classes, random slacks, random packet
// sizes, bursts, and occasional idle periods.
type chaos struct {
	until sim.Cycle
	sent  int64
}

func (c *chaos) Tick(now sim.Cycle, ni *NI) {
	if now >= c.until {
		return
	}
	rng := ni.RNG()
	// Bursty on/off injection.
	if rng.Intn(100) < 20 {
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			dst := topology.NodeID(rng.Intn(ni.Mesh().Nodes()))
			size := 0
			if rng.Intn(4) == 0 {
				size = 1 + rng.Intn(5)
			}
			ni.Send(now, dst, SendOptions{
				Class:      flit.TrafficClass(rng.Intn(2)),
				AllowCS:    rng.Intn(3) != 0,
				Slack:      rng.Intn(300) - 50,
				SizeFlits:  size,
				ReplyFlits: 0,
			})
			c.sent++
		}
	}
}

func (c *chaos) OnDeliver(now sim.Cycle, ni *NI, pkt *flit.Packet) {}

// TestChaosMonkey runs every feature at once — sharing, gating, dynamic
// sizing, multi-block circuits, mixed sizes and classes — and checks the
// network stays conservative and invariant-clean.
func TestChaosMonkey(t *testing.T) {
	cfg := HybridTDMConfig(6, 6).WithSharing().WithVCGating()
	cfg.SetupThreshold = 2
	cfg.OverflowForExtraBlock = 3
	cfg.MaxCircuits = 6
	cfg.IdleTeardown = 500
	const horizon = 12000
	net := New(cfg, func(id topology.NodeID) Endpoint {
		return &chaos{until: horizon}
	})
	defer net.Close()
	net.EnableStats()
	net.Run(horizon)
	drained := net.Drain(40000)
	d := net.Diagnose()
	// Path sharing has two corners the one-cycle advance signal cannot
	// close: hitchhikers boarding one circuit from different hop-on nodes
	// cannot see each other, and a rider that launches in the cycles
	// between a teardown's slot release and its DLT-removal event can
	// outlive the release grace. Both are detected at the router, counted
	// and dropped; the paper does not address either. Under this
	// adversarial workload (aggressive teardown churn plus resizes) the
	// loss must stay vanishingly rare and fully accounted for.
	if d.LatchConflicts != 0 {
		t.Fatalf("invariants violated under chaos: %+v", d)
	}
	if d.DroppedCS > 8 {
		t.Fatalf("excessive sharing-collision drops: %+v", d)
	}
	if !drained && net.InFlight() > d.DroppedCS {
		for i := 0; i < net.Mesh().Nodes(); i++ {
			ni := net.NI(topology.NodeID(i))
			if q := ni.QueuedPackets(); q > 0 {
				t.Logf("NI %d queued %d (circuits %d)", i, q, ni.Circuits())
			}
		}
		t.Fatalf("chaos run failed to drain: %d in flight, only %d drops counted", net.InFlight(), d.DroppedCS)
	}
	st := net.Stats()
	if st.EjectedPackets == 0 {
		t.Fatal("chaos generated nothing")
	}
	t.Logf("chaos: %d packets, %d setups ok, %d hitchhikes, %d vicinity, %d teardowns, resizes=%d",
		st.EjectedPackets, st.SetupsOK, st.Hitchhikes, st.VicinityRides, st.TeardownsSent, net.ResizeEvents())
}

// TestChaosMonkeySeeds runs shorter chaos under several seeds.
func TestChaosMonkeySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := uint64(2); seed < 6; seed++ {
		cfg := HybridTDMConfig(6, 6).WithSharing().WithVCGating()
		cfg.Seed = seed
		cfg.SetupThreshold = 2
		cfg.IdleTeardown = 300
		net := New(cfg, func(id topology.NodeID) Endpoint {
			return &chaos{until: 5000}
		})
		net.Run(5000)
		ok := net.Drain(30000)
		d := net.Diagnose()
		net.Close()
		if d.LatchConflicts != 0 || d.DroppedCS > 8 {
			t.Fatalf("seed %d: invariants %+v", seed, d)
		}
		if !ok && net.InFlight() > d.DroppedCS {
			t.Fatalf("seed %d: failed to drain beyond counted drops", seed)
		}
	}
}

// TestChaosParallelDeterminism verifies the chaos workload is
// bit-identical under the parallel executor.
func TestChaosParallelDeterminism(t *testing.T) {
	run := func(workers int) (int64, int64) {
		cfg := HybridTDMConfig(6, 6).WithSharing()
		cfg.Workers = workers
		cfg.SetupThreshold = 2
		net := New(cfg, func(id topology.NodeID) Endpoint {
			return &chaos{until: 4000}
		})
		defer net.Close()
		net.EnableStats()
		net.Run(6000)
		st := net.Stats()
		return st.EjectedPackets, st.NetLatencySum
	}
	a1, b1 := run(1)
	a2, b2 := run(4)
	if a1 != a2 || b1 != b2 {
		t.Fatalf("parallel chaos diverged: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}
