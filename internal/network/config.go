// Package network assembles routers into a mesh NoC with per-tile network
// interfaces (NIs). The NI carries the source-side half of the paper's
// protocol: the switching decision (Section II-A, V-A2), circuit setup and
// teardown with retries (Section II-B), hitchhiker- and vicinity-sharing
// (Section III-A), and the network-wide dynamic slot-table sizing loop
// (Section II-C).
package network

import (
	"tdmnoc/internal/power"
	"tdmnoc/internal/router"
	"tdmnoc/internal/sim"
)

// Config describes one simulated network.
type Config struct {
	// Width and Height of the mesh (Table I: 6x6).
	Width, Height int
	// Router is the per-router configuration.
	Router router.Config
	// Seed drives all randomness; identical seeds reproduce runs exactly.
	Seed uint64
	// Workers selects executor parallelism (1 = serial; results identical).
	Workers int
	// AlwaysTick disables active-node scheduling, ticking every router
	// and NI every phase regardless of quiescence. Results are identical
	// either way (skipped ticks are provably state no-ops); equivalence
	// tests use this to pin the skipping path against the exhaustive
	// one, and it is the escape hatch if a future component breaks the
	// quiescence contract.
	AlwaysTick bool
	// Partition names the sim.Partitioner assigning tiles to workers and
	// ordering the per-partition memory slabs: "block" (the default —
	// spatially contiguous 2D blocks per worker) or "stride" (the
	// historical row-major chunking, kept for A/B benchmarks). Results
	// are bit-identical under either strategy at any worker count; only
	// cache behaviour and trace shard ownership differ.
	Partition string
	// InjectRingCap pre-sizes each NI's injection ring to this many
	// packet slots, carved from the partition's NI arena (0 = the lazy
	// default of 16, growing by doubling). Ring capacity is not
	// simulation state — the ring never drops or reorders, it only
	// reallocates when full — so the knob never changes results; it
	// exists because an over-saturated workload's backlog rings are the
	// one remaining steady-state allocation source on large meshes, and
	// a caller who knows the run window can size them out entirely.
	InjectRingCap int

	// HybridSwitching enables NI-side circuit switching decisions; it
	// requires Router.Hybrid.
	HybridSwitching bool
	// Sharing enables hitchhiker- and vicinity-sharing at the NIs
	// (requires Router.Sharing for DLT event generation).
	Sharing bool
	// DynamicSlots enables the network-wide slot-table sizing policy.
	DynamicSlots bool

	// PSDataFlits and CSDataFlits are the data packet lengths of Table I
	// (5 and 4; a vicinity-shared CS packet adds a header flit for 5).
	PSDataFlits int
	CSDataFlits int

	// SetupThreshold messages to one destination within FreqWindow cycles
	// trigger a circuit setup.
	SetupThreshold int
	FreqWindow     int64
	// MaxCircuits bounds registered circuits per source.
	MaxCircuits int
	// MaxBlocksPerCircuit bounds how many consecutive-slot blocks one
	// connection may hold; extra blocks scale a hot connection's
	// bandwidth in units of Duration/ActiveSlots (Section II-C's
	// time-division granularity).
	MaxBlocksPerCircuit int
	// OverflowForExtraBlock is how many circuit-wait rejections trigger a
	// request for an additional block.
	OverflowForExtraBlock int
	// RetrySetups is how many times a failed setup is re-sent with a
	// different slot id before giving up (until the frequency counter
	// re-triggers it).
	RetrySetups int
	// IdleTeardown is the idle time after which a circuit becomes a
	// teardown candidate when capacity is needed.
	IdleTeardown int64
	// DefaultSlack is the extra latency (cycles, versus the estimated
	// packet-switched latency) a message will tolerate to ride a circuit
	// when the sender did not specify its own slack.
	DefaultSlack int
	// DrainWindow is how many cycles the resize manager waits after
	// stopping circuit-switched injection before resetting the slot
	// tables, so in-flight CS flits land first.
	DrainWindow int

	// SlotInit, when > 0, overrides the dynamic resizer's initial
	// active slot-table region (normally capacity/8). Policy decisions
	// use it to start the table at the profiled demand instead of
	// discovering it through freeze→drain→reset doublings.
	SlotInit int
	// PinnedFlows lists (src, dst) node-id pairs whose circuits are set
	// up eagerly: the first send to a pinned destination triggers a
	// setup, skipping the SetupThreshold/FreqWindow frequency filter.
	PinnedFlows []PinnedFlow
	// RestrictSetups forbids circuit setups for flows not in
	// PinnedFlows (or, under the adaptive controller, not in the
	// current epoch's pin set). Non-pinned traffic stays packet-
	// switched, which keeps the slot tables small and eliminates their
	// setup/teardown config traffic.
	RestrictSetups bool
	// AdaptiveEpoch, when > 0, enables the online controller: every
	// AdaptiveEpoch cycles the network re-ranks flows by the recorder's
	// windowed flow deltas (bytes × distance), re-pins the top
	// AdaptiveTopK, and — when the pin set changed — re-allocates the
	// slot tables through the same freeze→drain→reset path the dynamic
	// resizer uses. Requires an attached flow-tracking recorder.
	AdaptiveEpoch int64
	// AdaptiveTopK bounds the online controller's pin set (default 8).
	AdaptiveTopK int

	// Power is the technology parameter set for energy reporting.
	Power power.Params

	// CheckInvariants enables the runtime invariant layer: flit
	// conservation, credit consistency, slot-table ownership, and the
	// rolling determinism digest. CheckInterval is the checking cadence
	// in cycles (<= 1 means every cycle). Checks run serially between
	// cycles, after the management step.
	CheckInvariants bool
	CheckInterval   int

	// PoolMessages recycles packet/flit objects through per-NI free
	// lists, making the steady-state cycle loop allocation-free. A
	// delivered packet is returned to the delivering NI's pool the
	// moment its endpoint OnDeliver callback returns, so it is only
	// safe when no endpoint retains packet pointers past OnDeliver.
	// The hsnoc layer enables it (all its endpoints are retention-free);
	// raw network.Config users opt in explicitly. Never changes results:
	// recycled objects are zeroed on release.
	PoolMessages bool
}

// DefaultConfig returns the Table-I baseline network: a 6x6 mesh of
// packet-switched 4-VC routers.
func DefaultConfig(width, height int) Config {
	return Config{
		Width: width, Height: height,
		Router:                router.DefaultConfig(),
		Seed:                  1,
		Workers:               1,
		PSDataFlits:           5,
		CSDataFlits:           4,
		SetupThreshold:        4,
		FreqWindow:            2048,
		MaxCircuits:           8,
		MaxBlocksPerCircuit:   4,
		OverflowForExtraBlock: 8,
		RetrySetups:           3,
		IdleTeardown:          8192,
		DefaultSlack:          64,
		DrainWindow:           64,
		Power:                 power.Default45nm(),
	}
}

// HybridTDMConfig returns the Hybrid-TDM-VC4 configuration: hybrid routers
// with 128-entry slot tables and NI-side circuit switching.
func HybridTDMConfig(width, height int) Config {
	c := DefaultConfig(width, height)
	c.Router = router.HybridConfig()
	c.HybridSwitching = true
	c.DynamicSlots = true
	c.Router.SlotActive = 16
	return c
}

// WithSharing enables circuit-switched path sharing (the "hop"
// configurations of Fig. 8).
func (c Config) WithSharing() Config {
	c.Sharing = true
	c.Router.Sharing = true
	return c
}

// WithVCGating enables aggressive VC power gating (the "VCt"
// configurations).
func (c Config) WithVCGating() Config {
	c.Router.VCGating = true
	return c
}

// WithLatencyVCGating selects the latency-driven gating refinement of
// Section V-B4 instead of the utilisation-driven policy.
func (c Config) WithLatencyVCGating() Config {
	c.Router.VCGating = true
	c.Router.LatencyVCGating = true
	return c
}

// ReserveDuration is the consecutive-slot reservation length: the CS data
// length, plus one slot for the vicinity-sharing header when sharing is on
// (Section III-A2).
func (c Config) ReserveDuration() int {
	if c.Sharing {
		return c.CSDataFlits + 1
	}
	return c.CSDataFlits
}

func (c Config) validate() {
	if c.Width <= 0 || c.Height <= 0 {
		panic("network: mesh dimensions must be positive")
	}
	if c.HybridSwitching && !c.Router.Hybrid {
		panic("network: HybridSwitching requires Router.Hybrid")
	}
	if c.Sharing && !c.Router.Sharing {
		panic("network: Sharing requires Router.Sharing")
	}
	if c.PSDataFlits <= 0 || c.CSDataFlits <= 0 {
		panic("network: packet sizes must be positive")
	}
	if c.SlotInit < 0 || c.SlotInit > c.Router.SlotCapacity {
		panic("network: SlotInit outside [0, SlotCapacity]")
	}
	if c.AdaptiveEpoch > 0 && !c.HybridSwitching {
		panic("network: AdaptiveEpoch requires HybridSwitching")
	}
	if _, err := sim.PartitionerByName(c.Partition); err != nil {
		panic(err.Error())
	}
	nodes := c.Width * c.Height
	for _, p := range c.PinnedFlows {
		if p.Src < 0 || p.Src >= nodes || p.Dst < 0 || p.Dst >= nodes {
			panic("network: PinnedFlows node id outside the mesh")
		}
	}
}

// PinnedFlow names one (src, dst) pair pinned to circuit switching.
type PinnedFlow struct {
	Src, Dst int
}
