package network

import "tdmnoc/internal/flit"

// pktQueue is a growable ring buffer of packets. The NI's injection
// queue needs O(1) pops at the front (one packet starts streaming per
// packet-time) and the occasional queue-jumping push at the front
// (configuration messages overtake data); the slice queue it replaces
// reallocated on every front-push and held the popped prefix live. The
// ring reuses one backing array for the life of the NI, which is what
// keeps the steady-state injection path allocation-free.
type pktQueue struct {
	buf  []*flit.Packet
	head int
	n    int
}

func (q *pktQueue) len() int { return q.n }

// at returns the i-th packet from the front (0 <= i < len). Used by the
// invariant hash and the conservation walk, which must visit packets in
// queue order to stay bit-compatible with the slice queue's iteration.
func (q *pktQueue) at(i int) *flit.Packet {
	return q.buf[(q.head+i)%len(q.buf)]
}

func (q *pktQueue) grow() {
	c := len(q.buf) * 2
	if c == 0 {
		c = 16
	}
	nb := make([]*flit.Packet, c)
	for i := 0; i < q.n; i++ {
		nb[i] = q.at(i)
	}
	q.buf, q.head = nb, 0
}

func (q *pktQueue) pushBack(p *flit.Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *pktQueue) pushFront(p *flit.Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1 + len(q.buf)) % len(q.buf)
	q.buf[q.head] = p
	q.n++
}

func (q *pktQueue) popFront() *flit.Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}
