package network

import (
	"testing"

	"tdmnoc/internal/topology"
)

// layoutRun drives one seeded hybrid-TDM+sharing run under an explicit
// partition strategy and worker count, returning the end-of-run
// full-state digest and in-flight count. Invariants are checked on a
// coarse cadence — the point here is layout equivalence, not the
// every-cycle checker (which has its own tests on small meshes).
func layoutRun(t *testing.T, w, h, workers int, partition string, cycles int) (uint64, int64) {
	t.Helper()
	cfg := HybridTDMConfig(w, h).WithSharing()
	cfg.Workers = workers
	cfg.Partition = partition
	cfg.CheckInvariants = true
	cfg.CheckInterval = 128
	net := New(cfg, func(id topology.NodeID) Endpoint {
		return &burst{count: 80, dstOf: reversePattern, allowCS: true, period: 5}
	})
	defer net.Close()
	net.Run(cycles)
	if n := net.InvariantCount(); n != 0 {
		t.Fatalf("%dx%d workers=%d partition=%q: %d invariant violations; first: %s",
			w, h, workers, partition, n, net.InvariantViolations()[0])
	}
	return net.StateDigest(), net.InFlight()
}

// TestLayoutDigestWorkerMatrix pins the slab-layout contract at scale:
// under the block partitioner (the default), the full-state digest is
// bit-identical across worker counts {1, 2, 8, 16} on both a ragged
// 10x6 mesh (the 2D block grid cannot tile it evenly at most worker
// counts) and a 32x32 mesh (the CI large-mesh smoke size). Per-worker
// slab boundaries move with the worker count, so any construction-order
// or carving bug that leaks layout into simulation state fails here.
func TestLayoutDigestWorkerMatrix(t *testing.T) {
	cases := []struct {
		w, h, cycles int
	}{
		{10, 6, 900},
		{32, 32, 600},
	}
	for _, tc := range cases {
		serialDigest, serialInFlight := layoutRun(t, tc.w, tc.h, 1, "block", tc.cycles)
		for _, workers := range []int{2, 8, 16} {
			d, inf := layoutRun(t, tc.w, tc.h, workers, "block", tc.cycles)
			if d != serialDigest || inf != serialInFlight {
				t.Errorf("%dx%d: workers=%d digest %016x (in-flight %d) != serial %016x (%d)",
					tc.w, tc.h, workers, d, inf, serialDigest, serialInFlight)
			}
		}
	}
}

// TestStrideBlockLayoutEquivalence pins the partitioner-independence
// contract: the stride (historical row-major chunking) and block
// (spatial 2D tiles) strategies reorder the per-partition memory slabs
// and the ticker permutation, but must produce bit-identical state —
// at every worker count, on a ragged mesh where the two strategies
// assign genuinely different tile sets to each worker.
func TestStrideBlockLayoutEquivalence(t *testing.T) {
	const w, h, cycles = 10, 6, 900
	for _, workers := range []int{1, 2, 4, 8} {
		ds, infS := layoutRun(t, w, h, workers, "stride", cycles)
		db, infB := layoutRun(t, w, h, workers, "block", cycles)
		if ds != db || infS != infB {
			t.Errorf("workers=%d: stride digest %016x (in-flight %d) != block %016x (%d)",
				workers, ds, infS, db, infB)
		}
	}
}
