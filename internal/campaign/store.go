package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Store persists campaign records as append-only JSONL and serves as
// the result cache: opening a store reloads every record previously
// written to the file, so an interrupted campaign resumes without
// recomputing finished jobs. Appends go straight to the file
// descriptor (no userspace buffering), so records survive a killed
// process up to the last completed line; a torn final line from a
// crash is skipped on reload and simply re-run.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	cache map[string]Record
}

// OpenStore opens (creating if needed) the JSONL store at path and
// loads its existing records.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	s := &Store{f: f, path: path, cache: map[string]Record{}}
	// ReadBytes instead of a Scanner: records have no line-length cap (a
	// Scanner's buffer limit would make one oversized record fail the
	// whole store open, losing resume). Only a genuinely torn trailing
	// line — unterminated, from a write cut short by a crash — is
	// skippable; an unparseable newline-terminated line means real
	// corruption and fails the open rather than silently dropping data.
	br := bufio.NewReader(f)
	for {
		line, rerr := br.ReadBytes('\n')
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var r Record
			switch jerr := json.Unmarshal(trimmed, &r); {
			case jerr != nil && rerr == nil:
				f.Close()
				return nil, fmt.Errorf("campaign: store %s: corrupt record: %w", path, jerr)
			case jerr != nil:
				// Torn trailing line; its job will be recomputed.
			case r.Key != "" && r.Err == "":
				s.cache[r.Key] = r
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			f.Close()
			return nil, fmt.Errorf("campaign: read store %s: %w", path, rerr)
		}
	}
	return s, nil
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Len is the number of cached records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// Lookup returns the cached record for key, marked Cached.
func (s *Store) Lookup(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.cache[key]
	if ok {
		r.Cached = true
	}
	return r, ok
}

// Append persists one record (and caches it). Records with Err set are
// rejected: failures must be retried, not replayed.
func (s *Store) Append(r Record) error {
	if r.Err != "" {
		return fmt.Errorf("campaign: refusing to persist failed record %s", r.Key)
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("campaign: encode record: %w", err)
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("campaign: store %s is closed", s.path)
	}
	if _, err := s.f.Write(b); err != nil {
		return fmt.Errorf("campaign: append record: %w", err)
	}
	s.cache[r.Key] = r
	return nil
}

// Records returns a copy of every cached record (order unspecified).
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.cache))
	for _, r := range s.cache {
		out = append(out, r)
	}
	return out
}

// Close releases the backing file. Lookups keep working from memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
