package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Store persists campaign records as append-only JSONL and serves as
// the result cache: opening a store reloads every record previously
// written to the file, so an interrupted campaign resumes without
// recomputing finished jobs. Appends go straight to the file
// descriptor (no userspace buffering), so records survive a killed
// process up to the last completed line; a torn final line from a
// crash is skipped on reload and simply re-run.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	cache map[string]Record
	// lines counts every non-empty line in the backing file (including
	// duplicates from concurrent writers and re-run fleet shards); the
	// excess over len(cache) is the dead weight Compact reclaims.
	lines int
}

// OpenStore opens (creating if needed) the JSONL store at path and
// loads its existing records.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	s := &Store{f: f, path: path, cache: map[string]Record{}}
	// ReadBytes instead of a Scanner: records have no line-length cap (a
	// Scanner's buffer limit would make one oversized record fail the
	// whole store open, losing resume). Only a genuinely torn trailing
	// line — unterminated, from a write cut short by a crash — is
	// skippable; an unparseable newline-terminated line means real
	// corruption and fails the open rather than silently dropping data.
	br := bufio.NewReader(f)
	for {
		line, rerr := br.ReadBytes('\n')
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			s.lines++
			var r Record
			switch jerr := json.Unmarshal(trimmed, &r); {
			case jerr != nil && rerr == nil:
				f.Close()
				return nil, fmt.Errorf("campaign: store %s: corrupt record: %w", path, jerr)
			case jerr != nil:
				// Torn trailing line; its job will be recomputed.
			case r.Key != "" && r.Err == "":
				s.cache[r.Key] = r
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			f.Close()
			return nil, fmt.Errorf("campaign: read store %s: %w", path, rerr)
		}
	}
	return s, nil
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Len is the number of cached records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// Lookup returns the cached record for key, marked Cached.
func (s *Store) Lookup(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.cache[key]
	if ok {
		r.Cached = true
	}
	return r, ok
}

// Append persists one record (and caches it). Records with Err set are
// rejected: failures must be retried, not replayed.
func (s *Store) Append(r Record) error {
	if r.Err != "" {
		return fmt.Errorf("campaign: refusing to persist failed record %s", r.Key)
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("campaign: encode record: %w", err)
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("campaign: store %s is closed", s.path)
	}
	if _, err := s.f.Write(b); err != nil {
		return fmt.Errorf("campaign: append record: %w", err)
	}
	s.lines++
	s.cache[r.Key] = r
	return nil
}

// AppendNew persists the record only when its key is not already
// cached, reporting whether a write happened. This is the
// content-addressed dedup the fleet path relies on: records are pure
// functions of their jobs, so a second record for a cached key (a
// re-leased shard completed twice, two workers racing) is byte-equal
// to the first and persisting it would only create dead weight.
func (s *Store) AppendNew(r Record) (bool, error) {
	s.mu.Lock()
	_, dup := s.cache[r.Key]
	s.mu.Unlock()
	if dup {
		return false, nil
	}
	if err := s.Append(r); err != nil {
		return false, err
	}
	return true, nil
}

// Dead reports how many persisted lines are no longer live records —
// duplicates from concurrent writers plus torn trailers. The fleet
// coordinator compacts a shard when this grows past its live count.
func (s *Store) Dead() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lines - len(s.cache)
}

// Compact rewrites the backing file to exactly the live records, in
// key order, dropping duplicate and torn lines. The rewrite goes
// through a temp file and a rename, so a crash mid-compaction leaves
// either the old file or the new one — never a half-written store.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("campaign: store %s is closed", s.path)
	}
	keys := make([]string, 0, len(s.cache))
	for k := range s.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tmp := s.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	bw := bufio.NewWriter(f)
	for _, k := range keys {
		b, err := json.Marshal(s.cache[k])
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("campaign: compact store: encode %s: %w", k, err)
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	nf, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted file is in place but we lost the append handle;
		// surface it — subsequent Appends would fail anyway.
		return fmt.Errorf("campaign: reopen compacted store: %w", err)
	}
	s.f.Close()
	s.f = nf
	s.lines = len(s.cache)
	return nil
}

// Records returns a copy of every cached record (order unspecified).
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.cache))
	for _, r := range s.cache {
		out = append(out, r)
	}
	return out
}

// Close releases the backing file. Lookups keep working from memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
