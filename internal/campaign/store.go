package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Store persists campaign records as append-only JSONL and serves as
// the result cache: opening a store reloads every record previously
// written to the file, so an interrupted campaign resumes without
// recomputing finished jobs. Appends go straight to the file
// descriptor (no userspace buffering), so records survive a killed
// process up to the last completed line; a torn final line from a
// crash is skipped on reload and simply re-run.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	cache map[string]Record
}

// OpenStore opens (creating if needed) the JSONL store at path and
// loads its existing records.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	s := &Store{f: f, path: path, cache: map[string]Record{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			// A torn trailing line from an interrupted run; the job it
			// belonged to will be recomputed.
			continue
		}
		if r.Key != "" && r.Err == "" {
			s.cache[r.Key] = r
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: read store %s: %w", path, err)
	}
	return s, nil
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Len is the number of cached records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// Lookup returns the cached record for key, marked Cached.
func (s *Store) Lookup(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.cache[key]
	if ok {
		r.Cached = true
	}
	return r, ok
}

// Append persists one record (and caches it). Records with Err set are
// rejected: failures must be retried, not replayed.
func (s *Store) Append(r Record) error {
	if r.Err != "" {
		return fmt.Errorf("campaign: refusing to persist failed record %s", r.Key)
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("campaign: encode record: %w", err)
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("campaign: store %s is closed", s.path)
	}
	if _, err := s.f.Write(b); err != nil {
		return fmt.Errorf("campaign: append record: %w", err)
	}
	s.cache[r.Key] = r
	return nil
}

// Records returns a copy of every cached record (order unspecified).
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.cache))
	for _, r := range s.cache {
		out = append(out, r)
	}
	return out
}

// Close releases the backing file. Lookups keep working from memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
