// Package campaign is the batch-simulation subsystem: it expands a
// declarative campaign spec (a parameter grid of switching mode,
// traffic pattern, mesh size, slot-table size, injection rate and
// seed) into independent jobs, runs them on a bounded worker pool with
// per-job timeout, cancellation and panic recovery, dedups work
// through a result cache keyed by the canonical config hash, and
// persists results incrementally as JSONL so an interrupted campaign
// resumes without recomputing finished jobs.
//
// The paper's whole evaluation — and the profile-driven sweeps of the
// related hybrid-switching literature — is exactly this workload: a
// large grid of independent (config, seed) simulations. cmd/sweep,
// cmd/experiments and the cmd/nocsimd HTTP service all execute through
// this one engine.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/policy"
)

// MeshSize is one topology point of the grid.
type MeshSize struct {
	Width  int `json:"width"`
	Height int `json:"height"`
}

// Spec is a declarative campaign: the cross product of its axes is the
// job list. Zero-valued axes fall back to the Table-I defaults during
// Normalize.
type Spec struct {
	// Name labels the campaign in listings and logs.
	Name string `json:"name,omitempty"`
	// Modes are switching architectures: packet|tdm|sdm.
	Modes []string `json:"modes"`
	// Patterns are synthetic traffic patterns:
	// ur|tornado|transpose|bc|neighbor|hotspot.
	Patterns []string `json:"patterns"`
	// Meshes are topology sizes (default: one 6x6 mesh).
	Meshes []MeshSize `json:"meshes,omitempty"`
	// Rates are offered loads in flits/node/cycle.
	Rates []float64 `json:"rates"`
	// SlotTables are slot-table capacities, a TDM-only axis (default:
	// the 128-entry Table-I capacity). Non-TDM modes collapse this
	// axis to a single point since it cannot affect them.
	SlotTables []int `json:"slot_tables,omitempty"`
	// Seeds replicate every grid point (default: seed 1).
	Seeds []uint64 `json:"seeds,omitempty"`

	// Scalar options applied to every job.
	PathSharing              bool `json:"path_sharing,omitempty"`
	VCPowerGating            bool `json:"vc_power_gating,omitempty"`
	LatencyBasedVCGating     bool `json:"latency_based_vc_gating,omitempty"`
	DisableTimeSlotStealing  bool `json:"disable_time_slot_stealing,omitempty"`
	DisableDynamicSlotSizing bool `json:"disable_dynamic_slot_sizing,omitempty"`
	// WarmupCycles and MeasureCycles default to the paper's 8000/40000.
	WarmupCycles  int `json:"warmup_cycles,omitempty"`
	MeasureCycles int `json:"measure_cycles,omitempty"`
	// SimWorkers sets per-simulation executor parallelism (default 1;
	// results are bit-identical for any value — the barrier executor
	// and active-node scheduler are digest-verified against serial — so
	// it is not a grid axis and does not enter cache keys). Campaigns
	// usually saturate cores with concurrent jobs instead, but on large
	// meshes with spare cores per job it is now a real speedup knob.
	SimWorkers int `json:"sim_workers,omitempty"`
	// TelemetryEvery, when positive, attaches a per-job observability
	// recorder sampling every K cycles; its deterministic Summary rides
	// in every record (telemetry_every re-keys jobs, so telemetry and
	// plain campaigns never share cached records). Requires SimWorkers
	// <= 1 and is not available for sdm mode.
	TelemetryEvery int `json:"telemetry_every,omitempty"`
	// CheckInvariants enables the runtime invariant layer on every job.
	// Checking only observes a run (it never changes results), so like
	// SimWorkers it does not enter cache keys; jobs whose checked run
	// reports violations fail with a descriptive Err instead of
	// persisting a corrupt record.
	CheckInvariants bool `json:"check_invariants,omitempty"`
	// PolicyProfile turns the campaign into a profile→re-run policy
	// loop (RunPolicyLoop): phase A runs every grid point with
	// flow-tracking telemetry and extracts a traffic profile, phase B
	// re-runs each point under every listed policy's decision and
	// reports the energy/latency deltas against the static baseline.
	// Requires tdm-only modes and is mutually exclusive with
	// TelemetryEvery (phase A attaches its own recorder).
	PolicyProfile *PolicyProfileSpec `json:"policy_profile,omitempty"`
}

// PolicyProfileSpec is the policy-loop axis of a Spec.
type PolicyProfileSpec struct {
	// Policies are the adaptive policies to compare, in policy.Parse
	// syntax ("static", "threshold:64", "greedy:8", "sdm-gate"). The
	// "static" baseline is prepended when absent — every comparison
	// needs its anchor.
	Policies []string `json:"policies"`
	// ProfileEvery is phase A's telemetry sampling interval in cycles
	// (default 512). It shapes the window series in the profile, not
	// the flow aggregates, and is part of the profile cache key.
	ProfileEvery int `json:"profile_every,omitempty"`
}

// ParseSpec reads a JSON spec, rejecting unknown fields so typos fail
// loudly, and normalizes it.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: bad spec: %w", err)
	}
	if err := s.Normalize(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Normalize fills defaulted axes and validates the grid.
func (s *Spec) Normalize() error {
	if len(s.Modes) == 0 {
		return fmt.Errorf("campaign: spec needs at least one mode")
	}
	if len(s.Patterns) == 0 {
		return fmt.Errorf("campaign: spec needs at least one pattern")
	}
	if len(s.Rates) == 0 {
		return fmt.Errorf("campaign: spec needs at least one rate")
	}
	for _, r := range s.Rates {
		if r <= 0 || r > 1 {
			return fmt.Errorf("campaign: rate %v outside (0, 1]", r)
		}
	}
	if len(s.Meshes) == 0 {
		s.Meshes = []MeshSize{{Width: 6, Height: 6}}
	}
	for _, m := range s.Meshes {
		if m.Width <= 0 || m.Height <= 0 {
			return fmt.Errorf("campaign: mesh %dx%d invalid", m.Width, m.Height)
		}
	}
	if len(s.SlotTables) == 0 {
		s.SlotTables = []int{128}
	}
	for _, st := range s.SlotTables {
		if st <= 0 {
			return fmt.Errorf("campaign: slot-table size %d invalid", st)
		}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{1}
	}
	if s.WarmupCycles == 0 {
		s.WarmupCycles = 8000
	}
	if s.MeasureCycles == 0 {
		s.MeasureCycles = 40000
	}
	if s.WarmupCycles < 0 || s.MeasureCycles <= 0 {
		return fmt.Errorf("campaign: warmup %d / measure %d cycles invalid", s.WarmupCycles, s.MeasureCycles)
	}
	if s.TelemetryEvery < 0 {
		return fmt.Errorf("campaign: telemetry_every %d negative", s.TelemetryEvery)
	}
	for _, m := range s.Modes {
		mode, err := ParseMode(m)
		if err != nil {
			return err
		}
		if s.TelemetryEvery > 0 && mode == hsnoc.HybridSDM {
			return fmt.Errorf("campaign: telemetry is not available for sdm mode")
		}
	}
	for _, p := range s.Patterns {
		if _, err := ParsePattern(p); err != nil {
			return err
		}
	}
	if pp := s.PolicyProfile; pp != nil {
		if s.TelemetryEvery > 0 {
			return fmt.Errorf("campaign: policy_profile and telemetry_every are mutually exclusive (phase A attaches its own recorder)")
		}
		for _, m := range s.Modes {
			if mode, err := ParseMode(m); err != nil || mode != hsnoc.HybridTDM {
				return fmt.Errorf("campaign: policy_profile requires tdm-only modes (got %q)", m)
			}
		}
		if pp.ProfileEvery < 0 {
			return fmt.Errorf("campaign: profile_every %d negative", pp.ProfileEvery)
		}
		if pp.ProfileEvery == 0 {
			pp.ProfileEvery = 512
		}
		if len(pp.Policies) == 0 {
			return fmt.Errorf("campaign: policy_profile needs at least one policy (%s)", strings.Join(policy.Names(), "|"))
		}
		hasStatic := false
		for _, ps := range pp.Policies {
			pol, err := policy.Parse(ps)
			if err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
			if pol.Name() == "static" {
				hasStatic = true
			}
		}
		if !hasStatic {
			// The baseline anchors every delta; silently missing it would
			// make the report compare policies against nothing.
			pp.Policies = append([]string{"static"}, pp.Policies...)
		}
	}
	return nil
}

// Rehydrate re-normalizes a spec read back from persisted state (a
// fleet journal, a checkpoint) and verifies it still hashes to
// wantHash. A mismatch means the binary's spec semantics drifted since
// the spec was persisted — defaults changed, an axis was added — and
// the re-expanded job grid would no longer match the recorded one;
// failing loudly beats silently re-sharding. An empty wantHash skips
// the check.
func (s Spec) Rehydrate(wantHash string) (Spec, error) {
	c := s
	if err := c.Normalize(); err != nil {
		return Spec{}, err
	}
	if wantHash != "" {
		if got := c.Hash(); got != wantHash {
			return Spec{}, fmt.Errorf("campaign: rehydrated spec hash %s != recorded %s (spec semantics changed since it was persisted?)", got, wantHash)
		}
	}
	return c, nil
}

// Hash is the canonical fingerprint of a normalized spec, used to name
// its result store so re-submitting the same spec resumes from the
// same JSONL file.
func (s Spec) Hash() string {
	c := s
	if err := c.Normalize(); err != nil {
		// An invalid spec still hashes (over its raw encoding) so
		// callers can log it; it will never reach the engine.
		c = s
	}
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("campaign: spec hash: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Jobs returns the expanded job count without building the jobs
// (0 for an invalid spec).
func (s Spec) Jobs() int {
	if err := s.Normalize(); err != nil {
		return 0
	}
	n := 0
	for _, m := range s.Modes {
		slots := len(s.SlotTables)
		if mode, err := ParseMode(m); err != nil || mode != hsnoc.HybridTDM {
			slots = 1
		}
		n += len(s.Patterns) * len(s.Meshes) * slots * len(s.Rates) * len(s.Seeds)
	}
	return n
}

// Expand builds the deterministic job list: modes, then patterns,
// meshes, slot tables, rates, seeds — the same nesting every time, so
// serial and parallel campaigns emit records for identical job
// sequences.
func (s Spec) Expand() ([]Job, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	var jobs []Job
	for _, modeName := range s.Modes {
		mode, err := ParseMode(modeName)
		if err != nil {
			return nil, err
		}
		slots := s.SlotTables
		if mode != hsnoc.HybridTDM {
			// Slot tables only exist in TDM routers; collapsing the
			// axis avoids simulating identical configs under distinct
			// cache keys.
			slots = slots[:1]
		}
		for _, patName := range s.Patterns {
			pat, err := ParsePattern(patName)
			if err != nil {
				return nil, err
			}
			for _, mesh := range s.Meshes {
				for _, slot := range slots {
					for _, rate := range s.Rates {
						for _, seed := range s.Seeds {
							cfg := hsnoc.DefaultConfig(mesh.Width, mesh.Height)
							cfg.Mode = mode
							cfg.Seed = seed
							cfg.PathSharing = s.PathSharing && mode == hsnoc.HybridTDM
							cfg.VCPowerGating = s.VCPowerGating
							cfg.LatencyBasedVCGating = s.LatencyBasedVCGating
							cfg.DisableTimeSlotStealing = s.DisableTimeSlotStealing
							cfg.DisableDynamicSlotSizing = s.DisableDynamicSlotSizing
							if mode == hsnoc.HybridTDM {
								cfg.SlotTableEntries = slot
							}
							if s.SimWorkers > 0 {
								cfg.Workers = s.SimWorkers
							}
							cfg.CheckInvariants = s.CheckInvariants
							if err := cfg.Validate(); err != nil {
								return nil, err
							}
							label := fmt.Sprintf("%v/%v/%dx%d/r%.3f/seed%d", mode, pat, mesh.Width, mesh.Height, rate, seed)
							j := NewJob(cfg, pat, rate, s.WarmupCycles, s.MeasureCycles, label)
							if s.TelemetryEvery > 0 {
								j = j.WithTelemetry(s.TelemetryEvery)
							}
							jobs = append(jobs, j)
						}
					}
				}
			}
		}
	}
	return jobs, nil
}

// ParseMode maps the CLI/spec mode names onto hsnoc modes.
func ParseMode(s string) (hsnoc.Mode, error) {
	switch strings.ToLower(s) {
	case "packet", "ps", "packet-vc4":
		return hsnoc.PacketSwitched, nil
	case "tdm", "hybrid-tdm":
		return hsnoc.HybridTDM, nil
	case "sdm", "hybrid-sdm":
		return hsnoc.HybridSDM, nil
	}
	return 0, fmt.Errorf("campaign: unknown mode %q (packet|tdm|sdm)", s)
}

// ParsePattern maps the CLI/spec pattern names onto traffic patterns.
func ParsePattern(s string) (hsnoc.Pattern, error) {
	switch strings.ToLower(s) {
	case "ur", "uniform", "random":
		return hsnoc.UniformRandom, nil
	case "tor", "tornado":
		return hsnoc.Tornado, nil
	case "tr", "transpose":
		return hsnoc.Transpose, nil
	case "bc", "bitcomplement":
		return hsnoc.BitComplement, nil
	case "nbr", "neighbor":
		return hsnoc.Neighbor, nil
	case "hot", "hotspot":
		return hsnoc.Hotspot, nil
	}
	return 0, fmt.Errorf("campaign: unknown pattern %q (ur|tornado|transpose|bc|neighbor|hotspot)", s)
}
