package campaign

import "fmt"

// Shard identifies one contiguous slice of a spec's deterministic job
// list. Shards are the unit of fleet distribution: a coordinator
// leases shard indices, and workers re-derive the jobs locally from
// (spec, index, size) — the job list is a pure function of the
// normalized spec, so no job payloads ever cross the wire and every
// party necessarily agrees on what shard i contains.
type Shard struct {
	// Index is the 0-based shard number within the campaign.
	Index int `json:"index"`
	// Size is the campaign's shard size (jobs per shard; the last
	// shard may be shorter).
	Size int `json:"size"`
}

// NumShards is the shard count of the spec's job grid at the given
// shard size (0 for an invalid spec or non-positive size).
func (s Spec) NumShards(size int) int {
	if size <= 0 {
		return 0
	}
	n := s.Jobs()
	return (n + size - 1) / size
}

// ShardJobs expands shard index of the spec's deterministic job list
// at the given shard size. The expansion order is identical on every
// host (see Expand), so a coordinator and any worker derive the same
// jobs for the same (spec, index, size) triple.
func (s Spec) ShardJobs(index, size int) ([]Job, error) {
	if size <= 0 {
		return nil, fmt.Errorf("campaign: shard size %d invalid", size)
	}
	jobs, err := s.Expand()
	if err != nil {
		return nil, err
	}
	lo := index * size
	if index < 0 || lo >= len(jobs) {
		return nil, fmt.Errorf("campaign: shard %d out of range (%d jobs, size %d)", index, len(jobs), size)
	}
	hi := lo + size
	if hi > len(jobs) {
		hi = len(jobs)
	}
	return jobs[lo:hi], nil
}
