package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tdmnoc/internal/obs"
	"tdmnoc/internal/stats"
)

// stubRunner returns instantly with a deterministic record derived
// from the job rate, so store tests never simulate.
func stubRunner(ctx context.Context, j Job) (stats.RunRecord, *obs.Summary, error) {
	return stats.RunRecord{Runs: 1, Packets: int64(j.Rate * 1000)}, nil, nil
}

// TestConcurrentEnginesMergeIdempotentlyOnReload is the concurrent-
// writer contract: two engines with independent store handles on the
// same file, running overlapping job lists at the same time, may both
// append records for the same config hash. On reload the duplicates
// must collapse to one record per key — the cache merges idempotently —
// and compaction must reclaim the dead lines without changing the
// live set.
func TestConcurrentEnginesMergeIdempotentlyOnReload(t *testing.T) {
	spec := Spec{
		Modes:         []string{"tdm"},
		Patterns:      []string{"transpose"},
		Meshes:        []MeshSize{{Width: 4, Height: 4}},
		Rates:         []float64{0.05, 0.10, 0.15, 0.20},
		Seeds:         []uint64{1, 2},
		WarmupCycles:  100,
		MeasureCycles: 200,
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shared.jsonl")

	// Two handles on one file: neither sees the other's cache, so the
	// overlapping half of the job lists is written twice.
	sa, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	ea := New(Options{Workers: 2, Runner: stubRunner, Store: sa})
	eb := New(Options{Workers: 2, Runner: stubRunner, Store: sb})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ea.Run(context.Background(), jobs[:6]) // jobs 0-5
	}()
	go func() {
		defer wg.Done()
		eb.Run(context.Background(), jobs[2:]) // jobs 2-7: overlaps 2-5
	}()
	wg.Wait()
	sa.Close()
	sb.Close()

	reloaded, err := OpenStore(path)
	if err != nil {
		t.Fatalf("reload after concurrent writers: %v", err)
	}
	defer reloaded.Close()
	if reloaded.Len() != len(jobs) {
		t.Fatalf("reloaded %d records, want %d (duplicates must merge)", reloaded.Len(), len(jobs))
	}
	for _, j := range jobs {
		r, ok := reloaded.Lookup(j.Key)
		if !ok {
			t.Fatalf("job %s missing after reload", j.Label)
		}
		if r.Result.Runs != 1 {
			t.Fatalf("job %s: Runs = %d, want 1 (records must not double-merge)", j.Label, r.Result.Runs)
		}
	}
	if reloaded.Dead() == 0 {
		t.Fatal("expected dead lines from the overlapping writes")
	}
	if err := reloaded.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if reloaded.Dead() != 0 || reloaded.Len() != len(jobs) {
		t.Fatalf("after compact: live=%d dead=%d, want %d/0", reloaded.Len(), reloaded.Dead(), len(jobs))
	}
}

// seedShardedStore writes n records with uniformly spread key prefixes
// and returns their keys.
func seedShardedStore(t *testing.T, ss *ShardedStore, n int) []string {
	t.Helper()
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%x%063x", i%16, i)
		keys[i] = key
		wrote, err := ss.Append(Record{Key: key, Mode: "tdm", Pattern: "ur", Rate: 0.1, Result: stats.RunRecord{Runs: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if !wrote {
			t.Fatalf("record %d unexpectedly deduped", i)
		}
	}
	return keys
}

func TestShardedStoreRoutesAndReloads(t *testing.T) {
	dir := t.TempDir()
	ss, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := seedShardedStore(t, ss, 64)
	if ss.Len() != 64 {
		t.Fatalf("Len = %d, want 64", ss.Len())
	}
	ss.Close()

	// All 16 shard files exist and each carries its slice.
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != storeShards {
		t.Fatalf("found %d shard files, want %d", len(files), storeShards)
	}

	reloaded, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reloaded.Close()
	found, missing := reloaded.LookupAll(keys)
	if missing != 0 || len(found) != len(keys) {
		t.Fatalf("LookupAll found %d missing %d, want %d/0", len(found), missing, len(keys))
	}
	groups := reloaded.MergeGroups(func(r Record) string { return r.Mode })
	if groups["tdm"].Runs != 64 {
		t.Fatalf("MergeGroups runs = %d, want 64", groups["tdm"].Runs)
	}
}

// TestShardedStoreSkipsTornTrailingLine: a crash mid-append leaves an
// unterminated line in one shard file; reload drops just that record.
func TestShardedStoreSkipsTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	ss, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedShardedStore(t, ss, 32)
	ss.Close()

	shardPath := filepath.Join(dir, "shard-3.jsonl")
	f, err := os.OpenFile(shardPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"3abc","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reloaded, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatalf("reload with torn trailer: %v", err)
	}
	defer reloaded.Close()
	if reloaded.Len() != 32 {
		t.Fatalf("Len = %d, want 32 (torn line skipped, not loaded)", reloaded.Len())
	}
	if reloaded.Dead() != 1 {
		t.Fatalf("Dead = %d, want 1 (the torn line)", reloaded.Dead())
	}
}

// TestShardedStoreFailsOnMidFileCorruption: a newline-terminated
// garbage line in the middle of a shard is real corruption, not a
// crash artifact — the open must fail loudly instead of silently
// dropping data.
func TestShardedStoreFailsOnMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	ss, err := OpenShardedStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedShardedStore(t, ss, 32)
	ss.Close()

	shardPath := filepath.Join(dir, "shard-5.jsonl")
	b, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	if len(lines) < 2 {
		t.Fatalf("shard 5 has %d lines; need 2+ to corrupt the middle", len(lines))
	}
	lines[0] = "{garbage not json}\n"
	if err := os.WriteFile(shardPath, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenShardedStore(dir); err == nil {
		t.Fatal("expected OpenShardedStore to fail on mid-file corruption")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %q does not mention corruption", err)
	}
}

func TestShardHelpers(t *testing.T) {
	spec := Spec{
		Modes:         []string{"tdm"},
		Patterns:      []string{"ur"},
		Rates:         []float64{0.05, 0.10, 0.15},
		Seeds:         []uint64{1, 2, 3},
		WarmupCycles:  100,
		MeasureCycles: 100,
	} // 9 jobs
	if got := spec.NumShards(4); got != 3 {
		t.Fatalf("NumShards(4) = %d, want 3", got)
	}
	if got := spec.NumShards(0); got != 0 {
		t.Fatalf("NumShards(0) = %d, want 0", got)
	}
	all, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var derived []Job
	for i := 0; i < spec.NumShards(4); i++ {
		part, err := spec.ShardJobs(i, 4)
		if err != nil {
			t.Fatalf("ShardJobs(%d): %v", i, err)
		}
		derived = append(derived, part...)
	}
	if len(derived) != len(all) {
		t.Fatalf("shards cover %d jobs, want %d", len(derived), len(all))
	}
	for i := range all {
		if derived[i].Key != all[i].Key {
			t.Fatalf("job %d: shard derivation diverges from Expand", i)
		}
	}
	if _, err := spec.ShardJobs(99, 4); err == nil {
		t.Fatal("expected out-of-range shard to error")
	}
}
