package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/stats"
)

// Job is one simulation to run: a fully specified configuration plus
// the traffic and measurement parameters. Jobs are independent and
// deterministic, so equal keys mean interchangeable results.
type Job struct {
	// Key is the cache key: a canonical hash over the config hash and
	// the run parameters. Two jobs with equal keys produce identical
	// records.
	Key string
	// Label is a human-readable identifier carried into the record.
	Label string
	// Config is the complete network configuration (includes the seed).
	Config hsnoc.Config
	// Pattern and Rate describe the synthetic traffic.
	Pattern     hsnoc.Pattern
	PatternName string
	Rate        float64
	// Warmup and Measure are the region lengths in cycles.
	Warmup, Measure int
	// TelemetryEvery, when positive, attaches a per-job observability
	// recorder sampling every K cycles; its Summary rides in the record.
	// Set it through WithTelemetry so the cache key reflects it.
	TelemetryEvery int
}

// NewJob builds a job and computes its cache key. It is the bridge for
// drivers (cmd/experiments, cmd/sweep) that construct configs
// programmatically rather than through a Spec.
func NewJob(cfg hsnoc.Config, pattern hsnoc.Pattern, rate float64, warmup, measure int, label string) Job {
	payload := fmt.Sprintf("%s|%v|%.9g|%d|%d", cfg.Hash(), pattern, rate, warmup, measure)
	sum := sha256.Sum256([]byte(payload))
	return Job{
		Key:         hex.EncodeToString(sum[:]),
		Label:       label,
		Config:      cfg,
		Pattern:     pattern,
		PatternName: pattern.String(),
		Rate:        rate,
		Warmup:      warmup,
		Measure:     measure,
	}
}

// WithTelemetry returns a copy of the job with per-job telemetry
// enabled at the given sampling interval (cycles). Telemetry changes
// what the record carries, so the job is re-keyed: a cached record
// without telemetry is not interchangeable with one that has it. A
// non-positive interval returns the job unchanged.
func (j Job) WithTelemetry(every int) Job {
	if every <= 0 {
		return j
	}
	j.TelemetryEvery = every
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|telemetry%d", j.Key, every)))
	j.Key = hex.EncodeToString(sum[:])
	return j
}

// Record is one job's persisted result — one JSONL line in the result
// store. It carries enough of the job identity to be useful standalone
// and a mergeable RunRecord with the metrics. Records hold no
// timestamps: a record is a pure function of its job, which is what
// makes serial and parallel campaign output byte-identical.
type Record struct {
	Key     string  `json:"key"`
	Label   string  `json:"label,omitempty"`
	Mode    string  `json:"mode"`
	Pattern string  `json:"pattern"`
	Width   int     `json:"width"`
	Height  int     `json:"height"`
	Slots   int     `json:"slots,omitempty"`
	Rate    float64 `json:"rate"`
	Seed    uint64  `json:"seed"`
	Warmup  int     `json:"warmup"`
	Measure int     `json:"measure"`

	Result stats.RunRecord `json:"result"`
	// Telemetry is the observability digest of jobs run with
	// WithTelemetry; like Result it is timestamp-free, so telemetry-
	// bearing stores stay byte-identical between serial and parallel
	// campaign runs.
	Telemetry *obs.Summary `json:"telemetry,omitempty"`
	// Err is set when the job failed (timeout, cancellation, panic);
	// failed records are returned to the caller but never persisted,
	// so a resumed campaign retries them.
	Err string `json:"error,omitempty"`

	// Cached marks records served from the result store or deduped
	// within the campaign. Runtime-only: excluded from persistence so
	// stored bytes stay identical across fresh and resumed runs.
	Cached bool `json:"-"`
}

// newRecord seeds a record with the job's identity.
func newRecord(j Job) Record {
	return Record{
		Key:     j.Key,
		Label:   j.Label,
		Mode:    j.Config.Mode.String(),
		Pattern: j.PatternName,
		Width:   j.Config.Width,
		Height:  j.Config.Height,
		Slots:   j.Config.SlotTableEntries,
		Rate:    j.Rate,
		Seed:    j.Config.Seed,
		Warmup:  j.Warmup,
		Measure: j.Measure,
	}
}

// Aggregate merges records sharing a group key (records with non-empty
// Err are skipped). The classic use is averaging a sweep point across
// seeds: group by everything except the seed.
func Aggregate(recs []Record, key func(Record) string) map[string]stats.RunRecord {
	out := map[string]stats.RunRecord{}
	for _, r := range recs {
		if r.Err != "" {
			continue
		}
		k := key(r)
		agg := out[k]
		agg.Merge(r.Result)
		out[k] = agg
	}
	return out
}

// GroupWithoutSeed is the Aggregate key that folds seeds together.
func GroupWithoutSeed(r Record) string {
	return fmt.Sprintf("%s/%s/%dx%d/s%d/r%.3f", r.Mode, r.Pattern, r.Width, r.Height, r.Slots, r.Rate)
}
