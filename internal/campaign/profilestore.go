package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"tdmnoc/internal/policy"
)

// profileLine is one persisted profile: the job-derived cache key plus
// the extracted traffic profile.
type profileLine struct {
	Key     string          `json:"key"`
	Profile *policy.Profile `json:"profile"`
}

// ProfileStore persists extracted traffic profiles as append-only JSONL,
// mirroring the result Store: profiles are pure functions of their jobs
// (byte-identical at any worker count), so a cached profile is
// interchangeable with a fresh extraction and an interrupted policy
// campaign resumes its phase-A work. Keys are ProfileKey(job, every).
type ProfileStore struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	cache map[string]*policy.Profile
}

// ProfileKey names the profile of one base job at one sampling interval.
// The interval is part of the key because it changes the recorder's
// window series (though not the flow aggregates), so profiles from
// different intervals are kept distinct rather than silently shared.
func ProfileKey(j Job, every int) string {
	return fmt.Sprintf("%s|profile|%d", j.Key, every)
}

// OpenProfileStore opens (creating if needed) the JSONL profile store
// at path and loads its existing profiles.
func OpenProfileStore(path string) (*ProfileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open profile store: %w", err)
	}
	s := &ProfileStore{f: f, path: path, cache: map[string]*policy.Profile{}}
	br := bufio.NewReader(f)
	for {
		line, rerr := br.ReadBytes('\n')
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var p profileLine
			switch jerr := json.Unmarshal(trimmed, &p); {
			case jerr != nil && rerr == nil:
				f.Close()
				return nil, fmt.Errorf("campaign: profile store %s: corrupt line: %w", path, jerr)
			case jerr != nil:
				// Torn trailing line from a crash; its profile is re-extracted.
			case p.Key != "" && p.Profile != nil:
				s.cache[p.Key] = p.Profile
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			f.Close()
			return nil, fmt.Errorf("campaign: read profile store %s: %w", path, rerr)
		}
	}
	return s, nil
}

// Path returns the backing file path.
func (s *ProfileStore) Path() string { return s.path }

// Len is the number of cached profiles.
func (s *ProfileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// Lookup returns the cached profile for key.
func (s *ProfileStore) Lookup(key string) (*policy.Profile, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.cache[key]
	return p, ok
}

// Append persists one profile unless its key is already cached
// (profiles are content-addressed: a duplicate would be byte-equal).
func (s *ProfileStore) Append(key string, p *policy.Profile) error {
	if key == "" || p == nil {
		return fmt.Errorf("campaign: refusing to persist empty profile")
	}
	b, err := json.Marshal(profileLine{Key: key, Profile: p})
	if err != nil {
		return fmt.Errorf("campaign: encode profile: %w", err)
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.cache[key]; dup {
		return nil
	}
	if s.f == nil {
		return fmt.Errorf("campaign: profile store %s is closed", s.path)
	}
	if _, err := s.f.Write(b); err != nil {
		return fmt.Errorf("campaign: append profile: %w", err)
	}
	s.cache[key] = p
	return nil
}

// Close releases the backing file. Lookups keep working from memory.
func (s *ProfileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
