package campaign

import (
	"context"
	"fmt"
	"sync"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/policy"
	"tdmnoc/internal/stats"
)

// SimulateProfile runs one base job with flow-tracking telemetry and
// extracts its traffic profile alongside the ordinary result record.
// The returned record is byte-identical to what plain Simulate would
// persist for the same job — telemetry only observes a run — so
// phase A of the policy loop can seed the shared result store under
// the base job key and a later plain campaign (or the static phase-B
// re-run) cache-hits it.
func SimulateProfile(ctx context.Context, j Job, every int) (stats.RunRecord, *policy.Profile, error) {
	if every <= 0 {
		every = 512
	}
	s := hsnoc.NewSynthetic(j.Config, j.Pattern, j.Rate)
	defer s.Close()
	// The profile reads aggregate flow counters, link totals and the
	// window series; the event ring is heavily decimated since nothing
	// here exports a trace.
	_, err := s.AttachTelemetry(hsnoc.TelemetryOptions{
		Every:        every,
		RingCapacity: 1 << 12,
		RingSample:   1 << 10,
		KindMask:     obs.ProfileFlows,
		TrackFlows:   true,
	})
	if err != nil {
		return stats.RunRecord{}, nil, err
	}
	if err := s.WarmupContext(ctx, j.Warmup); err != nil {
		return stats.RunRecord{}, nil, err
	}
	res, err := s.RunContext(ctx, j.Measure)
	if err != nil {
		return stats.RunRecord{}, nil, err
	}
	prof, err := s.ExtractProfile()
	if err != nil {
		return stats.RunRecord{}, nil, err
	}
	if err := s.InvariantError(); err != nil {
		return FromResults(res), prof, err
	}
	return FromResults(res), prof, nil
}

// PolicyOutcome compares one policy's re-run against the static
// baseline of the same grid point.
type PolicyOutcome struct {
	Label   string `json:"label"`
	Policy  string `json:"policy"`
	BaseKey string `json:"base_key"`
	// RunKey is the phase-B job key. For the static policy it equals
	// BaseKey — applying the empty decision reproduces the base config
	// bit for bit, which is what makes the baseline a cache hit.
	RunKey   string          `json:"run_key"`
	Decision policy.Decision `json:"decision"`
	// Err carries a phase-A profile failure, an inapplicable decision
	// or a failed re-run; metric fields are zero when set.
	Err string `json:"error,omitempty"`

	BaseEnergyPerFlit float64 `json:"base_energy_per_flit_pj"`
	EnergyPerFlit     float64 `json:"energy_per_flit_pj"`
	// EnergyDeltaPct is the energy-per-flit change vs the baseline:
	// negative is an improvement.
	EnergyDeltaPct  float64 `json:"energy_delta_pct"`
	BaseAvgLatency  float64 `json:"base_avg_latency_cycles"`
	AvgLatency      float64 `json:"avg_latency_cycles"`
	LatencyDeltaPct float64 `json:"latency_delta_pct"`
	BaseThroughput  float64 `json:"base_throughput"`
	Throughput      float64 `json:"throughput"`
}

// PolicyReport is the output of RunPolicyLoop: one outcome per
// (grid point, policy), in grid-then-policy order — deterministic, so
// two runs of the same spec emit identical reports.
type PolicyReport struct {
	ProfileEvery int             `json:"profile_every"`
	Policies     []string        `json:"policies"`
	Outcomes     []PolicyOutcome `json:"outcomes"`
}

// EnergyPerFlit is the record's total energy divided by delivered
// flits (FlitCycles is flits per node). Zero when nothing was delivered.
func EnergyPerFlit(r Record) float64 {
	flits := r.Result.FlitCycles * float64(r.Width*r.Height)
	if flits <= 0 {
		return 0
	}
	return r.Result.EnergyPJ / flits
}

// RunPolicyLoop executes the profile→re-run policy comparison declared
// by spec.PolicyProfile. Phase A runs every grid point with
// flow-tracking telemetry (through a sub-engine on the same worker
// budget), persists the base record in the engine's result store and
// the extracted profile in profiles (either store may be nil for
// in-memory-only runs). Phase B maps each policy over each profile via
// policy.Decide + hsnoc.ApplyDecision and runs the derived configs
// through the engine — the static baseline re-derives the base config
// exactly, so with a store it never re-simulates. The report carries
// per-point energy-per-flit, latency and throughput deltas against the
// baseline.
func RunPolicyLoop(ctx context.Context, e *Engine, spec Spec, profiles *ProfileStore) (*PolicyReport, error) {
	if spec.PolicyProfile == nil {
		return nil, fmt.Errorf("campaign: spec has no policy_profile section")
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	pp := spec.PolicyProfile
	pols := make([]policy.Policy, len(pp.Policies))
	for i, ps := range pp.Policies {
		pol, err := policy.Parse(ps)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		pols[i] = pol
	}
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}

	// Phase A: profile every grid point, serving cached (record,
	// profile) pairs without simulating. A point whose record is cached
	// but whose profile is not must still re-run: the profile cannot be
	// reconstructed from the record.
	baseRecs := make([]Record, len(jobs))
	profs := make([]*policy.Profile, len(jobs))
	var need []Job
	var needIdx []int
	for i, j := range jobs {
		if profiles != nil && e.store != nil {
			if p, ok := profiles.Lookup(ProfileKey(j, pp.ProfileEvery)); ok {
				if r, rok := e.store.Lookup(j.Key); rok {
					profs[i], baseRecs[i] = p, r
					continue
				}
			}
		}
		need = append(need, j)
		needIdx = append(needIdx, i)
	}
	if len(need) > 0 {
		var mu sync.Mutex
		got := map[string]*policy.Profile{}
		runner := func(ctx context.Context, j Job) (stats.RunRecord, *obs.Summary, error) {
			rr, prof, err := SimulateProfile(ctx, j, pp.ProfileEvery)
			if err == nil {
				mu.Lock()
				got[j.Key] = prof
				mu.Unlock()
			}
			// No Summary: the persisted record must stay byte-identical
			// to a plain Simulate record for the same key.
			return rr, nil, err
		}
		// The sub-engine runs without a store — cache decisions were
		// made above, and a store hit here would skip the extraction.
		sub := New(Options{Workers: e.workers, JobTimeout: e.timeout, Runner: runner})
		recs := sub.Run(ctx, need)
		for k, rec := range recs {
			i := needIdx[k]
			baseRecs[i] = rec
			if rec.Err != "" {
				continue
			}
			profs[i] = got[need[k].Key]
			if e.store != nil {
				if _, err := e.store.AppendNew(rec); err != nil {
					return nil, err
				}
			}
			if profiles != nil {
				if err := profiles.Append(ProfileKey(need[k], pp.ProfileEvery), profs[i]); err != nil {
					return nil, err
				}
			}
		}
	}

	// Phase B: one derived job per (grid point, policy). Failed grid
	// points surface as per-policy outcome errors, never as a loop
	// error — one saturated point must not sink the comparison.
	report := &PolicyReport{
		ProfileEvery: pp.ProfileEvery,
		Policies:     append([]string(nil), pp.Policies...),
		Outcomes:     make([]PolicyOutcome, 0, len(jobs)*len(pols)),
	}
	var bjobs []Job
	var bslot []int // outcome index per phase-B job
	for i, j := range jobs {
		for pi, pol := range pols {
			out := PolicyOutcome{
				Label:   j.Label,
				Policy:  pp.Policies[pi],
				BaseKey: j.Key,
			}
			if baseRecs[i].Err != "" {
				out.Err = fmt.Sprintf("profile run failed: %s", baseRecs[i].Err)
				report.Outcomes = append(report.Outcomes, out)
				continue
			}
			out.Decision = pol.Decide(profs[i])
			cfg, err := hsnoc.ApplyDecision(j.Config, out.Decision)
			if err != nil {
				out.Err = err.Error()
				report.Outcomes = append(report.Outcomes, out)
				continue
			}
			bj := NewJob(cfg, j.Pattern, j.Rate, j.Warmup, j.Measure,
				fmt.Sprintf("%s/policy=%s", j.Label, pol.Name()))
			out.RunKey = bj.Key
			bjobs = append(bjobs, bj)
			bslot = append(bslot, len(report.Outcomes))
			report.Outcomes = append(report.Outcomes, out)
		}
	}
	brecs := e.Run(ctx, bjobs)
	for k, rec := range brecs {
		out := &report.Outcomes[bslot[k]]
		if rec.Err != "" {
			out.Err = rec.Err
			continue
		}
		base := baseRecs[0]
		for i, j := range jobs {
			if j.Key == out.BaseKey {
				base = baseRecs[i]
				break
			}
		}
		out.BaseEnergyPerFlit = EnergyPerFlit(base)
		out.EnergyPerFlit = EnergyPerFlit(rec)
		out.EnergyDeltaPct = deltaPct(out.BaseEnergyPerFlit, out.EnergyPerFlit)
		out.BaseAvgLatency = base.Result.AvgNetLatency()
		out.AvgLatency = rec.Result.AvgNetLatency()
		out.LatencyDeltaPct = deltaPct(out.BaseAvgLatency, out.AvgLatency)
		out.BaseThroughput = base.Result.Throughput()
		out.Throughput = rec.Result.Throughput()
	}
	return report, nil
}

// deltaPct is the relative change new vs base in percent (0 when the
// base is zero — no meaningful delta against nothing).
func deltaPct(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (new - base) / base * 100
}
