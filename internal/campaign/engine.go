package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/stats"
)

// Runner executes one job. The default is Simulate; tests and the
// experiment drivers may substitute their own. The returned Summary is
// nil unless the job requested telemetry (Job.TelemetryEvery > 0).
type Runner func(ctx context.Context, job Job) (stats.RunRecord, *obs.Summary, error)

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent jobs (0 = NumCPU).
	Workers int
	// JobTimeout cancels an individual job after this long (0 = none).
	JobTimeout time.Duration
	// Runner executes jobs (nil = Simulate).
	Runner Runner
	// Store is the persistent result cache (nil = in-memory only; jobs
	// still dedup against each other within one Run).
	Store *Store
}

// Engine runs campaign jobs on a bounded worker pool. One Engine
// serves one campaign execution; its counters feed the /metrics
// endpoint of cmd/nocsimd.
type Engine struct {
	workers int
	timeout time.Duration
	runner  Runner
	store   *Store

	queued     atomic.Int64
	running    atomic.Int64
	done       atomic.Int64
	failed     atomic.Int64
	cacheHits  atomic.Int64
	cycles     atomic.Int64
	violations atomic.Int64

	// Telemetry aggregation across jobs run with WithTelemetry (cache
	// hits do not contribute — only freshly simulated jobs).
	telemJobs       atomic.Int64
	telemSteals     atomic.Int64
	telemSetupSum   atomic.Int64
	telemSetupCount atomic.Uint64
	telemDroppedWin atomic.Uint64
	telemBuckets    [len(obs.LatencyBuckets) + 1]atomic.Uint64
	// Per-worker-shard event-ring drop counters (index = shard). Jobs
	// have varying shard counts, so the slice grows under a mutex —
	// this runs once per completed job, never on a simulation hot path.
	telemMu        sync.Mutex
	telemRingDrops []uint64

	draining atomic.Bool
}

// Status is a snapshot of the engine counters.
type Status struct {
	Queued          int64 `json:"jobs_queued"`
	Running         int64 `json:"jobs_running"`
	Done            int64 `json:"jobs_done"`
	Failed          int64 `json:"jobs_failed"`
	CacheHits       int64 `json:"cache_hits"`
	CyclesSimulated int64 `json:"cycles_simulated"`
	Violations      int64 `json:"invariant_violations"`
}

// New builds an engine.
func New(o Options) *Engine {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Runner == nil {
		o.Runner = Simulate
	}
	return &Engine{workers: o.Workers, timeout: o.JobTimeout, runner: o.Runner, store: o.Store}
}

// Status snapshots the counters.
func (e *Engine) Status() Status {
	return Status{
		Queued:          e.queued.Load(),
		Running:         e.running.Load(),
		Done:            e.done.Load(),
		Failed:          e.failed.Load(),
		CacheHits:       e.cacheHits.Load(),
		CyclesSimulated: e.cycles.Load(),
		Violations:      e.violations.Load(),
	}
}

// Telemetry is the engine-wide aggregate of per-job observability
// summaries, in Prometheus-friendly shape: Buckets[i] counts setup
// latencies <= BucketLE[i] cycles (non-cumulative; the last bucket is
// the overflow above BucketLE's final bound).
type Telemetry struct {
	Jobs       int64    `json:"jobs_with_telemetry"`
	SlotSteals int64    `json:"slot_steals"`
	SetupCount uint64   `json:"setup_count"`
	SetupSum   int64    `json:"setup_latency_sum_cycles"`
	BucketLE   []int64  `json:"bucket_le"`
	Buckets    []uint64 `json:"setup_latency_buckets"`
	// DroppedWindows sums the recorder windows evicted past MaxSamples
	// across jobs — nonzero means some timelines are truncated at the
	// head and long-run plots start late.
	DroppedWindows uint64 `json:"dropped_windows"`
	// RingDrops sums the per-shard event-ring evictions across jobs;
	// RingDropsByShard is the per-worker-shard breakdown (index =
	// shard). Nonzero means exported traces are missing their oldest
	// events — raise RingCapacity or RingSample if that matters.
	RingDrops        uint64   `json:"ring_drops"`
	RingDropsByShard []uint64 `json:"ring_drops_by_shard"`
}

// Telemetry snapshots the aggregated observability counters.
func (e *Engine) Telemetry() Telemetry {
	t := Telemetry{
		Jobs:           e.telemJobs.Load(),
		SlotSteals:     e.telemSteals.Load(),
		SetupCount:     e.telemSetupCount.Load(),
		SetupSum:       e.telemSetupSum.Load(),
		DroppedWindows: e.telemDroppedWin.Load(),
		BucketLE:       append([]int64(nil), obs.LatencyBuckets[:]...),
		Buckets:        make([]uint64, len(e.telemBuckets)),
	}
	for i := range e.telemBuckets {
		t.Buckets[i] = e.telemBuckets[i].Load()
	}
	e.telemMu.Lock()
	t.RingDropsByShard = append([]uint64(nil), e.telemRingDrops...)
	e.telemMu.Unlock()
	for _, d := range t.RingDropsByShard {
		t.RingDrops += d
	}
	return t
}

// Drain stops the engine from starting new jobs; in-flight jobs run to
// completion and persist. Used by graceful shutdown. Jobs skipped by a
// drain are reported failed with a "skipped" Err and retried when the
// campaign is re-submitted.
func (e *Engine) Drain() { e.draining.Store(true) }

// Sentinel error strings for records the engine did not execute.
const (
	errDrained   = "skipped: engine draining"
	errCancelled = "skipped: campaign cancelled"
)

// Run executes jobs and returns one record per job, in job order.
// Cached jobs (hits in the store, or duplicates of an earlier job in
// the same list) are served without simulating. Cancelling ctx aborts
// in-flight jobs and skips the rest; Drain lets in-flight jobs finish
// but skips the rest. Run never returns an error — per-job failures
// are carried in Record.Err so one pathological grid point cannot
// sink a thousand-job campaign.
func (e *Engine) Run(ctx context.Context, jobs []Job) []Record {
	recs := make([]Record, len(jobs))
	e.queued.Add(int64(len(jobs)))

	// Dedup within the job list: only the first occurrence of a key
	// simulates; duplicates copy its record afterwards.
	first := map[string]int{}
	dup := map[int]int{}
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	for i, j := range jobs {
		if fi, ok := first[j.Key]; ok {
			dup[i] = fi
			continue
		}
		first[j.Key] = i
		if e.store != nil {
			if r, ok := e.store.Lookup(j.Key); ok {
				recs[i] = r
				e.queued.Add(-1)
				e.cacheHits.Add(1)
				e.done.Add(1)
				continue
			}
		}
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil || e.draining.Load() {
				rec := newRecord(j)
				rec.Err = errDrained
				if ctx.Err() != nil {
					rec.Err = errCancelled
				}
				recs[i] = rec
				e.queued.Add(-1)
				e.failed.Add(1)
				return
			}
			e.queued.Add(-1)
			e.running.Add(1)
			defer e.running.Add(-1)
			rec := e.runOne(ctx, j)
			recs[i] = rec
			if rec.Err != "" {
				e.failed.Add(1)
				return
			}
			e.done.Add(1)
			e.cycles.Add(int64(j.Warmup + j.Measure))
			if e.store != nil {
				if err := e.store.Append(rec); err != nil {
					// The result is still returned; only persistence
					// (and thus resume) is degraded.
					fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
				}
			}
		}(i, j)
	}
	wg.Wait()
	for i, fi := range dup {
		recs[i] = recs[fi]
		recs[i].Cached = true
		e.queued.Add(-1)
		if recs[fi].Err == "" {
			e.cacheHits.Add(1)
			e.done.Add(1)
		} else {
			e.failed.Add(1)
		}
	}
	return recs
}

// runOne executes a single job with timeout and panic containment.
func (e *Engine) runOne(ctx context.Context, j Job) (rec Record) {
	rec = newRecord(j)
	defer func() {
		if p := recover(); p != nil {
			rec.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	jctx := ctx
	if e.timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	res, sum, err := e.runner(jctx, j)
	if err != nil {
		var ve *hsnoc.ViolationError
		if errors.As(err, &ve) {
			e.violations.Add(ve.Count)
		}
		rec.Err = err.Error()
		return rec
	}
	rec.Result = res
	if sum != nil {
		rec.Telemetry = sum
		e.telemJobs.Add(1)
		e.telemSteals.Add(sum.Steals)
		e.telemSetupSum.Add(sum.SetupLatency.Sum)
		e.telemSetupCount.Add(sum.SetupLatency.Total)
		e.telemDroppedWin.Add(sum.DroppedWindows)
		for i, c := range sum.SetupLatency.Counts {
			e.telemBuckets[i].Add(c)
		}
		e.telemMu.Lock()
		for i, d := range sum.ShardRingDrops {
			if i >= len(e.telemRingDrops) {
				e.telemRingDrops = append(e.telemRingDrops, make([]uint64, i+1-len(e.telemRingDrops))...)
			}
			e.telemRingDrops[i] += d
		}
		e.telemMu.Unlock()
	}
	return rec
}
