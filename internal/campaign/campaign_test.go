package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/stats"
)

// testSpec is a small 3-axis grid (2 modes x 2 rates x 2 seeds x
// 1 pattern = 8 jobs) sized so the full campaign runs in well under a
// second.
func testSpec() Spec {
	return Spec{
		Name:          "test",
		Modes:         []string{"packet", "tdm"},
		Patterns:      []string{"tornado"},
		Meshes:        []MeshSize{{4, 4}},
		Rates:         []float64{0.05, 0.10},
		Seeds:         []uint64{1, 2},
		WarmupCycles:  200,
		MeasureCycles: 600,
	}
}

func TestSpecExpand(t *testing.T) {
	s := testSpec()
	jobs, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(jobs) != 8 {
		t.Fatalf("expanded %d jobs, want 8", len(jobs))
	}
	if got := s.Jobs(); got != len(jobs) {
		t.Errorf("Jobs() = %d, want %d", got, len(jobs))
	}
	keys := map[string]bool{}
	for _, j := range jobs {
		if keys[j.Key] {
			t.Errorf("duplicate job key %s", j.Key)
		}
		keys[j.Key] = true
		if j.Config.Width != 4 || j.Config.Height != 4 {
			t.Errorf("job mesh %dx%d, want 4x4", j.Config.Width, j.Config.Height)
		}
	}
	// Expansion must be deterministic: same spec, same order, same keys.
	jobs2, _ := s.Expand()
	for i := range jobs {
		if jobs[i].Key != jobs2[i].Key {
			t.Fatalf("expansion order not deterministic at %d", i)
		}
	}
}

func TestSpecSlotAxisCollapsesForNonTDM(t *testing.T) {
	s := testSpec()
	s.Modes = []string{"packet", "tdm"}
	s.SlotTables = []int{64, 128}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// packet: 1 slot point x 2 rates x 2 seeds = 4; tdm: 2 x 2 x 2 = 8.
	if len(jobs) != 12 {
		t.Fatalf("expanded %d jobs, want 12 (slot axis must collapse for packet mode)", len(jobs))
	}
}

func TestSpecRehydrate(t *testing.T) {
	s := testSpec()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	hash := s.Hash()

	// A marshal/unmarshal round trip (what a journal or checkpoint does)
	// rehydrates to the same normalized spec and passes the hash check.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Rehydrate(hash)
	if err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}
	if got.Hash() != hash {
		t.Fatalf("rehydrated hash %s != %s", got.Hash(), hash)
	}

	// A wrong recorded hash — the persisted-under-different-semantics
	// case — fails loudly.
	if _, err := back.Rehydrate("deadbeef"); err == nil {
		t.Fatal("Rehydrate accepted a mismatched hash")
	}

	// An empty hash skips the check but still normalizes/validates.
	if _, err := back.Rehydrate(""); err != nil {
		t.Fatalf("Rehydrate with empty hash: %v", err)
	}
	if _, err := (Spec{}).Rehydrate(""); err == nil {
		t.Fatal("Rehydrate normalized an invalid spec")
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	bad := []Spec{
		{Patterns: []string{"ur"}, Rates: []float64{0.1}},                            // no modes
		{Modes: []string{"tdm"}, Rates: []float64{0.1}},                              // no patterns
		{Modes: []string{"tdm"}, Patterns: []string{"ur"}},                           // no rates
		{Modes: []string{"tdm"}, Patterns: []string{"ur"}, Rates: []float64{0}},      // zero rate
		{Modes: []string{"warp"}, Patterns: []string{"ur"}, Rates: []float64{0.1}},   // bad mode
		{Modes: []string{"tdm"}, Patterns: []string{"zigzag"}, Rates: []float64{.1}}, // bad pattern
		{Modes: []string{"tdm"}, Patterns: []string{"ur"}, Rates: []float64{0.1}, Meshes: []MeshSize{{0, 6}}},
		{Modes: []string{"tdm"}, Patterns: []string{"ur"}, Rates: []float64{0.1}, SlotTables: []int{-1}},
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d normalized without error", i)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"modes":["tdm"],"patterns":["ur"],"rates":[0.1],"typo_field":1}`))
	if err == nil {
		t.Fatal("spec with unknown field accepted")
	}
}

// readStoreLines reads a JSONL store file into sorted lines.
func readStoreLines(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	sort.Strings(lines)
	return lines
}

// TestCampaignDeterminism is the headline guarantee: the same spec run
// with one worker and with eight workers produces byte-identical JSONL
// records (modulo ordering).
func TestCampaignDeterminism(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}

	paths := [2]string{filepath.Join(dir, "serial.jsonl"), filepath.Join(dir, "parallel.jsonl")}
	for i, workers := range []int{1, 8} {
		store, err := OpenStore(paths[i])
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		eng := New(Options{Workers: workers, Store: store})
		recs := eng.Run(context.Background(), jobs)
		store.Close()
		for _, r := range recs {
			if r.Err != "" {
				t.Fatalf("workers=%d: job %s failed: %s", workers, r.Label, r.Err)
			}
			if r.Result.Packets == 0 {
				t.Fatalf("workers=%d: job %s delivered no packets", workers, r.Label)
			}
		}
	}
	serial, parallel := readStoreLines(t, paths[0]), readStoreLines(t, paths[1])
	if len(serial) != len(parallel) || len(serial) != len(jobs) {
		t.Fatalf("line counts: serial %d, parallel %d, jobs %d", len(serial), len(parallel), len(jobs))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("record %d differs:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
		}
	}
}

// TestCampaignResume interrupts a campaign after half its jobs and
// checks that re-running the full spec serves the finished half from
// the persisted store without recomputing.
func TestCampaignResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	spec := testSpec()
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}

	// First run: only half the jobs "complete" before the interrupt.
	store, err := OpenStore(path)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	half := jobs[:len(jobs)/2]
	eng := New(Options{Workers: 2, Store: store})
	for _, r := range eng.Run(context.Background(), half) {
		if r.Err != "" {
			t.Fatalf("first run: %s: %s", r.Label, r.Err)
		}
	}
	store.Close() // simulate the process dying

	// Resumed run over the full spec.
	store2, err := OpenStore(path)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer store2.Close()
	if store2.Len() != len(half) {
		t.Fatalf("reloaded %d records, want %d", store2.Len(), len(half))
	}
	eng2 := New(Options{Workers: 2, Store: store2})
	recs := eng2.Run(context.Background(), jobs)
	st := eng2.Status()
	if st.CacheHits != int64(len(half)) {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, len(half))
	}
	if st.Done != int64(len(jobs)) {
		t.Errorf("done = %d, want %d", st.Done, len(jobs))
	}
	// Expected simulated cycles: only the second half ran.
	wantCycles := int64(0)
	for _, j := range jobs[len(jobs)/2:] {
		wantCycles += int64(j.Warmup + j.Measure)
	}
	if st.CyclesSimulated != wantCycles {
		t.Errorf("cycles simulated = %d, want %d", st.CyclesSimulated, wantCycles)
	}
	for i, r := range recs {
		if r.Err != "" {
			t.Errorf("resumed job %s failed: %s", r.Label, r.Err)
		}
		if i < len(half) && !r.Cached {
			t.Errorf("job %d should have been served from cache", i)
		}
	}

	// A third run must be 100% cache hits.
	eng3 := New(Options{Workers: 2, Store: store2})
	eng3.Run(context.Background(), jobs)
	if st := eng3.Status(); st.CacheHits != int64(len(jobs)) || st.CyclesSimulated != 0 {
		t.Errorf("full re-run: cache hits %d (want %d), cycles %d (want 0)",
			st.CacheHits, len(jobs), st.CyclesSimulated)
	}
}

// TestEngineDedupsWithinRun checks that duplicate keys inside one job
// list simulate once.
func TestEngineDedupsWithinRun(t *testing.T) {
	var runs atomic.Int64
	runner := func(ctx context.Context, j Job) (stats.RunRecord, *obs.Summary, error) {
		runs.Add(1)
		return stats.RunRecord{Runs: 1, Cycles: int64(j.Measure), Packets: 1}, nil, nil
	}
	cfg := hsnoc.DefaultConfig(4, 4)
	j := NewJob(cfg, hsnoc.Tornado, 0.1, 100, 200, "dup")
	eng := New(Options{Workers: 4, Runner: runner})
	recs := eng.Run(context.Background(), []Job{j, j, j})
	if runs.Load() != 1 {
		t.Errorf("runner invoked %d times, want 1", runs.Load())
	}
	for i, r := range recs {
		if r.Err != "" || r.Result.Packets != 1 {
			t.Errorf("record %d = %+v", i, r)
		}
	}
	if st := eng.Status(); st.Done != 3 || st.CacheHits != 2 {
		t.Errorf("status = %+v, want done 3 / cache hits 2", st)
	}
}

// TestEngineTimeoutAndCancel checks per-job timeout enforcement and
// campaign-level cancellation.
func TestEngineTimeoutAndCancel(t *testing.T) {
	block := func(ctx context.Context, j Job) (stats.RunRecord, *obs.Summary, error) {
		<-ctx.Done()
		return stats.RunRecord{}, nil, ctx.Err()
	}
	cfg := hsnoc.DefaultConfig(4, 4)
	j := NewJob(cfg, hsnoc.Tornado, 0.1, 0, 100, "block")

	eng := New(Options{Workers: 1, JobTimeout: 10 * time.Millisecond, Runner: block})
	recs := eng.Run(context.Background(), []Job{j})
	if recs[0].Err == "" {
		t.Error("timed-out job reported success")
	}
	if st := eng.Status(); st.Failed != 1 || st.Done != 0 {
		t.Errorf("status after timeout = %+v", st)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng2 := New(Options{Workers: 1, Runner: block})
	recs2 := eng2.Run(ctx, []Job{j})
	if recs2[0].Err == "" {
		t.Error("cancelled job reported success")
	}
}

// TestEnginePanicRecovery checks that a panicking job becomes a failed
// record instead of crashing the campaign.
func TestEnginePanicRecovery(t *testing.T) {
	boom := func(ctx context.Context, j Job) (stats.RunRecord, *obs.Summary, error) {
		panic("simulated router invariant violation")
	}
	cfg := hsnoc.DefaultConfig(4, 4)
	jobs := []Job{
		NewJob(cfg, hsnoc.Tornado, 0.1, 0, 100, "boom"),
	}
	eng := New(Options{Workers: 2, Runner: boom})
	recs := eng.Run(context.Background(), jobs)
	if !strings.Contains(recs[0].Err, "panic") {
		t.Errorf("panic not captured: %+v", recs[0])
	}
	if st := eng.Status(); st.Failed != 1 {
		t.Errorf("status = %+v", st)
	}
}

// TestEngineDrain checks that draining skips queued jobs but completes
// the in-flight one.
func TestEngineDrain(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int64
	runner := func(ctx context.Context, j Job) (stats.RunRecord, *obs.Summary, error) {
		if ran.Add(1) == 1 {
			close(started)
			<-release
		}
		return stats.RunRecord{Runs: 1, Packets: 1}, nil, nil
	}
	cfg := hsnoc.DefaultConfig(4, 4)
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, NewJob(cfg, hsnoc.Tornado, 0.1+float64(i)/100, 0, 100, fmt.Sprintf("j%d", i)))
	}
	eng := New(Options{Workers: 1, Runner: runner})
	done := make(chan []Record)
	go func() { done <- eng.Run(context.Background(), jobs) }()
	<-started
	eng.Drain()
	close(release)
	recs := <-done
	// Exactly one job was in flight when the drain hit (a single-worker
	// pool, with an arbitrary job holding the slot); it must complete.
	// Every queued job must be skipped.
	completed, skipped := 0, 0
	for _, r := range recs {
		if r.Err == "" {
			completed++
		} else if strings.Contains(r.Err, "skipped") {
			skipped++
		}
	}
	if completed != 1 || skipped != 3 {
		t.Errorf("drain: %d completed / %d skipped, want 1 / 3", completed, skipped)
	}
}

// TestStoreSkipsTornLine checks crash tolerance of the JSONL reload.
func TestStoreSkipsTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	good := `{"key":"k1","mode":"Packet-VC4","pattern":"TOR","width":4,"height":4,"rate":0.1,"seed":1,"warmup":1,"measure":2,"result":{"runs":1,"cycles":2,"packets":3,"net_latency_sum":0,"total_latency_sum":0,"flit_cycles":0,"payload_cycles":0,"cs_frac_packets":0,"config_frac_packets":0,"energy_pj":1}}`
	if err := os.WriteFile(path, []byte(good+"\n"+`{"key":"k2","resu`), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(path)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer store.Close()
	if store.Len() != 1 {
		t.Errorf("loaded %d records from torn store, want 1", store.Len())
	}
	if _, ok := store.Lookup("k1"); !ok {
		t.Error("intact record lost")
	}
}

// TestStoreLoadsOversizedRecord guards the ReadBytes-based reload: a
// record far larger than bufio.Scanner's old 4 MiB line cap must
// survive a close/reopen cycle instead of failing the whole store.
func TestStoreLoadsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.jsonl")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	big := Record{
		Key:   "huge",
		Label: strings.Repeat("x", 5<<20), // > 4 MiB on one JSONL line
		Result: stats.RunRecord{
			Runs: 1, Cycles: 10, Packets: 1, EnergyPJ: 1,
		},
	}
	if err := store.Append(big); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := store.Append(Record{Key: "after", Result: stats.RunRecord{Runs: 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	store.Close()

	re, err := OpenStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	got, ok := re.Lookup("huge")
	if !ok || len(got.Label) != 5<<20 {
		t.Fatalf("oversized record not reloaded (found=%v, label %d bytes)", ok, len(got.Label))
	}
	if _, ok := re.Lookup("after"); !ok {
		t.Error("record after the oversized one lost")
	}
}

// TestStoreRejectsMidFileCorruption: an unparseable line that is NOT
// the torn tail of the file is real corruption and must fail the open
// loudly instead of silently dropping records.
func TestStoreRejectsMidFileCorruption(t *testing.T) {
	good := `{"key":"k1","result":{"runs":1,"cycles":2,"packets":3,"net_latency_sum":0,"total_latency_sum":0,"flit_cycles":0,"payload_cycles":0,"cs_frac_packets":0,"config_frac_packets":0,"energy_pj":1}}`
	for name, content := range map[string]string{
		"corrupt middle":        good + "\n" + `{"key":"k2","resu` + "\n" + good,
		"corrupt last complete": good + "\n" + `{"key":"k2","resu` + "\n",
	} {
		path := filepath.Join(t.TempDir(), "corrupt.jsonl")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		store, err := OpenStore(path)
		if err == nil {
			store.Close()
			t.Errorf("%s: OpenStore accepted a corrupt store", name)
		}
	}
}

// TestCheckedCampaignRunsClean runs a real (small) simulation job with
// the invariant layer on: it must complete without violations and the
// engine counter must stay zero.
func TestCheckedCampaignRunsClean(t *testing.T) {
	s := Spec{
		Modes: []string{"tdm"}, Patterns: []string{"tornado"},
		Meshes: []MeshSize{{4, 4}}, Rates: []float64{0.1}, Seeds: []uint64{1},
		WarmupCycles: 200, MeasureCycles: 400,
		CheckInvariants: true,
	}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Config.CheckInvariants {
		t.Fatal("spec did not propagate CheckInvariants to the job config")
	}
	eng := New(Options{Workers: 1})
	recs := eng.Run(context.Background(), jobs)
	if recs[0].Err != "" {
		t.Fatalf("checked job failed: %s", recs[0].Err)
	}
	if st := eng.Status(); st.Violations != 0 {
		t.Fatalf("clean run counted %d violations", st.Violations)
	}
}

// TestEngineCountsViolations: a job failing with *hsnoc.ViolationError
// must feed the engine's violation counter (and /metrics).
func TestEngineCountsViolations(t *testing.T) {
	bad := func(ctx context.Context, j Job) (stats.RunRecord, *obs.Summary, error) {
		return stats.RunRecord{}, nil, &hsnoc.ViolationError{Count: 5, Violations: []hsnoc.Violation{
			{Cycle: 3, Router: 1, Kind: "credit", Detail: "seeded"},
		}}
	}
	cfg := hsnoc.DefaultConfig(4, 4)
	eng := New(Options{Workers: 1, Runner: bad})
	recs := eng.Run(context.Background(), []Job{NewJob(cfg, hsnoc.Tornado, 0.1, 0, 100, "bad")})
	if recs[0].Err == "" || !strings.Contains(recs[0].Err, "invariant violation") {
		t.Errorf("violation not reported in record: %+v", recs[0])
	}
	if st := eng.Status(); st.Violations != 5 || st.Failed != 1 {
		t.Errorf("status = %+v, want 5 violations / 1 failed", st)
	}
}

// explodingTicker panics inside the executor worker pool.
type explodingTicker struct{}

func (explodingTicker) Tick(now sim.Cycle, phase sim.Phase) {
	if now == 2 && phase == sim.PhaseCompute {
		panic("ticker exploded")
	}
}

// TestEngineContainsExecutorWorkerPanic glues the two containment
// layers end to end: a Ticker panic on a pooled executor goroutine is
// re-raised on the job goroutine, where the engine's recover turns it
// into one failed record — the other job and the process survive.
func TestEngineContainsExecutorWorkerPanic(t *testing.T) {
	runner := func(ctx context.Context, j Job) (stats.RunRecord, *obs.Summary, error) {
		if j.Label == "boom" {
			clock := &sim.Clock{}
			ts := []sim.Ticker{explodingTicker{}, explodingTicker{}, explodingTicker{}, explodingTicker{}}
			e := sim.NewExecutor(clock, ts, 4)
			defer e.Close()
			e.Run(10)
		}
		return stats.RunRecord{Runs: 1, Packets: 1}, nil, nil
	}
	cfg := hsnoc.DefaultConfig(4, 4)
	jobs := []Job{
		NewJob(cfg, hsnoc.Tornado, 0.1, 0, 100, "boom"),
		NewJob(cfg, hsnoc.Tornado, 0.2, 0, 100, "fine"),
	}
	eng := New(Options{Workers: 2, Runner: runner})
	recs := eng.Run(context.Background(), jobs)
	if !strings.Contains(recs[0].Err, "panic") {
		t.Errorf("worker panic not contained to its job: %+v", recs[0])
	}
	if recs[1].Err != "" {
		t.Errorf("healthy job dragged down: %+v", recs[1])
	}
	if st := eng.Status(); st.Failed != 1 || st.Done != 1 {
		t.Errorf("status = %+v, want 1 failed / 1 done", st)
	}
}

func TestAggregateMergesSeeds(t *testing.T) {
	mk := func(seed uint64, packets int64) Record {
		return Record{
			Key: fmt.Sprintf("k%d", seed), Mode: "Hybrid-TDM", Pattern: "TOR",
			Width: 4, Height: 4, Rate: 0.1, Seed: seed,
			Result: stats.RunRecord{Runs: 1, Cycles: 100, Packets: packets, EnergyPJ: 10},
		}
	}
	recs := []Record{mk(1, 10), mk(2, 30), {Key: "bad", Err: "boom"}}
	agg := Aggregate(recs, GroupWithoutSeed)
	if len(agg) != 1 {
		t.Fatalf("groups = %d, want 1", len(agg))
	}
	for _, r := range agg {
		if r.Runs != 2 || r.Packets != 40 || r.EnergyPJ != 20 {
			t.Errorf("aggregate = %+v", r)
		}
	}
}

// TestRecordStableEncoding pins the persisted encoding: Cached must
// never leak into JSON, and a marshal/unmarshal round trip must be
// exact.
func TestRecordStableEncoding(t *testing.T) {
	cfg := hsnoc.DefaultConfig(4, 4)
	cfg.Mode = hsnoc.HybridTDM
	j := NewJob(cfg, hsnoc.Tornado, 0.1, 10, 20, "enc")
	r := newRecord(j)
	r.Result = stats.RunRecord{Runs: 1, Cycles: 20, Packets: 5, EnergyPJ: 123.456}
	r.Cached = true
	b1, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if bytes.Contains(b1, []byte("Cached")) || bytes.Contains(b1, []byte("cached")) {
		t.Error("runtime-only Cached field leaked into the persisted encoding")
	}
	var back Record
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	back.Cached = true
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("encoding not stable across round trip:\n%s\n%s", b1, b2)
	}
}

// TestCampaignTelemetry: a spec with telemetry_every attaches per-job
// observability — records carry a deterministic Summary, jobs are
// re-keyed away from the plain campaign, and the engine aggregates the
// per-job digests for /metrics.
func TestCampaignTelemetry(t *testing.T) {
	spec := Spec{
		Modes:          []string{"tdm"},
		Patterns:       []string{"tornado"},
		Meshes:         []MeshSize{{Width: 4, Height: 4}},
		Rates:          []float64{0.15},
		WarmupCycles:   200,
		MeasureCycles:  1000,
		TelemetryEvery: 64,
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	plain := spec
	plain.TelemetryEvery = 0
	pjobs, err := plain.Expand()
	if err != nil {
		t.Fatalf("expand plain: %v", err)
	}
	if jobs[0].Key == pjobs[0].Key {
		t.Error("telemetry job shares a cache key with the plain job")
	}
	if jobs[0].TelemetryEvery != 64 {
		t.Errorf("TelemetryEvery = %d, want 64", jobs[0].TelemetryEvery)
	}

	eng := New(Options{Workers: 1})
	recs := eng.Run(context.Background(), jobs)
	if recs[0].Err != "" {
		t.Fatalf("job failed: %s", recs[0].Err)
	}
	sum := recs[0].Telemetry
	if sum == nil {
		t.Fatal("record carries no telemetry summary")
	}
	if sum.Injected == 0 || sum.Ejected == 0 || sum.Events == 0 {
		t.Errorf("telemetry summary looks empty: %+v", sum)
	}
	if len(sum.Samples) == 0 {
		t.Error("telemetry summary has no time-series windows")
	}
	tl := eng.Telemetry()
	if tl.Jobs != 1 {
		t.Errorf("engine telemetry jobs = %d, want 1", tl.Jobs)
	}
	if tl.SetupCount != sum.SetupLatency.Total || tl.SlotSteals != sum.Steals {
		t.Errorf("engine aggregate %+v does not match job summary (setups %d, steals %d)",
			tl, sum.SetupLatency.Total, sum.Steals)
	}
	var bucketSum uint64
	for _, c := range tl.Buckets {
		bucketSum += c
	}
	if bucketSum != tl.SetupCount {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, tl.SetupCount)
	}
}

// TestCampaignTelemetryParallelSim: a telemetry campaign over a parallel
// simulator executor runs cleanly and its per-job summary is
// byte-identical to the serial-executor run — the sharded recorder's
// deterministic merge holds through the campaign layer.
func TestCampaignTelemetryParallelSim(t *testing.T) {
	run := func(simWorkers int) []byte {
		spec := Spec{
			Modes:          []string{"tdm"},
			Patterns:       []string{"tornado"},
			Meshes:         []MeshSize{{Width: 4, Height: 4}},
			Rates:          []float64{0.15},
			WarmupCycles:   200,
			MeasureCycles:  1000,
			TelemetryEvery: 64,
			SimWorkers:     simWorkers,
		}
		jobs, err := spec.Expand()
		if err != nil {
			t.Fatalf("expand (sim_workers=%d): %v", simWorkers, err)
		}
		eng := New(Options{Workers: 1})
		recs := eng.Run(context.Background(), jobs)
		if recs[0].Err != "" {
			t.Fatalf("job failed (sim_workers=%d): %s", simWorkers, recs[0].Err)
		}
		if recs[0].Telemetry == nil {
			t.Fatalf("record carries no telemetry summary (sim_workers=%d)", simWorkers)
		}
		b, err := json.Marshal(recs[0].Telemetry)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial, parallel := run(1), run(2)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("telemetry summaries diverge between sim_workers 1 and 2:\n %s\n %s", serial, parallel)
	}
}

// TestSpecTelemetryValidation: telemetry conflicts fail loudly at
// Normalize instead of producing per-job attach errors.
func TestSpecTelemetryValidation(t *testing.T) {
	base := Spec{
		Modes:    []string{"tdm"},
		Patterns: []string{"ur"},
		Rates:    []float64{0.1},
	}
	neg := base
	neg.TelemetryEvery = -1
	if err := neg.Normalize(); err == nil {
		t.Error("negative telemetry_every accepted")
	}
	// Telemetry under a parallel executor is supported (sharded recorder
	// with deterministic merge), so this combination must normalize.
	par := base
	par.TelemetryEvery = 64
	par.SimWorkers = 2
	if err := par.Normalize(); err != nil {
		t.Errorf("telemetry with sim_workers 2 rejected: %v", err)
	}
	sdm := base
	sdm.TelemetryEvery = 64
	sdm.Modes = []string{"sdm"}
	if err := sdm.Normalize(); err == nil {
		t.Error("telemetry with sdm mode accepted")
	}
}
