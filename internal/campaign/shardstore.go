package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"tdmnoc/internal/stats"
)

// storeShards is the fan-out of a ShardedStore: 16 JSONL files keyed
// by the first hex nibble of the record key. Records keys are SHA-256
// over the canonical job identity, so the nibble spreads uniformly and
// each file carries ~1/16 of the campaign — small enough to reload and
// compact incrementally even for million-job sweeps.
const storeShards = 16

// ShardedStore is the fleet-scale result store: a content-addressed
// record cache fanned across storeShards append-only JSONL files by
// key prefix. It generalizes Store — same durability contract per
// shard file (append straight to the fd, torn trailers skipped on
// reload, mid-file corruption fails loudly) — and adds the properties
// the distribution layer needs: duplicate-free appends (AppendNew per
// key), streaming merge of sum-form records without materialising the
// whole campaign, and per-shard compaction that reclaims dead lines
// left by re-leased fleet shards.
type ShardedStore struct {
	dir    string
	shards [storeShards]*Store

	// compacting serialises background compaction sweeps.
	compacting sync.Mutex
}

// OpenShardedStore opens (creating if needed) the sharded store rooted
// at dir, reloading every shard file.
func OpenShardedStore(dir string) (*ShardedStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: sharded store: %w", err)
	}
	ss := &ShardedStore{dir: dir}
	for i := range ss.shards {
		st, err := OpenStore(filepath.Join(dir, fmt.Sprintf("shard-%x.jsonl", i)))
		if err != nil {
			for j := 0; j < i; j++ {
				ss.shards[j].Close()
			}
			return nil, err
		}
		ss.shards[i] = st
	}
	return ss, nil
}

// Dir returns the root directory of the shard files.
func (ss *ShardedStore) Dir() string { return ss.dir }

// shardFor routes a record key to its shard by first hex nibble. Keys
// are lowercase hex SHA-256 strings; anything else lands in shard 0
// (and would only arise from a corrupted caller, not normal traffic).
func (ss *ShardedStore) shardFor(key string) *Store {
	if len(key) == 0 {
		return ss.shards[0]
	}
	c := key[0]
	switch {
	case c >= '0' && c <= '9':
		return ss.shards[c-'0']
	case c >= 'a' && c <= 'f':
		return ss.shards[10+c-'a']
	}
	return ss.shards[0]
}

// Lookup returns the cached record for key, marked Cached.
func (ss *ShardedStore) Lookup(key string) (Record, bool) {
	return ss.shardFor(key).Lookup(key)
}

// Append persists the record into its shard unless the key is already
// present, reporting whether a write happened. Failed records are
// rejected (Store.Append's contract).
func (ss *ShardedStore) Append(r Record) (bool, error) {
	return ss.shardFor(r.Key).AppendNew(r)
}

// Len is the total live record count across shards.
func (ss *ShardedStore) Len() int {
	n := 0
	for _, st := range ss.shards {
		n += st.Len()
	}
	return n
}

// Dead is the total dead-line count across shards (duplicates + torn
// trailers awaiting compaction).
func (ss *ShardedStore) Dead() int {
	n := 0
	for _, st := range ss.shards {
		n += st.Dead()
	}
	return n
}

// MergeGroups streams every shard's records through the grouping
// function, merging the sum-form results as it goes — the aggregate of
// a million-job campaign is built shard by shard without ever holding
// more than one shard's records.
func (ss *ShardedStore) MergeGroups(key func(Record) string) map[string]stats.RunRecord {
	out := map[string]stats.RunRecord{}
	for _, st := range ss.shards {
		for _, r := range st.Records() {
			if r.Err != "" {
				continue
			}
			k := key(r)
			agg := out[k]
			agg.Merge(r.Result)
			out[k] = agg
		}
	}
	return out
}

// LookupAll resolves a job-key list against the store, returning the
// records found and the count missing. The fleet coordinator uses it
// to serve campaign results and to fast-complete shards whose jobs a
// previous campaign already computed.
func (ss *ShardedStore) LookupAll(keys []string) (found []Record, missing int) {
	for _, k := range keys {
		if r, ok := ss.Lookup(k); ok {
			found = append(found, r)
		} else {
			missing++
		}
	}
	return found, missing
}

// CompactThreshold is the dead-line excess past which a background
// sweep rewrites a shard: compaction costs a full shard rewrite, so it
// runs when dead weight rivals live data, not on every duplicate.
const CompactThreshold = 256

// MaybeCompact rewrites every shard whose dead-line count exceeds both
// CompactThreshold and its live record count. It returns the number of
// shards compacted; concurrent calls coalesce (the second caller
// returns immediately), so it is safe to kick from a background
// goroutine after every burst of appends.
func (ss *ShardedStore) MaybeCompact() (int, error) {
	if !ss.compacting.TryLock() {
		return 0, nil
	}
	defer ss.compacting.Unlock()
	n := 0
	for _, st := range ss.shards {
		if d := st.Dead(); d > CompactThreshold && d > st.Len() {
			if err := st.Compact(); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// Compact unconditionally rewrites every shard (used by tests and
// operator tooling; the background path is MaybeCompact).
func (ss *ShardedStore) Compact() error {
	ss.compacting.Lock()
	defer ss.compacting.Unlock()
	for _, st := range ss.shards {
		if err := st.Compact(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every shard file. Lookups keep working from memory.
func (ss *ShardedStore) Close() error {
	var first error
	for _, st := range ss.shards {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
