package campaign

import (
	"context"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/stats"
)

// Simulate is the default Runner: it builds the simulator for the job,
// warms it up, measures, and converts the results into a mergeable
// record. Jobs built with WithTelemetry additionally attach an
// observability recorder and return its Summary. The simulator (and
// its executor worker pool, if any) is always released, including on
// cancellation and panic paths.
func Simulate(ctx context.Context, j Job) (stats.RunRecord, *obs.Summary, error) {
	s := hsnoc.NewSynthetic(j.Config, j.Pattern, j.Rate)
	defer s.Close()
	var rec *obs.Recorder
	if j.TelemetryEvery > 0 {
		var err error
		rec, err = s.AttachTelemetry(hsnoc.TelemetryOptions{Every: j.TelemetryEvery})
		if err != nil {
			return stats.RunRecord{}, nil, err
		}
	}
	if err := s.WarmupContext(ctx, j.Warmup); err != nil {
		return stats.RunRecord{}, nil, err
	}
	res, err := s.RunContext(ctx, j.Measure)
	if err != nil {
		return stats.RunRecord{}, nil, err
	}
	var sum *obs.Summary
	if rec != nil {
		sum = rec.Summary()
	}
	// With Config.CheckInvariants set, a run that tripped the checker is
	// a failure: the record is returned for inspection but the error
	// keeps the engine from persisting (and thus caching) corrupt data.
	if err := s.InvariantError(); err != nil {
		return FromResults(res), sum, err
	}
	return FromResults(res), sum, nil
}

// FromResults converts an hsnoc measurement into the sum-form mergeable
// record (internal/stats cannot import hsnoc — the engine packages sit
// above it — so the conversion lives here).
func FromResults(r hsnoc.Results) stats.RunRecord {
	return stats.RunRecord{
		Runs:              1,
		Cycles:            r.Cycles,
		Packets:           r.Packets,
		NetLatencySum:     r.AvgNetLatency * float64(r.Packets),
		TotalLatencySum:   r.AvgTotalLatency * float64(r.Packets),
		FlitCycles:        r.Throughput * float64(r.Cycles),
		PayloadCycles:     r.PayloadThroughput * float64(r.Cycles),
		CSFracPackets:     r.CSFlitFraction * float64(r.Packets),
		ConfigFracPackets: r.ConfigTrafficFraction * float64(r.Packets),
		Hitchhikes:        r.Hitchhikes,
		VicinityRides:     r.VicinityRides,
		Circuits:          r.CircuitsEstablished,
		ActiveSlots:       r.ActiveSlotEntries,
		EnergyPJ:          r.Energy.TotalPJ,
	}
}
