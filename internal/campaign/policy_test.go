package campaign

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"tdmnoc/internal/policy"
)

// policySpec is the smallest useful policy comparison: one tdm grid
// point under tornado, compared across static and greedy.
func policySpec() Spec {
	return Spec{
		Name:          "policy-test",
		Modes:         []string{"tdm"},
		Patterns:      []string{"tornado"},
		Meshes:        []MeshSize{{4, 4}},
		Rates:         []float64{0.15},
		Seeds:         []uint64{1},
		WarmupCycles:  300,
		MeasureCycles: 1200,
		PolicyProfile: &PolicyProfileSpec{Policies: []string{"static", "greedy"}},
	}
}

func TestSpecPolicyProfileValidation(t *testing.T) {
	// "static" is prepended when missing so every report has a baseline.
	s := policySpec()
	s.PolicyProfile.Policies = []string{"greedy"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(s.PolicyProfile.Policies) != 2 || s.PolicyProfile.Policies[0] != "static" {
		t.Errorf("policies = %v, want static prepended", s.PolicyProfile.Policies)
	}
	if s.PolicyProfile.ProfileEvery != 512 {
		t.Errorf("profile_every defaulted to %d, want 512", s.PolicyProfile.ProfileEvery)
	}

	bad := []func(*Spec){
		func(s *Spec) { s.TelemetryEvery = 64 },                                // exclusive with telemetry campaigns
		func(s *Spec) { s.Modes = []string{"packet"} },                         // profiles need the TDM engine
		func(s *Spec) { s.Modes = []string{"tdm", "sdm"} },                     // ditto
		func(s *Spec) { s.PolicyProfile.Policies = []string{"bogus"} },         // unknown policy
		func(s *Spec) { s.PolicyProfile.Policies = []string{"greedy:-1"} },     // bad parameter
		func(s *Spec) { s.PolicyProfile.Policies = nil },                       // nothing to compare
		func(s *Spec) { s.PolicyProfile.ProfileEvery = -1 },                    // bad window
		func(s *Spec) { s.PolicyProfile.Policies = []string{"static", "sdm"} }, // not a policy name
	}
	for i, mutate := range bad {
		s := policySpec()
		mutate(&s)
		if err := s.Normalize(); err == nil {
			t.Errorf("bad policy spec %d normalized without error", i)
		}
	}
}

func TestProfileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.jsonl")
	ps, err := OpenProfileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	p := &policy.Profile{ConfigHash: "abc", Mode: "tdm", Width: 4, Height: 4, Injected: 42}
	if err := ps.Append("k1", p); err != nil {
		t.Fatal(err)
	}
	// Duplicate appends dedup on key.
	if err := ps.Append("k1", p); err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 1 {
		t.Fatalf("Len = %d after dedup, want 1", ps.Len())
	}
	ps.Close()

	back, err := OpenProfileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	got, ok := back.Lookup("k1")
	if !ok || got.Injected != 42 || got.ConfigHash != "abc" {
		t.Fatalf("Lookup after reopen = %+v, %v", got, ok)
	}
	if _, ok := back.Lookup("k2"); ok {
		t.Error("Lookup invented a profile")
	}
}

// TestRunPolicyLoop drives the full offline loop on the miniature spec
// and pins its cache contracts: the static baseline is a store cache
// hit (its derived config hashes identically to the profiled run), and
// a second loop over the same stores re-simulates nothing in phase A.
func TestRunPolicyLoop(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(filepath.Join(dir, "records.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	profiles, err := OpenProfileStore(filepath.Join(dir, "profiles.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer profiles.Close()

	spec := policySpec()
	eng := New(Options{Workers: 2, JobTimeout: time.Minute, Store: store})
	rep, err := RunPolicyLoop(context.Background(), eng, spec, profiles)
	if err != nil {
		t.Fatalf("RunPolicyLoop: %v", err)
	}
	if len(rep.Outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2 (1 grid point x 2 policies)", len(rep.Outcomes))
	}
	static, greedy := rep.Outcomes[0], rep.Outcomes[1]
	if static.Policy != "static" || greedy.Policy != "greedy" {
		t.Fatalf("outcome order = %s, %s", static.Policy, greedy.Policy)
	}
	for _, out := range rep.Outcomes {
		if out.Err != "" {
			t.Fatalf("outcome %s/%s failed: %s", out.Label, out.Policy, out.Err)
		}
		if out.EnergyPerFlit <= 0 || out.Throughput <= 0 {
			t.Errorf("outcome %s has empty metrics: %+v", out.Policy, out)
		}
	}
	// Static re-derives the base config exactly: same key, zero deltas.
	if static.RunKey != static.BaseKey {
		t.Errorf("static run key %s != base key %s", static.RunKey, static.BaseKey)
	}
	if static.EnergyDeltaPct != 0 || static.LatencyDeltaPct != 0 {
		t.Errorf("static deltas nonzero: %+v", static)
	}
	if !static.Decision.IsZero() {
		t.Errorf("static decision mutates config: %+v", static.Decision)
	}
	// ... which makes it a cache hit against the phase-A record.
	if hits := eng.Status().CacheHits; hits < 1 {
		t.Errorf("static baseline was not served from cache (hits=%d)", hits)
	}
	// Greedy on tornado pins flows and produces a distinct run.
	if len(greedy.Decision.PinnedFlows) == 0 {
		t.Error("greedy pinned no flows on tornado")
	}
	if greedy.RunKey == greedy.BaseKey {
		t.Error("greedy re-run key equals base key — decision not applied")
	}
	if profiles.Len() != 1 {
		t.Errorf("profile store holds %d profiles, want 1", profiles.Len())
	}

	// Second loop over the same stores: phase A is fully cached, so the
	// fresh engine simulates only already-cached phase-B jobs — every
	// job it sees is a cache hit and the report comes back identical.
	eng2 := New(Options{Workers: 2, JobTimeout: time.Minute, Store: store})
	rep2, err := RunPolicyLoop(context.Background(), eng2, spec, profiles)
	if err != nil {
		t.Fatalf("second RunPolicyLoop: %v", err)
	}
	st := eng2.Status()
	if st.CacheHits != st.Done || st.Done == 0 {
		t.Errorf("second loop simulated fresh jobs: %+v", st)
	}
	b1, _ := json.Marshal(rep)
	b2, _ := json.Marshal(rep2)
	if string(b1) != string(b2) {
		t.Errorf("reports differ across cached re-runs:\n%s\n%s", b1, b2)
	}
}

// TestGreedyBeatsStaticOnFig4Miniatures is the issue's headline
// acceptance: on two Fig. 4 permutation miniatures at 0.20 injection
// the profiled greedy policy strictly improves energy-per-flit over the
// static baseline.
func TestGreedyBeatsStaticOnFig4Miniatures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second policy loop in -short mode")
	}
	spec := Spec{
		Name:          "fig4-policy",
		Modes:         []string{"tdm"},
		Patterns:      []string{"tornado", "transpose"},
		Meshes:        []MeshSize{{6, 6}},
		Rates:         []float64{0.20},
		Seeds:         []uint64{1},
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		PolicyProfile: &PolicyProfileSpec{Policies: []string{"static", "greedy"}},
	}
	eng := New(Options{Workers: 4, JobTimeout: 2 * time.Minute})
	rep, err := RunPolicyLoop(context.Background(), eng, spec, nil)
	if err != nil {
		t.Fatalf("RunPolicyLoop: %v", err)
	}
	improved := 0
	for _, out := range rep.Outcomes {
		if out.Err != "" {
			t.Fatalf("outcome %s/%s failed: %s", out.Label, out.Policy, out.Err)
		}
		if out.Policy != "greedy" {
			continue
		}
		t.Logf("%s: energy %+.2f%%, latency %+.2f%%", out.Label, out.EnergyDeltaPct, out.LatencyDeltaPct)
		if out.EnergyDeltaPct < 0 {
			improved++
		}
	}
	if improved < 2 {
		t.Errorf("greedy improved energy-per-flit on %d of 2 miniatures", improved)
	}
}
