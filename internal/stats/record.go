package stats

// RunRecord is a mergeable summary of one or more measured simulation
// regions. Every field is a sum — latencies packet-weighted, fractions
// packet-weighted, throughputs cycle-weighted — so two records combine
// by plain addition and the accessors re-derive the familiar averages.
// This is what the campaign engine persists per job and what aggregate
// views (e.g. averaging a sweep point across seeds) merge.
//
// RunRecord deliberately holds no timestamps or wall-clock durations:
// a record is a pure function of (config, pattern, rate, seed, cycles),
// which is what makes campaign JSONL output byte-identical across
// serial and parallel executions.
type RunRecord struct {
	// Runs is the number of merged measured regions.
	Runs int64 `json:"runs"`
	// Cycles is the total measured cycles across runs.
	Cycles int64 `json:"cycles"`
	// Packets is the total data packets delivered.
	Packets int64 `json:"packets"`
	// NetLatencySum / TotalLatencySum are packet-weighted latency sums
	// in cycles (avg x packets per region).
	NetLatencySum   float64 `json:"net_latency_sum"`
	TotalLatencySum float64 `json:"total_latency_sum"`
	// FlitCycles / PayloadCycles are cycle-weighted throughput sums
	// (flits/node/cycle x cycles per region).
	FlitCycles    float64 `json:"flit_cycles"`
	PayloadCycles float64 `json:"payload_cycles"`
	// CSFracPackets / ConfigFracPackets are packet-weighted fraction
	// sums (fraction x packets per region).
	CSFracPackets     float64 `json:"cs_frac_packets"`
	ConfigFracPackets float64 `json:"config_frac_packets"`
	// Path-sharing and circuit counters.
	Hitchhikes    int64 `json:"hitchhikes,omitempty"`
	VicinityRides int64 `json:"vicinity_rides,omitempty"`
	Circuits      int64 `json:"circuits,omitempty"`
	// ActiveSlots is the largest in-use slot-table region seen across
	// the merged runs (a high-water mark, not a sum).
	ActiveSlots int `json:"active_slots,omitempty"`
	// EnergyPJ is total network energy in picojoules.
	EnergyPJ float64 `json:"energy_pj"`
}

// Merge adds o into r. ActiveSlots takes the maximum; everything else
// sums.
func (r *RunRecord) Merge(o RunRecord) {
	r.Runs += o.Runs
	r.Cycles += o.Cycles
	r.Packets += o.Packets
	r.NetLatencySum += o.NetLatencySum
	r.TotalLatencySum += o.TotalLatencySum
	r.FlitCycles += o.FlitCycles
	r.PayloadCycles += o.PayloadCycles
	r.CSFracPackets += o.CSFracPackets
	r.ConfigFracPackets += o.ConfigFracPackets
	r.Hitchhikes += o.Hitchhikes
	r.VicinityRides += o.VicinityRides
	r.Circuits += o.Circuits
	if o.ActiveSlots > r.ActiveSlots {
		r.ActiveSlots = o.ActiveSlots
	}
	r.EnergyPJ += o.EnergyPJ
}

// AvgNetLatency is the packet-weighted mean injection-to-ejection
// latency in cycles.
func (r RunRecord) AvgNetLatency() float64 {
	if r.Packets == 0 {
		return 0
	}
	return r.NetLatencySum / float64(r.Packets)
}

// AvgTotalLatency is the packet-weighted mean creation-to-ejection
// latency (includes source queueing).
func (r RunRecord) AvgTotalLatency() float64 {
	if r.Packets == 0 {
		return 0
	}
	return r.TotalLatencySum / float64(r.Packets)
}

// Throughput is accepted flits/node/cycle averaged over the merged
// regions.
func (r RunRecord) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.FlitCycles / float64(r.Cycles)
}

// PayloadThroughput is accepted payload-normalised flits/node/cycle.
func (r RunRecord) PayloadThroughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.PayloadCycles / float64(r.Cycles)
}

// CSFlitFraction is the packet-weighted circuit-switched flit share.
func (r RunRecord) CSFlitFraction() float64 {
	if r.Packets == 0 {
		return 0
	}
	return r.CSFracPackets / float64(r.Packets)
}

// ConfigTrafficFraction is the packet-weighted configuration-traffic
// overhead.
func (r RunRecord) ConfigTrafficFraction() float64 {
	if r.Packets == 0 {
		return 0
	}
	return r.ConfigFracPackets / float64(r.Packets)
}

// EnergySavingVs is the fractional energy saving of r relative to a
// baseline record (positive = r uses less energy). Both totals are
// normalized to energy per measured cycle before comparing, so records
// of different lengths (or merged records with different run counts)
// compare meaningfully. ok is false when either record has zero
// measured cycles or the baseline reports zero energy — in those cases
// no saving figure is defined and the caller should not print one.
func (r RunRecord) EnergySavingVs(base RunRecord) (saving float64, ok bool) {
	if r.Cycles == 0 || base.Cycles == 0 || base.EnergyPJ == 0 {
		return 0, false
	}
	perCycle := r.EnergyPJ / float64(r.Cycles)
	basePerCycle := base.EnergyPJ / float64(base.Cycles)
	return 1 - perCycle/basePerCycle, true
}
