package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Max() != 100 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if m := h.Mean(); m != 22 {
		t.Fatalf("mean %v", m)
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	// Property: Percentile(p) is an upper bound no larger than max, at
	// least the true percentile, and monotone in p.
	f := func(vals []uint16, p8 uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Observe(int64(v))
		}
		p := float64(p8) / 255
		got := h.Percentile(p)
		if got > h.Max() {
			return false
		}
		// Upper-bound property: at least ceil(p*(n-1))+1 samples are <= got.
		rank := int64(p * float64(len(vals)-1))
		var le int64
		for _, v := range vals {
			if int64(v) <= got {
				le++
			}
		}
		if le < rank+1 {
			return false
		}
		return h.Percentile(1.0) >= h.Percentile(0.0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative sample not clamped")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	b.Observe(1000)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 1000 {
		t.Fatalf("merge: count=%d max=%d", a.Count(), a.Max())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if !strings.Contains(h.String(), "empty") {
		t.Fatal("empty string form")
	}
	h.Observe(50)
	s := h.String()
	for _, want := range []string{"n=1", "p99", "max=50"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestHistogramPercentileClamp(t *testing.T) {
	var h Histogram
	h.Observe(7)
	if h.Percentile(-1) != h.Percentile(0) || h.Percentile(2) != h.Percentile(1) {
		t.Fatal("out-of-range p not clamped")
	}
}
