package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Max() != 100 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if m := h.Mean(); m != 22 {
		t.Fatalf("mean %v", m)
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	// Property: Percentile(p) is an upper bound no larger than max, at
	// least the true percentile, and monotone in p.
	f := func(vals []uint16, p8 uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Observe(int64(v))
		}
		p := float64(p8) / 255
		got := h.Percentile(p)
		if got > h.Max() {
			return false
		}
		// Upper-bound property: at least ceil(p*(n-1))+1 samples are <= got.
		rank := int64(p * float64(len(vals)-1))
		var le int64
		for _, v := range vals {
			if int64(v) <= got {
				le++
			}
		}
		if le < rank+1 {
			return false
		}
		return h.Percentile(1.0) >= h.Percentile(0.0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHistogramPercentileBoundaries pins the nearest-rank semantics at
// the boundaries that the old truncating rank got wrong: exact p0/p100,
// the p50 of even-sized sets, and tail percentiles that must round up
// to the max sample rather than down past it.
func TestHistogramPercentileBoundaries(t *testing.T) {
	// Samples are powers of two minus structure so every sample sits in
	// its own log2 bucket: bucket tops are then exact sample values and
	// the nearest-rank choice is observable, not hidden by bucket width.
	cases := []struct {
		name    string
		samples []int64
		p       float64
		want    int64
	}{
		{"p0-is-min", []int64{4, 16, 64}, 0, 4},
		{"p100-is-max", []int64{4, 16, 64}, 1, 64},
		{"p-negative-clamps-to-min", []int64{4, 16, 64}, -0.5, 4},
		{"p-above-one-clamps-to-max", []int64{4, 16, 64}, 1.5, 64},
		{"single-sample-any-p", []int64{32}, 0.5, 32},
		// n=2: p50 rank = ceil(0.5*2)-1 = 0 -> first sample. The old
		// int64(0.5*1) also gave 0, but p75 must give rank 1.
		{"two-samples-p50", []int64{4, 64}, 0.5, 7},
		{"two-samples-p75", []int64{4, 64}, 0.75, 64},
		// n=4: p25 rank = ceil(1)-1 = 0; old floor(0.25*3)=0 agrees, but
		// p99 rank = ceil(3.96)-1 = 3 -> max, old floor(0.99*3)=2 -> one low.
		{"four-samples-p25", []int64{2, 8, 32, 128}, 0.25, 3},
		{"four-samples-p99-hits-max", []int64{2, 8, 32, 128}, 0.99, 128},
		// n=1000-ish tail: p99.9 of 100 samples must be the max (rank
		// ceil(99.9)-1 = 99), where truncation gave rank 98.
		{"tail-rounds-up", nil, 0.999, 1 << 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			if tc.samples == nil {
				for i := 0; i < 99; i++ {
					h.Observe(1)
				}
				h.Observe(1 << 20)
			} else {
				for _, v := range tc.samples {
					h.Observe(v)
				}
			}
			if got := h.Percentile(tc.p); got != tc.want {
				t.Fatalf("Percentile(%v) = %d, want %d", tc.p, got, tc.want)
			}
		})
	}
}

func TestHistogramMinTracking(t *testing.T) {
	var h Histogram
	if h.Min() != 0 {
		t.Fatal("empty histogram min not 0")
	}
	h.Observe(50)
	h.Observe(10)
	h.Observe(200)
	if h.Min() != 10 {
		t.Fatalf("min = %d, want 10", h.Min())
	}
	var o Histogram
	o.Observe(3)
	h.Merge(&o)
	if h.Min() != 3 {
		t.Fatalf("merged min = %d, want 3", h.Min())
	}
	// Merging into an empty histogram must adopt the source min even
	// when it is larger than the zero value.
	var e Histogram
	e.Merge(&h)
	if e.Min() != 3 {
		t.Fatalf("merge-into-empty min = %d, want 3", e.Min())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative sample not clamped")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	b.Observe(1000)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 1000 {
		t.Fatalf("merge: count=%d max=%d", a.Count(), a.Max())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if !strings.Contains(h.String(), "empty") {
		t.Fatal("empty string form")
	}
	h.Observe(50)
	s := h.String()
	for _, want := range []string{"n=1", "p99", "max=50"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestHistogramPercentileClamp(t *testing.T) {
	var h Histogram
	h.Observe(7)
	if h.Percentile(-1) != h.Percentile(0) || h.Percentile(2) != h.Percentile(1) {
		t.Fatal("out-of-range p not clamped")
	}
}
