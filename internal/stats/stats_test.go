package stats

import (
	"math"
	"testing"

	"tdmnoc/internal/flit"
)

func pkt(flits int, sw flit.Switching, created, injected, ejected int64, class flit.TrafficClass) *flit.Packet {
	return &flit.Packet{
		Flits: flits, Switching: sw, Class: class,
		CreatedAt: created, InjectedAt: injected, EjectedAt: ejected,
	}
}

func TestDisabledCollectorIgnores(t *testing.T) {
	var c Collector
	c.RecordInjection(pkt(5, flit.PacketSwitched, 0, 1, 0, flit.ClassCPU))
	c.RecordEjection(pkt(5, flit.PacketSwitched, 0, 1, 30, flit.ClassCPU))
	if c.InjectedPackets != 0 || c.EjectedPackets != 0 {
		t.Fatal("disabled collector recorded")
	}
}

func TestRecordAndAverages(t *testing.T) {
	c := Collector{Enabled: true}
	p1 := pkt(5, flit.PacketSwitched, 0, 10, 40, flit.ClassCPU)
	p2 := pkt(4, flit.CircuitSwitched, 5, 20, 30, flit.ClassGPU)
	c.RecordInjection(p1)
	c.RecordInjection(p2)
	c.RecordEjection(p1)
	c.RecordEjection(p2)
	if c.InjectedPackets != 2 || c.InjectedFlits != 9 {
		t.Fatalf("injection counts: %d pkts %d flits", c.InjectedPackets, c.InjectedFlits)
	}
	if c.CSFlits != 4 || c.PSFlits != 5 {
		t.Fatalf("switching split: cs=%d ps=%d", c.CSFlits, c.PSFlits)
	}
	net, ok := c.AvgNetLatency()
	if !ok || math.Abs(net-20) > 1e-9 { // (30 + 10) / 2
		t.Fatalf("avg net latency %v", net)
	}
	tot, _ := c.AvgTotalLatency()
	if math.Abs(tot-32.5) > 1e-9 { // (40 + 25) / 2
		t.Fatalf("avg total latency %v", tot)
	}
	if f := c.CSFlitFraction(); math.Abs(f-4.0/9.0) > 1e-9 {
		t.Fatalf("cs fraction %v", f)
	}
	if c.ClassLatencyCount[int(flit.ClassGPU)] != 1 {
		t.Fatal("per-class accounting missing")
	}
}

func TestEmptyAverages(t *testing.T) {
	var c Collector
	if _, ok := c.AvgNetLatency(); ok {
		t.Fatal("empty collector returned latency")
	}
	if _, ok := c.AvgTotalLatency(); ok {
		t.Fatal("empty collector returned total latency")
	}
	if c.CSFlitFraction() != 0 || c.ConfigTrafficFraction() != 0 {
		t.Fatal("empty fractions non-zero")
	}
	if c.Throughput(0, 0) != 0 || c.PayloadThroughput(5, 0, 0) != 0 {
		t.Fatal("zero-division not guarded")
	}
}

func TestThroughputs(t *testing.T) {
	c := Collector{Enabled: true}
	for i := 0; i < 10; i++ {
		c.RecordEjection(pkt(4, flit.CircuitSwitched, 0, 1, 20, flit.ClassGPU))
	}
	if th := c.Throughput(4, 100); math.Abs(th-0.1) > 1e-9 { // 40 flits / 400
		t.Fatalf("throughput %v", th)
	}
	// Payload throughput normalises to 5-flit packets: 50 / 400.
	if th := c.PayloadThroughput(5, 4, 100); math.Abs(th-0.125) > 1e-9 {
		t.Fatalf("payload throughput %v", th)
	}
}

func TestConfigTrafficFraction(t *testing.T) {
	c := Collector{Enabled: true}
	c.InjectedFlits = 99
	c.ConfigFlitsSent = 1
	if f := c.ConfigTrafficFraction(); math.Abs(f-0.01) > 1e-9 {
		t.Fatalf("config fraction %v", f)
	}
}

func TestMergeAddsEverything(t *testing.T) {
	a := Collector{Enabled: true}
	b := Collector{Enabled: true}
	a.RecordInjection(pkt(5, flit.PacketSwitched, 0, 1, 0, flit.ClassCPU))
	b.RecordEjection(pkt(5, flit.PacketSwitched, 0, 1, 21, flit.ClassCPU))
	b.SetupsSent = 3
	b.Hitchhikes = 2
	b.VicinityRides = 1
	a.Merge(&b)
	if a.InjectedPackets != 1 || a.EjectedPackets != 1 {
		t.Fatalf("merge counts: %d/%d", a.InjectedPackets, a.EjectedPackets)
	}
	if a.SetupsSent != 3 || a.Hitchhikes != 2 || a.VicinityRides != 1 {
		t.Fatal("merge lost protocol counters")
	}
	if a.NetLatencySum != 20 {
		t.Fatalf("merge latency sum %d", a.NetLatencySum)
	}
}
