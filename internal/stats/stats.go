// Package stats collects per-node simulation statistics and aggregates
// them into the metrics the paper reports: average packet latency,
// accepted throughput (flits/node/cycle), circuit-switched flit fraction,
// configuration-traffic overhead, and energy roll-ups.
//
// Each network interface owns a private Collector so the parallel
// executor never shares counters across goroutines; Merge combines them
// at report time.
package stats

import "tdmnoc/internal/flit"

// Collector accumulates one node's traffic statistics. The zero value is
// ready to use. Collection is gated by Enabled so warm-up traffic can be
// excluded, matching the paper's 1000-packet warm-up.
type Collector struct {
	// Enabled gates accumulation (set after warm-up).
	Enabled bool

	// Data packet accounting.
	InjectedPackets int64
	EjectedPackets  int64
	InjectedFlits   int64
	EjectedFlits    int64

	// Ejected data flits by switching mode.
	CSFlits int64
	PSFlits int64

	// Latency sums over ejected data packets (cycles).
	NetLatencySum   int64 // injection to ejection
	TotalLatencySum int64 // creation to ejection (includes source queueing)
	LatencyCount    int64

	// Latency distributions (total latency) overall and split by
	// switching mode — the tails matter for the starvation argument
	// behind the 90 % reservation cap.
	LatencyHist   Histogram
	PSLatencyHist Histogram
	CSLatencyHist Histogram

	// Per-class latency (heterogeneous evaluation).
	ClassLatencySum   [4]int64
	ClassLatencyCount [4]int64
	ClassEjected      [4]int64
	ClassFlits        [4]int64
	ClassCSFlits      [4]int64

	// Configuration traffic.
	SetupsSent      int64
	SetupsOK        int64
	SetupsFailed    int64
	TeardownsSent   int64
	ConfigEjected   int64 // config packets consumed at this node
	ConfigFlitsSent int64

	// Path sharing.
	Hitchhikes         int64 // messages that rode another source's circuit
	VicinityRides      int64 // messages that hopped off near their destination
	ShareContentions   int64 // sharing attempts abandoned due to contention
	OwnCircuitSends    int64 // messages sent on this node's own circuits
	CircuitsRegistered int64
	CircuitsTorndown   int64
}

// RecordInjection notes a data packet entering the network.
func (c *Collector) RecordInjection(p *flit.Packet) {
	if !c.Enabled {
		return
	}
	c.InjectedPackets++
	c.InjectedFlits += int64(p.Flits)
}

// RecordEjection notes a data packet fully received at this node.
func (c *Collector) RecordEjection(p *flit.Packet) {
	if !c.Enabled {
		return
	}
	c.EjectedPackets++
	c.EjectedFlits += int64(p.Flits)
	if p.Switching == flit.CircuitSwitched {
		c.CSFlits += int64(p.Flits)
		c.ClassCSFlits[int(p.Class)] += int64(p.Flits)
	} else {
		c.PSFlits += int64(p.Flits)
	}
	c.ClassFlits[int(p.Class)] += int64(p.Flits)
	if nl := p.NetworkLatency(); nl >= 0 {
		tl := p.TotalLatency()
		c.NetLatencySum += nl
		c.TotalLatencySum += tl
		c.LatencyCount++
		cl := int(p.Class)
		c.ClassLatencySum[cl] += tl
		c.ClassLatencyCount[cl]++
		c.LatencyHist.Observe(tl)
		if p.Switching == flit.CircuitSwitched {
			c.CSLatencyHist.Observe(tl)
		} else {
			c.PSLatencyHist.Observe(tl)
		}
	}
	c.ClassEjected[int(p.Class)]++
}

// Merge adds o into c.
func (c *Collector) Merge(o *Collector) {
	c.InjectedPackets += o.InjectedPackets
	c.EjectedPackets += o.EjectedPackets
	c.InjectedFlits += o.InjectedFlits
	c.EjectedFlits += o.EjectedFlits
	c.CSFlits += o.CSFlits
	c.PSFlits += o.PSFlits
	c.NetLatencySum += o.NetLatencySum
	c.TotalLatencySum += o.TotalLatencySum
	c.LatencyCount += o.LatencyCount
	c.LatencyHist.Merge(&o.LatencyHist)
	c.PSLatencyHist.Merge(&o.PSLatencyHist)
	c.CSLatencyHist.Merge(&o.CSLatencyHist)
	for i := range c.ClassLatencySum {
		c.ClassLatencySum[i] += o.ClassLatencySum[i]
		c.ClassLatencyCount[i] += o.ClassLatencyCount[i]
		c.ClassEjected[i] += o.ClassEjected[i]
		c.ClassFlits[i] += o.ClassFlits[i]
		c.ClassCSFlits[i] += o.ClassCSFlits[i]
	}
	c.SetupsSent += o.SetupsSent
	c.SetupsOK += o.SetupsOK
	c.SetupsFailed += o.SetupsFailed
	c.TeardownsSent += o.TeardownsSent
	c.ConfigEjected += o.ConfigEjected
	c.ConfigFlitsSent += o.ConfigFlitsSent
	c.Hitchhikes += o.Hitchhikes
	c.VicinityRides += o.VicinityRides
	c.ShareContentions += o.ShareContentions
	c.OwnCircuitSends += o.OwnCircuitSends
	c.CircuitsRegistered += o.CircuitsRegistered
	c.CircuitsTorndown += o.CircuitsTorndown
}

// AvgNetLatency returns the mean injection-to-ejection latency in cycles,
// or 0 with ok=false when no packets completed.
func (c *Collector) AvgNetLatency() (float64, bool) {
	if c.LatencyCount == 0 {
		return 0, false
	}
	return float64(c.NetLatencySum) / float64(c.LatencyCount), true
}

// AvgTotalLatency returns the mean creation-to-ejection latency in cycles.
func (c *Collector) AvgTotalLatency() (float64, bool) {
	if c.LatencyCount == 0 {
		return 0, false
	}
	return float64(c.TotalLatencySum) / float64(c.LatencyCount), true
}

// Throughput returns accepted flits per node per cycle.
func (c *Collector) Throughput(nodes int, cycles int64) float64 {
	if nodes == 0 || cycles == 0 {
		return 0
	}
	return float64(c.EjectedFlits) / (float64(nodes) * float64(cycles))
}

// PayloadThroughput returns accepted traffic normalised to
// packet-switched flit equivalents (packets times the packet-switched
// packet length, per node per cycle). A circuit-switched packet carries
// the same 64-byte cache line in 4 flits instead of 5, so raw flit
// throughput would undercount the hybrid network's delivered payload.
func (c *Collector) PayloadThroughput(psFlitsPerPacket, nodes int, cycles int64) float64 {
	if nodes == 0 || cycles == 0 {
		return 0
	}
	return float64(c.EjectedPackets*int64(psFlitsPerPacket)) / (float64(nodes) * float64(cycles))
}

// CSFlitFraction is the fraction of ejected data flits that travelled
// circuit-switched (Table III's right column).
func (c *Collector) CSFlitFraction() float64 {
	total := c.CSFlits + c.PSFlits
	if total == 0 {
		return 0
	}
	return float64(c.CSFlits) / float64(total)
}

// ClassCSFraction is the circuit-switched flit fraction for one traffic
// class (Table III reports it for GPU traffic).
func (c *Collector) ClassCSFraction(class flit.TrafficClass) float64 {
	if c.ClassFlits[int(class)] == 0 {
		return 0
	}
	return float64(c.ClassCSFlits[int(class)]) / float64(c.ClassFlits[int(class)])
}

// ConfigTrafficFraction is configuration flits as a fraction of all flits
// sent (the paper observes it stays below 1 %).
func (c *Collector) ConfigTrafficFraction() float64 {
	total := c.InjectedFlits + c.ConfigFlitsSent
	if total == 0 {
		return 0
	}
	return float64(c.ConfigFlitsSent) / float64(total)
}
