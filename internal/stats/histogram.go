package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Histogram is a streaming log2-bucketed latency histogram: constant
// memory, O(1) insert, and percentile queries accurate to within a factor
// of 2 (bucket width), which is plenty for latency-tail statements like
// "the packet-switched p99 stays bounded under heavy reservation".
type Histogram struct {
	buckets [64]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Observe inserts one sample (negative samples are clamped to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observed sample (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest observed sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns an upper bound for the p-th percentile (p in [0,1])
// under nearest-rank semantics: with n samples sorted ascending, the
// p-th percentile is the sample at zero-based rank ceil(p*n)-1, and the
// returned value is the top of the log2 bucket holding that rank,
// clamped to the observed max. The boundary cases are pinned exactly:
// Percentile(0) is the observed min, Percentile(1) is the observed max,
// and out-of-range p is clamped to [0, 1]. Returns 0 when empty.
//
// The previous implementation computed the rank as int64(p*(count-1)),
// which truncates toward zero and systematically lands one sample low
// on exact percentile boundaries (e.g. p50 of 4 samples picked rank 1
// of a 1.5 target); nearest-rank is the standard fix.
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(p*float64(h.count))) - 1
	if rank < 0 {
		rank = 0
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i]
		if seen > rank {
			hi := bucketLow(i+1) - 1
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Merge adds o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	if o.count > 0 && (h.count == 0 || o.min < h.min) {
		h.min = o.min
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50<=%d p95<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99), h.max)
	return b.String()
}
