package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram is a streaming log2-bucketed latency histogram: constant
// memory, O(1) insert, and percentile queries accurate to within a factor
// of 2 (bucket width), which is plenty for latency-tail statements like
// "the packet-switched p99 stays bounded under heavy reservation".
type Histogram struct {
	buckets [64]int64
	count   int64
	sum     int64
	max     int64
}

// Observe inserts one sample (negative samples are clamped to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest observed sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns an upper bound for the p-th percentile (p in [0,1]):
// the top of the bucket containing that rank. Returns 0 when empty.
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p * float64(h.count-1))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i]
		if seen > rank {
			hi := bucketLow(i+1) - 1
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Merge adds o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50<=%d p95<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99), h.max)
	return b.String()
}
