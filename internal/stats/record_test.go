package stats

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRunRecordAccessors(t *testing.T) {
	r := RunRecord{
		Runs: 1, Cycles: 1000, Packets: 200,
		NetLatencySum: 200 * 25.0, TotalLatencySum: 200 * 40.0,
		FlitCycles: 1000 * 0.2, PayloadCycles: 1000 * 0.25,
		CSFracPackets: 200 * 0.5, ConfigFracPackets: 200 * 0.01,
		EnergyPJ: 5000,
	}
	if !approx(r.AvgNetLatency(), 25) {
		t.Errorf("AvgNetLatency = %v, want 25", r.AvgNetLatency())
	}
	if !approx(r.AvgTotalLatency(), 40) {
		t.Errorf("AvgTotalLatency = %v, want 40", r.AvgTotalLatency())
	}
	if !approx(r.Throughput(), 0.2) {
		t.Errorf("Throughput = %v, want 0.2", r.Throughput())
	}
	if !approx(r.PayloadThroughput(), 0.25) {
		t.Errorf("PayloadThroughput = %v, want 0.25", r.PayloadThroughput())
	}
	if !approx(r.CSFlitFraction(), 0.5) {
		t.Errorf("CSFlitFraction = %v, want 0.5", r.CSFlitFraction())
	}
	if !approx(r.ConfigTrafficFraction(), 0.01) {
		t.Errorf("ConfigTrafficFraction = %v, want 0.01", r.ConfigTrafficFraction())
	}
	if s, ok := r.EnergySavingVs(RunRecord{Cycles: 1000, EnergyPJ: 10000}); !ok || !approx(s, 0.5) {
		t.Errorf("EnergySavingVs = %v, %v, want 0.5, true", s, ok)
	}
	// Per-cycle normalization: a baseline twice as long with twice the
	// energy has the same energy per cycle, so the saving is unchanged.
	if s, ok := r.EnergySavingVs(RunRecord{Cycles: 2000, EnergyPJ: 20000}); !ok || !approx(s, 0.5) {
		t.Errorf("EnergySavingVs (2x-length baseline) = %v, %v, want 0.5, true", s, ok)
	}
}

func TestEnergySavingVsUndefined(t *testing.T) {
	full := RunRecord{Cycles: 1000, EnergyPJ: 5000}
	cases := map[string]struct{ r, base RunRecord }{
		"zero record vs zero":  {RunRecord{}, RunRecord{}},
		"zero-cycle numerator": {RunRecord{EnergyPJ: 5000}, full},
		"zero-cycle baseline":  {full, RunRecord{EnergyPJ: 5000}},
		"zero-energy baseline": {full, RunRecord{Cycles: 1000}},
		"failed-job record":    {RunRecord{}, full},
	}
	for name, c := range cases {
		if s, ok := c.r.EnergySavingVs(c.base); ok || s != 0 {
			t.Errorf("%s: EnergySavingVs = %v, %v, want 0, false", name, s, ok)
		}
	}
}

func TestRunRecordZeroSafe(t *testing.T) {
	var z RunRecord
	for name, v := range map[string]float64{
		"AvgNetLatency": z.AvgNetLatency(), "AvgTotalLatency": z.AvgTotalLatency(),
		"Throughput": z.Throughput(), "PayloadThroughput": z.PayloadThroughput(),
		"CSFlitFraction": z.CSFlitFraction(), "ConfigTrafficFraction": z.ConfigTrafficFraction(),
	} {
		if v != 0 {
			t.Errorf("%s on zero record = %v, want 0", name, v)
		}
	}
}

// TestRunRecordMerge checks that merging two regions reproduces the
// packet- and cycle-weighted averages of the combined region.
func TestRunRecordMerge(t *testing.T) {
	a := RunRecord{Runs: 1, Cycles: 1000, Packets: 100, NetLatencySum: 100 * 20,
		FlitCycles: 1000 * 0.1, CSFracPackets: 100 * 0.4, EnergyPJ: 1000, ActiveSlots: 16,
		Hitchhikes: 3, Circuits: 7}
	b := RunRecord{Runs: 1, Cycles: 3000, Packets: 300, NetLatencySum: 300 * 40,
		FlitCycles: 3000 * 0.3, CSFracPackets: 300 * 0.8, EnergyPJ: 3000, ActiveSlots: 8,
		Hitchhikes: 1, Circuits: 2}

	m := a
	m.Merge(b)
	if m.Runs != 2 || m.Cycles != 4000 || m.Packets != 400 {
		t.Fatalf("merged counts = %+v", m)
	}
	// Weighted mean latency: (100*20 + 300*40) / 400 = 35.
	if !approx(m.AvgNetLatency(), 35) {
		t.Errorf("merged AvgNetLatency = %v, want 35", m.AvgNetLatency())
	}
	// Weighted throughput: (1000*0.1 + 3000*0.3) / 4000 = 0.25.
	if !approx(m.Throughput(), 0.25) {
		t.Errorf("merged Throughput = %v, want 0.25", m.Throughput())
	}
	// Weighted CS fraction: (100*0.4 + 300*0.8) / 400 = 0.7.
	if !approx(m.CSFlitFraction(), 0.7) {
		t.Errorf("merged CSFlitFraction = %v, want 0.7", m.CSFlitFraction())
	}
	if m.EnergyPJ != 4000 {
		t.Errorf("merged EnergyPJ = %v, want 4000", m.EnergyPJ)
	}
	if m.ActiveSlots != 16 {
		t.Errorf("merged ActiveSlots = %d, want max 16", m.ActiveSlots)
	}
	if m.Hitchhikes != 4 || m.Circuits != 9 {
		t.Errorf("merged counters = %+v", m)
	}
}
