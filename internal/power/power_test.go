package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComponentString(t *testing.T) {
	names := map[Component]string{
		CompBuffer: "buffer", CompCS: "cs-component", CompXbar: "crossbar",
		CompArb: "arbiter", CompClock: "clock", CompLink: "link",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q want %q", c, c.String(), want)
		}
	}
	if Component(42).String() == "" {
		t.Error("unknown component produced empty string")
	}
}

func TestReportDynamicCounting(t *testing.T) {
	p := Default45nm()
	m := RouterMeter{
		BufWrites: 10, BufReads: 10, XbarFlits: 10, LinkFlits: 10,
		VCArbs: 2, SWArbs: 10, ActiveCycles: 100,
	}
	b := m.Report(p)
	wantBuf := 10*p.BufferWritePJ + 10*p.BufferReadPJ
	if math.Abs(b.DynamicPJ[CompBuffer]-wantBuf) > 1e-9 {
		t.Errorf("buffer dynamic %.3f, want %.3f", b.DynamicPJ[CompBuffer], wantBuf)
	}
	if math.Abs(b.DynamicPJ[CompXbar]-10*p.XbarPJ) > 1e-9 {
		t.Errorf("xbar dynamic wrong")
	}
	if math.Abs(b.DynamicPJ[CompClock]-100*p.ClockPJPerCycle) > 1e-9 {
		t.Errorf("clock dynamic wrong")
	}
	if b.DynamicPJ[CompCS] != 0 {
		t.Errorf("pure PS meter has CS energy %.3f", b.DynamicPJ[CompCS])
	}
}

func TestReportStaticScalesWithCycles(t *testing.T) {
	p := Default45nm()
	m1 := RouterMeter{Cycles: 1000, BufSlotCycles: 100 * 1000, LinkChannels: 4}
	m2 := RouterMeter{Cycles: 2000, BufSlotCycles: 100 * 2000, LinkChannels: 4}
	b1, b2 := m1.Report(p), m2.Report(p)
	for c := Component(0); c < NumComponents; c++ {
		if b1.StaticPJ[c] == 0 && c != CompCS {
			continue
		}
		if math.Abs(b2.StaticPJ[c]-2*b1.StaticPJ[c]) > 1e-9*math.Max(1, b2.StaticPJ[c]) {
			t.Errorf("%v static did not double: %g vs %g", c, b1.StaticPJ[c], b2.StaticPJ[c])
		}
	}
}

func TestVCGatingReducesBufferLeakage(t *testing.T) {
	p := Default45nm()
	full := RouterMeter{Cycles: 1000, BufSlotCycles: 100 * 1000}
	gated := RouterMeter{Cycles: 1000, BufSlotCycles: 50 * 1000} // half the VCs off
	if !(gated.Report(p).StaticPJ[CompBuffer] < full.Report(p).StaticPJ[CompBuffer]) {
		t.Fatal("gating buffer slots did not reduce buffer leakage")
	}
}

func TestSlotTableLeakageIsSmallOverhead(t *testing.T) {
	// A hybrid router with full 128-entry tables on 5 ports should pay a
	// static overhead of a few percent, matching the ~2.1 % of Fig. 9(b).
	p := Default45nm()
	ps := RouterMeter{Cycles: 10000, BufSlotCycles: 100 * 10000, LinkChannels: 4}
	hy := ps
	hy.SlotEntryCycles = 640 * 10000
	hy.CSCycles = 10000
	psB, hyB := ps.Report(p), hy.Report(p)
	overhead := (hyB.TotalStaticPJ() - psB.TotalStaticPJ()) / psB.TotalStaticPJ()
	if overhead <= 0.005 || overhead >= 0.08 {
		t.Fatalf("CS static overhead = %.3f, want a few percent", overhead)
	}
}

func TestBaselineDynamicProportions(t *testing.T) {
	// With a representative traffic profile (each flit: write+read+xbar+
	// link+arb, routers active most cycles), buffers should be the largest
	// dynamic component and arbiters the smallest, clock and link in
	// between — the Fig. 9(a) baseline shape.
	p := Default45nm()
	const flits = 6000
	m := RouterMeter{
		BufWrites: flits, BufReads: flits, XbarFlits: flits, LinkFlits: flits,
		VCArbs: flits / 5, SWArbs: flits, ActiveCycles: 8000, Cycles: 10000,
	}
	b := m.Report(p)
	tot := b.TotalDynamicPJ()
	share := func(c Component) float64 { return b.DynamicPJ[c] / tot }
	if s := share(CompBuffer); s < 0.28 || s > 0.45 {
		t.Errorf("buffer dynamic share %.2f outside [0.28,0.45]", s)
	}
	if s := share(CompClock); s < 0.10 || s > 0.35 {
		t.Errorf("clock dynamic share %.2f outside [0.10,0.35]", s)
	}
	if s := share(CompLink); s < 0.10 || s > 0.30 {
		t.Errorf("link dynamic share %.2f outside [0.10,0.30]", s)
	}
	if share(CompArb) > 0.10 {
		t.Errorf("arbiter share %.2f too large", share(CompArb))
	}
	if share(CompBuffer) <= share(CompXbar) {
		t.Error("buffers should dominate crossbar energy")
	}
}

func TestBreakdownAddAndTotals(t *testing.T) {
	var a, b Breakdown
	a.DynamicPJ[CompBuffer] = 1
	a.StaticPJ[CompLink] = 2
	b.DynamicPJ[CompBuffer] = 3
	b.StaticPJ[CompClock] = 4
	s := a.Add(b)
	if s.DynamicPJ[CompBuffer] != 4 || s.StaticPJ[CompLink] != 2 || s.StaticPJ[CompClock] != 4 {
		t.Fatalf("Add produced %+v", s)
	}
	if s.TotalDynamicPJ() != 4 || s.TotalStaticPJ() != 6 || s.TotalPJ() != 10 {
		t.Fatalf("totals wrong: %v %v %v", s.TotalDynamicPJ(), s.TotalStaticPJ(), s.TotalPJ())
	}
	// Add must not mutate its receiver (value semantics).
	if a.DynamicPJ[CompBuffer] != 1 {
		t.Error("Add mutated receiver")
	}
}

func TestMeterReset(t *testing.T) {
	m := RouterMeter{BufWrites: 5, Cycles: 10, SlotEntryCycles: 3}
	m.Reset()
	if m != (RouterMeter{}) {
		t.Fatalf("Reset left %+v", m)
	}
}

func TestReportMonotoneInEvents(t *testing.T) {
	// Property: adding events never decreases total energy.
	p := Default45nm()
	f := func(w, r, x uint16) bool {
		m1 := RouterMeter{BufWrites: int64(w), BufReads: int64(r), XbarFlits: int64(x)}
		m2 := RouterMeter{BufWrites: int64(w) + 1, BufReads: int64(r) + 2, XbarFlits: int64(x) + 3}
		return m2.Report(p).TotalPJ() >= m1.Report(p).TotalPJ()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAreaCalibration(t *testing.T) {
	a := DefaultArea45nm()
	ps := PacketRouterArea(a)
	hy := HybridRouterArea(a)
	if math.Abs(ps-0.177) > 0.002 {
		t.Errorf("packet router area %.4f mm^2, want 0.177", ps)
	}
	if math.Abs(hy-0.188) > 0.002 {
		t.Errorf("hybrid router area %.4f mm^2, want 0.188", hy)
	}
	overhead := (hy - ps) / ps
	if math.Abs(overhead-0.062) > 0.006 {
		t.Errorf("hybrid area overhead %.3f, want 0.062 (Section IV-A)", overhead)
	}
}

func TestAreaScalesWithStructures(t *testing.T) {
	a := DefaultArea45nm()
	small := RouterAreaMM2(a, RouterAreaConfig{Ports: 5, VCsPerPort: 2, BufferDepth: 5})
	big := RouterAreaMM2(a, RouterAreaConfig{Ports: 5, VCsPerPort: 8, BufferDepth: 5})
	if small >= big {
		t.Error("area did not grow with VC count")
	}
	st128 := RouterAreaMM2(a, RouterAreaConfig{Ports: 5, VCsPerPort: 4, BufferDepth: 5, SlotTableEntries: 128, Hybrid: true})
	st256 := RouterAreaMM2(a, RouterAreaConfig{Ports: 5, VCsPerPort: 4, BufferDepth: 5, SlotTableEntries: 256, Hybrid: true})
	if st128 >= st256 {
		t.Error("area did not grow with slot-table size")
	}
}

func TestLeakPJConversion(t *testing.T) {
	// 1 mW for 1.5e9 cycles at 1.5 GHz is 1 mW for 1 s = 1 mJ = 1e9 pJ.
	got := leakPJ(1.0, 1_500_000_000, 1.5e9)
	if math.Abs(got-1e9) > 1 {
		t.Fatalf("leakPJ = %g, want 1e9", got)
	}
}

func TestDeriveParamsPositive(t *testing.T) {
	p := DeriveParams(Tech45nm(), DefaultGeometry())
	checks := map[string]float64{
		"BufferWritePJ": p.BufferWritePJ, "BufferReadPJ": p.BufferReadPJ,
		"XbarPJ": p.XbarPJ, "VCArbPJ": p.VCArbPJ, "SWArbPJ": p.SWArbPJ,
		"LinkPJ": p.LinkPJ, "ClockPJPerCycle": p.ClockPJPerCycle,
		"SlotReadPJ": p.SlotReadPJ, "SlotWritePJ": p.SlotWritePJ,
		"BufferLeakMWPerSlot": p.BufferLeakMWPerSlot,
		"SlotLeakMWPerEntry":  p.SlotLeakMWPerEntry,
		"ClockLeakMW":         p.ClockLeakMW,
	}
	for name, v := range checks {
		if v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
}

func TestDerivedNearCalibrated(t *testing.T) {
	// The first-principles derivation should land within an order of
	// magnitude of the RTL-calibrated constants (the paper applies the
	// same correction to Orion).
	derived := DeriveParams(Tech45nm(), DefaultGeometry())
	if gap := RelativeGap(derived, Default45nm()); gap > 1.0 {
		t.Errorf("derived parameters are 10^%.2f away from calibrated", gap)
	}
}

func TestDeriveParamsScaleWithGeometry(t *testing.T) {
	tech := Tech45nm()
	small := DefaultGeometry()
	big := small
	big.BufDepth *= 2
	big.FlitBits *= 2
	ps, pb := DeriveParams(tech, small), DeriveParams(tech, big)
	if pb.BufferReadPJ <= ps.BufferReadPJ {
		t.Error("buffer read energy did not grow with array size")
	}
	if pb.LinkPJ <= ps.LinkPJ {
		t.Error("link energy did not grow with flit width")
	}
	wide := small
	wide.SlotEntries *= 4
	if DeriveParams(tech, wide).SlotReadPJ <= ps.SlotReadPJ {
		t.Error("slot read energy did not grow with table size")
	}
}

func TestSlotTableMuchCheaperThanBuffer(t *testing.T) {
	// The core energy argument: a slot-table lookup must be far cheaper
	// than a buffer write+read, or circuit switching saves nothing.
	p := DeriveParams(Tech45nm(), DefaultGeometry())
	if p.SlotReadPJ*5 > p.BufferWritePJ+p.BufferReadPJ {
		t.Errorf("slot read %.3f pJ not clearly cheaper than buffering %.3f pJ",
			p.SlotReadPJ, p.BufferWritePJ+p.BufferReadPJ)
	}
}

func TestRelativeGapInfOnZero(t *testing.T) {
	var zero Params
	if g := RelativeGap(zero, Default45nm()); !math.IsInf(g, 1) {
		t.Errorf("gap with zero params = %v, want +Inf", g)
	}
}
