// Package power is the reproduction's stand-in for Orion 2.0 plus the
// paper's RTL calibration: a parametric event-based energy model for NoC
// routers at 45 nm / 1.0 V / 1.5 GHz (Table I).
//
// The model is deliberately simple and transparent: every router keeps
// integer counters of microarchitectural events (buffer reads/writes,
// crossbar traversals, arbitrations, link flits, slot-table accesses) and
// integer integrators of leaky-component occupancy (active buffer slots x
// cycles, active slot-table entries x cycles). Energy is computed only at
// report time from the counters and the per-event constants in Params.
//
// Absolute joules are not the point — the paper reports *relative* savings
// — so the default constants are calibrated to make the baseline
// packet-switched router's energy breakdown match the proportions of
// Fig. 9 (buffers roughly a third of dynamic energy, clock a quarter, link
// a fifth; leakage dominated by input buffers). All savings reported by
// the experiments are measured outcomes of the simulation, not assertions.
package power

import "fmt"

// Component identifies an energy sink in the breakdown, matching the
// categories of Fig. 9.
type Component int

const (
	// CompBuffer is input buffer read/write energy and buffer leakage.
	CompBuffer Component = iota
	// CompCS is everything added for circuit switching: slot tables,
	// circuit-switched latches, demultiplexers, and the DLT.
	CompCS
	// CompXbar is crossbar traversal energy and leakage.
	CompXbar
	// CompArb is VC and switch allocator energy.
	CompArb
	// CompClock is the router clock tree.
	CompClock
	// CompLink is inter-router wire energy.
	CompLink
	// NumComponents is the number of breakdown categories.
	NumComponents
)

// String returns the Fig. 9 label for the component.
func (c Component) String() string {
	switch c {
	case CompBuffer:
		return "buffer"
	case CompCS:
		return "cs-component"
	case CompXbar:
		return "crossbar"
	case CompArb:
		return "arbiter"
	case CompClock:
		return "clock"
	case CompLink:
		return "link"
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// Params holds the technology constants. Dynamic energies are picojoules
// per event; leakage values are milliwatts per leaking instance.
type Params struct {
	// FrequencyHz converts cycles to seconds for static energy.
	FrequencyHz float64

	// Dynamic energy per event (pJ).
	BufferWritePJ   float64 // per flit written into an input VC buffer
	BufferReadPJ    float64 // per flit read out of an input VC buffer
	XbarPJ          float64 // per flit crossing the crossbar
	VCArbPJ         float64 // per VC allocation performed
	SWArbPJ         float64 // per switch allocation grant
	LinkPJ          float64 // per flit per link traversal
	ClockPJPerCycle float64 // clock tree, per router per cycle (gated off with the router idle fraction)
	SlotReadPJ      float64 // per slot-table lookup
	SlotWritePJ     float64 // per slot-table entry update
	CSLatchPJ       float64 // per circuit-switched flit latched/bypassing
	DLTPJ           float64 // per destination-lookup-table access

	// Leakage (mW per instance).
	BufferLeakMWPerSlot  float64 // per flit-slot of active buffering
	SlotLeakMWPerEntry   float64 // per active slot-table entry (per input port)
	XbarLeakMW           float64 // per router
	ArbLeakMW            float64 // per router
	CSFixedLeakMW        float64 // latches + demux + comparators, per hybrid router
	ClockLeakMW          float64 // per router
	LinkLeakMWPerChannel float64 // per unidirectional link
}

// Default45nm returns the calibrated 45 nm / 1.0 V / 1.5 GHz parameter set.
func Default45nm() Params {
	return Params{
		FrequencyHz: 1.5e9,

		BufferWritePJ:   1.15,
		BufferReadPJ:    0.95,
		XbarPJ:          0.84,
		VCArbPJ:         0.12,
		SWArbPJ:         0.12,
		LinkPJ:          1.20,
		ClockPJPerCycle: 0.80,
		SlotReadPJ:      0.020,
		SlotWritePJ:     0.055,
		CSLatchPJ:       0.060,
		DLTPJ:           0.030,

		BufferLeakMWPerSlot:  0.0200, // 100 slots (5 ports x 4 VCs x 5 deep) -> 2.0 mW/router
		SlotLeakMWPerEntry:   0.000115,
		XbarLeakMW:           0.22,
		ArbLeakMW:            0.06,
		CSFixedLeakMW:        0.018,
		ClockLeakMW:          0.30,
		LinkLeakMWPerChannel: 0.020,
	}
}

// RouterMeter accumulates energy-relevant events for one router (plus its
// outgoing links). All fields are plain integers so the per-cycle cost of
// metering is negligible and report-time conversion is exact.
type RouterMeter struct {
	// Dynamic event counts.
	BufWrites   int64
	BufReads    int64
	XbarFlits   int64
	VCArbs      int64
	SWArbs      int64
	LinkFlits   int64
	SlotReads   int64
	SlotWrites  int64
	CSLatches   int64
	DLTAccesses int64

	// ActiveCycles counts cycles in which the router did any work; the
	// clock tree burns dynamic energy only on those (simple clock gating).
	ActiveCycles int64
	// Cycles counts every simulated cycle (for leakage).
	Cycles int64

	// Leakage integrators: instance-cycles of powered-on state.
	BufSlotCycles   int64 // active buffer slots x cycles (VC power gating shrinks this)
	SlotEntryCycles int64 // active slot-table entries x cycles (dynamic sizing shrinks this)
	CSCycles        int64 // cycles the fixed CS hardware is present (0 for pure PS routers)
	LinkChannels    int64 // number of outgoing channels (leak for Cycles)
}

// Breakdown is per-component dynamic and static energy in picojoules.
type Breakdown struct {
	DynamicPJ [NumComponents]float64
	StaticPJ  [NumComponents]float64
}

// TotalDynamicPJ sums dynamic energy across components.
func (b Breakdown) TotalDynamicPJ() float64 {
	t := 0.0
	for _, v := range b.DynamicPJ {
		t += v
	}
	return t
}

// TotalStaticPJ sums static energy across components.
func (b Breakdown) TotalStaticPJ() float64 {
	t := 0.0
	for _, v := range b.StaticPJ {
		t += v
	}
	return t
}

// TotalPJ is dynamic + static energy.
func (b Breakdown) TotalPJ() float64 { return b.TotalDynamicPJ() + b.TotalStaticPJ() }

// Add accumulates o into b and returns the sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	for i := 0; i < int(NumComponents); i++ {
		b.DynamicPJ[i] += o.DynamicPJ[i]
		b.StaticPJ[i] += o.StaticPJ[i]
	}
	return b
}

// leakPJ converts mW sustained for cycles at frequency f to picojoules:
// mW * 1e-3 W * (cycles / f) s * 1e12 pJ/J.
func leakPJ(mw float64, cycles int64, f float64) float64 {
	return mw * 1e9 * float64(cycles) / f
}

// Report converts the meter's counters into an energy breakdown.
func (m *RouterMeter) Report(p Params) Breakdown {
	var b Breakdown
	b.DynamicPJ[CompBuffer] = float64(m.BufWrites)*p.BufferWritePJ + float64(m.BufReads)*p.BufferReadPJ
	b.DynamicPJ[CompXbar] = float64(m.XbarFlits) * p.XbarPJ
	b.DynamicPJ[CompArb] = float64(m.VCArbs)*p.VCArbPJ + float64(m.SWArbs)*p.SWArbPJ
	b.DynamicPJ[CompLink] = float64(m.LinkFlits) * p.LinkPJ
	b.DynamicPJ[CompClock] = float64(m.ActiveCycles) * p.ClockPJPerCycle
	b.DynamicPJ[CompCS] = float64(m.SlotReads)*p.SlotReadPJ +
		float64(m.SlotWrites)*p.SlotWritePJ +
		float64(m.CSLatches)*p.CSLatchPJ +
		float64(m.DLTAccesses)*p.DLTPJ

	f := p.FrequencyHz
	b.StaticPJ[CompBuffer] = leakPJ(p.BufferLeakMWPerSlot, m.BufSlotCycles, f)
	b.StaticPJ[CompCS] = leakPJ(p.SlotLeakMWPerEntry, m.SlotEntryCycles, f) +
		leakPJ(p.CSFixedLeakMW, m.CSCycles, f)
	b.StaticPJ[CompXbar] = leakPJ(p.XbarLeakMW, m.Cycles, f)
	b.StaticPJ[CompArb] = leakPJ(p.ArbLeakMW, m.Cycles, f)
	b.StaticPJ[CompClock] = leakPJ(p.ClockLeakMW, m.Cycles, f)
	b.StaticPJ[CompLink] = leakPJ(p.LinkLeakMWPerChannel, m.Cycles*m.LinkChannels, f)
	return b
}

// Reset zeroes every counter.
func (m *RouterMeter) Reset() { *m = RouterMeter{} }
