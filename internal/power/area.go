package power

// Area model reproducing the Section IV-A accounting: synthesised with the
// Nangate Open Cell Library at 45 nm, a packet-switched router occupies
// 0.177 mm^2 and a hybrid-switched router 0.188 mm^2, a 6.2 % overhead.
// The model decomposes those totals into per-component contributions so
// configuration changes (VC count, buffer depth, slot-table size) move the
// totals plausibly.

// AreaParams holds per-component area constants in mm^2.
type AreaParams struct {
	BufferPerSlot  float64 // per flit-slot of input buffering
	XbarBase       float64 // matrix crossbar (5x5, 16-byte channel)
	AllocBase      float64 // VC + switch allocators
	ClockMisc      float64 // clock tree, control, misc
	SlotPerEntry   float64 // per slot-table entry (per input port)
	CSLatchPerPort float64 // circuit-switched latch + demux per input port
	DLTPerEntry    float64 // destination lookup table entry
}

// DefaultArea45nm returns constants calibrated so a 5-port, 4-VC,
// 5-deep-buffer router totals 0.177 mm^2 and adding 128-entry slot tables
// per input port plus CS latches and an 8-entry DLT totals 0.188 mm^2.
func DefaultArea45nm() AreaParams {
	return AreaParams{
		BufferPerSlot:  0.00082, // 100 slots -> 0.082 mm^2 (buffers dominate)
		XbarBase:       0.052,
		AllocBase:      0.012,
		ClockMisc:      0.031,
		SlotPerEntry:   1.45e-5, // 640 entries -> 0.00928 mm^2
		CSLatchPerPort: 2.6e-4,  // 5 ports -> 0.0013 mm^2
		DLTPerEntry:    4.0e-5,  // 8 entries -> 0.00032 mm^2
	}
}

// RouterAreaConfig describes the structures whose area is counted.
type RouterAreaConfig struct {
	Ports       int
	VCsPerPort  int
	BufferDepth int
	// Hybrid extensions; zero values describe a pure packet-switched router.
	SlotTableEntries int // per input port
	DLTEntries       int
	Hybrid           bool
}

// RouterAreaMM2 returns the router area in mm^2.
func RouterAreaMM2(a AreaParams, c RouterAreaConfig) float64 {
	area := float64(c.Ports*c.VCsPerPort*c.BufferDepth)*a.BufferPerSlot +
		a.XbarBase + a.AllocBase + a.ClockMisc
	if c.Hybrid {
		area += float64(c.Ports*c.SlotTableEntries) * a.SlotPerEntry
		area += float64(c.Ports) * a.CSLatchPerPort
		area += float64(c.DLTEntries) * a.DLTPerEntry
	}
	return area
}

// PacketRouterArea is the Table-I baseline configuration's area.
func PacketRouterArea(a AreaParams) float64 {
	return RouterAreaMM2(a, RouterAreaConfig{Ports: 5, VCsPerPort: 4, BufferDepth: 5})
}

// HybridRouterArea is the Table-I hybrid configuration's area
// (128-entry slot tables, 8-entry DLT).
func HybridRouterArea(a AreaParams) float64 {
	return RouterAreaMM2(a, RouterAreaConfig{
		Ports: 5, VCsPerPort: 4, BufferDepth: 5,
		SlotTableEntries: 128, DLTEntries: 8, Hybrid: true,
	})
}
