package power

import "tdmnoc/internal/obs"

// SampleEnergy emits one KindEnergySample per component for a router's
// meter: A = the Component index, Val = cumulative dynamic + static
// energy in milli-picojoules since the meter was last reset. The fixed
// milli-pJ scale keeps the event integer-valued (and therefore exactly
// reproducible) while preserving sub-picojoule resolution. Called by the
// network's periodic telemetry pass; p must be non-nil.
func SampleEnergy(p *obs.Handle, now int64, node int, m *RouterMeter, params Params) {
	if !p.Wants(obs.KindEnergySample) {
		return
	}
	b := m.Report(params)
	for c := Component(0); c < NumComponents; c++ {
		pj := b.DynamicPJ[c] + b.StaticPJ[c]
		p.Emit(obs.Event{Cycle: now, Kind: obs.KindEnergySample,
			Node: int32(node), A: uint8(c), Val: int64(pj * 1000)})
	}
}
