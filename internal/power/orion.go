package power

import "math"

// This file is the first-principles half of the power model: Orion-style
// derivations of per-event energies from technology constants and
// structure geometry (SRAM arrays for buffers and slot tables, a matrix
// crossbar, round-robin arbiters, and repeated links). Default45nm holds
// the RTL-calibrated constants the experiments use — the paper itself
// corrects Orion with an RTL model for the same reason — while
// DeriveParams shows how those numbers arise from capacitances, and lets
// users explore other technology points. A test checks the derived and
// calibrated sets agree within an order of magnitude.

// Tech is a simplified technology description.
type Tech struct {
	// Vdd is the supply voltage (V).
	Vdd float64
	// FreqHz is the clock (Hz).
	FreqHz float64
	// CGate is gate capacitance per micron of transistor width (fF/um).
	CGate float64
	// CDiff is diffusion capacitance per micron (fF/um).
	CDiff float64
	// CWire is wire capacitance per millimetre (fF/mm).
	CWire float64
	// LeakNA is subthreshold leakage per micron of width (nA/um).
	LeakNA float64
	// CellW is the access-transistor width of an SRAM cell (um).
	CellW float64
	// DriverW is a standard driver width (um).
	DriverW float64
}

// Tech45nm returns representative 45 nm constants (ITRS-flavoured; the
// paper's Table I operating point of 1.0 V / 1.5 GHz).
func Tech45nm() Tech {
	return Tech{
		Vdd:     1.0,
		FreqHz:  1.5e9,
		CGate:   1.0, // fF/um
		CDiff:   0.75,
		CWire:   60,  // fF/mm, low-swing optimised global wires
		LeakNA:  150, // high-performance 45 nm process
		CellW:   0.2,
		DriverW: 2.0,
	}
}

// RouterGeometry describes the structures whose energy is derived.
type RouterGeometry struct {
	Ports       int // 5
	VCs         int // 4
	BufDepth    int // 5 flits
	FlitBits    int // 128 (16-byte channel)
	SlotEntries int // 128 per input port (hybrid)
	SlotBits    int // valid + 3-bit output port
	LinkMM      float64
}

// DefaultGeometry returns the Table-I router.
func DefaultGeometry() RouterGeometry {
	return RouterGeometry{
		Ports: 5, VCs: 4, BufDepth: 5, FlitBits: 128,
		SlotEntries: 128, SlotBits: 4, LinkMM: 1.0,
	}
}

// switchedEnergyPJ converts a switched capacitance (fF) at Vdd into
// picojoules: E = C * V^2 (fF * V^2 = fJ; /1000 -> pJ).
func switchedEnergyPJ(cFF, vdd float64) float64 {
	return cFF * vdd * vdd / 1000
}

// sramReadPJ estimates one read of a rows x cols SRAM array: wordline
// (gate cap of the access transistors across the row), bitline swing
// (diffusion cap down the column, sensed at reduced swing), and output
// drivers.
func sramReadPJ(t Tech, rows, cols int) float64 {
	wordline := float64(cols) * 2 * t.CellW * t.CGate
	// Bitlines swing ~Vdd/4 on reads with sense amps: model as C/4.
	bitline := float64(rows) * t.CellW * t.CDiff * float64(cols) / 4
	drivers := float64(cols) * t.DriverW * t.CGate
	return switchedEnergyPJ(wordline+bitline+drivers, t.Vdd)
}

// sramWritePJ estimates one write: wordline plus full-swing bitlines.
func sramWritePJ(t Tech, rows, cols int) float64 {
	wordline := float64(cols) * 2 * t.CellW * t.CGate
	bitline := float64(rows) * t.CellW * t.CDiff * float64(cols) / 2
	drivers := float64(cols) * t.DriverW * t.CGate
	return switchedEnergyPJ(wordline+bitline+drivers, t.Vdd)
}

// sramLeakMW estimates array leakage: every cell leaks through its
// pull-down stack.
func sramLeakMW(t Tech, rows, cols int) float64 {
	cells := float64(rows * cols)
	// nA * V = nW; four leaking transistors of CellW width per cell.
	nW := cells * 4 * t.CellW * t.LeakNA * t.Vdd
	return nW / 1e6
}

// crossbarPJ estimates one flit traversing a matrix crossbar: the input
// driver charges a row wire loaded by Ports crosspoints, one crosspoint
// drives a column wire to the output.
func crossbarPJ(t Tech, ports, flitBits int) float64 {
	// Row and column wire lengths scale with port count; assume 0.03 mm
	// per port pitch per bit lane group.
	wire := 2 * float64(ports) * 0.03 * t.CWire
	crosspoints := float64(2*ports) * t.DriverW * t.CDiff
	perBit := switchedEnergyPJ(wire+crosspoints, t.Vdd)
	// Roughly half the bits toggle per flit.
	return perBit * float64(flitBits) / 2
}

// arbiterPJ estimates one round-robin arbitration among n requesters
// (priority/grant logic toggling).
func arbiterPJ(t Tech, n int) float64 {
	c := float64(n*n)*0.5*t.CGate + float64(n)*t.DriverW*t.CGate
	return switchedEnergyPJ(c, t.Vdd)
}

// linkPJ estimates one flit crossing a repeated link of the given length.
func linkPJ(t Tech, flitBits int, mm float64) float64 {
	perBit := switchedEnergyPJ(t.CWire*mm*1.3, t.Vdd) // 1.3x for repeaters
	return perBit * float64(flitBits) / 2
}

// DeriveParams builds a Params set from first principles. The clock tree
// and fixed leakage terms use simple per-structure estimates.
func DeriveParams(t Tech, g RouterGeometry) Params {
	// One VC buffer is a BufDepth x FlitBits array; a port has VCs of
	// them. Reads/writes access one flit row.
	bufRead := sramReadPJ(t, g.BufDepth*g.VCs, g.FlitBits)
	bufWrite := sramWritePJ(t, g.BufDepth*g.VCs, g.FlitBits)
	slotRead := sramReadPJ(t, g.SlotEntries, g.SlotBits)
	slotWrite := sramWritePJ(t, g.SlotEntries, g.SlotBits)

	bufSlots := g.Ports * g.VCs * g.BufDepth
	bufLeak := sramLeakMW(t, g.BufDepth*g.VCs, g.FlitBits) * float64(g.Ports)

	clockLoads := float64(bufSlots*g.FlitBits)*0.05 + float64(g.Ports*g.FlitBits)
	clockPJ := switchedEnergyPJ(clockLoads*t.CGate*t.CellW*4, t.Vdd)

	return Params{
		FrequencyHz: t.FreqHz,

		BufferWritePJ:   bufWrite,
		BufferReadPJ:    bufRead,
		XbarPJ:          crossbarPJ(t, g.Ports, g.FlitBits),
		VCArbPJ:         arbiterPJ(t, g.Ports*g.VCs),
		SWArbPJ:         arbiterPJ(t, g.Ports),
		LinkPJ:          linkPJ(t, g.FlitBits, g.LinkMM),
		ClockPJPerCycle: clockPJ,
		SlotReadPJ:      slotRead,
		SlotWritePJ:     slotWrite,
		CSLatchPJ:       switchedEnergyPJ(float64(g.FlitBits)*t.DriverW*t.CGate, t.Vdd),
		DLTPJ:           sramReadPJ(t, 8, 16),

		BufferLeakMWPerSlot:  bufLeak / float64(bufSlots),
		SlotLeakMWPerEntry:   sramLeakMW(t, g.SlotEntries, g.SlotBits) / float64(g.SlotEntries),
		XbarLeakMW:           float64(g.Ports*g.Ports) * 2 * t.DriverW * t.LeakNA * t.Vdd / 1e6 * float64(g.FlitBits) / 16,
		ArbLeakMW:            float64(g.Ports*g.Ports*g.VCs) * t.CellW * t.LeakNA * t.Vdd / 1e6 * 20,
		CSFixedLeakMW:        float64(g.Ports*g.FlitBits) * t.CellW * t.LeakNA * t.Vdd / 1e6 * 3,
		ClockLeakMW:          clockLoads * t.CellW * t.LeakNA * t.Vdd / 1e6,
		LinkLeakMWPerChannel: float64(g.FlitBits) * t.DriverW * t.LeakNA * t.Vdd / 1e6 * g.LinkMM,
	}
}

// RelativeGap returns the maximum log10 ratio between corresponding
// dynamic-energy fields of two parameter sets — a sanity metric used by
// tests to confirm the derived model lands near the calibrated one.
func RelativeGap(a, b Params) float64 {
	pairs := [][2]float64{
		{a.BufferWritePJ, b.BufferWritePJ},
		{a.BufferReadPJ, b.BufferReadPJ},
		{a.XbarPJ, b.XbarPJ},
		{a.LinkPJ, b.LinkPJ},
		{a.ClockPJPerCycle, b.ClockPJPerCycle},
	}
	worst := 0.0
	for _, p := range pairs {
		if p[0] <= 0 || p[1] <= 0 {
			return math.Inf(1)
		}
		gap := math.Abs(math.Log10(p[0] / p[1]))
		if gap > worst {
			worst = gap
		}
	}
	return worst
}
