package router

import (
	"fmt"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/hybrid"
	"tdmnoc/internal/topology"
)

// Arena block-allocates the routers of one executor partition and all of
// their variable-size hot state — VC descriptors, queue backing, credit
// counters, free bitmaps, pending-credit and DLT-event buffers, slot
// tables — out of contiguous slabs in structure-of-arrays form, sized
// once at construction. The old layout heap-allocated each of these per
// router, scattering a partition's per-cycle working set across the
// heap; the arena keeps it adjacent, and giving each partition its own
// arena (separate allocations) means two workers' hot state can never
// share a cache line without needing pad bytes inside the slabs.
//
// Every carved slice uses a full-capacity (three-index) expression: an
// append past a buffer's nominal capacity — which the protocol bounds
// should make impossible, and the diagnostics count when it happens —
// reallocates out of the slab instead of silently overwriting the next
// router's state.
type Arena struct {
	cfg     Config
	routers []Router
	vcs     []inputVC
	q       []*flit.Flit
	credits []int
	vcFree  []bool
	pcs     []creditMsg
	dlt     []DLTEvent
	tables  *hybrid.TablesArena
	used    int
}

// NewArena creates an arena with room for count routers of the given
// configuration.
func NewArena(count int, cfg Config) *Arena {
	cfg.validate()
	if count <= 0 {
		panic(fmt.Sprintf("router: invalid arena count %d", count))
	}
	np := int(topology.NumPorts)
	a := &Arena{
		cfg:     cfg,
		routers: make([]Router, count),
		vcs:     make([]inputVC, count*np*cfg.VCs),
		q:       make([]*flit.Flit, count*np*cfg.VCs*cfg.BufDepth),
		credits: make([]int, count*np*cfg.VCs),
		vcFree:  make([]bool, count*np*cfg.VCs),
		pcs:     make([]creditMsg, count*np),
	}
	if cfg.Hybrid {
		a.tables = hybrid.NewTablesArena(count, cfg.SlotCapacity, cfg.SlotActive)
		a.dlt = make([]DLTEvent, count*np)
	}
	return a
}

// New carves the next router from the arena. The returned pointer is
// stable for the arena's lifetime. The caller wires neighbours with
// Connect and attaches the NI credit sink with AttachLocal, exactly as
// with the standalone constructor. Panics when the arena is exhausted
// (a construction-time sizing bug).
func (a *Arena) New(id topology.NodeID, m topology.Mesh) *Router {
	if a.used >= len(a.routers) {
		panic(fmt.Sprintf("router: arena exhausted after %d routers", a.used))
	}
	i := a.used
	a.used++
	cfg := a.cfg
	np := int(topology.NumPorts)

	r := &a.routers[i]
	r.id, r.mesh, r.cfg = id, m, cfg
	c := m.Coord(id)
	r.selfX, r.selfY = c.X, c.Y
	r.activeVCs, r.pendingVCs, r.publishedVCLimit = cfg.VCs, cfg.VCs, cfg.VCs

	base := i * np * cfg.VCs
	for p := 0; p < np; p++ {
		off := base + p*cfg.VCs
		iu := &r.in[p]
		iu.vcs = a.vcs[off : off+cfg.VCs : off+cfg.VCs]
		for v := range iu.vcs {
			qo := (off + v) * cfg.BufDepth
			iu.vcs[v].q = a.q[qo : qo : qo+cfg.BufDepth]
		}
		ou := &r.out[p]
		ou.credits = a.credits[off : off+cfg.VCs : off+cfg.VCs]
		ou.vcFree = a.vcFree[off : off+cfg.VCs : off+cfg.VCs]
		for v := 0; v < cfg.VCs; v++ {
			ou.credits[v] = cfg.BufDepth
			ou.vcFree[v] = true
		}
	}
	r.pendingCredits = a.pcs[i*np : i*np : (i+1)*np]
	r.out[topology.Local].connected = true
	if cfg.Hybrid {
		r.tables = a.tables.New()
		r.dltEvents = a.dlt[i*np : i*np : (i+1)*np]
	}
	if cfg.LatencyVCGating {
		r.latGate = hybrid.DefaultLatencyVCGate(cfg.VCs)
	} else if cfg.VCGating {
		r.gate = hybrid.DefaultVCGate(cfg.VCs)
	}
	// A gating router mutates observation state (and possibly activeVCs)
	// every compute tick, so its ticks are never state no-ops and it must
	// not be skipped.
	r.canSleep = r.gate == nil && r.latGate == nil
	r.meter.LinkChannels = 1 // local ejection channel; Connect adds more
	return r
}
