package router

import (
	"fmt"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/invariant"
	"tdmnoc/internal/topology"
)

// This file is the router's contribution to the optional runtime
// invariant layer (internal/invariant): a full pipeline-state hash for
// the determinism digest, the per-VC credit-consistency check, flit
// enumeration for network-wide conservation, and a fault injector used
// by the checker's own tests. Everything here runs between cycles (after
// the transfer phase), when the two-phase contract guarantees out
// latches toward connected neighbours are drained and pendingCredits is
// empty.

// hashFlit is a local alias for the shared flit hash.
func hashFlit(h *invariant.Hasher, f *flit.Flit) { flit.HashFlit(h, f) }

// HashState folds the router's complete mutable pipeline state into h:
// every register and buffer a flit can sit in, the allocator round-robin
// pointers, credit and VC-free state, slot tables, gating accumulators
// and the diagnostic counters. Two runs whose routers hash equal every
// cycle are executing bit-identically.
func (r *Router) HashState(h *invariant.Hasher) {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		iu := &r.in[p]
		hashFlit(h, iu.latch)
		hashFlit(h, iu.linkReg)
		h.Int(iu.rrVC)
		for v := range iu.vcs {
			vc := &iu.vcs[v]
			h.Int(len(vc.q))
			for _, f := range vc.q {
				hashFlit(h, f)
			}
			h.Byte(byte(vc.state))
			h.Int64(int64(vc.ready))
			h.Byte(byte(vc.route))
			h.Byte(byte(vc.outPort))
			h.Int(vc.outVC)
		}
	}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		ou := &r.out[p]
		for _, c := range ou.credits {
			h.Int(c)
		}
		for _, free := range ou.vcFree {
			h.Bool(free)
		}
		hashFlit(h, ou.stReg)
		hashFlit(h, ou.latch)
		h.Int(ou.rrVA)
		h.Int(ou.rrVC)
		h.Int(ou.rrIn)
	}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		hashFlit(h, r.csPending[p])
	}
	h.Int(len(r.pendingCredits))
	for _, c := range r.pendingCredits {
		h.Byte(byte(c.port))
		h.Int(c.vc)
	}
	h.Int(len(r.dltEvents))
	h.Int(r.Epoch)
	h.Int(r.activeVCs)
	h.Int(r.pendingVCs)
	h.Int64(int64(r.gateEpochAt))
	h.Int(r.publishedVCLimit)
	if r.gate != nil {
		r.gate.HashState(h)
	}
	if r.latGate != nil {
		r.latGate.HashState(h)
	}
	h.Int64(r.MisroutedCS)
	h.Int64(r.DroppedCS)
	h.Int64(r.LatchConflicts)
	h.Int64(r.StolenSlots)
	if r.tables != nil {
		r.tables.HashState(h)
	}
}

// CheckInvariants verifies, for every connected non-local output port,
// that the credit count plus the downstream buffer occupancy equals the
// buffer depth — the credit-consistency invariant of credit-based flow
// control. The occupancy of downstream VC v counts the packet-switched
// flits on VC v in the downstream input's link registers and VC queue,
// plus this router's own ST register (a switch-allocation winner has
// already consumed its credit). Circuit-switched flits bypass buffers
// and use no credits. Must be called between cycles (after the transfer
// phase), when in-flight credits have been delivered.
//
// It also delegates to the slot tables' ownership check. Violations are
// passed to report as (kind, detail).
func (r *Router) CheckInvariants(report func(kind, detail string)) {
	for o := topology.Port(0); o < topology.NumPorts; o++ {
		n := r.neighbors[o]
		if o == topology.Local || n == nil {
			continue
		}
		ou := &r.out[o]
		q := o.Opposite()
		du := &n.in[q]
		countsToward := func(f *flit.Flit, v int) bool {
			return f != nil && !f.CS && f.VC == v
		}
		for v := range ou.credits {
			occ := 0
			if countsToward(ou.stReg, v) {
				occ++
			}
			// Drained after every full step; counted defensively so a
			// mid-cycle call over-reports rather than misses a flit.
			if countsToward(ou.latch, v) {
				occ++
			}
			if countsToward(du.linkReg, v) {
				occ++
			}
			if countsToward(du.latch, v) {
				occ++
			}
			if v < len(du.vcs) {
				occ += len(du.vcs[v].q)
			}
			if ou.credits[v]+occ != r.cfg.BufDepth {
				report("credit", fmt.Sprintf("output %v vc %d: credits %d + occupancy %d != depth %d",
					o, v, ou.credits[v], occ, r.cfg.BufDepth))
			}
		}
	}
	if r.tables != nil {
		r.tables.CheckConsistency(report)
	}
}

// CollectDataPackets calls add with the packet ID of every data packet
// that has a flit somewhere in this router — input latches, link
// registers, VC queues, ST registers, output latches and the
// circuit-switched pending slots. Configuration messages are excluded:
// conservation is stated over data packets (setup/ack/teardown messages
// are consumed by the protocol, not ejected).
func (r *Router) CollectDataPackets(add func(id uint64)) {
	visit := func(f *flit.Flit) {
		if f != nil && f.Pkt.Kind == flit.DataPacket {
			add(f.Pkt.ID)
		}
	}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		iu := &r.in[p]
		visit(iu.latch)
		visit(iu.linkReg)
		for v := range iu.vcs {
			for _, f := range iu.vcs[v].q {
				visit(f)
			}
		}
		ou := &r.out[p]
		visit(ou.stReg)
		visit(ou.latch)
		visit(r.csPending[p])
	}
}

// LocalInputPS returns the number of packet-switched flits on local
// input VC v — the occupancy the NI's injection credits must account
// for.
func (r *Router) LocalInputPS(v int) int {
	iu := &r.in[topology.Local]
	occ := len(iu.vcs[v].q)
	if f := iu.latch; f != nil && !f.CS && f.VC == v {
		occ++
	}
	if f := iu.linkReg; f != nil && !f.CS && f.VC == v {
		occ++
	}
	return occ
}

// FaultDropCredit silently discards one credit for (port, vc) — a
// seeded fault used by tests to prove the invariant checker catches
// credit leaks with cycle and router context.
func (r *Router) FaultDropCredit(p topology.Port, vc int) {
	r.out[p].credits[vc]--
}
