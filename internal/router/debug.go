package router

import (
	"fmt"

	"tdmnoc/internal/topology"
)

// DebugState returns human-readable lines describing every occupied
// buffer, latch and register in the router — a diagnostic aid for tests
// chasing stuck flits. An idle router returns nil.
func (r *Router) DebugState() []string {
	var out []string
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		iu := &r.in[p]
		for v := range iu.vcs {
			vc := &iu.vcs[v]
			if len(vc.q) == 0 {
				continue
			}
			f := vc.q[0]
			out = append(out, fmt.Sprintf(
				"router %d in[%v].vc[%d]: %d flits state=%d front{id=%d kind=%v src=%d dst=%d seq=%d} out=%v outVC=%d credits=%v vcFree=%v ready=%d",
				r.id, p, v, len(vc.q), vc.state, f.Pkt.ID, f.Pkt.Kind, f.Pkt.Src, f.Pkt.Dst, f.Seq,
				vc.outPort, vc.outVC, r.out[vc.outPort].credits, r.out[vc.outPort].vcFree, vc.ready))
		}
		if iu.latch != nil {
			out = append(out, fmt.Sprintf("router %d in[%v].latch occupied (id=%d)", r.id, p, iu.latch.Pkt.ID))
		}
		if iu.linkReg != nil {
			out = append(out, fmt.Sprintf("router %d in[%v].linkReg occupied (id=%d)", r.id, p, iu.linkReg.Pkt.ID))
		}
	}
	for o := topology.Port(0); o < topology.NumPorts; o++ {
		if f := r.out[o].stReg; f != nil {
			out = append(out, fmt.Sprintf("router %d out[%v].stReg pkt{id=%d kind=%v CS=%v}", r.id, o, f.Pkt.ID, f.Pkt.Kind, f.CS))
		}
		if f := r.out[o].latch; f != nil {
			out = append(out, fmt.Sprintf("router %d out[%v].latch pkt{id=%d}", r.id, o, f.Pkt.ID))
		}
	}
	return out
}
