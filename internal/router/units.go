package router

import (
	"tdmnoc/internal/flit"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// vcState is the per-input-VC pipeline state machine.
type vcState uint8

const (
	// vcIdle: no packet owns the VC.
	vcIdle vcState = iota
	// vcRouting: head flit at the front awaiting route computation.
	vcRouting
	// vcVCAlloc: route computed, waiting for an output VC.
	vcVCAlloc
	// vcActive: output VC held; flits compete for the switch.
	vcActive
)

// inputVC is one virtual channel of one input port.
type inputVC struct {
	q     []*flit.Flit
	state vcState
	// ready is the earliest cycle the current pipeline stage may execute,
	// enforcing the one-stage-per-cycle timing.
	ready sim.Cycle

	// route is the output port computed for the head packet.
	route topology.Port

	// Grant state while vcActive.
	outPort topology.Port
	outVC   int
}

func (v *inputVC) empty() bool { return len(v.q) == 0 }

func (v *inputVC) front() *flit.Flit {
	if len(v.q) == 0 {
		return nil
	}
	return v.q[0]
}

func (v *inputVC) push(f *flit.Flit) { v.q = append(v.q, f) }

func (v *inputVC) pop() *flit.Flit {
	f := v.q[0]
	// Shift rather than reslice so the backing array doesn't grow without
	// bound over a long simulation.
	copy(v.q, v.q[1:])
	v.q[len(v.q)-1] = nil
	v.q = v.q[:len(v.q)-1]
	return f
}

// inputUnit is one input port: its VC buffers plus the link-side registers.
type inputUnit struct {
	vcs []inputVC

	// latch receives the flit delivered by the link this cycle (at most
	// one flit per port per cycle).
	latch *flit.Flit
	// linkReg models the one-cycle link pipeline: a flit written to the
	// upstream output latch at cycle T sits here during T+1 and lands in
	// latch for processing at T+2. It doubles as the paper's one-bit
	// circuit-switched advance signal: the flit that will arrive next
	// cycle is visible here now.
	linkReg *flit.Flit

	// rrVC is the round-robin pointer for switch-allocation stage one.
	rrVC int
}

// outputUnit is one output port: downstream VC bookkeeping, the switch
// traversal register and the output latch.
type outputUnit struct {
	// credits[v] is the free buffer space in the downstream input VC v.
	credits []int
	// vcFree[v] reports whether downstream VC v may be allocated to a new
	// packet (freed when the previous packet's tail flit is sent).
	vcFree []bool

	// stReg holds the switch-allocation winner; it traverses the crossbar
	// the cycle after the grant. A circuit-switched flit arriving in that
	// cycle has crossbar priority, in which case the winner stalls here.
	stReg *flit.Flit
	// latch is the post-crossbar output register drained by the link.
	latch *flit.Flit

	// rrVA is the round-robin requester pointer for VC allocation.
	rrVA int
	// rrVC is the round-robin pointer over downstream VCs for allocation.
	rrVC int
	// rrIn is the round-robin input pointer for switch-allocation stage two.
	rrIn int

	// connected reports whether the port leads anywhere (edge routers
	// leave outward ports unconnected; Local is always connected).
	connected bool
}

// creditMsg is a credit returned upstream for (port, vc).
type creditMsg struct {
	port topology.Port
	vc   int
}

// CreditSink receives credits the router returns for its local input port;
// the network interface implements it to track injection space.
type CreditSink interface {
	ReturnCredit(vc int)
}
