package router

import (
	"strings"
	"testing"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// harness drives a row of routers without the network package: flits are
// injected straight onto local input latches and collected from local
// output latches, standing in for the NIs.
type harness struct {
	mesh    topology.Mesh
	routers []*Router
	now     sim.Cycle
	ejected map[topology.NodeID][]*flit.Flit
}

func newRow(t *testing.T, n int, cfg Config) *harness {
	t.Helper()
	h := &harness{
		mesh:    topology.NewMesh(n, 1),
		ejected: map[topology.NodeID][]*flit.Flit{},
	}
	for i := 0; i < n; i++ {
		h.routers = append(h.routers, New(topology.NodeID(i), h.mesh, cfg))
	}
	for i := 0; i < n; i++ {
		for _, p := range []topology.Port{topology.East, topology.West} {
			if nb, ok := h.mesh.Neighbor(topology.NodeID(i), p); ok {
				h.routers[i].Connect(p, h.routers[nb])
			}
		}
	}
	return h
}

// step runs one full cycle: the flit staged via inject is processed at
// the cycle at which step is called.
func (h *harness) step() {
	for _, r := range h.routers {
		r.Tick(h.now, sim.PhaseCompute)
	}
	for _, r := range h.routers {
		r.Tick(h.now, sim.PhaseTransfer)
	}
	for _, r := range h.routers {
		if f := r.TakeLocalEject(); f != nil {
			h.ejected[r.ID()] = append(h.ejected[r.ID()], f)
		}
	}
	h.now++
}

func (h *harness) run(cycles int) {
	for i := 0; i < cycles; i++ {
		h.step()
	}
}

// inject stages a flit for processing at the *current* cycle.
func (h *harness) inject(id topology.NodeID, f *flit.Flit) {
	h.routers[id].StageLocalInject(f)
}

func (h *harness) diagClean(t *testing.T) {
	t.Helper()
	for _, r := range h.routers {
		if r.MisroutedCS != 0 || r.DroppedCS != 0 || r.LatchConflicts != 0 {
			t.Errorf("router %d diagnostics dirty: mis=%d drop=%d latch=%d",
				r.ID(), r.MisroutedCS, r.DroppedCS, r.LatchConflicts)
		}
	}
}

func dataPacket(id uint64, src, dst topology.NodeID, flits int) *flit.Packet {
	return &flit.Packet{ID: id, Kind: flit.DataPacket, Src: src, Dst: dst, Flits: flits}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{VCs: 0, BufDepth: 5},
		{VCs: 4, BufDepth: 0},
		{VCs: 4, BufDepth: 5, Hybrid: true, SlotCapacity: 0},
		{VCs: 4, BufDepth: 5, Hybrid: true, SlotCapacity: 8, SlotActive: 16},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(0, topology.NewMesh(2, 2), cfg)
		}()
	}
}

func TestConnectErrors(t *testing.T) {
	m := topology.NewMesh(2, 1)
	a, b := New(0, m, DefaultConfig()), New(1, m, DefaultConfig())
	a.Connect(topology.East, b)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Connect did not panic")
			}
		}()
		a.Connect(topology.East, b)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Connect(Local) did not panic")
			}
		}()
		a.Connect(topology.Local, b)
	}()
}

func TestPSPacketTimingOneHop(t *testing.T) {
	h := newRow(t, 2, DefaultConfig())
	pkt := dataPacket(1, 0, 1, 1)
	fs := flit.Explode(pkt)
	fs[0].VC = 0
	h.inject(0, fs[0]) // processed at cycle 0
	h.run(20)
	got := h.ejected[1]
	if len(got) != 1 {
		t.Fatalf("ejected %d flits, want 1", len(got))
	}
	// Arrival at router 0 at cycle 0: RC@0, VA@1, SA@2, ST@3 -> link ->
	// arrival at router 1 at cycle 5; pipeline again; local latch at 5+3,
	// taken at the end of cycle 8.
	h2 := newRow(t, 2, DefaultConfig())
	pkt2 := dataPacket(2, 0, 1, 1)
	fs2 := flit.Explode(pkt2)
	h2.inject(0, fs2[0])
	cycles := 0
	for len(h2.ejected[1]) == 0 && cycles < 30 {
		h2.step()
		cycles++
	}
	if cycles != 9 { // ejected during cycle index 8 => 9 steps
		t.Errorf("one-hop 1-flit delivery took %d steps, want 9", cycles)
	}
	h.diagClean(t)
}

func TestPSMultiFlitWormhole(t *testing.T) {
	h := newRow(t, 3, DefaultConfig())
	pkt := dataPacket(1, 0, 2, 5)
	for i, f := range flit.Explode(pkt) {
		f.VC = 1
		// One flit per cycle onto the local link.
		h.inject(0, f)
		h.step()
		_ = i
	}
	h.run(40)
	if len(h.ejected[2]) != 5 {
		t.Fatalf("ejected %d flits, want 5", len(h.ejected[2]))
	}
	// Flit order must be preserved.
	for i, f := range h.ejected[2] {
		if f.Seq != i {
			t.Errorf("flit %d has seq %d", i, f.Seq)
		}
	}
	h.diagClean(t)
}

func TestTwoPacketsInterleaveAcrossVCs(t *testing.T) {
	h := newRow(t, 2, DefaultConfig())
	a := dataPacket(1, 0, 1, 3)
	b := dataPacket(2, 0, 1, 3)
	fa, fb := flit.Explode(a), flit.Explode(b)
	for _, f := range fa {
		f.VC = 0
	}
	for _, f := range fb {
		f.VC = 1
	}
	// Interleave injection: a0 b0 a1 b1 a2 b2.
	for i := 0; i < 3; i++ {
		h.inject(0, fa[i])
		h.step()
		h.inject(0, fb[i])
		h.step()
	}
	h.run(30)
	if len(h.ejected[1]) != 6 {
		t.Fatalf("ejected %d flits, want 6", len(h.ejected[1]))
	}
	counts := map[uint64]int{}
	for _, f := range h.ejected[1] {
		counts[f.Pkt.ID]++
	}
	if counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("per-packet flit counts: %v", counts)
	}
	h.diagClean(t)
}

func hybridRow(t *testing.T, n int) *harness {
	cfg := HybridConfig()
	cfg.SlotCapacity = 16
	cfg.SlotActive = 16
	return newRow(t, n, cfg)
}

// reservePath books a circuit from the local port of src through the row
// to the local port of dst, starting at baseSlot, and returns the slot at
// which the source must inject.
func reservePath(t *testing.T, h *harness, src, dst topology.NodeID, baseSlot, dur int) {
	t.Helper()
	hops := h.mesh.HopDistance(src, dst)
	cur := src
	in := topology.Local
	for i := 0; i <= hops; i++ {
		var out topology.Port
		if cur == dst {
			out = topology.Local
		} else if dst > cur {
			out = topology.East
		} else {
			out = topology.West
		}
		slot := (baseSlot + 2*i) % h.routers[cur].Tables().Active()
		if !h.routers[cur].Tables().Reserve(in, out, slot, dur, int64(h.now)) {
			t.Fatalf("manual reservation failed at router %d", cur)
		}
		if out == topology.Local {
			break
		}
		next, _ := h.mesh.Neighbor(cur, out)
		in = out.Opposite()
		cur = next
	}
}

func TestCSBypassTiming(t *testing.T) {
	h := hybridRow(t, 3)
	reservePath(t, h, 0, 2, 4, 4)
	// Wait until cycle 4 (slot 4 of 16), then inject the 4 CS flits.
	pkt := dataPacket(9, 0, 2, 4)
	pkt.Switching = flit.CircuitSwitched
	fs := flit.Explode(pkt)
	h.run(4) // now == 4
	start := h.now
	for _, f := range fs {
		h.inject(0, f)
		h.step()
	}
	h.run(10)
	got := h.ejected[2]
	if len(got) != 4 {
		t.Fatalf("ejected %d CS flits, want 4", len(got))
	}
	// Head: processed at router 0 at cycle 4, router 1 at 6, router 2 at
	// 8, ejected during cycle 8 → two cycles per hop.
	_ = start
	h.diagClean(t)
	if h.routers[1].Meter().BufWrites != 0 {
		t.Errorf("CS flits were buffered at the intermediate router (%d writes)", h.routers[1].Meter().BufWrites)
	}
	if h.routers[1].Meter().CSLatches != 4 {
		t.Errorf("CS latch count %d, want 4", h.routers[1].Meter().CSLatches)
	}
}

func TestCSExactLatency(t *testing.T) {
	h := hybridRow(t, 3)
	reservePath(t, h, 0, 2, 0, 1)
	pkt := dataPacket(9, 0, 2, 1)
	pkt.Switching = flit.CircuitSwitched
	fs := flit.Explode(pkt)
	// Slot 0 of 16: inject so the flit is processed at cycle 16.
	h.run(16)
	h.inject(0, fs[0])
	steps := 0
	for len(h.ejected[2]) == 0 && steps < 30 {
		h.step()
		steps++
	}
	// Processed at router 0 at cycle 16, router 1 at 18, router 2 at 20:
	// ejected at the end of the 5th step after injection (16,17,18,19,20).
	if steps != 5 {
		t.Errorf("CS 2-hop delivery took %d steps, want 5 (2 cycles/hop)", steps)
	}
	h.diagClean(t)
}

func TestMisroutedCSCounted(t *testing.T) {
	h := hybridRow(t, 2)
	pkt := dataPacket(5, 0, 1, 1)
	pkt.Switching = flit.CircuitSwitched
	fs := flit.Explode(pkt)
	h.inject(0, fs[0]) // no reservation exists
	h.run(5)
	if h.routers[0].MisroutedCS != 1 || h.routers[0].DroppedCS != 1 {
		t.Errorf("misrouted CS not counted: mis=%d drop=%d", h.routers[0].MisroutedCS, h.routers[0].DroppedCS)
	}
}

func TestTimeSlotStealing(t *testing.T) {
	// Reserve EVERY slot of router 0's East output for a circuit that
	// never sends; with stealing on, PS traffic flows anyway, with
	// stealing off it cannot make progress.
	run := func(stealing bool) int {
		cfg := HybridConfig()
		cfg.SlotCapacity, cfg.SlotActive = 8, 8
		cfg.TimeSlotStealing = stealing
		h := newRow(t, 2, cfg)
		if !h.routers[0].Tables().Reserve(topology.North, topology.East, 0, 7, 0) {
			t.Fatal("blanket reservation failed")
		}
		// Occupancy cap (90 %) prevents a full reservation; 7 of 8 slots
		// suffice to strangle PS traffic to 1/8 bandwidth without stealing.
		pkt := dataPacket(1, 0, 1, 5)
		for _, f := range flit.Explode(pkt) {
			h.inject(0, f)
			h.step()
		}
		h.run(60)
		return len(h.ejected[1])
	}
	if got := run(true); got != 5 {
		t.Errorf("with stealing: ejected %d flits, want 5", got)
	}
	without := run(false)
	if without == 5 {
		// 1 free slot of 8 still lets flits trickle; the packet should
		// not complete within the short window above.
		t.Log("note: packet completed without stealing (trickle)")
	}
	// The stronger assertion: stolen slots are counted when stealing on.
	cfg := HybridConfig()
	cfg.SlotCapacity, cfg.SlotActive = 8, 8
	h := newRow(t, 2, cfg)
	h.routers[0].Tables().Reserve(topology.North, topology.East, 0, 7, 0)
	pkt := dataPacket(2, 0, 1, 5)
	for _, f := range flit.Explode(pkt) {
		h.inject(0, f)
		h.step()
	}
	h.run(60)
	if h.routers[0].StolenSlots == 0 {
		t.Error("no stolen slots counted")
	}
}

func injectConfig(h *harness, src topology.NodeID, pkt *flit.Packet) {
	fs := flit.Explode(pkt)
	h.inject(src, fs[0])
}

func TestSetupReservesAndAcks(t *testing.T) {
	h := hybridRow(t, 3)
	setup := &flit.Packet{
		ID: 1, Kind: flit.SetupMsg, Src: 0, Dst: 2, Class: flit.ClassConfig, Flits: 1,
		Config: flit.ConfigPayload{Slot: 3, BaseSlot: 3, Duration: 4},
	}
	injectConfig(h, 0, setup)
	h.run(60)
	// Ack(success) must come back to node 0.
	got := h.ejected[0]
	if len(got) != 1 {
		t.Fatalf("ejected %d packets at source, want 1 ack", len(got))
	}
	ack := got[0].Pkt
	if ack.Kind != flit.AckMsg || !ack.Config.OK {
		t.Fatalf("expected successful ack, got %+v", ack)
	}
	if ack.Config.CircuitDst != 2 || ack.Config.BaseSlot != 3 {
		t.Fatalf("ack payload wrong: %+v", ack.Config)
	}
	// Reservations: router 0 (Local->East, slot 3), router 1 (West->East,
	// slot 5), router 2 (West->Local, slot 7), all duration 4.
	checks := []struct {
		node topology.NodeID
		in   topology.Port
		slot int
		out  topology.Port
	}{
		{0, topology.Local, 3, topology.East},
		{1, topology.West, 5, topology.East},
		{2, topology.West, 7, topology.Local},
	}
	for _, c := range checks {
		for i := 0; i < 4; i++ {
			out, ok := h.routers[c.node].Tables().LookupSlot(c.in, (c.slot+i)%16, int64(h.now))
			if !ok || out != c.out {
				t.Errorf("router %d in[%v] slot %d: (%v,%v), want %v", c.node, c.in, (c.slot+i)%16, out, ok, c.out)
			}
		}
	}
	h.diagClean(t)
}

func TestSetupFailureProducesNackAndTeardownCleans(t *testing.T) {
	h := hybridRow(t, 3)
	// Block router 1's West input at slot 5 (where the setup will need it).
	if !h.routers[1].Tables().Reserve(topology.West, topology.North, 5, 4, 0) {
		t.Fatal("blocking reservation failed")
	}
	setup := &flit.Packet{
		ID: 1, Kind: flit.SetupMsg, Src: 0, Dst: 2, Class: flit.ClassConfig, Flits: 1,
		Config: flit.ConfigPayload{Slot: 3, BaseSlot: 3, Duration: 4},
	}
	injectConfig(h, 0, setup)
	h.run(60)
	got := h.ejected[0]
	if len(got) != 1 {
		t.Fatalf("ejected %d packets at source, want 1 nack", len(got))
	}
	ack := got[0].Pkt
	if ack.Kind != flit.AckMsg || ack.Config.OK {
		t.Fatalf("expected failure ack, got %+v", ack.Config)
	}
	if ack.Config.FailHop != 1 {
		t.Fatalf("FailHop = %d, want 1 (only router 0 reserved)", ack.Config.FailHop)
	}
	// Router 0 still holds the prefix; a teardown must release it.
	if h.routers[0].Tables().ReservedEntries() != 4 {
		t.Fatalf("prefix reservation missing: %d entries", h.routers[0].Tables().ReservedEntries())
	}
	td := &flit.Packet{
		ID: 2, Kind: flit.TeardownMsg, Src: 0, Dst: 2, Class: flit.ClassConfig, Flits: 1,
		// FailHop bounds the walk to the reserved prefix (1 router).
		Config: flit.ConfigPayload{Slot: 3, BaseSlot: 3, Duration: 4, FailHop: 1},
	}
	injectConfig(h, 0, td)
	h.run(40)
	if h.routers[0].Tables().ReservedEntries() != 0 {
		t.Fatalf("teardown left %d entries at router 0", h.routers[0].Tables().ReservedEntries())
	}
	// The blocking reservation on router 1 must be untouched.
	if h.routers[1].Tables().ReservedEntries() != 4 {
		t.Fatalf("teardown disturbed router 1: %d entries", h.routers[1].Tables().ReservedEntries())
	}
	h.diagClean(t)
}

func TestStaleEpochSetupRejected(t *testing.T) {
	h := hybridRow(t, 2)
	h.routers[0].Epoch = 1
	h.routers[1].Epoch = 1
	setup := &flit.Packet{
		ID: 1, Kind: flit.SetupMsg, Src: 0, Dst: 1, Class: flit.ClassConfig, Flits: 1,
		Config: flit.ConfigPayload{Slot: 3, BaseSlot: 3, Duration: 4, Epoch: 0},
	}
	injectConfig(h, 0, setup)
	h.run(40)
	got := h.ejected[0]
	if len(got) != 1 || got[0].Pkt.Config.OK {
		t.Fatal("stale-epoch setup was not rejected")
	}
	if h.routers[0].Tables().ReservedEntries() != 0 {
		t.Fatal("stale-epoch setup left reservations")
	}
}

func TestResetCircuitsClearsState(t *testing.T) {
	h := hybridRow(t, 2)
	h.routers[0].Tables().Reserve(topology.Local, topology.East, 0, 4, 0)
	h.routers[0].ResetCircuits(16, 2)
	if h.routers[0].Tables().ReservedEntries() != 0 {
		t.Fatal("reset left reservations")
	}
	if h.routers[0].Epoch != 2 {
		t.Fatalf("epoch %d after reset, want 2", h.routers[0].Epoch)
	}
}

func TestMeterAccumulates(t *testing.T) {
	h := newRow(t, 2, DefaultConfig())
	pkt := dataPacket(1, 0, 1, 5)
	for _, f := range flit.Explode(pkt) {
		h.inject(0, f)
		h.step()
	}
	h.run(30)
	m0 := h.routers[0].Meter()
	if m0.BufWrites != 5 || m0.BufReads != 5 {
		t.Errorf("router 0 buffer events: w=%d r=%d, want 5/5", m0.BufWrites, m0.BufReads)
	}
	if m0.XbarFlits != 5 || m0.LinkFlits != 5 {
		t.Errorf("router 0 xbar/link: %d/%d, want 5/5", m0.XbarFlits, m0.LinkFlits)
	}
	if m0.Cycles == 0 || m0.BufSlotCycles == 0 {
		t.Error("leakage integrators did not advance")
	}
	if m0.ActiveCycles == 0 || m0.ActiveCycles == m0.Cycles {
		t.Errorf("clock gating not reflected: active=%d total=%d", m0.ActiveCycles, m0.Cycles)
	}
}

func TestDebugStateReportsOccupancy(t *testing.T) {
	h := newRow(t, 2, DefaultConfig())
	if lines := h.routers[0].DebugState(); len(lines) != 0 {
		t.Errorf("idle router reported state: %v", lines)
	}
	pkt := dataPacket(1, 0, 1, 5)
	fs := flit.Explode(pkt)
	h.inject(0, fs[0])
	h.step()
	h.step()
	if lines := h.routers[0].DebugState(); len(lines) == 0 {
		t.Error("busy router reported no state")
	}
}

func TestVCGatingEvacuatesBeforeShrink(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VCGating = true
	h := newRow(t, 2, cfg)
	if h.routers[0].ActiveVCs() != cfg.VCs {
		t.Fatalf("initial active VCs %d", h.routers[0].ActiveVCs())
	}
	// Idle long enough for several gating epochs: VCs shrink to MinVCs.
	h.run(4000)
	r0 := h.routers[0]
	if r0.ActiveVCs() >= cfg.VCs {
		t.Fatalf("idle router kept %d VCs active", r0.ActiveVCs())
	}
	// The published limit follows, so upstream allocators stop using the
	// gated VCs.
	if r0.LocalVCLimit() != r0.ActiveVCs() {
		t.Fatalf("published limit %d != active %d", r0.LocalVCLimit(), r0.ActiveVCs())
	}
	// Traffic still flows on the remaining VCs (within the limit).
	pkt := dataPacket(1, 0, 1, 5)
	for _, f := range flit.Explode(pkt) {
		f.VC = 0
		h.inject(0, f)
		h.step()
	}
	h.run(30)
	if len(h.ejected[1]) != 5 {
		t.Fatalf("gated network delivered %d flits, want 5", len(h.ejected[1]))
	}
	h.diagClean(t)
}

func TestBufSlotCyclesShrinkWithGating(t *testing.T) {
	run := func(gating bool) int64 {
		cfg := DefaultConfig()
		cfg.VCGating = gating
		h := newRow(t, 2, cfg)
		h.run(5000)
		return h.routers[0].Meter().BufSlotCycles
	}
	if gated, full := run(true), run(false); gated >= full {
		t.Fatalf("gating did not reduce powered buffer slots: %d vs %d", gated, full)
	}
}

func TestConsecutiveSingleFlitPackets(t *testing.T) {
	// Back-to-back 1-flit packets on one VC exercise the tail-frees-VC
	// then head-restarts path.
	h := newRow(t, 2, DefaultConfig())
	for i := uint64(1); i <= 8; i++ {
		f := flit.Explode(dataPacket(i, 0, 1, 1))[0]
		f.VC = 2
		h.inject(0, f)
		// The harness has no credit flow control; space packets so the
		// 3-cycle head pipeline keeps the 5-deep buffer from overflowing.
		h.run(4)
	}
	h.run(40)
	if len(h.ejected[1]) != 8 {
		t.Fatalf("delivered %d of 8 single-flit packets", len(h.ejected[1]))
	}
	for i, f := range h.ejected[1] {
		if f.Pkt.ID != uint64(i+1) {
			t.Fatalf("packet order broken at %d: id %d", i, f.Pkt.ID)
		}
	}
	h.diagClean(t)
}

func TestIncomingCSSignal(t *testing.T) {
	h := hybridRow(t, 3)
	reservePath(t, h, 0, 2, 0, 1)
	pkt := dataPacket(9, 0, 2, 1)
	pkt.Switching = flit.CircuitSwitched
	fs := flit.Explode(pkt)
	h.run(16) // align to slot 0 (16 % 16)
	h.inject(0, fs[0])
	h.step() // flit processed at router 0, now in its out latch
	// During the next cycle the flit sits in router 1's linkReg: the
	// advance signal must report it.
	h.routers[1].Tick(h.now, sim.PhaseCompute) // harmless extra observation
	if !h.routers[1].IncomingCS(topology.West) {
		t.Fatal("advance signal did not report incoming CS flit")
	}
	h.run(10)
	h.diagClean(t)
}

func TestISLIPIterationsImproveMatching(t *testing.T) {
	// Two inputs, both preferring the same output first: one iteration
	// matches one input per cycle; with two iterations, the loser's
	// second-choice VC (to a different output) can also be served.
	run := func(iters int) int {
		cfg := DefaultConfig()
		cfg.SAIterations = iters
		h := newRow(t, 3, cfg)
		// From the middle router's perspective, traffic from 0 to 2 and
		// local traffic from 1 to 2 and 1 to 0 compete.
		deliver := 0
		for i := uint64(0); i < 12; i++ {
			fa := flit.Explode(dataPacket(100+i, 0, 2, 1))[0]
			fa.VC = int(i) % 2
			h.inject(0, fa)
			fb := flit.Explode(dataPacket(200+i, 1, 2, 1))[0]
			fb.VC = int(i) % 2
			h.inject(1, fb)
			h.run(1)
			fc := flit.Explode(dataPacket(300+i, 1, 0, 1))[0]
			fc.VC = 2 + int(i)%2
			h.inject(1, fc)
			h.run(4)
		}
		h.run(80)
		for _, fs := range h.ejected {
			deliver += len(fs)
		}
		return deliver
	}
	one := run(1)
	two := run(2)
	if two < one {
		t.Fatalf("two SA iterations delivered fewer flits (%d) than one (%d)", two, one)
	}
	if one != 36 || two != 36 {
		t.Fatalf("deliveries %d/%d, want 36 each", one, two)
	}
}

func TestEventTracing(t *testing.T) {
	h := hybridRow(t, 3)
	var events []Event
	for _, r := range h.routers {
		r.SetEventSink(func(e Event) { events = append(events, e) })
	}
	// Setup along the row, then a CS packet, then a PS packet.
	setup := &flit.Packet{
		ID: 1, Kind: flit.SetupMsg, Src: 0, Dst: 2, Class: flit.ClassConfig, Flits: 1,
		Config: flit.ConfigPayload{Slot: 0, BaseSlot: 0, Duration: 2},
	}
	injectConfig(h, 0, setup)
	h.run(48) // completes; now == 48, slot 0 of 16 aligned
	pkt := dataPacket(2, 0, 2, 2)
	pkt.Switching = flit.CircuitSwitched
	for _, f := range flit.Explode(pkt) {
		h.inject(0, f)
		h.step()
	}
	ps := dataPacket(3, 0, 2, 1)
	h.inject(0, flit.Explode(ps)[0])
	h.run(30)

	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[EvSetupReserve] != 3 {
		t.Errorf("setup events %d, want 3 (one per router)", kinds[EvSetupReserve])
	}
	if kinds[EvCSBypass] == 0 {
		t.Error("no CS bypass events")
	}
	if kinds[EvBufferWrite] == 0 || kinds[EvPSTraverse] == 0 {
		t.Error("no PS events traced")
	}
}

func TestWriteEventsFormat(t *testing.T) {
	var buf strings.Builder
	sink := WriteEvents(&buf)
	sink(Event{Cycle: 42, Router: 7, Kind: EvCSBypass, In: topology.West, Out: topology.Local, PktID: 9, Seq: 2, Slot: 14})
	got := buf.String()
	want := "cycle=42 router=7 kind=cs in=W out=L pkt=9 seq=2 slot=14\n"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}
