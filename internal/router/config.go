// Package router implements the virtual-channelled wormhole router of
// Table I and its hybrid-switched extension (Fig. 2): slot tables,
// circuit-switched latches, and the demultiplexer that steers each
// incoming flit to the packet- or circuit-switched datapath.
package router

// Config selects the router variant and sizes its structures.
//
// Timing model (matching Section II-D):
//
//   - A packet-switched head flit arriving at cycle T is buffered and
//     route-computed at T, VC-allocated at T+1, switch-allocated at T+2,
//     traverses the crossbar at T+3, spends T+4 on the link, and is
//     processed by the downstream router at T+5 — the classic 4-stage
//     pipeline plus link traversal.
//   - A circuit-switched flit arriving at cycle T proceeds through the
//     router in that single cycle (the crossbar was configured in advance
//     from the slot table), spends T+1 on the link, and reaches the
//     downstream router at T+2. This is why setup messages increment
//     their slot id by 2 per hop.
type Config struct {
	// VCs is the number of virtual channels per input port (Table I: 4).
	VCs int
	// BufDepth is the buffer depth per VC in flits (Table I: 5).
	BufDepth int

	// Hybrid enables the circuit-switched datapath: slot tables, CS
	// latches and the input demultiplexer.
	Hybrid bool
	// SlotCapacity is the physical slot-table size per input port
	// (Table I: 128; 256 for the 16x16 scalability study).
	SlotCapacity int
	// SlotActive is the initially powered slot-table region; the dynamic
	// sizing policy may grow it up to SlotCapacity.
	SlotActive int
	// TimeSlotStealing lets packet-switched flits use reserved crossbar
	// slots whose circuit-switched flit did not show up (Section II-D).
	TimeSlotStealing bool
	// Sharing enables the DLT and hitchhiker/vicinity path sharing
	// (Section III-A); it only sizes router state here — the sharing
	// decisions are made at the network interfaces.
	Sharing bool
	// DLTEntries sizes the destination lookup table when Sharing is on.
	DLTEntries int

	// VCGating enables the aggressive VC power gating policy
	// (Section III-B).
	VCGating bool
	// LatencyVCGating replaces the utilisation-driven policy with the
	// buffer-residency-driven refinement the paper suggests in
	// Section V-B4. Implies VC power gating.
	LatencyVCGating bool
	// AdaptiveConfigRouting routes configuration messages with minimal
	// adaptive routing plus an escape channel (Table I); when false they
	// use X-Y like everything else.
	AdaptiveConfigRouting bool

	// SAIterations is the number of iSLIP-style iterations the switch
	// allocator runs per cycle (default 1, the classic separable
	// allocator). Extra iterations find larger input/output matchings
	// under contention at the cost of allocator energy.
	SAIterations int
}

// DefaultConfig returns the Table-I packet-switched baseline: 4 VCs per
// port, 5-flit-deep buffers, no hybrid extension.
func DefaultConfig() Config {
	return Config{
		VCs:                   4,
		BufDepth:              5,
		SlotCapacity:          128,
		SlotActive:            128,
		DLTEntries:            8,
		TimeSlotStealing:      true,
		AdaptiveConfigRouting: true,
	}
}

// HybridConfig returns the Table-I hybrid-switched configuration with
// 128-entry slot tables.
func HybridConfig() Config {
	c := DefaultConfig()
	c.Hybrid = true
	return c
}

func (c Config) validate() {
	if c.VCs <= 0 || c.BufDepth <= 0 {
		panic("router: VCs and BufDepth must be positive")
	}
	if c.Hybrid {
		if c.SlotCapacity <= 0 || c.SlotActive <= 0 || c.SlotActive > c.SlotCapacity {
			panic("router: invalid slot table sizing")
		}
	}
}
