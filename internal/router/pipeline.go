package router

import (
	"tdmnoc/internal/flit"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/routing"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// acceptIncoming demultiplexes the flits delivered by the links this
// cycle: circuit-switched flits go straight to the crossbar bypass (their
// output port comes from the slot table), packet-switched flits are
// written into their VC buffers.
func (r *Router) acceptIncoming(now sim.Cycle) bool {
	busy := false
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		iu := &r.in[p]
		f := iu.latch
		if f == nil {
			continue
		}
		iu.latch = nil
		busy = true
		if r.tables != nil {
			r.meter.SlotReads++ // the demux consults the slot table for every arrival
		}
		if f.CS {
			r.acceptCS(now, p, f)
			continue
		}
		vc := &iu.vcs[f.VC]
		if len(vc.q) >= r.cfg.BufDepth {
			r.LatchConflicts++ // credit protocol violation
		}
		f.BufferedAt = int64(now)
		vc.push(f)
		r.meter.BufWrites++
		r.emit(Event{Cycle: int64(now), Kind: EvBufferWrite, In: p, PktID: f.Pkt.ID, Seq: f.Seq})
		if r.probe.Wants(obs.KindBufferWrite) {
			r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindBufferWrite,
				Node: int32(r.id), A: uint8(p), Pkt: f.Pkt.ID, Seq: int32(f.Seq), Val: int64(f.VC)})
		}
		if len(vc.q) == 1 && vc.state == vcIdle {
			if f.IsHead() {
				vc.state = vcRouting
				vc.ready = now
			} else {
				r.LatchConflicts++ // body flit with no owning packet
			}
		}
	}
	return busy
}

// acceptCS steers a circuit-switched flit to its reserved output. A
// hitchhiker entering at the local port rides the slot-table entry of the
// circuit it shares (recorded in the flit's ShareIn).
func (r *Router) acceptCS(now sim.Cycle, p topology.Port, f *flit.Flit) {
	if r.tables == nil {
		r.MisroutedCS++
		r.DroppedCS++
		return
	}
	lookupPort := p
	if f.Hitchhike && p == topology.Local {
		lookupPort = f.ShareIn
	}
	out, ok := r.tables.Lookup(lookupPort, int64(now))
	if !ok {
		r.MisroutedCS++
		r.DroppedCS++
		return
	}
	if r.cfg.Sharing && f.IsHead() && !f.Hitchhike && p != topology.Local && out != topology.Local {
		// A live circuit is passing through: (re-)advertise it for
		// hitchhiker-sharing. Advertising on traffic rather than on setup
		// messages guarantees the DLT only ever points at circuits whose
		// end-to-end reservation succeeded.
		slot := r.tables.SlotOf(int64(now))
		dur := r.tables.DurationAt(p, slot, int64(now))
		r.dltEvents = append(r.dltEvents, DLTEvent{Add: true, Dst: f.Pkt.Dst, Slot: slot, Dur: dur, In: p})
		r.armLocalNI(now)
	}
	r.emit(Event{Cycle: int64(now), Kind: EvCSBypass, In: p, Out: out, PktID: f.Pkt.ID, Seq: f.Seq, Slot: r.tables.SlotOf(int64(now))})
	if r.probe.Wants(obs.KindCSBypass) {
		r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindCSBypass,
			Node: int32(r.id), A: uint8(p), B: uint8(out), Pkt: f.Pkt.ID, Seq: int32(f.Seq),
			Slot: int32(r.tables.SlotOf(int64(now)))})
	}
	if cur := r.csPending[out]; cur != nil {
		// Two CS flits claim one output in the same slot. The circuit
		// owner has priority over a hitchhiker; the loser is dropped and
		// counted (the NI-side advance-signal check makes this
		// unreachable in well-formed runs).
		if cur.Hitchhike && !f.Hitchhike {
			r.csPending[out] = f
		}
		r.DroppedCS++
		return
	}
	r.csPending[out] = f
}

// switchTraversal moves last cycle's switch-allocation winners and this
// cycle's circuit-switched arrivals through the crossbar into the output
// latches. Circuit-switched flits have priority; a displaced winner
// stalls in its ST register and retries next cycle.
func (r *Router) switchTraversal(now sim.Cycle) bool {
	did := false
	for o := topology.Port(0); o < topology.NumPorts; o++ {
		ou := &r.out[o]
		if f := r.csPending[o]; f != nil {
			r.csPending[o] = nil
			if ou.latch == nil {
				ou.latch = f
				r.armConsumer(o, now)
				r.meter.XbarFlits++
				r.meter.CSLatches++
				r.meter.LinkFlits++
				did = true
			} else {
				r.LatchConflicts++
				r.DroppedCS++
			}
		}
		if ou.stReg != nil && ou.latch == nil {
			r.emit(Event{Cycle: int64(now), Kind: EvPSTraverse, Out: o, PktID: ou.stReg.Pkt.ID, Seq: ou.stReg.Seq})
			if r.probe.Wants(obs.KindSwitchTraverse) {
				r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindSwitchTraverse,
					Node: int32(r.id), B: uint8(o), Pkt: ou.stReg.Pkt.ID, Seq: int32(ou.stReg.Seq)})
			}
			ou.latch = ou.stReg
			ou.stReg = nil
			r.armConsumer(o, now)
			r.meter.XbarFlits++
			r.meter.LinkFlits++
			did = true
		}
	}
	return did
}

// armConsumer arms whoever pulls from out[o].latch (the downstream
// router, or the co-located NI for the Local port) for this cycle's
// transfer phase. Called from compute-phase latch writes: the consumer
// may be asleep, and the transfer contract is pull-based, so the
// producer is the only party that knows a pull is needed.
func (r *Router) armConsumer(o topology.Port, now sim.Cycle) {
	if st := r.armOut[o]; st != nil {
		st.ArmNext(now, sim.PhaseCompute)
	}
}

// armLocalNI arms the co-located NI for this cycle's transfer phase —
// the phase in which it drains the router's DLT event queue.
func (r *Router) armLocalNI(now sim.Cycle) {
	if st := r.armOut[topology.Local]; st != nil {
		st.ArmNext(now, sim.PhaseCompute)
	}
}

// routeCompute runs the RC stage for every input VC whose head flit is
// waiting, including the slot-reservation side effects of configuration
// messages.
func (r *Router) routeCompute(now sim.Cycle) {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		for v := range r.in[p].vcs {
			vc := &r.in[p].vcs[v]
			if vc.state != vcRouting || vc.ready > now {
				continue
			}
			f := vc.front()
			if f == nil || !f.IsHead() {
				continue
			}
			switch f.Pkt.Kind {
			case flit.SetupMsg:
				r.processSetup(now, p, vc, f)
			case flit.TeardownMsg:
				r.processTeardown(now, p, vc)
			default:
				vc.route = r.dataRoute(f.Pkt)
				vc.state = vcVCAlloc
				vc.ready = now + 1
				if r.probe.Wants(obs.KindRouteCompute) {
					r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindRouteCompute,
						Node: int32(r.id), A: uint8(p), B: uint8(vc.route), Pkt: f.Pkt.ID})
				}
			}
		}
	}
}

// dataRoute picks the output port for data packets (X-Y) and acks
// (west-first adaptive when enabled, per Table I's adaptive routing for
// configuration packets).
func (r *Router) dataRoute(pkt *flit.Packet) topology.Port {
	if pkt.Dst == r.id {
		return topology.Local
	}
	if pkt.Kind == flit.AckMsg && r.cfg.AdaptiveConfigRouting {
		return routing.WestFirst(r.mesh, r.id, pkt.Dst, r.congestion)
	}
	return r.xyPort(pkt.Dst)
}

// xyPort is the RC stage's dimension-order function: the output port X-Y
// routing takes toward dst, computed from the router's cached
// coordinates. Semantically identical to routing.XY(r.mesh, r.id, dst).
func (r *Router) xyPort(dst topology.NodeID) topology.Port {
	dx, dy := int(dst)%r.mesh.Width, int(dst)/r.mesh.Width
	switch {
	case dx > r.selfX:
		return topology.East
	case dx < r.selfX:
		return topology.West
	case dy > r.selfY:
		return topology.South
	case dy < r.selfY:
		return topology.North
	}
	return topology.Local
}

// congestion scores an output port for adaptive routing: fewer free
// downstream credits means more congested. Lower score wins.
func (r *Router) congestion(p topology.Port) int {
	ou := &r.out[p]
	if !ou.connected {
		return 1 << 30
	}
	free := 0
	for v := 0; v < r.allocLimit(p); v++ {
		free += ou.credits[v]
	}
	return -free
}

// processSetup performs the Section II-B reservation step of a setup
// message at this router: pick the output (adaptively), try to reserve
// the requested slots on (input port, output), and either forward with
// the slot id advanced by 2 or convert into a failure ack.
func (r *Router) processSetup(now sim.Cycle, p topology.Port, vc *inputVC, f *flit.Flit) {
	pkt := f.Pkt
	cfgp := &pkt.Config
	var out topology.Port
	switch {
	case pkt.Dst == r.id:
		out = topology.Local
	case r.cfg.AdaptiveConfigRouting:
		out = routing.WestFirst(r.mesh, r.id, pkt.Dst, r.congestion)
	default:
		out = r.xyPort(pkt.Dst)
	}
	ok := r.tables != nil && cfgp.Epoch == r.Epoch &&
		r.tables.Reserve(p, out, cfgp.Slot, cfgp.Duration, int64(now))
	if !ok {
		r.emit(Event{Cycle: int64(now), Kind: EvSetupFail, In: p, Out: out, PktID: pkt.ID, Slot: cfgp.Slot})
		if r.probe.Wants(obs.KindSetupFail) {
			r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindSetupFail,
				Node: int32(r.id), A: uint8(p), B: uint8(out), Pkt: pkt.ID, Slot: int32(cfgp.Slot)})
		}
		r.convertToAck(now, vc, f, false)
		return
	}
	r.emit(Event{Cycle: int64(now), Kind: EvSetupReserve, In: p, Out: out, PktID: pkt.ID, Slot: cfgp.Slot})
	if r.probe.Wants(obs.KindSetupReserve) {
		r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindSetupReserve,
			Node: int32(r.id), A: uint8(p), B: uint8(out), Pkt: pkt.ID, Slot: int32(cfgp.Slot),
			Val: int64(cfgp.Duration)})
	}
	r.meter.SlotWrites += int64(cfgp.Duration)
	cfgp.Hop++
	if out == topology.Local {
		r.convertToAck(now, vc, f, true)
		return
	}
	cfgp.Slot = (cfgp.Slot + 2) % r.tables.Active()
	vc.route = out
	vc.state = vcVCAlloc
	vc.ready = now + 1
}

// processTeardown releases this router's slots for the circuit and
// follows the reserved path onward; when there is nothing to release (the
// router where a failed setup stopped, or a stale-epoch teardown after a
// reset) the message is consumed via the local port.
func (r *Router) processTeardown(now sim.Cycle, p topology.Port, vc *inputVC) {
	pkt := vc.front().Pkt
	cfgp := &pkt.Config
	out := topology.Local
	if cfgp.Epoch != r.Epoch {
		// A teardown from before a slot-table reset: everything it would
		// release was already wiped, and the slots may have been re-reserved
		// by new-epoch circuits it must not touch. Consume it.
		vc.route = topology.Local
		vc.state = vcVCAlloc
		vc.ready = now + 1
		return
	}
	if cfgp.FailHop > 0 && cfgp.Hop >= cfgp.FailHop {
		// A failed setup reserved exactly FailHop routers; past that
		// point the slots belong to other circuits and must not be
		// touched. Consume the teardown here.
		vc.route = topology.Local
		vc.state = vcVCAlloc
		vc.ready = now + 1
		return
	}
	if r.tables != nil {
		if o, ok := r.tables.Release(p, cfgp.Slot, cfgp.Duration, int64(now)); ok {
			r.meter.SlotWrites += int64(cfgp.Duration)
			out = o
			r.emit(Event{Cycle: int64(now), Kind: EvTeardownRelease, In: p, Out: o, PktID: pkt.ID, Slot: cfgp.Slot})
			if r.probe.Wants(obs.KindTeardownRelease) {
				r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindTeardownRelease,
					Node: int32(r.id), A: uint8(p), B: uint8(o), Pkt: pkt.ID, Slot: int32(cfgp.Slot),
					Val: int64(cfgp.Duration)})
			}
		}
	}
	if r.cfg.Sharing {
		r.dltEvents = append(r.dltEvents, DLTEvent{Add: false, Dst: pkt.Dst})
		r.armLocalNI(now)
	}
	if out != topology.Local {
		cfgp.Slot = (cfgp.Slot + 2) % r.tables.Active()
		cfgp.Hop++
	}
	vc.route = out
	vc.state = vcVCAlloc
	vc.ready = now + 1
}

// convertToAck rewrites the setup flit in place into an acknowledgement
// heading back to the requesting source (Section II-B). FailHop records
// how many routers successfully reserved, so the source's teardown can
// walk exactly that prefix.
func (r *Router) convertToAck(now sim.Cycle, vc *inputVC, f *flit.Flit, ok bool) {
	// The setup packet is mutated in place rather than replaced: the
	// same object travels back to the requesting source, whose NI
	// recycles it — a setup/ack round trip costs zero allocations. All
	// untouched fields (Slot, BaseSlot, Duration, Hop, Epoch, Class,
	// Flits, ID) already carry the values an ack needs. Order matters:
	// CircuitDst must capture Dst before Dst is redirected to the source.
	pkt := f.Pkt
	pkt.Kind = flit.AckMsg
	pkt.Config.CircuitDst = pkt.Dst
	pkt.Dst = pkt.Src
	pkt.Src = r.id
	pkt.ReqID = pkt.ID
	pkt.Config.OK = ok
	pkt.Config.FailHop = pkt.Config.Hop
	pkt.CreatedAt = int64(now)
	pkt.InjectedAt = int64(now)
	if r.probe.Wants(obs.KindSetupAck) {
		var okb uint8
		if ok {
			okb = 1
		}
		r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindSetupAck,
			Node: int32(r.id), B: okb, Pkt: pkt.ID, Slot: int32(pkt.Config.Slot)})
	}
	// Re-run route computation next cycle with the new destination.
	vc.state = vcRouting
	vc.ready = now + 1
}

// vcAllocate is the VA stage: a separable allocator that matches waiting
// head packets to free downstream VCs, round-robin on both sides. One
// full pass over the input VCs builds a per-output census of ready
// waiters; the allocation sweep then touches only outputs with at least
// one candidate and stops each output's scan as soon as its last
// candidate has been granted. The census changes no arbitration
// decision — the iterations it skips could only ever probe
// non-matching VCs — so round-robin pointer movement (which is
// simulation state) stays bit-identical to the exhaustive sweep.
func (r *Router) vcAllocate(now sim.Cycle) {
	var want [topology.NumPorts]int16
	waiting := false
	for p := range r.in {
		for v := range r.in[p].vcs {
			vc := &r.in[p].vcs[v]
			if vc.state == vcVCAlloc && vc.ready <= now {
				want[vc.route]++
				waiting = true
			}
		}
	}
	if !waiting {
		return
	}
	n := int(topology.NumPorts) * r.cfg.VCs
	for o := topology.Port(0); o < topology.NumPorts; o++ {
		if want[o] == 0 {
			continue
		}
		ou := &r.out[o]
		if !ou.connected {
			continue
		}
		limit := r.allocLimit(o)
		for i := 0; i < n; i++ {
			// ou.rrVA is re-read every iteration on purpose: a grant
			// below advances it mid-scan, so the scan position jumps with
			// it. rrVA stays in [0, n) and i < n, so one conditional
			// subtract replaces the modulo.
			idx := ou.rrVA + i
			if idx >= n {
				idx -= n
			}
			p := topology.Port(idx / r.cfg.VCs)
			v := idx % r.cfg.VCs
			vc := &r.in[p].vcs[v]
			if vc.state != vcVCAlloc || vc.ready > now || vc.route != o {
				continue
			}
			got := -1
			// rrVC can exceed limit when VC power gating shrank the
			// allocatable range since the last grant; normalize once.
			ovc := ou.rrVC % limit
			for j := 0; j < limit; j++ {
				if ovc >= limit {
					ovc -= limit
				}
				if ou.vcFree[ovc] {
					got = ovc
					break
				}
				ovc++
			}
			if got < 0 {
				break // no downstream VCs left at this output
			}
			ou.vcFree[got] = false
			ou.rrVC = (got + 1) % limit
			vc.state = vcActive
			vc.outPort = o
			vc.outVC = got
			vc.ready = now + 1
			r.meter.VCArbs++
			if r.probe.Wants(obs.KindVCAlloc) {
				r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindVCAlloc,
					Node: int32(r.id), A: uint8(p), B: uint8(o), Val: int64(got)})
			}
			ou.rrVA = (idx + 1) % n
			if want[o]--; want[o] == 0 {
				break
			}
		}
	}
}

// csBlocked reports whether output o must be left free for the
// circuit-switched path at cycle now+1 (the traversal cycle of any switch
// allocation granted now). A reserved slot whose circuit flit is not
// arriving may be stolen when time-slot stealing is enabled.
func (r *Router) csBlocked(now sim.Cycle, o topology.Port) bool {
	if r.tables == nil {
		return false
	}
	next := int64(now + 1)
	inP, reserved := r.tables.OutReservedAt(next, o)
	if reserved {
		if r.IncomingCS(inP) {
			return true // the owner's flit is arriving
		}
		// A CS flit injected by the local NI for this cycle (owner or
		// hitchhiker) is not visible here until it arrives; if one shows
		// up it takes crossbar priority and the granted flit stalls one
		// cycle in its ST register — see switchTraversal.
		return !r.cfg.TimeSlotStealing
	}
	return false
}

// switchAllocate is the SA stage: an iSLIP-style separable allocator.
// Each iteration picks one ready VC per still-unmatched input port, then
// one input per still-unmatched output port; extra iterations
// (Config.SAIterations) fill holes the first pass leaves under
// contention. Winners are read from their buffers into the ST registers
// and credits return upstream.
func (r *Router) switchAllocate(now sim.Cycle) bool {
	// Fast path: if no input VC is active with a flit ready, the request
	// phase below cannot produce a winner and the whole function is a
	// no-op — skip the iSLIP iterations entirely. The per-input
	// eligibility mask is a superset test (credits, CS blocking and
	// output conflicts only reduce the match further), and it stays
	// valid across iterations: a grant changes only the matched input's
	// VC, and matched inputs are skipped anyway — so skipping a
	// mask-false input can never change results or move a round-robin
	// pointer.
	var eligIn [topology.NumPorts]bool
	eligible := false
	for p := range r.in {
		for v := range r.in[p].vcs {
			vc := &r.in[p].vcs[v]
			if vc.state == vcActive && vc.ready <= now && !vc.empty() {
				eligIn[p] = true
				eligible = true
				break
			}
		}
	}
	if !eligible {
		return false
	}
	iters := r.cfg.SAIterations
	if iters < 1 {
		iters = 1
	}
	did := false
	var inputMatched [topology.NumPorts]bool
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if r.IncomingCS(p) {
			inputMatched[p] = true // crossbar input claimed by an arriving CS flit
		}
	}
	for it := 0; it < iters; it++ {
		var winners [topology.NumPorts]*inputVC
		var winnerVC [topology.NumPorts]int
		any := false
		for p := topology.Port(0); p < topology.NumPorts; p++ {
			if inputMatched[p] || !eligIn[p] {
				continue
			}
			iu := &r.in[p]
			nv := r.cfg.VCs
			for i := 0; i < nv; i++ {
				// iu.rrVC stays in [0, nv); one conditional subtract
				// replaces the modulo.
				v := iu.rrVC + i
				if v >= nv {
					v -= nv
				}
				vc := &iu.vcs[v]
				if vc.state != vcActive || vc.ready > now || vc.empty() {
					continue
				}
				ou := &r.out[vc.outPort]
				if ou.stReg != nil {
					continue // output already matched or stalled by CS priority
				}
				if vc.outPort != topology.Local && ou.credits[vc.outVC] <= 0 {
					// Report the stall once per cycle (iteration 0), not once
					// per iSLIP iteration, so stall counts are comparable
					// across SAIterations settings.
					if it == 0 && r.probe.Wants(obs.KindCreditStall) {
						r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindCreditStall,
							Node: int32(r.id), A: uint8(p), B: uint8(vc.outPort),
							Pkt: vc.front().Pkt.ID, Val: int64(vc.outVC)})
					}
					continue
				}
				if r.csBlocked(now, vc.outPort) {
					continue
				}
				winners[p] = vc
				winnerVC[p] = v
				any = true
				break
			}
		}
		if !any {
			break
		}
		np := int(topology.NumPorts)
		for o := topology.Port(0); o < topology.NumPorts; o++ {
			ou := &r.out[o]
			if ou.stReg != nil {
				continue
			}
			for i := 0; i < np; i++ {
				pi := ou.rrIn + i
				if pi >= np {
					pi -= np
				}
				p := topology.Port(pi)
				vc := winners[p]
				if vc == nil || vc.outPort != o || inputMatched[p] {
					continue
				}
				f := vc.pop()
				r.meter.BufReads++
				r.meter.SWArbs++
				if r.latGate != nil {
					r.latGate.ObserveDelay(int64(now) - f.BufferedAt)
				}
				// Advance the input's VC pointer only on a grant (iSLIP's
				// "pointer moves on accept" rule, which gives fairness).
				r.in[p].rrVC = (winnerVC[p] + 1) % r.cfg.VCs
				f.VC = vc.outVC
				ou.stReg = f
				if r.probe.Wants(obs.KindSwitchAlloc) {
					r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindSwitchAlloc,
						Node: int32(r.id), A: uint8(p), B: uint8(o), Pkt: f.Pkt.ID, Seq: int32(f.Seq)})
				}
				if r.tables != nil {
					if _, res := r.tables.OutReservedAt(int64(now+1), o); res {
						r.StolenSlots++
						r.emit(Event{Cycle: int64(now), Kind: EvSteal, In: p, Out: o, PktID: f.Pkt.ID, Seq: f.Seq})
						if r.probe.Wants(obs.KindSlotSteal) {
							r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindSlotSteal,
								Node: int32(r.id), A: uint8(p), B: uint8(o), Pkt: f.Pkt.ID, Seq: int32(f.Seq),
								Slot: int32(r.tables.SlotOf(int64(now + 1)))})
						}
					}
				}
				if o != topology.Local {
					ou.credits[vc.outVC]--
				}
				r.pendingCredits = append(r.pendingCredits, creditMsg{port: p, vc: winnerVC[p]})
				if f.IsTail() {
					ou.vcFree[vc.outVC] = true
					vc.state = vcIdle
					if nf := vc.front(); nf != nil {
						if nf.IsHead() {
							vc.state = vcRouting
							vc.ready = now + 1
						} else {
							r.LatchConflicts++
						}
					}
				}
				ou.rrIn = (int(p) + 1) % np
				inputMatched[p] = true
				did = true
				break
			}
		}
	}
	return did
}
