package router

import (
	"tdmnoc/internal/obs"
)

// SetProbe installs (or, with nil, removes) the router's observability
// handle. The handle runs inside compute/transfer ticks: it must not
// touch other simulation entities, and under a parallel executor it must
// be bound to the shard of the worker that owns this router's tile —
// the network's AttachProbe wires that up.
func (r *Router) SetProbe(h *obs.Handle) { r.probe = h }

// BufferedFlits returns the number of flits currently held across all of
// the router's input VC buffers — the per-router occupancy gauge sampled
// by the network's telemetry pass.
func (r *Router) BufferedFlits() int {
	n := 0
	for p := range r.in {
		for v := range r.in[p].vcs {
			n += len(r.in[p].vcs[v].q)
		}
	}
	return n
}
