package router

import (
	"tdmnoc/internal/obs"
)

// SetProbe installs (or, with nil, removes) the router's observability
// probe. The probe runs inside compute/transfer ticks: it must not touch
// other simulation entities and is only supported with a serial executor
// (Workers == 1) — the network enforces this in AttachProbe. Pass a nil
// interface to detach; a typed-nil concrete value would defeat the
// nil-check guards (see the obs package comment).
func (r *Router) SetProbe(p obs.Probe) { r.probe = p }

// BufferedFlits returns the number of flits currently held across all of
// the router's input VC buffers — the per-router occupancy gauge sampled
// by the network's telemetry pass.
func (r *Router) BufferedFlits() int {
	n := 0
	for p := range r.in {
		for v := range r.in[p].vcs {
			n += len(r.in[p].vcs[v].q)
		}
	}
	return n
}
