package router

import (
	"fmt"
	"io"

	"tdmnoc/internal/topology"
)

// EventKind classifies a router-level event for debug tracing.
type EventKind uint8

const (
	// EvBufferWrite: a packet-switched flit entered an input VC buffer.
	EvBufferWrite EventKind = iota
	// EvPSTraverse: a packet-switched flit crossed the crossbar.
	EvPSTraverse
	// EvCSBypass: a circuit-switched flit took the single-cycle bypass.
	EvCSBypass
	// EvSteal: a packet-switched flit used a reserved-but-idle slot.
	EvSteal
	// EvSetupReserve: a setup message reserved slots here.
	EvSetupReserve
	// EvSetupFail: a setup message was rejected here.
	EvSetupFail
	// EvTeardownRelease: a teardown released slots here.
	EvTeardownRelease
)

// String returns a short mnemonic.
func (k EventKind) String() string {
	switch k {
	case EvBufferWrite:
		return "bufw"
	case EvPSTraverse:
		return "ps"
	case EvCSBypass:
		return "cs"
	case EvSteal:
		return "steal"
	case EvSetupReserve:
		return "setup+"
	case EvSetupFail:
		return "setup-"
	case EvTeardownRelease:
		return "teardown"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one traced router event.
type Event struct {
	Cycle  int64
	Router topology.NodeID
	Kind   EventKind
	In     topology.Port
	Out    topology.Port
	PktID  uint64
	Seq    int
	Slot   int
}

// EventSink receives traced events. Sinks run inside the router's compute
// phase: they must not touch other simulation entities, and event tracing
// is only supported with a serial executor (Workers == 1).
type EventSink func(Event)

// SetEventSink installs (or, with nil, removes) the router's event sink.
func (r *Router) SetEventSink(s EventSink) { r.events = s }

func (r *Router) emit(e Event) {
	if r.events != nil {
		e.Router = r.id
		r.events(e)
	}
}

// WriteEvents returns an EventSink that renders events as text lines:
//
//	cycle=1042 router=7 kind=cs in=W out=L pkt=281474976710667 seq=2 slot=14
func WriteEvents(w io.Writer) EventSink {
	return func(e Event) {
		fmt.Fprintf(w, "cycle=%d router=%d kind=%s in=%v out=%v pkt=%d seq=%d slot=%d\n",
			e.Cycle, e.Router, e.Kind, e.In, e.Out, e.PktID, e.Seq, e.Slot)
	}
}
