package router

import (
	"fmt"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/hybrid"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/power"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// Router is one mesh router: a canonical 4-stage virtual-channelled
// wormhole router, optionally extended with the hybrid-switched datapath
// of Fig. 2 (slot tables, circuit-switched latch path, demultiplexer and
// time-slot stealing).
//
// Concurrency contract: during the compute phase a router reads and
// writes only its own state, plus read-only neighbour state that is
// written exclusively in transfer phases (linkReg, publishedVCLimit,
// credits). During the transfer phase it moves flits across its incoming
// links (each link has exactly one downstream owner) and returns credits
// upstream. This makes parallel execution bit-identical to serial.
type Router struct {
	id   topology.NodeID
	mesh topology.Mesh
	cfg  Config

	in  [topology.NumPorts]inputUnit
	out [topology.NumPorts]outputUnit

	neighbors [topology.NumPorts]*Router
	localSink CreditSink

	// csPending[o] is a circuit-switched flit traversing to output o this
	// cycle (filled by acceptIncoming, drained by switchTraversal).
	csPending [topology.NumPorts]*flit.Flit

	// pendingCredits collects credits produced this compute phase; the
	// transfer phase delivers them upstream. Preallocated to its maximum
	// occupancy (one switch grant per input port per cycle) so the hot
	// path never grows it.
	pendingCredits []creditMsg

	// selfX, selfY cache this router's mesh coordinates for the RC
	// stage's X-Y comparison (see xyPort). An earlier layout precomputed
	// a per-router port-toward-every-node table instead; its O(N²)
	// aggregate footprint (256 MiB of route tables on a 128x128 mesh)
	// made large meshes cache- and memory-bound before a single flit
	// moved.
	selfX, selfY int

	// Hybrid state (nil unless cfg.Hybrid).
	tables *hybrid.RouterTables
	// dltEvents records circuits that started or stopped passing through
	// this router (setup/teardown processing). The co-located NI — which
	// owns the node's DLT — drains them during its transfer phase, so no
	// state is shared across entities within a phase.
	dltEvents []DLTEvent
	// Epoch is the slot-table sizing epoch; setups stamped with an older
	// epoch are rejected so reservations can never straddle a reset.
	Epoch int

	// VC gating.
	gate        *hybrid.VCGate
	latGate     *hybrid.LatencyVCGate
	activeVCs   int
	pendingVCs  int // shrink target during evacuation; == activeVCs when stable
	gateEpochAt sim.Cycle
	// publishedVCLimit is the VC count upstream allocators may use; it is
	// updated only in the transfer phase so cross-router reads are stable.
	publishedVCLimit int

	meter power.RouterMeter
	// accruedTo is the first cycle whose static leakage has not yet been
	// integrated into the meter. Active-node scheduling may skip a
	// quiescent router for many cycles; the next tick (or an explicit
	// SyncStatics at an observation point) accrues the whole idle gap in
	// one step, keeping Energy() exact without per-cycle meter writes.
	accruedTo sim.Cycle

	// node is this router's scheduling word for active-node scheduling;
	// armOut[p] is the word of whoever consumes out[p].latch (the
	// downstream router for mesh ports, the co-located NI for Local), so
	// writing a latch can arm its consumer for the same cycle's transfer
	// phase. Entries are nil when the consumer is not scheduled (e.g.
	// routers driven directly by unit-test harnesses).
	node   sim.NodeState
	armOut [topology.NumPorts]*sim.NodeState
	// canSleep is false for configurations whose compute tick is never a
	// state no-op (VC power gating observes utilisation every cycle).
	canSleep bool
	// lastActive is the activity bit of the most recent compute tick
	// (pipeline work done or flits buffered); Quiescent uses it to skip
	// its full state scan while the router is busy.
	lastActive bool

	// Diagnostics: protocol invariant violations (must stay zero in every
	// well-formed experiment; tests assert on them).
	MisroutedCS    int64
	DroppedCS      int64
	LatchConflicts int64
	// StolenSlots counts packet-switched traversals that used a reserved
	// but unclaimed circuit slot (time-slot stealing, Section II-D).
	StolenSlots int64

	// events, when non-nil, receives debug trace events (serial runs only).
	events EventSink
	// probe, when non-nil, receives cycle-level observability events.
	// Every emission site is guarded by a nil check so the disabled path
	// costs one predictable branch and zero allocations; under a parallel
	// executor the handle writes the owning worker's private shard.
	probe *obs.Handle
}

// New creates a router for node id on mesh m (a one-router Arena; the
// network builds whole partitions through an Arena directly). The caller
// wires neighbours with Connect and attaches the NI credit sink with
// AttachLocal.
func New(id topology.NodeID, m topology.Mesh, cfg Config) *Router {
	return NewArena(1, cfg).New(id, m)
}

// SchedState implements sim.ActiveTicker.
func (r *Router) SchedState() *sim.NodeState { return &r.node }

// Quiescent implements sim.ActiveTicker: it reports whether both phases
// would be exact state no-ops, so the executor may skip this router
// until an external event re-arms it. Everything listed here is state
// the pipeline acts on each cycle; neighbor-owned triggers (an upstream
// latch addressed to us, a credit return) arm the node explicitly at
// their write sites instead of being polled here.
func (r *Router) Quiescent() bool {
	// Fast path: a compute tick that did pipeline work or saw buffered
	// flits just recorded it; the full scan below is only worth running
	// once the router looks idle. (False negatives are always safe — the
	// node ticks once more and is probed again.)
	if !r.canSleep || r.lastActive {
		return false
	}
	if len(r.pendingCredits) != 0 || len(r.dltEvents) != 0 {
		return false
	}
	if r.tables != nil && r.tables.ReservedEntries() != 0 {
		return false
	}
	for p := range r.in {
		iu := &r.in[p]
		if iu.latch != nil || iu.linkReg != nil {
			return false
		}
		for v := range iu.vcs {
			vc := &iu.vcs[v]
			if !vc.empty() || vc.state != vcIdle {
				return false
			}
		}
	}
	for o := range r.out {
		if r.out[o].latch != nil || r.out[o].stReg != nil || r.csPending[o] != nil {
			return false
		}
	}
	return true
}

// SyncStatics accrues the static leakage of all not-yet-integrated
// cycles before now into the meter, treating them as idle — which they
// were: only skipped (quiescent) cycles accumulate in the gap, and the
// per-cycle static terms are constant across a quiescent stretch
// (activeVCs cannot change without gating, and ActivePoweredEntries
// only changes at a network-wide reset, which syncs first). Called at
// meter observation points (energy report, stats reset, slot resize).
func (r *Router) SyncStatics(now sim.Cycle) {
	gap := int64(now - r.accruedTo)
	if gap <= 0 {
		return
	}
	r.accruedTo = now
	r.meter.Cycles += gap
	r.meter.BufSlotCycles += gap * int64(r.activeVCs*r.cfg.BufDepth*int(topology.NumPorts))
	if r.tables != nil {
		r.meter.SlotEntryCycles += gap * int64(r.tables.ActivePoweredEntries())
		r.meter.CSCycles += gap
	}
}

// ID returns the router's node id.
func (r *Router) ID() topology.NodeID { return r.id }

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// Connect wires this router's port p to neighbour n (one direction; the
// caller also connects the reverse direction on n).
func (r *Router) Connect(p topology.Port, n *Router) {
	if p == topology.Local {
		panic("router: cannot Connect the local port")
	}
	if r.neighbors[p] != nil {
		panic(fmt.Sprintf("router %d: port %v already connected", r.id, p))
	}
	r.neighbors[p] = n
	r.out[p].connected = true
	r.armOut[p] = n.SchedState()
	r.meter.LinkChannels++
}

// AttachLocal registers the NI credit sink for the local input port.
func (r *Router) AttachLocal(s CreditSink) { r.localSink = s }

// AttachLocalSched registers the co-located NI's scheduling word: the
// consumer of out[Local].latch and of the DLT event queue, armed
// whenever the router hands it work.
func (r *Router) AttachLocalSched(st *sim.NodeState) { r.armOut[topology.Local] = st }

// Tables exposes the hybrid slot tables (nil for packet-switched routers).
func (r *Router) Tables() *hybrid.RouterTables { return r.tables }

// DLTEvent tells the node's NI that a circuit toward Dst began (Add) or
// stopped passing through this router at the given slot/duration, entering
// on input port In — the information hitchhiker-sharing stores in the DLT.
type DLTEvent struct {
	Add  bool
	Dst  topology.NodeID
	Slot int
	Dur  int
	In   topology.Port
}

// DrainDLTEvents hands the accumulated DLT events to the caller (the
// co-located NI, during its transfer phase) and clears the queue.
func (r *Router) DrainDLTEvents(buf []DLTEvent) []DLTEvent {
	buf = append(buf, r.dltEvents...)
	r.dltEvents = r.dltEvents[:0]
	return buf
}

// Meter exposes the router's energy meter.
func (r *Router) Meter() *power.RouterMeter { return &r.meter }

// ActiveVCs returns the current active VC count per port.
func (r *Router) ActiveVCs() int { return r.activeVCs }

// LocalVCLimit tells the NI how many local input VCs it may inject on.
// Safe to read from NI compute ticks: updated only during transfer.
func (r *Router) LocalVCLimit() int { return r.publishedVCLimit }

// StageLocalInject places a flit on the NI-to-router local link during
// the NI's transfer phase; the router processes it next cycle. The local
// link has no extra pipeline register: the NI sits at the router, so a
// flit staged at transfer T arrives at compute T+1 — which is also why
// the NI can consult IncomingCS (the advance signal) at compute T to
// decide hitchhiker contention for arrival cycle T+1.
func (r *Router) StageLocalInject(f *flit.Flit) {
	iu := &r.in[topology.Local]
	if iu.latch != nil {
		r.LatchConflicts++
	}
	iu.latch = f
}

// TakeLocalEject removes and returns the flit on the router-to-NI latch,
// if any. Called by the NI during the transfer phase.
func (r *Router) TakeLocalEject() *flit.Flit {
	f := r.out[topology.Local].latch
	r.out[topology.Local].latch = nil
	return f
}

// IncomingCS reports whether a circuit-switched flit will arrive on input
// port p next cycle — the paper's one-bit advance signal, used for
// time-slot stealing and by NIs checking whether a hitchhiker slot is
// free. Safe to read from compute ticks: linkReg is transfer-written.
func (r *Router) IncomingCS(p topology.Port) bool {
	f := r.in[p].linkReg
	return f != nil && f.CS
}

// ResetCircuits clears all slot tables and the DLT and installs a new
// active slot count and epoch — invoked by the network-wide dynamic
// resizing policy after its drain window.
func (r *Router) ResetCircuits(newActive, epoch int) {
	if r.tables != nil {
		r.tables.Reset(newActive)
	}
	r.dltEvents = r.dltEvents[:0]
	r.Epoch = epoch
}

// Tick advances the router one phase (see sim.Phase for the contract).
func (r *Router) Tick(now sim.Cycle, phase sim.Phase) {
	switch phase {
	case sim.PhaseCompute:
		r.compute(now)
	case sim.PhaseTransfer:
		r.transfer(now)
	}
}

// compute runs the router pipeline for one cycle.
func (r *Router) compute(now sim.Cycle) {
	busy := r.acceptIncoming(now)
	busy = r.switchTraversal(now) || busy
	r.routeCompute(now)
	r.vcAllocate(now)
	busy = r.switchAllocate(now) || busy
	r.updateVCGating(now)
	busy = busy || r.anyBuffered()
	r.lastActive = busy
	r.accrueStatics(now, busy)
}

// transfer moves flits across this router's incoming links and returns
// credits upstream.
func (r *Router) transfer(now sim.Cycle) {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		up := r.neighbors[p]
		if up == nil {
			continue // Local handled by the NI via ShiftLocalLink
		}
		iu := &r.in[p]
		if iu.linkReg != nil {
			if iu.latch != nil {
				r.LatchConflicts++
			}
			iu.latch = iu.linkReg
			iu.linkReg = nil
		}
		upPort := p.Opposite()
		if f := up.out[upPort].latch; f != nil {
			iu.linkReg = f
			up.out[upPort].latch = nil
			if r.probe.Wants(obs.KindLinkTraverse) {
				// LT: the flit leaves the upstream router's output port.
				// Each link has exactly one downstream owner, so attributing
				// the event to the sender from here double-counts nothing.
				var cs uint8
				if f.CS {
					cs = 1
				}
				r.probe.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindLinkTraverse,
					Node: int32(up.id), A: uint8(upPort), B: cs, Pkt: f.Pkt.ID, Seq: int32(f.Seq)})
			}
		}
	}
	for _, c := range r.pendingCredits {
		if c.port == topology.Local {
			if r.localSink != nil {
				r.localSink.ReturnCredit(c.vc)
			}
			continue
		}
		if up := r.neighbors[c.port]; up != nil {
			up.out[c.port.Opposite()].credits[c.vc]++
		}
	}
	r.pendingCredits = r.pendingCredits[:0]
	r.publishedVCLimit = min(r.activeVCs, r.pendingVCs)
}

// anyBuffered reports whether any input VC holds flits.
func (r *Router) anyBuffered() bool {
	for p := range r.in {
		for v := range r.in[p].vcs {
			if !r.in[p].vcs[v].empty() {
				return true
			}
		}
	}
	return false
}

// accrueStatics integrates leakage state for this cycle, catching up on
// any cycles active-node scheduling skipped since the last tick (those
// were idle by definition — see SyncStatics for why the static terms
// are constant across the gap).
func (r *Router) accrueStatics(now sim.Cycle, busy bool) {
	r.SyncStatics(now)
	r.accruedTo = now + 1
	r.meter.Cycles++
	if busy {
		r.meter.ActiveCycles++
	}
	r.meter.BufSlotCycles += int64(r.activeVCs * r.cfg.BufDepth * int(topology.NumPorts))
	if r.tables != nil {
		r.meter.SlotEntryCycles += int64(r.tables.ActivePoweredEntries())
		r.meter.CSCycles++
	}
}

// updateVCGating runs the Section III-B policy: observe utilisation every
// cycle, adjust at epoch boundaries, commit shrinks only after the victim
// VCs have been evacuated.
func (r *Router) updateVCGating(now sim.Cycle) {
	if r.latGate != nil {
		if now >= r.gateEpochAt+sim.Cycle(r.latGate.Epoch) {
			r.gateEpochAt = now
			if target, changed := r.latGate.Step(); changed {
				r.pendingVCs = target
				if target > r.activeVCs {
					r.activeVCs = target
				}
			}
		}
		if r.pendingVCs < r.activeVCs && r.evacuated(r.pendingVCs) {
			r.activeVCs = r.pendingVCs
		}
		return
	}
	if r.gate == nil {
		return
	}
	busy := 0
	for p := range r.in {
		for v := 0; v < r.activeVCs; v++ {
			if !r.in[p].vcs[v].empty() {
				busy++
			}
		}
	}
	// Observe per-port average utilisation (rounded up so a single busy
	// VC anywhere still registers).
	r.gate.Observe((busy + int(topology.NumPorts) - 1) / int(topology.NumPorts))

	if now >= r.gateEpochAt+sim.Cycle(r.gate.Epoch) {
		r.gateEpochAt = now
		if target, changed := r.gate.Step(); changed {
			r.pendingVCs = target
			if target > r.activeVCs {
				r.activeVCs = target // growing is immediate
			}
		}
	}
	if r.pendingVCs < r.activeVCs && r.evacuated(r.pendingVCs) {
		r.activeVCs = r.pendingVCs
	}
}

// evacuated reports whether all VCs at or above limit are empty and idle
// on every input port, and no upstream packet still holds one.
func (r *Router) evacuated(limit int) bool {
	for p := range r.in {
		for v := limit; v < r.activeVCs; v++ {
			if !r.in[p].vcs[v].empty() || r.in[p].vcs[v].state != vcIdle {
				return false
			}
		}
	}
	return true
}

// allocLimit is the number of downstream VCs the VC allocator may hand out
// for output port p.
func (r *Router) allocLimit(p topology.Port) int {
	if p == topology.Local {
		return r.cfg.VCs // ejection pseudo-VCs, never gated
	}
	if n := r.neighbors[p]; n != nil {
		return n.publishedVCLimit
	}
	return r.cfg.VCs
}
