package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad hardens the trace parser against malformed input: whatever the
// bytes, Load must either return an error or a trace that validates.
func FuzzLoad(f *testing.F) {
	var buf bytes.Buffer
	tr := &Trace{Width: 4, Height: 4, Events: []Event{
		{Cycle: 1, Src: 0, Dst: 5, SizeFlits: 5, AllowCS: true, Slack: -1},
		{Cycle: 3, Src: 2, Dst: 7, SizeFlits: 1},
	}}
	_ = tr.Save(&buf)
	f.Add(buf.String())
	f.Add("tdmnoc-trace v1 4 4 0\n")
	f.Add("tdmnoc-trace v1 2 2 1\n0 0 1 0 5 1 -1\n")
	f.Add("garbage")
	f.Add("tdmnoc-trace v1 -3 4 1\n")
	f.Add("tdmnoc-trace v1 4 4 999999999\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Load(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Load accepted a trace that fails Validate: %v", err)
		}
		// Round-trip: saving and reloading must preserve the trace.
		var out bytes.Buffer
		if err := tr.Save(&out); err != nil {
			t.Fatalf("Save failed on loaded trace: %v", err)
		}
		again, err := Load(&out)
		if err != nil {
			t.Fatalf("reload failed: %v", err)
		}
		if len(again.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count %d -> %d", len(tr.Events), len(again.Events))
		}
	})
}
