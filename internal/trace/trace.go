// Package trace provides trace-driven simulation: traffic traces can be
// synthesized from the canonical patterns, saved to a portable text
// format, loaded back, and replayed into a network. NoC studies — the
// paper's included — routinely drive simulators from traces captured
// elsewhere; this package is the reproduction's equivalent of that
// workflow, and it also pins down workloads exactly for regression
// comparisons across configurations.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/network"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
	"tdmnoc/internal/traffic"
)

// Event is one injection: at Cycle, Src sends a SizeFlits-flit message to
// Dst with the given switching eligibility and slack.
type Event struct {
	Cycle     int64
	Src       topology.NodeID
	Dst       topology.NodeID
	Class     flit.TrafficClass
	SizeFlits int
	AllowCS   bool
	Slack     int
}

// Trace is an ordered traffic trace for a Width x Height mesh.
type Trace struct {
	Width, Height int
	Events        []Event
}

// Sort orders events by cycle, then source (replay requires this order).
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		if t.Events[i].Cycle != t.Events[j].Cycle {
			return t.Events[i].Cycle < t.Events[j].Cycle
		}
		return t.Events[i].Src < t.Events[j].Src
	})
}

// Validate checks every event fits the mesh and has a sane size.
func (t *Trace) Validate() error {
	m := topology.NewMesh(t.Width, t.Height)
	last := int64(-1)
	for i, e := range t.Events {
		if int(e.Src) < 0 || int(e.Src) >= m.Nodes() || int(e.Dst) < 0 || int(e.Dst) >= m.Nodes() {
			return fmt.Errorf("trace: event %d references node outside %dx%d mesh", i, t.Width, t.Height)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("trace: event %d is a self-send", i)
		}
		if e.SizeFlits < 0 || e.SizeFlits > 64 {
			return fmt.Errorf("trace: event %d has size %d flits", i, e.SizeFlits)
		}
		if e.Cycle < last {
			return fmt.Errorf("trace: event %d out of order (call Sort first)", i)
		}
		last = e.Cycle
	}
	return nil
}

// Duration returns the cycle of the last event (0 for an empty trace).
func (t *Trace) Duration() int64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Cycle
}

// Synthesize builds a trace by running a synthetic pattern's injection
// process for the given number of cycles — the same Bernoulli process the
// live generators use, so a replayed trace matches a live run's offered
// load.
func Synthesize(p traffic.Pattern, m topology.Mesh, rate float64, flitsPerPacket int, cycles int64, seed uint64) *Trace {
	t := &Trace{Width: m.Width, Height: m.Height}
	master := sim.NewRNG(seed)
	rngs := make([]*sim.RNG, m.Nodes())
	for i := range rngs {
		rngs[i] = master.Fork()
	}
	for c := int64(0); c < cycles; c++ {
		for n := 0; n < m.Nodes(); n++ {
			rng := rngs[n]
			if !rng.Bernoulli(rate / float64(flitsPerPacket)) {
				continue
			}
			dst, ok := traffic.Destination(p, m, topology.NodeID(n), rng)
			if !ok {
				continue
			}
			t.Events = append(t.Events, Event{
				Cycle: c, Src: topology.NodeID(n), Dst: dst,
				Class: flit.ClassOther, SizeFlits: flitsPerPacket, AllowCS: true, Slack: -1,
			})
		}
	}
	return t
}

// Save writes the trace in a line-oriented text format:
//
//	tdmnoc-trace v1 <width> <height> <events>
//	<cycle> <src> <dst> <class> <flits> <allowCS 0|1> <slack>
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "tdmnoc-trace v1 %d %d %d\n", t.Width, t.Height, len(t.Events)); err != nil {
		return err
	}
	for _, e := range t.Events {
		cs := 0
		if e.AllowCS {
			cs = 1
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d %d %d\n",
			e.Cycle, e.Src, e.Dst, e.Class, e.SizeFlits, cs, e.Slack); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic, version string
	var w, h, n int
	if _, err := fmt.Fscan(br, &magic, &version, &w, &h, &n); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if magic != "tdmnoc-trace" || version != "v1" {
		return nil, fmt.Errorf("trace: unsupported format %s %s", magic, version)
	}
	if w <= 0 || h <= 0 || n < 0 {
		return nil, fmt.Errorf("trace: invalid header values %d %d %d", w, h, n)
	}
	// Pre-allocate conservatively: a hostile header must not be able to
	// demand arbitrary memory before any event has parsed.
	t := &Trace{Width: w, Height: h, Events: make([]Event, 0, min(n, 1<<16))}
	for i := 0; i < n; i++ {
		var e Event
		var class, cs int
		if _, err := fmt.Fscan(br, &e.Cycle, &e.Src, &e.Dst, &class, &e.SizeFlits, &cs, &e.Slack); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		e.Class = flit.TrafficClass(class)
		e.AllowCS = cs != 0
		t.Events = append(t.Events, e)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Replayer is a network.Endpoint that injects one node's slice of a trace
// at the recorded cycles. Create one per node with NewReplayers.
type Replayer struct {
	events []Event // this node's events, cycle-sorted
	next   int
	offset int64
	// Sent counts injected packets.
	Sent int64
}

// NewReplayers splits a trace into per-node replayers. offset shifts
// every event into the future (e.g. past a warm-up period).
func NewReplayers(t *Trace, offset int64) map[topology.NodeID]*Replayer {
	out := map[topology.NodeID]*Replayer{}
	for _, e := range t.Events {
		r := out[e.Src]
		if r == nil {
			r = &Replayer{offset: offset}
			out[e.Src] = r
		}
		r.events = append(r.events, e)
	}
	return out
}

// Done reports whether every event has been injected.
func (r *Replayer) Done() bool { return r == nil || r.next >= len(r.events) }

// Tick implements network.Endpoint.
func (r *Replayer) Tick(now sim.Cycle, ni *network.NI) {
	for r.next < len(r.events) && r.events[r.next].Cycle+r.offset <= int64(now) {
		e := r.events[r.next]
		r.next++
		ni.Send(now, e.Dst, network.SendOptions{
			Class:     e.Class,
			AllowCS:   e.AllowCS,
			Slack:     e.Slack,
			SizeFlits: e.SizeFlits,
		})
		r.Sent++
	}
}

// OnDeliver implements network.Endpoint (replay sinks silently).
func (r *Replayer) OnDeliver(now sim.Cycle, ni *network.NI, pkt *flit.Packet) {}
