package trace

import (
	"bytes"
	"strings"
	"testing"

	"tdmnoc/internal/network"
	"tdmnoc/internal/topology"
	"tdmnoc/internal/traffic"
)

func TestSynthesizeProducesValidTrace(t *testing.T) {
	m := topology.NewMesh(6, 6)
	tr := Synthesize(traffic.Tornado, m, 0.15, 5, 2000, 1)
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Offered load should approximate rate/flits packets per node-cycle.
	want := 0.15 / 5 * float64(m.Nodes()) * 2000
	got := float64(len(tr.Events))
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("synthesized %d events, expected about %.0f", len(tr.Events), want)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	m := topology.NewMesh(4, 4)
	a := Synthesize(traffic.UniformRandom, m, 0.2, 5, 500, 7)
	b := Synthesize(traffic.UniformRandom, m, 0.2, 5, 500, 7)
	if len(a.Events) != len(b.Events) {
		t.Fatal("different lengths")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := topology.NewMesh(4, 4)
	tr := Synthesize(traffic.Transpose, m, 0.2, 5, 300, 3)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != tr.Width || got.Height != tr.Height || len(got.Events) != len(tr.Events) {
		t.Fatalf("header mismatch: %dx%d %d events", got.Width, got.Height, len(got.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not-a-trace v1 4 4 0\n",
		"tdmnoc-trace v2 4 4 0\n",
		"tdmnoc-trace v1 0 4 0\n",
		"tdmnoc-trace v1 4 4 2\n1 0 1 0 5 1 -1\n",  // truncated
		"tdmnoc-trace v1 4 4 1\n1 0 99 0 5 1 -1\n", // node outside mesh
		"tdmnoc-trace v1 4 4 1\n1 3 3 0 5 1 -1\n",  // self send
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSortAndValidateOrdering(t *testing.T) {
	tr := &Trace{Width: 4, Height: 4, Events: []Event{
		{Cycle: 5, Src: 1, Dst: 2, SizeFlits: 5},
		{Cycle: 1, Src: 0, Dst: 3, SizeFlits: 5},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Duration() != 5 {
		t.Fatalf("duration %d", tr.Duration())
	}
	if (&Trace{}).Duration() != 0 {
		t.Fatal("empty duration")
	}
}

func TestReplayDeliversEverything(t *testing.T) {
	m := topology.NewMesh(6, 6)
	tr := Synthesize(traffic.Tornado, m, 0.10, 5, 1500, 11)
	reps := NewReplayers(tr, 0)
	cfg := network.HybridTDMConfig(6, 6)
	net := network.New(cfg, func(id topology.NodeID) network.Endpoint {
		if r := reps[id]; r != nil {
			return r
		}
		return nil
	})
	defer net.Close()
	net.EnableStats()
	net.Run(int(tr.Duration()) + 10)
	if !net.Drain(20000) {
		t.Fatalf("replay failed to drain: %d in flight", net.InFlight())
	}
	var sent int64
	for _, r := range reps {
		sent += r.Sent
		if !r.Done() {
			t.Fatal("replayer not done after trace duration")
		}
	}
	if sent != int64(len(tr.Events)) {
		t.Fatalf("replayed %d of %d events", sent, len(tr.Events))
	}
	st := net.Stats()
	if st.EjectedPackets != sent {
		t.Fatalf("delivered %d of %d packets", st.EjectedPackets, sent)
	}
	d := net.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 {
		t.Fatalf("invariants: %+v", d)
	}
}

func TestReplayOffsetShiftsInjection(t *testing.T) {
	tr := &Trace{Width: 4, Height: 4, Events: []Event{{Cycle: 0, Src: 0, Dst: 5, SizeFlits: 5}}}
	reps := NewReplayers(tr, 100)
	cfg := network.DefaultConfig(4, 4)
	net := network.New(cfg, func(id topology.NodeID) network.Endpoint {
		if r := reps[id]; r != nil {
			return r
		}
		return nil
	})
	defer net.Close()
	net.Run(50)
	if reps[0].Sent != 0 {
		t.Fatal("event injected before offset")
	}
	net.Run(100)
	if reps[0].Sent != 1 {
		t.Fatal("event not injected after offset")
	}
}

func TestNilReplayerDone(t *testing.T) {
	var r *Replayer
	if !r.Done() {
		t.Fatal("nil replayer not done")
	}
}
