// Package workload holds the synthetic characterizations of the paper's
// application workloads: the 8 SPEC OMP 2001 CPU benchmarks and the 7
// GPGPU-Sim/Rodinia GPU benchmarks of Section V-A1.
//
// The originals require Simics/GEMS and GPGPU-Sim plus proprietary
// binaries, so — per the reproduction's substitution rule — each benchmark
// is reduced to the traffic-shaping parameters that matter to the NoC:
// injection intensity, memory-level parallelism, destination concentration
// and latency tolerance. The GPU injection rates are taken directly from
// Table III of the paper; the remaining parameters are plausible synthetic
// values chosen so the workload mixes span the same behavioural range the
// paper reports (from the low-intensity STO to the streaming-heavy LPS/LIB).
package workload

// GPUBenchmark parameterises one data-parallel kernel running on every
// accelerator tile.
type GPUBenchmark struct {
	Name string
	// InjectionRate is the target traffic the kernel offers, in
	// flits/node/cycle, straight from Table III.
	InjectionRate float64
	// Warps is the number of concurrent warps per SM (Table II: up to
	// 1024 threads / 32-wide SIMD = 32 warps).
	Warps int
	// ComputeCycles is the mean compute time between a warp's memory
	// operations (derived from the injection rate; see Derive).
	ComputeCycles int
	// HotDestFraction concentrates traffic: the fraction of requests that
	// go to the kernel's preferred L2 banks. High concentration makes
	// circuits profitable; uniform spread (low value) does not.
	HotDestFraction float64
	// HotDests is how many L2 banks the hot set contains per accelerator.
	HotDests int
	// WriteFraction is the share of memory operations that are stores
	// (fire-and-forget 5-flit packets; loads are 1-flit requests with
	// 5-flit replies).
	WriteFraction float64
	// SlackPerWarp converts available warps into message slack cycles
	// (Section V-A2's latency-tolerance indicator).
	SlackPerWarp int
}

// CPUBenchmark parameterises one SPEC OMP benchmark running one thread on
// every CPU tile.
type CPUBenchmark struct {
	Name string
	// IPC is the core's retire rate when not memory-stalled (four-way
	// out-of-order, Table II).
	IPC float64
	// MissesPerKInstr is L1 misses per 1000 instructions (drives NoC
	// request traffic).
	MissesPerKInstr float64
	// MLP is the maximum outstanding misses before the core stalls
	// (128-entry ROB gives moderate memory-level parallelism).
	MLP int
	// SharingFraction is the portion of misses served by another core's
	// cache (coherence traffic) rather than an L2 bank.
	SharingFraction float64
	// BurstSize clusters misses (streaming access patterns miss several
	// lines back to back), which is what makes the core's performance
	// couple to memory latency: a burst can exhaust the MLP window.
	BurstSize int
}

// GPUBenchmarks lists the seven kernels of Table III, in the paper's
// order. Injection rates are the paper's measured values.
var GPUBenchmarks = []GPUBenchmark{
	{Name: "BLACKSCHOLES", InjectionRate: 0.18, Warps: 32, HotDestFraction: 0.85, HotDests: 3, WriteFraction: 0.30, SlackPerWarp: 5},
	{Name: "HOTSPOT", InjectionRate: 0.09, Warps: 24, HotDestFraction: 0.70, HotDests: 4, WriteFraction: 0.35, SlackPerWarp: 4},
	{Name: "LIB", InjectionRate: 0.20, Warps: 32, HotDestFraction: 0.75, HotDests: 2, WriteFraction: 0.25, SlackPerWarp: 4},
	{Name: "LPS", InjectionRate: 0.20, Warps: 32, HotDestFraction: 0.85, HotDests: 3, WriteFraction: 0.30, SlackPerWarp: 5},
	{Name: "NN", InjectionRate: 0.18, Warps: 28, HotDestFraction: 0.70, HotDests: 5, WriteFraction: 0.20, SlackPerWarp: 4},
	{Name: "PATHFINDER", InjectionRate: 0.13, Warps: 28, HotDestFraction: 0.80, HotDests: 3, WriteFraction: 0.30, SlackPerWarp: 5},
	{Name: "STO", InjectionRate: 0.05, Warps: 16, HotDestFraction: 0.55, HotDests: 5, WriteFraction: 0.40, SlackPerWarp: 3},
}

// CPUBenchmarks lists the eight SPEC OMP 2001 applications of
// Section V-A1. Miss intensities follow the applications' published
// characters (SWIM/MGRID stream through memory; AMMP/WUPWISE are
// compute-bound).
var CPUBenchmarks = []CPUBenchmark{
	{Name: "AMMP", IPC: 1.6, MissesPerKInstr: 3.0, MLP: 6, SharingFraction: 0.10, BurstSize: 2},
	{Name: "APPLU", IPC: 1.3, MissesPerKInstr: 8.0, MLP: 8, SharingFraction: 0.08, BurstSize: 4},
	{Name: "ART", IPC: 1.0, MissesPerKInstr: 14.0, MLP: 8, SharingFraction: 0.05, BurstSize: 6},
	{Name: "EQUAKE", IPC: 1.2, MissesPerKInstr: 10.0, MLP: 8, SharingFraction: 0.12, BurstSize: 4},
	{Name: "GAFORT", IPC: 1.4, MissesPerKInstr: 6.0, MLP: 6, SharingFraction: 0.15, BurstSize: 3},
	{Name: "MGRID", IPC: 1.1, MissesPerKInstr: 12.0, MLP: 10, SharingFraction: 0.05, BurstSize: 6},
	{Name: "SWIM", IPC: 0.9, MissesPerKInstr: 16.0, MLP: 10, SharingFraction: 0.04, BurstSize: 8},
	{Name: "WUPWISE", IPC: 1.7, MissesPerKInstr: 4.0, MLP: 6, SharingFraction: 0.10, BurstSize: 2},
}

// GPUBenchmarkByName returns the named kernel.
func GPUBenchmarkByName(name string) (GPUBenchmark, bool) {
	for _, b := range GPUBenchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return GPUBenchmark{}, false
}

// CPUBenchmarkByName returns the named application.
func CPUBenchmarkByName(name string) (CPUBenchmark, bool) {
	for _, b := range CPUBenchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return CPUBenchmark{}, false
}

// DeriveComputeCycles back-solves the per-warp compute time that makes a
// warp pool offer approximately the benchmark's Table-III injection rate,
// assuming a round-trip memory latency estimate:
//
//	rate = Warps * flitsPerOp / (ComputeCycles + memLatency)
//
// where flitsPerOp averages load requests (1 flit) and stores (5 flits).
func (b GPUBenchmark) DeriveComputeCycles(memLatency int) int {
	flitsPerOp := (1-b.WriteFraction)*1 + b.WriteFraction*5
	c := float64(b.Warps)*flitsPerOp/b.InjectionRate - float64(memLatency)
	if c < 1 {
		c = 1
	}
	return int(c)
}

// MixCount is the number of workload mixes the paper evaluates
// (8 CPU x 7 GPU = 56).
func MixCount() int { return len(CPUBenchmarks) * len(GPUBenchmarks) }

// Mix returns the i-th workload combination, ordered with the GPU
// benchmark as the major axis (Fig. 8 groups results by GPU benchmark).
func Mix(i int) (CPUBenchmark, GPUBenchmark) {
	g := i / len(CPUBenchmarks)
	c := i % len(CPUBenchmarks)
	return CPUBenchmarks[c], GPUBenchmarks[g]
}
