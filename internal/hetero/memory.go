package hetero

import (
	"tdmnoc/internal/flit"
	"tdmnoc/internal/network"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
)

// Table II memory-system parameters.
const (
	// L2AccessLatency is the banked shared L2's access time (8 cycles).
	L2AccessLatency = 8
	// DRAMLatency is the off-chip access time (200 cycles).
	DRAMLatency = 200
	// DefaultL2HitRate is the shared-cache hit probability used by the
	// bank model (the paper does not publish per-benchmark hit rates).
	DefaultL2HitRate = 0.75
)

// deferredSend is a reply scheduled for a future cycle.
type deferredSend struct {
	due  sim.Cycle
	dst  topology.NodeID
	opt  network.SendOptions
	hint int
}

// missRecord remembers an L2 miss forwarded to a memory controller so the
// eventual DRAM reply can be routed back to the original requester.
type missRecord struct {
	requester topology.NodeID
	class     flit.TrafficClass
	slack     int
	reqID     uint64
}

// L2Bank is one bank of the 16 MB shared distributed L2 (Table II). Read
// requests hit with probability HitRate and are answered after the bank
// access latency; misses are forwarded to the nearest memory controller
// and answered when DRAM responds.
type L2Bank struct {
	layout  *Layout
	id      topology.NodeID
	HitRate float64

	queue  []deferredSend
	misses map[uint64]missRecord

	// Requests counts read requests served (for sanity checks).
	Requests int64
}

// NewL2Bank builds the bank at tile id.
func NewL2Bank(layout *Layout, id topology.NodeID) *L2Bank {
	return &L2Bank{layout: layout, id: id, HitRate: DefaultL2HitRate, misses: map[uint64]missRecord{}}
}

// Tick implements network.Endpoint: flush due replies.
func (b *L2Bank) Tick(now sim.Cycle, ni *network.NI) {
	b.queue = flushDue(b.queue, now, ni)
}

// OnDeliver implements network.Endpoint.
func (b *L2Bank) OnDeliver(now sim.Cycle, ni *network.NI, pkt *flit.Packet) {
	if rec, ok := b.misses[pkt.ReqID]; ok && pkt.ReplyFlits == 0 {
		// DRAM fill for an earlier miss: forward to the requester.
		delete(b.misses, pkt.ReqID)
		b.queue = append(b.queue, deferredSend{
			due: now + L2AccessLatency,
			dst: rec.requester,
			opt: network.SendOptions{
				Class:   rec.class,
				AllowCS: rec.class == flit.ClassGPU,
				Slack:   rec.slack,
				ReqID:   rec.reqID,
			},
		})
		return
	}
	if pkt.ReplyFlits == 0 {
		return // store: absorbed by the bank
	}
	b.Requests++
	slack := pkt.SlackHint
	if ni.RNG().Bernoulli(b.HitRate) {
		b.queue = append(b.queue, deferredSend{
			due: now + L2AccessLatency,
			dst: pkt.Src,
			opt: network.SendOptions{
				Class:   pkt.Class,
				AllowCS: pkt.Class == flit.ClassGPU,
				Slack:   slack,
				ReqID:   pkt.ID,
			},
			hint: slack,
		})
		return
	}
	// Miss: ask the nearest memory controller (1-flit request) and
	// remember who wanted the line.
	mc := b.layout.NearestMC(b.id)
	req := ni.Send(now, mc, network.SendOptions{
		Class:      pkt.Class,
		AllowCS:    false, // cache-to-MC control traffic stays packet-switched
		ReplyFlits: ni.PSDataFlits(),
		SizeFlits:  1,
	})
	b.misses[req.ID] = missRecord{requester: pkt.Src, class: pkt.Class, slack: slack, reqID: pkt.ID}
}

// MemController is one of the four DRAM channels of Table II: every read
// request is answered with a data packet after the fixed DRAM latency.
type MemController struct {
	queue []deferredSend
	// Requests counts DRAM reads served.
	Requests int64
}

// NewMemController builds a controller.
func NewMemController() *MemController { return &MemController{} }

// Tick implements network.Endpoint.
func (m *MemController) Tick(now sim.Cycle, ni *network.NI) {
	m.queue = flushDue(m.queue, now, ni)
}

// OnDeliver implements network.Endpoint.
func (m *MemController) OnDeliver(now sim.Cycle, ni *network.NI, pkt *flit.Packet) {
	if pkt.ReplyFlits == 0 {
		return // writeback: absorbed
	}
	m.Requests++
	m.queue = append(m.queue, deferredSend{
		due: now + DRAMLatency,
		dst: pkt.Src,
		opt: network.SendOptions{
			Class: pkt.Class,
			ReqID: pkt.ID,
		},
	})
}

// flushDue sends every deferred reply whose time has come and returns the
// remaining queue. Replies are kept in arrival order, so the in-place
// filter preserves determinism.
func flushDue(q []deferredSend, now sim.Cycle, ni *network.NI) []deferredSend {
	out := q[:0]
	for _, d := range q {
		if d.due > now {
			out = append(out, d)
			continue
		}
		p := ni.Send(now, d.dst, d.opt)
		p.SlackHint = d.hint
	}
	return out
}
