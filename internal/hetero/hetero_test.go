package hetero

import (
	"strings"
	"testing"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/network"
	"tdmnoc/internal/topology"
	"tdmnoc/internal/workload"
)

func TestLayout36Counts(t *testing.T) {
	l := Layout36()
	if l.Mesh.Nodes() != 36 {
		t.Fatalf("layout has %d nodes", l.Mesh.Nodes())
	}
	if len(l.CPUs) != 8 {
		t.Errorf("%d CPU tiles, want 8", len(l.CPUs))
	}
	if len(l.GPUs) != 12 {
		t.Errorf("%d accelerator tiles, want 12", len(l.GPUs))
	}
	if len(l.L2s) != 12 {
		t.Errorf("%d L2 tiles, want 12", len(l.L2s))
	}
	if len(l.MCs) != 4 {
		t.Errorf("%d MC tiles, want 4", len(l.MCs))
	}
	// Every tile accounted for exactly once.
	total := len(l.CPUs) + len(l.GPUs) + len(l.L2s) + len(l.MCs)
	if total != 36 {
		t.Errorf("tiles sum to %d", total)
	}
}

func TestTileKindString(t *testing.T) {
	want := map[TileKind]string{TileCPU: "C", TileGPU: "A", TileL2: "L2", TileMC: "M"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q want %q", k, k.String(), s)
		}
	}
}

func TestLayoutScaled(t *testing.T) {
	for _, dim := range []int{8, 16} {
		l := LayoutScaled(dim, dim)
		if l.Mesh.Nodes() != dim*dim {
			t.Fatalf("%dx%d layout has %d nodes", dim, dim, l.Mesh.Nodes())
		}
		if len(l.MCs) != 4 {
			t.Errorf("%dx%d: %d MCs, want 4", dim, dim, len(l.MCs))
		}
		if len(l.CPUs) == 0 || len(l.GPUs) == 0 || len(l.L2s) == 0 {
			t.Errorf("%dx%d: empty tile class (C=%d A=%d L2=%d)", dim, dim, len(l.CPUs), len(l.GPUs), len(l.L2s))
		}
	}
}

func TestNearestMCAndBankFor(t *testing.T) {
	l := Layout36()
	mc := l.NearestMC(l.GPUs[0])
	if l.Kind(mc) != TileMC {
		t.Fatalf("NearestMC returned a %v tile", l.Kind(mc))
	}
	for i := 0; i < 40; i++ {
		if l.Kind(l.BankFor(i)) != TileL2 {
			t.Fatalf("BankFor(%d) is not an L2 tile", i)
		}
	}
}

func TestDeriveComputeCycles(t *testing.T) {
	for _, b := range workload.GPUBenchmarks {
		c := b.DeriveComputeCycles(60)
		if c < 1 {
			t.Errorf("%s: compute cycles %d", b.Name, c)
		}
		// Back-check: implied rate within 25% of Table III.
		flitsPerOp := (1-b.WriteFraction)*1 + b.WriteFraction*5
		implied := float64(b.Warps) * flitsPerOp / float64(c+60)
		if implied < b.InjectionRate*0.75 || implied > b.InjectionRate*1.35 {
			t.Errorf("%s: implied rate %.3f vs target %.3f", b.Name, implied, b.InjectionRate)
		}
	}
}

func TestMixEnumeration(t *testing.T) {
	if workload.MixCount() != 56 {
		t.Fatalf("mix count %d, want 56", workload.MixCount())
	}
	seen := map[string]bool{}
	for i := 0; i < workload.MixCount(); i++ {
		c, g := workload.Mix(i)
		key := c.Name + "/" + g.Name
		if seen[key] {
			t.Fatalf("duplicate mix %s", key)
		}
		seen[key] = true
	}
}

func TestBenchmarkLookups(t *testing.T) {
	if _, ok := workload.GPUBenchmarkByName("STO"); !ok {
		t.Error("STO not found")
	}
	if _, ok := workload.GPUBenchmarkByName("NOPE"); ok {
		t.Error("bogus GPU benchmark found")
	}
	if _, ok := workload.CPUBenchmarkByName("SWIM"); !ok {
		t.Error("SWIM not found")
	}
	if _, ok := workload.CPUBenchmarkByName("NOPE"); ok {
		t.Error("bogus CPU benchmark found")
	}
}

func quickSystem(t *testing.T, cfg network.Config) *System {
	t.Helper()
	cpu, _ := workload.CPUBenchmarkByName("EQUAKE")
	gpu, _ := workload.GPUBenchmarkByName("BLACKSCHOLES")
	return NewSystem(cfg, Layout36(), cpu, gpu)
}

func TestSystemRunsPacketSwitched(t *testing.T) {
	s := quickSystem(t, network.DefaultConfig(6, 6))
	defer s.Close()
	s.Run(2000)
	s.EnableStats()
	s.Run(6000)
	r := s.Result(6000)
	if r.CPUInstructions == 0 {
		t.Error("CPUs retired nothing")
	}
	if r.GPUIterations == 0 {
		t.Error("GPUs completed nothing")
	}
	if r.Stats.EjectedPackets == 0 {
		t.Error("no network traffic")
	}
	d := s.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 || d.LatchConflicts != 0 {
		t.Errorf("diagnostics dirty: %+v", d)
	}
	if r.GPUInjectionRate <= 0 {
		t.Error("no GPU injection measured")
	}
}

func TestSystemHybridUsesCircuitsForGPUOnly(t *testing.T) {
	s := quickSystem(t, network.HybridTDMConfig(6, 6))
	defer s.Close()
	s.Run(4000)
	s.EnableStats()
	s.Run(12000)
	r := s.Result(12000)
	if r.GPUCSFraction <= 0 {
		t.Error("no GPU traffic was circuit-switched")
	}
	// CPU traffic must remain packet-switched (Section V-A2).
	if cs := r.Stats.ClassCSFraction(flit.ClassCPU); cs != 0 {
		t.Errorf("CPU traffic circuit-switched fraction %.3f, want 0", cs)
	}
	d := s.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 {
		t.Errorf("CS invariants violated: %+v", d)
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		s := quickSystem(t, network.HybridTDMConfig(6, 6))
		defer s.Close()
		s.Run(3000)
		r := s.Result(3000)
		return r.CPUInstructions, r.GPUIterations
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestMemoryLatencyThrottlesCPU(t *testing.T) {
	// A benchmark with a heavy miss rate must retire fewer instructions
	// than a compute-bound one on the same network.
	run := func(name string) int64 {
		cpu, _ := workload.CPUBenchmarkByName(name)
		gpu, _ := workload.GPUBenchmarkByName("STO")
		s := NewSystem(network.DefaultConfig(6, 6), Layout36(), cpu, gpu)
		defer s.Close()
		s.Run(1000)
		s.EnableStats()
		s.Run(5000)
		return s.Result(5000).CPUInstructions
	}
	light := run("WUPWISE") // 4 misses/KI, IPC 1.7
	heavy := run("SWIM")    // 16 misses/KI, IPC 0.9
	if heavy >= light {
		t.Errorf("memory-bound SWIM (%d) retired as much as WUPWISE (%d)", heavy, light)
	}
}

func TestGPUWarpPoolHidesLatency(t *testing.T) {
	// Iterations should scale roughly with the benchmark's injection
	// intensity: LPS (0.20) completes more memory ops than STO (0.05).
	run := func(name string) int64 {
		cpu, _ := workload.CPUBenchmarkByName("AMMP")
		gpu, _ := workload.GPUBenchmarkByName(name)
		s := NewSystem(network.DefaultConfig(6, 6), Layout36(), cpu, gpu)
		defer s.Close()
		s.Run(1000)
		s.EnableStats()
		s.Run(5000)
		return s.Result(5000).GPUIterations
	}
	if lps, sto := run("LPS"), run("STO"); lps <= sto {
		t.Errorf("LPS iterations %d not above STO %d", lps, sto)
	}
}

func TestTableIIIInjectionRatesReproduced(t *testing.T) {
	// The measured GPU injection rate should land near each benchmark's
	// Table III value (the warp-pool parameters were derived from it).
	cpu, _ := workload.CPUBenchmarkByName("ART")
	for _, gpu := range workload.GPUBenchmarks {
		s := NewSystem(network.DefaultConfig(6, 6), Layout36(), cpu, gpu)
		s.Run(2000)
		s.EnableStats()
		s.Run(8000)
		r := s.Result(8000)
		s.Close()
		if r.GPUInjectionRate < gpu.InjectionRate*0.5 || r.GPUInjectionRate > gpu.InjectionRate*1.6 {
			t.Errorf("%s: measured injection %.3f, Table III says %.2f",
				gpu.Name, r.GPUInjectionRate, gpu.InjectionRate)
		}
	}
}

func TestL2MissPathReachesMC(t *testing.T) {
	s := quickSystem(t, network.DefaultConfig(6, 6))
	defer s.Close()
	s.Run(8000)
	var mcReqs int64
	for _, m := range s.mcs {
		mcReqs += m.Requests
	}
	if mcReqs == 0 {
		t.Error("no L2 misses reached the memory controllers")
	}
	var l2Reqs int64
	for _, b := range s.banks {
		l2Reqs += b.Requests
	}
	if l2Reqs == 0 {
		t.Error("no requests reached the L2 banks")
	}
	if mcReqs >= l2Reqs {
		t.Errorf("MC requests (%d) exceed L2 requests (%d) — hit rate broken", mcReqs, l2Reqs)
	}
}

func TestLayoutKindAccess(t *testing.T) {
	l := Layout36()
	if l.Kind(topology.NodeID(0)) != TileCPU {
		t.Error("tile 0 should be a CPU")
	}
	if l.Kind(l.Mesh.ID(topology.Coord{X: 0, Y: 5})) != TileGPU {
		t.Error("bottom-left should be an accelerator")
	}
}

func TestLayoutString(t *testing.T) {
	s := Layout36().String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d lines, want 6", len(lines))
	}
	if !strings.HasPrefix(lines[0], "C") {
		t.Errorf("first row should start with a CPU tile: %q", lines[0])
	}
	if !strings.Contains(lines[2], "M") || !strings.Contains(lines[1], "L2") {
		t.Errorf("layout rows wrong:\n%s", s)
	}
	if !strings.HasPrefix(lines[5], "A") {
		t.Errorf("bottom row should be accelerators: %q", lines[5])
	}
}
