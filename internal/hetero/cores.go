package hetero

import (
	"tdmnoc/internal/flit"
	"tdmnoc/internal/network"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
	"tdmnoc/internal/workload"
)

// CPUCore is the abstract four-way out-of-order core of Table II: it
// retires instructions at the benchmark's IPC while fewer than MLP misses
// are outstanding, and stalls otherwise — so network latency throttles it
// exactly as far as its memory-level parallelism allows. All CPU traffic
// is packet-switched (Section V-A2).
type CPUCore struct {
	layout *Layout
	bench  workload.CPUBenchmark

	// Retired counts committed instructions — the performance metric.
	Retired int64

	outstanding int
	burstLeft   int
	instrAccum  float64
	missAccum   float64
	bankRR      int
}

// NewCPUCore builds a core running bench.
func NewCPUCore(layout *Layout, bench workload.CPUBenchmark) *CPUCore {
	return &CPUCore{layout: layout, bench: bench}
}

// Tick implements network.Endpoint.
func (c *CPUCore) Tick(now sim.Cycle, ni *network.NI) {
	if c.outstanding >= c.bench.MLP {
		return // stalled on memory
	}
	c.instrAccum += c.bench.IPC
	retire := int64(c.instrAccum)
	c.instrAccum -= float64(retire)
	c.Retired += retire
	// Misses arrive in bursts of BurstSize (streaming access patterns),
	// which is what lets a burst exhaust the MLP window and stall the
	// core — coupling its performance to memory latency.
	c.missAccum += float64(retire) * c.bench.MissesPerKInstr / 1000 / float64(max(1, c.bench.BurstSize))
	for c.missAccum >= 1 {
		c.missAccum--
		c.burstLeft += c.bench.BurstSize
	}
	for c.burstLeft > 0 && c.outstanding < c.bench.MLP {
		c.burstLeft--
		c.outstanding++
		var dst topology.NodeID
		if ni.RNG().Bernoulli(c.bench.SharingFraction) {
			// Coherence: the line lives in another core's cache.
			peers := c.layout.CPUs
			dst = peers[ni.RNG().Intn(len(peers))]
			if dst == ni.ID() {
				dst = c.layout.BankFor(c.bankRR)
			}
		} else {
			dst = c.layout.BankFor(ni.RNG().Intn(len(c.layout.L2s)))
		}
		c.bankRR++
		ni.Send(now, dst, network.SendOptions{
			Class:      flit.ClassCPU,
			AllowCS:    false, // CPU traffic is packet-switched (Section V-A2)
			ReplyFlits: ni.PSDataFlits(),
			SizeFlits:  1, // read request
		})
	}
}

// OnDeliver implements network.Endpoint: replies unblock the core; peer
// requests are answered like a cache-to-cache transfer.
func (c *CPUCore) OnDeliver(now sim.Cycle, ni *network.NI, pkt *flit.Packet) {
	if pkt.ReplyFlits > 0 {
		// Another core requests a line we own: reply directly.
		ni.Send(now, pkt.Src, network.SendOptions{
			Class: flit.ClassCPU,
			ReqID: pkt.ID,
		})
		return
	}
	if c.outstanding > 0 {
		c.outstanding--
	}
}

type warp struct {
	// outstanding counts pending loads; a warp issues while it has fewer
	// than warpMLP and blocks otherwise — the intra-warp memory-level
	// parallelism (pipelined loads) that lets the pool hide latency.
	outstanding int
	readyAt     sim.Cycle
}

// warpMLP is the pipelined loads one warp keeps in flight.
const warpMLP = 2

// GPUCore is the abstract 32-wide SIMD accelerator of Table II: a pool of
// warps that alternate compute and memory phases. The pool hides memory
// latency while ready warps remain; the number of available warps is the
// slack indicator the switching decision uses (Section V-A2).
type GPUCore struct {
	layout *Layout
	bench  workload.GPUBenchmark

	// Iterations counts completed memory operations — the throughput
	// metric GPU speedup is computed from.
	Iterations int64

	// ReadLatencySum / ReadCount measure average read round-trip time.
	ReadLatencySum int64
	ReadCount      int64

	warps   []warp
	pending map[uint64]pendingRead
	hotSet  []topology.NodeID
	compute int
}

type pendingRead struct {
	warp     int
	issuedAt sim.Cycle
}

// NewGPUCore builds an accelerator running bench on the tile at id.
func NewGPUCore(layout *Layout, bench workload.GPUBenchmark, id topology.NodeID, memLatency int) *GPUCore {
	g := &GPUCore{
		layout:  layout,
		bench:   bench,
		warps:   make([]warp, bench.Warps),
		pending: make(map[uint64]pendingRead),
		compute: bench.DeriveComputeCycles(memLatency),
	}
	// The hot destination set is per-accelerator (address interleaving
	// gives different accelerators different dominant banks).
	for i := 0; i < bench.HotDests; i++ {
		g.hotSet = append(g.hotSet, layout.BankFor(int(id)+i*7))
	}
	return g
}

// availableWarps counts warps not blocked on memory.
func (g *GPUCore) availableWarps() int {
	n := 0
	for i := range g.warps {
		if g.warps[i].outstanding < warpMLP {
			n++
		}
	}
	return n
}

// Tick implements network.Endpoint: one memory operation may issue per
// cycle (the coalesced SIMT access of the 32-wide pipeline).
func (g *GPUCore) Tick(now sim.Cycle, ni *network.NI) {
	for i := range g.warps {
		w := &g.warps[i]
		if w.outstanding >= warpMLP || w.readyAt > now {
			continue
		}
		// Issue this warp's memory operation.
		var dst topology.NodeID
		if ni.RNG().Bernoulli(g.bench.HotDestFraction) {
			dst = g.hotSet[ni.RNG().Intn(len(g.hotSet))]
		} else {
			dst = g.layout.BankFor(ni.RNG().Intn(len(g.layout.L2s)))
		}
		slack := g.availableWarps() * g.bench.SlackPerWarp
		if ni.RNG().Bernoulli(g.bench.WriteFraction) {
			// Store: fire-and-forget data packet; the warp keeps computing.
			ni.Send(now, dst, network.SendOptions{
				Class:   flit.ClassGPU,
				AllowCS: true,
				Slack:   slack,
			})
			w.readyAt = now + sim.Cycle(g.computeTime(ni))
			g.Iterations++
		} else {
			// Load: 1-flit request, 5-flit reply; the warp blocks.
			pkt := ni.Send(now, dst, network.SendOptions{
				Class:      flit.ClassGPU,
				AllowCS:    true,
				Slack:      slack,
				ReplyFlits: ni.PSDataFlits(),
				SizeFlits:  1, // read request
			})
			pkt.SlackHint = slack
			g.pending[pkt.ID] = pendingRead{warp: i, issuedAt: now}
			w.outstanding++
			w.readyAt = now + sim.Cycle(g.computeTime(ni))
		}
		return // at most one issue per cycle
	}
}

func (g *GPUCore) computeTime(ni *network.NI) int {
	// +-50 % jitter keeps warps from phase-locking.
	half := g.compute / 2
	if half < 1 {
		return g.compute
	}
	return g.compute - half + ni.RNG().Intn(2*half)
}

// OnDeliver implements network.Endpoint: a reply wakes its warp.
func (g *GPUCore) OnDeliver(now sim.Cycle, ni *network.NI, pkt *flit.Packet) {
	pr, ok := g.pending[pkt.ReqID]
	if !ok {
		return
	}
	delete(g.pending, pkt.ReqID)
	g.ReadLatencySum += int64(now - pr.issuedAt)
	g.ReadCount++
	w := &g.warps[pr.warp]
	if w.outstanding > 0 {
		w.outstanding--
	}
	g.Iterations++
}
