// Package hetero models the heterogeneous multicore system of Section V:
// a 36-tile chip (Fig. 7) with superscalar CPU cores, data-parallel
// accelerators, shared L2 banks and memory controllers, connected by the
// simulated NoC. It substitutes for the paper's Simics/GEMS + GPGPU-Sim
// stack with latency-coupled abstract core models: CPUs retire
// instructions until their memory-level parallelism is exhausted, GPU warp
// pools hide memory latency until they run out of ready warps, and both
// therefore convert network latency into end performance the way the
// originals do.
package hetero

import (
	"fmt"

	"tdmnoc/internal/topology"
)

// TileKind labels what occupies a tile (Fig. 7's C / A / L2 / M).
type TileKind uint8

const (
	// TileCPU holds a four-way out-of-order core and its L1 caches.
	TileCPU TileKind = iota
	// TileGPU holds a 32-wide SIMD accelerator.
	TileGPU
	// TileL2 holds one bank of the shared, distributed L2.
	TileL2
	// TileMC holds a memory controller to off-chip DRAM.
	TileMC
)

// String returns the Fig. 7 tile label.
func (k TileKind) String() string {
	switch k {
	case TileCPU:
		return "C"
	case TileGPU:
		return "A"
	case TileL2:
		return "L2"
	case TileMC:
		return "M"
	}
	return fmt.Sprintf("TileKind(%d)", uint8(k))
}

// Layout assigns a kind to every tile.
type Layout struct {
	Mesh  topology.Mesh
	Kinds []TileKind
	CPUs  []topology.NodeID
	GPUs  []topology.NodeID
	L2s   []topology.NodeID
	MCs   []topology.NodeID
}

// Layout36 is the evaluated 6x6 system of Fig. 7: 8 CPU tiles across the
// top, 12 accelerators across the bottom, 12 L2 banks in the middle and 4
// memory controllers on the middle rows' edges — preserving the
// many-to-few accelerator-to-cache/memory pattern the paper relies on.
//
//	C  C  C  C  C  C
//	C  L2 L2 L2 L2 C
//	M  L2 L2 L2 L2 M
//	M  L2 L2 L2 L2 M
//	A  A  A  A  A  A
//	A  A  A  A  A  A
func Layout36() Layout {
	rows := [][]TileKind{
		{TileCPU, TileCPU, TileCPU, TileCPU, TileCPU, TileCPU},
		{TileCPU, TileL2, TileL2, TileL2, TileL2, TileCPU},
		{TileMC, TileL2, TileL2, TileL2, TileL2, TileMC},
		{TileMC, TileL2, TileL2, TileL2, TileL2, TileMC},
		{TileGPU, TileGPU, TileGPU, TileGPU, TileGPU, TileGPU},
		{TileGPU, TileGPU, TileGPU, TileGPU, TileGPU, TileGPU},
	}
	return fromRows(rows)
}

// LayoutScaled builds a proportionally similar layout for an arbitrary
// mesh (used by the scalability study): the top quarter of rows are CPU
// tiles, the bottom third accelerators, the middle L2 banks, with four MC
// tiles pinned to the middle rows' edges.
func LayoutScaled(width, height int) Layout {
	rows := make([][]TileKind, height)
	cpuRows := max(1, height/4)
	gpuRows := max(1, height/3)
	for y := 0; y < height; y++ {
		row := make([]TileKind, width)
		for x := 0; x < width; x++ {
			switch {
			case y < cpuRows:
				row[x] = TileCPU
			case y >= height-gpuRows:
				row[x] = TileGPU
			default:
				row[x] = TileL2
			}
		}
		rows[y] = row
	}
	// Four memory controllers on the middle rows' edges.
	midLo := cpuRows + (height-cpuRows-gpuRows)/3
	midHi := height - gpuRows - 1 - (height-cpuRows-gpuRows)/3
	if midHi <= midLo {
		midHi = midLo + 1
	}
	if midHi >= height {
		midHi = height - 1
	}
	rows[midLo][0] = TileMC
	rows[midLo][width-1] = TileMC
	rows[midHi][0] = TileMC
	rows[midHi][width-1] = TileMC
	return fromRows(rows)
}

func fromRows(rows [][]TileKind) Layout {
	h := len(rows)
	w := len(rows[0])
	l := Layout{Mesh: topology.NewMesh(w, h), Kinds: make([]TileKind, w*h)}
	for y, row := range rows {
		if len(row) != w {
			panic("hetero: ragged layout")
		}
		for x, k := range row {
			id := l.Mesh.ID(topology.Coord{X: x, Y: y})
			l.Kinds[id] = k
			switch k {
			case TileCPU:
				l.CPUs = append(l.CPUs, id)
			case TileGPU:
				l.GPUs = append(l.GPUs, id)
			case TileL2:
				l.L2s = append(l.L2s, id)
			case TileMC:
				l.MCs = append(l.MCs, id)
			}
		}
	}
	return l
}

// String renders the layout as the Fig. 7 tile grid.
func (l Layout) String() string {
	out := ""
	for y := 0; y < l.Mesh.Height; y++ {
		for x := 0; x < l.Mesh.Width; x++ {
			out += fmt.Sprintf("%-3s", l.Kinds[l.Mesh.ID(topology.Coord{X: x, Y: y})])
		}
		out += "\n"
	}
	return out
}

// Kind returns the tile kind at id.
func (l Layout) Kind(id topology.NodeID) TileKind { return l.Kinds[id] }

// NearestMC returns the memory controller closest to id (ties broken by
// lowest node id, deterministically).
func (l Layout) NearestMC(id topology.NodeID) topology.NodeID {
	best := l.MCs[0]
	bd := l.Mesh.HopDistance(id, best)
	for _, mc := range l.MCs[1:] {
		if d := l.Mesh.HopDistance(id, mc); d < bd {
			best, bd = mc, d
		}
	}
	return best
}

// BankFor maps an address-interleave index to an L2 bank.
func (l Layout) BankFor(idx int) topology.NodeID {
	return l.L2s[idx%len(l.L2s)]
}
