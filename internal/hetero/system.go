package hetero

import (
	"tdmnoc/internal/flit"
	"tdmnoc/internal/network"
	"tdmnoc/internal/power"
	"tdmnoc/internal/stats"
	"tdmnoc/internal/topology"
	"tdmnoc/internal/workload"
)

// System is one heterogeneous multicore simulation: a workload mix (one
// CPU benchmark on every CPU tile, one GPU kernel on every accelerator
// tile) running over a configured NoC.
type System struct {
	Net    *network.Network
	Layout Layout

	CPU workload.CPUBenchmark
	GPU workload.GPUBenchmark

	cpus  []*CPUCore
	gpus  []*GPUCore
	banks []*L2Bank
	mcs   []*MemController

	// memLatencyEstimate seeds the warp-pool compute-time derivation.
	memLatencyEstimate int
}

// NewSystem wires a workload mix onto a network configuration. The
// layout's mesh dimensions override whatever the network config says.
func NewSystem(cfg network.Config, layout Layout, cpu workload.CPUBenchmark, gpu workload.GPUBenchmark) *System {
	cfg.Width = layout.Mesh.Width
	cfg.Height = layout.Mesh.Height
	s := &System{Layout: layout, CPU: cpu, GPU: gpu, memLatencyEstimate: 60}
	s.Net = network.New(cfg, func(id topology.NodeID) network.Endpoint {
		switch layout.Kind(id) {
		case TileCPU:
			c := NewCPUCore(&s.Layout, cpu)
			s.cpus = append(s.cpus, c)
			return c
		case TileGPU:
			g := NewGPUCore(&s.Layout, gpu, id, s.memLatencyEstimate)
			s.gpus = append(s.gpus, g)
			return g
		case TileL2:
			b := NewL2Bank(&s.Layout, id)
			s.banks = append(s.banks, b)
			return b
		default:
			m := NewMemController()
			s.mcs = append(s.mcs, m)
			return m
		}
	})
	return s
}

// Close releases the network's resources.
func (s *System) Close() { s.Net.Close() }

// Run advances the system by the given number of cycles.
func (s *System) Run(cycles int) { s.Net.Run(cycles) }

// EnableStats starts measurement (after warm-up) and zeroes the
// performance counters so speedups cover the measured region only.
func (s *System) EnableStats() {
	s.Net.EnableStats()
	for _, c := range s.cpus {
		c.Retired = 0
	}
	for _, g := range s.gpus {
		g.Iterations = 0
	}
}

// Result is the measurement of one run.
type Result struct {
	// CPUInstructions is the total retired across CPU tiles.
	CPUInstructions int64
	// GPUIterations is the total completed warp memory operations.
	GPUIterations int64
	// Stats is the merged network statistics.
	Stats stats.Collector
	// Energy is the network energy breakdown.
	Energy power.Breakdown
	// GPUInjectionRate is measured offered GPU traffic in
	// flits/node/cycle (Table III, left column).
	GPUInjectionRate float64
	// GPUCSFraction is the share of GPU flits that travelled
	// circuit-switched (Table III, right column).
	GPUCSFraction float64
	// Cycles is the measured-region length.
	Cycles int64
}

// Result collects the current measurement over the given measured-region
// length.
func (s *System) Result(cycles int64) Result {
	r := Result{Cycles: cycles, Stats: s.Net.Stats(), Energy: s.Net.Energy()}
	for _, c := range s.cpus {
		r.CPUInstructions += c.Retired
	}
	for _, g := range s.gpus {
		r.GPUIterations += g.Iterations
	}
	// GPU injection: flits injected by accelerator tiles.
	var gpuFlits int64
	for _, id := range s.Layout.GPUs {
		ni := s.Net.NI(id)
		gpuFlits += ni.Stats.InjectedFlits
	}
	if cycles > 0 && len(s.Layout.GPUs) > 0 {
		r.GPUInjectionRate = float64(gpuFlits) / (float64(cycles) * float64(len(s.Layout.GPUs)))
	}
	r.GPUCSFraction = r.Stats.ClassCSFraction(flit.ClassGPU)
	return r
}

// Diagnose exposes the network invariants.
func (s *System) Diagnose() network.Diagnostics { return s.Net.Diagnose() }
