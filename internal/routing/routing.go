// Package routing implements the two routing functions of Table I:
// dimension-order X-Y routing for ordinary packets (deadlock-free on a
// mesh) and minimal adaptive routing for circuit-switching configuration
// packets, which lets path setup steer around congested regions
// (Section II-B "Path selection").
package routing

import "tdmnoc/internal/topology"

// XY returns the output port dimension-order routing takes from cur toward
// dst: first correct X, then Y; Local when cur == dst.
func XY(m topology.Mesh, cur, dst topology.NodeID) topology.Port {
	cc, dc := m.Coord(cur), m.Coord(dst)
	switch {
	case dc.X > cc.X:
		return topology.East
	case dc.X < cc.X:
		return topology.West
	case dc.Y > cc.Y:
		return topology.South
	case dc.Y < cc.Y:
		return topology.North
	default:
		return topology.Local
	}
}

// MinimalCandidates returns every productive output port from cur toward
// dst (at most two on a mesh: one per dimension still needing correction).
// An empty result means cur == dst.
func MinimalCandidates(m topology.Mesh, cur, dst topology.NodeID) []topology.Port {
	var buf [2]topology.Port
	return buf[:minimalInto(m, cur, dst, &buf):2]
}

// minimalInto writes the productive ports into buf and returns how many
// there are. The allocation-free core of MinimalCandidates, used by the
// adaptive routing functions that run on the per-cycle hot path.
func minimalInto(m topology.Mesh, cur, dst topology.NodeID, buf *[2]topology.Port) int {
	cc, dc := m.Coord(cur), m.Coord(dst)
	n := 0
	switch {
	case dc.X > cc.X:
		buf[n] = topology.East
		n++
	case dc.X < cc.X:
		buf[n] = topology.West
		n++
	}
	switch {
	case dc.Y > cc.Y:
		buf[n] = topology.South
		n++
	case dc.Y < cc.Y:
		buf[n] = topology.North
		n++
	}
	return n
}

// CongestionFunc scores an output port; lower is less congested. Routers
// supply a function backed by downstream credit counts.
type CongestionFunc func(p topology.Port) int

// MinimalAdaptive picks the least congested productive port, breaking ties
// in favour of the X dimension (which keeps the decision deterministic and
// degenerates to X-Y under uniform congestion). Deadlock freedom for the
// 1-flit configuration packets that use this function comes from their
// guaranteed ejection: config packets are consumed at every router they
// sink at, so they cannot form buffer-wait cycles that persist.
func MinimalAdaptive(m topology.Mesh, cur, dst topology.NodeID, congestion CongestionFunc) topology.Port {
	var buf [2]topology.Port
	n := minimalInto(m, cur, dst, &buf)
	switch n {
	case 0:
		return topology.Local
	case 1:
		return buf[0]
	}
	best := buf[0]
	bestScore := congestion(best)
	for _, c := range buf[1:n] {
		if s := congestion(c); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// WestFirst is the minimal adaptive routing function used for
// configuration messages. It follows the west-first turn model (Glass &
// Ni): a packet that must travel west does so first, with no adaptivity;
// otherwise it chooses the least congested productive port. Because the
// prohibited turns (into West) are never taken — and X-Y routing, used by
// data packets sharing the same VCs, takes no such turns either — the
// combined channel dependency graph is acyclic and the network is
// deadlock-free without dedicated escape VCs.
func WestFirst(m topology.Mesh, cur, dst topology.NodeID, congestion CongestionFunc) topology.Port {
	var buf [2]topology.Port
	n := minimalInto(m, cur, dst, &buf)
	for _, c := range buf[:n] {
		if c == topology.West {
			return topology.West
		}
	}
	switch n {
	case 0:
		return topology.Local
	case 1:
		return buf[0]
	}
	best := buf[0]
	bestScore := congestion(best)
	for _, c := range buf[1:n] {
		if s := congestion(c); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// PathXY returns the full X-Y path from src to dst as the sequence of nodes
// visited, including both endpoints. Setup messages follow adaptive routes
// hop by hop, but tests and the vicinity-sharing overlap check use the
// deterministic X-Y path.
func PathXY(m topology.Mesh, src, dst topology.NodeID) []topology.NodeID {
	path := []topology.NodeID{src}
	cur := src
	for cur != dst {
		p := XY(m, cur, dst)
		next, ok := m.Neighbor(cur, p)
		if !ok {
			// Unreachable on a well-formed mesh; guard against misuse.
			panic("routing: XY stepped off the mesh")
		}
		path = append(path, next)
		cur = next
	}
	return path
}
