package routing

import (
	"testing"
	"testing/quick"

	"tdmnoc/internal/topology"
)

func TestXYBasicDirections(t *testing.T) {
	m := topology.NewMesh(6, 6)
	center := m.ID(topology.Coord{X: 3, Y: 3})
	cases := []struct {
		dst  topology.Coord
		want topology.Port
	}{
		{topology.Coord{X: 5, Y: 3}, topology.East},
		{topology.Coord{X: 0, Y: 3}, topology.West},
		{topology.Coord{X: 3, Y: 5}, topology.South},
		{topology.Coord{X: 3, Y: 0}, topology.North},
		{topology.Coord{X: 3, Y: 3}, topology.Local},
		// X corrected before Y.
		{topology.Coord{X: 5, Y: 5}, topology.East},
		{topology.Coord{X: 0, Y: 0}, topology.West},
	}
	for _, c := range cases {
		if got := XY(m, center, m.ID(c.dst)); got != c.want {
			t.Errorf("XY to %v = %v, want %v", c.dst, got, c.want)
		}
	}
}

func TestXYPathReachesAndIsMinimal(t *testing.T) {
	m := topology.NewMesh(8, 8)
	f := func(a8, b8 uint8) bool {
		src := topology.NodeID(int(a8) % m.Nodes())
		dst := topology.NodeID(int(b8) % m.Nodes())
		path := PathXY(m, src, dst)
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		// Minimal: path length equals hop distance + 1.
		if len(path) != m.HopDistance(src, dst)+1 {
			return false
		}
		// Every step is a mesh link.
		for i := 1; i < len(path); i++ {
			if m.HopDistance(path[i-1], path[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinimalCandidates(t *testing.T) {
	m := topology.NewMesh(6, 6)
	src := m.ID(topology.Coord{X: 2, Y: 2})

	cands := MinimalCandidates(m, src, m.ID(topology.Coord{X: 4, Y: 4}))
	if len(cands) != 2 {
		t.Fatalf("diagonal dst: %d candidates, want 2", len(cands))
	}
	hasEast, hasSouth := false, false
	for _, c := range cands {
		if c == topology.East {
			hasEast = true
		}
		if c == topology.South {
			hasSouth = true
		}
	}
	if !hasEast || !hasSouth {
		t.Fatalf("diagonal candidates = %v", cands)
	}

	if cands := MinimalCandidates(m, src, m.ID(topology.Coord{X: 2, Y: 0})); len(cands) != 1 || cands[0] != topology.North {
		t.Fatalf("straight-line candidates = %v", cands)
	}
	if cands := MinimalCandidates(m, src, src); len(cands) != 0 {
		t.Fatalf("self candidates = %v", cands)
	}
}

func TestMinimalAdaptivePrefersUncongested(t *testing.T) {
	m := topology.NewMesh(6, 6)
	src := m.ID(topology.Coord{X: 1, Y: 1})
	dst := m.ID(topology.Coord{X: 4, Y: 4})

	eastBusy := func(p topology.Port) int {
		if p == topology.East {
			return 10
		}
		return 0
	}
	if got := MinimalAdaptive(m, src, dst, eastBusy); got != topology.South {
		t.Errorf("with east congested, chose %v, want South", got)
	}
	southBusy := func(p topology.Port) int {
		if p == topology.South {
			return 10
		}
		return 0
	}
	if got := MinimalAdaptive(m, src, dst, southBusy); got != topology.East {
		t.Errorf("with south congested, chose %v, want East", got)
	}
	// Ties break toward the X dimension (deterministic).
	uniform := func(topology.Port) int { return 3 }
	if got := MinimalAdaptive(m, src, dst, uniform); got != topology.East {
		t.Errorf("tie-break chose %v, want East", got)
	}
}

func TestMinimalAdaptiveSelfAndStraight(t *testing.T) {
	m := topology.NewMesh(4, 4)
	uniform := func(topology.Port) int { return 0 }
	if got := MinimalAdaptive(m, 5, 5, uniform); got != topology.Local {
		t.Errorf("self route = %v, want Local", got)
	}
	if got := MinimalAdaptive(m, 5, 7, uniform); got != topology.East {
		t.Errorf("straight route = %v, want East", got)
	}
}

func TestMinimalAdaptiveStaysMinimal(t *testing.T) {
	// Property: whatever the congestion function, the chosen port is
	// productive (reduces hop distance).
	m := topology.NewMesh(8, 8)
	f := func(a8, b8 uint8, bias uint8) bool {
		src := topology.NodeID(int(a8) % m.Nodes())
		dst := topology.NodeID(int(b8) % m.Nodes())
		cong := func(p topology.Port) int { return int(bias) ^ int(p) }
		got := MinimalAdaptive(m, src, dst, cong)
		if src == dst {
			return got == topology.Local
		}
		next, ok := m.Neighbor(src, got)
		if !ok {
			return false
		}
		return m.HopDistance(next, dst) == m.HopDistance(src, dst)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWestFirstGoesWestFirst(t *testing.T) {
	m := topology.NewMesh(6, 6)
	src := m.ID(topology.Coord{X: 4, Y: 2})
	uniform := func(topology.Port) int { return 0 }
	// Destination to the north-west: must route West regardless of congestion.
	dst := m.ID(topology.Coord{X: 1, Y: 0})
	if got := WestFirst(m, src, dst, uniform); got != topology.West {
		t.Errorf("west-first chose %v, want West", got)
	}
	westBusy := func(p topology.Port) int {
		if p == topology.West {
			return 100
		}
		return 0
	}
	if got := WestFirst(m, src, dst, westBusy); got != topology.West {
		t.Errorf("west-first must not avoid West even when congested; chose %v", got)
	}
}

func TestWestFirstAdaptsEastSide(t *testing.T) {
	m := topology.NewMesh(6, 6)
	src := m.ID(topology.Coord{X: 1, Y: 1})
	dst := m.ID(topology.Coord{X: 4, Y: 4})
	eastBusy := func(p topology.Port) int {
		if p == topology.East {
			return 10
		}
		return 0
	}
	if got := WestFirst(m, src, dst, eastBusy); got != topology.South {
		t.Errorf("chose %v, want South when East congested", got)
	}
	southBusy := func(p topology.Port) int {
		if p == topology.South {
			return 10
		}
		return 0
	}
	if got := WestFirst(m, src, dst, southBusy); got != topology.East {
		t.Errorf("chose %v, want East when South congested", got)
	}
}

func TestWestFirstNeverTurnsIntoWest(t *testing.T) {
	// Property: west-first routes only go West while the destination is
	// west; once travelling north/south/east they never pick West. We
	// verify by walking complete routes: any West move must happen before
	// any non-West move.
	m := topology.NewMesh(8, 8)
	f := func(a8, b8, bias uint8) bool {
		src := topology.NodeID(int(a8) % m.Nodes())
		dst := topology.NodeID(int(b8) % m.Nodes())
		cong := func(p topology.Port) int { return int(bias) ^ int(p) }
		cur := src
		sawNonWest := false
		for steps := 0; cur != dst && steps < 64; steps++ {
			p := WestFirst(m, cur, dst, cong)
			if p == topology.West {
				if sawNonWest {
					return false // prohibited turn into West
				}
			} else if p != topology.Local {
				sawNonWest = true
			}
			next, ok := m.Neighbor(cur, p)
			if !ok {
				return false
			}
			cur = next
		}
		return cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWestFirstSelfIsLocal(t *testing.T) {
	m := topology.NewMesh(4, 4)
	if got := WestFirst(m, 5, 5, func(topology.Port) int { return 0 }); got != topology.Local {
		t.Errorf("self route %v", got)
	}
}
