package policy

import (
	"bytes"
	"strings"
	"testing"

	"tdmnoc/internal/obs"
)

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		spec string
		name string
	}{
		{"static", "static"},
		{"threshold", "threshold"},
		{"threshold:128", "threshold"},
		{"greedy", "greedy"},
		{"greedy:8", "greedy"},
		{"sdm-gate", "sdm-gate"},
		{"sdm-gate:6", "sdm-gate"},
	} {
		p, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		if p.Name() != tc.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.spec, p.Name(), tc.name)
		}
	}
	for _, bad := range []string{"", "nope", "greedy:", "greedy:0", "greedy:-3", "greedy:x", "static:4"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// Parameters reach the policy.
	if g, _ := Parse("greedy:8"); g.(Greedy).TopK != 8 {
		t.Errorf("greedy:8 TopK = %d", g.(Greedy).TopK)
	}
	if th, _ := Parse("threshold:128"); th.(Threshold).MinPackets != 128 {
		t.Errorf("threshold:128 MinPackets = %d", th.(Threshold).MinPackets)
	}
}

func TestSelectTopKTotalOrder(t *testing.T) {
	a := []ScoredFlow{{Src: 3, Dst: 1, Score: 10}, {Src: 1, Dst: 2, Score: 10}, {Src: 1, Dst: 0, Score: 10}, {Src: 0, Dst: 5, Score: 99}}
	b := []ScoredFlow{{Src: 1, Dst: 0, Score: 10}, {Src: 0, Dst: 5, Score: 99}, {Src: 1, Dst: 2, Score: 10}, {Src: 3, Dst: 1, Score: 10}}
	ta, tb := SelectTopK(a, 3), SelectTopK(b, 3)
	if len(ta) != 3 || len(tb) != 3 {
		t.Fatalf("lens %d, %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("selection depends on input order: %v vs %v", ta, tb)
		}
	}
	if ta[0].Score != 99 {
		t.Errorf("highest score not first: %v", ta)
	}
	// Non-positive scores are dropped even within k.
	got := SelectTopK([]ScoredFlow{{Src: 0, Dst: 1, Score: 5}, {Src: 1, Dst: 2, Score: 0}, {Src: 2, Dst: 3, Score: -1}}, 3)
	if len(got) != 1 {
		t.Errorf("kept non-positive scores: %v", got)
	}
}

func TestHopDistance(t *testing.T) {
	// 4-wide mesh: node 0 = (0,0), node 15 = (3,3).
	if d := HopDistance(0, 15, 4); d != 6 {
		t.Errorf("HopDistance(0,15) = %d, want 6", d)
	}
	if d := HopDistance(5, 5, 4); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if d := HopDistance(0, 3, 4); d != 3 {
		t.Errorf("row distance = %d, want 3", d)
	}
}

func TestEstimateSlotDemand(t *testing.T) {
	if d := EstimateSlotDemand(nil, 4, 4, 4); d != 0 {
		t.Errorf("empty demand = %d", d)
	}
	// One flow crossing one row: every traversed node sees 1 circuit,
	// demand = 1 * (block+1).
	if d := EstimateSlotDemand([]FlowPin{{Src: 0, Dst: 3}}, 4, 4, 4); d != 5 {
		t.Errorf("single-flow demand = %d, want 5", d)
	}
	// Two flows converging on the same node double the peak.
	pins := []FlowPin{{Src: 0, Dst: 3}, {Src: 8, Dst: 3}}
	if d := EstimateSlotDemand(pins, 4, 4, 4); d != 10 {
		t.Errorf("converging demand = %d, want 10", d)
	}
}

func TestPinsEqualAndPinsOf(t *testing.T) {
	flows := []ScoredFlow{{Src: 2, Dst: 1, Score: 5}, {Src: 0, Dst: 3, Score: 9}}
	pins := PinsOf(flows)
	if len(pins) != 2 || pins[0] != (FlowPin{Src: 0, Dst: 3}) || pins[1] != (FlowPin{Src: 2, Dst: 1}) {
		t.Fatalf("PinsOf not sorted by (Src, Dst): %v", pins)
	}
	if !PinsEqual(pins, []FlowPin{{0, 3}, {2, 1}}) {
		t.Error("PinsEqual false negative")
	}
	if PinsEqual(pins, []FlowPin{{0, 3}}) || PinsEqual(pins, []FlowPin{{0, 3}, {2, 2}}) {
		t.Error("PinsEqual false positive")
	}
}

// syntheticProfile builds a tornado-like profile on a 4x4 mesh: every
// node sends to (node+2) mod 16 with heavy volume, plus a handful of
// sporadic light flows that the policies should leave packet-switched.
func syntheticProfile() *Profile {
	p := &Profile{
		ConfigHash: "test", Mode: "tdm", Width: 4, Height: 4,
		Cycles: 10000, Injected: 3600, Ejected: 3590,
		SlotActive: 64, SlotCapacity: 128,
	}
	for n := int32(0); n < 16; n++ {
		p.Flows = append(p.Flows, obs.FlowStat{Src: n, Dst: (n + 2) % 16, Packets: 200, Flits: 1000})
	}
	p.Flows = append(p.Flows,
		obs.FlowStat{Src: 0, Dst: 5, Packets: 3, Flits: 15},
		obs.FlowStat{Src: 7, Dst: 1, Packets: 2, Flits: 10},
		obs.FlowStat{Src: 4, Dst: 4, Packets: 50, Flits: 250}, // self flow: never pinnable
	)
	return p
}

func TestThresholdDecide(t *testing.T) {
	d := Threshold{}.Decide(syntheticProfile())
	if d.Policy != "threshold" || !d.RestrictSetups {
		t.Fatalf("decision = %+v", d)
	}
	if len(d.PinnedFlows) != 16 {
		t.Fatalf("pinned %d flows, want the 16 heavy ones: %v", len(d.PinnedFlows), d.PinnedFlows)
	}
	for _, pin := range d.PinnedFlows {
		if pin.Src == pin.Dst {
			t.Fatalf("pinned a self flow: %v", pin)
		}
	}
	if d.SlotInit <= 0 || d.SlotInit > 128 {
		t.Errorf("slot_init %d outside (0, capacity]", d.SlotInit)
	}
	// Raising the threshold above the heavy flows' packet count empties
	// the pin set.
	if d := (Threshold{MinPackets: 1000}).Decide(syntheticProfile()); len(d.PinnedFlows) != 0 {
		t.Errorf("high threshold still pinned %v", d.PinnedFlows)
	}
}

func TestGreedyDemandBudget(t *testing.T) {
	p := syntheticProfile()
	d := Greedy{}.Decide(p)
	if d.Policy != "greedy" || !d.RestrictSetups {
		t.Fatalf("decision = %+v", d)
	}
	if len(d.PinnedFlows) == 0 {
		t.Fatal("budget greedy pinned nothing")
	}
	// The admitted set must respect the quarter-capacity budget.
	budget := p.SlotCapacity / 4
	if got := EstimateSlotDemand(d.PinnedFlows, p.Width, p.Height, avgFlits(p)); got > budget {
		t.Errorf("admitted demand %d exceeds budget %d", got, budget)
	}
	// Deterministic: same profile, same decision.
	if d2 := (Greedy{}.Decide(syntheticProfile())); !PinsEqual(d.PinnedFlows, d2.PinnedFlows) || d.SlotInit != d2.SlotInit {
		t.Errorf("greedy not deterministic: %+v vs %+v", d, d2)
	}
	// Explicit TopK hard-caps regardless of budget.
	if d := (Greedy{TopK: 3}).Decide(syntheticProfile()); len(d.PinnedFlows) != 3 {
		t.Errorf("greedy:3 pinned %d flows", len(d.PinnedFlows))
	}
}

func TestSDMGateDecide(t *testing.T) {
	// syntheticProfile offers 18000+ flits over 10000 cycles * 16 nodes
	// ≈ 0.11 flits/node/cycle — a light load that gates down to 2 planes.
	d := SDMGate{}.Decide(syntheticProfile())
	if !d.UseSDM || d.Policy != "sdm-gate" {
		t.Fatalf("decision = %+v", d)
	}
	if d.GatedPlanes != 2 {
		t.Errorf("light load gated %d of 4 planes, want 2", d.GatedPlanes)
	}
	// A saturated profile gates nothing.
	hot := syntheticProfile()
	for i := range hot.Flows {
		hot.Flows[i].Flits *= 100
	}
	if d := (SDMGate{}).Decide(hot); d.GatedPlanes != 0 {
		t.Errorf("saturated load gated %d planes", d.GatedPlanes)
	}
}

func TestStaticDecideIsZero(t *testing.T) {
	d := Static{}.Decide(syntheticProfile())
	if !d.IsZero() {
		t.Errorf("static decision changes config: %+v", d)
	}
}

func TestProfileEncodeRoundTrip(t *testing.T) {
	p := syntheticProfile()
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("encode→decode→encode not byte-identical")
	}
	// Unknown fields fail loudly.
	if _, err := ReadProfile(strings.NewReader(`{"width":4,"height":4,"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadProfile(strings.NewReader(`{"mode":"tdm"}`)); err == nil {
		t.Error("profile without mesh size accepted")
	}
}

func TestSlotInitFor(t *testing.T) {
	for _, tc := range []struct{ demand, cap, want int }{
		{0, 128, 0}, {1, 128, 8}, {8, 128, 8}, {9, 128, 16}, {90, 128, 128}, {500, 128, 128},
	} {
		if got := slotInitFor(tc.demand, tc.cap); got != tc.want {
			t.Errorf("slotInitFor(%d, %d) = %d, want %d", tc.demand, tc.cap, got, tc.want)
		}
	}
}
