// Package policy turns the observability layer into a control input:
// it derives a deterministic traffic Profile from an obs.Recorder and
// maps it, through pluggable policies, to a concrete Decision — which
// flows deserve TDM circuits, how the slot table should be sized, how
// many SDM planes to gate. The package is pure: it imports only obs
// and stdlib, so both the public hsnoc API (profile extraction,
// decision application) and internal/network (the online in-sim
// controller) can use it without an import cycle.
//
// Everything here is deterministic by construction. Profiles serialize
// to stable JSON keyed by the originating Config.Hash(), so they are
// cacheable artifacts in the campaign store; Decisions apply through
// plain config fields, so a re-run with the same Decision reproduces
// its state digest bit for bit.
package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tdmnoc/internal/obs"
	"tdmnoc/internal/topology"
)

// Profile is the offline traffic profile of one simulated run: the
// aggregate switch between circuit and packet traffic, the converged
// slot-table state, per-link heat, and the per-flow table policies
// rank. It is a pure function of the simulation (byte-identical JSON
// at any worker count — pinned by test), keyed by the configuration
// hash of the run that produced it.
type Profile struct {
	// ConfigHash is hsnoc.Config.Hash() of the profiled run. Decision
	// application refuses a profile whose hash does not match the
	// config it is applied to.
	ConfigHash string `json:"config_hash"`
	// Mode is the switching mode of the profiled run ("packet", "tdm",
	// "sdm").
	Mode   string `json:"mode"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	// Cycles is the recorder's coverage (warmup + measured).
	Cycles int64 `json:"cycles"`

	Injected     int64 `json:"injected"`
	Ejected      int64 `json:"ejected"`
	CSFlits      int64 `json:"cs_flits"`
	PSFlits      int64 `json:"ps_flits"`
	Steals       int64 `json:"steals"`
	SetupsOK     int64 `json:"setups_ok"`
	SetupsFailed int64 `json:"setups_failed"`

	// SlotActive is the active slot-table region at the end of the run
	// (the dynamic resizer's converged size), SlotCapacity its ceiling,
	// ResizeEvents how many freeze→drain→reset doublings it took to get
	// there. Zero for non-TDM runs.
	SlotActive   int `json:"slot_active"`
	SlotCapacity int `json:"slot_capacity"`
	ResizeEvents int `json:"resize_events"`

	// SetupLatency is the merged setup round-trip histogram.
	SetupLatency obs.Histogram `json:"setup_latency"`

	// LinkFlits is the link-heat map, indexed node*ports+port, exactly
	// as the recorder counts it.
	LinkPorts int     `json:"link_ports"`
	LinkFlits []int64 `json:"link_flits"`

	// Flows are the per-(src, dst) aggregates, sorted by (Src, Dst).
	Flows []obs.FlowStat `json:"flows"`
}

// Nodes returns the mesh size.
func (p *Profile) Nodes() int { return p.Width * p.Height }

// CircuitShare returns the fraction of link traversals that rode
// circuits, the profile's headline "how hybrid was this run" number.
func (p *Profile) CircuitShare() float64 {
	total := p.CSFlits + p.PSFlits
	if total == 0 {
		return 0
	}
	return float64(p.CSFlits) / float64(total)
}

// SetupSuccessRate returns the fraction of setup round trips that
// acked successfully (1 when no setups were attempted).
func (p *Profile) SetupSuccessRate() float64 {
	total := p.SetupsOK + p.SetupsFailed
	if total == 0 {
		return 1
	}
	return float64(p.SetupsOK) / float64(total)
}

// Encode returns the profile's stable JSON form: indented, fields in
// struct order, trailing newline. encoding/json is deterministic for
// struct types, so two profiles of the same run are byte-identical.
func (p *Profile) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the profile's JSON form to path.
func (p *Profile) WriteFile(path string) error {
	b, err := p.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadProfile decodes a profile from r, rejecting unknown fields so a
// schema drift between writer and reader fails loudly.
func ReadProfile(r io.Reader) (*Profile, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	p := &Profile{}
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("policy: decode profile: %w", err)
	}
	if p.Width <= 0 || p.Height <= 0 {
		return nil, fmt.Errorf("policy: profile has no mesh size")
	}
	return p, nil
}

// ReadProfileFile reads a profile from a JSON file.
func ReadProfileFile(path string) (*Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadProfile(bytes.NewReader(b))
}

// FromRecorder assembles the recorder-derived part of a Profile: the
// aggregate summary counters, link heat, and per-flow table. The
// caller fills ConfigHash, Mode, mesh size and the slot-table fields
// (which live outside the recorder). The recorder must have been built
// with TrackFlows.
func FromRecorder(rec *obs.Recorder, width, height, ports int) (*Profile, error) {
	if rec == nil {
		return nil, fmt.Errorf("policy: nil recorder")
	}
	if !rec.FlowTracking() {
		return nil, fmt.Errorf("policy: recorder was built without TrackFlows")
	}
	sum := rec.Summary()
	p := &Profile{
		Width:        width,
		Height:       height,
		Cycles:       sum.Cycles,
		Injected:     sum.Injected,
		Ejected:      sum.Ejected,
		CSFlits:      sum.CSFlits,
		PSFlits:      sum.PSFlits,
		Steals:       sum.Steals,
		SetupsOK:     sum.SetupsOK,
		SetupsFailed: sum.SetupsFailed,
		SetupLatency: sum.SetupLatency,
		LinkPorts:    ports,
		LinkFlits:    make([]int64, width*height*ports),
		Flows:        rec.FlowStats(),
	}
	for n := 0; n < width*height; n++ {
		for pt := 0; pt < ports; pt++ {
			p.LinkFlits[n*ports+pt] = rec.LinkFlits(n, topology.Port(pt))
		}
	}
	return p, nil
}
