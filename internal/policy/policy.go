package policy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tdmnoc/internal/obs"
)

// FlowPin names one (src, dst) flow that a Decision pins to circuit
// switching: the source NI sets its circuit up eagerly (first send,
// no frequency threshold) and, under RestrictSetups, no other flow is
// allowed to claim slot-table space.
type FlowPin struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Decision is a policy's output: the concrete configuration deltas to
// apply to a re-run. Everything is expressed as plain config fields so
// the re-run's digest is a pure function of (base config, Decision) —
// the reproducibility contract the offline loop pins by test. The zero
// Decision (modulo Policy name) means "run the baseline unchanged".
type Decision struct {
	// Policy names the policy that produced this decision.
	Policy string `json:"policy"`
	// PinnedFlows are circuit-pinned flows, sorted by (Src, Dst).
	PinnedFlows []FlowPin `json:"pinned_flows,omitempty"`
	// RestrictSetups forbids circuit setups for non-pinned flows, which
	// keeps the active slot-table region small (short TDM frame: higher
	// circuit bandwidth, less slot leakage) and eliminates setup/
	// teardown config traffic for flows the profile says won't keep a
	// circuit busy.
	RestrictSetups bool `json:"restrict_setups,omitempty"`
	// SlotInit, when > 0, overrides the dynamic resizer's initial
	// active slot-table region. Profiles of the pinned flow set let a
	// policy start the table at its converged size (no mid-measurement
	// freeze→drain→reset churn) or deliberately smaller than the
	// unrestricted run would reach.
	SlotInit int `json:"slot_init,omitempty"`
	// DLTEntries, when > 0, overrides the destination-lookup-table size
	// used by path sharing.
	DLTEntries int `json:"dlt_entries,omitempty"`
	// UseSDM re-runs under space-division multiplexing with GatedPlanes
	// of the link planes power-gated (utilization-driven plane gating).
	UseSDM      bool `json:"use_sdm,omitempty"`
	GatedPlanes int  `json:"gated_planes,omitempty"`
}

// IsZero reports whether the decision changes nothing (the static
// baseline).
func (d Decision) IsZero() bool {
	return len(d.PinnedFlows) == 0 && !d.RestrictSetups &&
		d.SlotInit == 0 && d.DLTEntries == 0 && !d.UseSDM && d.GatedPlanes == 0
}

// Policy maps a Profile to a Decision. Implementations must be pure
// and deterministic: same profile, same decision.
type Policy interface {
	Name() string
	Decide(p *Profile) Decision
}

// HopDistance returns the XY-routed hop count between two node ids on
// a width-column mesh.
func HopDistance(src, dst, width int) int {
	sx, sy := src%width, src/width
	dx, dy := dst%width, dst/width
	h := sx - dx
	if h < 0 {
		h = -h
	}
	v := sy - dy
	if v < 0 {
		v = -v
	}
	return h + v
}

// ScoredFlow is a flow with a policy-assigned weight, the unit of the
// deterministic top-K selection shared by the greedy policy and the
// online controller.
type ScoredFlow struct {
	Src, Dst int32
	Score    int64
}

// SelectTopK sorts flows by (Score desc, Src asc, Dst asc) — a total
// order, so ties never depend on input order — and returns the first k
// with a positive score. The input slice is sorted in place.
func SelectTopK(flows []ScoredFlow, k int) []ScoredFlow {
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Score != flows[j].Score {
			return flows[i].Score > flows[j].Score
		}
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	if k > len(flows) {
		k = len(flows)
	}
	out := flows[:0:0]
	for _, f := range flows[:k] {
		if f.Score <= 0 {
			break
		}
		out = append(out, f)
	}
	return out
}

// FlowKey packs a (src, dst) pair into the map key used by the online
// controller's per-epoch flit totals (matches obs's internal flow key).
func FlowKey(src, dst int32) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// PinsEqual reports whether two sorted pin sets are identical.
func PinsEqual(a, b []FlowPin) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PinsOf converts scored flows to FlowPins sorted by (Src, Dst).
func PinsOf(flows []ScoredFlow) []FlowPin {
	pins := make([]FlowPin, 0, len(flows))
	for _, f := range flows {
		pins = append(pins, FlowPin{Src: int(f.Src), Dst: int(f.Dst)})
	}
	sortPins(pins)
	return pins
}

// sortPins orders pins by (Src, Dst) — the canonical order PinsEqual
// and the Decision JSON encoding rely on.
func sortPins(pins []FlowPin) {
	sort.Slice(pins, func(i, j int) bool {
		if pins[i].Src != pins[j].Src {
			return pins[i].Src < pins[j].Src
		}
		return pins[i].Dst < pins[j].Dst
	})
}

// EstimateSlotDemand walks each pinned flow's XY route and returns the
// worst-case slot demand at any single router: the maximum number of
// pinned circuits crossing one node, times one reservation block of
// blockFlits+1 slots. This deliberately over-approximates (it counts
// per node, not per input port), so a slot table initialized to the
// estimate leaves the resizer's doubling path as a safety valve rather
// than the common case.
func EstimateSlotDemand(pins []FlowPin, width, height, blockFlits int) int {
	if len(pins) == 0 || width <= 0 || height <= 0 {
		return 0
	}
	if blockFlits < 1 {
		blockFlits = 1
	}
	load := make([]int, width*height)
	for _, p := range pins {
		sx, sy := p.Src%width, p.Src/width
		dx, dy := p.Dst%width, p.Dst/width
		x, y := sx, sy
		for x != dx {
			if dx > x {
				x++
			} else {
				x--
			}
			load[y*width+x]++
		}
		for y != dy {
			if dy > y {
				y++
			} else {
				y--
			}
			load[y*width+x]++
		}
	}
	max := 0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max * (blockFlits + 1)
}

// slotInitFor turns a demand estimate into a resizer starting size:
// the next power of two at or above demand, clamped to [8, capacity].
func slotInitFor(demand, capacity int) int {
	if demand <= 0 || capacity <= 0 {
		return 0
	}
	init := 8
	for init < demand && init < capacity {
		init <<= 1
	}
	if init > capacity {
		init = capacity
	}
	return init
}

// avgFlits returns the profile's mean packet length in flits.
func avgFlits(p *Profile) int {
	if p.Injected <= 0 {
		return 1
	}
	var flits int64
	for _, f := range p.Flows {
		flits += f.Flits
	}
	n := int(flits / p.Injected)
	if n < 1 {
		n = 1
	}
	return n
}

// Static is the identity policy: re-run the baseline unchanged. Its
// job in the offline loop is to anchor the energy/latency deltas (and,
// because its re-run config hashes identically to the profiled run, to
// come back as a store cache hit).
type Static struct{}

func (Static) Name() string             { return "static" }
func (Static) Decide(*Profile) Decision { return Decision{Policy: "static"} }

// Threshold pins every flow that injected at least MinPackets packets
// over the profiled run, restricts setups to those pins, and sizes the
// initial slot table to the pinned demand. The paper's simplest
// profiled-hybrid strategy: persistent flows get circuits, sporadic
// ones stay packet-switched.
type Threshold struct {
	// MinPackets is the pin threshold (default 64).
	MinPackets int64
}

func (Threshold) Name() string { return "threshold" }

func (t Threshold) Decide(p *Profile) Decision {
	min := t.MinPackets
	if min <= 0 {
		min = 64
	}
	var scored []ScoredFlow
	for _, f := range p.Flows {
		if f.Src != f.Dst && f.Packets >= min {
			scored = append(scored, ScoredFlow{Src: f.Src, Dst: f.Dst, Score: f.Packets})
		}
	}
	pins := PinsOf(SelectTopK(scored, len(scored)))
	d := Decision{Policy: "threshold", PinnedFlows: pins, RestrictSetups: true}
	demand := EstimateSlotDemand(pins, p.Width, p.Height, avgFlits(p))
	d.SlotInit = slotInitFor(demand, p.SlotCapacity)
	return d
}

// Greedy ranks flows by flits × (hops + 1) — the bytes × distance
// product that approximates each flow's share of total link energy —
// and pins them in rank order until the estimated slot demand exhausts
// a quarter of the slot-table capacity (or until TopK flows, when set).
// Setups are restricted to the pins and the slot table starts at the
// pinned demand. The demand budget, not a fixed count, is what lets
// greedy cover a whole permutation pattern when it is cheap (every
// tornado flow pinned) yet back off to the heaviest flows when pinning
// everything would blow up the TDM frame.
type Greedy struct {
	// TopK caps the number of pinned flows; <= 0 lets the slot-demand
	// budget decide.
	TopK int
}

func (Greedy) Name() string { return "greedy" }

func (g Greedy) Decide(p *Profile) Decision {
	scored := make([]ScoredFlow, 0, len(p.Flows))
	for _, f := range p.Flows {
		if f.Src == f.Dst {
			continue
		}
		hops := int64(HopDistance(int(f.Src), int(f.Dst), p.Width))
		scored = append(scored, ScoredFlow{Src: f.Src, Dst: f.Dst, Score: f.Flits * (hops + 1)})
	}
	ranked := SelectTopK(scored, len(scored))
	if g.TopK > 0 && len(ranked) > g.TopK {
		ranked = ranked[:g.TopK]
	}
	block := avgFlits(p)
	budget := p.SlotCapacity / 4
	if budget < 8 {
		budget = 8
	}
	// Admit flows in rank order while the worst-case single-node demand
	// stays within budget; a flow that would overflow it is skipped but
	// later (lighter, possibly disjoint-path) flows still get a chance.
	var pins []FlowPin
	for _, f := range ranked {
		cand := append(append([]FlowPin(nil), pins...), FlowPin{Src: int(f.Src), Dst: int(f.Dst)})
		if g.TopK <= 0 && EstimateSlotDemand(cand, p.Width, p.Height, block) > budget {
			continue
		}
		pins = cand
	}
	sortPins(pins)
	d := Decision{Policy: "greedy", PinnedFlows: pins, RestrictSetups: true}
	demand := EstimateSlotDemand(pins, p.Width, p.Height, block)
	d.SlotInit = slotInitFor(demand, p.SlotCapacity)
	return d
}

// SDMGate re-runs the workload under space-division multiplexing with
// link planes power-gated according to the profiled utilization: a
// workload whose traffic would keep only a sliver of the SDM planes
// busy pays their static link leakage for nothing. Plane count before
// gating is Planes (default 4); at least two planes always stay on
// (one packet plane plus one circuit plane).
type SDMGate struct {
	Planes int
}

func (SDMGate) Name() string { return "sdm-gate" }

func (s SDMGate) Decide(p *Profile) Decision {
	planes := s.Planes
	if planes <= 0 {
		planes = 4
	}
	// Offered load per node per cycle, in flits: the fraction of link
	// capacity the workload can possibly use. One ungated plane serves
	// roughly one flit per link per cycle, so gate planes the offered
	// load cannot fill, keeping >= 2.
	var load float64
	if p.Cycles > 0 && p.Nodes() > 0 {
		var flits int64
		for _, f := range p.Flows {
			flits += f.Flits
		}
		load = float64(flits) / (float64(p.Cycles) * float64(p.Nodes()))
	}
	gated := 0
	switch {
	case load < 0.25:
		gated = planes - 2
	case load < 0.5:
		gated = planes - 3
	}
	if gated < 0 {
		gated = 0
	}
	if gated > planes-2 {
		gated = planes - 2
	}
	return Decision{Policy: "sdm-gate", UseSDM: true, GatedPlanes: gated}
}

// Names lists the parseable policy names.
func Names() []string { return []string{"static", "threshold", "greedy", "sdm-gate"} }

// Parse resolves a policy spec string: a name from Names, optionally
// with a colon-separated integer parameter ("greedy:8" pins the top 8
// flows, "threshold:128" raises the pin threshold, "sdm-gate:6" gates
// out of 6 planes).
func Parse(spec string) (Policy, error) {
	name, arg := spec, ""
	hasArg := false
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
		hasArg = true
	}
	n := 0
	if hasArg {
		v, err := strconv.Atoi(arg)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("policy: bad parameter %q in %q", arg, spec)
		}
		n = v
	}
	switch name {
	case "static":
		if n != 0 {
			return nil, fmt.Errorf("policy: %q takes no parameter", name)
		}
		return Static{}, nil
	case "threshold":
		return Threshold{MinPackets: int64(n)}, nil
	case "greedy":
		return Greedy{TopK: n}, nil
	case "sdm-gate":
		return SDMGate{Planes: n}, nil
	default:
		return nil, fmt.Errorf("policy: unknown policy %q (have %s)", name, strings.Join(Names(), ", "))
	}
}

// ScoreFlows converts obs flow stats into bytes×distance scored flows
// (the greedy metric) for the online controller's epoch windows.
func ScoreFlows(flows []obs.FlowStat, prev map[uint64]int64, width int) []ScoredFlow {
	scored := make([]ScoredFlow, 0, len(flows))
	for _, f := range flows {
		if f.Src == f.Dst {
			continue
		}
		key := uint64(uint32(f.Src))<<32 | uint64(uint32(f.Dst))
		delta := f.Flits
		if prev != nil {
			delta -= prev[key]
		}
		if delta <= 0 {
			continue
		}
		hops := int64(HopDistance(int(f.Src), int(f.Dst), width))
		scored = append(scored, ScoredFlow{Src: f.Src, Dst: f.Dst, Score: delta * (hops + 1)})
	}
	return scored
}
