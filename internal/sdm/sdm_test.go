package sdm

import (
	"testing"

	"tdmnoc/internal/power"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
	"tdmnoc/internal/traffic"
)

func bernoulliGen(pat traffic.Pattern, rate float64, flitsPerPkt int) Generator {
	return func(now int64, src topology.NodeID, rng *sim.RNG) (topology.NodeID, bool) {
		if !rng.Bernoulli(rate / float64(flitsPerPkt)) {
			return 0, false
		}
		m := topology.NewMesh(6, 6)
		return destOrSkip(pat, m, src, rng)
	}
}

func destOrSkip(pat traffic.Pattern, m topology.Mesh, src topology.NodeID, rng *sim.RNG) (topology.NodeID, bool) {
	return traffic.Destination(pat, m, src, rng)
}

func TestConfigValidatePanics(t *testing.T) {
	bad := DefaultConfig(6, 6)
	bad.CircuitPlanes = 4 // == Planes
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for CircuitPlanes == Planes")
		}
	}()
	New(bad, nil)
}

func TestPSConservation(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	cfg.SetupThreshold = 1 << 30 // no circuits: pure PS on planes
	net := New(cfg, bernoulliGen(traffic.Tornado, 0.10, 5))
	net.EnableStats()
	net.Run(5000)
	net.StopGeneration()
	if !net.Drain(20000) {
		t.Fatalf("failed to drain: %d in flight", net.InFlight())
	}
	if net.Stats.InjectedPackets != net.Stats.EjectedPackets {
		t.Fatalf("conservation: injected=%d ejected=%d", net.Stats.InjectedPackets, net.Stats.EjectedPackets)
	}
	if net.Stats.EjectedPackets == 0 {
		t.Fatal("no traffic")
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationSlowsPackets(t *testing.T) {
	// With 4 planes, a PS flit takes 4 cycles per link: zero-load latency
	// must be well above the unpartitioned network's.
	cfg := DefaultConfig(6, 6)
	cfg.SetupThreshold = 1 << 30
	net := New(cfg, bernoulliGen(traffic.Tornado, 0.02, 5))
	net.EnableStats()
	net.Run(8000)
	net.StopGeneration()
	net.Drain(20000)
	lat, ok := net.Stats.AvgNetLatency()
	if !ok {
		t.Fatal("no samples")
	}
	// Tornado on 6x6: 2 hops; the serialized path is far slower than the
	// 5-cycle/hop full-width pipeline (about 17 cycles).
	if lat < 25 {
		t.Fatalf("SDM zero-load latency %.1f suspiciously low", lat)
	}
}

func TestCircuitsEstablishAndBypass(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	net := New(cfg, bernoulliGen(traffic.Tornado, 0.10, 5))
	net.Run(3000)
	if net.Circuits() == 0 {
		t.Fatal("no SDM circuits established")
	}
	net.EnableStats()
	net.Run(8000)
	net.StopGeneration()
	if !net.Drain(30000) {
		t.Fatalf("failed to drain: %d in flight", net.InFlight())
	}
	s := &net.Stats
	if s.CSFlits == 0 {
		t.Fatal("no circuit-switched flits")
	}
	// Drain succeeded, so global conservation holds; the gated stats can
	// legitimately count ejections of packets injected before EnableStats.
	if net.InFlight() != 0 {
		t.Fatalf("in flight after drain: %d", net.InFlight())
	}
}

func TestPlaneLimitCapsCircuits(t *testing.T) {
	// Tornado from a full row shares links; at most CircuitPlanes
	// circuits can cross any link.
	cfg := DefaultConfig(6, 6)
	cfg.SetupThreshold = 1
	cfg.MaxCircuits = 8
	net := New(cfg, bernoulliGen(traffic.UniformRandom, 0.20, 5))
	net.Run(10000)
	if net.Stats.SetupsFailed == 0 {
		// Not a hard failure (uniform random may fit), but with UR on a
		// 6x6 mesh and 3 circuit planes it should overflow quickly.
		t.Error("expected some SDM circuit requests to fail on plane exhaustion")
	}
	// Invariant: no link has more than CircuitPlanes circuit-owned planes.
	for _, r := range net.routers {
		for p := topology.Port(0); p < topology.NumPorts; p++ {
			owned := 0
			for _, pl := range r.out[p].planes {
				if pl.circuit >= 0 {
					owned++
				}
			}
			if owned > cfg.CircuitPlanes {
				t.Fatalf("router %d out[%v]: %d circuit planes (cap %d)", r.id, p, owned, cfg.CircuitPlanes)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		net := New(DefaultConfig(6, 6), bernoulliGen(traffic.Transpose, 0.15, 5))
		net.EnableStats()
		net.Run(6000)
		return net.Stats.EjectedPackets, net.Stats.NetLatencySum
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestEnergyReporting(t *testing.T) {
	net := New(DefaultConfig(6, 6), bernoulliGen(traffic.Tornado, 0.10, 5))
	net.EnableStats()
	net.Run(3000)
	e := net.Energy(powerParams())
	if e.TotalDynamicPJ() <= 0 || e.TotalStaticPJ() <= 0 {
		t.Fatal("energy not recorded")
	}
}

func powerParams() (p power.Params) { return power.Default45nm() }

func TestValidateCleanAfterRun(t *testing.T) {
	net := New(DefaultConfig(6, 6), bernoulliGen(traffic.UniformRandom, 0.15, 5))
	net.Run(4000)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStopGenerationHalts(t *testing.T) {
	net := New(DefaultConfig(6, 6), bernoulliGen(traffic.Tornado, 0.2, 5))
	net.Run(1000)
	net.StopGeneration()
	before := net.Stats.InjectedPackets
	_ = before
	sentBefore := net.InFlight()
	net.Drain(30000)
	if net.InFlight() != 0 {
		t.Fatalf("in flight %d after drain (was %d)", net.InFlight(), sentBefore)
	}
}

func TestSDMNowAdvances(t *testing.T) {
	net := New(DefaultConfig(4, 4), nil)
	if net.Now() != 0 {
		t.Fatal("fresh network not at cycle 0")
	}
	net.Run(100)
	if net.Now() != 100 {
		t.Fatalf("Now() = %d after 100 cycles", net.Now())
	}
}

func TestSDMCircuitLatencyFlat(t *testing.T) {
	// A circuit owns its plane outright: tornado latency should stay flat
	// across low loads (no slot waits, unlike TDM).
	lat := func(rate float64) float64 {
		net := New(DefaultConfig(6, 6), bernoulliGen(traffic.Tornado, rate, 5))
		net.Run(3000)
		net.EnableStats()
		net.Run(6000)
		net.StopGeneration()
		net.Drain(30000)
		l, _ := net.Stats.AvgNetLatency()
		return l
	}
	l1, l2 := lat(0.02), lat(0.10)
	if l2 > l1*1.5 {
		t.Errorf("SDM circuit latency grew %0.1f -> %0.1f at low load", l1, l2)
	}
}
