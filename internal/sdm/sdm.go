// Package sdm models the space-division-multiplexed hybrid-switched NoC of
// Jerger et al. ("Circuit-Switched Coherence", NOCS 2008), the baseline the
// paper compares against in Section IV (Hybrid-SDM-VC4).
//
// In an SDM network each link is physically partitioned into P planes of
// width/P wires. A circuit owns one plane end-to-end; packet-switched
// packets use one plane per link for their whole wormhole traversal. The
// two effects the paper leans on both emerge from this structure:
//
//   - Serialization: a 16-byte flit on a quarter-width plane takes P
//     cycles per link, so each packet occupies buffers and planes P times
//     longer, and saturation arrives earlier at high injection rates.
//   - Limited circuit capacity: at most P-1 planes per link can be given
//     to circuits (one is kept for packet-switched traffic), so the number
//     of circuit-switched paths cannot scale with network size.
//
// The model intentionally simplifies the control plane: circuits are
// granted by a centralised allocator that walks the X-Y path (the paper's
// own SDM evaluation holds circuit setup out of the critical path), while
// the datapath — buffering, VC allocation, plane occupancy, serialization,
// circuit bypass — is simulated cycle by cycle. DESIGN.md records this
// substitution.
package sdm

import (
	"fmt"

	"tdmnoc/internal/flit"
	"tdmnoc/internal/power"
	"tdmnoc/internal/routing"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/stats"
	"tdmnoc/internal/topology"
)

// Config sizes the SDM network.
type Config struct {
	Width, Height int
	// Planes is the number of link partitions (4 in the evaluation:
	// 4-byte planes of the 16-byte channel).
	Planes int
	// CircuitPlanes caps how many planes per link circuits may own.
	CircuitPlanes int
	// VCs and BufDepth match the Table-I router (4 and 5).
	VCs, BufDepth int
	// PSDataFlits is the packet length (5).
	PSDataFlits int
	// SetupThreshold messages to one destination trigger a circuit request.
	SetupThreshold int
	// MaxCircuits bounds circuits per source.
	MaxCircuits int
	// GatedPlanes power-gates the highest-numbered planes of every link:
	// gated planes carry no traffic (circuit or packet-switched) and
	// their drivers leak no static power. At least two planes must stay
	// on — one packet-switched escape plane plus one circuit-capable
	// plane — and circuits are capped at one fewer than the ungated
	// plane count regardless of CircuitPlanes. The SDM-gating adaptive
	// policy sets this from observed utilization to trade peak circuit
	// capacity for link leakage at low load.
	GatedPlanes int
	Seed        uint64
}

// DefaultConfig returns the Hybrid-SDM-VC4 configuration.
func DefaultConfig(width, height int) Config {
	return Config{
		Width: width, Height: height,
		Planes: 4, CircuitPlanes: 3,
		VCs: 4, BufDepth: 5,
		PSDataFlits:    5,
		SetupThreshold: 4,
		MaxCircuits:    2,
		Seed:           1,
	}
}

func (c Config) validate() {
	if c.Width <= 0 || c.Height <= 0 || c.Planes <= 0 || c.VCs <= 0 || c.BufDepth <= 0 {
		panic("sdm: invalid configuration")
	}
	if c.CircuitPlanes >= c.Planes {
		panic("sdm: at least one plane must remain packet-switched")
	}
	if c.GatedPlanes < 0 || c.Planes-c.GatedPlanes < 2 {
		panic("sdm: gating must leave at least two planes on")
	}
}

// activePlanes is the per-link plane count after power gating.
func (c Config) activePlanes() int { return c.Planes - c.GatedPlanes }

// circuit is an end-to-end plane reservation.
type circuit struct {
	id   int
	src  topology.NodeID
	dst  topology.NodeID
	path []topology.NodeID
	// plane[i] is the plane owned on the link path[i] -> path[i+1].
	plane []int
	used  int64
}

type vcState uint8

const (
	vcIdle vcState = iota
	vcRouting
	vcVCAlloc
	vcActive
)

type inputVC struct {
	q     []*flit.Flit
	state vcState
	ready int64
	route topology.Port
	outVC int
	plane int // plane held on the output link by the current packet
	hasPl bool
}

type outPlane struct {
	busyUntil int64
	circuit   int // -1 when not owned by a circuit
}

type outPort struct {
	planes  []outPlane
	credits []int
	vcFree  []bool
	rrVC    int
}

type sdmRouter struct {
	id  topology.NodeID
	in  [topology.NumPorts][]inputVC
	out [topology.NumPorts]outPort
	rr  int
}

type arrival struct {
	router topology.NodeID
	port   topology.Port
	f      *flit.Flit
	cs     bool
}

// Generator produces synthetic traffic for one source; send=false skips
// the cycle.
type Generator func(now int64, src topology.NodeID, rng *sim.RNG) (dst topology.NodeID, send bool)

type srcState struct {
	rng  *sim.RNG
	psQ  []*flit.Flit // flit-level injection queue
	freq map[topology.NodeID]int
	// Circuit streaming: next cycle a CS flit may be injected per circuit.
	csQ    map[int][]*flit.Flit
	csNext map[int]int64
	seq    uint64
}

// Network is one SDM hybrid-switched NoC simulation instance.
type Network struct {
	cfg  Config
	mesh topology.Mesh
	now  int64

	routers []*sdmRouter
	src     []*srcState
	gen     Generator
	genOn   bool

	circuits   []*circuit
	circuitOf  map[topology.NodeID]map[topology.NodeID]*circuit // src -> dst -> circuit
	pktCircuit map[uint64]*circuit
	rxCount    map[uint64]int

	Stats  stats.Collector
	meters []power.RouterMeter

	inbox map[int64][]arrival

	sent, ejected int64
}

// New builds an SDM network with the given traffic generator.
func New(cfg Config, gen Generator) *Network {
	cfg.validate()
	n := &Network{
		cfg:        cfg,
		mesh:       topology.NewMesh(cfg.Width, cfg.Height),
		gen:        gen,
		genOn:      gen != nil,
		circuitOf:  map[topology.NodeID]map[topology.NodeID]*circuit{},
		pktCircuit: map[uint64]*circuit{},
		rxCount:    map[uint64]int{},
		inbox:      map[int64][]arrival{},
	}
	master := sim.NewRNG(cfg.Seed)
	nodes := n.mesh.Nodes()
	n.meters = make([]power.RouterMeter, nodes)
	for id := 0; id < nodes; id++ {
		r := &sdmRouter{id: topology.NodeID(id)}
		for p := topology.Port(0); p < topology.NumPorts; p++ {
			r.in[p] = make([]inputVC, cfg.VCs)
			op := &r.out[p]
			// Gated planes are simply absent: no allocator, arbiter or
			// circuit walk can pick what is not in the array.
			op.planes = make([]outPlane, cfg.activePlanes())
			for k := range op.planes {
				op.planes[k].circuit = -1
			}
			op.credits = make([]int, cfg.VCs)
			op.vcFree = make([]bool, cfg.VCs)
			for v := 0; v < cfg.VCs; v++ {
				op.credits[v] = cfg.BufDepth
				op.vcFree[v] = true
			}
		}
		n.routers = append(n.routers, r)
		n.src = append(n.src, &srcState{
			rng:    master.Fork(),
			freq:   map[topology.NodeID]int{},
			csQ:    map[int][]*flit.Flit{},
			csNext: map[int]int64{},
		})
		n.meters[id].LinkChannels = n.linkChannels(topology.NodeID(id))
	}
	return n
}

// linkChannels counts the static link-driver channels a router leaks
// through: one per ungated plane on the ejection channel and on each
// outgoing mesh link. Plane gating shrinks this, which is the entire
// energy benefit the SDM-gating policy trades circuit capacity for.
func (n *Network) linkChannels(id topology.NodeID) int64 {
	links := int64(1) // local ejection channel
	for _, p := range []topology.Port{topology.North, topology.East, topology.South, topology.West} {
		if _, ok := n.mesh.Neighbor(id, p); ok {
			links++
		}
	}
	return links * int64(n.cfg.activePlanes())
}

// Mesh returns the topology.
func (n *Network) Mesh() topology.Mesh { return n.mesh }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// StopGeneration halts the traffic generator (for draining).
func (n *Network) StopGeneration() { n.genOn = false }

// InFlight reports packets sent but not yet delivered.
func (n *Network) InFlight() int64 { return n.sent - n.ejected }

// Circuits reports how many circuits are currently established.
func (n *Network) Circuits() int { return len(n.circuits) }

// EnableStats begins measurement.
func (n *Network) EnableStats() {
	n.Stats.Enabled = true
	for i := range n.meters {
		n.meters[i].Reset()
		// Re-count the static link channels lost in the reset.
		n.meters[i].LinkChannels = n.linkChannels(topology.NodeID(i))
	}
}

// Energy reports the aggregate energy breakdown.
func (n *Network) Energy(p power.Params) power.Breakdown {
	var out power.Breakdown
	for i := range n.meters {
		out = out.Add(n.meters[i].Report(p))
	}
	return out
}

// Run advances the network by the given number of cycles.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.step()
	}
}

// Drain runs until all in-flight packets are delivered or limit cycles
// pass.
func (n *Network) Drain(limit int) bool {
	for i := 0; i < limit; i++ {
		if n.InFlight() == 0 {
			return true
		}
		n.step()
	}
	return n.InFlight() == 0
}

func (n *Network) step() {
	n.deliver()
	n.generate()
	n.injectAll()
	for _, r := range n.routers {
		n.routerCycle(r)
	}
	for i := range n.meters {
		m := &n.meters[i]
		m.Cycles++
		m.BufSlotCycles += int64(n.cfg.VCs * n.cfg.BufDepth * int(topology.NumPorts))
	}
	n.now++
}

// deliver moves flits that finished their link serialization into router
// buffers (packet-switched) or forwards/ejects them (circuit-switched).
func (n *Network) deliver() {
	arr := n.inbox[n.now]
	delete(n.inbox, n.now)
	for _, a := range arr {
		if a.cs {
			n.deliverCS(a)
			continue
		}
		r := n.routers[a.router]
		vc := &r.in[a.port][a.f.VC]
		vc.q = append(vc.q, a.f)
		n.meters[a.router].BufWrites++
		if len(vc.q) == 1 && vc.state == vcIdle && a.f.IsHead() {
			vc.state = vcRouting
			vc.ready = n.now
		}
	}
}

// deliverCS advances a circuit-switched flit: bypass the router in one
// cycle and serialize over the next link's plane, or eject at the
// destination.
func (n *Network) deliverCS(a arrival) {
	c := n.pktCircuit[a.f.Pkt.ID]
	if c == nil || a.router == c.dst {
		n.eject(a.router, a.f)
		return
	}
	// Find this router on the path and forward along the circuit.
	for i, node := range c.path {
		if node != a.router {
			continue
		}
		n.meters[a.router].CSLatches++
		n.meters[a.router].XbarFlits++
		n.meters[a.router].LinkFlits++
		next := c.path[i+1]
		port := routing.XY(n.mesh, node, next).Opposite()
		// Phits pipeline hop to hop: the flit front advances at one
		// router plus one link cycle per hop; the plane's 1/Planes
		// bandwidth is charged at injection spacing, not per hop.
		n.schedule(n.now+2, arrival{router: next, port: port, f: a.f, cs: true})
		return
	}
	// Not on the path: treat as delivered (cannot happen with a
	// consistent allocator).
	n.eject(a.router, a.f)
}

func (n *Network) schedule(at int64, a arrival) {
	n.inbox[at] = append(n.inbox[at], a)
}

// eject counts a flit at its destination and completes packets.
func (n *Network) eject(id topology.NodeID, f *flit.Flit) {
	pkt := f.Pkt
	cnt := n.rxCount[pkt.ID] + 1
	if cnt < pkt.Flits {
		n.rxCount[pkt.ID] = cnt
		return
	}
	delete(n.rxCount, pkt.ID)
	delete(n.pktCircuit, pkt.ID)
	pkt.EjectedAt = n.now
	n.ejected++
	n.Stats.RecordEjection(pkt)
}

// generate asks the traffic generator for new packets and makes the
// switching decision: packets to a destination with an established
// circuit stream over it; everything else is packet-switched, with
// frequent pairs requesting circuits.
func (n *Network) generate() {
	if !n.genOn {
		return
	}
	for id := 0; id < n.mesh.Nodes(); id++ {
		src := n.src[id]
		dst, ok := n.gen(n.now, topology.NodeID(id), src.rng)
		if !ok || dst == topology.NodeID(id) {
			continue
		}
		src.seq++
		pkt := &flit.Packet{
			ID:        uint64(id)<<40 | src.seq,
			Kind:      flit.DataPacket,
			Src:       topology.NodeID(id),
			Dst:       dst,
			Class:     flit.ClassOther,
			Flits:     n.cfg.PSDataFlits,
			CreatedAt: n.now,
		}
		n.sent++
		if c := n.circuitFor(topology.NodeID(id), dst); c != nil {
			pkt.Switching = flit.CircuitSwitched
			n.pktCircuit[pkt.ID] = c
			src.csQ[c.id] = append(src.csQ[c.id], flit.Explode(pkt)...)
			c.used = n.now
			n.Stats.OwnCircuitSends++
		} else {
			src.psQ = append(src.psQ, flit.Explode(pkt)...)
			n.noteFrequency(topology.NodeID(id), dst)
		}
	}
}

func (n *Network) circuitFor(src, dst topology.NodeID) *circuit {
	if m := n.circuitOf[src]; m != nil {
		return m[dst]
	}
	return nil
}

// noteFrequency requests a circuit once a pair communicates often enough,
// mirroring the TDM policy so the Fig. 4 comparison is apples-to-apples.
func (n *Network) noteFrequency(src, dst topology.NodeID) {
	s := n.src[src]
	s.freq[dst]++
	if s.freq[dst] < n.cfg.SetupThreshold {
		return
	}
	s.freq[dst] = 0
	if n.circuitFor(src, dst) != nil {
		return
	}
	if m := n.circuitOf[src]; m != nil && len(m) >= n.cfg.MaxCircuits {
		return
	}
	n.tryReserveCircuit(src, dst)
}

// tryReserveCircuit walks the X-Y path and claims one free plane per link
// (the centralised-allocator simplification). It fails when any link has
// already given CircuitPlanes planes to circuits — the SDM scaling limit.
func (n *Network) tryReserveCircuit(src, dst topology.NodeID) bool {
	path := routing.PathXY(n.mesh, src, dst)
	planes := make([]int, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		port := routing.XY(n.mesh, path[i], path[i+1])
		op := &n.routers[path[i]].out[port]
		picked := -1
		owned := 0
		for k := range op.planes {
			if op.planes[k].circuit >= 0 {
				owned++
			} else if picked < 0 {
				picked = k
			}
		}
		// Gating lowers the per-link circuit cap with the plane count:
		// one ungated plane must always remain packet-switched.
		csCap := n.cfg.CircuitPlanes
		if m := len(op.planes) - 1; csCap > m {
			csCap = m
		}
		if picked < 0 || owned >= csCap {
			n.Stats.SetupsFailed++
			return false
		}
		planes[i] = picked
	}
	c := &circuit{id: len(n.circuits), src: src, dst: dst, path: path, plane: planes, used: n.now}
	for i := 0; i+1 < len(path); i++ {
		port := routing.XY(n.mesh, path[i], path[i+1])
		n.routers[path[i]].out[port].planes[planes[i]].circuit = c.id
	}
	n.circuits = append(n.circuits, c)
	if n.circuitOf[src] == nil {
		n.circuitOf[src] = map[topology.NodeID]*circuit{}
	}
	n.circuitOf[src][dst] = c
	n.Stats.SetupsOK++
	n.Stats.CircuitsRegistered++
	return true
}

// injectAll moves source-queue flits into the network: circuit-switched
// streams are paced at one flit per Planes cycles (the plane is
// width/Planes wires); packet-switched flits enter the local input port
// under credit flow control.
func (n *Network) injectAll() {
	for id := 0; id < n.mesh.Nodes(); id++ {
		s := n.src[id]
		// Circuit streams (each circuit's plane is independent).
		for _, c := range n.circuits {
			if c.src != topology.NodeID(id) {
				continue
			}
			q := s.csQ[c.id]
			if len(q) == 0 || n.now < s.csNext[c.id] {
				continue
			}
			f := q[0]
			s.csQ[c.id] = q[1:]
			s.csNext[c.id] = n.now + int64(n.cfg.Planes)
			if f.IsHead() && f.Pkt.InjectedAt == 0 {
				f.Pkt.InjectedAt = n.now
				n.Stats.RecordInjection(f.Pkt)
			}
			// First hop: source NI to the first on-path forwarding step.
			n.schedule(n.now+1, arrival{router: c.path[0], port: topology.Local, f: f, cs: true})
		}
		// Packet-switched injection: one flit per cycle onto the local
		// port, credit permitting.
		if len(s.psQ) == 0 {
			continue
		}
		f := s.psQ[0]
		r := n.routers[id]
		vc := &r.in[topology.Local][f.VC]
		if f.IsHead() {
			// Pick a local input VC with a free slot.
			picked := -1
			for v := 0; v < n.cfg.VCs; v++ {
				if len(r.in[topology.Local][v].q) < n.cfg.BufDepth &&
					(r.in[topology.Local][v].state == vcIdle || lastIsTail(r.in[topology.Local][v].q)) {
					picked = v
					break
				}
			}
			if picked < 0 {
				continue
			}
			for _, ff := range remainingOfPacket(s.psQ, f.Pkt.ID) {
				ff.VC = picked
			}
			vc = &r.in[topology.Local][picked]
			if f.Pkt.InjectedAt == 0 {
				f.Pkt.InjectedAt = n.now
				n.Stats.RecordInjection(f.Pkt)
			}
		} else if len(vc.q) >= n.cfg.BufDepth {
			continue
		}
		s.psQ = s.psQ[1:]
		vc.q = append(vc.q, f)
		n.meters[id].BufWrites++
		if len(vc.q) == 1 && vc.state == vcIdle && f.IsHead() {
			vc.state = vcRouting
			vc.ready = n.now
		}
	}
}

func lastIsTail(q []*flit.Flit) bool {
	return len(q) > 0 && q[len(q)-1].IsTail()
}

func remainingOfPacket(q []*flit.Flit, id uint64) []*flit.Flit {
	var out []*flit.Flit
	for _, f := range q {
		if f.Pkt.ID == id {
			out = append(out, f)
		}
	}
	return out
}

// routerCycle runs RC, VA and SA for one router. Switch traversal plus
// link serialization are folded into the scheduled arrival delay
// (1 + Planes cycles), and each transmission occupies the packet's plane
// for Planes cycles.
func (n *Network) routerCycle(r *sdmRouter) {
	m := &n.meters[r.id]
	// RC + VA.
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		for v := range r.in[p] {
			vc := &r.in[p][v]
			if vc.ready > n.now || len(vc.q) == 0 {
				continue
			}
			switch vc.state {
			case vcRouting:
				if !vc.q[0].IsHead() {
					continue
				}
				vc.route = routing.XY(n.mesh, r.id, vc.q[0].Pkt.Dst)
				vc.state = vcVCAlloc
				vc.ready = n.now + 1
			case vcVCAlloc:
				op := &r.out[vc.route]
				got := -1
				if vc.route == topology.Local {
					got = 0 // ejection needs no downstream VC
				} else {
					for j := 0; j < n.cfg.VCs; j++ {
						k := (op.rrVC + j) % n.cfg.VCs
						if op.vcFree[k] {
							got = k
							break
						}
					}
				}
				if got < 0 {
					continue
				}
				if vc.route != topology.Local {
					op.vcFree[got] = false
					op.rrVC = (got + 1) % n.cfg.VCs
				}
				m.VCArbs++
				vc.outVC = got
				vc.hasPl = false
				vc.state = vcActive
				vc.ready = n.now + 1
			}
		}
	}
	// SA: one grant per output port per cycle, round-robin over inputs.
	for o := topology.Port(0); o < topology.NumPorts; o++ {
		op := &r.out[o]
		granted := false
		total := int(topology.NumPorts) * n.cfg.VCs
		for i := 0; i < total && !granted; i++ {
			idx := (r.rr + i) % total
			p := topology.Port(idx / n.cfg.VCs)
			v := idx % n.cfg.VCs
			vc := &r.in[p][v]
			if vc.state != vcActive || vc.ready > n.now || len(vc.q) == 0 || vc.route != o {
				continue
			}
			f := vc.q[0]
			// Plane acquisition: the packet holds one plane on this link
			// from head to tail (wormhole over a single plane).
			if !vc.hasPl {
				picked := -1
				for k := range op.planes {
					if op.planes[k].circuit < 0 && op.planes[k].busyUntil <= n.now {
						picked = k
						break
					}
				}
				if picked < 0 {
					continue
				}
				vc.plane = picked
				vc.hasPl = true
			}
			if op.planes[vc.plane].busyUntil > n.now {
				continue
			}
			if o != topology.Local && op.credits[vc.outVC] <= 0 {
				continue
			}
			// Grant: serialize the flit over the plane.
			vc.q = vc.q[1:]
			m.BufReads++
			m.SWArbs++
			m.XbarFlits++
			m.LinkFlits++
			op.planes[vc.plane].busyUntil = n.now + int64(n.cfg.Planes)
			if p != topology.Local {
				// Return this input VC's credit to the upstream router.
				up, _ := n.mesh.Neighbor(r.id, p)
				n.routers[up].out[p.Opposite()].credits[v]++
			}
			f.VC = vc.outVC
			if o == topology.Local {
				// The flit's phits drain onto the ejection port over
				// Planes cycles; its last phit arrives then.
				n.scheduleEject(r.id, f)
			} else {
				op.credits[vc.outVC]--
				next, _ := n.mesh.Neighbor(r.id, o)
				// Phit-pipelined traversal: the flit front reaches the
				// neighbour after switch traversal plus one link cycle;
				// the plane stays busy Planes cycles (1/Planes bandwidth).
				n.schedule(n.now+2, arrival{router: next, port: o.Opposite(), f: f})
			}
			if f.IsTail() {
				if o != topology.Local {
					op.vcFree[vc.outVC] = true
				}
				vc.state = vcIdle
				vc.hasPl = false
				if len(vc.q) > 0 && vc.q[0].IsHead() {
					vc.state = vcRouting
					vc.ready = n.now + 1
				}
			}
			r.rr = (idx + 1) % total
			granted = true
		}
	}
}

func (n *Network) scheduleEject(id topology.NodeID, f *flit.Flit) {
	at := n.now + int64(n.cfg.Planes)
	n.inbox[at] = append(n.inbox[at], arrival{router: id, port: topology.Local, f: f, cs: true})
}

// Diagnose panics are not needed here; expose a validation hook instead.
func (n *Network) Validate() error {
	for id, r := range n.routers {
		for p := topology.Port(0); p < topology.NumPorts; p++ {
			for v := range r.in[p] {
				if len(r.in[p][v].q) > n.cfg.BufDepth {
					return fmt.Errorf("router %d in[%v] vc %d overflow: %d flits", id, p, v, len(r.in[p][v].q))
				}
			}
		}
	}
	return nil
}
