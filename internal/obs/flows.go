package obs

import "sort"

// FlowStat aggregates everything the recorder observed about one
// (source NI, destination NI) traffic flow: injected volume, delivery
// latency, and the circuit-setup round trips the source attempted
// toward that destination. Flow tracking is opt-in
// (RecorderConfig.TrackFlows) because the per-flow map costs an
// allocation the first time each flow appears on a shard; with it off,
// the flow branch in the aggregate path is a single nil check.
//
// Counters are exact regardless of ring sampling (they ride the same
// aggregate path as the Summary totals), and summing shards at export
// reproduces the serial counts: injections and setups land on the
// source tile's shard, ejections on the destination tile's shard, and
// each tile writes exactly one shard.
type FlowStat struct {
	Src int32 `json:"src"`
	Dst int32 `json:"dst"`
	// Packets / Flits count injections at the source (Flits includes
	// head+body+tail). CSPackets is the subset staged onto a circuit.
	Packets   int64 `json:"packets"`
	Flits     int64 `json:"flits"`
	CSPackets int64 `json:"cs_packets"`
	// Ejected / LatencySum are measured at the destination: packets
	// fully reassembled and their summed inject-to-eject latency.
	Ejected    int64 `json:"ejected"`
	LatencySum int64 `json:"latency_sum"`
	// Setup round trips observed by the source NI toward Dst.
	SetupsOK        int64 `json:"setups_ok"`
	SetupsFailed    int64 `json:"setups_failed"`
	SetupLatencySum int64 `json:"setup_latency_sum"`
}

// flowKey packs a (src, dst) pair into one map key.
func flowKey(src, dst int32) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// flow returns the shard's aggregate for key, allocating it on first
// sight. Only called when flow tracking is enabled.
func (s *Shard) flow(key uint64) *FlowStat {
	if f, ok := s.flows[key]; ok {
		return f
	}
	f := &FlowStat{Src: int32(key >> 32), Dst: int32(uint32(key))}
	s.flows[key] = f
	return f
}

// FlowTracking reports whether this recorder aggregates per-flow stats.
func (r *Recorder) FlowTracking() bool { return r.trackFlows }

// FlowStats merges the per-shard flow aggregates and returns them
// sorted by (Src, Dst). The result is a pure function of the simulated
// traffic — byte-identical across worker counts — because every
// counter is summed across shards and the sort order is total. Returns
// nil when flow tracking is disabled. Allocates; call between cycles
// or after the run.
func (r *Recorder) FlowStats() []FlowStat {
	if !r.trackFlows {
		return nil
	}
	merged := make(map[uint64]*FlowStat)
	for _, s := range r.shards {
		for k, f := range s.flows {
			m, ok := merged[k]
			if !ok {
				m = &FlowStat{Src: f.Src, Dst: f.Dst}
				merged[k] = m
			}
			m.Packets += f.Packets
			m.Flits += f.Flits
			m.CSPackets += f.CSPackets
			m.Ejected += f.Ejected
			m.LatencySum += f.LatencySum
			m.SetupsOK += f.SetupsOK
			m.SetupsFailed += f.SetupsFailed
			m.SetupLatencySum += f.SetupLatencySum
		}
	}
	out := make([]FlowStat, 0, len(merged))
	for _, f := range merged {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// ShardDrops returns each shard's ring drop counter, indexed by worker.
// The per-shard breakdown is operational telemetry (which worker's ring
// is undersized); it deliberately stays out of Summary's JSON, whose
// bytes must not depend on the worker count.
func (r *Recorder) ShardDrops() []uint64 {
	out := make([]uint64, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.ring.Dropped()
	}
	return out
}
