package obs

import (
	"tdmnoc/internal/topology"
)

// KindMaskAll enables every event kind in a Handle's kind mask.
const KindMaskAll uint32 = 1<<numKinds - 1

// The kind mask is a uint32 bitmask indexed by Kind; this trips at
// compile time if the taxonomy ever outgrows it.
var _ [32 - int(numKinds)]struct{}

// MaskOf builds a kind mask enabling exactly the given kinds.
func MaskOf(kinds ...Kind) uint32 {
	var m uint32
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// ProfileFlows is the standard telemetry kind mask: every kind the
// repo's own exporters consume — packet flow endpoints and link
// traversals (Perfetto flow arrows, latency histograms, link-utilization
// heatmaps), circuit setup/steal/resize events, and the sampled gauges
// behind the time-series timelines and the energy model. It omits only
// the per-flit micro pipeline-stage kinds (route compute, VC/switch
// allocation, switch traverse, buffer write, crossbar bypass, credit
// stalls, setup handshakes), which dominate a full-fidelity stream
// (~60% of all events on the fig4 miniatures) but only matter when
// stepping a single router's pipeline in the Perfetto UI. With the
// per-emitter kind mask those skipped kinds cost one branch at the
// emission site, which is what keeps this profile inside the bench's
// traced-overhead budget.
var ProfileFlows = MaskOf(KindInject, KindEject, KindLinkTraverse,
	KindSlotSteal, KindSetupLatency, KindVCOccupancy, KindSlotOccupancy,
	KindQueueDepth, KindEnergySample, KindSlotResize)

// Shard is one worker's private slice of a Recorder: an event ring plus
// the aggregate and per-window counters fed by that worker's tiles.
// Exactly one executor worker writes a shard during a cycle, so nothing
// here is atomic; the executor's phase barriers order those writes
// before the caller's Sync/export reads. Shard 0 doubles as the control
// shard — the caller goroutine's between-cycle emissions (sampled
// gauges, energy meters, slot resizes) land there through the
// Recorder's control handle.
type Shard struct {
	ring *Ring

	events uint64

	// linkFlits accumulates per-(node, output port) link traversals for
	// the utilization heatmaps, indexed node*NumPorts + port. Each tile
	// writes only its own rows, so summing shards at export is exact.
	linkFlits []int64

	injected, ejected    int64
	csFlits, psFlits     int64
	steals               int64
	setupsOK, setupsFail int64
	setupLatency         Histogram

	// flows aggregates per-(src, dst) counters when the recorder was
	// built with TrackFlows; nil otherwise, so the untracked cost is a
	// single nil check inside the three flow-relevant aggregate cases.
	flows map[uint64]*FlowStat

	// win* are this shard's contribution to the currently open telemetry
	// window; Recorder.Sync folds and clears them when the window closes.
	winCS, winPS, winSteals             int64
	winSetupOK, winSetupFail            int64
	winBuffered, winReserved, winQueued int64
	winEnergy                           int64
}

// aggKinds marks the kinds aggregate keeps counters for. Emit skips the
// aggregate call entirely for the rest (the per-flit pipeline kinds —
// the majority of a full-fidelity stream), which only feed the ring.
const aggKinds = 1<<KindInject | 1<<KindEject | 1<<KindLinkTraverse |
	1<<KindSlotSteal | 1<<KindSetupLatency | 1<<KindVCOccupancy |
	1<<KindSlotOccupancy | 1<<KindQueueDepth | 1<<KindEnergySample

// aggregate updates the shard's running totals for e. Split from Emit so
// the ring-sampling gate can decimate the timeline without touching the
// exactness of the counters. Takes e by value: Event fills the amd64
// register ABI exactly, and taking its address anywhere would spill it
// to the stack on every emission.
func (s *Shard) aggregate(e Event) {
	switch e.Kind {
	case KindInject:
		s.injected++
		// Inject events carry the flow destination in the otherwise
		// unused Slot field (Event must not grow past the register ABI).
		if s.flows != nil {
			f := s.flow(flowKey(e.Node, e.Slot))
			f.Packets++
			f.Flits += e.Val
			if e.B != 0 {
				f.CSPackets++
			}
		}
	case KindEject:
		s.ejected++
		// The source NI is recoverable from the packet id (id<<40 | seq).
		if s.flows != nil {
			f := s.flow(flowKey(int32(e.Pkt>>40), e.Node))
			f.Ejected++
			f.LatencySum += e.Val
		}
	case KindLinkTraverse:
		if i := int(e.Node)*int(topology.NumPorts) + int(e.A); i >= 0 && i < len(s.linkFlits) {
			s.linkFlits[i]++
		}
		if e.B != 0 {
			s.csFlits++
			s.winCS++
		} else {
			s.psFlits++
			s.winPS++
		}
	case KindSlotSteal:
		s.steals++
		s.winSteals++
	case KindSetupLatency:
		if e.B != 0 {
			s.setupsOK++
			s.winSetupOK++
			s.setupLatency.Observe(e.Val)
		} else {
			s.setupsFail++
			s.winSetupFail++
		}
		// Setup events carry the circuit destination in Slot (see inject).
		if s.flows != nil {
			f := s.flow(flowKey(e.Node, e.Slot))
			if e.B != 0 {
				f.SetupsOK++
				f.SetupLatencySum += e.Val
			} else {
				f.SetupsFailed++
			}
		}
	case KindVCOccupancy:
		s.winBuffered += e.Val
	case KindSlotOccupancy:
		s.winReserved += e.Val
	case KindQueueDepth:
		s.winQueued += e.Val
	case KindEnergySample:
		s.winEnergy += e.Val
	}
}

// Handle is the per-emitter write path into a Recorder. It is a concrete
// pointer — no interface dispatch on the cycle hot path — and it is
// cheap enough to give every router/NI pair its own: a masked-out kind
// costs exactly one branch.
//
// Each tile must own a distinct Handle (Recorder.Handle returns a fresh
// one per call): the 1-in-N ring-sampling counter lives here, and a
// per-tile counter sees the same deterministic emission subsequence no
// matter how tiles are partitioned across workers — per-worker counters
// would make the sampled timeline depend on the worker count.
type Handle struct {
	s    *Shard
	mask uint32
	// every/ctr implement 1-in-N ring sampling: aggregates stay exact,
	// but only every N-th unmasked event of this handle reaches the ring.
	// every <= 1 records everything.
	every uint32
	ctr   uint32
}

// Wants reports whether events of kind k would be recorded: the handle
// is attached and k passes its kind mask. It is nil-safe and small
// enough to inline, so emission sites guard with it directly —
// `if probe.Wants(kind) { probe.Emit(...) }` — and a masked-out (or
// untraced) kind costs one predictable branch instead of an Event
// construction plus an out-of-line call that returns immediately.
func (h *Handle) Wants(k Kind) bool {
	return h != nil && h.mask&(1<<uint(k)) != 0
}

// Emit records one event. It never allocates. The ring store is written
// out by hand rather than through Ring.Push: Emit runs ~70 times per
// simulated cycle on the fig4 miniatures, and dropping the second call
// plus its 40-byte argument copy is a measurable slice of the whole
// traced overhead there.
func (h *Handle) Emit(e Event) {
	if h.mask&(1<<uint(e.Kind)) == 0 {
		return
	}
	s := h.s
	s.events++
	if aggKinds&(1<<uint(e.Kind)) != 0 {
		s.aggregate(e)
	}
	if h.every > 1 {
		h.ctr++
		if h.ctr < h.every {
			return
		}
		h.ctr = 0
	}
	r := s.ring
	r.buf[(r.head+r.n)&r.mask] = e
	if r.n > r.mask {
		r.head = (r.head + 1) & r.mask
		r.dropped++
		return
	}
	r.n++
}

// Shard exposes the shard this handle writes to (export/test plumbing).
func (h *Handle) Shard() *Shard { return h.s }

// Ring exposes the shard's event ring.
func (s *Shard) Ring() *Ring { return s.ring }

// takeWindow folds this shard's open-window counters into w and clears
// them. Called by Recorder.Sync between cycles, after the phase barrier.
func (s *Shard) takeWindow(w *Sample) {
	w.CSFlits += s.winCS
	w.PSFlits += s.winPS
	w.Steals += s.winSteals
	w.SetupsOK += s.winSetupOK
	w.SetupsFailed += s.winSetupFail
	w.BufferedFlits += s.winBuffered
	w.ReservedSlots += s.winReserved
	w.NIQueued += s.winQueued
	// EnergyMilliPJ is handled by the Recorder (cumulative-meter delta).
	s.winCS, s.winPS, s.winSteals = 0, 0, 0
	s.winSetupOK, s.winSetupFail = 0, 0
	s.winBuffered, s.winReserved, s.winQueued = 0, 0, 0
}
