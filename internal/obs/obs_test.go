package obs

import (
	"testing"

	"tdmnoc/internal/topology"
)

func TestRingDropOldest(t *testing.T) {
	// A requested capacity of 3 rounds UP to the power of two 4; drop
	// order across the wrap boundary is still strictly oldest-first.
	r := NewRing(3)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4 (rounded up to a power of two)", r.Cap())
	}
	for i := 0; i < 6; i++ {
		r.Push(Event{Cycle: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if want := int64(i + 2); e.Cycle != want {
			t.Errorf("snapshot[%d].Cycle = %d, want %d (oldest-first after drops)", i, e.Cycle, want)
		}
	}
	var got []int64
	r.Do(func(e Event) { got = append(got, e.Cycle) })
	if len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Errorf("Do order = %v, want [2 3 4 5]", got)
	}
}

// TestRingPowerOfTwoRounding pins the construction contract: capacities
// round up to the next power of two (never down — drop-free sizing may
// only gain headroom), and drop semantics at the exact boundary are
// unchanged from an exact-power request.
func TestRingPowerOfTwoRounding(t *testing.T) {
	cases := []struct{ req, want int }{
		{-5, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{63, 64}, {64, 64}, {65, 128}, {1 << 16, 1 << 16}, {1<<16 + 1, 1 << 17},
	}
	for _, c := range cases {
		if got := NewRing(c.req).Cap(); got != c.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", c.req, got, c.want)
		}
	}

	// Across the rounding boundary (request 5 -> cap 8): exactly Cap()
	// newest events survive, oldest-first, and drops count the excess.
	r := NewRing(5)
	for i := 0; i < 11; i++ {
		r.Push(Event{Cycle: int64(i)})
	}
	if r.Len() != 8 || r.Dropped() != 3 {
		t.Fatalf("len/dropped = %d/%d, want 8/3", r.Len(), r.Dropped())
	}
	for i, e := range r.Snapshot() {
		if want := int64(i + 3); e.Cycle != want {
			t.Errorf("snapshot[%d].Cycle = %d, want %d", i, e.Cycle, want)
		}
	}
}

func TestRingCapacityClamp(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want 1", r.Cap())
	}
	r.Push(Event{Cycle: 1})
	r.Push(Event{Cycle: 2})
	if r.Len() != 1 || r.Snapshot()[0].Cycle != 2 {
		t.Errorf("1-cap ring kept %v", r.Snapshot())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(8)    // first bucket boundary is inclusive
	h.Observe(9)    // next bucket
	h.Observe(2000) // overflow
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[len(LatencyBuckets)] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total != 3 || h.Sum != 8+9+2000 {
		t.Errorf("total/sum = %d/%d", h.Total, h.Sum)
	}
}

func TestRecorderCountersAndWindows(t *testing.T) {
	r := NewRecorder(RecorderConfig{Nodes: 4, SampleEvery: 10})
	// Window 1: one CS and one PS link traversal, a steal, a successful
	// setup, and gauge emissions.
	r.Emit(Event{Kind: KindInject, Cycle: 1, Pkt: 1})
	r.Emit(Event{Kind: KindLinkTraverse, Cycle: 2, Node: 0, A: uint8(topology.East), B: 1, Pkt: 1})
	r.Emit(Event{Kind: KindLinkTraverse, Cycle: 3, Node: 1, A: uint8(topology.Local), B: 0, Pkt: 1})
	r.Emit(Event{Kind: KindSlotSteal, Cycle: 4, Node: 0})
	r.Emit(Event{Kind: KindSetupLatency, Cycle: 5, B: 1, Val: 12})
	r.Emit(Event{Kind: KindSetupLatency, Cycle: 5, B: 0})
	r.Emit(Event{Kind: KindVCOccupancy, Cycle: 10, Val: 7})
	r.Emit(Event{Kind: KindQueueDepth, Cycle: 10, Val: 3})
	r.Emit(Event{Kind: KindEject, Cycle: 9, Pkt: 1, Val: 8})
	for now := int64(1); now <= 10; now++ {
		r.Sync(now)
	}
	// Window 2: empty.
	for now := int64(11); now <= 20; now++ {
		r.Sync(now)
	}

	sum := r.Summary()
	if sum.Injected != 1 || sum.Ejected != 1 {
		t.Errorf("injected/ejected = %d/%d", sum.Injected, sum.Ejected)
	}
	if sum.CSFlits != 1 || sum.PSFlits != 1 || sum.Steals != 1 {
		t.Errorf("cs/ps/steals = %d/%d/%d", sum.CSFlits, sum.PSFlits, sum.Steals)
	}
	if sum.SetupsOK != 1 || sum.SetupsFailed != 1 {
		t.Errorf("setups ok/fail = %d/%d", sum.SetupsOK, sum.SetupsFailed)
	}
	if sum.SetupLatency.Total != 1 || sum.SetupLatency.Sum != 12 {
		t.Errorf("setup histogram = %+v (failed setups must not be observed)", sum.SetupLatency)
	}
	if sum.Cycles != 20 || sum.Events != 9 {
		t.Errorf("cycles/events = %d/%d", sum.Cycles, sum.Events)
	}
	if r.LinkFlits(0, topology.East) != 1 || r.LinkFlits(1, topology.Local) != 1 {
		t.Error("link accounting wrong")
	}

	samples := r.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	w1, w2 := samples[0], samples[1]
	if w1.Cycle != 10 || w1.CSFlits != 1 || w1.PSFlits != 1 || w1.Steals != 1 {
		t.Errorf("window 1 = %+v", w1)
	}
	if w1.SetupsOK != 1 || w1.SetupsFailed != 1 || w1.BufferedFlits != 7 || w1.NIQueued != 3 {
		t.Errorf("window 1 gauges = %+v", w1)
	}
	if w2.Cycle != 20 || w2.CSFlits != 0 || w2.BufferedFlits != 0 {
		t.Errorf("window 2 not reset: %+v", w2)
	}
}

func TestRecorderEnergyDelta(t *testing.T) {
	r := NewRecorder(RecorderConfig{Nodes: 1, SampleEvery: 10})
	// Energy emissions carry cumulative readings; windows report deltas.
	r.Emit(Event{Kind: KindEnergySample, Cycle: 10, Val: 500})
	r.Sync(10)
	r.Emit(Event{Kind: KindEnergySample, Cycle: 20, Val: 800})
	r.Sync(20)
	// A window with no emission reports zero, not a negative delta.
	r.Sync(30)
	s := r.Samples()
	if len(s) != 3 || s[0].EnergyMilliPJ != 500 || s[1].EnergyMilliPJ != 300 || s[2].EnergyMilliPJ != 0 {
		t.Errorf("energy deltas = %+v", s)
	}
}

func TestRecorderSampleEviction(t *testing.T) {
	r := NewRecorder(RecorderConfig{Nodes: 1, SampleEvery: 1, MaxSamples: 4})
	for now := int64(1); now <= 10; now++ {
		r.Sync(now)
	}
	s := r.Samples()
	if len(s) != 4 {
		t.Fatalf("samples = %d, want 4", len(s))
	}
	if s[0].Cycle != 7 || s[3].Cycle != 10 {
		t.Errorf("oldest windows not evicted: %+v", s)
	}
}

// TestEmitAndSyncAllocFree pins the enabled-path guarantee: once the
// recorder is built, neither Emit nor Sync allocates — including when
// the ring wraps and when a window closes.
func TestEmitAndSyncAllocFree(t *testing.T) {
	r := NewRecorder(RecorderConfig{Nodes: 4, RingCapacity: 64, SampleEvery: 2})
	e := Event{Kind: KindLinkTraverse, Node: 1, A: 2, B: 1, Pkt: 42, Cycle: 7}
	if a := testing.AllocsPerRun(1000, func() { r.Emit(e) }); a != 0 {
		t.Errorf("Emit allocates %.1f per call, want 0", a)
	}
	now := int64(0)
	if a := testing.AllocsPerRun(1000, func() { now++; r.Sync(now) }); a != 0 {
		t.Errorf("Sync allocates %.1f per call, want 0", a)
	}
}
