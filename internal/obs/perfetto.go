package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// TraceMeta labels the exported trace. Width/Height give the mesh shape
// so router threads get human-readable "(x,y)" names; OtherData lands in
// the trace's otherData section (written in sorted key order so the
// output is deterministic).
type TraceMeta struct {
	Width, Height int
	OtherData     map[string]string
}

// globalTID is the thread id used for network-wide events (Node == -1),
// e.g. slot-table resizes decided by the central policy.
const globalTID = 1 << 20

// pid assignment: routers and NIs get separate Perfetto processes so
// their tracks group cleanly.
const (
	pidRouters = 1
	pidNIs     = 2
)

func eventPID(k Kind) int {
	switch k {
	case KindInject, KindEject, KindSetupLatency, KindDLTAdd, KindDLTRemove, KindQueueDepth:
		return pidNIs
	}
	return pidRouters
}

func eventCat(k Kind) string {
	switch k {
	case KindCSBypass, KindSetupReserve, KindSetupFail, KindSetupAck,
		KindTeardownRelease, KindSlotSteal, KindSlotResize:
		return "cs"
	case KindInject, KindEject, KindSetupLatency, KindDLTAdd, KindDLTRemove:
		return "ni"
	case KindQueueDepth, KindVCOccupancy, KindSlotOccupancy, KindEnergySample:
		return "gauge"
	}
	return "pipe"
}

func isCounter(k Kind) bool {
	switch k {
	case KindQueueDepth, KindVCOccupancy, KindSlotOccupancy, KindEnergySample:
		return true
	}
	return false
}

// WriteTrace streams the ring's events as Chrome trace-event JSON
// (loadable by Perfetto and chrome://tracing). One thread per router and
// per NI, timestamps in microseconds with 1 cycle = 1 us, pipeline and
// protocol events as 1-cycle "X" slices, sampled gauges as "C" counters,
// and a packet's head flit linked across hops with "s"/"t"/"f" flow
// events keyed by packet id.
func WriteTrace(w io.Writer, ring *Ring, meta TraceMeta) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	first := true
	sep := func() string {
		if first {
			first = false
			return ""
		}
		return ","
	}
	if _, err := fmt.Fprint(bw, `{"traceEvents":[`); err != nil {
		return err
	}

	// Metadata: name the processes and one thread per node.
	fmt.Fprintf(bw, `%s{"ph":"M","pid":%d,"name":"process_name","args":{"name":"routers"}}`, sep(), pidRouters)
	fmt.Fprintf(bw, `%s{"ph":"M","pid":%d,"name":"process_name","args":{"name":"NIs"}}`, sep(), pidNIs)
	nodes := meta.Width * meta.Height
	for n := 0; n < nodes; n++ {
		x, y := n%meta.Width, n/meta.Width
		fmt.Fprintf(bw, `%s{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"router (%d,%d)"}}`,
			sep(), pidRouters, n, x, y)
		fmt.Fprintf(bw, `%s{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"ni (%d,%d)"}}`,
			sep(), pidNIs, n, x, y)
	}
	fmt.Fprintf(bw, `%s{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"global"}}`,
		sep(), pidRouters, globalTID)

	// flowState: 0 = unseen, 1 = started, 2 = finished.
	flowState := make(map[uint64]uint8)

	var werr error
	ring.Do(func(e Event) {
		if werr != nil {
			return
		}
		pid := eventPID(e.Kind)
		tid := int64(e.Node)
		if e.Node < 0 {
			pid, tid = pidRouters, globalTID
		}
		if isCounter(e.Kind) {
			_, werr = fmt.Fprintf(bw, `%s{"ph":"C","pid":%d,"tid":%d,"ts":%d,"name":"%s","cat":"%s","args":{"v":%d}}`,
				sep(), pid, tid, e.Cycle, e.Kind, eventCat(e.Kind), e.Val)
			return
		}
		_, werr = fmt.Fprintf(bw, `%s{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":1,"name":"%s","cat":"%s","args":{"pkt":%d,"seq":%d,"slot":%d,"val":%d,"a":%d,"b":%d}}`,
			sep(), pid, tid, e.Cycle, e.Kind, eventCat(e.Kind), e.Pkt, e.Seq, e.Slot, e.Val, e.A, e.B)
		if werr != nil {
			return
		}
		// Flow events tie a packet's head flit together across hops. The
		// ring may have dropped a packet's first hop, so the first sighting
		// of an id starts its flow regardless of where it occurs; ejection
		// finishes it and later sightings of a finished id are ignored.
		if e.Pkt == 0 {
			return
		}
		headHop := (e.Kind == KindLinkTraverse || e.Kind == KindInject) && e.Seq == 0
		eject := e.Kind == KindEject
		if !headHop && !eject {
			return
		}
		switch flowState[e.Pkt] {
		case 0:
			if eject {
				return // never saw the packet in flight; no flow to finish
			}
			flowState[e.Pkt] = 1
			_, werr = fmt.Fprintf(bw, `%s{"ph":"s","pid":%d,"tid":%d,"ts":%d,"name":"pkt","cat":"flow","id":"0x%x"}`,
				sep(), pid, tid, e.Cycle, e.Pkt)
		case 1:
			ph := "t"
			if eject {
				ph = "f"
				flowState[e.Pkt] = 2
			}
			bp := ""
			if ph == "f" {
				bp = `,"bp":"e"`
			}
			_, werr = fmt.Fprintf(bw, `%s{"ph":"%s","pid":%d,"tid":%d,"ts":%d,"name":"pkt","cat":"flow","id":"0x%x"%s}`,
				sep(), ph, pid, tid, e.Cycle, e.Pkt, bp)
		}
	})
	if werr != nil {
		return werr
	}

	if _, err := fmt.Fprint(bw, `],"displayTimeUnit":"ms","otherData":{`); err != nil {
		return err
	}
	keys := make([]string, 0, len(meta.OtherData))
	for k := range meta.OtherData {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		comma := ","
		if i == 0 {
			comma = ""
		}
		if _, err := fmt.Fprintf(bw, `%s%q:%q`, comma, k, meta.OtherData[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(bw, "}}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
