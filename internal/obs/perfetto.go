package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"tdmnoc/internal/topology"
)

// TraceMeta labels the exported trace. Width/Height give the mesh shape
// so router threads get human-readable "(x,y)" names; OtherData lands in
// the trace's otherData section (written in sorted key order so the
// output is deterministic).
type TraceMeta struct {
	Width, Height int
	OtherData     map[string]string
}

// globalTID is the thread id used for network-wide events (Node == -1),
// e.g. slot-table resizes decided by the central policy.
const globalTID = 1 << 20

// pid assignment: routers and NIs get separate Perfetto processes so
// their tracks group cleanly.
const (
	pidRouters = 1
	pidNIs     = 2
)

func eventPID(k Kind) int {
	switch k {
	case KindInject, KindEject, KindSetupLatency, KindDLTAdd, KindDLTRemove, KindQueueDepth:
		return pidNIs
	}
	return pidRouters
}

func eventCat(k Kind) string {
	switch k {
	case KindCSBypass, KindSetupReserve, KindSetupFail, KindSetupAck,
		KindTeardownRelease, KindSlotSteal, KindSlotResize:
		return "cs"
	case KindInject, KindEject, KindSetupLatency, KindDLTAdd, KindDLTRemove:
		return "ni"
	case KindQueueDepth, KindVCOccupancy, KindSlotOccupancy, KindEnergySample:
		return "gauge"
	}
	return "pipe"
}

func isCounter(k Kind) bool {
	switch k {
	case KindQueueDepth, KindVCOccupancy, KindSlotOccupancy, KindEnergySample:
		return true
	}
	return false
}

// mergeClass orders event kinds within one cycle the way the serial
// simulator emits them: window-boundary gauges and manager decisions
// (stamped with the post-step cycle, emitted before that cycle's ticks)
// sort first, compute-phase pipeline/protocol events second, and
// transfer-phase link traversals last.
func mergeClass(k Kind) int {
	switch k {
	case KindQueueDepth, KindVCOccupancy, KindSlotOccupancy, KindEnergySample, KindSlotResize:
		return 0
	case KindLinkTraverse:
		return 2
	}
	return 1
}

// mergeEmitter resolves the tile whose tick emitted e — the tiebreak
// within a (cycle, class) group. Compute-phase events carry the emitting
// tile in Node. A transfer-phase link traversal is emitted by the
// DOWNSTREAM router's tick but describes the upstream sender (Node = the
// sender, A = its output port), so the emitter is the neighbor across
// that port; a Local-port traversal is the NI ejecting to itself.
func mergeEmitter(e Event, mesh topology.Mesh) int32 {
	switch mergeClass(e.Kind) {
	case 0:
		return -1 // control shard only; stable sort keeps emission order
	case 2:
		p := topology.Port(e.A)
		if p == topology.Local {
			return e.Node
		}
		if nb, ok := mesh.Neighbor(topology.NodeID(e.Node), p); ok {
			return int32(nb)
		}
		return e.Node
	}
	return e.Node
}

// MergeRings concatenates the shard rings and stable-sorts by
// (cycle, mergeClass, emitting tile). Each tile is owned by exactly one
// worker and the control events live only in shard 0, so events with
// equal keys always come from the same shard and the stable sort
// preserves their true emission order: the merged timeline is
// byte-identical to what a single-shard serial run records, regardless
// of worker count. Allocates; export path only.
func MergeRings(rings []*Ring, width, height int) []Event {
	total := 0
	for _, r := range rings {
		total += r.Len()
	}
	events := make([]Event, 0, total)
	for _, r := range rings {
		events = r.AppendTo(events)
	}
	mesh := topology.NewMesh(width, height)
	type key struct {
		cycle   int64
		class   int32
		emitter int32
	}
	keys := make([]key, len(events))
	for i, e := range events {
		keys[i] = key{e.Cycle, int32(mergeClass(e.Kind)), mergeEmitter(e, mesh)}
	}
	idx := make([]int, len(events))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka.cycle != kb.cycle {
			return ka.cycle < kb.cycle
		}
		if ka.class != kb.class {
			return ka.class < kb.class
		}
		return ka.emitter < kb.emitter
	})
	out := make([]Event, len(events))
	for i, j := range idx {
		out[i] = events[j]
	}
	return out
}

// WriteTrace streams the ring's events as Chrome trace-event JSON.
// Single-ring convenience wrapper over WriteTraceEvents.
func WriteTrace(w io.Writer, ring *Ring, meta TraceMeta) error {
	return WriteTraceEvents(w, ring.Snapshot(), meta)
}

// WriteTraceEvents streams events (already in timeline order — a ring
// snapshot or a MergeRings result) as Chrome trace-event JSON (loadable
// by Perfetto and chrome://tracing). One thread per router and per NI,
// timestamps in microseconds with 1 cycle = 1 us, pipeline and protocol
// events as 1-cycle "X" slices, sampled gauges as "C" counters, and a
// packet's head flit linked across hops with "s"/"t"/"f" flow events
// keyed by packet id.
//
// Flow stitching is all-or-nothing per packet: a packet whose first
// recorded head-flit sighting is not its injection (the ring dropped the
// first hop) gets no flow events at all — a flow beginning mid-route
// with no begin anchor renders as a dangling arrow in Perfetto.
func WriteTraceEvents(w io.Writer, events []Event, meta TraceMeta) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	first := true
	sep := func() string {
		if first {
			first = false
			return ""
		}
		return ","
	}
	if _, err := fmt.Fprint(bw, `{"traceEvents":[`); err != nil {
		return err
	}

	// Metadata: name the processes and one thread per node.
	fmt.Fprintf(bw, `%s{"ph":"M","pid":%d,"name":"process_name","args":{"name":"routers"}}`, sep(), pidRouters)
	fmt.Fprintf(bw, `%s{"ph":"M","pid":%d,"name":"process_name","args":{"name":"NIs"}}`, sep(), pidNIs)
	nodes := meta.Width * meta.Height
	for n := 0; n < nodes; n++ {
		x, y := n%meta.Width, n/meta.Width
		fmt.Fprintf(bw, `%s{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"router (%d,%d)"}}`,
			sep(), pidRouters, n, x, y)
		fmt.Fprintf(bw, `%s{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"ni (%d,%d)"}}`,
			sep(), pidNIs, n, x, y)
	}
	fmt.Fprintf(bw, `%s{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"global"}}`,
		sep(), pidRouters, globalTID)

	// Pre-pass: a packet participates in flow stitching only if its first
	// flow-relevant sighting is the injection itself. Otherwise the ring
	// dropped the packet's first hop and stitching it would start the
	// flow mid-route — skip the whole flow atomically instead.
	flowOK := make(map[uint64]bool)
	for _, e := range events {
		if e.Pkt == 0 {
			continue
		}
		headHop := (e.Kind == KindLinkTraverse || e.Kind == KindInject) && e.Seq == 0
		if !headHop && e.Kind != KindEject {
			continue
		}
		if _, seen := flowOK[e.Pkt]; !seen {
			flowOK[e.Pkt] = e.Kind == KindInject
		}
	}

	// flowState: 0 = unseen, 1 = started, 2 = finished.
	flowState := make(map[uint64]uint8)

	var werr error
	for _, e := range events {
		if werr != nil {
			break
		}
		pid := eventPID(e.Kind)
		tid := int64(e.Node)
		if e.Node < 0 {
			pid, tid = pidRouters, globalTID
		}
		if isCounter(e.Kind) {
			_, werr = fmt.Fprintf(bw, `%s{"ph":"C","pid":%d,"tid":%d,"ts":%d,"name":"%s","cat":"%s","args":{"v":%d}}`,
				sep(), pid, tid, e.Cycle, e.Kind, eventCat(e.Kind), e.Val)
			continue
		}
		_, werr = fmt.Fprintf(bw, `%s{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":1,"name":"%s","cat":"%s","args":{"pkt":%d,"seq":%d,"slot":%d,"val":%d,"a":%d,"b":%d}}`,
			sep(), pid, tid, e.Cycle, e.Kind, eventCat(e.Kind), e.Pkt, e.Seq, e.Slot, e.Val, e.A, e.B)
		if werr != nil {
			break
		}
		// Flow events tie a packet's head flit together across hops:
		// injection starts the flow, link traversals step it, ejection
		// finishes it; later sightings of a finished id are ignored.
		if e.Pkt == 0 || !flowOK[e.Pkt] {
			continue
		}
		headHop := (e.Kind == KindLinkTraverse || e.Kind == KindInject) && e.Seq == 0
		eject := e.Kind == KindEject
		if !headHop && !eject {
			continue
		}
		switch flowState[e.Pkt] {
		case 0:
			flowState[e.Pkt] = 1
			_, werr = fmt.Fprintf(bw, `%s{"ph":"s","pid":%d,"tid":%d,"ts":%d,"name":"pkt","cat":"flow","id":"0x%x"}`,
				sep(), pid, tid, e.Cycle, e.Pkt)
		case 1:
			ph := "t"
			if eject {
				ph = "f"
				flowState[e.Pkt] = 2
			}
			bp := ""
			if ph == "f" {
				bp = `,"bp":"e"`
			}
			_, werr = fmt.Fprintf(bw, `%s{"ph":"%s","pid":%d,"tid":%d,"ts":%d,"name":"pkt","cat":"flow","id":"0x%x"%s}`,
				sep(), ph, pid, tid, e.Cycle, e.Pkt, bp)
		}
	}
	if werr != nil {
		return werr
	}

	if _, err := fmt.Fprint(bw, `],"displayTimeUnit":"ms","otherData":{`); err != nil {
		return err
	}
	keys := make([]string, 0, len(meta.OtherData))
	for k := range meta.OtherData {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		comma := ","
		if i == 0 {
			comma = ""
		}
		if _, err := fmt.Fprintf(bw, `%s%q:%q`, comma, k, meta.OtherData[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(bw, "}}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
