package obs

import (
	"tdmnoc/internal/topology"
)

// LatencyBuckets are the upper bounds (in cycles, inclusive) of the
// fixed setup-latency histogram. An extra overflow bucket catches
// everything above the last bound. The bounds double so the same
// buckets serve both an uncongested 4x4 mesh and a saturated 8x8 one.
var LatencyBuckets = [8]int64{8, 16, 32, 64, 128, 256, 512, 1024}

// Histogram is a fixed-bucket latency histogram. Counts[i] holds
// observations <= LatencyBuckets[i]; Counts[len(LatencyBuckets)] is the
// overflow bucket. All fields are plain integers so observation is
// allocation-free and the JSON form is deterministic.
type Histogram struct {
	Counts [len(LatencyBuckets) + 1]uint64 `json:"counts"`
	Sum    int64                           `json:"sum"`
	Total  uint64                          `json:"total"`
}

// Observe records one latency value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for ; i < len(LatencyBuckets); i++ {
		if v <= LatencyBuckets[i] {
			break
		}
	}
	h.Counts[i]++
	h.Sum += v
	h.Total++
}

// Sample is one closed telemetry window. Flit/steal/setup fields count
// occurrences within the window; the occupancy and queue fields are
// gauges captured at the window boundary; EnergyMilliPJ is the dynamic
// energy accrued during the window, in thousandths of a picojoule.
type Sample struct {
	Cycle         int64 `json:"cycle"`
	CSFlits       int64 `json:"cs_flits"`
	PSFlits       int64 `json:"ps_flits"`
	Steals        int64 `json:"steals"`
	SetupsOK      int64 `json:"setups_ok"`
	SetupsFailed  int64 `json:"setups_failed"`
	BufferedFlits int64 `json:"buffered_flits"`
	ReservedSlots int64 `json:"reserved_slots"`
	NIQueued      int64 `json:"ni_queued"`
	EnergyMilliPJ int64 `json:"energy_mpj"`
}

// Summary is the compact, timestamp-free JSON digest of a recorded run.
// It is a pure function of the simulation, so campaign records that
// embed it stay byte-identical between serial and parallel store runs.
type Summary struct {
	Cycles       int64     `json:"cycles"`
	Events       uint64    `json:"events"`
	RingDrops    uint64    `json:"ring_drops"`
	Injected     int64     `json:"injected"`
	Ejected      int64     `json:"ejected"`
	CSFlits      int64     `json:"cs_flits"`
	PSFlits      int64     `json:"ps_flits"`
	Steals       int64     `json:"steals"`
	SetupsOK     int64     `json:"setups_ok"`
	SetupsFailed int64     `json:"setups_failed"`
	SetupLatency Histogram `json:"setup_latency"`
	BucketLE     []int64   `json:"bucket_le"`
	Samples      []Sample  `json:"samples,omitempty"`
}

// RecorderConfig sizes a Recorder. The zero value of every field picks
// a sensible default; Nodes must be set to the mesh's router count.
type RecorderConfig struct {
	// Nodes is the number of routers/NIs (width * height).
	Nodes int
	// RingCapacity bounds the event timeline (default 1 << 16).
	RingCapacity int
	// SampleEvery closes a telemetry window every K cycles; 0 disables
	// time-series collection (the event ring still fills).
	SampleEvery int
	// MaxSamples bounds the retained windows, oldest dropped (default 4096).
	MaxSamples int
}

// Recorder is the standard Probe: it owns the event ring, the running
// totals, the setup-latency histogram, and the bounded time-series
// sample buffer. Everything is preallocated in NewRecorder; Emit and
// Sync never allocate.
type Recorder struct {
	ring  *Ring
	nodes int
	every int64

	events uint64
	cycles int64

	// linkFlits accumulates per-(node, output port) link traversals for
	// the utilization heatmaps, indexed node*NumPorts + port.
	linkFlits []int64

	injected, ejected    int64
	csFlits, psFlits     int64
	steals               int64
	setupsOK, setupsFail int64
	setupLatency         Histogram

	// win* are the counters of the currently open telemetry window.
	winCS, winPS, winSteals  int64
	winSetupOK, winSetupFail int64
	// winBuffered/Reserved/Queued/Energy accumulate the gauge emissions
	// of the current sampling round (the network emits them just before
	// the Sync that closes the window).
	winBuffered, winReserved, winQueued int64
	winEnergy                           int64
	lastEnergy                          int64

	samples  []Sample
	sampHead int
	sampN    int
}

// NewRecorder builds a Recorder, performing all allocation up front.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.RingCapacity <= 0 {
		cfg.RingCapacity = 1 << 16
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 4096
	}
	return &Recorder{
		ring:      NewRing(cfg.RingCapacity),
		nodes:     cfg.Nodes,
		every:     int64(cfg.SampleEvery),
		linkFlits: make([]int64, cfg.Nodes*int(topology.NumPorts)),
		samples:   make([]Sample, cfg.MaxSamples),
	}
}

// Emit implements Probe. It updates the running aggregates and stores
// the event in the ring, all without allocating.
func (r *Recorder) Emit(e Event) {
	r.events++
	switch e.Kind {
	case KindInject:
		r.injected++
	case KindEject:
		r.ejected++
	case KindLinkTraverse:
		if i := int(e.Node)*int(topology.NumPorts) + int(e.A); i >= 0 && i < len(r.linkFlits) {
			r.linkFlits[i]++
		}
		if e.B != 0 {
			r.csFlits++
			r.winCS++
		} else {
			r.psFlits++
			r.winPS++
		}
	case KindSlotSteal:
		r.steals++
		r.winSteals++
	case KindSetupLatency:
		if e.B != 0 {
			r.setupsOK++
			r.winSetupOK++
			r.setupLatency.Observe(e.Val)
		} else {
			r.setupsFail++
			r.winSetupFail++
		}
	case KindVCOccupancy:
		r.winBuffered += e.Val
	case KindSlotOccupancy:
		r.winReserved += e.Val
	case KindQueueDepth:
		r.winQueued += e.Val
	case KindEnergySample:
		r.winEnergy += e.Val
	}
	r.ring.Push(e)
}

// Sync implements Probe. At every SampleEvery-th cycle it closes the
// open telemetry window into the sample buffer.
func (r *Recorder) Sync(now int64) {
	r.cycles = now
	if r.every <= 0 || now == 0 || now%r.every != 0 {
		return
	}
	// Energy emissions carry cumulative meter readings; a window with no
	// emission (sampling disabled or misaligned) reports zero rather than
	// a bogus negative delta.
	var energyDelta int64
	if r.winEnergy != 0 {
		energyDelta = r.winEnergy - r.lastEnergy
		r.lastEnergy = r.winEnergy
	}
	s := Sample{
		Cycle:         now,
		CSFlits:       r.winCS,
		PSFlits:       r.winPS,
		Steals:        r.winSteals,
		SetupsOK:      r.winSetupOK,
		SetupsFailed:  r.winSetupFail,
		BufferedFlits: r.winBuffered,
		ReservedSlots: r.winReserved,
		NIQueued:      r.winQueued,
		EnergyMilliPJ: energyDelta,
	}
	r.winCS, r.winPS, r.winSteals = 0, 0, 0
	r.winSetupOK, r.winSetupFail = 0, 0
	r.winBuffered, r.winReserved, r.winQueued = 0, 0, 0
	r.winEnergy = 0
	if r.sampN < len(r.samples) {
		r.samples[(r.sampHead+r.sampN)%len(r.samples)] = s
		r.sampN++
	} else {
		r.samples[r.sampHead] = s
		r.sampHead = (r.sampHead + 1) % len(r.samples)
	}
}

// Ring exposes the event timeline for export.
func (r *Recorder) Ring() *Ring { return r.ring }

// Events returns the total number of events emitted (including any that
// have since been dropped from the ring).
func (r *Recorder) Events() uint64 { return r.events }

// Dropped returns the ring's drop counter.
func (r *Recorder) Dropped() uint64 { return r.ring.Dropped() }

// LinkFlits returns the cumulative flits sent by node through port.
func (r *Recorder) LinkFlits(node int, port topology.Port) int64 {
	i := node*int(topology.NumPorts) + int(port)
	if i < 0 || i >= len(r.linkFlits) {
		return 0
	}
	return r.linkFlits[i]
}

// Steals returns the cumulative slot-steal count.
func (r *Recorder) Steals() int64 { return r.steals }

// SetupLatency returns a copy of the setup-latency histogram.
func (r *Recorder) SetupLatency() Histogram { return r.setupLatency }

// Samples returns the retained telemetry windows, oldest first.
func (r *Recorder) Samples() []Sample {
	out := make([]Sample, r.sampN)
	for i := 0; i < r.sampN; i++ {
		out[i] = r.samples[(r.sampHead+i)%len(r.samples)]
	}
	return out
}

// Summary assembles the deterministic JSON digest.
func (r *Recorder) Summary() *Summary {
	le := make([]int64, len(LatencyBuckets))
	copy(le, LatencyBuckets[:])
	return &Summary{
		Cycles:       r.cycles,
		Events:       r.events,
		RingDrops:    r.ring.Dropped(),
		Injected:     r.injected,
		Ejected:      r.ejected,
		CSFlits:      r.csFlits,
		PSFlits:      r.psFlits,
		Steals:       r.steals,
		SetupsOK:     r.setupsOK,
		SetupsFailed: r.setupsFail,
		SetupLatency: r.setupLatency,
		BucketLE:     le,
		Samples:      r.Samples(),
	}
}
