package obs

import (
	"fmt"

	"tdmnoc/internal/topology"
)

// LatencyBuckets are the upper bounds (in cycles, inclusive) of the
// fixed setup-latency histogram. An extra overflow bucket catches
// everything above the last bound. The bounds double so the same
// buckets serve both an uncongested 4x4 mesh and a saturated 8x8 one.
var LatencyBuckets = [8]int64{8, 16, 32, 64, 128, 256, 512, 1024}

// Histogram is a fixed-bucket latency histogram. Counts[i] holds
// observations <= LatencyBuckets[i]; Counts[len(LatencyBuckets)] is the
// overflow bucket. All fields are plain integers so observation is
// allocation-free and the JSON form is deterministic.
type Histogram struct {
	Counts [len(LatencyBuckets) + 1]uint64 `json:"counts"`
	Sum    int64                           `json:"sum"`
	Total  uint64                          `json:"total"`
}

// Observe records one latency value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for ; i < len(LatencyBuckets); i++ {
		if v <= LatencyBuckets[i] {
			break
		}
	}
	h.Counts[i]++
	h.Sum += v
	h.Total++
}

// merge adds o's observations into h.
func (h *Histogram) merge(o *Histogram) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
	h.Total += o.Total
}

// Sample is one closed telemetry window. Flit/steal/setup fields count
// occurrences within the window; the occupancy and queue fields are
// gauges captured at the window boundary; EnergyMilliPJ is the dynamic
// energy accrued during the window, in thousandths of a picojoule.
type Sample struct {
	Cycle         int64 `json:"cycle"`
	CSFlits       int64 `json:"cs_flits"`
	PSFlits       int64 `json:"ps_flits"`
	Steals        int64 `json:"steals"`
	SetupsOK      int64 `json:"setups_ok"`
	SetupsFailed  int64 `json:"setups_failed"`
	BufferedFlits int64 `json:"buffered_flits"`
	ReservedSlots int64 `json:"reserved_slots"`
	NIQueued      int64 `json:"ni_queued"`
	EnergyMilliPJ int64 `json:"energy_mpj"`
}

// Summary is the compact, timestamp-free JSON digest of a recorded run.
// It is a pure function of the simulation, so campaign records that
// embed it stay byte-identical between serial and parallel store runs.
type Summary struct {
	Cycles    int64  `json:"cycles"`
	Events    uint64 `json:"events"`
	RingDrops uint64 `json:"ring_drops"`
	// DroppedWindows counts telemetry windows evicted from the bounded
	// sample buffer (oldest first). A nonzero value means Samples starts
	// DroppedWindows*SampleEvery cycles into the run, not at its head.
	DroppedWindows uint64    `json:"dropped_windows"`
	Injected       int64     `json:"injected"`
	Ejected        int64     `json:"ejected"`
	CSFlits        int64     `json:"cs_flits"`
	PSFlits        int64     `json:"ps_flits"`
	Steals         int64     `json:"steals"`
	SetupsOK       int64     `json:"setups_ok"`
	SetupsFailed   int64     `json:"setups_failed"`
	SetupLatency   Histogram `json:"setup_latency"`
	BucketLE       []int64   `json:"bucket_le"`
	Samples        []Sample  `json:"samples,omitempty"`
	// ShardRingDrops is the per-worker-shard breakdown of RingDrops.
	// Runtime-only (like campaign.Record.Cached): the JSON form of a
	// Summary must not depend on the worker count, but an in-process
	// consumer (nocsimd's Prometheus endpoint) wants to know which
	// worker's ring was undersized.
	ShardRingDrops []uint64 `json:"-"`
}

// RecorderConfig sizes a Recorder. The zero value of every field picks
// a sensible default; Nodes must be set to the mesh's router count.
type RecorderConfig struct {
	// Nodes is the number of routers/NIs (width * height).
	Nodes int
	// RingCapacity bounds each shard's event timeline, rounded up to a
	// power of two (default 1 << 16). With S shards the recorder retains
	// up to S * RingCapacity events.
	RingCapacity int
	// SampleEvery closes a telemetry window every K cycles; 0 disables
	// time-series collection (the event rings still fill).
	SampleEvery int
	// MaxSamples bounds the retained windows, oldest dropped (default 4096).
	MaxSamples int
	// Shards is the number of worker shards (default 1). Size it to the
	// executor's worker count; shard 0 doubles as the control shard for
	// between-cycle emissions.
	Shards int
	// KindMask selects which event kinds are recorded; 0 means all.
	// Masked kinds cost one branch at the emit site and update neither
	// aggregates nor rings.
	KindMask uint32
	// RingSample decimates the event timeline: each tile handle pushes
	// only every RingSample-th unmasked event to its ring (<= 1 records
	// everything). Aggregate counters stay exact, and the control handle
	// is exempt so sampled gauges survive. Per-tile counters keep the
	// sampled timeline identical across worker counts.
	RingSample int
	// TrackFlows aggregates exact per-(src, dst) flow counters (see
	// FlowStat / FlowStats) for profile extraction. Requires KindInject,
	// KindEject and KindSetupLatency to pass the kind mask. Off by
	// default: the first packet of each flow allocates its map entry.
	TrackFlows bool
}

// Recorder owns per-worker shards (event ring + counters each), the
// setup-latency histogram, and the bounded time-series sample buffer.
// Everything is preallocated in NewRecorder; Handle.Emit and Sync never
// allocate. During a cycle each executor worker writes only its own
// shard; between cycles the caller goroutine (which the executor's
// barriers synchronize with) runs Sync and the control-handle emissions.
type Recorder struct {
	shards []*Shard
	nodes  int
	every  int64

	mask       uint32
	ringSample int
	trackFlows bool

	control Handle

	cycles int64

	lastEnergy int64

	samples        []Sample
	sampHead       int
	sampN          int
	droppedWindows uint64
}

// NewRecorder builds a Recorder, performing all allocation up front.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.RingCapacity <= 0 {
		cfg.RingCapacity = 1 << 16
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 4096
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.KindMask == 0 {
		cfg.KindMask = KindMaskAll
	}
	if cfg.RingSample < 1 {
		cfg.RingSample = 1
	}
	r := &Recorder{
		shards:     make([]*Shard, cfg.Shards),
		nodes:      cfg.Nodes,
		every:      int64(cfg.SampleEvery),
		mask:       cfg.KindMask,
		ringSample: cfg.RingSample,
		trackFlows: cfg.TrackFlows,
		samples:    make([]Sample, cfg.MaxSamples),
	}
	for i := range r.shards {
		r.shards[i] = &Shard{
			ring:      NewRing(cfg.RingCapacity),
			linkFlits: make([]int64, cfg.Nodes*int(topology.NumPorts)),
		}
		if cfg.TrackFlows {
			r.shards[i].flows = make(map[uint64]*FlowStat)
		}
	}
	// The control handle never samples: between-cycle gauges and energy
	// meters are already decimated by the network's sample interval, and
	// dropping some would corrupt the windowed deltas.
	r.control = Handle{s: r.shards[0], mask: cfg.KindMask}
	return r
}

// Handle returns a fresh per-emitter handle bound to the given worker's
// shard. Every emitter (router/NI tile) must get its own handle — the
// ring-sampling counter is per-handle, and per-tile counters are what
// keep a sampled timeline independent of the worker count. Allocates;
// call during attach, not during cycles.
func (r *Recorder) Handle(worker int) *Handle {
	if worker < 0 || worker >= len(r.shards) {
		panic(fmt.Sprintf("obs: handle for worker %d of %d shards", worker, len(r.shards)))
	}
	return &Handle{s: r.shards[worker], mask: r.mask, every: uint32(r.ringSample)}
}

// ControlHandle returns the shared control handle on shard 0, for
// between-cycle emissions from the caller goroutine (sampled gauges,
// energy meters, slot resizes). It is exempt from ring sampling.
func (r *Recorder) ControlHandle() *Handle { return &r.control }

// Shards returns the number of worker shards.
func (r *Recorder) Shards() int { return len(r.shards) }

// Rings returns every shard's ring, indexed by worker. For export: feed
// them to MergeRings for the deterministic cross-shard timeline.
func (r *Recorder) Rings() []*Ring {
	out := make([]*Ring, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.ring
	}
	return out
}

// Ring exposes shard 0's event ring. With a single shard (serial runs)
// this is the complete timeline, matching the recorder's pre-sharding
// behaviour; multi-shard callers want Rings + MergeRings instead.
func (r *Recorder) Ring() *Ring { return r.shards[0].ring }

// Emit records one event through the control handle. Compatibility path
// for single-goroutine users (tests, trace replay); simulation emit
// sites hold their own per-tile handles.
func (r *Recorder) Emit(e Event) { r.control.Emit(e) }

// Sync must be called once between cycles (after the transfer phase and
// the network managers) with the post-step cycle number; the executor's
// barriers order the workers' shard writes before it. At every
// SampleEvery-th cycle it folds all shards' open window counters into
// one closed telemetry window. It never allocates.
func (r *Recorder) Sync(now int64) {
	r.cycles = now
	if r.every <= 0 || now == 0 || now%r.every != 0 {
		return
	}
	s := Sample{Cycle: now}
	var energy int64
	for _, sh := range r.shards {
		sh.takeWindow(&s)
		energy += sh.winEnergy
		sh.winEnergy = 0
	}
	// Energy emissions carry cumulative meter readings; a window with no
	// emission (sampling disabled or misaligned) reports zero rather than
	// a bogus negative delta.
	if energy != 0 {
		s.EnergyMilliPJ = energy - r.lastEnergy
		r.lastEnergy = energy
	}
	if r.sampN < len(r.samples) {
		r.samples[(r.sampHead+r.sampN)%len(r.samples)] = s
		r.sampN++
	} else {
		r.samples[r.sampHead] = s
		r.sampHead = (r.sampHead + 1) % len(r.samples)
		r.droppedWindows++
	}
}

// Events returns the total number of recorded events across all shards
// (including any that have since been dropped from the rings).
func (r *Recorder) Events() uint64 {
	var n uint64
	for _, s := range r.shards {
		n += s.events
	}
	return n
}

// Dropped returns the summed ring drop counters.
func (r *Recorder) Dropped() uint64 {
	var n uint64
	for _, s := range r.shards {
		n += s.ring.Dropped()
	}
	return n
}

// DroppedWindows returns how many telemetry windows were evicted from
// the bounded sample buffer.
func (r *Recorder) DroppedWindows() uint64 { return r.droppedWindows }

// LinkFlits returns the cumulative flits sent by node through port.
func (r *Recorder) LinkFlits(node int, port topology.Port) int64 {
	i := node*int(topology.NumPorts) + int(port)
	var n int64
	for _, s := range r.shards {
		if i >= 0 && i < len(s.linkFlits) {
			n += s.linkFlits[i]
		}
	}
	return n
}

// Steals returns the cumulative slot-steal count.
func (r *Recorder) Steals() int64 {
	var n int64
	for _, s := range r.shards {
		n += s.steals
	}
	return n
}

// SetupLatency returns the merged setup-latency histogram.
func (r *Recorder) SetupLatency() Histogram {
	var h Histogram
	for _, s := range r.shards {
		h.merge(&s.setupLatency)
	}
	return h
}

// Samples returns the retained telemetry windows, oldest first.
func (r *Recorder) Samples() []Sample {
	out := make([]Sample, r.sampN)
	for i := 0; i < r.sampN; i++ {
		out[i] = r.samples[(r.sampHead+i)%len(r.samples)]
	}
	return out
}

// Summary assembles the deterministic JSON digest. All per-shard totals
// are summed; because each tile writes exactly one shard, the sums equal
// what a single-shard recorder would have counted.
func (r *Recorder) Summary() *Summary {
	le := make([]int64, len(LatencyBuckets))
	copy(le, LatencyBuckets[:])
	sum := &Summary{
		Cycles:         r.cycles,
		DroppedWindows: r.droppedWindows,
		SetupLatency:   r.SetupLatency(),
		BucketLE:       le,
		Samples:        r.Samples(),
		ShardRingDrops: r.ShardDrops(),
	}
	for _, s := range r.shards {
		sum.Events += s.events
		sum.RingDrops += s.ring.Dropped()
		sum.Injected += s.injected
		sum.Ejected += s.ejected
		sum.CSFlits += s.csFlits
		sum.PSFlits += s.psFlits
		sum.Steals += s.steals
		sum.SetupsOK += s.setupsOK
		sum.SetupsFailed += s.setupsFail
	}
	return sum
}
