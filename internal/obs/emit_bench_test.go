package obs

import "testing"

// BenchmarkHandleEmit measures the hot emit path with the dominant
// event kind (link traversals), ring recording on, nothing masked.
func BenchmarkHandleEmit(b *testing.B) {
	r := NewRecorder(RecorderConfig{Nodes: 36, RingCapacity: 1 << 16})
	h := r.Handle(0)
	e := Event{Cycle: 1, Kind: KindLinkTraverse, Node: 7, A: 2, B: 1, Pkt: 99, Seq: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Cycle = int64(i)
		h.Emit(e)
	}
}
