package obs

import (
	"reflect"
	"testing"
)

// flowEvents is a small deterministic stream touching three flows:
// inject (dst stashed in Slot), eject (src recovered from Pkt>>40) and
// setup-latency events, in an order that interleaves the flows.
func flowEvents() []Event {
	return []Event{
		{Kind: KindInject, Cycle: 1, Node: 0, Slot: 5, Val: 5, B: 1, Pkt: 0<<40 | 1},
		{Kind: KindInject, Cycle: 1, Node: 3, Slot: 7, Val: 5, Pkt: 3<<40 | 1},
		{Kind: KindInject, Cycle: 2, Node: 0, Slot: 5, Val: 5, Pkt: 0<<40 | 2},
		{Kind: KindSetupLatency, Cycle: 3, Node: 0, Slot: 5, B: 1, Val: 12},
		{Kind: KindSetupLatency, Cycle: 4, Node: 3, Slot: 7, B: 0},
		{Kind: KindEject, Cycle: 9, Node: 5, Val: 8, Pkt: 0<<40 | 1},
		{Kind: KindEject, Cycle: 11, Node: 7, Val: 9, Pkt: 3<<40 | 1},
		{Kind: KindInject, Cycle: 12, Node: 1, Slot: 0, Val: 3, Pkt: 1<<40 | 1},
	}
}

// TestFlowStatsShardInvariant pins the merge contract behind profile
// determinism: spreading the same events across 4 worker shards yields
// exactly the serial recorder's FlowStats.
func TestFlowStatsShardInvariant(t *testing.T) {
	serial := NewRecorder(RecorderConfig{Nodes: 16, TrackFlows: true})
	for _, e := range flowEvents() {
		serial.Emit(e)
	}

	sharded := NewRecorder(RecorderConfig{Nodes: 16, Shards: 4, TrackFlows: true})
	handles := make([]*Handle, 4)
	for w := range handles {
		handles[w] = sharded.Handle(w)
	}
	for i, e := range flowEvents() {
		handles[i%4].Emit(e)
	}

	want := serial.FlowStats()
	got := sharded.FlowStats()
	if len(want) == 0 {
		t.Fatal("serial recorder tracked no flows")
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("sharded flow stats differ from serial:\n serial  %+v\n sharded %+v", want, got)
	}
}

func TestFlowStatsContents(t *testing.T) {
	r := NewRecorder(RecorderConfig{Nodes: 16, TrackFlows: true})
	if !r.FlowTracking() {
		t.Fatal("FlowTracking false with TrackFlows set")
	}
	for _, e := range flowEvents() {
		r.Emit(e)
	}
	flows := r.FlowStats()
	if len(flows) != 3 {
		t.Fatalf("tracked %d flows, want 3: %+v", len(flows), flows)
	}
	// Sorted by (Src, Dst): 0->5, 1->0, 3->7.
	f05 := flows[0]
	if f05.Src != 0 || f05.Dst != 5 {
		t.Fatalf("first flow = %d->%d", f05.Src, f05.Dst)
	}
	if f05.Packets != 2 || f05.Flits != 10 || f05.CSPackets != 1 {
		t.Errorf("0->5 inject counters = %+v", f05)
	}
	if f05.Ejected != 1 || f05.LatencySum != 8 {
		t.Errorf("0->5 eject counters = %+v", f05)
	}
	if f05.SetupsOK != 1 || f05.SetupLatencySum != 12 || f05.SetupsFailed != 0 {
		t.Errorf("0->5 setup counters = %+v", f05)
	}
	f37 := flows[2]
	if f37.Src != 3 || f37.Dst != 7 || f37.SetupsFailed != 1 || f37.SetupsOK != 0 {
		t.Errorf("3->7 = %+v", f37)
	}
}

func TestFlowStatsDisabled(t *testing.T) {
	r := NewRecorder(RecorderConfig{Nodes: 4})
	if r.FlowTracking() {
		t.Fatal("FlowTracking true without TrackFlows")
	}
	r.Emit(Event{Kind: KindInject, Cycle: 1, Node: 0, Slot: 1, Val: 5})
	if got := r.FlowStats(); got != nil {
		t.Errorf("FlowStats without tracking = %+v, want nil", got)
	}
	// Aggregates still count.
	if r.Summary().Injected != 1 {
		t.Error("inject not aggregated with tracking off")
	}
}

func TestShardDrops(t *testing.T) {
	r := NewRecorder(RecorderConfig{Nodes: 1, Shards: 2, RingCapacity: 8})
	h := r.Handle(1)
	for i := 0; i < 20; i++ {
		h.Emit(Event{Kind: KindInject, Cycle: int64(i)})
	}
	drops := r.ShardDrops()
	if len(drops) != 2 {
		t.Fatalf("ShardDrops len = %d, want 2", len(drops))
	}
	if drops[0] != 0 || drops[1] != 12 {
		t.Errorf("drops = %v, want [0 12]", drops)
	}
	if r.Dropped() != 12 {
		t.Errorf("Dropped() = %d, want 12", r.Dropped())
	}
	sum := r.Summary()
	if sum.RingDrops != 12 || len(sum.ShardRingDrops) != 2 || sum.ShardRingDrops[1] != 12 {
		t.Errorf("summary drops = %d / %v", sum.RingDrops, sum.ShardRingDrops)
	}
}
