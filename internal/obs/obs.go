// Package obs is the cycle-level observability subsystem: per-worker
// sharded event rings written through concrete per-tile Handles threaded
// into the router pipeline, the hybrid circuit-switching layer, the
// network interfaces and the power meters, with three sinks on top — a
// Chrome trace-event / Perfetto exporter, a time-series collector
// rendered via internal/textplot, and a compact JSON summary for the
// nocsimd service and the campaign result store.
//
// The contract that makes tracing affordable:
//
//   - Disabled path: every emission site is guarded by a plain nil
//     check on the owner's *Handle field. No call, no event
//     construction, no allocation — the zero-allocation steady state of
//     the cycle hot path is preserved bit-for-bit.
//   - Enabled path: Handle.Emit is a concrete (devirtualized) call that
//     checks a kind mask (a masked-out kind costs one branch), bumps the
//     owning Shard's counters, and pushes into that shard's bounded
//     power-of-two ring, preallocated up front. When a ring is full the
//     oldest event is overwritten and a drop counter increments; Emit
//     never allocates, so a traced steady-state cycle stays
//     allocation-free.
//   - Parallel path: each executor worker owns one Shard; tiles emit
//     only into their owner's shard, so no cross-worker sharing exists
//     during a cycle, and the executor's phase barriers order shard
//     writes before the caller's between-cycle Sync/export reads.
//     MergeRings reconstructs the single deterministic timeline at
//     export, byte-identical across worker counts.
//
// Handles run inside compute/transfer ticks; everything else on the
// Recorder (Sync, Summary, export) belongs to the caller goroutine
// between cycles.
package obs

// Kind classifies one observed event.
type Kind uint8

const (
	// KindInject: a packet's head flit was staged onto the local link
	// (Val = packet length in flits, B = 1 for circuit-switched).
	KindInject Kind = iota
	// KindEject: a packet fully reassembled at its destination NI
	// (Val = injection-to-ejection latency in cycles).
	KindEject
	// KindBufferWrite: a packet-switched flit entered an input VC buffer.
	KindBufferWrite
	// KindRouteCompute: the RC stage resolved a data route (A = in port,
	// B = out port).
	KindRouteCompute
	// KindVCAlloc: the VA stage granted a downstream VC (Val = VC index).
	KindVCAlloc
	// KindSwitchAlloc: the SA stage granted the crossbar (A = in, B = out).
	KindSwitchAlloc
	// KindSwitchTraverse: the ST stage moved a flit through the crossbar.
	KindSwitchTraverse
	// KindLinkTraverse: a flit crossed a link (LT). Node/A identify the
	// sending router and its output port; B = 1 for circuit-switched.
	KindLinkTraverse
	// KindCreditStall: an otherwise-ready VC lost its SA bid for lack of
	// downstream credits (A = in port, B = out port).
	KindCreditStall
	// KindCSBypass: a circuit-switched flit took the single-cycle bypass.
	KindCSBypass
	// KindSetupReserve: a setup message reserved slots at this router.
	KindSetupReserve
	// KindSetupFail: a setup message was rejected at this router.
	KindSetupFail
	// KindSetupAck: a setup converted into an ack here (B = 1 on success).
	KindSetupAck
	// KindTeardownRelease: a teardown released slots at this router.
	KindTeardownRelease
	// KindSlotSteal: a packet-switched flit used a reserved-but-idle slot.
	KindSlotSteal
	// KindSetupLatency: a source NI observed one setup round trip
	// (Val = request-to-ack cycles, B = 1 on success).
	KindSetupLatency
	// KindDLTAdd / KindDLTRemove: destination-lookup-table maintenance.
	KindDLTAdd
	KindDLTRemove
	// KindSlotResize: the dynamic sizing policy doubled the active
	// slot-table region (Val = new active size).
	KindSlotResize
	// KindQueueDepth: sampled NI injection backlog (gauge, Val = packets).
	KindQueueDepth
	// KindVCOccupancy: sampled buffered flits across a router's input VCs.
	KindVCOccupancy
	// KindSlotOccupancy: sampled reserved slot-table entries of a router
	// (Val = reserved entries, Slot = active region size).
	KindSlotOccupancy
	// KindEnergySample: cumulative per-component energy attribution
	// (A = power.Component index, Val = milli-picojoules since the last
	// meter reset).
	KindEnergySample

	numKinds
)

// String returns a short mnemonic (also the Perfetto event name).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

var kindNames = [numKinds]string{
	KindInject:          "inject",
	KindEject:           "eject",
	KindBufferWrite:     "bufw",
	KindRouteCompute:    "rc",
	KindVCAlloc:         "va",
	KindSwitchAlloc:     "sa",
	KindSwitchTraverse:  "st",
	KindLinkTraverse:    "lt",
	KindCreditStall:     "credit-stall",
	KindCSBypass:        "cs-bypass",
	KindSetupReserve:    "cs-setup",
	KindSetupFail:       "cs-setup-fail",
	KindSetupAck:        "cs-ack",
	KindTeardownRelease: "cs-teardown",
	KindSlotSteal:       "slot-steal",
	KindSetupLatency:    "setup-latency",
	KindDLTAdd:          "dlt-add",
	KindDLTRemove:       "dlt-remove",
	KindSlotResize:      "slot-resize",
	KindQueueDepth:      "ni-queue",
	KindVCOccupancy:     "vc-occupancy",
	KindSlotOccupancy:   "slot-occupancy",
	KindEnergySample:    "energy",
}

// Event is one observed fact. The field meanings vary slightly per Kind
// (see the Kind constants); unused fields are zero. Events are plain
// values with no pointers, so the ring buffer holds them without
// generating garbage.
type Event struct {
	// Cycle is the simulation cycle the event occurred in.
	Cycle int64
	// Pkt is the packet id, when the event concerns one.
	Pkt uint64
	// Val is the kind-specific scalar (latency, occupancy, energy, ...).
	Val int64
	// Node is the router / NI the event belongs to (-1 = network-wide).
	Node int32
	// Seq is the flit sequence number within its packet.
	Seq int32
	// Slot is the slot-table slot involved, when any.
	Slot int32
	// Kind classifies the event.
	Kind Kind
	// A and B are kind-specific small arguments (usually ports).
	A, B uint8
}
