package obs

// Ring is a bounded event buffer preallocated at construction. Push
// never allocates: when the ring is full the oldest event is overwritten
// and the drop counter increments. It is single-owner (probes run only
// under a serial executor) and makes no concurrency promises.
type Ring struct {
	buf     []Event
	head    int // index of the oldest event
	n       int // number of live events
	dropped uint64
}

// NewRing allocates a ring holding up to capacity events. A capacity
// below 1 is raised to 1 so Push is always well-defined.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Push appends e, overwriting the oldest event if the ring is full.
func (r *Ring) Push(e Event) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % len(r.buf)
	r.dropped++
}

// Len returns the number of live events.
func (r *Ring) Len() int { return r.n }

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Dropped returns how many events were overwritten since construction.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Snapshot copies the live events, oldest first, into a fresh slice.
// It allocates and is meant for end-of-run export, not the hot path.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Do calls fn for each live event, oldest first, without allocating.
func (r *Ring) Do(fn func(Event)) {
	for i := 0; i < r.n; i++ {
		fn(r.buf[(r.head+i)%len(r.buf)])
	}
}
