package obs

import (
	"math/bits"
	"unsafe"
)

// Ring is a bounded event buffer preallocated at construction. Push
// never allocates: when the ring is full the oldest event is overwritten
// and the drop counter increments. Capacity is rounded up to a power of
// two so Push indexes with a mask instead of two modulo operations —
// the ring sits on the traced cycle hot path. It is single-owner (each
// executor worker writes its own shard ring) and makes no concurrency
// promises of its own; cross-worker visibility is provided by the
// executor's phase barriers.
type Ring struct {
	buf     []Event
	mask    int // len(buf) - 1; len(buf) is a power of two
	head    int // index of the oldest event
	n       int // number of live events
	dropped uint64
}

// ceilPow2 returns the smallest power of two >= v (v >= 1).
func ceilPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(v-1))
}

// NewRing allocates a ring holding up to capacity events, rounded UP to
// the next power of two (so Cap() may exceed the request — callers that
// size rings for drop-free runs only ever gain headroom). A capacity
// below 1 is raised to 1 so Push is always well-defined. The buffer is
// touched once at construction so a huge ring does not page-fault lazily
// inside a measured run.
func NewRing(capacity int) *Ring {
	capacity = ceilPow2(capacity)
	buf := make([]Event, capacity)
	// Prefault: write one event per 4 KiB page. make() hands back lazily
	// mapped zero pages for large buffers; faulting them here keeps the
	// first wrap of a multi-hundred-MB ring out of benchmark windows.
	const eventsPerPage = 4096 / int(unsafe.Sizeof(Event{}))
	for i := 0; i < len(buf); i += eventsPerPage {
		buf[i] = Event{}
	}
	return &Ring{buf: buf, mask: capacity - 1}
}

// Push appends e, overwriting the oldest event if the ring is full.
func (r *Ring) Push(e Event) {
	r.buf[(r.head+r.n)&r.mask] = e
	if r.n > r.mask { // n == len(buf): the store above clobbered the oldest
		r.head = (r.head + 1) & r.mask
		r.dropped++
		return
	}
	r.n++
}

// Len returns the number of live events.
func (r *Ring) Len() int { return r.n }

// Cap returns the ring's capacity (a power of two >= the requested one).
func (r *Ring) Cap() int { return len(r.buf) }

// Dropped returns how many events were overwritten since construction.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Snapshot copies the live events, oldest first, into a fresh slice.
// It allocates and is meant for end-of-run export, not the hot path.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)&r.mask]
	}
	return out
}

// AppendTo appends the live events, oldest first, to dst and returns the
// extended slice. Export helper for merging several shard rings without
// one intermediate copy per shard.
func (r *Ring) AppendTo(dst []Event) []Event {
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.buf[(r.head+i)&r.mask])
	}
	return dst
}

// Do calls fn for each live event, oldest first, without allocating.
func (r *Ring) Do(fn func(Event)) {
	for i := 0; i < r.n; i++ {
		fn(r.buf[(r.head+i)&r.mask])
	}
}
