package obs

import (
	"fmt"
	"strings"

	"tdmnoc/internal/textplot"
	"tdmnoc/internal/topology"
)

// LinkGrid builds a per-link utilization grid for textplot.Heatmap. The
// grid interleaves routers and links: a W x H mesh becomes (2H-1) rows by
// (2W-1) columns where even/even cells are routers (local-port
// utilization, i.e. ejection-link traffic), the cells between two
// routers carry the inter-router link (the busier of its two
// directions), and the remaining odd/odd cells are zero padding.
func LinkGrid(rec *Recorder, width, height int, cycles int64) [][]float64 {
	if cycles <= 0 {
		cycles = 1
	}
	util := func(node int, p topology.Port) float64 {
		return float64(rec.LinkFlits(node, p)) / float64(cycles)
	}
	grid := make([][]float64, 2*height-1)
	for r := range grid {
		grid[r] = make([]float64, 2*width-1)
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			n := y*width + x
			grid[2*y][2*x] = util(n, topology.Local)
			if x+1 < width {
				east := util(n, topology.East)
				west := util(y*width+x+1, topology.West)
				grid[2*y][2*x+1] = max(east, west)
			}
			if y+1 < height {
				south := util(n, topology.South)
				north := util((y+1)*width+x, topology.North)
				grid[2*y+1][2*x] = max(south, north)
			}
		}
	}
	return grid
}

// RenderTimeSeries renders the collected telemetry windows as terminal
// plots: CS vs PS link-flit throughput, and buffered-flit / NI-backlog
// occupancy. every is the sampling interval used when recording.
func RenderTimeSeries(samples []Sample, every int) (string, error) {
	if len(samples) == 0 {
		return "", fmt.Errorf("obs: no telemetry samples collected")
	}
	if every < 1 {
		every = 1
	}
	n := len(samples)
	x := make([]float64, n)
	cs := make([]float64, n)
	ps := make([]float64, n)
	buf := make([]float64, n)
	que := make([]float64, n)
	for i, s := range samples {
		x[i] = float64(s.Cycle)
		cs[i] = float64(s.CSFlits) / float64(every)
		ps[i] = float64(s.PSFlits) / float64(every)
		buf[i] = float64(s.BufferedFlits)
		que[i] = float64(s.NIQueued)
	}

	var sb strings.Builder
	tp := textplot.Plot{
		Title:  fmt.Sprintf("link throughput (flits/cycle, window=%d)", every),
		XLabel: "cycle", YLabel: "flits/cyc",
		Width: 72, Height: 14,
	}
	if err := tp.Add(textplot.Series{Name: "CS", X: x, Y: cs, Marker: 'c'}); err != nil {
		return "", err
	}
	if err := tp.Add(textplot.Series{Name: "PS", X: x, Y: ps, Marker: 'p'}); err != nil {
		return "", err
	}
	sb.WriteString(tp.Render())
	sb.WriteByte('\n')

	op := textplot.Plot{
		Title:  "occupancy (sampled)",
		XLabel: "cycle", YLabel: "count",
		Width: 72, Height: 14,
	}
	if err := op.Add(textplot.Series{Name: "buffered flits", X: x, Y: buf, Marker: 'b'}); err != nil {
		return "", err
	}
	if err := op.Add(textplot.Series{Name: "NI queued pkts", X: x, Y: que, Marker: 'q'}); err != nil {
		return "", err
	}
	sb.WriteString(op.Render())
	return sb.String(), nil
}
