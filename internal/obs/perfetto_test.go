package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

type traceFile struct {
	TraceEvents []struct {
		Ph   string          `json:"ph"`
		Pid  int             `json:"pid"`
		Tid  int64           `json:"tid"`
		Ts   int64           `json:"ts"`
		Dur  int64           `json:"dur"`
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		ID   string          `json:"id"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

func writeTestTrace(t *testing.T, events []Event) (traceFile, []byte) {
	t.Helper()
	ring := NewRing(len(events) + 1)
	for _, e := range events {
		ring.Push(e)
	}
	var buf bytes.Buffer
	meta := TraceMeta{Width: 2, Height: 2, OtherData: map[string]string{"mode": "tdm", "seed": "1"}}
	if err := WriteTrace(&buf, ring, meta); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	return tf, buf.Bytes()
}

func TestWriteTraceFormat(t *testing.T) {
	events := []Event{
		{Kind: KindInject, Cycle: 5, Node: 0, Pkt: 7, Seq: 0, Val: 4},
		{Kind: KindLinkTraverse, Cycle: 6, Node: 0, A: 2, B: 1, Pkt: 7, Seq: 0},
		{Kind: KindLinkTraverse, Cycle: 7, Node: 1, A: 0, B: 1, Pkt: 7, Seq: 0},
		{Kind: KindVCOccupancy, Cycle: 8, Node: 2, Val: 5},
		{Kind: KindSlotResize, Cycle: 9, Node: -1, Val: 8},
		{Kind: KindEject, Cycle: 10, Node: 1, Pkt: 7, Seq: 0, Val: 5},
	}
	tf, raw := writeTestTrace(t, events)

	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	if tf.OtherData["mode"] != "tdm" || tf.OtherData["seed"] != "1" {
		t.Errorf("otherData = %v", tf.OtherData)
	}

	var metas, slices, counters, flows int
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
		case "X":
			slices++
			if e.Dur != 1 {
				t.Errorf("slice %s dur = %d, want 1", e.Name, e.Dur)
			}
		case "C":
			counters++
			var args struct {
				V int64 `json:"v"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil || args.V != 5 {
				t.Errorf("counter args = %s", e.Args)
			}
		case "s", "t", "f":
			flows++
			if e.Name != "pkt" || e.Cat != "flow" || e.ID != "0x7" {
				t.Errorf("flow event %+v malformed", e)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	// 2 process names + 2*4 thread names + 1 global thread.
	if metas != 11 {
		t.Errorf("metadata events = %d, want 11", metas)
	}
	if slices != 5 || counters != 1 {
		t.Errorf("slices/counters = %d/%d, want 5/1", slices, counters)
	}
	// inject starts the flow, second link hop continues it, eject ends it
	// (the first link hop is on the same node+cycle+1 as the start).
	if flows != 4 {
		t.Errorf("flow events = %d, want 4", flows)
	}

	// The network-global resize event lands on the dedicated global track.
	found := false
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" && e.Name == "slot-resize" {
			found = true
			if e.Tid != globalTID || e.Pid != pidRouters {
				t.Errorf("global event on pid/tid %d/%d", e.Pid, e.Tid)
			}
		}
	}
	if !found {
		t.Error("slot-resize slice missing")
	}

	// Finish flag: the "f" event must bind to the enclosing slice.
	if !bytes.Contains(raw, []byte(`"bp":"e"`)) {
		t.Error(`flow finish lacks "bp":"e"`)
	}
}

// TestWriteTraceFlowPairing: no duplicate starts, no continue/finish
// before a start, and packets whose first sighting is not their
// injection (ring truncation) get no flow events at all.
func TestWriteTraceFlowPairing(t *testing.T) {
	events := []Event{
		{Kind: KindEject, Cycle: 1, Node: 0, Pkt: 99},               // unseen: no flow
		{Kind: KindLinkTraverse, Cycle: 2, Node: 0, Pkt: 5},         // truncated: inject dropped
		{Kind: KindLinkTraverse, Cycle: 3, Node: 1, Pkt: 5},         // still no flow
		{Kind: KindEject, Cycle: 4, Node: 1, Pkt: 5},                // still no flow
		{Kind: KindLinkTraverse, Cycle: 6, Node: 0, Pkt: 6, Seq: 1}, // body flit: no flow
		{Kind: KindInject, Cycle: 7, Node: 2, Pkt: 8},               // complete packet: flows
		{Kind: KindLinkTraverse, Cycle: 8, Node: 2, Pkt: 8},
		{Kind: KindEject, Cycle: 9, Node: 3, Pkt: 8},
		{Kind: KindLinkTraverse, Cycle: 10, Node: 1, Pkt: 8}, // after finish: ignored
	}
	tf, _ := writeTestTrace(t, events)

	state := map[string]int{} // id -> 0 unseen, 1 started, 2 finished
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "s":
			if state[e.ID] != 0 {
				t.Errorf("duplicate flow start for %s", e.ID)
			}
			state[e.ID] = 1
		case "t":
			if state[e.ID] != 1 {
				t.Errorf("flow continue for %s in state %d", e.ID, state[e.ID])
			}
		case "f":
			if state[e.ID] != 1 {
				t.Errorf("flow finish for %s in state %d", e.ID, state[e.ID])
			}
			state[e.ID] = 2
		}
	}
	if len(state) != 1 || state["0x8"] != 2 {
		t.Errorf("flow states = %v, want only 0x8 finished", state)
	}
}

// TestWriteTraceTruncatedFlowsSkippedAtomically is the regression test
// for the dangling-flow exporter bug: with a deliberately undersized
// ring that drops a packet's injection and first hops, the exporter must
// not stitch the surviving tail into a flow that begins mid-route —
// the packet's flow events are skipped as a unit, while a packet whose
// full trajectory survived still gets a complete s/t/f chain.
func TestWriteTraceTruncatedFlowsSkippedAtomically(t *testing.T) {
	var events []Event
	// Packet 1: full trajectory, emitted late enough to survive the ring.
	// Packet 2: its inject and first hop are emitted first, so the
	// undersized ring evicts exactly those.
	events = append(events,
		Event{Kind: KindInject, Cycle: 1, Node: 0, Pkt: 2},
		Event{Kind: KindLinkTraverse, Cycle: 2, Node: 0, A: 2, Pkt: 2},
	)
	for i := 0; i < 6; i++ { // filler slices to force the wrap
		events = append(events, Event{Kind: KindSwitchTraverse, Cycle: int64(3 + i), Node: 1, Pkt: 0})
	}
	events = append(events,
		Event{Kind: KindLinkTraverse, Cycle: 10, Node: 1, A: 2, Pkt: 2}, // survives, but truncated
		Event{Kind: KindInject, Cycle: 11, Node: 2, Pkt: 1},
		Event{Kind: KindLinkTraverse, Cycle: 12, Node: 2, A: 1, Pkt: 1},
		Event{Kind: KindEject, Cycle: 13, Node: 0, Pkt: 1},
		Event{Kind: KindEject, Cycle: 14, Node: 3, Pkt: 2}, // truncated tail
	)

	ring := NewRing(8) // undersized on purpose: 13 pushes, 5 drops
	for _, e := range events {
		ring.Push(e)
	}
	if ring.Dropped() == 0 {
		t.Fatal("test setup broken: ring did not drop")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ring, TraceMeta{Width: 2, Height: 2}); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	flows := map[string][]string{}
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "s", "t", "f":
			flows[e.ID] = append(flows[e.ID], e.Ph)
		}
	}
	if _, ok := flows["0x2"]; ok {
		t.Errorf("truncated packet 0x2 got flow events %v, want none", flows["0x2"])
	}
	got := flows["0x1"]
	if len(got) == 0 || got[0] != "s" || got[len(got)-1] != "f" {
		t.Errorf("intact packet 0x1 flow chain = %v, want s...f", got)
	}
}

// TestWriteTraceDeterministic: identical rings encode to identical bytes.
func TestWriteTraceDeterministic(t *testing.T) {
	events := []Event{
		{Kind: KindInject, Cycle: 1, Pkt: 3},
		{Kind: KindLinkTraverse, Cycle: 2, Node: 1, Pkt: 3, B: 1},
		{Kind: KindEject, Cycle: 3, Node: 1, Pkt: 3},
	}
	_, a := writeTestTrace(t, events)
	_, b := writeTestTrace(t, events)
	if !bytes.Equal(a, b) {
		t.Error("trace bytes differ between identical runs")
	}
}
