package topology

import (
	"testing"
	"testing/quick"
)

func TestPortString(t *testing.T) {
	want := map[Port]string{Local: "L", North: "N", East: "E", South: "S", West: "W"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Port %d String() = %q, want %q", p, p.String(), s)
		}
	}
	if Port(9).String() != "Port(9)" {
		t.Errorf("unknown port String() = %q", Port(9).String())
	}
}

func TestPortOpposite(t *testing.T) {
	pairs := map[Port]Port{North: South, South: North, East: West, West: East, Local: Local}
	for p, want := range pairs {
		if p.Opposite() != want {
			t.Errorf("%v.Opposite() = %v, want %v", p, p.Opposite(), want)
		}
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	m := NewMesh(6, 6)
	for id := NodeID(0); id < NodeID(m.Nodes()); id++ {
		c := m.Coord(id)
		if !m.Contains(c) {
			t.Fatalf("coord %v of node %d outside mesh", c, id)
		}
		if m.ID(c) != id {
			t.Fatalf("round trip failed for node %d: coord %v -> %d", id, c, m.ID(c))
		}
	}
}

func TestMeshRectangular(t *testing.T) {
	m := NewMesh(4, 2)
	if m.Nodes() != 8 {
		t.Fatalf("4x2 mesh has %d nodes", m.Nodes())
	}
	if c := m.Coord(5); c != (Coord{X: 1, Y: 1}) {
		t.Fatalf("node 5 at %v", c)
	}
}

func TestNewMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMesh(0, 3) did not panic")
		}
	}()
	NewMesh(0, 3)
}

func TestMeshNeighbor(t *testing.T) {
	m := NewMesh(3, 3)
	center := m.ID(Coord{1, 1})
	cases := []struct {
		p    Port
		want Coord
	}{
		{North, Coord{1, 0}},
		{South, Coord{1, 2}},
		{East, Coord{2, 1}},
		{West, Coord{0, 1}},
	}
	for _, c := range cases {
		n, ok := m.Neighbor(center, c.p)
		if !ok || n != m.ID(c.want) {
			t.Errorf("neighbor %v of center = (%d,%v), want %v", c.p, n, ok, c.want)
		}
	}
	// Edges have no outward neighbours.
	if _, ok := m.Neighbor(m.ID(Coord{0, 0}), North); ok {
		t.Error("corner has a north neighbour")
	}
	if _, ok := m.Neighbor(m.ID(Coord{0, 0}), West); ok {
		t.Error("corner has a west neighbour")
	}
	// Local port never leads anywhere.
	if _, ok := m.Neighbor(center, Local); ok {
		t.Error("local port has a neighbour")
	}
}

func TestNeighborSymmetry(t *testing.T) {
	// Property: if B is A's neighbour via p, then A is B's neighbour via
	// p.Opposite().
	m := NewMesh(5, 4)
	for id := NodeID(0); id < NodeID(m.Nodes()); id++ {
		for _, p := range []Port{North, East, South, West} {
			n, ok := m.Neighbor(id, p)
			if !ok {
				continue
			}
			back, ok2 := m.Neighbor(n, p.Opposite())
			if !ok2 || back != id {
				t.Fatalf("asymmetric link: %d -%v-> %d -%v-> (%d,%v)", id, p, n, p.Opposite(), back, ok2)
			}
		}
	}
}

func TestHopDistance(t *testing.T) {
	m := NewMesh(6, 6)
	if d := m.HopDistance(m.ID(Coord{0, 0}), m.ID(Coord{5, 5})); d != 10 {
		t.Errorf("corner-to-corner distance %d, want 10", d)
	}
	if d := m.HopDistance(3, 3); d != 0 {
		t.Errorf("self distance %d, want 0", d)
	}
}

func TestHopDistanceProperties(t *testing.T) {
	m := NewMesh(8, 8)
	f := func(a8, b8 uint8) bool {
		a := NodeID(int(a8) % m.Nodes())
		b := NodeID(int(b8) % m.Nodes())
		d := m.HopDistance(a, b)
		// Symmetry, identity, and triangle inequality via node 0.
		if d != m.HopDistance(b, a) {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		return m.HopDistance(a, 0)+m.HopDistance(0, b) >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacent(t *testing.T) {
	m := NewMesh(6, 6)
	if !m.Adjacent(0, 1) || !m.Adjacent(0, 6) {
		t.Error("expected adjacency along mesh links")
	}
	if m.Adjacent(0, 7) {
		t.Error("diagonal nodes reported adjacent")
	}
	if m.Adjacent(5, 5) {
		t.Error("node adjacent to itself")
	}
	// Row wrap must not create adjacency: node 5 = (5,0), node 6 = (0,1).
	if m.Adjacent(5, 6) {
		t.Error("row-wrap nodes reported adjacent")
	}
}
