// Package topology models the 2D mesh the paper evaluates: a k-by-k grid of
// routers, each with five ports (four cardinal directions plus a local port
// that attaches the tile's network interface).
package topology

import "fmt"

// Port identifies one of a router's five ports.
type Port uint8

const (
	// Local attaches the tile (core / cache / memory controller NI).
	Local Port = iota
	North
	East
	South
	West
	// NumPorts is the router radix for a 2D mesh.
	NumPorts
)

// String returns the conventional short name of the port.
func (p Port) String() string {
	switch p {
	case Local:
		return "L"
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	}
	return fmt.Sprintf("Port(%d)", uint8(p))
}

// Opposite returns the port on the far side of a link: a flit leaving a
// router through East arrives at the neighbour's West port.
func (p Port) Opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

// NodeID numbers the tiles of a mesh row-major: id = y*width + x.
type NodeID int

// Coord is a tile position; x grows eastwards, y grows southwards.
type Coord struct {
	X, Y int
}

// Mesh is a rectangular 2D mesh of Width x Height tiles.
type Mesh struct {
	Width, Height int
}

// NewMesh returns a mesh of the given dimensions. It panics on
// non-positive dimensions, which are always a programming error.
func NewMesh(width, height int) Mesh {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("topology: invalid mesh %dx%d", width, height))
	}
	return Mesh{Width: width, Height: height}
}

// Nodes returns the number of tiles in the mesh.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// Coord returns the position of node id.
func (m Mesh) Coord(id NodeID) Coord {
	return Coord{X: int(id) % m.Width, Y: int(id) / m.Width}
}

// ID returns the node at position c.
func (m Mesh) ID(c Coord) NodeID {
	return NodeID(c.Y*m.Width + c.X)
}

// Contains reports whether c lies inside the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.Width && c.Y >= 0 && c.Y < m.Height
}

// Neighbor returns the node reached by leaving id through port p, and
// whether such a neighbour exists (edge routers have no neighbour on
// outward-facing ports).
func (m Mesh) Neighbor(id NodeID, p Port) (NodeID, bool) {
	c := m.Coord(id)
	switch p {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return 0, false
	}
	if !m.Contains(c) {
		return 0, false
	}
	return m.ID(c), true
}

// HopDistance returns the minimal hop count between two nodes
// (Manhattan distance on the mesh).
func (m Mesh) HopDistance(a, b NodeID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// Adjacent reports whether a and b are one hop apart. A node is not
// adjacent to itself. Vicinity-sharing (Section III-A2) uses this to decide
// whether a message for Dest2 may ride a circuit terminating at Dest1.
func (m Mesh) Adjacent(a, b NodeID) bool {
	return m.HopDistance(a, b) == 1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
