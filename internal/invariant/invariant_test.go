package invariant

import (
	"hash/fnv"
	"testing"
)

// TestHasherMatchesStdlibFNV pins the byte-level hash to the canonical
// FNV-1a 64-bit algorithm, so a digest can be reproduced outside the
// simulator.
func TestHasherMatchesStdlibFNV(t *testing.T) {
	h := NewHasher()
	ref := fnv.New64a()
	data := []byte{0, 1, 2, 0xff, 0x80, 42}
	for _, b := range data {
		h.Byte(b)
	}
	ref.Write(data)
	if h.Sum() != ref.Sum64() {
		t.Fatalf("Hasher = %016x, stdlib fnv-1a = %016x", h.Sum(), ref.Sum64())
	}
}

func TestHasherValueEncodings(t *testing.T) {
	// Uint64 must be order-sensitive and width-stable: the same value
	// always hashes identically, different values differently.
	a, b, c := NewHasher(), NewHasher(), NewHasher()
	a.Uint64(1)
	a.Uint64(2)
	b.Uint64(1)
	b.Uint64(2)
	c.Uint64(2)
	c.Uint64(1)
	if a.Sum() != b.Sum() {
		t.Error("identical sequences hash differently")
	}
	if a.Sum() == c.Sum() {
		t.Error("swapped sequence hashes identically")
	}
	// Int folds negatives without collapsing onto small positives.
	n, p := NewHasher(), NewHasher()
	n.Int(-1)
	p.Int(1)
	if n.Sum() == p.Sum() {
		t.Error("Int(-1) collides with Int(1)")
	}
	tr, fa := NewHasher(), NewHasher()
	tr.Bool(true)
	fa.Bool(false)
	if tr.Sum() == fa.Sum() {
		t.Error("Bool values collide")
	}
}

func TestCheckerCadence(t *testing.T) {
	c := NewChecker(0)
	if c.Interval() != 1 {
		t.Errorf("interval 0 normalised to %d, want 1", c.Interval())
	}
	for now := int64(0); now < 5; now++ {
		if !c.Due(now) {
			t.Errorf("every-cycle checker not due at %d", now)
		}
	}
	c4 := NewChecker(4)
	due := 0
	for now := int64(0); now < 16; now++ {
		if c4.Due(now) {
			due++
		}
	}
	if due != 4 {
		t.Errorf("interval-4 checker due %d times in 16 cycles, want 4", due)
	}
}

func TestCheckerStorageCap(t *testing.T) {
	c := NewChecker(1)
	for i := 0; i < MaxStoredViolations+10; i++ {
		c.Report(int64(i), i, "credit", "d")
	}
	if c.Count() != int64(MaxStoredViolations+10) {
		t.Errorf("Count = %d, want %d", c.Count(), MaxStoredViolations+10)
	}
	vs := c.Violations()
	if len(vs) != MaxStoredViolations {
		t.Fatalf("stored %d, want cap %d", len(vs), MaxStoredViolations)
	}
	if vs[0].Cycle != 0 || vs[0].Router != 0 {
		t.Errorf("first stored violation = %+v, want the earliest report", vs[0])
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// checker's record.
	vs[0].Kind = "tampered"
	if c.Violations()[0].Kind != "credit" {
		t.Error("Violations() exposes internal storage")
	}
}

func TestCheckerRollingDigest(t *testing.T) {
	a, b := NewChecker(1), NewChecker(1)
	for _, d := range []uint64{7, 9, 11} {
		a.Roll(d)
		b.Roll(d)
	}
	if a.Digest() != b.Digest() {
		t.Error("identical state sequences give different rolling digests")
	}
	if a.LastStateDigest() != 11 {
		t.Errorf("LastStateDigest = %d, want 11", a.LastStateDigest())
	}
	c := NewChecker(1)
	c.Roll(9)
	c.Roll(7)
	c.Roll(11)
	if c.Digest() == a.Digest() {
		t.Error("reordered state sequence gives the same rolling digest")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Cycle: 12, Router: 3, Kind: "credit", Detail: "vc 1 short"}
	if got, want := v.String(), "cycle 12 router 3 credit: vc 1 short"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	n := Violation{Cycle: 4, Router: -1, Kind: "conservation", Detail: "1 leaked"}
	if got, want := n.String(), "cycle 4 network conservation: 1 leaked"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
