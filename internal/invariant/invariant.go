// Package invariant is the runtime checking layer of the simulator: an
// optional, zero-dependency collector for protocol-invariant violations
// (flit conservation, credit consistency, slot-table ownership) and a
// rolling FNV-1a digest of the full simulation state that makes a
// serial-vs-parallel divergence detectable at the first differing cycle
// instead of in final statistics.
//
// The package itself knows nothing about routers or NIs; it only
// provides the Checker (violation sink + cadence + rolling digest) and
// the Hasher. The network, router and hybrid packages feed it.
package invariant

import "fmt"

// Violation is one detected invariant break, with enough context to
// reproduce: the cycle it was detected at, the router (tile) it was
// detected on (-1 for network-wide checks like flit conservation), the
// invariant kind and a human-readable detail line.
type Violation struct {
	Cycle  int64  `json:"cycle"`
	Router int    `json:"router"` // -1 for network-level invariants
	Kind   string `json:"kind"`   // "conservation" | "credit" | "slot-table" | "pipeline"
	Detail string `json:"detail"`
}

// String formats the violation for logs and test failures.
func (v Violation) String() string {
	if v.Router < 0 {
		return fmt.Sprintf("cycle %d network %s: %s", v.Cycle, v.Kind, v.Detail)
	}
	return fmt.Sprintf("cycle %d router %d %s: %s", v.Cycle, v.Router, v.Kind, v.Detail)
}

// MaxStoredViolations bounds the violations a Checker keeps. A single
// broken invariant (e.g. a leaked flit) re-fires on every subsequent
// check, so the count can grow without bound while the first few
// reports carry all the diagnostic value.
const MaxStoredViolations = 64

// Checker accumulates violations and the rolling state digest for one
// network instance. It is not goroutine-safe: all checks run serially
// in the between-cycle management step, outside the executor phases.
type Checker struct {
	interval int64
	count    int64
	stored   []Violation
	digest   uint64
	last     uint64
}

// NewChecker builds a checker that is due every interval cycles
// (interval <= 1 means every cycle).
func NewChecker(interval int) *Checker {
	if interval < 1 {
		interval = 1
	}
	return &Checker{interval: int64(interval), digest: fnvOffset}
}

// Interval returns the checking cadence in cycles.
func (c *Checker) Interval() int { return int(c.interval) }

// Due reports whether checks should run at cycle now.
func (c *Checker) Due(now int64) bool { return now%c.interval == 0 }

// Report records one violation. The first MaxStoredViolations are kept;
// the rest only count.
func (c *Checker) Report(cycle int64, router int, kind, detail string) {
	c.count++
	if len(c.stored) < MaxStoredViolations {
		c.stored = append(c.stored, Violation{Cycle: cycle, Router: router, Kind: kind, Detail: detail})
	}
}

// Count returns the total violations seen (including unstored ones).
func (c *Checker) Count() int64 { return c.count }

// Violations returns a copy of the stored violations.
func (c *Checker) Violations() []Violation {
	out := make([]Violation, len(c.stored))
	copy(out, c.stored)
	return out
}

// Roll folds one cycle's state digest into the rolling digest and
// remembers it as the last per-cycle digest.
func (c *Checker) Roll(stateDigest uint64) {
	c.last = stateDigest
	h := Hasher{sum: c.digest}
	h.Uint64(stateDigest)
	c.digest = h.Sum()
}

// Digest returns the rolling digest over every checked cycle. Two runs
// of the same seeded configuration must produce equal rolling digests
// regardless of executor parallelism.
func (c *Checker) Digest() uint64 { return c.digest }

// LastStateDigest returns the most recent per-cycle state digest.
func (c *Checker) LastStateDigest() uint64 { return c.last }

// FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hasher is an incremental FNV-1a 64-bit hash over simulation state.
// The zero value is NOT ready to use; construct with NewHasher (or
// start from another hasher's Sum).
type Hasher struct {
	sum uint64
}

// NewHasher returns a hasher at the FNV offset basis.
func NewHasher() *Hasher { return &Hasher{sum: fnvOffset} }

// Byte folds one byte.
func (h *Hasher) Byte(b byte) {
	h.sum = (h.sum ^ uint64(b)) * fnvPrime
}

// Uint64 folds an unsigned 64-bit value, little-endian.
func (h *Hasher) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		h.Byte(byte(v >> (8 * i)))
	}
}

// Int64 folds a signed 64-bit value.
func (h *Hasher) Int64(v int64) { h.Uint64(uint64(v)) }

// Int folds an int.
func (h *Hasher) Int(v int) { h.Uint64(uint64(int64(v))) }

// Bool folds a boolean.
func (h *Hasher) Bool(b bool) {
	if b {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
}

// Sum returns the current hash value.
func (h *Hasher) Sum() uint64 { return h.sum }
