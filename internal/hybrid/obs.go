package hybrid

import "tdmnoc/internal/obs"

// SampleTables emits a slot-table occupancy gauge for one router's
// tables: Val = reserved entries across all input ports, Slot = the
// active (powered) region size. Called by the network's periodic
// telemetry pass; p must be non-nil.
func SampleTables(p *obs.Handle, now int64, node int, t *RouterTables) {
	if t == nil || !p.Wants(obs.KindSlotOccupancy) {
		return
	}
	p.Emit(obs.Event{Cycle: now, Kind: obs.KindSlotOccupancy,
		Node: int32(node), Val: int64(t.ReservedEntries()), Slot: int32(t.Active())})
}
