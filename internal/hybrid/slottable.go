// Package hybrid holds the data structures and policies that turn a
// canonical packet-switched router into the paper's TDM hybrid-switched
// router: per-input-port slot tables (Section II, Fig. 1), the destination
// lookup table used by hitchhiker-sharing (Section III-A1), the dynamic
// slot-table sizing policy (Section II-C), and the aggressive VC power
// gating policy (Section III-B).
//
// The package is deliberately free of router mechanics — it is pure state
// plus decision logic — so both the hybrid router pipeline
// (internal/router) and the network interfaces (internal/network) can use
// it, and so each behaviour is unit-testable in isolation.
package hybrid

import (
	"fmt"

	"tdmnoc/internal/topology"
)

// GracePeriod is how many cycles a released slot keeps routing
// circuit-switched flits before becoming reusable. Teardown messages
// travel the packet-switched network while circuit-switched flits from
// path-sharing nodes may still be in flight behind them; the grace window
// lets those flits land instead of being misrouted. It exceeds the
// worst-case circuit flight time of the largest evaluated mesh (16x16).
const GracePeriod = 128

// SlotEntry is one row of a slot table: a valid bit and an output port
// (the hardware cost the paper describes), plus the release-grace
// timestamp used by the simulator's lazy teardown.
type SlotEntry struct {
	Valid bool
	Out   topology.Port
	// GraceUntil keeps the entry routing (but not reservable) until the
	// given cycle after a release.
	GraceUntil int64
}

// SlotTable is the per-input-port reservation table. Only the first
// Active() entries are powered; the rest are power-gated until the dynamic
// sizing policy doubles the active region (Section II-C).
type SlotTable struct {
	entries  []SlotEntry
	active   int
	reserved int
}

// NewSlotTable creates a table with the given total capacity and initial
// active size. It panics on invalid sizes (programming errors).
func NewSlotTable(capacity, active int) *SlotTable {
	if capacity <= 0 || active <= 0 || active > capacity {
		panic(fmt.Sprintf("hybrid: invalid slot table sizes capacity=%d active=%d", capacity, active))
	}
	return &SlotTable{entries: make([]SlotEntry, capacity), active: active}
}

// Capacity returns the physical entry count.
func (t *SlotTable) Capacity() int { return len(t.entries) }

// Active returns the powered entry count; slot arithmetic is modulo this.
func (t *SlotTable) Active() int { return t.active }

// Reserved returns the number of valid entries.
func (t *SlotTable) Reserved() int { return t.reserved }

// Occupancy returns the fraction of active entries that are reserved.
func (t *SlotTable) Occupancy() float64 {
	return float64(t.reserved) / float64(t.active)
}

// Lookup returns the routing entry for slot at cycle now: a valid entry,
// or a recently released one still inside its grace window.
func (t *SlotTable) Lookup(slot int, now int64) (topology.Port, bool) {
	e := t.entries[slot]
	if e.Valid || now < e.GraceUntil {
		return e.Out, true
	}
	return 0, false
}

// Reservable reports whether slot can take a new reservation at cycle now.
func (t *SlotTable) Reservable(slot int, now int64) bool {
	e := t.entries[slot]
	return !e.Valid && now >= e.GraceUntil
}

// Set marks slot reserved for out. It reports false if the slot is valid
// or still in its release grace window.
func (t *SlotTable) Set(slot int, out topology.Port, now int64) bool {
	if !t.Reservable(slot, now) {
		return false
	}
	t.entries[slot] = SlotEntry{Valid: true, Out: out}
	t.reserved++
	return true
}

// Clear releases slot, returning the output port it held. The entry keeps
// routing until now+GracePeriod.
func (t *SlotTable) Clear(slot int, now int64) (topology.Port, bool) {
	e := t.entries[slot]
	if !e.Valid {
		return 0, false
	}
	t.entries[slot] = SlotEntry{Out: e.Out, GraceUntil: now + GracePeriod}
	t.reserved--
	return e.Out, true
}

// Reset invalidates every entry (graces included) and optionally changes
// the active size (used when the network-wide dynamic sizing policy
// doubles table size: "all slot tables are reset, and the path setup
// procedure restarts").
func (t *SlotTable) Reset(newActive int) {
	if newActive <= 0 || newActive > len(t.entries) {
		panic(fmt.Sprintf("hybrid: invalid active size %d", newActive))
	}
	for i := range t.entries {
		t.entries[i] = SlotEntry{}
	}
	t.reserved = 0
	t.active = newActive
}

// RouterTables groups one router's per-input-port slot tables together
// with a reverse output-busy index, so reservation can enforce both
// failure modes of Fig. 1: the input slot already taken (setup 2) and the
// output port already promised to another input at that slot (setup 3).
type RouterTables struct {
	in       [topology.NumPorts]*SlotTable
	outBusy  [][topology.NumPorts]bool  // [slot][output port]
	outGrace [][topology.NumPorts]int64 // grace deadline per slot/output
	// outOwner[slot][out] is the input port whose reservation routes to
	// out at slot — a reverse index making OutReservedAt O(1) instead of
	// a scan over the input tables. It stays correct through a release's
	// grace window: the grace rules forbid re-booking either the output
	// or the owning input slot until both deadlines (set together)
	// expire, so at most one input ever routes to an output in a slot.
	outOwner [][topology.NumPorts]topology.Port
	active   int

	// ReserveCap is the maximum occupancy per input table; allocation is
	// prohibited above it to prevent packet-switched starvation. The
	// paper sets it to 90 %.
	ReserveCap float64
}

// DefaultReserveCap is the paper's anti-starvation threshold.
const DefaultReserveCap = 0.90

// NewRouterTables creates the slot state for one router (a one-router
// TablesArena; grouped construction uses the arena directly).
func NewRouterTables(capacity, active int) *RouterTables {
	return NewTablesArena(1, capacity, active).New()
}

// Active returns the powered entry count per input table.
func (rt *RouterTables) Active() int { return rt.active }

// Capacity returns the physical entry count per input table.
func (rt *RouterTables) Capacity() int { return rt.in[0].Capacity() }

// SlotOf reduces an absolute cycle to a slot index.
func (rt *RouterTables) SlotOf(cycle int64) int {
	return int(cycle % int64(rt.active))
}

// Lookup returns the reserved output for a flit arriving on input in at
// the given cycle (grace-window entries still route).
func (rt *RouterTables) Lookup(in topology.Port, cycle int64) (topology.Port, bool) {
	return rt.in[in].Lookup(rt.SlotOf(cycle), cycle)
}

// LookupSlot is Lookup with an explicit slot index.
func (rt *RouterTables) LookupSlot(in topology.Port, slot int, now int64) (topology.Port, bool) {
	return rt.in[in].Lookup(slot, now)
}

// OutReservedAt reports whether output out is promised to a circuit at the
// given cycle, and if so which input port owns it. Time-slot stealing
// (Section II-D) consults this: a reserved output with no arriving CS flit
// may be used by a packet-switched flit.
func (rt *RouterTables) OutReservedAt(cycle int64, out topology.Port) (topology.Port, bool) {
	slot := rt.SlotOf(cycle)
	if !rt.outBusy[slot][out] && cycle >= rt.outGrace[slot][out] {
		return 0, false
	}
	return rt.outOwner[slot][out], true
}

// CanReserve reports whether dur consecutive slots starting at slot are
// free on input in toward output out at cycle now, under the occupancy cap.
func (rt *RouterTables) CanReserve(in, out topology.Port, slot, dur int, now int64) bool {
	tbl := rt.in[in]
	if float64(tbl.Reserved()+dur) > rt.ReserveCap*float64(rt.active) {
		return false
	}
	for i := 0; i < dur; i++ {
		s := (slot + i) % rt.active
		if !tbl.Reservable(s, now) {
			return false
		}
		if rt.outBusy[s][out] || now < rt.outGrace[s][out] {
			return false
		}
	}
	return true
}

// Reserve books dur consecutive slots from slot on input in toward output
// out. It reports false (leaving the tables untouched) if any slot is
// unavailable — reservation is all-or-nothing, matching the setup-message
// semantics where a failed hop aborts the whole reservation at that router.
func (rt *RouterTables) Reserve(in, out topology.Port, slot, dur int, now int64) bool {
	if !rt.CanReserve(in, out, slot, dur, now) {
		return false
	}
	for i := 0; i < dur; i++ {
		s := (slot + i) % rt.active
		rt.in[in].Set(s, out, now)
		rt.outBusy[s][out] = true
		rt.outOwner[s][out] = in
	}
	return true
}

// Release clears dur consecutive slots from slot on input in, returning
// the output port the reservation used (needed by teardown messages to
// follow the path). It reports false if the first slot was not reserved.
// Cleared entries keep routing in-flight circuit-switched flits for
// GracePeriod cycles before becoming reservable again.
func (rt *RouterTables) Release(in topology.Port, slot, dur int, now int64) (topology.Port, bool) {
	first, ok := rt.in[in].entries[slot%rt.active], true
	if !first.Valid {
		return 0, false
	}
	_ = ok
	for i := 0; i < dur; i++ {
		s := (slot + i) % rt.active
		if out, valid := rt.in[in].Clear(s, now); valid {
			rt.outBusy[s][out] = false
			rt.outGrace[s][out] = now + GracePeriod
		}
	}
	return first.Out, true
}

// ReservedEntries returns the total valid entries across all input tables
// (used by tests and stats).
func (rt *RouterTables) ReservedEntries() int {
	n := 0
	for _, t := range rt.in {
		n += t.Reserved()
	}
	return n
}

// DurationAt counts the consecutive reserved slots on input in starting at
// slot that share one output port — recovering a live reservation's length
// from table state alone (used when advertising pass-through circuits to
// the DLT).
func (rt *RouterTables) DurationAt(in topology.Port, slot int, now int64) int {
	out, ok := rt.in[in].Lookup(slot, now)
	if !ok {
		return 0
	}
	n := 1
	for n < rt.active {
		o, ok := rt.in[in].Lookup((slot+n)%rt.active, now)
		if !ok || o != out {
			break
		}
		n++
	}
	return n
}

// ActivePoweredEntries returns the number of powered slot-table entries in
// this router (active size times input ports) for leakage accounting.
func (rt *RouterTables) ActivePoweredEntries() int {
	return rt.active * int(topology.NumPorts)
}

// Reset clears every table and sets a new active size (network-wide
// dynamic resizing).
func (rt *RouterTables) Reset(newActive int) {
	for _, t := range rt.in {
		t.Reset(newActive)
	}
	for i := range rt.outBusy {
		rt.outBusy[i] = [topology.NumPorts]bool{}
		rt.outGrace[i] = [topology.NumPorts]int64{}
		rt.outOwner[i] = [topology.NumPorts]topology.Port{}
	}
	rt.active = newActive
}

// SlotAtHop returns the slot index a circuit based at slot base occupies
// at hop h: the circuit-switched datapath is two-stage pipelined (one
// cycle through the router, one on the link), so the phase advances by 2
// per hop, modulo the active table size.
func SlotAtHop(base, hop, active int) int {
	return (base + 2*hop) % active
}
