package hybrid

import (
	"testing"
	"testing/quick"

	"tdmnoc/internal/topology"
)

func TestSlotTableBasics(t *testing.T) {
	st := NewSlotTable(8, 8)
	if st.Capacity() != 8 || st.Active() != 8 || st.Reserved() != 0 {
		t.Fatalf("fresh table: cap=%d active=%d reserved=%d", st.Capacity(), st.Active(), st.Reserved())
	}
	if !st.Set(3, topology.East, 0) {
		t.Fatal("Set on empty slot failed")
	}
	if st.Set(3, topology.West, 0) {
		t.Fatal("Set on taken slot succeeded")
	}
	if out, ok := st.Lookup(3, 0); !ok || out != topology.East {
		t.Fatalf("Lookup(3) = (%v,%v)", out, ok)
	}
	if _, ok := st.Lookup(4, 0); ok {
		t.Fatal("Lookup(4) valid on empty slot")
	}
	if out, ok := st.Clear(3, 0); !ok || out != topology.East {
		t.Fatalf("Clear(3) = (%v,%v)", out, ok)
	}
	if _, ok := st.Clear(3, 0); ok {
		t.Fatal("double Clear succeeded")
	}
	if st.Reserved() != 0 {
		t.Fatalf("reserved count %d after clear", st.Reserved())
	}
}

func TestSlotTableGraceWindow(t *testing.T) {
	st := NewSlotTable(8, 8)
	st.Set(2, topology.North, 100)
	st.Clear(2, 100)
	// During the grace window the entry still routes but cannot be
	// re-reserved.
	if out, ok := st.Lookup(2, 100+GracePeriod-1); !ok || out != topology.North {
		t.Fatalf("graced Lookup = (%v,%v)", out, ok)
	}
	if st.Set(2, topology.East, 100+GracePeriod-1) {
		t.Fatal("Set succeeded inside grace window")
	}
	// After the window the slot is free again.
	if _, ok := st.Lookup(2, 100+GracePeriod); ok {
		t.Fatal("expired grace entry still routes")
	}
	if !st.Set(2, topology.East, 100+GracePeriod) {
		t.Fatal("Set failed after grace expiry")
	}
}

func TestNewSlotTablePanics(t *testing.T) {
	for _, c := range []struct{ cap, act int }{{0, 0}, {8, 0}, {8, 9}, {-1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSlotTable(%d,%d) did not panic", c.cap, c.act)
				}
			}()
			NewSlotTable(c.cap, c.act)
		}()
	}
}

func TestSlotTableOccupancyAndReset(t *testing.T) {
	st := NewSlotTable(16, 8)
	st.Set(0, topology.North, 0)
	st.Set(1, topology.North, 0)
	if occ := st.Occupancy(); occ != 0.25 {
		t.Fatalf("occupancy %.3f, want 0.25", occ)
	}
	st.Reset(16)
	if st.Active() != 16 || st.Reserved() != 0 {
		t.Fatalf("after reset: active=%d reserved=%d", st.Active(), st.Reserved())
	}
	if _, ok := st.Lookup(0, 0); ok {
		t.Fatal("entry survived reset")
	}
}

// TestFigure1Scenario replays the exact slot-table state transitions of
// Fig. 1: three setup messages at a single router with slot tables of 4
// entries and two relevant input ports.
func TestFigure1Scenario(t *testing.T) {
	rt := NewRouterTables(4, 4)
	in1, in2 := topology.North, topology.South
	out3, out4 := topology.East, topology.West // stand-ins for "out_3"/"out_4"

	// setup1: in_1 -> out_4, slot s3, duration 2. Succeeds; reservation
	// wraps modulo S so s3 and s0 are taken.
	if !rt.Reserve(in1, out4, 3, 2, 0) {
		t.Fatal("setup1 should succeed on empty tables")
	}
	if out, ok := rt.LookupSlot(in1, 3, 0); !ok || out != out4 {
		t.Fatalf("s3 on in_1 = (%v,%v), want out_4", out, ok)
	}
	if out, ok := rt.LookupSlot(in1, 0, 0); !ok || out != out4 {
		t.Fatalf("s0 on in_1 = (%v,%v), want out_4 (modulo wrap)", out, ok)
	}

	// setup2: in_1 -> out_3, slot s3, duration 1. Fails: slot already
	// allocated on that input. Tables unchanged.
	if rt.Reserve(in1, out3, 3, 1, 0) {
		t.Fatal("setup2 should fail: input slot taken")
	}
	if out, _ := rt.LookupSlot(in1, 3, 0); out != out4 {
		t.Fatal("failed setup2 modified the table")
	}

	// setup3: in_2 -> out_4, slot s3, duration 1. Fails: out_4 is already
	// reserved for in_1 at s3 (output conflict).
	if rt.Reserve(in2, out4, 3, 1, 0) {
		t.Fatal("setup3 should fail: output port conflict")
	}
	if _, ok := rt.LookupSlot(in2, 3, 0); ok {
		t.Fatal("failed setup3 left a reservation on in_2")
	}

	// Teardown: releasing setup1 frees both slots for reuse (after the
	// release grace window).
	if out, ok := rt.Release(in1, 3, 2, 0); !ok || out != out4 {
		t.Fatalf("release = (%v,%v)", out, ok)
	}
	if !rt.Reserve(in2, out4, 3, 1, GracePeriod) {
		t.Fatal("slot not reusable after teardown grace")
	}
}

func TestRouterTablesOutputConflictAcrossInputs(t *testing.T) {
	rt := NewRouterTables(8, 8)
	if !rt.Reserve(topology.North, topology.East, 2, 4, 0) {
		t.Fatal("first reservation failed")
	}
	// Overlapping slots, same output, different input: must fail.
	if rt.Reserve(topology.South, topology.East, 4, 2, 0) {
		t.Fatal("output double-booked")
	}
	// Same slots, different output: fine.
	if !rt.Reserve(topology.South, topology.West, 2, 4, 0) {
		t.Fatal("independent output rejected")
	}
}

func TestRouterTablesReserveCap(t *testing.T) {
	rt := NewRouterTables(10, 10)
	rt.ReserveCap = 0.5
	if !rt.Reserve(topology.North, topology.East, 0, 5, 0) {
		t.Fatal("reservation within cap failed")
	}
	// Input table is now at 50 %; one more slot would exceed the cap.
	if rt.Reserve(topology.North, topology.West, 6, 1, 0) {
		t.Fatal("reservation above cap succeeded")
	}
	// Another input port has its own budget.
	if !rt.Reserve(topology.South, topology.West, 6, 1, 0) {
		t.Fatal("other input should have headroom")
	}
}

func TestRouterTablesLookupByCycle(t *testing.T) {
	rt := NewRouterTables(8, 8)
	rt.Reserve(topology.West, topology.Local, 5, 1, 0)
	if out, ok := rt.Lookup(topology.West, 5); !ok || out != topology.Local {
		t.Fatalf("cycle 5 lookup = (%v,%v)", out, ok)
	}
	if out, ok := rt.Lookup(topology.West, 13); !ok || out != topology.Local {
		t.Fatalf("cycle 13 (mod 8 = 5) lookup = (%v,%v)", out, ok)
	}
	if _, ok := rt.Lookup(topology.West, 6); ok {
		t.Fatal("unreserved cycle looked up valid")
	}
}

func TestOutReservedAt(t *testing.T) {
	rt := NewRouterTables(8, 8)
	rt.Reserve(topology.North, topology.East, 3, 2, 0)
	if in, ok := rt.OutReservedAt(3, topology.East); !ok || in != topology.North {
		t.Fatalf("OutReservedAt(3,East) = (%v,%v)", in, ok)
	}
	if _, ok := rt.OutReservedAt(3, topology.West); ok {
		t.Fatal("West reported reserved")
	}
	if _, ok := rt.OutReservedAt(5, topology.East); ok {
		t.Fatal("slot 5 reported reserved")
	}
}

func TestReleasePartialAndInvalid(t *testing.T) {
	rt := NewRouterTables(8, 8)
	if _, ok := rt.Release(topology.North, 0, 4, 0); ok {
		t.Fatal("release of empty table succeeded")
	}
	rt.Reserve(topology.North, topology.East, 6, 4, 0) // wraps: slots 6,7,0,1
	out, ok := rt.Release(topology.North, 6, 4, 0)
	if !ok || out != topology.East {
		t.Fatalf("release = (%v,%v)", out, ok)
	}
	if rt.ReservedEntries() != 0 {
		t.Fatalf("%d entries left after full release", rt.ReservedEntries())
	}
	// Graced slots still route CS flits until the window closes.
	if o, routes := rt.Lookup(topology.North, 6); !routes || o != topology.East {
		t.Fatal("graced slots stopped routing immediately")
	}
	if _, routes := rt.Lookup(topology.North, 6+GracePeriod+8); routes {
		t.Fatal("graced slot still routes after expiry")
	}
}

func TestDurationAt(t *testing.T) {
	rt := NewRouterTables(16, 16)
	rt.Reserve(topology.North, topology.East, 3, 5, 0)
	if d := rt.DurationAt(topology.North, 3, 0); d != 5 {
		t.Fatalf("DurationAt = %d, want 5", d)
	}
	if d := rt.DurationAt(topology.North, 9, 0); d != 0 {
		t.Fatalf("DurationAt on free slot = %d, want 0", d)
	}
}

func TestRouterTablesResetAndResize(t *testing.T) {
	rt := NewRouterTables(16, 8)
	rt.Reserve(topology.North, topology.East, 1, 4, 0)
	rt.Reset(16)
	if rt.Active() != 16 || rt.ReservedEntries() != 0 {
		t.Fatalf("after reset: active=%d reserved=%d", rt.Active(), rt.ReservedEntries())
	}
	if rt.ActivePoweredEntries() != 16*int(topology.NumPorts) {
		t.Fatalf("powered entries %d", rt.ActivePoweredEntries())
	}
	// Reset also wipes grace state.
	rt.Reserve(topology.North, topology.East, 1, 4, 0)
	rt.Release(topology.North, 1, 4, 0)
	rt.Reset(16)
	if !rt.Reserve(topology.South, topology.East, 1, 4, 0) {
		t.Fatal("grace survived reset")
	}
}

func TestReserveReleaseRoundTripProperty(t *testing.T) {
	// Property: any successful Reserve followed by Release restores a
	// table that accepts the same reservation once the grace expires.
	f := func(slot8, dur8, in8, out8 uint8) bool {
		rt := NewRouterTables(16, 16)
		in := topology.Port(in8 % uint8(topology.NumPorts))
		out := topology.Port(out8 % uint8(topology.NumPorts))
		slot := int(slot8 % 16)
		dur := int(dur8%6) + 1
		if !rt.Reserve(in, out, slot, dur, 0) {
			return true // occupancy cap can reject large dur; fine
		}
		if rt.ReservedEntries() != dur {
			return false
		}
		if _, ok := rt.Release(in, slot, dur, 0); !ok {
			return false
		}
		if rt.ReservedEntries() != 0 {
			return false
		}
		return rt.Reserve(in, out, slot, dur, GracePeriod)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotAtHop(t *testing.T) {
	if s := SlotAtHop(3, 0, 128); s != 3 {
		t.Errorf("hop 0: %d", s)
	}
	if s := SlotAtHop(3, 1, 128); s != 5 {
		t.Errorf("hop 1: %d", s)
	}
	if s := SlotAtHop(126, 2, 128); s != 2 {
		t.Errorf("wrap: %d", s)
	}
}
