package hybrid

import (
	"testing"

	"tdmnoc/internal/topology"
)

func TestDLTUpdateAndFind(t *testing.T) {
	d := NewDLT(4)
	if d.Size() != 4 {
		t.Fatalf("size %d", d.Size())
	}
	d.Update(7, 12, 4, topology.West)
	e, ok := d.Find(7)
	if !ok || e.Slot != 12 || e.Dur != 4 || e.In != topology.West {
		t.Fatalf("Find(7) = %+v, %v", e, ok)
	}
	if _, ok := d.Find(8); ok {
		t.Fatal("found absent destination")
	}
	// Update of existing destination refreshes in place.
	d.Update(7, 20, 5, topology.North)
	e, _ = d.Find(7)
	if e.Slot != 20 || e.Dur != 5 || e.In != topology.North {
		t.Fatalf("refresh failed: %+v", e)
	}
}

func TestDLTEvictsOldest(t *testing.T) {
	d := NewDLT(2)
	d.Update(1, 0, 4, topology.North)
	d.Update(2, 1, 4, topology.North)
	d.Update(3, 2, 4, topology.North) // evicts dest 1
	if _, ok := d.Find(1); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := d.Find(2); !ok {
		t.Fatal("newer entry evicted")
	}
	if _, ok := d.Find(3); !ok {
		t.Fatal("newest entry missing")
	}
}

func TestDLTDefaultSize(t *testing.T) {
	if NewDLT(0).Size() != DefaultDLTEntries {
		t.Fatal("default size not applied")
	}
}

func TestDLTSaturatingFailureCounter(t *testing.T) {
	d := NewDLT(4)
	d.Update(5, 0, 4, topology.East)
	if d.RecordFailure(5) {
		t.Fatal("counter saturated after one failure")
	}
	if !d.RecordFailure(5) {
		t.Fatal("counter did not saturate at '10' (two failures)")
	}
	if _, ok := d.Find(5); ok {
		t.Fatal("saturated entry not removed")
	}
	// Failure on an absent destination is a no-op.
	if d.RecordFailure(99) {
		t.Fatal("failure on absent entry saturated")
	}
}

func TestDLTSuccessDecaysCounter(t *testing.T) {
	d := NewDLT(4)
	d.Update(5, 0, 4, topology.East)
	d.RecordFailure(5)
	d.RecordSuccess(5)
	// One failure then one success: the next failure should not saturate.
	if d.RecordFailure(5) {
		t.Fatal("counter saturated despite success decay")
	}
}

func TestDLTFindAdjacent(t *testing.T) {
	m := topology.NewMesh(4, 4)
	d := NewDLT(4)
	d.Update(5, 3, 4, topology.West) // node 5 = (1,1)
	if e, ok := d.FindAdjacent(m, 6); !ok || e.Dest != 5 {
		t.Fatalf("adjacent lookup for 6 = %+v, %v", e, ok)
	}
	if _, ok := d.FindAdjacent(m, 10); ok {
		t.Fatal("diagonal node matched as adjacent") // 10 = (2,2)
	}
	// The exact destination is not "adjacent" to itself.
	if _, ok := d.FindAdjacent(m, 5); ok {
		t.Fatal("exact destination matched as adjacent")
	}
}

func TestDLTRemoveAndReset(t *testing.T) {
	d := NewDLT(4)
	d.Update(1, 0, 4, topology.North)
	d.Update(2, 0, 4, topology.North)
	d.Remove(1)
	if _, ok := d.Find(1); ok {
		t.Fatal("Remove failed")
	}
	d.Reset()
	if _, ok := d.Find(2); ok {
		t.Fatal("Reset failed")
	}
}

func TestVCGateAdjusts(t *testing.T) {
	g := DefaultVCGate(4)
	if g.Active() != 4 {
		t.Fatalf("initial active %d", g.Active())
	}
	// Low utilisation: one VC gated off per step until MinVCs.
	for step := 0; step < 10; step++ {
		for i := 0; i < 100; i++ {
			g.Observe(0)
		}
		g.Step()
	}
	if g.Active() != g.MinVCs {
		t.Fatalf("active %d after sustained idle, want %d", g.Active(), g.MinVCs)
	}
	// High utilisation: VCs come back.
	for i := 0; i < 100; i++ {
		g.Observe(g.Active()) // fully busy
	}
	if active, changed := g.Step(); !changed || active != g.MinVCs+1 {
		t.Fatalf("step under load = (%d,%v)", active, changed)
	}
}

func TestVCGateStableInBand(t *testing.T) {
	g := DefaultVCGate(4)
	// Utilisation between the thresholds: no change.
	for i := 0; i < 100; i++ {
		g.Observe(2) // mu = 0.5 with 4 active
	}
	if active, changed := g.Step(); changed || active != 4 {
		t.Fatalf("in-band step = (%d,%v)", active, changed)
	}
}

func TestVCGateNoObservationsNoChange(t *testing.T) {
	g := DefaultVCGate(4)
	if _, changed := g.Step(); changed {
		t.Fatal("step with no observations changed state")
	}
}

func TestVCGateSetActiveClamps(t *testing.T) {
	g := DefaultVCGate(4)
	g.SetActive(0)
	if g.Active() != g.MinVCs {
		t.Fatalf("clamp low: %d", g.Active())
	}
	g.SetActive(99)
	if g.Active() != g.MaxVCs {
		t.Fatalf("clamp high: %d", g.Active())
	}
}

func TestResizerDoublesOnConsecutiveFailures(t *testing.T) {
	r := DefaultResizer(128)
	if r.Active() != 16 {
		t.Fatalf("initial active %d, want 16", r.Active())
	}
	// Failures below the threshold, broken by a success: no resize.
	for i := 0; i < r.FailThreshold-1; i++ {
		if _, resized := r.RecordSetupResult(false); resized {
			t.Fatal("resized too early")
		}
	}
	r.RecordSetupResult(true)
	for i := 0; i < r.FailThreshold-1; i++ {
		if _, resized := r.RecordSetupResult(false); resized {
			t.Fatal("resized after counter reset")
		}
	}
	// One more consecutive failure triggers the doubling.
	active, resized := r.RecordSetupResult(false)
	if !resized || active != 32 {
		t.Fatalf("resize = (%d,%v), want (32,true)", active, resized)
	}
	if r.ResizeEvents() != 1 {
		t.Fatalf("resize events %d", r.ResizeEvents())
	}
}

func TestResizerCapsAtCapacity(t *testing.T) {
	r := DefaultResizer(32)
	for i := 0; i < 1000; i++ {
		r.RecordSetupResult(false)
	}
	if r.Active() != 32 {
		t.Fatalf("active %d, want capacity 32", r.Active())
	}
}

func TestFixedResizerNeverResizes(t *testing.T) {
	r := FixedResizer(128)
	if r.Active() != 128 {
		t.Fatalf("fixed resizer active %d", r.Active())
	}
	for i := 0; i < 10000; i++ {
		if _, resized := r.RecordSetupResult(false); resized {
			t.Fatal("fixed resizer resized")
		}
	}
}

func TestDefaultResizerSmallCapacity(t *testing.T) {
	r := DefaultResizer(4)
	if r.Active() != 4 {
		t.Fatalf("small-capacity initial active %d, want 4", r.Active())
	}
}

func TestLatencyVCGateGrowsUnderDelay(t *testing.T) {
	g := DefaultLatencyVCGate(4)
	g.SetActiveForTest(2)
	for i := 0; i < 50; i++ {
		g.ObserveDelay(20) // far above target
	}
	if active, changed := g.Step(); !changed || active != 3 {
		t.Fatalf("step under delay = (%d,%v), want (3,true)", active, changed)
	}
}

func TestLatencyVCGateShrinksWhenFast(t *testing.T) {
	g := DefaultLatencyVCGate(4)
	for i := 0; i < 50; i++ {
		g.ObserveDelay(1) // well below target
	}
	if active, changed := g.Step(); !changed || active != 3 {
		t.Fatalf("step when fast = (%d,%v), want (3,true)", active, changed)
	}
}

func TestLatencyVCGateIdleDecays(t *testing.T) {
	g := DefaultLatencyVCGate(4)
	for i := 0; i < 10; i++ {
		g.Step()
	}
	if g.Active() != g.MinVCs {
		t.Fatalf("idle gate at %d VCs, want %d", g.Active(), g.MinVCs)
	}
}

func TestLatencyVCGateStableInBand(t *testing.T) {
	g := DefaultLatencyVCGate(4)
	for i := 0; i < 50; i++ {
		g.ObserveDelay(4) // exactly on target
	}
	if _, changed := g.Step(); changed {
		t.Fatal("in-band delay changed VC count")
	}
}
