package hybrid

import (
	"fmt"

	"tdmnoc/internal/invariant"
	"tdmnoc/internal/topology"
)

// CheckConsistency verifies this router's slot-table state against the
// ownership invariants the setup protocol is supposed to maintain:
//
//   - each input table's reserved counter equals its count of valid
//     entries, and no valid entry sits beyond the active region;
//   - at most one input port owns a given (slot, output) pair — two
//     live circuits must never be granted the same output at the same
//     phase (Fig. 1 setups 2 and 3);
//   - the reverse outBusy index agrees with the forward tables: busy
//     exactly when some input holds a valid entry toward that output.
//
// Each violation is passed to report as (kind, detail).
func (rt *RouterTables) CheckConsistency(report func(kind, detail string)) {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		tbl := rt.in[p]
		valid := 0
		for s, e := range tbl.entries {
			if !e.Valid {
				continue
			}
			valid++
			if s >= rt.active {
				report("slot-table", fmt.Sprintf("input %v slot %d valid beyond active region %d", p, s, rt.active))
			}
		}
		if valid != tbl.reserved {
			report("slot-table", fmt.Sprintf("input %v reserved counter %d but %d valid entries", p, tbl.reserved, valid))
		}
	}
	for s := 0; s < rt.active; s++ {
		for o := topology.Port(0); o < topology.NumPorts; o++ {
			owners := 0
			first := topology.Port(0)
			for p := topology.Port(0); p < topology.NumPorts; p++ {
				e := rt.in[p].entries[s]
				if e.Valid && e.Out == o {
					if owners == 0 {
						first = p
					}
					owners++
				}
			}
			if owners > 1 {
				report("slot-table", fmt.Sprintf("slot %d output %v claimed by %d inputs (first %v)", s, o, owners, first))
			}
			if busy := rt.outBusy[s][o]; busy != (owners > 0) {
				report("slot-table", fmt.Sprintf("slot %d output %v outBusy=%v but %d owning inputs", s, o, busy, owners))
			}
		}
	}
}

// VisitEntries calls fn for every slot-table entry in the active region,
// in deterministic (input port, slot) order. Tests use it to snapshot and
// compare reservation state without reaching into unexported fields.
func (rt *RouterTables) VisitEntries(fn func(in topology.Port, slot int, e SlotEntry)) {
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		for s := 0; s < rt.active; s++ {
			fn(p, s, rt.in[p].entries[s])
		}
	}
}

// HashState folds the router's slot-table state into h. Only the active
// region is hashed: entries beyond it are always zero (Reset wipes the
// whole table before shrinking or growing the active size, and every
// mutation indexes modulo active).
func (rt *RouterTables) HashState(h *invariant.Hasher) {
	h.Int(rt.active)
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		for s := 0; s < rt.active; s++ {
			e := rt.in[p].entries[s]
			h.Bool(e.Valid)
			h.Byte(byte(e.Out))
			h.Int64(e.GraceUntil)
		}
	}
	for s := 0; s < rt.active; s++ {
		for o := topology.Port(0); o < topology.NumPorts; o++ {
			h.Bool(rt.outBusy[s][o])
			h.Int64(rt.outGrace[s][o])
		}
	}
}

// HashState folds the gate's accumulator state into h: the observation
// counters decide future adjustments, so a divergence here surfaces
// cycles before the active VC count itself changes.
func (g *VCGate) HashState(h *invariant.Hasher) {
	h.Int(g.active)
	h.Int64(g.busyAccum)
	h.Int64(g.obsCycles)
}

// HashState folds the latency gate's accumulator state into h.
func (g *LatencyVCGate) HashState(h *invariant.Hasher) {
	h.Int(g.active)
	h.Int64(g.delaySum)
	h.Int64(g.delayN)
}

// HashState folds the DLT's full state — including the unexported
// failure counters and LRU stamps, which influence future sharing
// decisions — into h.
func (d *DLT) HashState(h *invariant.Hasher) {
	h.Uint64(d.tick)
	for i := range d.entries {
		e := d.entries[i]
		h.Bool(e.Valid)
		h.Int(int(e.Dest))
		h.Int(e.Slot)
		h.Int(e.Dur)
		h.Byte(byte(e.In))
		h.Byte(e.fail)
		h.Uint64(e.stamp)
	}
}
