package hybrid

import "tdmnoc/internal/obs"

// VCGate implements the aggressive VC power gating policy of
// Section III-B: the number of active virtual channels is periodically
// adjusted by comparing measured VC utilisation against two thresholds.
// If utilisation exceeds ThresholdHigh one set of VCs is activated; below
// ThresholdLow one set is turned off (after evacuation, which the router
// enforces by draining the victim VC before the gate takes effect).
type VCGate struct {
	// MinVCs and MaxVCs bound the active VC count per port.
	MinVCs, MaxVCs int
	// SetSize is how many VCs one adjustment step adds or removes.
	SetSize int
	// ThresholdHigh and ThresholdLow bracket the target utilisation band.
	ThresholdHigh, ThresholdLow float64
	// Epoch is the adjustment period in cycles.
	Epoch int64

	active    int
	busyAccum int64
	obsCycles int64
}

// DefaultVCGate returns the policy used by the VCt configurations:
// 2–4 VCs per port adjusted one VC at a time every 1000 cycles, with a
// 60 % / 25 % threshold band. Two VCs always stay on so a lone VC cannot
// serialise request and reply classes under bursty traffic.
func DefaultVCGate(maxVCs int) *VCGate {
	return &VCGate{
		MinVCs:        2,
		MaxVCs:        maxVCs,
		SetSize:       1,
		ThresholdHigh: 0.60,
		ThresholdLow:  0.25,
		Epoch:         1000,
		active:        maxVCs,
	}
}

// Active returns the currently active VC count per port.
func (g *VCGate) Active() int { return g.active }

// SetActive forces the active VC count (used by tests and by resets).
func (g *VCGate) SetActive(n int) {
	if n < g.MinVCs {
		n = g.MinVCs
	}
	if n > g.MaxVCs {
		n = g.MaxVCs
	}
	g.active = n
}

// Observe accumulates one cycle's utilisation sample: busy is the number
// of active VCs currently holding flits, out of the active population.
func (g *VCGate) Observe(busy int) {
	g.busyAccum += int64(busy)
	g.obsCycles++
}

// Step evaluates the policy at an epoch boundary. It returns the new
// active VC count and whether it changed. Callers invoke it once per
// Epoch cycles; calling it with no observations is a no-op.
func (g *VCGate) Step() (active int, changed bool) {
	if g.obsCycles == 0 {
		return g.active, false
	}
	mu := float64(g.busyAccum) / (float64(g.obsCycles) * float64(g.active))
	g.busyAccum, g.obsCycles = 0, 0
	switch {
	case mu > g.ThresholdHigh && g.active < g.MaxVCs:
		g.active = min(g.active+g.SetSize, g.MaxVCs)
		return g.active, true
	case mu < g.ThresholdLow && g.active > g.MinVCs:
		g.active = max(g.active-g.SetSize, g.MinVCs)
		return g.active, true
	}
	return g.active, false
}

// LatencyVCGate is the refinement the paper suggests in Section V-B4:
// "activating and deactivating VCs based on more accurate metrics, for
// example, packet latency, will ensure better performance". Instead of
// VC utilisation it observes how long flits wait in the router's buffers
// (the router-local component of packet latency) and keeps that delay
// inside a target band.
type LatencyVCGate struct {
	MinVCs, MaxVCs int
	SetSize        int
	// TargetDelay is the acceptable mean buffer residency in cycles;
	// above HighFactor*TargetDelay a VC set is activated, below
	// LowFactor*TargetDelay one is gated off.
	TargetDelay float64
	HighFactor  float64
	LowFactor   float64
	// Epoch is the adjustment period in cycles.
	Epoch int64

	active   int
	delaySum int64
	delayN   int64
}

// DefaultLatencyVCGate targets a mean buffer residency of 4 cycles.
func DefaultLatencyVCGate(maxVCs int) *LatencyVCGate {
	return &LatencyVCGate{
		MinVCs: 2, MaxVCs: maxVCs, SetSize: 1,
		TargetDelay: 4, HighFactor: 1.5, LowFactor: 0.5,
		Epoch:  1000,
		active: maxVCs,
	}
}

// Active returns the current active VC count.
func (g *LatencyVCGate) Active() int { return g.active }

// SetActiveForTest forces the active count (clamped), for tests.
func (g *LatencyVCGate) SetActiveForTest(n int) {
	g.active = min(max(n, g.MinVCs), g.MaxVCs)
}

// ObserveDelay records one flit's buffer residency in cycles.
func (g *LatencyVCGate) ObserveDelay(cycles int64) {
	g.delaySum += cycles
	g.delayN++
}

// Step evaluates the policy at an epoch boundary.
func (g *LatencyVCGate) Step() (active int, changed bool) {
	if g.delayN == 0 {
		// No traffic at all: gate down toward the minimum.
		if g.active > g.MinVCs {
			g.active = max(g.active-g.SetSize, g.MinVCs)
			return g.active, true
		}
		return g.active, false
	}
	mean := float64(g.delaySum) / float64(g.delayN)
	g.delaySum, g.delayN = 0, 0
	switch {
	case mean > g.TargetDelay*g.HighFactor && g.active < g.MaxVCs:
		g.active = min(g.active+g.SetSize, g.MaxVCs)
		return g.active, true
	case mean < g.TargetDelay*g.LowFactor && g.active > g.MinVCs:
		g.active = max(g.active-g.SetSize, g.MinVCs)
		return g.active, true
	}
	return g.active, false
}

// Resizer implements the dynamic slot-table sizing policy of Section II-C:
// start with a small active region, and when path allocation continuously
// fails, double the active size (up to capacity), at which point every
// slot table in the network is reset and path setup restarts.
type Resizer struct {
	// Capacity is the physical slot-table size.
	Capacity int
	// InitialActive is the powered region at start.
	InitialActive int
	// FailThreshold is the number of consecutive setup failures (observed
	// network-wide at sources) that triggers a doubling.
	FailThreshold int

	active       int
	consecFails  int
	resizeEvents int

	// probe, when non-nil, receives a KindSlotResize event on every
	// doubling (Node = -1: the policy is network-wide). The resizer runs
	// between cycles on the caller goroutine, so it gets the recorder's
	// control handle.
	probe *obs.Handle
}

// SetProbe installs (or, with nil, removes) the resizer's observability
// handle.
func (r *Resizer) SetProbe(p *obs.Handle) { r.probe = p }

// DefaultResizer starts at capacity/8 (at least 8 slots) and doubles after
// 16 consecutive failures.
func DefaultResizer(capacity int) *Resizer {
	init := capacity / 8
	if init < 8 {
		init = min(8, capacity)
	}
	return &Resizer{Capacity: capacity, InitialActive: init, FailThreshold: 16, active: init}
}

// ResizerWithInitial is DefaultResizer with a policy-chosen starting
// region: a profiled run lets the next run begin at (or deliberately
// below) the converged size instead of discovering it by doubling. The
// initial size is clamped to [1, capacity]; the doubling path stays
// armed as the safety valve for a misestimated profile.
func ResizerWithInitial(capacity, initial int) *Resizer {
	if initial < 1 {
		initial = 1
	}
	if initial > capacity {
		initial = capacity
	}
	return &Resizer{Capacity: capacity, InitialActive: initial, FailThreshold: 16, active: initial}
}

// FixedResizer pins the active size to the full capacity, disabling
// dynamic sizing (the ablation baseline).
func FixedResizer(capacity int) *Resizer {
	return &Resizer{Capacity: capacity, InitialActive: capacity, FailThreshold: 1 << 30, active: capacity}
}

// Active returns the current network-wide active slot count.
func (r *Resizer) Active() int { return r.active }

// ResizeEvents returns how many doublings have occurred.
func (r *Resizer) ResizeEvents() int { return r.resizeEvents }

// RecordSetupResult feeds one setup outcome into the policy. It returns
// (newActive, true) when the active size just doubled; the caller must
// then reset every slot table, DLT and connection registry in the network.
func (r *Resizer) RecordSetupResult(ok bool) (int, bool) {
	return r.RecordSetupResultAt(ok, 0)
}

// RecordSetupResultAt is RecordSetupResult with the current cycle, so an
// attached probe can timestamp the resize event.
func (r *Resizer) RecordSetupResultAt(ok bool, now int64) (int, bool) {
	if ok {
		r.consecFails = 0
		return r.active, false
	}
	r.consecFails++
	if r.consecFails >= r.FailThreshold && r.active < r.Capacity {
		r.active = min(r.active*2, r.Capacity)
		r.consecFails = 0
		r.resizeEvents++
		if r.probe.Wants(obs.KindSlotResize) {
			r.probe.Emit(obs.Event{Cycle: now, Kind: obs.KindSlotResize,
				Node: -1, Val: int64(r.active)})
		}
		return r.active, true
	}
	return r.active, false
}
