package hybrid

import (
	"testing"

	"tdmnoc/internal/topology"
)

// FuzzRouterTablesOps drives random reserve/release/lookup sequences and
// checks structural invariants: reserved counts never go negative, the
// output-busy index always agrees with the per-input tables, and the
// occupancy cap is never exceeded.
func FuzzRouterTablesOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(16))
	f.Add([]byte{255, 0, 128, 64, 32, 9, 200, 100, 50, 25}, uint8(32))
	f.Fuzz(func(t *testing.T, ops []byte, active8 uint8) {
		active := int(active8%32) + 4
		rt := NewRouterTables(active, active)
		type resv struct {
			in   topology.Port
			slot int
			dur  int
		}
		var live []resv
		now := int64(0)
		for i := 0; i+3 < len(ops); i += 4 {
			now += int64(ops[i] % 7)
			in := topology.Port(ops[i] % uint8(topology.NumPorts))
			out := topology.Port(ops[i+1] % uint8(topology.NumPorts))
			slot := int(ops[i+2]) % active
			dur := int(ops[i+3]%5) + 1
			switch ops[i] % 3 {
			case 0, 1:
				if rt.Reserve(in, out, slot, dur, now) {
					live = append(live, resv{in: in, slot: slot, dur: dur})
				}
			case 2:
				if len(live) > 0 {
					v := live[0]
					live = live[1:]
					if _, ok := rt.Release(v.in, v.slot, v.dur, now); !ok {
						t.Fatalf("release of live reservation failed: %+v", v)
					}
				}
			}
			// Invariants after every op.
			total := 0
			for p := topology.Port(0); p < topology.NumPorts; p++ {
				if r := rt.in[p].Reserved(); r < 0 || r > active {
					t.Fatalf("input %v reserved count %d out of range", p, r)
				} else {
					total += r
				}
			}
			if total != rt.ReservedEntries() {
				t.Fatalf("ReservedEntries %d != sum %d", rt.ReservedEntries(), total)
			}
			// Every valid entry must be reflected in the outBusy index.
			for p := topology.Port(0); p < topology.NumPorts; p++ {
				for s := 0; s < active; s++ {
					if o, ok := rt.in[p].Lookup(s, now); ok {
						if in2, res := rt.OutReservedAt(int64(s)+int64(active)*1000, o); !res {
							_ = in2
							// Grace-window entries may report unreserved
							// through OutReservedAt once busy is cleared;
							// only hard-valid entries must match.
							if rt.in[p].entries[s].Valid {
								t.Fatalf("valid entry (%v,%d)->%v missing from outBusy", p, s, o)
							}
						}
					}
				}
			}
		}
	})
}
