package hybrid

import (
	"fmt"

	"tdmnoc/internal/topology"
)

// TablesArena block-allocates the slot-table state of a group of routers
// out of contiguous slabs: one RouterTables value, NumPorts SlotTable
// values, their entry rows and the reverse output indexes per router,
// all carved from arrays sized once at construction. A router's slot
// state is the hottest per-cycle hybrid structure (the demux consults it
// for every arrival), and at large mesh sizes the per-router heap
// objects of the old layout scattered it across the heap; the arena
// keeps one executor partition's tables adjacent in memory.
//
// Carved slices use full-capacity (three-index) expressions, so an
// out-of-contract append can never bleed into a neighbouring router's
// rows.
type TablesArena struct {
	tables   []RouterTables
	slots    []SlotTable
	entries  []SlotEntry
	outBusy  [][topology.NumPorts]bool
	outGrace [][topology.NumPorts]int64
	outOwner [][topology.NumPorts]topology.Port
	capacity int
	active   int
	used     int
}

// NewTablesArena creates an arena with room for count routers' tables,
// each with the given per-input-port capacity and initial active size.
func NewTablesArena(count, capacity, active int) *TablesArena {
	if count <= 0 {
		panic(fmt.Sprintf("hybrid: invalid arena count %d", count))
	}
	if capacity <= 0 || active <= 0 || active > capacity {
		panic(fmt.Sprintf("hybrid: invalid slot table sizes capacity=%d active=%d", capacity, active))
	}
	np := int(topology.NumPorts)
	return &TablesArena{
		tables:   make([]RouterTables, count),
		slots:    make([]SlotTable, count*np),
		entries:  make([]SlotEntry, count*np*capacity),
		outBusy:  make([][topology.NumPorts]bool, count*capacity),
		outGrace: make([][topology.NumPorts]int64, count*capacity),
		outOwner: make([][topology.NumPorts]topology.Port, count*capacity),
		capacity: capacity,
		active:   active,
	}
}

// New carves the next router's tables from the arena. The returned
// pointer is stable for the arena's lifetime. Panics when the arena is
// exhausted (a construction-time sizing bug).
func (a *TablesArena) New() *RouterTables {
	if a.used >= len(a.tables) {
		panic(fmt.Sprintf("hybrid: arena exhausted after %d routers", a.used))
	}
	i := a.used
	a.used++
	np := int(topology.NumPorts)
	rt := &a.tables[i]
	rt.active = a.active
	rt.ReserveCap = DefaultReserveCap
	for p := 0; p < np; p++ {
		st := &a.slots[i*np+p]
		off := (i*np + p) * a.capacity
		st.entries = a.entries[off : off+a.capacity : off+a.capacity]
		st.active = a.active
		rt.in[p] = st
	}
	off := i * a.capacity
	rt.outBusy = a.outBusy[off : off+a.capacity : off+a.capacity]
	rt.outGrace = a.outGrace[off : off+a.capacity : off+a.capacity]
	rt.outOwner = a.outOwner[off : off+a.capacity : off+a.capacity]
	return rt
}
