package hybrid

import "tdmnoc/internal/topology"

// DLTEntry records one circuit-switched connection passing through this
// node: the circuit's final destination, the slot (at this node's input)
// and duration of its reservation. A 2-bit saturating counter tracks
// sharing failures; when it saturates the entry is evicted and the node
// requests a dedicated circuit of its own (Section III-A1).
type DLTEntry struct {
	Valid bool
	Dest  topology.NodeID
	// Slot is the phase at which the circuit's flits traverse this node's
	// router, i.e. the reservation slot in this router's input table.
	Slot int
	// Dur is the reservation length in consecutive slots.
	Dur int
	// In is the router input port the circuit enters on; the hitchhiker
	// must check that no owner flit arrives on this port at its phase.
	In topology.Port
	// fail is the 2-bit saturating failure counter.
	fail uint8
	// stamp orders entries for LRU-style replacement.
	stamp uint64
}

// DLT is the Destination Lookup Table a node consults to hitchhike onto
// circuits that pass through it. The paper's evaluated configuration uses
// 8 entries (under 16 bytes of state).
type DLT struct {
	entries []DLTEntry
	tick    uint64
}

// DefaultDLTEntries is the paper's DLT size.
const DefaultDLTEntries = 8

// NewDLT creates a DLT with n entries.
func NewDLT(n int) *DLT {
	if n <= 0 {
		n = DefaultDLTEntries
	}
	return &DLT{entries: make([]DLTEntry, n)}
}

// Size returns the entry count.
func (d *DLT) Size() int { return len(d.entries) }

// Update records (or refreshes) a circuit toward dest passing through this
// node at the given slot/duration, entering on input port in. The oldest
// entry is evicted when the table is full.
func (d *DLT) Update(dest topology.NodeID, slot, dur int, in topology.Port) {
	d.tick++
	oldest := 0
	for i := range d.entries {
		e := &d.entries[i]
		if e.Valid && e.Dest == dest {
			e.Slot, e.Dur, e.In = slot, dur, in
			e.fail = 0
			e.stamp = d.tick
			return
		}
		if !e.Valid {
			oldest = i
			break
		}
		if e.stamp < d.entries[oldest].stamp {
			oldest = i
		}
	}
	d.entries[oldest] = DLTEntry{Valid: true, Dest: dest, Slot: slot, Dur: dur, In: in, stamp: d.tick}
}

// Find returns the entry for an exact destination match.
func (d *DLT) Find(dest topology.NodeID) (DLTEntry, bool) {
	for i := range d.entries {
		if d.entries[i].Valid && d.entries[i].Dest == dest {
			return d.entries[i], true
		}
	}
	return DLTEntry{}, false
}

// FindAdjacent returns an entry whose destination is one hop from dest —
// the combined hitchhiker + vicinity case where a message hops on at this
// node and hops off next to its real destination.
func (d *DLT) FindAdjacent(m topology.Mesh, dest topology.NodeID) (DLTEntry, bool) {
	for i := range d.entries {
		e := d.entries[i]
		if e.Valid && m.Adjacent(e.Dest, dest) {
			return e, true
		}
	}
	return DLTEntry{}, false
}

// Remove invalidates the entry for dest.
func (d *DLT) Remove(dest topology.NodeID) {
	for i := range d.entries {
		if d.entries[i].Valid && d.entries[i].Dest == dest {
			d.entries[i] = DLTEntry{}
			return
		}
	}
}

// RecordFailure bumps the 2-bit saturating counter for dest and reports
// whether it has saturated (counter reaches binary '10'); on saturation
// the entry is removed and the caller should issue a dedicated path setup.
func (d *DLT) RecordFailure(dest topology.NodeID) (saturated bool) {
	for i := range d.entries {
		e := &d.entries[i]
		if e.Valid && e.Dest == dest {
			if e.fail < 3 {
				e.fail++
			}
			if e.fail >= 2 {
				d.entries[i] = DLTEntry{}
				return true
			}
			return false
		}
	}
	return false
}

// RecordSuccess decays the failure counter for dest toward zero.
func (d *DLT) RecordSuccess(dest topology.NodeID) {
	for i := range d.entries {
		e := &d.entries[i]
		if e.Valid && e.Dest == dest && e.fail > 0 {
			e.fail--
			return
		}
	}
}

// Reset invalidates all entries (used on network-wide slot-table resizes,
// which destroy every circuit the DLT refers to).
func (d *DLT) Reset() {
	for i := range d.entries {
		d.entries[i] = DLTEntry{}
	}
}
