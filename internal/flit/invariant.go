package flit

import "tdmnoc/internal/invariant"

// HashPacket folds a packet's fields — including the mutable ones the
// protocol rewrites in place (Dst, Flits, Switching, Config) — into h.
// Used by the runtime invariant layer's determinism digest.
func HashPacket(h *invariant.Hasher, p *Packet) {
	if p == nil {
		h.Byte(0)
		return
	}
	h.Byte(1)
	h.Uint64(p.ID)
	h.Byte(byte(p.Kind))
	h.Int(int(p.Src))
	h.Int(int(p.Dst))
	h.Byte(byte(p.Class))
	h.Byte(byte(p.Switching))
	h.Int(p.Flits)
	h.Int(p.PSFlits)
	h.Int(p.Config.Slot)
	h.Int(p.Config.BaseSlot)
	h.Int(p.Config.Duration)
	h.Int(p.Config.Hop)
	h.Int(p.Config.Epoch)
	h.Bool(p.Config.OK)
	h.Int(p.Config.FailHop)
	h.Int(int(p.Config.CircuitDst))
	h.Int64(p.CreatedAt)
	h.Int64(p.InjectedAt)
	h.Int64(p.EjectedAt)
	h.Bool(p.HopOff)
	h.Int(int(p.HopOffDst))
	h.Int(p.ReplyFlits)
	h.Uint64(p.ReqID)
	h.Int(p.SlackHint)
}

// HashFlit folds one flit and its packet into h. A nil flit hashes as a
// single zero byte so presence and absence always hash differently.
func HashFlit(h *invariant.Hasher, f *Flit) {
	if f == nil {
		h.Byte(0)
		return
	}
	h.Byte(1)
	h.Byte(byte(f.Type))
	h.Int(f.Seq)
	h.Int(f.VC)
	h.Bool(f.CS)
	h.Int64(f.BufferedAt)
	h.Bool(f.Hitchhike)
	h.Byte(byte(f.ShareIn))
	HashPacket(h, f.Pkt)
}
