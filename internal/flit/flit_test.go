package flit

import (
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	want := map[Type]string{Head: "H", Body: "B", Tail: "T", HeadTail: "HT"}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q want %q", ty, ty.String(), s)
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type produced empty string")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{DataPacket: "data", SetupMsg: "setup", TeardownMsg: "teardown", AckMsg: "ack"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q want %q", k, k.String(), s)
		}
	}
}

func TestExplodeSingleFlit(t *testing.T) {
	p := &Packet{Flits: 1, Kind: SetupMsg}
	fs := Explode(p)
	if len(fs) != 1 {
		t.Fatalf("got %d flits", len(fs))
	}
	f := fs[0]
	if f.Type != HeadTail || !f.IsHead() || !f.IsTail() {
		t.Fatalf("single flit not HeadTail: %+v", f)
	}
}

func TestExplodeMultiFlit(t *testing.T) {
	p := &Packet{Flits: 5}
	fs := Explode(p)
	if len(fs) != 5 {
		t.Fatalf("got %d flits", len(fs))
	}
	if fs[0].Type != Head {
		t.Error("first flit not Head")
	}
	for i := 1; i < 4; i++ {
		if fs[i].Type != Body {
			t.Errorf("flit %d not Body", i)
		}
	}
	if fs[4].Type != Tail {
		t.Error("last flit not Tail")
	}
	for i, f := range fs {
		if f.Seq != i {
			t.Errorf("flit %d has Seq %d", i, f.Seq)
		}
		if f.Pkt != p {
			t.Errorf("flit %d does not point at packet", i)
		}
	}
}

func TestExplodeZeroFlitsDefaultsToOne(t *testing.T) {
	fs := Explode(&Packet{Flits: 0})
	if len(fs) != 1 || fs[0].Type != HeadTail {
		t.Fatalf("zero-flit packet exploded to %d flits", len(fs))
	}
}

func TestExplodeCSMarking(t *testing.T) {
	p := &Packet{Flits: 4, Switching: CircuitSwitched}
	for _, f := range Explode(p) {
		if !f.CS {
			t.Fatal("circuit-switched packet produced non-CS flit")
		}
	}
	q := &Packet{Flits: 4, Switching: PacketSwitched}
	for _, f := range Explode(q) {
		if f.CS {
			t.Fatal("packet-switched packet produced CS flit")
		}
	}
}

func TestExplodeStructureProperty(t *testing.T) {
	// Property: exactly one head, exactly one tail, seq is 0..n-1.
	f := func(n8 uint8) bool {
		n := int(n8%16) + 1
		fs := Explode(&Packet{Flits: n})
		if len(fs) != n {
			return false
		}
		heads, tails := 0, 0
		for i, fl := range fs {
			if fl.Seq != i {
				return false
			}
			if fl.IsHead() {
				heads++
			}
			if fl.IsTail() {
				tails++
			}
		}
		return heads == 1 && tails == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencies(t *testing.T) {
	p := &Packet{CreatedAt: 10, InjectedAt: 15, EjectedAt: 40}
	if l := p.NetworkLatency(); l != 25 {
		t.Errorf("network latency %d, want 25", l)
	}
	if l := p.TotalLatency(); l != 30 {
		t.Errorf("total latency %d, want 30", l)
	}
	unfinished := &Packet{CreatedAt: 10, InjectedAt: 15}
	if l := unfinished.NetworkLatency(); l != -1 {
		t.Errorf("unfinished network latency %d, want -1", l)
	}
	if l := unfinished.TotalLatency(); l != -1 {
		t.Errorf("unfinished total latency %d, want -1", l)
	}
	fresh := &Packet{}
	if l := fresh.NetworkLatency(); l != -1 {
		t.Errorf("fresh packet latency %d, want -1", l)
	}
}
