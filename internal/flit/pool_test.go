package flit

import "testing"

// TestPoolSizingScalesWithArea pins the area-scaling contract: the 6x6
// reference mesh keeps the tuned constants, larger meshes grow
// monotonically, and — the structural starvation guarantee — the
// prewarmed stock always exceeds the spill mark, so the network-wide
// packet population is larger than what the per-NI lists can park
// below their spill marks and the shared tier always ends up holding
// refill stock.
func TestPoolSizingScalesWithArea(t *testing.T) {
	areas := []int{1, 16, 36, 64, 100, 256, 1024}
	prevSpill, prevPrewarm := 0, 0
	for _, area := range areas {
		p := NewPool(NewSharedPool(area), area)
		if len(p.free) <= p.spillMark {
			t.Errorf("area %d: prewarm %d not above spill mark %d", area, len(p.free), p.spillMark)
		}
		if p.cap < len(p.free) {
			t.Errorf("area %d: cap %d below prewarm %d", area, p.cap, len(p.free))
		}
		if p.spillMark < prevSpill || len(p.free) < prevPrewarm {
			t.Errorf("area %d: sizing shrank (spill %d->%d, prewarm %d->%d)",
				area, prevSpill, p.spillMark, prevPrewarm, len(p.free))
		}
		prevSpill, prevPrewarm = p.spillMark, len(p.free)
	}

	// Small meshes keep the tuned 6x6 reference depths.
	small := NewPool(nil, 36)
	tiny := NewPool(nil, 4)
	if len(small.free) != len(tiny.free) || small.spillMark != tiny.spillMark {
		t.Errorf("sub-reference meshes diverge from the 6x6 depths: %d/%d vs %d/%d",
			len(tiny.free), tiny.spillMark, len(small.free), small.spillMark)
	}

	// An 8x8 mesh must get deeper pools than the 6x6 reference — the
	// fig6 starvation regression this sizing exists to prevent.
	big := NewPool(nil, 64)
	if len(big.free) <= len(small.free) || big.spillMark <= small.spillMark {
		t.Errorf("8x8 pool (%d/%d) not deeper than 6x6 (%d/%d)",
			len(big.free), big.spillMark, len(small.free), small.spillMark)
	}
}

// TestScalePoolSqrt pins the square-root growth used for the spill
// mark: exact at the reference, ~sqrt(area ratio) above it.
func TestScalePoolSqrt(t *testing.T) {
	if got := scalePoolSqrt(96, 36); got != 96 {
		t.Errorf("scalePoolSqrt(96, 36) = %d, want 96", got)
	}
	// 4x the area must give ~2x the depth (rounded up).
	got := scalePoolSqrt(96, 144)
	if got < 192 || got > 194 {
		t.Errorf("scalePoolSqrt(96, 144) = %d, want ~192", got)
	}
}
