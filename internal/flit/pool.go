package flit

import "sync"

// Pool is a free list of Packet objects, including their embedded flit
// storage (see ExplodeInto). Each NI owns one, so Get/Put need no
// synchronisation even under the parallel executor: a packet is taken
// from the sending NI's pool and returned to the delivering NI's pool,
// both inside that NI's own compute phase.
//
// Ownership contract: a packet may be Put only when nothing in the
// simulation can still reach it — in practice, exactly when its tail
// flit is consumed at its final destination (delivery of a data packet,
// consumption of an ack/teardown). Flits of one packet travel in order
// over a single path and the source stream has necessarily finished
// before the tail arrives, so tail consumption proves every flit and
// every reference to the packet is dead. Loopback deliveries are the
// one exception — the caller of Send keeps the returned pointer to
// annotate it — and are simply never recycled.
//
// The free list is capped: asymmetric patterns (hotspot) deliver more
// packets at some nodes than they inject, and an uncapped list would
// grow without bound there. A nil *Pool is valid and disables
// recycling: Get allocates, Put discards — that is the default for raw
// network.Config users, some of which retain delivered packets.
type Pool struct {
	free []*Packet
	// cap and spillMark are the area-scaled per-NI depths (see
	// scalePool).
	cap       int
	spillMark int
	// overflow is the optional shared second tier: Put spills a batch
	// there when the local list passes spillMark, Get refills from
	// there when it is empty.
	overflow *SharedPool
	// scratch is the reusable transfer buffer for spill batches.
	scratch []*Packet
}

// The pool sizes below are per-NI burst depths. They scale with mesh
// area because the packet population a tile's pool must ride out grows
// with the network: average path length (and with it rate x latency
// in-flight depth), circuit setup queueing, and the send/receive skew
// of asymmetric patterns all deepen on larger meshes. The reference
// constants are the values tuned for the paper's 6x6 mesh (area 36);
// scalePool keeps them exact there and grows them linearly with area,
// so an 8x8 run gets ~1.8x the 6x6 depths instead of starving at the
// 6x6 constants and allocating on the hot path forever.
const refArea = 36

// scalePool grows a 6x6-reference depth linearly with mesh area,
// never shrinking below the reference (tiny meshes keep the tuned
// minimums — burst depth is set by traffic variance, not area, at the
// small end).
func scalePool(ref, area int) int {
	if area <= refArea {
		return ref
	}
	return (ref*area + refArea - 1) / refArea
}

// scalePoolSqrt grows a 6x6-reference depth with the square root of
// the area ratio — the scaling of average path length, and with it the
// per-NI in-flight packet depth (rate x latency), on a 2D mesh.
func scalePoolSqrt(ref, area int) int {
	if area <= refArea {
		return ref
	}
	// Integer sqrt of (ref^2 * area / refArea), rounded up.
	target := ref * ref * area / refArea
	n := ref
	for n*n < target {
		n++
	}
	return n
}

// refPoolCap bounds the per-NI free list. 256 packets absorb the
// send/receive rate fluctuations of the symmetric synthetic patterns
// on the 6x6 mesh; surplus spills to the shared tier (or the garbage
// collector).
const refPoolCap = 256

// refPoolSpillMark is the local length beyond which Put moves a batch
// to the shared tier. Spilling at a watermark below the cap matters:
// traffic with a chronic per-tile send/receive imbalance (path sharing
// delivers hitchhiker payloads near, not at, their reserved
// destination) makes some pools accumulate and others starve, and if
// the accumulating side only shared its surplus at the hard cap it
// would never reach, the starving side would allocate fresh packets
// forever.
const refPoolSpillMark = 96

// poolBatch is how many packets move between a local list and the
// shared tier per transfer, amortising the shared tier's lock. A batch
// is a lock-amortisation unit, not a burst depth, so it does not scale.
const poolBatch = 32

// refSharedCap bounds the shared overflow tier on the 6x6 mesh.
const refSharedCap = 4096

// SharedPool is a mutex-guarded overflow tier shared by all per-NI
// pools of one network. Traffic that migrates packets between tiles
// asymmetrically (path sharing delivers hitchhiker payloads near, not
// at, their reserved destination; hotspot concentrates deliveries)
// slowly overfills some per-NI lists while starving others; without a
// shared tier the overfull side drops packets to the GC while the
// starved side allocates fresh ones, forever. The lock is uncontended
// in practice: it is only touched on local-list overflow or underflow,
// both rare once the packet population has stabilised.
type SharedPool struct {
	mu   sync.Mutex
	cap  int
	free []*Packet
}

// NewSharedPool returns an empty shared overflow tier sized for a mesh
// of the given area (tile count).
func NewSharedPool(area int) *SharedPool {
	return &SharedPool{cap: scalePool(refSharedCap, area)}
}

// getBatch moves up to max packets from the shared tier into dst,
// returning the extended slice.
func (s *SharedPool) getBatch(dst []*Packet, max int) []*Packet {
	if s == nil {
		return dst
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < max; i++ {
		n := len(s.free) - 1
		if n < 0 {
			break
		}
		dst = append(dst, s.free[n])
		s.free[n] = nil
		s.free = s.free[:n]
	}
	return dst
}

// putBatch moves the packets in src into the shared tier (dropping the
// overflow past sharedCap to the GC) and returns src truncated to
// length zero with its slots cleared.
func (s *SharedPool) putBatch(src []*Packet) []*Packet {
	if s == nil {
		return src
	}
	s.mu.Lock()
	for _, pk := range src {
		if len(s.free) >= s.cap {
			break
		}
		s.free = append(s.free, pk)
	}
	s.mu.Unlock()
	for i := range src {
		src[i] = nil
	}
	return src[:0]
}

// Free reports the shared tier's current length (for tests and
// diagnostics).
func (s *SharedPool) Free() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free)
}

// refPoolPrewarm is the free-list stock each pool starts with on the
// 6x6 mesh. Injection is bursty: a tile's pool can momentarily drain
// to empty while its long-term send/receive balance is fine, and every
// such dip would otherwise allocate a fresh packet. Starting above the
// observed dip depth keeps the steady-state hot path allocation-free
// from the first measured cycle instead of asymptotically.
const refPoolPrewarm = 64

// maxPrewarmPackets caps the network-wide prewarm stock (per-NI prewarm
// times area). The sqrt-scaled per-NI prewarm times a quadratically
// growing tile count is super-linear in area: on a 128x128 mesh the
// uncapped formula would prewarm ~35 M packets (tens of GB) before the
// first cycle. Above the cap, the per-NI prewarm shrinks to its fair
// share of the budget and the free lists grow organically from returned
// packets instead — trading a bounded number of ramp-up allocations for
// a construction footprint that stays linear in area. The cap only
// engages beyond ~45x45 meshes, so every tuned miniature (and the 32x32
// zero-alloc gate) keeps the exact historical depths.
const maxPrewarmPackets = 1 << 21

// flitQuantum is ExplodeInto's capacity rounding unit; prewarmed
// packets pre-size their embedded flit storage to it so even a packet's
// first explosion allocates nothing.
const flitQuantum = 8

// NewPool returns a pre-warmed pool with depths scaled for a mesh of
// the given area (tile count). A non-nil overflow links the pool into
// a shared second tier; nil keeps the pool standalone.
func NewPool(overflow *SharedPool, area int) *Pool {
	// The spill mark tracks per-NI in-flight depth (sqrt of area, like
	// path length); the prewarm sits two transfer batches above it so
	// the network-wide packet population strictly exceeds what the
	// per-NI lists can park below their spill marks — the structural
	// guarantee that the shared tier always holds stock for a starved
	// pool to refill from (see the pool-sizing note above).
	spillMark := scalePoolSqrt(refPoolSpillMark, area)
	prewarm := spillMark + 2*poolBatch
	if prewarm < refPoolPrewarm {
		prewarm = refPoolPrewarm
	}
	listCap := scalePool(refPoolCap, area)
	if budget := maxPrewarmPackets / area; prewarm > budget {
		// Very large mesh: bound construction memory (see
		// maxPrewarmPackets). The list capacity shrinks with the prewarm —
		// an area-scaled backing array of pointers would itself cost GBs
		// across all NIs — at the price of a rare amortised append growth
		// when a list outgrows it.
		prewarm = max(budget, poolBatch)
		listCap = min(listCap, 4*prewarm)
	}
	if listCap < prewarm {
		listCap = prewarm + poolBatch
	}
	p := &Pool{
		free:      make([]*Packet, prewarm, listCap),
		cap:       listCap,
		spillMark: spillMark,
		overflow:  overflow,
	}
	if overflow != nil {
		p.scratch = make([]*Packet, 0, poolBatch)
	}
	// Block-allocate the prewarm stock: one Packet slab plus contiguous
	// flit storage, carved per packet with full-capacity slices. The old
	// per-packet allocations scattered the stock across the heap and
	// tripled the object count the GC must walk; a packet that later
	// outgrows its quantum reallocates its storage out of the slab
	// harmlessly (ExplodeInto replaces, never appends past capacity).
	pkts := make([]Packet, prewarm)
	store := make([]Flit, prewarm*flitQuantum)
	ptrs := make([]*Flit, prewarm*flitQuantum)
	for i := range pkts {
		o := i * flitQuantum
		pkts[i].store = store[o : o : o+flitQuantum]
		pkts[i].ptrs = ptrs[o : o : o+flitQuantum]
		p.free[i] = &pkts[i]
	}
	return p
}

// Get returns a zeroed packet, recycling a free one when available.
//
// Which recycled object a caller receives depends on pool traffic and,
// through the shared tier, on worker scheduling — but that can never
// affect results: Put zeroes every field, so a recycled packet is
// indistinguishable from a fresh allocation, and nothing in the
// simulation keys on packet object identity.
func (p *Pool) Get() *Packet {
	if p == nil {
		return &Packet{}
	}
	if len(p.free) == 0 && p.overflow != nil {
		p.free = p.overflow.getBatch(p.free[:0], poolBatch)
	}
	if n := len(p.free) - 1; n >= 0 {
		pk := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		return pk
	}
	return &Packet{}
}

// Put recycles a dead packet. The packet is zeroed here (keeping its
// flit storage) so a recycled Get is indistinguishable from a fresh
// allocation; stale flit values in the storage are harmless because
// ExplodeInto rewrites every flit before the packet re-enters the
// network.
func (p *Pool) Put(pk *Packet) {
	if p == nil || pk == nil {
		return
	}
	store, ptrs := pk.store, pk.ptrs
	*pk = Packet{store: store, ptrs: ptrs}
	if len(p.free) >= p.cap {
		return // standalone pool backstop (overflow pools spill below)
	}
	p.free = append(p.free, pk)
	if p.overflow != nil && len(p.free) > p.spillMark {
		n := len(p.free) - poolBatch
		p.scratch = append(p.scratch[:0], p.free[n:]...)
		for i := n; i < len(p.free); i++ {
			p.free[i] = nil
		}
		p.free = p.free[:n]
		p.scratch = p.overflow.putBatch(p.scratch)
	}
}

// Free reports the current free-list length (for tests and diagnostics).
func (p *Pool) Free() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
