// Package flit defines the messages that traverse the network: packets,
// their constituent flits, and the circuit-switching configuration
// messages (setup / teardown / ack) of Section II-B of the paper.
package flit

import (
	"fmt"

	"tdmnoc/internal/topology"
)

// Type distinguishes the position of a flit within its packet.
type Type uint8

const (
	// Head carries routing information and allocates the VC.
	Head Type = iota
	// Body follows the head on the wormhole path.
	Body
	// Tail releases the VC when it departs.
	Tail
	// HeadTail is a single-flit packet (configuration messages).
	HeadTail
)

// String returns a short mnemonic for the flit type.
func (t Type) String() string {
	switch t {
	case Head:
		return "H"
	case Body:
		return "B"
	case Tail:
		return "T"
	case HeadTail:
		return "HT"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Kind classifies a packet by its role in the protocol.
type Kind uint8

const (
	// DataPacket is ordinary payload traffic (request or reply).
	DataPacket Kind = iota
	// SetupMsg requests reservation of circuit-switched time slots along
	// its path (1 flit).
	SetupMsg
	// TeardownMsg releases a reservation, following the reserved path via
	// the slot tables (1 flit).
	TeardownMsg
	// AckMsg reports setup success or failure back to the source (1 flit).
	AckMsg
)

// String returns the protocol name of the packet kind.
func (k Kind) String() string {
	switch k {
	case DataPacket:
		return "data"
	case SetupMsg:
		return "setup"
	case TeardownMsg:
		return "teardown"
	case AckMsg:
		return "ack"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// TrafficClass labels which kind of tile generated a packet; the
// heterogeneous evaluation (Section V) packet-switches all CPU traffic and
// hybrid-switches only GPU traffic.
type TrafficClass uint8

const (
	// ClassCPU marks coherence/data-sharing traffic from superscalar cores.
	ClassCPU TrafficClass = iota
	// ClassGPU marks throughput-intensive streaming traffic from
	// data-parallel accelerators.
	ClassGPU
	// ClassConfig marks circuit-switching configuration messages.
	ClassConfig
	// ClassOther marks traffic from L2 banks and memory controllers
	// (replies inherit the class of the request in the hetero model).
	ClassOther
)

// Switching says how a packet is being forwarded.
type Switching uint8

const (
	// PacketSwitched packets are buffered/routed at each hop.
	PacketSwitched Switching = iota
	// CircuitSwitched packets ride reserved TDM slots, bypassing buffers.
	CircuitSwitched
)

// ConfigPayload is the content of a setup/teardown message (Section II-B):
// the reservation's starting slot at the *current* hop and the number of
// consecutive slots it needs. Slot is advanced by 2 per hop as the message
// travels, mirroring the two-stage circuit-switched pipeline.
type ConfigPayload struct {
	Slot     int  // starting slot index at the hop now processing the message
	BaseSlot int  // starting slot at the source, recorded for registry bookkeeping
	Duration int  // number of consecutive slots reserved
	Hop      int  // hops traversed (and, for setups, reserved) so far
	Epoch    int  // slot-table sizing epoch; stale-epoch setups are rejected
	OK       bool // for AckMsg: whether setup succeeded
	FailHop  int  // for AckMsg on failure: hops successfully reserved before the failing router

	// CircuitDst is the destination of the circuit a config message
	// refers to; acks need it because their own Dst is the requesting
	// source node.
	CircuitDst topology.NodeID
}

// Packet is the unit of end-to-end communication.
type Packet struct {
	ID   uint64
	Kind Kind
	Src  topology.NodeID
	Dst  topology.NodeID

	Class     TrafficClass
	Switching Switching

	// Flits is the packet length in flits. Per Table I: 1 for
	// configuration messages, 4 for circuit-switched data, 5 for
	// packet-switched data (and for circuit-switched data when
	// vicinity-sharing adds a header flit).
	Flits int
	// PSFlits is the length this packet has in packet-switched form; a
	// circuit-switched packet that falls back to packet switching (or
	// continues after a vicinity hop-off) is re-sized to it.
	PSFlits int

	Config ConfigPayload

	// CreatedAt is the cycle the packet was handed to the source NI;
	// InjectedAt is the cycle its head flit entered the network;
	// EjectedAt is the cycle its tail flit reached the destination NI.
	CreatedAt  int64
	InjectedAt int64
	EjectedAt  int64

	// HopOffDst is set for vicinity-sharing: the circuit delivers the
	// packet to an intermediate node (Dst of the circuit) and the packet
	// continues packet-switched to HopOffDst.
	HopOffDst topology.NodeID
	HopOff    bool

	// Reply handling for the heterogeneous model: if ReplyFlits > 0 the
	// destination NI generates a reply of that many flits back to Src.
	ReplyFlits int
	// ReqID ties a reply to the request that caused it.
	ReqID uint64

	// SlackHint carries the sender's latency tolerance (in cycles beyond
	// the packet-switched estimate) so that reply generators can give
	// responses the same slack the requester advertised (Section V-A2's
	// warp-derived GPU slack).
	SlackHint int

	// store and ptrs are the packet's embedded flit storage, filled by
	// ExplodeInto and reused across re-explosions (vicinity hop-off
	// re-injection) and Pool recycles. Keeping the flits inside the
	// packet ties their lifetime to the packet's: when the tail flit is
	// delivered, every flit is provably dead too (flits of one packet
	// travel in order on one path), so the whole object can be recycled
	// at once. Not part of the invariant hash — only live flit values
	// reachable through simulation state are.
	store []Flit
	ptrs  []*Flit
}

// Flit is the unit of link-level transfer.
type Flit struct {
	Pkt  *Packet
	Type Type
	Seq  int // position within the packet, 0-based

	// VC is the virtual channel currently occupied (packet-switched only).
	VC int

	// CS marks a flit travelling on a reserved circuit.
	CS bool

	// BufferedAt is the cycle this flit was written into the current
	// router's input buffer (set per hop; used by the latency-based VC
	// gating policy to measure buffer residency).
	BufferedAt int64

	// Hitchhike marks a CS flit that is sharing another source's circuit
	// (Section III-A1). ShareIn is the router input port the shared
	// circuit enters on at the hop-on node; the router forwards the flit
	// from its local port to the circuit's reserved output, provided no
	// owner flit arrives on ShareIn in the same slot.
	Hitchhike bool
	ShareIn   topology.Port
}

// IsHead reports whether the flit carries routing info.
func (f *Flit) IsHead() bool { return f.Type == Head || f.Type == HeadTail }

// IsTail reports whether the flit ends its packet.
func (f *Flit) IsTail() bool { return f.Type == Tail || f.Type == HeadTail }

// Explode builds the flit sequence for a packet, allocating fresh flits.
// The hot injection path uses ExplodeInto instead; Explode remains for
// callers without a recycling discipline (the SDM engine, tests).
func Explode(p *Packet) []*Flit {
	out := make([]*Flit, flitCount(p))
	for i := range out {
		out[i] = &Flit{}
		initFlit(out[i], p, i, len(out))
	}
	return out
}

// ExplodeInto builds the flit sequence inside the packet's own embedded
// storage, allocating only on first use (or growth) of a given packet
// object. The returned slice and the flits it points to are owned by
// the packet: they are reused verbatim by the next ExplodeInto on the
// same packet and die with it when a Pool recycles it, so callers must
// not hold them past the packet's delivery.
func (p *Packet) ExplodeInto() []*Flit {
	n := flitCount(p)
	if cap(p.store) < n {
		// Round the capacity up so a recycled packet that carried a short
		// message (1-flit setup) grows at most once when reused for a
		// longer one: packet sizes in any given run are bounded, so the
		// stores converge and steady-state injection stops allocating.
		c := (n + 7) &^ 7
		p.store = make([]Flit, n, c)
		p.ptrs = make([]*Flit, n, c)
	}
	p.store = p.store[:n]
	p.ptrs = p.ptrs[:n]
	for i := 0; i < n; i++ {
		p.store[i] = Flit{}
		initFlit(&p.store[i], p, i, n)
		p.ptrs[i] = &p.store[i]
	}
	return p.ptrs
}

func flitCount(p *Packet) int {
	if p.Flits <= 0 {
		return 1
	}
	return p.Flits
}

func initFlit(f *Flit, p *Packet, i, n int) {
	var t Type
	switch {
	case n == 1:
		t = HeadTail
	case i == 0:
		t = Head
	case i == n-1:
		t = Tail
	default:
		t = Body
	}
	f.Pkt = p
	f.Type = t
	f.Seq = i
	f.CS = p.Switching == CircuitSwitched
}

// NetworkLatency returns inject-to-eject latency in cycles, or -1 if the
// packet has not been ejected.
func (p *Packet) NetworkLatency() int64 {
	if p.EjectedAt == 0 && p.InjectedAt == 0 {
		return -1
	}
	if p.EjectedAt < p.InjectedAt {
		return -1
	}
	return p.EjectedAt - p.InjectedAt
}

// TotalLatency returns creation-to-eject latency (includes source queueing
// and circuit-slot stall time), or -1 if not yet ejected.
func (p *Packet) TotalLatency() int64 {
	if p.EjectedAt < p.CreatedAt {
		return -1
	}
	return p.EjectedAt - p.CreatedAt
}
