// Heterogeneous system study: run one CPU+GPU workload mix of Section V
// over the four Fig. 8 network configurations and report energy and
// performance — the reproduction of the paper's realistic evaluation in
// miniature.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"tdmnoc/hsnoc"
)

func main() {
	const cpuBench, gpuBench = "EQUAKE", "BLACKSCHOLES"
	const warmup, measure = 6000, 30000

	type variant struct {
		name string
		cfg  hsnoc.Config
	}
	base := hsnoc.DefaultConfig(6, 6)
	tdm := base
	tdm.Mode = hsnoc.HybridTDM
	hop := tdm
	hop.PathSharing = true
	hopVCt := hop
	hopVCt.VCPowerGating = true
	variants := []variant{
		{"Packet-VC4", base},
		{"Hybrid-TDM-VC4", tdm},
		{"Hybrid-TDM-hop-VC4", hop},
		{"Hybrid-TDM-hop-VCt", hopVCt},
	}

	fmt.Printf("workload mix %s (GPU) x %s (CPU) on the Fig. 7 36-tile system\n\n", gpuBench, cpuBench)
	fmt.Printf("%-20s %10s %10s %10s %8s %8s\n", "configuration", "energy(uJ)", "CPU instr", "GPU ops", "GPU cs%", "saving")

	var baseline hsnoc.HeteroResults
	for i, v := range variants {
		h, err := hsnoc.NewHeterogeneous(v.cfg, cpuBench, gpuBench)
		if err != nil {
			log.Fatal(err)
		}
		h.Warmup(warmup)
		res := h.Run(measure)
		h.Close()
		if i == 0 {
			baseline = res
		}
		saving := 1 - res.Energy.TotalPJ/baseline.Energy.TotalPJ
		fmt.Printf("%-20s %10.1f %10d %10d %7.1f%% %7.1f%%\n",
			v.name, res.Energy.TotalPJ/1e6, res.CPUInstructions, res.GPUIterations,
			100*res.GPUCSFraction, 100*saving)
	}

	fmt.Println("\nCPU traffic stays packet-switched (Section V-A2); only GPU messages")
	fmt.Println("with enough warp slack ride circuits, so CPU performance is nearly")
	fmt.Println("untouched while the network energy drops.")
}
