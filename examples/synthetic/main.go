// Synthetic load-latency study: sweep offered load for three switching
// architectures under transpose traffic and print the Fig. 4-style curve,
// including the SDM baseline's early saturation and the TDM network's
// latency win.
//
//	go run ./examples/synthetic
package main

import (
	"fmt"

	"tdmnoc/hsnoc"
)

func run(mode hsnoc.Mode, rate float64) hsnoc.Results {
	cfg := hsnoc.DefaultConfig(6, 6)
	cfg.Mode = mode
	s := hsnoc.NewSynthetic(cfg, hsnoc.Transpose, rate)
	defer s.Close()
	s.Warmup(6000)
	return s.Run(25000)
}

func main() {
	rates := []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.40}
	modes := []hsnoc.Mode{hsnoc.PacketSwitched, hsnoc.HybridSDM, hsnoc.HybridTDM}

	fmt.Println("transpose traffic, 6x6 mesh: accepted payload throughput / avg total latency")
	fmt.Printf("%8s", "offered")
	for _, m := range modes {
		fmt.Printf(" %22v", m)
	}
	fmt.Println()
	for _, r := range rates {
		fmt.Printf("%8.2f", r)
		for _, m := range modes {
			res := run(m, r)
			fmt.Printf("      %6.3f / %8.1f", res.PayloadThroughput, res.AvgTotalLatency)
		}
		fmt.Println()
	}
	fmt.Println("\nnote how the SDM baseline saturates first (plane serialization)")
	fmt.Println("while the TDM network sustains the highest accepted load with the")
	fmt.Println("lowest latency — the Section IV-B result.")
}
