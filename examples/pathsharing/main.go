// Path-sharing demo: circuit-switched path sharing (Section III-A) lets
// nodes without their own circuit ride passing ones. This example drives
// a convergecast workload — many sources on a row sending to one sink —
// so hitchhiker-sharing (hop on along the path) and vicinity-sharing
// (hop off next to the destination) both fire, and compares the sharing
// and non-sharing hybrid networks.
//
//	go run ./examples/pathsharing
package main

import (
	"fmt"

	"tdmnoc/hsnoc"
)

func run(sharing bool) hsnoc.Results {
	cfg := hsnoc.DefaultConfig(6, 6)
	cfg.Mode = hsnoc.HybridTDM
	cfg.PathSharing = sharing
	// Hotspot traffic: most packets head for four central tiles, so many
	// sources lie on other sources' circuits — ideal hitchhiking
	// territory, and adjacent hot tiles invite vicinity hop-offs.
	s := hsnoc.NewSynthetic(cfg, hsnoc.Hotspot, 0.12)
	defer s.Close()
	s.Warmup(8000)
	return s.Run(40000)
}

func main() {
	plain := run(false)
	shared := run(true)

	fmt.Println("hotspot traffic, 6x6 mesh, Hybrid-TDM with and without path sharing")
	fmt.Printf("%-26s %14s %14s\n", "", "no sharing", "sharing (hop)")
	fmt.Printf("%-26s %14.1f %14.1f\n", "avg total latency (cyc)", plain.AvgTotalLatency, shared.AvgTotalLatency)
	fmt.Printf("%-26s %13.1f%% %13.1f%%\n", "circuit-switched flits", 100*plain.CSFlitFraction, 100*shared.CSFlitFraction)
	fmt.Printf("%-26s %14d %14d\n", "circuits established", plain.CircuitsEstablished, shared.CircuitsEstablished)
	fmt.Printf("%-26s %14d %14d\n", "hitchhike rides", plain.Hitchhikes, shared.Hitchhikes)
	fmt.Printf("%-26s %14d %14d\n", "vicinity rides", plain.VicinityRides, shared.VicinityRides)
	fmt.Printf("%-26s %14.1f %14.1f\n", "energy (uJ)", plain.Energy.TotalPJ/1e6, shared.Energy.TotalPJ/1e6)
	fmt.Printf("\nsharing lets messages use circuits they never set up, adding %.1f%%\n",
		100*shared.EnergySavingVs(plain))
	fmt.Println("energy saving on top of the basic hybrid scheme (Section V-B3).")
}
