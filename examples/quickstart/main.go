// Quickstart: simulate the same tornado workload on the packet-switched
// baseline and on the TDM hybrid-switched network, and compare latency,
// throughput and energy — the paper's headline comparison in miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"tdmnoc/hsnoc"
)

func main() {
	const (
		rate    = 0.15 // offered load, flits/node/cycle
		warmup  = 8000
		measure = 40000
	)

	// The Packet-VC4 baseline: Table I's canonical 4-VC wormhole router.
	baseCfg := hsnoc.DefaultConfig(6, 6)
	base := hsnoc.NewSynthetic(baseCfg, hsnoc.Tornado, rate)
	defer base.Close()
	base.Warmup(warmup)
	baseRes := base.Run(measure)

	// The hybrid-switched network: same fabric, shared by packet- and
	// circuit-switched traffic through TDM slot tables.
	tdmCfg := hsnoc.DefaultConfig(6, 6)
	tdmCfg.Mode = hsnoc.HybridTDM
	tdm := hsnoc.NewSynthetic(tdmCfg, hsnoc.Tornado, rate)
	defer tdm.Close()
	tdm.Warmup(warmup)
	tdmRes := tdm.Run(measure)

	fmt.Println("tornado traffic, 6x6 mesh, offered", rate, "flits/node/cycle")
	fmt.Printf("%-22s %12s %12s\n", "", "Packet-VC4", "Hybrid-TDM")
	fmt.Printf("%-22s %12.1f %12.1f\n", "avg net latency (cyc)", baseRes.AvgNetLatency, tdmRes.AvgNetLatency)
	fmt.Printf("%-22s %12.3f %12.3f\n", "accepted (payload)", baseRes.PayloadThroughput, tdmRes.PayloadThroughput)
	fmt.Printf("%-22s %12.1f %12.1f\n", "energy (uJ)", baseRes.Energy.TotalPJ/1e6, tdmRes.Energy.TotalPJ/1e6)
	fmt.Printf("%-22s %12s %11.1f%%\n", "circuit-switched", "-", 100*tdmRes.CSFlitFraction)
	fmt.Printf("\nhybrid switching saves %.1f%% network energy on this workload\n",
		100*tdmRes.EnergySavingVs(baseRes))

	if d := tdm.Diagnose(); d.MisroutedCS != 0 || d.DroppedCS != 0 {
		fmt.Printf("invariant violations: %+v\n", d)
	}
}
