// Trace-driven simulation: synthesize a traffic trace once, then replay
// the identical workload on two network configurations — the methodology
// NoC papers (this one included) use to compare architectures on equal
// footing.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"

	"tdmnoc/internal/network"
	"tdmnoc/internal/topology"
	"tdmnoc/internal/trace"
	"tdmnoc/internal/traffic"
)

func replay(tr *trace.Trace, cfg network.Config) (avgLat float64, energyUJ float64, cs float64) {
	reps := trace.NewReplayers(tr, 0)
	net := network.New(cfg, func(id topology.NodeID) network.Endpoint {
		if r := reps[id]; r != nil {
			return r
		}
		return nil
	})
	defer net.Close()
	net.EnableStats()
	net.Run(int(tr.Duration()) + 10)
	net.Drain(100000)
	st := net.Stats()
	avgLat, _ = st.AvgTotalLatency()
	return avgLat, net.Energy().TotalPJ() / 1e6, st.CSFlitFraction()
}

func main() {
	mesh := topology.NewMesh(6, 6)
	tr := trace.Synthesize(traffic.Hotspot, mesh, 0.12, 5, 30000, 42)
	fmt.Printf("synthesized %d hotspot events over %d cycles\n\n", len(tr.Events), tr.Duration())

	psLat, psE, _ := replay(tr, network.DefaultConfig(6, 6))
	tdmLat, tdmE, tdmCS := replay(tr, network.HybridTDMConfig(6, 6))

	fmt.Printf("%-14s %12s %12s %8s\n", "network", "avg latency", "energy (uJ)", "cs%")
	fmt.Printf("%-14s %12.1f %12.1f %8s\n", "Packet-VC4", psLat, psE, "-")
	fmt.Printf("%-14s %12.1f %12.1f %7.1f%%\n", "Hybrid-TDM", tdmLat, tdmE, 100*tdmCS)
	fmt.Printf("\nidentical traffic, %.1f%% less energy on the hybrid network\n", 100*(1-tdmE/psE))
}
