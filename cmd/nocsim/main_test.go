package main

import (
	"testing"

	"tdmnoc/hsnoc"
)

func TestParseMode(t *testing.T) {
	cases := map[string]hsnoc.Mode{
		"packet": hsnoc.PacketSwitched, "PS": hsnoc.PacketSwitched, "Packet-VC4": hsnoc.PacketSwitched,
		"tdm": hsnoc.HybridTDM, "Hybrid-TDM": hsnoc.HybridTDM,
		"sdm": hsnoc.HybridSDM,
	}
	for in, want := range cases {
		got, err := parseMode(in)
		if err != nil || got != want {
			t.Errorf("parseMode(%q) = (%v,%v), want %v", in, got, err, want)
		}
	}
	if _, err := parseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestParsePattern(t *testing.T) {
	cases := map[string]hsnoc.Pattern{
		"ur": hsnoc.UniformRandom, "uniform": hsnoc.UniformRandom,
		"tornado": hsnoc.Tornado, "TOR": hsnoc.Tornado,
		"tr": hsnoc.Transpose, "transpose": hsnoc.Transpose,
		"bc": hsnoc.BitComplement, "neighbor": hsnoc.Neighbor,
	}
	for in, want := range cases {
		got, err := parsePattern(in)
		if err != nil || got != want {
			t.Errorf("parsePattern(%q) = (%v,%v), want %v", in, got, err, want)
		}
	}
	if _, err := parsePattern("bogus"); err == nil {
		t.Error("bogus pattern accepted")
	}
}
