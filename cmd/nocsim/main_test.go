package main

import (
	"testing"

	"tdmnoc/hsnoc"
)

func TestParseMode(t *testing.T) {
	cases := map[string]hsnoc.Mode{
		"packet": hsnoc.PacketSwitched, "PS": hsnoc.PacketSwitched, "Packet-VC4": hsnoc.PacketSwitched,
		"tdm": hsnoc.HybridTDM, "Hybrid-TDM": hsnoc.HybridTDM,
		"sdm": hsnoc.HybridSDM,
	}
	for in, want := range cases {
		got, err := parseMode(in)
		if err != nil || got != want {
			t.Errorf("parseMode(%q) = (%v,%v), want %v", in, got, err, want)
		}
	}
	if _, err := parseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestValidatePolicyFlags(t *testing.T) {
	ok := []struct {
		policy, in, out string
		adaptive        int64
		mode            hsnoc.Mode
		hetero          bool
	}{
		{"", "", "", 0, hsnoc.HybridTDM, false},                  // no policy flags at all
		{"", "", "prof.json", 0, hsnoc.HybridTDM, false},         // profile extraction
		{"greedy", "prof.json", "", 0, hsnoc.HybridTDM, false},   // policy re-run
		{"", "", "", 512, hsnoc.HybridTDM, false},                // online controller
		{"", "", "", 0, hsnoc.HybridSDM, true},                   // hetero without policy flags
		{"sdm-gate", "prof.json", "", 0, hsnoc.HybridTDM, false}, // cross-architecture re-run
	}
	for i, c := range ok {
		if err := validatePolicyFlags(c.policy, c.in, c.out, c.adaptive, c.mode, c.hetero); err != nil {
			t.Errorf("valid combination %d rejected: %v", i, err)
		}
	}
	bad := []struct {
		policy, in, out string
		adaptive        int64
		mode            hsnoc.Mode
		hetero          bool
	}{
		{"greedy", "", "", 0, hsnoc.HybridTDM, false},                  // -policy without -profile-in
		{"", "prof.json", "", 0, hsnoc.HybridTDM, false},               // -profile-in without -policy
		{"greedy", "prof.json", "out.json", 0, hsnoc.HybridTDM, false}, // both profile flags
		{"", "", "prof.json", 0, hsnoc.HybridTDM, true},                // profile with -hetero
		{"greedy", "prof.json", "", 0, hsnoc.HybridTDM, true},          // policy with -hetero
		{"", "", "", 512, hsnoc.HybridTDM, true},                       // adaptive with -hetero
		{"", "", "prof.json", 0, hsnoc.HybridSDM, false},               // profile of sdm engine
	}
	for i, c := range bad {
		if err := validatePolicyFlags(c.policy, c.in, c.out, c.adaptive, c.mode, c.hetero); err == nil {
			t.Errorf("invalid combination %d accepted", i)
		}
	}
}

func TestParsePattern(t *testing.T) {
	cases := map[string]hsnoc.Pattern{
		"ur": hsnoc.UniformRandom, "uniform": hsnoc.UniformRandom,
		"tornado": hsnoc.Tornado, "TOR": hsnoc.Tornado,
		"tr": hsnoc.Transpose, "transpose": hsnoc.Transpose,
		"bc": hsnoc.BitComplement, "neighbor": hsnoc.Neighbor,
	}
	for in, want := range cases {
		got, err := parsePattern(in)
		if err != nil || got != want {
			t.Errorf("parsePattern(%q) = (%v,%v), want %v", in, got, err, want)
		}
	}
	if _, err := parsePattern("bogus"); err == nil {
		t.Error("bogus pattern accepted")
	}
}
