// Command nocsim runs a single NoC simulation and prints its metrics.
//
//	nocsim -mode tdm -pattern tornado -rate 0.15 -cycles 40000
//	nocsim -mode packet -pattern ur -rate 0.3
//	nocsim -mode tdm -hetero -cpu EQUAKE -gpu BLACKSCHOLES
//
// Modes: packet (Packet-VC4 baseline), tdm (Hybrid-TDM), sdm (Hybrid-SDM
// baseline). TDM options: -sharing (hitchhiker/vicinity path sharing),
// -vcgating (aggressive VC power gating), -slots N (slot-table capacity).
package main

import (
	"flag"
	"fmt"
	"os"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/campaign"
	"tdmnoc/internal/textplot"
)

// parseMode and parsePattern delegate to the campaign package, the one
// home of the CLI name mappings.
func parseMode(s string) (hsnoc.Mode, error) { return campaign.ParseMode(s) }

func parsePattern(s string) (hsnoc.Pattern, error) { return campaign.ParsePattern(s) }

// validateFlags rejects flag combinations that would panic, hang, or
// silently do nothing — with a clear message and exit code 2 instead.
func validateFlags(rate float64, warmup, cycles, packets, workers, slots int, hetero bool) error {
	if rate < 0 {
		return fmt.Errorf("nocsim: negative injection rate %v", rate)
	}
	if rate > 1 {
		return fmt.Errorf("nocsim: injection rate %v exceeds 1 flit/node/cycle", rate)
	}
	if packets < 0 {
		return fmt.Errorf("nocsim: negative packet target %d", packets)
	}
	if packets > 0 && rate == 0 && !hetero {
		return fmt.Errorf("nocsim: a zero injection rate can never reach the %d-packet target; raise -rate or drop -packets", packets)
	}
	if warmup < 0 {
		return fmt.Errorf("nocsim: negative warm-up %d", warmup)
	}
	if cycles <= 0 {
		return fmt.Errorf("nocsim: measured region must be positive, got %d cycles", cycles)
	}
	if workers < 0 {
		return fmt.Errorf("nocsim: negative worker count %d", workers)
	}
	if slots <= 0 {
		return fmt.Errorf("nocsim: slot-table capacity must be positive, got %d", slots)
	}
	return nil
}

// validateObsFlags rejects tracing/telemetry requests the simulator
// cannot honour (probes run inside compute ticks, so they need a serial
// executor, and neither the SDM baseline nor the heterogeneous driver
// exposes the probe layer).
func validateObsFlags(traceOut string, telemetryEvery int, mode hsnoc.Mode, workers int, hetero bool) error {
	if traceOut == "" && telemetryEvery == 0 {
		return nil
	}
	if telemetryEvery < 0 {
		return fmt.Errorf("nocsim: negative -telemetry-every %d", telemetryEvery)
	}
	if hetero {
		return fmt.Errorf("nocsim: -trace-out/-telemetry-every are not supported with -hetero")
	}
	if mode == hsnoc.HybridSDM {
		return fmt.Errorf("nocsim: -trace-out/-telemetry-every are not available for sdm mode")
	}
	if workers > 1 {
		return fmt.Errorf("nocsim: -trace-out/-telemetry-every require -workers 1")
	}
	return nil
}

// validatePolicyFlags rejects incoherent profile/policy flag
// combinations up front — a -policy without the profile it feeds on, or
// a -profile-in that nothing consumes, would otherwise run a simulation
// whose result silently ignores the flag.
func validatePolicyFlags(policySpec, profileIn, profileOut string, adaptive int64, mode hsnoc.Mode, hetero bool) error {
	if policySpec != "" && profileIn == "" {
		return fmt.Errorf("nocsim: -policy %s needs -profile-in (offline mode re-runs a profiled workload; extract one with -profile-out first)", policySpec)
	}
	if profileIn != "" && policySpec == "" {
		return fmt.Errorf("nocsim: -profile-in without -policy does nothing; pick a policy (static|threshold|greedy|sdm-gate)")
	}
	if profileIn != "" && profileOut != "" {
		return fmt.Errorf("nocsim: -profile-in and -profile-out are mutually exclusive (a policy re-run profiles a different config)")
	}
	if profileOut != "" || profileIn != "" || adaptive > 0 {
		if hetero {
			return fmt.Errorf("nocsim: profile/policy flags are not supported with -hetero")
		}
	}
	if profileOut != "" && mode == hsnoc.HybridSDM {
		return fmt.Errorf("nocsim: -profile-out is not available for sdm mode")
	}
	return nil
}

func main() {
	mode := flag.String("mode", "tdm", "switching mode: packet|tdm|sdm")
	pattern := flag.String("pattern", "tornado", "traffic pattern: ur|tornado|transpose|bc|neighbor")
	rate := flag.Float64("rate", 0.15, "offered load in flits/node/cycle")
	width := flag.Int("width", 6, "mesh width")
	height := flag.Int("height", 6, "mesh height")
	warmup := flag.Int("warmup", 8000, "warm-up cycles (not measured)")
	cycles := flag.Int("cycles", 40000, "measured cycles")
	packets := flag.Int("packets", 0, "stop measuring once this many packets are delivered (0 = run the full -cycles; -cycles still caps the run)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	slots := flag.Int("slots", 128, "slot-table capacity (tdm)")
	sharing := flag.Bool("sharing", false, "enable circuit-switched path sharing (tdm)")
	vcgating := flag.Bool("vcgating", false, "enable aggressive VC power gating")
	noSteal := flag.Bool("nostealing", false, "disable time-slot stealing (tdm)")
	staticSlots := flag.Bool("staticslots", false, "disable dynamic slot-table sizing (tdm)")
	workers := flag.Int("workers", 1, "executor parallelism")
	check := flag.Bool("check", false, "run the per-cycle invariant checker (conservation, credits, slot tables; ~2-4x slower, never changes results)")
	checkEvery := flag.Int("checkevery", 1, "with -check, run the checks every N cycles")
	hetero := flag.Bool("hetero", false, "run the heterogeneous system instead of synthetic traffic")
	cpuB := flag.String("cpu", "EQUAKE", "CPU benchmark (hetero)")
	gpuB := flag.String("gpu", "BLACKSCHOLES", "GPU benchmark (hetero)")
	heatmap := flag.Bool("heatmap", false, "print per-router and per-link utilisation heatmaps after the run")
	events := flag.String("events", "", "write a router-event trace to this file (serial runs only)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event (Perfetto) JSON timeline to this file (serial packet/tdm runs only)")
	telemetryEvery := flag.Int("telemetry-every", 0, "sample link/buffer/energy telemetry every N cycles and print time-series plots (serial packet/tdm runs only)")
	configPath := flag.String("config", "", "load the network configuration from this JSON file (overrides structural flags)")
	profileOut := flag.String("profile-out", "", "extract the run's traffic profile (per-flow volumes, link heat, slot state) to this JSON file (serial packet/tdm runs only)")
	profileIn := flag.String("profile-in", "", "load a traffic profile extracted by -profile-out; requires -policy")
	policySpec := flag.String("policy", "", "re-run the profiled workload under this policy's decision: static|threshold[:N]|greedy[:K]|sdm-gate[:P] (requires -profile-in)")
	adaptive := flag.Int64("adaptive", 0, "enable the online controller: re-rank flows and re-pin circuits every N cycles (tdm)")
	adaptiveTopK := flag.Int("adaptive-topk", 0, "flows the online controller pins per epoch (0 = default 8)")
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := validateFlags(*rate, *warmup, *cycles, *packets, *workers, *slots, *hetero); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := hsnoc.DefaultConfig(*width, *height)
	cfg.Mode = m
	cfg.Seed = *seed
	cfg.SlotTableEntries = *slots
	cfg.PathSharing = *sharing
	cfg.VCPowerGating = *vcgating
	cfg.DisableTimeSlotStealing = *noSteal
	cfg.DisableDynamicSlotSizing = *staticSlots
	cfg.Workers = *workers
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg, err = hsnoc.LoadConfig(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// Checking is a run-time observation knob, so -check applies even
	// when -config replaced the structural flags.
	if *check {
		cfg.CheckInvariants = true
		cfg.CheckInterval = *checkEvery
	}
	if *adaptive > 0 || *adaptiveTopK > 0 {
		cfg.AdaptiveEpoch = *adaptive
		cfg.AdaptiveTopK = *adaptiveTopK
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := validateObsFlags(*traceOut, *telemetryEvery, cfg.Mode, cfg.Workers, *hetero); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := validatePolicyFlags(*policySpec, *profileIn, *profileOut, cfg.AdaptiveEpoch, cfg.Mode, *hetero); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *policySpec != "" {
		pol, err := hsnoc.ParsePolicy(*policySpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		prof, err := hsnoc.ReadProfileFile(*profileIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if prof.ConfigHash != cfg.Hash() {
			fmt.Fprintf(os.Stderr, "nocsim: profile %s was extracted from a different configuration (profile %.12s..., flags %.12s...); re-extract it with -profile-out under the same flags\n",
				*profileIn, prof.ConfigHash, cfg.Hash())
			os.Exit(2)
		}
		d := pol.Decide(prof)
		cfg, err = hsnoc.ApplyDecision(cfg, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := cfg.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		m = cfg.Mode
		fmt.Printf("policy %s: %d pinned flows, restrict_setups=%v, slot_init=%d, use_sdm=%v, gated_planes=%d\n",
			pol.Name(), len(d.PinnedFlows), d.RestrictSetups, d.SlotInit, d.UseSDM, d.GatedPlanes)
	}

	if *hetero {
		runHetero(cfg, *cpuB, *gpuB, *warmup, *cycles)
		return
	}

	p, err := parsePattern(*pattern)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	s := hsnoc.NewSynthetic(cfg, p, *rate)
	defer s.Close()
	wantTelemetry := *traceOut != "" || *telemetryEvery > 0 || *profileOut != ""
	if wantTelemetry || *heatmap {
		opt := hsnoc.TelemetryOptions{Every: *telemetryEvery, TrackFlows: *profileOut != ""}
		if *traceOut != "" {
			// Full-fidelity timelines need headroom; the default ring is
			// sized for summaries.
			opt.RingCapacity = 1 << 19
		}
		if _, err := s.AttachTelemetry(opt); err != nil && wantTelemetry {
			// -heatmap alone degrades gracefully to the per-router map
			// (which needs no probe); explicit tracing flags do not.
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := s.TraceEvents(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	s.Warmup(*warmup)
	var res hsnoc.Results
	if *packets > 0 {
		res = s.RunUntilPackets(int64(*packets), *cycles)
		if res.Packets < int64(*packets) {
			fmt.Fprintf(os.Stderr, "nocsim: only %d of %d target packets delivered within %d cycles\n",
				res.Packets, *packets, *cycles)
		}
	} else {
		res = s.Run(*cycles)
	}

	fmt.Printf("%v, pattern %v, offered %.3f flits/node/cycle, %d cycles\n", m, p, *rate, res.Cycles)
	fmt.Printf("  delivered packets       %d\n", res.Packets)
	fmt.Printf("  accepted throughput     %.4f flits/node/cycle (%.4f payload-normalised)\n", res.Throughput, res.PayloadThroughput)
	fmt.Printf("  avg network latency     %.1f cycles\n", res.AvgNetLatency)
	fmt.Printf("  avg total latency       %.1f cycles (incl. source queueing)\n", res.AvgTotalLatency)
	fmt.Printf("  circuit-switched flits  %.1f%%\n", 100*res.CSFlitFraction)
	fmt.Printf("  config traffic          %.2f%% of flits\n", 100*res.ConfigTrafficFraction)
	fmt.Printf("  circuits established    %d (active slot entries: %d)\n", res.CircuitsEstablished, res.ActiveSlotEntries)
	if res.Hitchhikes+res.VicinityRides > 0 {
		fmt.Printf("  path sharing            %d hitchhikes, %d vicinity rides\n", res.Hitchhikes, res.VicinityRides)
	}
	fmt.Printf("  energy                  %.2f uJ (dynamic %.2f, static %.2f)\n",
		res.Energy.TotalPJ/1e6, sum(res.Energy.DynamicPJ)/1e6, sum(res.Energy.StaticPJ)/1e6)
	if cfg.AdaptiveEpoch > 0 {
		fmt.Printf("  adaptive controller     %d epoch re-pin(s) every %d cycles\n", s.AdaptiveRepins(), cfg.AdaptiveEpoch)
	}
	if *profileOut != "" {
		prof, err := s.ExtractProfile()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := prof.WriteFile(*profileOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  profile                 %s (%d flows, config %.12s...)\n", *profileOut, len(prof.Flows), prof.ConfigHash)
	}
	if *check {
		if n := s.InvariantViolationCount(); n > 0 {
			fmt.Fprintf(os.Stderr, "nocsim: %d invariant violation(s):\n", n)
			for _, v := range s.InvariantViolations() {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("  invariants              clean, rolling digest %016x\n", s.RollingDigest())
	}
	if *telemetryEvery > 0 {
		if out, err := s.RenderTelemetry(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		} else {
			fmt.Println()
			fmt.Print(out)
		}
	}
	if *heatmap {
		if grid := s.UtilizationGrid(); grid != nil {
			fmt.Println()
			fmt.Print(textplot.Heatmap("router utilisation", grid))
		}
		if out, err := s.RenderLinkHeatmap(); err == nil {
			fmt.Println()
			fmt.Print(out)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := s.WriteTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		rec := s.Telemetry()
		fmt.Printf("  trace                   %s (%d events recorded, %d dropped)\n",
			*traceOut, rec.Ring().Len(), rec.Dropped())
	}
	d := s.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 || d.LatchConflicts != 0 {
		fmt.Printf("  WARNING: invariant violations: %+v\n", d)
		os.Exit(1)
	}
}

func runHetero(cfg hsnoc.Config, cpuB, gpuB string, warmup, cycles int) {
	h, err := hsnoc.NewHeterogeneous(cfg, cpuB, gpuB)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer h.Close()
	h.Warmup(warmup)
	res := h.Run(cycles)
	fmt.Printf("%v, heterogeneous mix %s/%s, %d cycles\n", cfg.Mode, gpuB, cpuB, cycles)
	fmt.Printf("  CPU instructions        %d\n", res.CPUInstructions)
	fmt.Printf("  GPU memory operations   %d\n", res.GPUIterations)
	fmt.Printf("  GPU injection rate      %.3f flits/node/cycle\n", res.GPUInjectionRate)
	fmt.Printf("  GPU circuit-switched    %.1f%%\n", 100*res.GPUCSFraction)
	fmt.Printf("  avg CPU / GPU latency   %.1f / %.1f cycles\n", res.AvgCPULatency, res.AvgGPULatency)
	if res.Hitchhikes+res.VicinityRides > 0 {
		fmt.Printf("  path sharing            %d hitchhikes, %d vicinity rides\n", res.Hitchhikes, res.VicinityRides)
	}
	fmt.Printf("  energy                  %.2f uJ\n", res.Energy.TotalPJ/1e6)
	if n := h.InvariantViolationCount(); n > 0 {
		fmt.Fprintf(os.Stderr, "nocsim: %d invariant violation(s):\n", n)
		for _, v := range h.InvariantViolations() {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	d := h.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 || d.LatchConflicts != 0 {
		fmt.Printf("  WARNING: invariant violations: %+v\n", d)
		os.Exit(1)
	}
}

func sum(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}
