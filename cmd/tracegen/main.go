// Command tracegen synthesizes, inspects and replays traffic traces —
// the trace-driven simulation workflow.
//
//	tracegen -pattern tornado -rate 0.15 -cycles 20000 -out tor.trace
//	tracegen -info tor.trace
//	tracegen -replay tor.trace -mode tdm
//	tracegen -replay tor.trace -mode tdm -trace-out tor.perfetto.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tdmnoc/internal/network"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/topology"
	"tdmnoc/internal/trace"
	"tdmnoc/internal/traffic"
)

// validateActions enforces that exactly one of the three actions was
// requested: -out, -info and -replay each start a different workflow, so
// a combined invocation is ambiguous (the old dispatcher silently
// preferred -info and ignored the rest).
func validateActions(out, info, replay string) error {
	set := 0
	for _, v := range []string{out, info, replay} {
		if v != "" {
			set++
		}
	}
	switch {
	case set == 0:
		return fmt.Errorf("one of -out, -info or -replay is required")
	case set > 1:
		return fmt.Errorf("-out, -info and -replay are mutually exclusive; pass exactly one")
	}
	return nil
}

func main() {
	pattern := flag.String("pattern", "tornado", "pattern for synthesis: ur|tornado|transpose|bc|neighbor|hotspot")
	rate := flag.Float64("rate", 0.15, "offered load in flits/node/cycle")
	width := flag.Int("width", 6, "mesh width")
	height := flag.Int("height", 6, "mesh height")
	cycles := flag.Int64("cycles", 20000, "trace length in cycles")
	seed := flag.Uint64("seed", 1, "synthesis seed")
	out := flag.String("out", "", "write a synthesized trace to this file")
	info := flag.String("info", "", "print a summary of this trace file")
	replay := flag.String("replay", "", "replay this trace file")
	mode := flag.String("mode", "tdm", "replay network: packet|tdm")
	traceOut := flag.String("trace-out", "", "with -replay: write a Chrome trace-event (Perfetto) JSON of the replay to this file")
	flag.Parse()

	if err := validateActions(*out, *info, *replay); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case *info != "":
		showInfo(*info)
	case *replay != "":
		runReplay(*replay, *mode, *traceOut)
	default:
		synthesize(*pattern, *rate, *width, *height, *cycles, *seed, *out)
	}
}

func parsePattern(s string) (traffic.Pattern, bool) {
	switch strings.ToLower(s) {
	case "ur", "uniform", "random":
		return traffic.UniformRandom, true
	case "tor", "tornado":
		return traffic.Tornado, true
	case "tr", "transpose":
		return traffic.Transpose, true
	case "bc", "bitcomplement":
		return traffic.BitComplement, true
	case "nbr", "neighbor":
		return traffic.Neighbor, true
	case "hot", "hotspot":
		return traffic.Hotspot, true
	}
	return 0, false
}

func synthesize(pattern string, rate float64, w, h int, cycles int64, seed uint64, out string) {
	p, ok := parsePattern(pattern)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", pattern)
		os.Exit(2)
	}
	tr := trace.Synthesize(p, topology.NewMesh(w, h), rate, 5, cycles, seed)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d events over %d cycles (%dx%d mesh) to %s\n",
		len(tr.Events), tr.Duration(), tr.Width, tr.Height, out)
}

func loadTrace(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return tr
}

func showInfo(path string) {
	tr := loadTrace(path)
	perSrc := map[topology.NodeID]int{}
	flits := 0
	for _, e := range tr.Events {
		perSrc[e.Src]++
		flits += e.SizeFlits
	}
	fmt.Printf("%s: %dx%d mesh, %d events, %d flits, %d cycles\n",
		path, tr.Width, tr.Height, len(tr.Events), flits, tr.Duration())
	if tr.Duration() > 0 {
		fmt.Printf("offered load: %.4f flits/node/cycle over %d active sources\n",
			float64(flits)/float64(tr.Duration())/float64(tr.Width*tr.Height), len(perSrc))
	}
}

func runReplay(path, mode, traceOut string) {
	tr := loadTrace(path)
	var cfg network.Config
	switch strings.ToLower(mode) {
	case "packet", "ps":
		cfg = network.DefaultConfig(tr.Width, tr.Height)
	case "tdm":
		cfg = network.HybridTDMConfig(tr.Width, tr.Height)
	default:
		fmt.Fprintf(os.Stderr, "unknown replay mode %q\n", mode)
		os.Exit(2)
	}
	reps := trace.NewReplayers(tr, 0)
	net := network.New(cfg, func(id topology.NodeID) network.Endpoint {
		if r := reps[id]; r != nil {
			return r
		}
		return nil
	})
	defer net.Close()
	var rec *obs.Recorder
	if traceOut != "" {
		rec = obs.NewRecorder(obs.RecorderConfig{
			Nodes:        tr.Width * tr.Height,
			RingCapacity: 1 << 19,
			SampleEvery:  64,
			Shards:       net.Workers(),
		})
		net.AttachProbe(rec, 64)
	}
	net.EnableStats()
	net.Run(int(tr.Duration()) + 10)
	if !net.Drain(200000) {
		fmt.Fprintf(os.Stderr, "replay failed to drain: %d packets in flight\n", net.InFlight())
		os.Exit(1)
	}
	st := net.Stats()
	lat, _ := st.AvgNetLatency()
	tot, _ := st.AvgTotalLatency()
	e := net.Energy()
	fmt.Printf("replayed %d packets on %s network\n", st.EjectedPackets, mode)
	fmt.Printf("  avg net latency   %.1f cycles\n", lat)
	fmt.Printf("  avg total latency %.1f cycles\n", tot)
	fmt.Printf("  circuit-switched  %.1f%%\n", 100*st.CSFlitFraction())
	fmt.Printf("  energy            %.2f uJ\n", e.TotalPJ()/1e6)
	if rec != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		meta := obs.TraceMeta{
			Width: tr.Width, Height: tr.Height,
			OtherData: map[string]string{
				"mode":       mode,
				"mesh":       fmt.Sprintf("%dx%d", tr.Width, tr.Height),
				"source":     path,
				"ring_drops": fmt.Sprintf("%d", rec.Dropped()),
			},
		}
		events := obs.MergeRings(rec.Rings(), tr.Width, tr.Height)
		if err := obs.WriteTraceEvents(f, events, meta); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  trace             %s (%d events recorded, %d dropped)\n",
			traceOut, rec.Events(), rec.Dropped())
	}
}
