package main

import (
	"strings"
	"testing"
)

func TestValidateActions(t *testing.T) {
	cases := []struct {
		name              string
		out, info, replay string
		wantErr           string // substring; "" means valid
	}{
		{name: "none set", wantErr: "one of -out, -info or -replay is required"},
		{name: "out only", out: "a.trace"},
		{name: "info only", info: "a.trace"},
		{name: "replay only", replay: "a.trace"},
		{name: "out+info", out: "a.trace", info: "a.trace", wantErr: "mutually exclusive"},
		{name: "out+replay", out: "a.trace", replay: "a.trace", wantErr: "mutually exclusive"},
		{name: "info+replay", info: "a.trace", replay: "a.trace", wantErr: "mutually exclusive"},
		{name: "all three", out: "a", info: "b", replay: "c", wantErr: "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateActions(tc.out, tc.info, tc.replay)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateActions(%q, %q, %q) = %v, want nil",
						tc.out, tc.info, tc.replay, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateActions(%q, %q, %q) = nil, want error containing %q",
					tc.out, tc.info, tc.replay, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateActions(%q, %q, %q) = %q, want substring %q",
					tc.out, tc.info, tc.replay, err, tc.wantErr)
			}
		})
	}
}

func TestParsePattern(t *testing.T) {
	for _, s := range []string{"ur", "tornado", "transpose", "bc", "neighbor", "hotspot"} {
		if _, ok := parsePattern(s); !ok {
			t.Errorf("parsePattern(%q) not recognised", s)
		}
	}
	if _, ok := parsePattern("nope"); ok {
		t.Errorf("parsePattern(%q) unexpectedly recognised", "nope")
	}
}
