// Command nocsimd is the batch-simulation service: it accepts
// declarative campaign specs over HTTP, expands them into simulation
// jobs, runs them on the campaign engine's bounded worker pool, and
// persists results as JSONL so interrupted campaigns resume without
// recomputing finished jobs.
//
//	nocsimd -addr :8080 -data ./nocsimd-data
//
//	curl -s -X POST localhost:8080/campaigns -d @examples/specs/fig4-quick.json
//	curl -s localhost:8080/campaigns/<id>            # status + counters
//	curl -s localhost:8080/campaigns/<id>/results    # records (add ?format=jsonl for raw lines)
//	curl -s localhost:8080/campaigns/<id>/summary    # merged across seeds
//	curl -s localhost:8080/campaigns/<id>/timeline   # per-job telemetry (specs with telemetry_every)
//	curl -s -X POST localhost:8080/campaigns/<id>/cancel
//	curl -s localhost:8080/metrics                   # Prometheus counters + setup-latency histogram
//	curl -s localhost:8080/buildinfo                 # Go version, VCS revision of this binary
//	go tool pprof localhost:8080/debug/pprof/profile # live CPU profile (-pprof=false to disable)
//
// SIGINT/SIGTERM drains gracefully: no new jobs start, in-flight jobs
// finish and persist, then the server exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "nocsimd-data", "directory for campaign result stores (JSONL)")
	workers := flag.Int("workers", 0, "concurrent jobs per campaign (0 = NumCPU)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job timeout (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs on shutdown")
	enablePprof := flag.Bool("pprof", true, "serve net/http/pprof profiles under /debug/pprof/")
	flag.Parse()

	if err := os.MkdirAll(*data, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "nocsimd: %v\n", err)
		os.Exit(1)
	}

	s := newServer(*data, *workers, *jobTimeout)
	mux := s.routes()
	if *enablePprof {
		// Campaigns run long enough that profiling a live daemon is the
		// practical way to chase a hot-path regression: e.g.
		//   go tool pprof http://localhost:8080/debug/pprof/profile?seconds=30
		//   go tool pprof http://localhost:8080/debug/pprof/allocs
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("nocsimd: listening on %s, data dir %s\n", *addr, *data)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "nocsimd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("nocsimd: draining in-flight jobs...")
		s.drainAll(*drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		fmt.Println("nocsimd: stopped")
	}
}
