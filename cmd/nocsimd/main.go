// Command nocsimd is the batch-simulation service: it accepts
// declarative campaign specs over HTTP, expands them into simulation
// jobs, runs them on the campaign engine's bounded worker pool, and
// persists results as JSONL so interrupted campaigns resume without
// recomputing finished jobs.
//
//	nocsimd -addr :8080 -data ./nocsimd-data
//
//	curl -s -X POST localhost:8080/campaigns -d @examples/specs/fig4-quick.json
//	curl -s localhost:8080/campaigns/<id>            # status + counters
//	curl -s localhost:8080/campaigns/<id>/results    # records (add ?format=jsonl for raw lines)
//	curl -s localhost:8080/campaigns/<id>/summary    # merged across seeds
//	curl -s localhost:8080/campaigns/<id>/timeline   # per-job telemetry (specs with telemetry_every)
//	curl -s -X POST localhost:8080/campaigns/<id>/cancel
//	curl -s localhost:8080/metrics                   # Prometheus counters + setup-latency histogram
//	curl -s localhost:8080/buildinfo                 # Go version, VCS revision of this binary
//	go tool pprof localhost:8080/debug/pprof/profile # live CPU profile (-pprof=false to disable)
//
// Fleet modes turn nocsimd instances into a distributed fabric
// (see internal/fleet):
//
//	nocsimd -coordinator -addr :8080 -data ./coord-data -journal ./coord-data/fleet.journal
//	nocsimd -worker http://localhost:8080 -addr :8081
//	nocsimd -worker http://localhost:8080 -addr :8082
//
//	curl -s -X POST localhost:8080/fleet/campaigns -d '{"tenant":"me","spec":{...}}'
//	curl -s localhost:8080/fleet/campaigns/<id>/summary
//
// SIGINT/SIGTERM drains gracefully: new submits are refused with 503 +
// Retry-After, no new jobs or leases start, in-flight work finishes and
// persists, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"tdmnoc/internal/campaign"
	"tdmnoc/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "nocsimd-data", "directory for campaign result stores (JSONL)")
	workers := flag.Int("workers", 0, "concurrent jobs per campaign (0 = NumCPU)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job timeout (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs on shutdown")
	enablePprof := flag.Bool("pprof", true, "serve net/http/pprof profiles under /debug/pprof/")

	coordinator := flag.Bool("coordinator", false, "serve the fleet control plane under /fleet/ (sharded store in <data>/fleet)")
	workerURL := flag.String("worker", "", "run as a fleet worker pulling shards from this coordinator URL")
	shardSize := flag.Int("shard-size", 16, "coordinator: jobs per lease")
	leaseTTL := flag.Duration("lease-ttl", 45*time.Second, "coordinator: lease expiry without renewal")
	tenantQuota := flag.Int("tenant-quota", 100_000, "coordinator: max outstanding jobs per tenant")
	journal := flag.String("journal", "", "coordinator: write-ahead journal path for crash recovery (empty = in-memory only; a restart loses queued campaigns)")
	flag.Parse()

	if err := os.MkdirAll(*data, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "nocsimd: %v\n", err)
		os.Exit(1)
	}

	s := newServer(*data, *workers, *jobTimeout)

	var store *campaign.ShardedStore
	if *coordinator {
		var err error
		store, err = campaign.OpenShardedStore(filepath.Join(*data, "fleet"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocsimd: %v\n", err)
			os.Exit(1)
		}
		s.coord, err = fleet.NewCoordinator(fleet.Options{
			Store:       store,
			ShardSize:   *shardSize,
			LeaseTTL:    *leaseTTL,
			TenantQuota: *tenantQuota,
			Journal:     *journal,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocsimd: %v\n", err)
			os.Exit(1)
		}
		if *journal != "" {
			if n := s.coord.Recovered(); n > 0 {
				fmt.Printf("nocsimd: journal %s: replayed %d records\n", *journal, n)
			}
			// A replayed drain record leaves the coordinator draining; a
			// deliberately restarted service should serve.
			s.coord.Resume()
		}
	}
	if *workerURL != "" {
		w, err := fleet.NewWorker(fleet.WorkerOptions{
			Coordinator: *workerURL,
			Workers:     *workers,
			JobTimeout:  *jobTimeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocsimd: %v\n", err)
			os.Exit(1)
		}
		s.fworker = w
	}

	mux := s.routes()
	if *enablePprof {
		// Campaigns run long enough that profiling a live daemon is the
		// practical way to chase a hot-path regression: e.g.
		//   go tool pprof http://localhost:8080/debug/pprof/profile?seconds=30
		//   go tool pprof http://localhost:8080/debug/pprof/allocs
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The worker loop gets its own context: on SIGTERM it drains (Drain
	// lets the in-flight shard finish and post) rather than aborting
	// mid-shard; the hard cancel only fires if the drain times out.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan struct{})
	if s.fworker != nil {
		go func() {
			defer close(workerDone)
			s.fworker.Run(wctx)
		}()
		fmt.Printf("nocsimd: worker pulling from %s\n", *workerURL)
	} else {
		close(workerDone)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	role := "standalone"
	if *coordinator {
		role = "coordinator"
	} else if *workerURL != "" {
		role = "worker"
	}
	fmt.Printf("nocsimd: %s listening on %s, data dir %s\n", role, *addr, *data)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "nocsimd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("nocsimd: draining in-flight jobs...")
		s.drainAll(*drainTimeout)
		select {
		case <-workerDone:
		case <-time.After(*drainTimeout):
			wcancel() // drain timed out; abandon the shard (it re-leases)
		}
		if s.coord != nil {
			s.coord.WaitCompactions()
			s.coord.Close()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		if store != nil {
			store.Close()
		}
		fmt.Println("nocsimd: stopped")
	}
}
