package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tdmnoc/internal/campaign"
)

// testSpecJSON is a 3-axis grid: 2 modes x 2 rates x 3 seeds x
// 2 patterns = 24 jobs, sized to finish in a couple of seconds.
const testSpecJSON = `{
  "name": "acceptance",
  "modes": ["packet", "tdm"],
  "patterns": ["tornado", "ur"],
  "meshes": [{"width": 4, "height": 4}],
  "rates": [0.05, 0.10],
  "seeds": [1, 2, 3],
  "warmup_cycles": 200,
  "measure_cycles": 600
}`

func postSpec(t *testing.T, ts *httptest.Server, spec string) map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /campaigns: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /campaigns status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return out
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

func waitDone(t *testing.T, ts *httptest.Server, id string) statusView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st statusView
		getJSON(t, ts.URL+"/campaigns/"+id, &st)
		if st.State != "running" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return statusView{}
}

func metric(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var val int64
			if _, err := fmt.Sscanf(line, name+" %d", &val); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return val
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestServiceAcceptance is the issue's acceptance scenario: a 3-axis,
// 24-job campaign completes with consistent counters, and re-submitting
// the identical spec is served 100% from the result cache.
func TestServiceAcceptance(t *testing.T) {
	s := newServer(t.TempDir(), 4, time.Minute)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	sub := postSpec(t, ts, testSpecJSON)
	if int(sub["jobs"].(float64)) != 24 {
		t.Fatalf("submitted %v jobs, want 24", sub["jobs"])
	}
	id := sub["id"].(string)

	st := waitDone(t, ts, id)
	if st.State != "done" {
		t.Fatalf("campaign state %q, want done", st.State)
	}
	if st.Counters.Done != 24 || st.Counters.Failed != 0 || st.Counters.Queued != 0 {
		t.Fatalf("counters inconsistent with 24 jobs: %+v", st.Counters)
	}
	if st.Counters.CyclesSimulated != 24*800 {
		t.Errorf("cycles simulated = %d, want %d", st.Counters.CyclesSimulated, 24*800)
	}

	// Results: 24 records, none failed, all carrying metrics.
	var recs []campaign.Record
	getJSON(t, ts.URL+"/campaigns/"+id+"/results", &recs)
	if len(recs) != 24 {
		t.Fatalf("results count %d, want 24", len(recs))
	}
	for _, r := range recs {
		if r.Err != "" || r.Result.Packets == 0 {
			t.Errorf("bad record %s: err=%q packets=%d", r.Label, r.Err, r.Result.Packets)
		}
	}

	// Summary merges the 3 seeds: 24/3 = 8 groups.
	var rows []map[string]any
	getJSON(t, ts.URL+"/campaigns/"+id+"/summary", &rows)
	if len(rows) != 8 {
		t.Errorf("summary groups = %d, want 8", len(rows))
	}
	for _, row := range rows {
		if int(row["seeds"].(float64)) != 3 {
			t.Errorf("group %v merged %v seeds, want 3", row["group"], row["seeds"])
		}
	}

	if got := metric(t, ts, "nocsimd_jobs_done"); got != 24 {
		t.Errorf("nocsimd_jobs_done = %d, want 24", got)
	}
	if got := metric(t, ts, "nocsimd_cache_hits"); got != 0 {
		t.Errorf("nocsimd_cache_hits = %d, want 0 on first run", got)
	}

	// Re-submit the identical spec: every job must be a cache hit and
	// no new cycles may be simulated.
	sub2 := postSpec(t, ts, testSpecJSON)
	id2 := sub2["id"].(string)
	if id2 == id {
		t.Fatalf("resubmission reused campaign id %s", id)
	}
	st2 := waitDone(t, ts, id2)
	if st2.Counters.CacheHits != 24 || st2.Counters.CyclesSimulated != 0 {
		t.Fatalf("resubmission: cache hits %d (want 24), cycles %d (want 0)",
			st2.Counters.CacheHits, st2.Counters.CyclesSimulated)
	}
	if got := metric(t, ts, "nocsimd_cache_hits"); got != 24 {
		t.Errorf("nocsimd_cache_hits = %d, want 24 after resubmission", got)
	}
	if got := metric(t, ts, "nocsimd_jobs_done"); got != 48 {
		t.Errorf("nocsimd_jobs_done = %d, want 48 across both campaigns", got)
	}
	if got := metric(t, ts, "nocsimd_campaigns_total"); got != 2 {
		t.Errorf("nocsimd_campaigns_total = %d, want 2", got)
	}
}

func TestServiceRejectsBadSpec(t *testing.T) {
	s := newServer(t.TempDir(), 2, time.Minute)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	for name, body := range map[string]string{
		"empty":         `{}`,
		"unknown field": `{"modes":["tdm"],"patterns":["ur"],"rates":[0.1],"bogus":true}`,
		"bad mode":      `{"modes":["quantum"],"patterns":["ur"],"rates":[0.1]}`,
		"zero rate":     `{"modes":["tdm"],"patterns":["ur"],"rates":[0]}`,
		"not json":      `modes=tdm`,
	} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d, want 404", resp.StatusCode)
	}
}

// TestServiceCancelAndResume cancels a campaign mid-run, then
// re-submits the same spec and checks the finished prefix is served
// from the persisted store.
func TestServiceCancelAndResume(t *testing.T) {
	dir := t.TempDir()
	s := newServer(dir, 1, time.Minute) // one worker → slow enough to cancel mid-run
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// A bigger grid so the single worker is still busy when we cancel.
	spec := `{
	  "modes": ["tdm"], "patterns": ["tornado"],
	  "meshes": [{"width": 5, "height": 5}],
	  "rates": [0.05, 0.08, 0.11, 0.14, 0.17, 0.20],
	  "seeds": [1, 2, 3, 4],
	  "warmup_cycles": 2000, "measure_cycles": 6000
	}`
	sub := postSpec(t, ts, spec)
	id := sub["id"].(string)
	jobs := int(sub["jobs"].(float64))

	// Let a few jobs land, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st statusView
		getJSON(t, ts.URL+"/campaigns/"+id, &st)
		if st.Counters.Done >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/campaigns/"+id+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitDone(t, ts, id)
	if st.Counters.Done == 0 || st.Counters.Done >= int64(jobs) {
		t.Fatalf("cancel landed at %d/%d jobs — not mid-run", st.Counters.Done, jobs)
	}
	finished := st.Counters.Done

	// Re-submit: the finished prefix must come from cache.
	sub2 := postSpec(t, ts, spec)
	st2 := waitDone(t, ts, sub2["id"].(string))
	if st2.State != "done" {
		t.Fatalf("resumed campaign state %q", st2.State)
	}
	if st2.Counters.Done != int64(jobs) {
		t.Errorf("resumed done = %d, want %d", st2.Counters.Done, jobs)
	}
	if st2.Counters.CacheHits < finished {
		t.Errorf("resumed cache hits = %d, want >= %d (the jobs finished before cancel)",
			st2.Counters.CacheHits, finished)
	}
}

// TestServiceBuildInfo: /buildinfo reports how the binary was built.
func TestServiceBuildInfo(t *testing.T) {
	s := newServer(t.TempDir(), 1, time.Minute)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var bi map[string]string
	getJSON(t, ts.URL+"/buildinfo", &bi)
	if !strings.HasPrefix(bi["go"], "go") {
		t.Errorf("buildinfo go = %q, want a go version", bi["go"])
	}
	if bi["module"] != "tdmnoc" {
		t.Errorf("buildinfo module = %q, want tdmnoc", bi["module"])
	}
}

// TestServiceTelemetryCampaign: a spec with telemetry_every yields a
// /timeline with per-job summaries and feeds the inflight gauge, steal
// counter and setup-latency histogram on /metrics.
func TestServiceTelemetryCampaign(t *testing.T) {
	s := newServer(t.TempDir(), 2, time.Minute)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// The histogram schema must be present before any campaign runs.
	if got := metric(t, ts, `nocsimd_setup_latency_cycles_bucket{le="+Inf"}`); got != 0 {
		t.Errorf("empty-server setup histogram +Inf = %d, want 0", got)
	}
	if got := metric(t, ts, "nocsimd_jobs_inflight"); got != 0 {
		t.Errorf("empty-server inflight = %d, want 0", got)
	}

	spec := `{
	  "modes": ["tdm"], "patterns": ["tornado", "ur"],
	  "meshes": [{"width": 4, "height": 4}],
	  "rates": [0.10], "seeds": [1, 2],
	  "warmup_cycles": 200, "measure_cycles": 1000,
	  "telemetry_every": 64
	}`
	sub := postSpec(t, ts, spec)
	id := sub["id"].(string)
	st := waitDone(t, ts, id)
	if st.State != "done" || st.Counters.Failed != 0 {
		t.Fatalf("telemetry campaign did not finish clean: %+v", st)
	}

	var rows []struct {
		Label     string          `json:"label"`
		Telemetry json.RawMessage `json:"telemetry"`
	}
	getJSON(t, ts.URL+"/campaigns/"+id+"/timeline", &rows)
	if len(rows) != 4 {
		t.Fatalf("timeline rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		var sum map[string]any
		if err := json.Unmarshal(row.Telemetry, &sum); err != nil {
			t.Fatalf("row %s telemetry: %v", row.Label, err)
		}
		if sum["injected"].(float64) == 0 || sum["events"].(float64) == 0 {
			t.Errorf("row %s telemetry looks empty: %v", row.Label, sum)
		}
		// The timeline payload carries the dropped-windows counter so
		// clients can tell a truncated series from a complete one.
		if dw, ok := sum["dropped_windows"].(float64); !ok {
			t.Errorf("row %s telemetry lacks dropped_windows: %v", row.Label, sum)
		} else if dw != 0 {
			t.Errorf("row %s dropped %v windows in a short run", row.Label, dw)
		}
	}

	if got := metric(t, ts, "nocsimd_telemetry_jobs"); got != 4 {
		t.Errorf("nocsimd_telemetry_jobs = %d, want 4", got)
	}
	if got := metric(t, ts, "nocsimd_telemetry_dropped_windows_total"); got != 0 {
		t.Errorf("nocsimd_telemetry_dropped_windows_total = %d, want 0", got)
	}
	// The ring-drop counters appear once telemetry jobs have run: the
	// total plus one labeled series per worker shard (this short,
	// full-capacity campaign must drop nothing).
	if got := metric(t, ts, "nocsimd_telemetry_ring_drops_total"); got != 0 {
		t.Errorf("nocsimd_telemetry_ring_drops_total = %d, want 0", got)
	}
	if got := metric(t, ts, `nocsimd_telemetry_ring_drops{shard="0"}`); got != 0 {
		t.Errorf(`ring_drops{shard="0"} = %d, want 0`, got)
	}
	if got := metric(t, ts, "nocsimd_jobs_inflight"); got != 0 {
		t.Errorf("nocsimd_jobs_inflight = %d after completion, want 0", got)
	}
	// Tornado at 0.10 establishes circuits, so setups must be observed
	// and the +Inf bucket must equal the count.
	count := metric(t, ts, "nocsimd_setup_latency_cycles_count")
	if count == 0 {
		t.Error("setup-latency histogram empty after a tdm telemetry campaign")
	}
	if inf := metric(t, ts, `nocsimd_setup_latency_cycles_bucket{le="+Inf"}`); inf != count {
		t.Errorf("+Inf bucket %d != count %d", inf, count)
	}
}

// TestServicePolicyCampaign: a policy_profile spec runs the offline
// profile→re-run loop end to end and serves the comparison report on
// /campaigns/{id}/policy; plain campaigns 404 on that endpoint.
func TestServicePolicyCampaign(t *testing.T) {
	s := newServer(t.TempDir(), 2, time.Minute)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	spec := `{
	  "modes": ["tdm"], "patterns": ["tornado"],
	  "meshes": [{"width": 4, "height": 4}],
	  "rates": [0.15], "seeds": [1],
	  "warmup_cycles": 300, "measure_cycles": 1200,
	  "policy_profile": {"policies": ["static", "greedy"]}
	}`
	sub := postSpec(t, ts, spec)
	id := sub["id"].(string)
	st := waitDone(t, ts, id)
	if st.State != "done" {
		t.Fatalf("policy campaign state %q (error %q)", st.State, st.Error)
	}

	var rep campaign.PolicyReport
	getJSON(t, ts.URL+"/campaigns/"+id+"/policy", &rep)
	if len(rep.Outcomes) != 2 {
		t.Fatalf("policy outcomes = %d, want 2", len(rep.Outcomes))
	}
	for _, out := range rep.Outcomes {
		if out.Err != "" {
			t.Errorf("outcome %s/%s failed: %s", out.Label, out.Policy, out.Err)
		}
		if out.EnergyPerFlit <= 0 {
			t.Errorf("outcome %s/%s has no energy metric: %+v", out.Label, out.Policy, out)
		}
	}
	if rep.Outcomes[0].Policy != "static" || rep.Outcomes[0].EnergyDeltaPct != 0 {
		t.Errorf("static baseline outcome = %+v", rep.Outcomes[0])
	}
	if rep.Outcomes[1].Policy != "greedy" || len(rep.Outcomes[1].Decision.PinnedFlows) == 0 {
		t.Errorf("greedy outcome pinned nothing: %+v", rep.Outcomes[1])
	}

	// The base records persist in the ordinary result store too.
	var recs []campaign.Record
	getJSON(t, ts.URL+"/campaigns/"+id+"/results", &recs)
	if len(recs) == 0 {
		t.Error("policy campaign persisted no records")
	}

	// A plain campaign has no policy report.
	plain := postSpec(t, ts, `{
	  "modes": ["tdm"], "patterns": ["ur"],
	  "meshes": [{"width": 4, "height": 4}],
	  "rates": [0.05], "seeds": [1],
	  "warmup_cycles": 100, "measure_cycles": 200
	}`)
	waitDone(t, ts, plain["id"].(string))
	resp, err := http.Get(ts.URL + "/campaigns/" + plain["id"].(string) + "/policy")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("policy endpoint on plain campaign: status %d, want 404", resp.StatusCode)
	}
}
