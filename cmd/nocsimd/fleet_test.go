package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tdmnoc/internal/campaign"
	"tdmnoc/internal/fleet"
)

// TestDrainingRejectsSubmits covers the shutdown window: once the
// server drains, new campaign submits are refused with 503 +
// Retry-After (so clients fail over instead of racing the drain), and
// the nocsimd_draining gauge flips for operators watching the fleet.
func TestDrainingRejectsSubmits(t *testing.T) {
	s := newServer(t.TempDir(), 2, time.Minute)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	if got := metric(t, ts, "nocsimd_draining"); got != 0 {
		t.Fatalf("nocsimd_draining before drain = %d, want 0", got)
	}
	s.drainAll(time.Second)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(testSpecJSON))
	if err != nil {
		t.Fatalf("POST /campaigns: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After header")
	}
	if got := metric(t, ts, "nocsimd_draining"); got != 1 {
		t.Fatalf("nocsimd_draining after drain = %d, want 1", got)
	}
}

// TestCoordinatorMode exercises the fleet wiring end to end through
// the nocsimd surface: a coordinator-mode server admits a campaign
// under /fleet/, an in-process worker drains it, /metrics carries the
// fleet counters, and a drained coordinator refuses fleet submits with
// 503 + Retry-After.
func TestCoordinatorMode(t *testing.T) {
	dir := t.TempDir()
	store, err := campaign.OpenShardedStore(filepath.Join(dir, "fleet"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	s := newServer(dir, 2, time.Minute)
	s.coord, err = fleet.NewCoordinator(fleet.Options{Store: store, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	spec := `{"tenant":"ci","spec":{
		"modes":["tdm"],"patterns":["transpose"],
		"meshes":[{"width":4,"height":4}],
		"rates":[0.05],"seeds":[1,2],
		"warmup_cycles":100,"measure_cycles":200}}`
	resp, err := http.Post(ts.URL+"/fleet/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sub fleet.SubmitResponse
	decodeBody(t, resp, http.StatusAccepted, &sub)

	w, err := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator:  ts.URL,
		Name:         "inproc",
		Workers:      2,
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	go w.Run(wctx)

	deadline := time.Now().Add(60 * time.Second)
	for {
		var st fleet.CampaignStatus
		getJSON(t, ts.URL+"/fleet/campaigns/"+sub.ID, &st)
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet campaign stuck: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := metric(t, ts, "fleet_jobs_completed_total"); got != int64(sub.Jobs) {
		t.Fatalf("fleet_jobs_completed_total = %d, want %d", got, sub.Jobs)
	}
	if got := metric(t, ts, "fleet_store_live_records"); got != int64(sub.Jobs) {
		t.Fatalf("fleet_store_live_records = %d, want %d", got, sub.Jobs)
	}

	s.drainAll(time.Second)
	resp, err = http.Post(ts.URL+"/fleet/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fleet submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fleet 503 missing Retry-After header")
	}
}

func decodeBody(t *testing.T, resp *http.Response, wantStatus int, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode: %v", err)
	}
}
