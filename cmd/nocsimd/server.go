package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tdmnoc/internal/campaign"
	"tdmnoc/internal/fleet"
	"tdmnoc/internal/obs"
)

// server owns the campaign registry. Each submitted campaign gets its
// own engine and runs in a background goroutine; results persist to a
// per-spec JSONL store in dataDir, so re-submitting a spec — after a
// completed run, a cancel, or a crash — resumes from whatever finished.
//
// With -coordinator the server additionally mounts the fleet control
// plane (see internal/fleet) under /fleet/; with -worker it runs a
// fleet worker loop alongside. Either way /metrics carries the extra
// counters.
type server struct {
	dataDir    string
	workers    int
	jobTimeout time.Duration

	// draining flips when shutdown starts: new submits are refused with
	// 503 + Retry-After so load balancers and retrying clients move on
	// immediately instead of racing the drain window.
	draining atomic.Bool

	coord   *fleet.Coordinator // non-nil in -coordinator mode
	fworker *fleet.Worker      // non-nil in -worker mode

	mu        sync.Mutex
	campaigns map[string]*run
	seq       int
}

// run is one campaign execution. The immutable identity fields are set
// at submit time; State and records are written by the background
// goroutine under mu.
type run struct {
	ID        string
	Name      string
	SpecHash  string
	Jobs      int
	Submitted time.Time
	Spec      campaign.Spec

	engine *campaign.Engine
	store  *campaign.Store
	cancel context.CancelFunc
	doneCh chan struct{}

	mu      sync.Mutex
	State   string // running | done | cancelled | failed
	Err     string
	records []campaign.Record
	// policy is the profile→re-run comparison report of a policy_profile
	// campaign (nil otherwise, and until the loop finishes).
	policy *campaign.PolicyReport
}

// statusView is the JSON shape of GET /campaigns and /campaigns/{id}:
// an immutable snapshot of a run, safe to marshal without holding any
// lock.
type statusView struct {
	ID        string          `json:"id"`
	Name      string          `json:"name,omitempty"`
	SpecHash  string          `json:"spec_hash"`
	Jobs      int             `json:"jobs"`
	State     string          `json:"state"`
	Error     string          `json:"error,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Spec      campaign.Spec   `json:"spec"`
	Counters  campaign.Status `json:"counters"`
}

// view snapshots the run's mutable state under its lock.
func (c *run) view() statusView {
	c.mu.Lock()
	state, errMsg := c.State, c.Err
	c.mu.Unlock()
	return statusView{
		ID: c.ID, Name: c.Name, SpecHash: c.SpecHash, Jobs: c.Jobs,
		State: state, Error: errMsg, Submitted: c.Submitted, Spec: c.Spec,
		Counters: c.engine.Status(),
	}
}

func newServer(dataDir string, workers int, jobTimeout time.Duration) *server {
	return &server{dataDir: dataDir, workers: workers, jobTimeout: jobTimeout, campaigns: map[string]*run{}}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /campaigns/{id}/summary", s.handleSummary)
	mux.HandleFunc("GET /campaigns/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /campaigns/{id}/policy", s.handlePolicy)
	mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /buildinfo", s.handleBuildInfo)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if s.coord != nil {
		s.coord.Register(mux)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit expands the posted spec and launches it. The response
// returns immediately with the campaign id; progress is polled via
// GET /campaigns/{id}.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Refuse with the standard backoff hint: the process is on its
		// way out and a campaign accepted now would be killed mid-run.
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable, "nocsimd is draining; retry against another instance")
		return
	}
	spec, err := campaign.ParseSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs, err := spec.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash := spec.Hash()
	store, err := campaign.OpenStore(filepath.Join(s.dataDir, "spec-"+hash[:16]+".jsonl"))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	eng := campaign.New(campaign.Options{Workers: s.workers, JobTimeout: s.jobTimeout, Store: store})
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("c%04d-%s", s.seq, hash[:12])
	c := &run{
		ID: id, Name: spec.Name, SpecHash: hash, Jobs: len(jobs),
		State: "running", Submitted: time.Now().UTC(), Spec: spec,
		engine: eng, store: store, cancel: cancel, doneCh: make(chan struct{}),
	}
	s.campaigns[id] = c
	s.mu.Unlock()

	go func() {
		defer close(c.doneCh)
		defer store.Close()
		if spec.PolicyProfile != nil {
			s.runPolicyCampaign(ctx, cancel, c, eng, spec)
			return
		}
		recs := eng.Run(ctx, jobs)
		cancel()
		c.mu.Lock()
		c.records = recs
		if ctx.Err() != nil && anyCancelled(recs) {
			c.State = "cancelled"
		} else {
			c.State = "done"
		}
		c.mu.Unlock()
	}()

	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": id, "jobs": len(jobs), "spec_hash": hash,
		"status_url":  "/campaigns/" + id,
		"results_url": "/campaigns/" + id + "/results",
	})
}

// runPolicyCampaign executes a policy_profile spec through the
// profile→re-run loop. Extracted profiles persist next to the result
// store, so a re-submitted comparison skips its phase-A simulations.
func (s *server) runPolicyCampaign(ctx context.Context, cancel context.CancelFunc, c *run, eng *campaign.Engine, spec campaign.Spec) {
	profs, err := campaign.OpenProfileStore(filepath.Join(s.dataDir, "spec-"+c.SpecHash[:16]+"-profiles.jsonl"))
	if err != nil {
		cancel()
		c.mu.Lock()
		c.State, c.Err = "failed", err.Error()
		c.mu.Unlock()
		return
	}
	defer profs.Close()
	rep, err := campaign.RunPolicyLoop(ctx, eng, spec, profs)
	cancel()
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err != nil && ctx.Err() != nil:
		c.State = "cancelled"
	case err != nil:
		c.State, c.Err = "failed", err.Error()
	default:
		c.policy = rep
		c.State = "done"
	}
}

// anyCancelled reports whether any record was skipped or aborted —
// distinguishing a cancel that landed mid-run from one that arrived
// after the last job finished.
func anyCancelled(recs []campaign.Record) bool {
	for _, r := range recs {
		if r.Err != "" {
			return true
		}
	}
	return false
}

func (s *server) get(id string) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	runs := make([]*run, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		runs = append(runs, c)
	}
	s.mu.Unlock()
	views := make([]statusView, 0, len(runs))
	for _, c := range runs {
		views = append(views, c.view())
	}
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	writeJSON(w, http.StatusOK, views)
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, c.view())
}

// handleResults streams the campaign's records — as a JSON array by
// default, or as raw JSONL with ?format=jsonl. Partial results are
// served while the campaign is still running (whatever the store holds
// so far).
func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	c, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	c.mu.Lock()
	recs := make([]campaign.Record, len(c.records))
	copy(recs, c.records)
	c.mu.Unlock()
	if len(recs) == 0 {
		// Still running: serve whatever the store has persisted so far
		// (unordered partial results).
		recs = c.store.Records()
		sort.Slice(recs, func(i, j int) bool { return recs[i].Label < recs[j].Label })
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/jsonl")
		enc := json.NewEncoder(w)
		for _, rec := range recs {
			enc.Encode(rec)
		}
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

// handleSummary aggregates the campaign's finished records across
// seeds (the mergeable-record path): one merged RunRecord per
// (mode, pattern, mesh, slots, rate) group, with derived averages.
func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	c, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	c.mu.Lock()
	recs := make([]campaign.Record, len(c.records))
	copy(recs, c.records)
	c.mu.Unlock()
	agg := campaign.Aggregate(recs, campaign.GroupWithoutSeed)
	type row struct {
		Group             string  `json:"group"`
		Seeds             int64   `json:"seeds"`
		AvgNetLatency     float64 `json:"avg_net_latency"`
		AvgTotalLatency   float64 `json:"avg_total_latency"`
		Throughput        float64 `json:"throughput"`
		PayloadThroughput float64 `json:"payload_throughput"`
		CSFlitFraction    float64 `json:"cs_flit_fraction"`
		EnergyPJ          float64 `json:"energy_pj"`
	}
	rows := make([]row, 0, len(agg))
	for g, rec := range agg {
		rows = append(rows, row{
			Group: g, Seeds: rec.Runs,
			AvgNetLatency: rec.AvgNetLatency(), AvgTotalLatency: rec.AvgTotalLatency(),
			Throughput: rec.Throughput(), PayloadThroughput: rec.PayloadThroughput(),
			CSFlitFraction: rec.CSFlitFraction(), EnergyPJ: rec.EnergyPJ,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Group < rows[j].Group })
	writeJSON(w, http.StatusOK, rows)
}

// handleTimeline serves the per-job observability summaries of a
// telemetry campaign (specs with telemetry_every set): one row per
// record that carries a Summary. Campaigns run without telemetry
// return an empty array.
func (s *server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	c, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	c.mu.Lock()
	recs := make([]campaign.Record, len(c.records))
	copy(recs, c.records)
	c.mu.Unlock()
	if len(recs) == 0 {
		recs = c.store.Records()
		sort.Slice(recs, func(i, j int) bool { return recs[i].Label < recs[j].Label })
	}
	type row struct {
		Label     string       `json:"label"`
		Key       string       `json:"key"`
		Telemetry *obs.Summary `json:"telemetry"`
	}
	rows := make([]row, 0, len(recs))
	for _, rec := range recs {
		if rec.Telemetry == nil {
			continue
		}
		rows = append(rows, row{Label: rec.Label, Key: rec.Key, Telemetry: rec.Telemetry})
	}
	writeJSON(w, http.StatusOK, rows)
}

// handlePolicy serves the profile→re-run comparison report of a
// policy_profile campaign: one outcome per (job, policy) with the
// energy/latency deltas against the static baseline. 409 until the
// loop finishes; 404-shaped error for plain sweep campaigns.
func (s *server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	c, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	if c.Spec.PolicyProfile == nil {
		writeError(w, http.StatusNotFound, "campaign %q is not a policy_profile campaign", c.ID)
		return
	}
	c.mu.Lock()
	rep, state := c.policy, c.State
	c.mu.Unlock()
	if rep == nil {
		writeError(w, http.StatusConflict, "campaign %q has no policy report yet (state %s)", c.ID, state)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleBuildInfo reports how this binary was built (Go version, module
// version, VCS revision and dirty flag) from the info the linker embeds
// — the first thing to check when a deployed daemon misbehaves.
func (s *server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		writeError(w, http.StatusInternalServerError, "binary carries no build info")
		return
	}
	out := map[string]string{
		"go":     bi.GoVersion,
		"module": bi.Main.Path,
	}
	if bi.Main.Version != "" {
		out["version"] = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision", "vcs.time", "vcs.modified", "GOARCH", "GOOS":
			out[kv.Key] = kv.Value
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	c.cancel()
	writeJSON(w, http.StatusOK, map[string]string{"id": c.ID, "state": "cancelling"})
}

// handleMetrics exposes the aggregate counters across every campaign
// in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	var total campaign.Status
	var telem campaign.Telemetry
	campaigns := len(s.campaigns)
	running := 0
	for _, c := range s.campaigns {
		st := c.engine.Status()
		total.Queued += st.Queued
		total.Running += st.Running
		total.Done += st.Done
		total.Failed += st.Failed
		total.CacheHits += st.CacheHits
		total.CyclesSimulated += st.CyclesSimulated
		total.Violations += st.Violations
		tl := c.engine.Telemetry()
		telem.Jobs += tl.Jobs
		telem.SlotSteals += tl.SlotSteals
		telem.SetupCount += tl.SetupCount
		telem.SetupSum += tl.SetupSum
		telem.DroppedWindows += tl.DroppedWindows
		telem.RingDrops += tl.RingDrops
		for len(telem.RingDropsByShard) < len(tl.RingDropsByShard) {
			telem.RingDropsByShard = append(telem.RingDropsByShard, 0)
		}
		for i, d := range tl.RingDropsByShard {
			telem.RingDropsByShard[i] += d
		}
		if telem.BucketLE == nil {
			telem.BucketLE = tl.BucketLE
			telem.Buckets = make([]uint64, len(tl.Buckets))
		}
		for i, b := range tl.Buckets {
			telem.Buckets[i] += b
		}
		c.mu.Lock()
		if c.State == "running" {
			running++
		}
		c.mu.Unlock()
	}
	s.mu.Unlock()
	if telem.BucketLE == nil {
		// No campaigns yet: emit the empty histogram with its full bucket
		// schema so scrapers see a stable series set from the first scrape.
		telem.BucketLE = obs.LatencyBuckets[:]
		telem.Buckets = make([]uint64, len(obs.LatencyBuckets)+1)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP nocsimd_jobs_queued Jobs waiting for a worker.\n# TYPE nocsimd_jobs_queued gauge\nnocsimd_jobs_queued %d\n", total.Queued)
	fmt.Fprintf(w, "# HELP nocsimd_jobs_running Jobs currently simulating.\n# TYPE nocsimd_jobs_running gauge\nnocsimd_jobs_running %d\n", total.Running)
	fmt.Fprintf(w, "# HELP nocsimd_jobs_done Jobs completed (including cache hits).\n# TYPE nocsimd_jobs_done counter\nnocsimd_jobs_done %d\n", total.Done)
	fmt.Fprintf(w, "# HELP nocsimd_jobs_failed Jobs failed, timed out, or skipped.\n# TYPE nocsimd_jobs_failed counter\nnocsimd_jobs_failed %d\n", total.Failed)
	fmt.Fprintf(w, "# HELP nocsimd_cache_hits Jobs served from the result cache.\n# TYPE nocsimd_cache_hits counter\nnocsimd_cache_hits %d\n", total.CacheHits)
	fmt.Fprintf(w, "# HELP nocsimd_cycles_simulated Total simulated cycles (warmup + measured).\n# TYPE nocsimd_cycles_simulated counter\nnocsimd_cycles_simulated %d\n", total.CyclesSimulated)
	fmt.Fprintf(w, "# HELP nocsimd_invariant_violations Runtime invariant violations detected in checked jobs.\n# TYPE nocsimd_invariant_violations counter\nnocsimd_invariant_violations %d\n", total.Violations)
	fmt.Fprintf(w, "# HELP nocsimd_campaigns_total Campaigns submitted since start.\n# TYPE nocsimd_campaigns_total counter\nnocsimd_campaigns_total %d\n", campaigns)
	fmt.Fprintf(w, "# HELP nocsimd_campaigns_running Campaigns still executing.\n# TYPE nocsimd_campaigns_running gauge\nnocsimd_campaigns_running %d\n", running)
	fmt.Fprintf(w, "# HELP nocsimd_jobs_inflight Jobs admitted but not finished (queued + running).\n# TYPE nocsimd_jobs_inflight gauge\nnocsimd_jobs_inflight %d\n", total.Queued+total.Running)
	fmt.Fprintf(w, "# HELP nocsimd_telemetry_jobs Jobs run with per-job observability attached.\n# TYPE nocsimd_telemetry_jobs counter\nnocsimd_telemetry_jobs %d\n", telem.Jobs)
	fmt.Fprintf(w, "# HELP nocsimd_slot_steals_total Time-slot steals observed by telemetry jobs.\n# TYPE nocsimd_slot_steals_total counter\nnocsimd_slot_steals_total %d\n", telem.SlotSteals)
	fmt.Fprintf(w, "# HELP nocsimd_telemetry_dropped_windows_total Telemetry windows evicted past MaxSamples (timelines truncated at the head).\n# TYPE nocsimd_telemetry_dropped_windows_total counter\nnocsimd_telemetry_dropped_windows_total %d\n", telem.DroppedWindows)
	fmt.Fprintf(w, "# HELP nocsimd_telemetry_ring_drops_total Telemetry events dropped by full per-worker rings (sampled traces have gaps).\n# TYPE nocsimd_telemetry_ring_drops_total counter\nnocsimd_telemetry_ring_drops_total %d\n", telem.RingDrops)
	if len(telem.RingDropsByShard) > 0 {
		fmt.Fprintf(w, "# HELP nocsimd_telemetry_ring_drops Telemetry ring drops by worker shard.\n# TYPE nocsimd_telemetry_ring_drops counter\n")
		for i, d := range telem.RingDropsByShard {
			fmt.Fprintf(w, "nocsimd_telemetry_ring_drops{shard=\"%d\"} %d\n", i, d)
		}
	}
	fmt.Fprintf(w, "# HELP nocsimd_setup_latency_cycles Circuit setup round-trip latency observed by telemetry jobs.\n# TYPE nocsimd_setup_latency_cycles histogram\n")
	cum := uint64(0)
	for i, le := range telem.BucketLE {
		cum += telem.Buckets[i]
		fmt.Fprintf(w, "nocsimd_setup_latency_cycles_bucket{le=\"%d\"} %d\n", le, cum)
	}
	fmt.Fprintf(w, "nocsimd_setup_latency_cycles_bucket{le=\"+Inf\"} %d\n", telem.SetupCount)
	fmt.Fprintf(w, "nocsimd_setup_latency_cycles_sum %d\n", telem.SetupSum)
	fmt.Fprintf(w, "nocsimd_setup_latency_cycles_count %d\n", telem.SetupCount)
	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(w, "# HELP nocsimd_draining Whether this instance is draining (1 = refusing new submits).\n# TYPE nocsimd_draining gauge\nnocsimd_draining %d\n", draining)
	if s.coord != nil {
		s.coord.WriteMetrics(w)
	}
	if s.fworker != nil {
		fmt.Fprintf(w, "# HELP nocsimd_worker_shards_done Fleet shards completed by this worker.\n# TYPE nocsimd_worker_shards_done counter\nnocsimd_worker_shards_done %d\n", s.fworker.ShardsDone.Load())
		fmt.Fprintf(w, "# HELP nocsimd_worker_shards_failed Fleet shards abandoned by this worker.\n# TYPE nocsimd_worker_shards_failed counter\nnocsimd_worker_shards_failed %d\n", s.fworker.ShardsFailed.Load())
		fmt.Fprintf(w, "# HELP nocsimd_worker_jobs_run Fleet jobs executed by this worker.\n# TYPE nocsimd_worker_jobs_run counter\nnocsimd_worker_jobs_run %d\n", s.fworker.JobsRun.Load())
		fmt.Fprintf(w, "# HELP nocsimd_worker_lease_errors Failed lease pulls (coordinator unreachable).\n# TYPE nocsimd_worker_lease_errors counter\nnocsimd_worker_lease_errors %d\n", s.fworker.LeaseErrors.Load())
	}
}

// drainAll tells every engine to stop launching jobs and waits (up to
// timeout) for in-flight jobs to land and persist — the graceful half
// of shutdown. New submits are refused with 503 from the moment it is
// called; in -coordinator mode leasing stops too (workers see an empty
// queue and idle), and in -worker mode the pull loop exits after its
// current shard.
func (s *server) drainAll(timeout time.Duration) {
	s.draining.Store(true)
	if s.coord != nil {
		s.coord.Drain()
	}
	if s.fworker != nil {
		s.fworker.Drain()
	}
	s.mu.Lock()
	var waits []chan struct{}
	for _, c := range s.campaigns {
		c.engine.Drain()
		waits = append(waits, c.doneCh)
	}
	s.mu.Unlock()
	deadline := time.After(timeout)
	for _, ch := range waits {
		select {
		case <-ch:
		case <-deadline:
			return
		}
	}
}
