// Command sweep runs a load sweep for one configuration and prints a CSV
// load-latency curve, the raw material of Fig. 4 / Fig. 5:
//
//	sweep -mode tdm -pattern tornado -from 0.05 -to 0.5 -step 0.05
//	sweep -mode packet -pattern ur > ps-ur.csv
//
// Sweeps execute on the campaign engine; pass -results sweep.jsonl to
// persist records so an interrupted or repeated sweep resumes from the
// finished points instead of recomputing them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"tdmnoc/internal/campaign"
	"tdmnoc/internal/textplot"
)

func main() {
	mode := flag.String("mode", "tdm", "switching mode: packet|tdm|sdm")
	pattern := flag.String("pattern", "tornado", "traffic pattern: ur|tornado|transpose|bc|neighbor|hotspot")
	width := flag.Int("width", 6, "mesh width")
	height := flag.Int("height", 6, "mesh height")
	from := flag.Float64("from", 0.05, "first offered load")
	to := flag.Float64("to", 0.50, "last offered load")
	step := flag.Float64("step", 0.05, "offered load step")
	warmup := flag.Int("warmup", 8000, "warm-up cycles")
	cycles := flag.Int("cycles", 40000, "measured cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	sharing := flag.Bool("sharing", false, "path sharing (tdm)")
	vcgating := flag.Bool("vcgating", false, "VC power gating")
	check := flag.Bool("check", false, "run the per-cycle invariant checker on every job (slower, never changes results)")
	results := flag.String("results", "", "persist records to this JSONL file (enables resume and caching)")
	plot := flag.Bool("plot", false, "render ASCII load-latency and energy charts after the CSV")
	flag.Parse()

	if *step <= 0 || *to < *from {
		fmt.Fprintf(os.Stderr, "sweep: bad load range [%v, %v] step %v\n", *from, *to, *step)
		os.Exit(2)
	}
	var rates []float64
	for r := *from; r <= *to+1e-9; r += *step {
		rates = append(rates, r)
	}

	spec := campaign.Spec{
		Name:            "sweep",
		Modes:           []string{*mode},
		Patterns:        []string{*pattern},
		Meshes:          []campaign.MeshSize{{Width: *width, Height: *height}},
		Rates:           rates,
		Seeds:           []uint64{*seed},
		PathSharing:     *sharing,
		VCPowerGating:   *vcgating,
		WarmupCycles:    *warmup,
		MeasureCycles:   *cycles,
		CheckInvariants: *check,
	}
	jobs, err := spec.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var store *campaign.Store
	if *results != "" {
		store, err = campaign.OpenStore(*results)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer store.Close()
	}
	eng := campaign.New(campaign.Options{Store: store})
	recs := eng.Run(context.Background(), jobs)

	failed := 0
	fmt.Println("offered,accepted,payload_accepted,net_latency,total_latency,cs_fraction,energy_pj")
	for i, rec := range recs {
		if rec.Err != "" {
			fmt.Fprintf(os.Stderr, "sweep: %s: %s\n", rec.Label, rec.Err)
			failed++
			continue
		}
		res := rec.Result
		fmt.Printf("%.3f,%.4f,%.4f,%.2f,%.2f,%.4f,%.0f\n",
			rates[i], res.Throughput(), res.PayloadThroughput(), res.AvgNetLatency(), res.AvgTotalLatency(),
			res.CSFlitFraction(), res.EnergyPJ)
	}
	if *plot {
		lat := textplot.Plot{Title: "load vs total latency", XLabel: "offered flits/node/cycle", YLabel: "cycles", YMax: 300}
		acc := textplot.Plot{Title: "load vs accepted payload throughput", XLabel: "offered", YLabel: "accepted"}
		var xs, latY, accY []float64
		for i, rec := range recs {
			if rec.Err != "" {
				continue
			}
			xs = append(xs, rates[i])
			latY = append(latY, rec.Result.AvgTotalLatency())
			accY = append(accY, rec.Result.PayloadThroughput())
		}
		_ = lat.Add(textplot.Series{Name: *mode + "/" + *pattern, X: xs, Y: latY})
		_ = acc.Add(textplot.Series{Name: *mode + "/" + *pattern, X: xs, Y: accY})
		fmt.Println()
		fmt.Print(lat.Render())
		fmt.Println()
		fmt.Print(acc.Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
