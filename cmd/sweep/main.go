// Command sweep runs a load sweep for one configuration and prints a CSV
// load-latency curve, the raw material of Fig. 4 / Fig. 5:
//
//	sweep -mode tdm -pattern tornado -from 0.05 -to 0.5 -step 0.05
//	sweep -mode packet -pattern ur > ps-ur.csv
//
// Sweeps execute on the campaign engine; pass -results sweep.jsonl to
// persist records so an interrupted or repeated sweep resumes from the
// finished points instead of recomputing them.
//
// With -fleet the sweep is submitted to a fleet coordinator instead of
// simulating locally: the jobs fan out across the coordinator's
// workers, the records come back through its content-addressed store
// (so repeated sweeps are served from cache), and the CSV is identical
// to a local run:
//
//	sweep -fleet http://localhost:8080 -mode tdm -pattern tornado
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"tdmnoc/internal/campaign"
	"tdmnoc/internal/fleet"
	"tdmnoc/internal/textplot"
)

func main() {
	mode := flag.String("mode", "tdm", "switching mode: packet|tdm|sdm")
	pattern := flag.String("pattern", "tornado", "traffic pattern: ur|tornado|transpose|bc|neighbor|hotspot")
	width := flag.Int("width", 6, "mesh width")
	height := flag.Int("height", 6, "mesh height")
	from := flag.Float64("from", 0.05, "first offered load")
	to := flag.Float64("to", 0.50, "last offered load")
	step := flag.Float64("step", 0.05, "offered load step")
	warmup := flag.Int("warmup", 8000, "warm-up cycles")
	cycles := flag.Int("cycles", 40000, "measured cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	sharing := flag.Bool("sharing", false, "path sharing (tdm)")
	vcgating := flag.Bool("vcgating", false, "VC power gating")
	check := flag.Bool("check", false, "run the per-cycle invariant checker on every job (slower, never changes results)")
	results := flag.String("results", "", "persist records to this JSONL file (enables resume and caching)")
	plot := flag.Bool("plot", false, "render ASCII load-latency and energy charts after the CSV")
	fleetURL := flag.String("fleet", "", "submit to this fleet coordinator URL instead of simulating locally")
	tenant := flag.String("tenant", "", "tenant name for -fleet submissions")
	policies := flag.String("policies", "", "compare adaptive policies over the load range via the profile->re-run loop (comma-separated, e.g. static,threshold,greedy,sdm-gate); prints a policy-comparison CSV instead of the load-latency curve (tdm only)")
	profilesPath := flag.String("profiles", "", "with -policies, persist extracted traffic profiles to this JSONL file so repeated comparisons skip phase A")
	specPath := flag.String("spec", "", "run the policy_profile campaign spec in this JSON file (e.g. scenarios/fig4_policy.json) instead of building one from the flags")
	flag.Parse()

	if *specPath != "" {
		if *policies != "" || *fleetURL != "" {
			fmt.Fprintln(os.Stderr, "sweep: -spec declares its own policies and runs locally; -policies/-fleet do not combine with it")
			os.Exit(2)
		}
		f, err := os.Open(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		spec, err := campaign.ParseSpec(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", *specPath, err)
			os.Exit(2)
		}
		if spec.PolicyProfile == nil {
			fmt.Fprintf(os.Stderr, "sweep: %s has no policy_profile section; submit plain specs to nocsimd instead\n", *specPath)
			os.Exit(2)
		}
		runPolicyLoopSpec(spec, *results, *profilesPath)
		return
	}

	if *step <= 0 || *to < *from {
		fmt.Fprintf(os.Stderr, "sweep: bad load range [%v, %v] step %v\n", *from, *to, *step)
		os.Exit(2)
	}
	var rates []float64
	for r := *from; r <= *to+1e-9; r += *step {
		rates = append(rates, r)
	}

	spec := campaign.Spec{
		Name:            "sweep",
		Modes:           []string{*mode},
		Patterns:        []string{*pattern},
		Meshes:          []campaign.MeshSize{{Width: *width, Height: *height}},
		Rates:           rates,
		Seeds:           []uint64{*seed},
		PathSharing:     *sharing,
		VCPowerGating:   *vcgating,
		WarmupCycles:    *warmup,
		MeasureCycles:   *cycles,
		CheckInvariants: *check,
	}
	if *policies != "" {
		if *fleetURL != "" {
			fmt.Fprintln(os.Stderr, "sweep: -policies runs the profile->re-run loop locally; it is not supported with -fleet")
			os.Exit(2)
		}
		runPolicyComparison(spec, *policies, *results, *profilesPath)
		return
	}

	jobs, err := spec.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var recs []campaign.Record
	if *fleetURL != "" {
		recs, err = runOnFleet(*fleetURL, *tenant, spec, len(jobs))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
	} else {
		var store *campaign.Store
		if *results != "" {
			store, err = campaign.OpenStore(*results)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer store.Close()
		}
		eng := campaign.New(campaign.Options{Store: store})
		recs = eng.Run(context.Background(), jobs)
	}

	failed := 0
	fmt.Println("offered,accepted,payload_accepted,net_latency,total_latency,cs_fraction,energy_pj")
	for i, rec := range recs {
		if rec.Err != "" {
			fmt.Fprintf(os.Stderr, "sweep: %s: %s\n", rec.Label, rec.Err)
			failed++
			continue
		}
		res := rec.Result
		fmt.Printf("%.3f,%.4f,%.4f,%.2f,%.2f,%.4f,%.0f\n",
			rates[i], res.Throughput(), res.PayloadThroughput(), res.AvgNetLatency(), res.AvgTotalLatency(),
			res.CSFlitFraction(), res.EnergyPJ)
	}
	if *plot {
		lat := textplot.Plot{Title: "load vs total latency", XLabel: "offered flits/node/cycle", YLabel: "cycles", YMax: 300}
		acc := textplot.Plot{Title: "load vs accepted payload throughput", XLabel: "offered", YLabel: "accepted"}
		var xs, latY, accY []float64
		for i, rec := range recs {
			if rec.Err != "" {
				continue
			}
			xs = append(xs, rates[i])
			latY = append(latY, rec.Result.AvgTotalLatency())
			accY = append(accY, rec.Result.PayloadThroughput())
		}
		_ = lat.Add(textplot.Series{Name: *mode + "/" + *pattern, X: xs, Y: latY})
		_ = acc.Add(textplot.Series{Name: *mode + "/" + *pattern, X: xs, Y: accY})
		fmt.Println()
		fmt.Print(lat.Render())
		fmt.Println()
		fmt.Print(acc.Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runPolicyComparison drives the offline profile→re-run loop across the
// sweep's load range and prints one CSV row per (grid point, policy)
// with the energy-per-flit and latency deltas against the static
// baseline. Negative deltas are improvements.
func runPolicyComparison(spec campaign.Spec, policies, results, profilesPath string) {
	spec.Name = "policy-sweep"
	spec.PolicyProfile = &campaign.PolicyProfileSpec{Policies: strings.Split(policies, ",")}
	runPolicyLoopSpec(spec, results, profilesPath)
}

// runPolicyLoopSpec runs a ready policy_profile spec (from flags or a
// scenario file) and prints the comparison CSV.
func runPolicyLoopSpec(spec campaign.Spec, results, profilesPath string) {
	var store *campaign.Store
	if results != "" {
		s, err := campaign.OpenStore(results)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer s.Close()
		store = s
	}
	var profs *campaign.ProfileStore
	if profilesPath != "" {
		p, err := campaign.OpenProfileStore(profilesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer p.Close()
		profs = p
	}
	eng := campaign.New(campaign.Options{Store: store})
	rep, err := campaign.RunPolicyLoop(context.Background(), eng, spec, profs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	failed := 0
	fmt.Println("label,policy,pins,base_energy_per_flit_pj,energy_per_flit_pj,energy_delta_pct,base_latency,latency,latency_delta_pct,throughput")
	for _, o := range rep.Outcomes {
		if o.Err != "" {
			fmt.Fprintf(os.Stderr, "sweep: %s/%s: %s\n", o.Label, o.Policy, o.Err)
			failed++
			continue
		}
		fmt.Printf("%s,%s,%d,%.3f,%.3f,%+.2f,%.2f,%.2f,%+.2f,%.4f\n",
			o.Label, o.Policy, len(o.Decision.PinnedFlows),
			o.BaseEnergyPerFlit, o.EnergyPerFlit, o.EnergyDeltaPct,
			o.BaseAvgLatency, o.AvgLatency, o.LatencyDeltaPct, o.Throughput)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runOnFleet submits the spec to the coordinator, waits for the
// campaign to finish, and fetches the records in job order — the same
// order a local engine run returns, so the CSV lines up with rates.
// Quota (429) and drain (503) rejections honour Retry-After.
func runOnFleet(base, tenant string, spec campaign.Spec, jobs int) ([]campaign.Record, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	body, err := json.Marshal(fleet.SubmitRequest{Tenant: tenant, Spec: spec})
	if err != nil {
		return nil, err
	}

	var sub fleet.SubmitResponse
	for {
		resp, err := client.Post(base+"/fleet/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("submit to fleet: %w", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			wait := 15 * time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				var secs int
				if _, err := fmt.Sscanf(s, "%d", &secs); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "sweep: coordinator busy (%d), retrying in %v\n", resp.StatusCode, wait)
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("submit to fleet: status %d: %s", resp.StatusCode, b)
		}
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("decode submit response: %w", err)
		}
		break
	}
	fmt.Fprintf(os.Stderr, "sweep: fleet campaign %s (%d jobs, %d shards, %d cached)\n",
		sub.ID, sub.Jobs, sub.Shards, sub.CachedShards)

	// Transport errors during the poll are tolerated for a bounded
	// window: a journaled coordinator restarting mid-sweep refuses
	// connections for a few seconds and then serves the same campaign
	// again, so giving up on the first refused dial would turn a clean
	// recovery into a failed sweep. HTTP status errors (404 on the
	// campaign, 500s) still fail fast — the coordinator is up and
	// disagreeing, retries won't reconcile that.
	const pollEvery = 500 * time.Millisecond
	transient := 0
	for done := false; !done; {
		var st fleet.CampaignStatus
		err := getJSON(client, base+"/fleet/campaigns/"+sub.ID, &st)
		switch {
		case err == nil:
			transient = 0
			done = st.State == "done"
		case isTransient(err):
			transient++
			if transient > 240 { // ~2 minutes of solid unreachability
				return nil, fmt.Errorf("coordinator unreachable for %v: %w", time.Duration(transient)*pollEvery, err)
			}
		default:
			return nil, err
		}
		if !done {
			time.Sleep(pollEvery)
		}
	}

	var recs []campaign.Record
	if err := getJSON(client, base+"/fleet/campaigns/"+sub.ID+"/results", &recs); err != nil {
		return nil, err
	}
	if len(recs) != jobs {
		return nil, fmt.Errorf("fleet returned %d records, want %d", len(recs), jobs)
	}
	return recs, nil
}

// isTransient reports whether err is a transport-level failure (refused
// dial, reset connection, timeout) as opposed to an HTTP status error.
func isTransient(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue)
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
