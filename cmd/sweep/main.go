// Command sweep runs a load sweep for one configuration and prints a CSV
// load-latency curve, the raw material of Fig. 4 / Fig. 5:
//
//	sweep -mode tdm -pattern tornado -from 0.05 -to 0.5 -step 0.05
//	sweep -mode packet -pattern ur > ps-ur.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/textplot"
)

func main() {
	mode := flag.String("mode", "tdm", "switching mode: packet|tdm|sdm")
	pattern := flag.String("pattern", "tornado", "traffic pattern: ur|tornado|transpose|bc|neighbor")
	width := flag.Int("width", 6, "mesh width")
	height := flag.Int("height", 6, "mesh height")
	from := flag.Float64("from", 0.05, "first offered load")
	to := flag.Float64("to", 0.50, "last offered load")
	step := flag.Float64("step", 0.05, "offered load step")
	warmup := flag.Int("warmup", 8000, "warm-up cycles")
	cycles := flag.Int("cycles", 40000, "measured cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	sharing := flag.Bool("sharing", false, "path sharing (tdm)")
	vcgating := flag.Bool("vcgating", false, "VC power gating")
	plot := flag.Bool("plot", false, "render ASCII load-latency and energy charts after the CSV")
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p, err := parsePattern(*pattern)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var rates []float64
	for r := *from; r <= *to+1e-9; r += *step {
		rates = append(rates, r)
	}
	results := make([]hsnoc.Results, len(rates))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, r := range rates {
		wg.Add(1)
		go func(i int, r float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := hsnoc.DefaultConfig(*width, *height)
			cfg.Mode = m
			cfg.Seed = *seed
			cfg.PathSharing = *sharing
			cfg.VCPowerGating = *vcgating
			s := hsnoc.NewSynthetic(cfg, p, r)
			defer s.Close()
			s.Warmup(*warmup)
			results[i] = s.Run(*cycles)
		}(i, r)
	}
	wg.Wait()

	fmt.Println("offered,accepted,payload_accepted,net_latency,total_latency,cs_fraction,energy_pj")
	for i, r := range rates {
		res := results[i]
		fmt.Printf("%.3f,%.4f,%.4f,%.2f,%.2f,%.4f,%.0f\n",
			r, res.Throughput, res.PayloadThroughput, res.AvgNetLatency, res.AvgTotalLatency,
			res.CSFlitFraction, res.Energy.TotalPJ)
	}
	if *plot {
		lat := textplot.Plot{Title: "load vs total latency", XLabel: "offered flits/node/cycle", YLabel: "cycles", YMax: 300}
		acc := textplot.Plot{Title: "load vs accepted payload throughput", XLabel: "offered", YLabel: "accepted"}
		var latY, accY []float64
		for _, res := range results {
			latY = append(latY, res.AvgTotalLatency)
			accY = append(accY, res.PayloadThroughput)
		}
		_ = lat.Add(textplot.Series{Name: *mode + "/" + *pattern, X: rates, Y: latY})
		_ = acc.Add(textplot.Series{Name: *mode + "/" + *pattern, X: rates, Y: accY})
		fmt.Println()
		fmt.Print(lat.Render())
		fmt.Println()
		fmt.Print(acc.Render())
	}
}

func parseMode(s string) (hsnoc.Mode, error) {
	switch strings.ToLower(s) {
	case "packet", "ps", "packet-vc4":
		return hsnoc.PacketSwitched, nil
	case "tdm", "hybrid-tdm":
		return hsnoc.HybridTDM, nil
	case "sdm", "hybrid-sdm":
		return hsnoc.HybridSDM, nil
	}
	return 0, fmt.Errorf("unknown mode %q (packet|tdm|sdm)", s)
}

func parsePattern(s string) (hsnoc.Pattern, error) {
	switch strings.ToLower(s) {
	case "ur", "uniform", "random":
		return hsnoc.UniformRandom, nil
	case "tor", "tornado":
		return hsnoc.Tornado, nil
	case "tr", "transpose":
		return hsnoc.Transpose, nil
	case "bc", "bitcomplement":
		return hsnoc.BitComplement, nil
	case "nbr", "neighbor":
		return hsnoc.Neighbor, nil
	case "hot", "hotspot":
		return hsnoc.Hotspot, nil
	}
	return 0, fmt.Errorf("unknown pattern %q (ur|tornado|transpose|bc|neighbor|hotspot)", s)
}
