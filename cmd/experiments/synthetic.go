package main

import (
	"context"
	"fmt"
	"os"
	"runtime"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/campaign"
	"tdmnoc/internal/stats"
)

// synthPoint is one (configuration, pattern, rate) measurement.
type synthPoint struct {
	label   string
	pattern hsnoc.Pattern
	rate    float64
	res     stats.RunRecord
}

// synthJob describes one simulation to run.
type synthJob struct {
	label   string
	cfg     hsnoc.Config
	pattern hsnoc.Pattern
	rate    float64
	warm    int
	measure int
}

// runSynthetic executes jobs on the campaign engine (the one execution
// path shared with cmd/sweep and cmd/nocsimd): bounded parallelism,
// panic containment, and within-run dedup of identical configs. Each
// job is internally deterministic, so output order is fixed by the job
// list.
func runSynthetic(jobs []synthJob, workers int) []synthPoint {
	cjobs := make([]campaign.Job, len(jobs))
	for i, j := range jobs {
		cjobs[i] = campaign.NewJob(j.cfg, j.pattern, j.rate, j.warm, j.measure, j.label)
	}
	eng := campaign.New(campaign.Options{Workers: workers})
	recs := eng.Run(context.Background(), cjobs)
	out := make([]synthPoint, len(jobs))
	for i, rec := range recs {
		if rec.Err != "" {
			fmt.Fprintf(os.Stderr, "experiments: job %s failed: %s\n", rec.Label, rec.Err)
		}
		out[i] = synthPoint{label: jobs[i].label, pattern: jobs[i].pattern, rate: jobs[i].rate, res: rec.Result}
	}
	return out
}

// savingPct formats an energy-saving percentage for the result tables,
// returning "n/a" when the figure is undefined (either run measured
// zero cycles — e.g. a failed job's empty record — or the baseline
// reported zero energy).
func savingPct(r, base stats.RunRecord) string {
	s, ok := r.EnergySavingVs(base)
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*s)
}

// configs for the Fig. 4 comparison.
func packetCfg(w, h int, seed uint64) hsnoc.Config {
	c := hsnoc.DefaultConfig(w, h)
	c.Seed = seed
	return c
}

func tdmCfg(w, h int, seed uint64) hsnoc.Config {
	c := hsnoc.DefaultConfig(w, h)
	c.Mode = hsnoc.HybridTDM
	c.Seed = seed
	return c
}

func tdmVCtCfg(w, h int, seed uint64) hsnoc.Config {
	c := tdmCfg(w, h, seed)
	c.VCPowerGating = true
	return c
}

func sdmCfg(w, h int, seed uint64) hsnoc.Config {
	c := hsnoc.DefaultConfig(w, h)
	c.Mode = hsnoc.HybridSDM
	c.Seed = seed
	return c
}

func sweepRates(quick bool) []float64 {
	if quick {
		return []float64{0.05, 0.20, 0.35, 0.50}
	}
	return []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}
}

func cyclesFor(quick bool) (warm, measure int) {
	if quick {
		return 2000, 8000
	}
	return 8000, 40000
}

// fig4 reproduces the load-latency curves of Fig. 4 for UR, TOR and TR
// under Packet-VC4, Hybrid-SDM-VC4, Hybrid-TDM-VC4 and Hybrid-TDM-VCt.
func fig4(rc runConfig) {
	fmt.Println("== Figure 4: load-latency curves (6x6 mesh) ==")
	warm, measure := cyclesFor(rc.quick)
	patterns := []hsnoc.Pattern{hsnoc.UniformRandom, hsnoc.Tornado, hsnoc.Transpose}
	type variant struct {
		name string
		cfg  func(uint64) hsnoc.Config
	}
	variants := []variant{
		{"Packet-VC4", func(s uint64) hsnoc.Config { return packetCfg(6, 6, s) }},
		{"Hybrid-SDM-VC4", func(s uint64) hsnoc.Config { return sdmCfg(6, 6, s) }},
		{"Hybrid-TDM-VC4", func(s uint64) hsnoc.Config { return tdmCfg(6, 6, s) }},
		{"Hybrid-TDM-VCt", func(s uint64) hsnoc.Config { return tdmVCtCfg(6, 6, s) }},
	}
	for _, pat := range patterns {
		var jobs []synthJob
		for _, v := range variants {
			for _, rate := range sweepRates(rc.quick) {
				jobs = append(jobs, synthJob{
					label: v.name, cfg: v.cfg(rc.seed), pattern: pat, rate: rate,
					warm: warm, measure: measure,
				})
			}
		}
		pts := runSynthetic(jobs, rc.workers)
		fmt.Printf("\n-- pattern %v --\n", pat)
		fmt.Printf("%-16s %8s %10s %10s %10s %8s\n", "config", "offered", "accepted", "netlat", "totlat", "cs%")
		for _, p := range pts {
			fmt.Printf("%-16s %8.2f %10.3f %10.1f %10.1f %8.1f\n",
				p.label, p.rate, p.res.PayloadThroughput(), p.res.AvgNetLatency(), p.res.AvgTotalLatency(),
				100*p.res.CSFlitFraction())
		}
	}
	fmt.Println()
}

// fig5 reproduces the energy-saving-vs-injection curves of Fig. 5:
// Hybrid-TDM-VC4 and Hybrid-TDM-VCt relative to Packet-VC4.
func fig5(rc runConfig) {
	fmt.Println("== Figure 5: network energy saving vs injection rate (6x6 mesh) ==")
	warm, measure := cyclesFor(rc.quick)
	patterns := []hsnoc.Pattern{hsnoc.UniformRandom, hsnoc.Tornado, hsnoc.Transpose}
	for _, pat := range patterns {
		var jobs []synthJob
		rates := sweepRates(rc.quick)
		for _, rate := range rates {
			jobs = append(jobs,
				synthJob{label: "base", cfg: packetCfg(6, 6, rc.seed), pattern: pat, rate: rate, warm: warm, measure: measure},
				synthJob{label: "tdm", cfg: tdmCfg(6, 6, rc.seed), pattern: pat, rate: rate, warm: warm, measure: measure},
				synthJob{label: "vct", cfg: tdmVCtCfg(6, 6, rc.seed), pattern: pat, rate: rate, warm: warm, measure: measure},
			)
		}
		pts := runSynthetic(jobs, rc.workers)
		fmt.Printf("\n-- pattern %v --\n", pat)
		fmt.Printf("%8s %18s %18s\n", "offered", "TDM-VC4 saving", "TDM-VCt saving")
		for i := 0; i < len(pts); i += 3 {
			base, tdm, vct := pts[i].res, pts[i+1].res, pts[i+2].res
			fmt.Printf("%8.2f %18s %18s\n",
				pts[i].rate, savingPct(tdm, base), savingPct(vct, base))
		}
	}
	fmt.Println()
}

// fig6 reproduces the scalability study: maximum throughput improvement
// and energy saving of Hybrid-TDM-VCt over Packet-VC4 on 8x8 and 16x16
// meshes (256-entry slot tables for the larger network, per the paper).
func fig6(rc runConfig) {
	fmt.Println("== Figure 6: scalability (Hybrid-TDM-VCt vs Packet-VC4) ==")
	warm, measure := cyclesFor(rc.quick)
	sizes := []int{8, 16}
	workers := rc.workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	patterns := []hsnoc.Pattern{hsnoc.UniformRandom, hsnoc.Tornado, hsnoc.Transpose}
	for _, dim := range sizes {
		for _, pat := range patterns {
			rates := sweepRates(rc.quick)
			var jobs []synthJob
			w, m := warm, measure
			if dim >= 16 {
				// A 16x16 mesh is ~7x the work per cycle; shorten the
				// measured region to keep the sweep tractable.
				w, m = warm/2, measure/2
			}
			for _, rate := range rates {
				pc := packetCfg(dim, dim, rc.seed)
				tc := tdmVCtCfg(dim, dim, rc.seed)
				// The paper sizes the slot tables statically per network
				// (128 entries, 256 for the 16x16 mesh) in this study.
				tc.DisableDynamicSlotSizing = true
				if dim >= 16 {
					tc.SlotTableEntries = 256
				}
				if workers > 1 {
					// Intra-network parallelism only pays off when cores
					// are not already saturated by parallel jobs.
					pc.Workers = 2
					tc.Workers = 2
				}
				jobs = append(jobs,
					synthJob{label: "base", cfg: pc, pattern: pat, rate: rate, warm: w, measure: m},
					synthJob{label: "vct", cfg: tc, pattern: pat, rate: rate, warm: w, measure: m},
				)
			}
			pts := runSynthetic(jobs, rc.workers)
			// Maximum accepted payload throughput over the sweep is the
			// saturation throughput.
			maxBase, maxVct := 0.0, 0.0
			var satBase float64
			for i := 0; i < len(pts); i += 2 {
				if t := pts[i].res.PayloadThroughput(); t > maxBase {
					maxBase, satBase = t, pts[i].rate
				}
				if t := pts[i+1].res.PayloadThroughput(); t > maxVct {
					maxVct = t
				}
			}
			// Energy sampled at 75 % of the baseline's saturation load.
			eRate := 0.75 * satBase
			eJobs := []synthJob{
				{label: "base", cfg: packetCfg(dim, dim, rc.seed), pattern: pat, rate: eRate, warm: warm, measure: measure},
				{label: "vct", cfg: func() hsnoc.Config {
					c := tdmVCtCfg(dim, dim, rc.seed)
					c.DisableDynamicSlotSizing = true
					if dim >= 16 {
						c.SlotTableEntries = 256
					}
					return c
				}(), pattern: pat, rate: eRate, warm: warm, measure: measure},
			}
			ep := runSynthetic(eJobs, rc.workers)
			fmt.Printf("%2dx%-2d %-3v: max throughput %.3f -> %.3f (%+.1f%%), energy saving at 75%% load: %s\n",
				dim, dim, pat, maxBase, maxVct, 100*(maxVct-maxBase)/maxBase,
				savingPct(ep[1].res, ep[0].res))
		}
	}
	fmt.Println()
}
