package main

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/workload"
)

// heteroVariant names the Fig. 8 configurations.
type heteroVariant struct {
	name string
	mk   func(seed uint64) hsnoc.Config
}

func heteroVariants(seed uint64) []heteroVariant {
	return []heteroVariant{
		{"Packet-VC4", func(s uint64) hsnoc.Config { return packetCfg(6, 6, s) }},
		{"Hybrid-TDM-VC4", func(s uint64) hsnoc.Config { return tdmCfg(6, 6, s) }},
		{"Hybrid-TDM-hop-VC4", func(s uint64) hsnoc.Config {
			c := tdmCfg(6, 6, s)
			c.PathSharing = true
			return c
		}},
		{"Hybrid-TDM-hop-VCt", func(s uint64) hsnoc.Config {
			c := tdmCfg(6, 6, s)
			c.PathSharing = true
			c.VCPowerGating = true
			return c
		}},
	}
}

type heteroRun struct {
	mix     int
	variant int
	res     hsnoc.HeteroResults
}

// runHeteroMatrix executes (mix, variant) runs in parallel.
func runHeteroMatrix(rc runConfig, mixes []int, variants []heteroVariant, warm, measure int) map[[2]int]hsnoc.HeteroResults {
	workers := rc.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	var mu sync.Mutex
	out := map[[2]int]hsnoc.HeteroResults{}
	for _, mi := range mixes {
		for vi := range variants {
			wg.Add(1)
			go func(mi, vi int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				cpu, gpu := workload.Mix(mi)
				h, err := hsnoc.NewHeterogeneous(variants[vi].mk(rc.seed), cpu.Name, gpu.Name)
				if err != nil {
					panic(err)
				}
				defer h.Close()
				h.Warmup(warm)
				res := h.Run(measure)
				mu.Lock()
				out[[2]int{mi, vi}] = res
				mu.Unlock()
			}(mi, vi)
		}
	}
	wg.Wait()
	return out
}

func heteroCycles(quick bool) (warm, measure int) {
	if quick {
		return 2000, 8000
	}
	return 6000, 30000
}

func selectMixes(rc runConfig) []int {
	n := rc.mixes
	if n <= 0 || n > workload.MixCount() {
		n = workload.MixCount()
	}
	// Evenly subsample while keeping GPU-major grouping.
	step := float64(workload.MixCount()) / float64(n)
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, int(float64(i)*step))
	}
	return out
}

// fig8 reproduces Fig. 8: per-mix network energy saving, CPU speedup and
// GPU speedup for the three hybrid configurations versus Packet-VC4.
func fig8(rc runConfig) {
	fmt.Println("== Figure 8: heterogeneous workload mixes (6x6, Fig. 7 layout) ==")
	variants := heteroVariants(rc.seed)
	mixes := selectMixes(rc)
	warm, measure := heteroCycles(rc.quick)
	results := runHeteroMatrix(rc, mixes, variants, warm, measure)

	fmt.Printf("%-24s %-20s %-20s %-20s\n", "mix (GPU/CPU)", "energy saving", "CPU speedup", "GPU speedup")
	fmt.Printf("%-24s %6s %6s %6s  %6s %6s %6s  %6s %6s %6s\n", "",
		"TDM", "hop", "hopVCt", "TDM", "hop", "hopVCt", "TDM", "hop", "hopVCt")
	// Geometric means across mixes (the paper's AVG group).
	gm := make([][]float64, 3) // per metric: [variant-1] products
	for i := range gm {
		gm[i] = []float64{0, 0, 0}
	}
	count := 0
	for _, mi := range mixes {
		cpu, gpu := workload.Mix(mi)
		base := results[[2]int{mi, 0}]
		var es, cs, gs [3]float64
		for vi := 1; vi < 4; vi++ {
			r := results[[2]int{mi, vi}]
			es[vi-1] = 1 - r.Energy.TotalPJ/base.Energy.TotalPJ
			cs[vi-1] = float64(r.CPUInstructions) / float64(base.CPUInstructions)
			gs[vi-1] = float64(r.GPUIterations) / float64(base.GPUIterations)
			gm[0][vi-1] += math.Log(math.Max(1e-9, 1-es[vi-1]))
			gm[1][vi-1] += math.Log(cs[vi-1])
			gm[2][vi-1] += math.Log(gs[vi-1])
		}
		count++
		fmt.Printf("%-24s %5.1f%% %5.1f%% %5.1f%%  %6.3f %6.3f %6.3f  %6.3f %6.3f %6.3f\n",
			gpu.Name+"/"+cpu.Name,
			100*es[0], 100*es[1], 100*es[2],
			cs[0], cs[1], cs[2],
			gs[0], gs[1], gs[2])
	}
	if count > 0 {
		fmt.Printf("%-24s", "AVG (geomean)")
		for vi := 0; vi < 3; vi++ {
			fmt.Printf(" %5.1f%%", 100*(1-math.Exp(gm[0][vi]/float64(count))))
		}
		fmt.Printf(" ")
		for vi := 0; vi < 3; vi++ {
			fmt.Printf(" %6.3f", math.Exp(gm[1][vi]/float64(count)))
		}
		fmt.Printf(" ")
		for vi := 0; vi < 3; vi++ {
			fmt.Printf(" %6.3f", math.Exp(gm[2][vi]/float64(count)))
		}
		fmt.Println()
	}
	fmt.Println()
}

// fig9 reproduces the Fig. 9 energy breakdown: per-component dynamic and
// static energy of the full hybrid configuration, normalised to the
// packet-switched baseline, averaged over CPU applications per GPU
// benchmark.
func fig9(rc runConfig) {
	fmt.Println("== Figure 9: network energy breakdown (normalised to Packet-VC4) ==")
	variants := []heteroVariant{
		heteroVariants(rc.seed)[0], // Packet-VC4
		heteroVariants(rc.seed)[3], // Hybrid-TDM-hop-VCt
	}
	warm, measure := heteroCycles(rc.quick)
	nCPU := len(workload.CPUBenchmarks)
	cpuSamples := nCPU
	if rc.quick || rc.mixes < workload.MixCount() {
		cpuSamples = 2
	}
	components := []string{"buffer", "cs-component", "crossbar", "arbiter", "clock", "link"}

	fmt.Printf("%-14s | %s\n", "GPU benchmark", "dynamic: component shares (base -> hybrid), then static")
	var totBufSave, totDynSave, totStatSave float64
	var groups int
	for gi, gpu := range workload.GPUBenchmarks {
		// Average over CPU applications (the paper averages each group).
		var mixes []int
		for ci := 0; ci < cpuSamples; ci++ {
			mixes = append(mixes, gi*nCPU+ci*(nCPU/cpuSamples))
		}
		results := runHeteroMatrix(rc, mixes, variants, warm, measure)
		sum := func(vi int) (dyn, stat map[string]float64) {
			dyn, stat = map[string]float64{}, map[string]float64{}
			for _, mi := range mixes {
				r := results[[2]int{mi, vi}]
				for _, c := range components {
					dyn[c] += r.Energy.DynamicPJ[c]
					stat[c] += r.Energy.StaticPJ[c]
				}
			}
			return
		}
		bd, bs := sum(0)
		hd, hs := sum(1)
		tot := func(m map[string]float64) float64 {
			t := 0.0
			for _, v := range m {
				t += v
			}
			return t
		}
		fmt.Printf("%-14s dyn: ", gpu.Name)
		for _, c := range components {
			fmt.Printf("%s %4.1f%%->%4.1f%%  ", c, 100*bd[c]/tot(bd), 100*hd[c]/tot(bd))
		}
		fmt.Printf("\n%-14s stat:", "")
		for _, c := range components {
			fmt.Printf("%s %4.1f%%->%4.1f%%  ", c, 100*bs[c]/tot(bs), 100*hs[c]/tot(bs))
		}
		fmt.Printf("\n%-14s dyn saving %.1f%% (buffer %.1f%%, CS overhead %.1f%%) | static saving %.1f%% (CS overhead %.1f%%)\n",
			"", 100*(1-tot(hd)/tot(bd)),
			100*(1-hd["buffer"]/bd["buffer"]),
			100*hd["cs-component"]/tot(bd),
			100*(1-tot(hs)/tot(bs)),
			100*hs["cs-component"]/tot(bs))
		totBufSave += 1 - hd["buffer"]/bd["buffer"]
		totDynSave += 1 - tot(hd)/tot(bd)
		totStatSave += 1 - tot(hs)/tot(bs)
		groups++
	}
	fmt.Printf("AVERAGE: buffer dynamic saving %.1f%%, total dynamic saving %.1f%%, total static saving %.1f%%\n\n",
		100*totBufSave/float64(groups), 100*totDynSave/float64(groups), 100*totStatSave/float64(groups))
}

// table3 reproduces Table III: per-GPU-benchmark injection ratio and the
// percentage of flits that are circuit-switched under Hybrid-TDM-VC4.
func table3(rc runConfig) {
	fmt.Println("== Table III: GPU injection rate and circuit-switched flit percentage (Hybrid-TDM-VC4) ==")
	warm, measure := heteroCycles(rc.quick)
	variants := []heteroVariant{heteroVariants(rc.seed)[1]} // Hybrid-TDM-VC4
	fmt.Printf("%-14s %22s %22s\n", "GPU benchmark", "injection (paper->ours)", "CS flits %% (paper->ours)")
	paperInj := map[string]float64{"BLACKSCHOLES": 0.18, "HOTSPOT": 0.09, "LIB": 0.20, "LPS": 0.20, "NN": 0.18, "PATHFINDER": 0.13, "STO": 0.05}
	paperCS := map[string]float64{"BLACKSCHOLES": 55.7, "HOTSPOT": 29.1, "LIB": 34.4, "LPS": 55.0, "NN": 38.9, "PATHFINDER": 49.1, "STO": 18.5}
	nCPU := len(workload.CPUBenchmarks)
	for gi, gpu := range workload.GPUBenchmarks {
		// Use one representative CPU application (EQUAKE, index 3).
		mi := gi*nCPU + 3
		res := runHeteroMatrix(rc, []int{mi}, variants, warm, measure)
		r := res[[2]int{mi, 0}]
		fmt.Printf("%-14s %10.2f -> %6.3f %11.1f -> %5.1f\n",
			gpu.Name, paperInj[gpu.Name], r.GPUInjectionRate, paperCS[gpu.Name], 100*r.GPUCSFraction)
	}
	fmt.Println()
}

// table1 prints the evaluated router parameters and the area model
// numbers of Section IV-A.
func table1(rc runConfig) {
	fmt.Println("== Table I / Section IV-A: router parameters and area ==")
	ps := packetCfg(6, 6, rc.seed)
	hy := tdmCfg(6, 6, rc.seed)
	fmt.Printf("topology 6x6 2D mesh, 16-byte channels, 4 VCs/port, 5-flit buffers, 128-entry slot tables\n")
	fmt.Printf("packet-switched router area: %.3f mm^2 (paper: 0.177)\n", ps.RouterAreaMM2())
	fmt.Printf("hybrid-switched router area: %.3f mm^2 (paper: 0.188)\n", hy.RouterAreaMM2())
	fmt.Printf("area overhead: %.1f%% (paper: 6.2%%)\n\n",
		100*(hy.RouterAreaMM2()-ps.RouterAreaMM2())/ps.RouterAreaMM2())
}
