// Command experiments regenerates every table and figure of the paper's
// evaluation:
//
//	experiments -exp fig4          load-latency curves (Section IV-B)
//	experiments -exp fig5          energy saving vs injection rate (IV-C)
//	experiments -exp fig6          scalability to 8x8 / 16x16 (IV-D)
//	experiments -exp fig8          heterogeneous workload mixes (V-B)
//	experiments -exp fig9          energy breakdown (V-B)
//	experiments -exp table1        router parameters / area (IV-A)
//	experiments -exp table3        GPU injection + CS fraction (V-B)
//	experiments -exp all           everything above
//
// Use -quick for a shortened run (fewer cycles, sparser sweeps) and
// -mixes N to subsample the 56 workload mixes of fig8.
//
// Absolute joules are not comparable to the authors' testbed; the point
// of each experiment is the relative shape: who wins, by roughly what
// factor, and where the crossovers fall. EXPERIMENTS.md records the
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
)

type runConfig struct {
	quick   bool
	mixes   int
	seed    uint64
	workers int
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig4|fig5|fig6|fig8|fig9|table1|table3|ablation|granularity|all")
	quick := flag.Bool("quick", false, "shortened runs for smoke testing")
	mixes := flag.Int("mixes", 56, "workload mixes for fig8/fig9/table3 (max 56)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "parallel experiment runs (0 = NumCPU)")
	flag.Parse()

	rc := runConfig{quick: *quick, mixes: *mixes, seed: *seed, workers: *workers}
	switch *exp {
	case "fig4":
		fig4(rc)
	case "fig5":
		fig5(rc)
	case "fig6":
		fig6(rc)
	case "fig8":
		fig8(rc)
	case "fig9":
		fig9(rc)
	case "table1":
		table1(rc)
	case "table3":
		table3(rc)
	case "ablation":
		ablation(rc)
	case "granularity":
		granularity(rc)
	case "all":
		table1(rc)
		fig4(rc)
		fig5(rc)
		fig6(rc)
		fig8(rc)
		fig9(rc)
		table3(rc)
		ablation(rc)
		granularity(rc)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
