package main

import (
	"fmt"

	"tdmnoc/hsnoc"
)

// ablation quantifies each design choice DESIGN.md calls out by switching
// it off in isolation: time-slot stealing (Section II-D), circuit-switched
// path sharing (III-A), dynamic slot-table sizing (II-C) and aggressive VC
// power gating (III-B).
func ablation(rc runConfig) {
	fmt.Println("== Ablation: one design choice off at a time (hotspot traffic, 6x6) ==")
	warm, measure := cyclesFor(rc.quick)
	// Keep the offered load below the hotspot pattern's ejection-bound
	// saturation (~0.13) so latency and energy readings are not dominated
	// by queueing collapse.
	const rate = 0.10

	full := func() hsnoc.Config {
		c := tdmCfg(6, 6, rc.seed)
		c.PathSharing = true
		c.VCPowerGating = true
		return c
	}
	type variant struct {
		name string
		mod  func(hsnoc.Config) hsnoc.Config
	}
	variants := []variant{
		{"full hybrid", func(c hsnoc.Config) hsnoc.Config { return c }},
		{"- time-slot stealing", func(c hsnoc.Config) hsnoc.Config { c.DisableTimeSlotStealing = true; return c }},
		{"- path sharing", func(c hsnoc.Config) hsnoc.Config { c.PathSharing = false; return c }},
		{"- dynamic slot sizing", func(c hsnoc.Config) hsnoc.Config { c.DisableDynamicSlotSizing = true; return c }},
		{"- VC power gating", func(c hsnoc.Config) hsnoc.Config { c.VCPowerGating = false; return c }},
	}

	var jobs []synthJob
	jobs = append(jobs, synthJob{label: "Packet-VC4", cfg: packetCfg(6, 6, rc.seed),
		pattern: hsnoc.Hotspot, rate: rate, warm: warm, measure: measure})
	for _, v := range variants {
		jobs = append(jobs, synthJob{label: v.name, cfg: v.mod(full()),
			pattern: hsnoc.Hotspot, rate: rate, warm: warm, measure: measure})
	}
	pts := runSynthetic(jobs, rc.workers)
	base := pts[0].res
	fmt.Printf("%-24s %10s %10s %8s %12s\n", "variant", "totlat", "energy-sv", "cs%", "rides(h/v)")
	for _, p := range pts[1:] {
		fmt.Printf("%-24s %10.1f %10s %7.1f%% %6d/%d\n",
			p.label, p.res.AvgTotalLatency(), savingPct(p.res, base),
			100*p.res.CSFlitFraction(), p.res.Hitchhikes, p.res.VicinityRides)
	}
	fmt.Println()
}

// granularity sweeps the slot-table size (time-division granularity,
// Section II-C): smaller tables give each circuit more bandwidth and
// shorter waits but hold fewer circuits; larger tables the reverse.
func granularity(rc runConfig) {
	fmt.Println("== Granularity: slot-table size sweep (Section II-C, tornado + UR, 6x6) ==")
	warm, measure := cyclesFor(rc.quick)
	sizes := []int{8, 16, 32, 64, 128, 256}
	if rc.quick {
		sizes = []int{16, 64, 256}
	}
	for _, pat := range []hsnoc.Pattern{hsnoc.Tornado, hsnoc.UniformRandom} {
		var jobs []synthJob
		jobs = append(jobs, synthJob{label: "Packet-VC4", cfg: packetCfg(6, 6, rc.seed),
			pattern: pat, rate: 0.15, warm: warm, measure: measure})
		for _, sz := range sizes {
			cfg := tdmCfg(6, 6, rc.seed)
			cfg.SlotTableEntries = sz
			cfg.DisableDynamicSlotSizing = true // isolate the size effect
			jobs = append(jobs, synthJob{label: fmt.Sprintf("TDM-%d-slots", sz), cfg: cfg,
				pattern: pat, rate: 0.15, warm: warm, measure: measure})
		}
		pts := runSynthetic(jobs, rc.workers)
		base := pts[0].res
		fmt.Printf("\n-- pattern %v at 0.15 flits/node/cycle --\n", pat)
		fmt.Printf("%-16s %10s %10s %8s %10s\n", "config", "totlat", "energy-sv", "cs%", "circuits")
		for _, p := range pts[1:] {
			fmt.Printf("%-16s %10.1f %10s %7.1f%% %10d\n",
				p.label, p.res.AvgTotalLatency(), savingPct(p.res, base),
				100*p.res.CSFlitFraction(), p.res.Circuits)
		}
	}
	fmt.Println()
}
